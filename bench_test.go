// Package pairfn_test is the benchmark harness: one benchmark per paper
// artifact (Figs. 2–6 and the quantitative claims of §3–§4, experiments
// E1–E20 in DESIGN.md), plus the ablation benches DESIGN.md §6 calls out.
//
// Run with: go test -bench=. -benchmem .
package pairfn_test

import (
	"context"
	"fmt"
	"testing"

	"pairfn/internal/apf"
	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/hashstore"
	"pairfn/internal/numtheory"
	"pairfn/internal/polysearch"
	"pairfn/internal/spread"
	"pairfn/internal/tuple"
	"pairfn/internal/wbc"
)

var (
	sinkI64 int64
	sinkInt int
)

// --- E1–E3: the PF sample tables of Figs. 2–4 ---

func benchTable(b *testing.B, f core.PF, rows, cols int64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sum int64
		for x := int64(1); x <= rows; x++ {
			for y := int64(1); y <= cols; y++ {
				z, err := f.Encode(x, y)
				if err != nil {
					b.Fatal(err)
				}
				sum += z
			}
		}
		sinkI64 = sum
	}
}

// BenchmarkFig2Diagonal regenerates Fig. 2 (experiment E1).
func BenchmarkFig2Diagonal(b *testing.B) { benchTable(b, core.Diagonal{}, 8, 8) }

// BenchmarkFig3SquareShell regenerates Fig. 3 (experiment E2).
func BenchmarkFig3SquareShell(b *testing.B) { benchTable(b, core.SquareShell{}, 8, 8) }

// BenchmarkFig4Hyperbolic regenerates Fig. 4 (experiment E3).
func BenchmarkFig4Hyperbolic(b *testing.B) { benchTable(b, core.Hyperbolic{}, 8, 7) }

// --- E4: Fig. 5's lattice region ---

// BenchmarkFig5Lattice enumerates the aggregate positions of all arrays
// with ≤ 16 positions (experiment E4).
func BenchmarkFig5Lattice(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := spread.HyperbolaPoints(16)
		if len(pts) != 50 {
			b.Fatalf("region size %d", len(pts))
		}
		sinkInt = len(pts)
	}
}

// --- E5: Fig. 6's APF sample table ---

// BenchmarkFig6APFTable regenerates the Fig. 6 rows (experiment E5).
func BenchmarkFig6APFTable(b *testing.B) {
	type spec struct {
		f  *apf.Constructed
		xs []int64
	}
	specs := []spec{
		{apf.NewTC(1), []int64{14, 15}},
		{apf.NewTC(3), []int64{14, 15, 28, 29}},
		{apf.NewTHash(), []int64{28, 29}},
		{apf.NewTStar(), []int64{28, 29}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for _, s := range specs {
			for _, x := range s.xs {
				for y := int64(1); y <= 5; y++ {
					z, err := s.f.Encode(x, y)
					if err != nil {
						b.Fatal(err)
					}
					sum += z
				}
			}
		}
		sinkI64 = sum
	}
}

// --- E6–E9: the §3.2 spread comparison ---

func benchSpread(b *testing.B, f core.StorageMapping, n int64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _, err := spread.Measure(f, n)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = s
	}
}

// BenchmarkSpreadDiagonal measures S_𝒟(1024) ≈ n²/2 (experiment E6).
func BenchmarkSpreadDiagonal(b *testing.B) { benchSpread(b, core.Diagonal{}, 1024) }

// BenchmarkSpreadSquareShell measures S_𝒜₁,₁(1024) = n².
func BenchmarkSpreadSquareShell(b *testing.B) { benchSpread(b, core.SquareShell{}, 1024) }

// BenchmarkSpreadAspect measures the conforming spread of 𝒜₁,₂ (eq. 3.2,
// experiment E7).
func BenchmarkSpreadAspect(b *testing.B) {
	f := core.MustAspect(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := spread.MeasureConforming(f, 1, 2, 1024)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = s
	}
}

// BenchmarkSpreadDovetail measures the 3-way dovetail (§3.2.2, experiment
// E8).
func BenchmarkSpreadDovetail(b *testing.B) {
	benchSpread(b, core.MustDovetail(
		core.MustAspect(1, 1), core.MustAspect(1, 2), core.MustAspect(2, 1)), 1024)
}

// BenchmarkSpreadHyperbolic measures S_ℋ(1024) = D(1024) = Θ(n log n)
// (experiment E9).
func BenchmarkSpreadHyperbolic(b *testing.B) {
	benchSpread(b, core.NewCachedHyperbolic(1024), 1024)
}

// --- E10–E16: APF stride analyses ---

// BenchmarkCrossover recomputes the §4.2.2 dominance points (experiment
// E13).
func BenchmarkCrossover(b *testing.B) {
	th := apf.NewTHash()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range []int{1, 2, 3} {
			x0, _, err := apf.Crossover(apf.NewTC(c), th, 256)
			if err != nil {
				b.Fatal(err)
			}
			sinkI64 = x0
		}
	}
}

// BenchmarkStrideTable sweeps exact strides for each family (experiments
// E11, E12, E14, E15).
func BenchmarkStrideTable(b *testing.B) {
	for _, f := range apf.Families() {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tbl, err := apf.StrideTable(f, 256)
				if err != nil {
					b.Fatal(err)
				}
				sinkInt = len(tbl)
			}
		})
	}
}

// --- E17: the reshape-cost race ---

// BenchmarkReshapePF grows a 64-row array column by column under the
// square-shell PF: zero moves (experiment E17).
func BenchmarkReshapePF(b *testing.B) {
	benchReshape(b, func() extarray.Table[int64] {
		return extarray.NewMapBacked[int64](core.SquareShell{}, 64, 1)
	})
}

// BenchmarkReshapeNaive is the remap-on-reshape baseline: Θ(n²) work for
// the same sequence of reshapes (experiment E17).
func BenchmarkReshapeNaive(b *testing.B) {
	benchReshape(b, func() extarray.Table[int64] {
		return extarray.NewNaiveRowMajor[int64](64, 1)
	})
}

func benchReshape(b *testing.B, mk func() extarray.Table[int64]) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := mk()
		for x := int64(1); x <= 64; x++ {
			if err := t.Set(x, 1, x); err != nil {
				b.Fatal(err)
			}
		}
		for c := int64(2); c <= 64; c++ {
			if err := t.Resize(64, c); err != nil {
				b.Fatal(err)
			}
			for x := int64(1); x <= 64; x++ {
				if err := t.Set(x, c, x); err != nil {
					b.Fatal(err)
				}
			}
		}
		sinkI64 = t.Stats().Moves
	}
}

// --- E18: the §3-aside hash stores ---

// BenchmarkHashStoreOpen measures the open-addressing store's throughput
// at its < 2n space bound (experiment E18).
func BenchmarkHashStoreOpen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := hashstore.NewOpen[int64]()
		for k := int64(0); k < 4096; k++ {
			s.Set(hashstore.Position{X: k % 64, Y: k / 64}, k)
		}
		var sum int64
		for k := int64(0); k < 4096; k++ {
			v, _ := s.Get(hashstore.Position{X: k % 64, Y: k / 64})
			sum += v
		}
		sinkI64 = sum
	}
}

// BenchmarkHashStoreTwoLevel measures the FKS-style store's O(1)
// worst-case lookups (experiment E18).
func BenchmarkHashStoreTwoLevel(b *testing.B) {
	s := hashstore.NewTwoLevel[int64]()
	for k := int64(0); k < 4096; k++ {
		s.Set(hashstore.Position{X: k % 64, Y: k / 64}, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for k := int64(0); k < 4096; k++ {
			v, _ := s.Get(hashstore.Position{X: k % 64, Y: k / 64})
			sum += v
		}
		sinkI64 = sum
	}
}

// --- E19: WBC allocation and simulation ---

// BenchmarkWBCAllocate measures pure task allocation + attribution through
// 𝒯# (experiment E19).
func BenchmarkWBCAllocate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := wbc.NewCoordinator(wbc.Config{
			APF: apf.NewTHash(), Workload: wbc.DivisorSum{}, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		var vols []wbc.VolunteerID
		for v := 0; v < 16; v++ {
			vols = append(vols, c.MustRegister(1))
		}
		for t := 0; t < 32; t++ {
			for _, v := range vols {
				k, err := c.NextTask(v)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Attribute(k); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Submit(v, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
		sinkI64 = c.Metrics().Footprint
	}
}

// BenchmarkWBCSimulate runs the full concurrent simulation (experiment
// E19).
func BenchmarkWBCSimulate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _, err := wbc.Simulate(wbc.SimConfig{
			Coordinator: wbc.Config{
				APF: apf.NewTHash(), Workload: wbc.DivisorSum{},
				AuditRate: 0.25, StrikeLimit: 2, Seed: 3,
			},
			Profiles: []wbc.Profile{
				{Name: "honest", Count: 8, Tasks: 20, Speed: 1},
				{Name: "malicious", Count: 2, ErrorRate: 0.9, Tasks: 20, Speed: 1},
			},
			Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.AttributionErrors != 0 {
			b.Fatal("attribution errors")
		}
		sinkI64 = res.Metrics.Footprint
	}
}

// --- E20: the polynomial search ---

// BenchmarkPolySearch runs the quadratic PF search at numerator bound 2
// (the full bound-4 search is TestQuadraticUniqueness; experiment E20).
func BenchmarkPolySearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got := polysearch.SearchQuadratics(2, 12)
		sinkInt = len(got)
	}
}

// --- micro-benchmarks: Encode/Decode per PF ---

func BenchmarkEncode(b *testing.B) {
	pfs := []core.PF{
		core.Diagonal{}, core.SquareShell{}, core.MustAspect(2, 3),
		core.Morton{}, core.Hilbert{Order: 10},
		core.NewCachedHyperbolic(1 << 20), core.Hyperbolic{},
	}
	for _, f := range pfs {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				z, err := f.Encode(int64(i%1000)+1, int64(i%997)+1)
				if err != nil {
					b.Fatal(err)
				}
				sinkI64 = z
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	pfs := []core.PF{
		core.Diagonal{}, core.SquareShell{}, core.MustAspect(2, 3),
		core.NewCachedHyperbolic(1 << 20),
	}
	for _, f := range pfs {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x, y, err := f.Decode(int64(i%100000) + 1)
				if err != nil {
					b.Fatal(err)
				}
				sinkI64 = x + y
			}
		})
	}
}

// BenchmarkAPFEncode covers the APF fast path per family.
func BenchmarkAPFEncode(b *testing.B) {
	for _, f := range apf.Families() {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				z, err := f.Encode(int64(i%24)+1, int64(i%31)+1)
				if err != nil {
					b.Fatal(err)
				}
				sinkI64 = z
			}
		})
	}
}

// BenchmarkTupleEncode covers iterated pairing at arity 4.
func BenchmarkTupleEncode(b *testing.B) {
	c := tuple.MustNew(core.SquareShell{}, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z, err := c.Encode(int64(i%16)+1, int64(i%13)+1, int64(i%11)+1, int64(i%7)+1)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = z
	}
}

// --- ablations (DESIGN.md §6) ---

// BenchmarkDivisorSummatoryHyperbola vs ...Naive: the O(√n) Dirichlet
// identity against direct summation (ablation 2).
func BenchmarkDivisorSummatoryHyperbola(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkI64 = numtheory.DivisorSummatory(1 << 16)
	}
}

func BenchmarkDivisorSummatoryNaive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkI64 = numtheory.DivisorSummatoryNaive(1 << 10) // already O(n√n): keep n modest
	}
}

// BenchmarkCountPrimesTrial vs ...Segmented: the WBC workload's audit cost
// under per-number trial division vs the segmented sieve.
func BenchmarkCountPrimesTrial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkI64 = numtheory.CountPrimes(1<<20, 1<<20+2000)
	}
}

func BenchmarkCountPrimesSegmented(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkI64 = numtheory.CountPrimesSegmented(1<<20, 1<<20+2000)
	}
}

// BenchmarkEnumeratedVsClosedForm quantifies Theorem 3.1's generality tax:
// the generic shell-constructor PF vs the closed form, on the same shells.
func BenchmarkEnumeratedVsClosedForm(b *testing.B) {
	pairs := []struct {
		name string
		f    core.PF
	}{
		{"enumerated-square", core.NewEnumerated(core.SquareShells{})},
		{"closed-square", core.SquareShell{}},
		{"enumerated-diagonal", core.NewEnumerated(core.DiagonalShells{})},
		{"closed-diagonal", core.Diagonal{}},
	}
	for _, p := range pairs {
		p := p
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				z, err := p.f.Encode(int64(i%512)+1, int64(i%509)+1)
				if err != nil {
					b.Fatal(err)
				}
				sinkI64 = z
			}
		})
	}
}

// BenchmarkHyperbolicDecodeDirect vs ...Cached: binary search over D vs
// the precomputed shell-prefix table (ablation 1).
func BenchmarkHyperbolicDecodeDirect(b *testing.B) {
	var h core.Hyperbolic
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, y, err := h.Decode(int64(i%100000) + 1)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = x + y
	}
}

func BenchmarkHyperbolicDecodeCached(b *testing.B) {
	h := core.NewCachedHyperbolic(1 << 20)
	if _, _, err := h.Decode(1); err != nil { // force table build outside timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y, err := h.Decode(int64(i%100000) + 1)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = x + y
	}
}

// BenchmarkAPFGroupLookupClosed vs ...Search: closed-form g = f(x) against
// the prefix-sum binary search (ablation 3). Both compute 𝒯# values; the
// search variant is built without the closed form.
func BenchmarkAPFGroupLookupClosed(b *testing.B) {
	f := apf.NewTHash()
	benchAPFEncodeSweep(b, f)
}

func BenchmarkAPFGroupLookupSearch(b *testing.B) {
	f := apf.New("T#-search", func(g int64) int64 { return g }, nil)
	benchAPFEncodeSweep(b, f)
}

func benchAPFEncodeSweep(b *testing.B, f *apf.Constructed) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sum int64
		for x := int64(1); x <= 512; x++ {
			z, err := f.Encode(x, 3)
			if err != nil {
				b.Fatal(err)
			}
			sum += z
		}
		sinkI64 = sum
	}
}

// BenchmarkArrayBackingMap vs ...Paged: map-backed vs paged-slice-backed
// stores under PF addressing (ablation 4).
func BenchmarkArrayBackingMap(b *testing.B) {
	benchBacking(b, func() extarray.Store[int64] { return extarray.NewMapStore[int64]() })
}

func BenchmarkArrayBackingPaged(b *testing.B) {
	benchBacking(b, func() extarray.Store[int64] { return extarray.NewPagedStore[int64]() })
}

func benchBacking(b *testing.B, mk func() extarray.Store[int64]) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := extarray.New[int64](core.SquareShell{}, mk(), 64, 64)
		if err != nil {
			b.Fatal(err)
		}
		for x := int64(1); x <= 64; x++ {
			for y := int64(1); y <= 64; y++ {
				if err := a.Set(x, y, x*y); err != nil {
					b.Fatal(err)
				}
			}
		}
		v, _, err := a.Get(32, 32)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = v
	}
}

// BenchmarkAPFBigEncode vs BenchmarkAPFFastEncode: math/big totality vs the
// int64 fast path (ablation 5).
func BenchmarkAPFFastEncode(b *testing.B) {
	f := apf.NewTStar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z, err := f.Encode(int64(i%100)+1, int64(i%50)+1)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = z
	}
}

func BenchmarkAPFBigEncode(b *testing.B) {
	f := apf.NewTStar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z, err := f.EncodeBig(int64(i%100)+1, int64(i%50)+1)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt = z.BitLen()
	}
}

// BenchmarkSpreadSerial vs BenchmarkSpreadParallel: the measurement
// harness itself, sharded across GOMAXPROCS workers.
func BenchmarkSpreadSerial(b *testing.B) {
	f := core.NewCachedHyperbolic(1 << 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _, err := spread.Measure(f, 1<<13)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = s
	}
}

func BenchmarkSpreadParallel(b *testing.B) {
	f := core.NewCachedHyperbolic(1 << 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _, err := spread.MeasureParallel(f, 1<<13, 0)
		if err != nil {
			b.Fatal(err)
		}
		sinkI64 = s
	}
}

// BenchmarkSpreadEngineMeasure is the E22 scaling study: Engine.Measure at
// n = 10⁵ over the §3.2 panel (ℋ cached, 𝒟, 𝒜₁,₁, Hilbert) for 1/2/4
// workers. On a multi-core host the per-mapping series shows near-linear
// speedup; on a single-CPU host the series is flat and only the engine's
// coordination overhead is visible.
func BenchmarkSpreadEngineMeasure(b *testing.B) {
	const n = 100_000
	mappings := []core.StorageMapping{
		core.NewCachedHyperbolic(n),
		core.Diagonal{},
		core.SquareShell{},
		core.Hilbert{Order: 17}, // 2^17 > n, so the whole region is in range
	}
	ctx := context.Background()
	for _, f := range mappings {
		if _, err := f.Encode(1, 1); err != nil { // warm lazy tables outside the timer
			b.Fatal(err)
		}
		for _, w := range []int{1, 2, 4} {
			f, w := f, w
			b.Run(fmt.Sprintf("%s/workers-%d", f.Name(), w), func(b *testing.B) {
				eng := &spread.Engine{Workers: w}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, _, err := eng.Measure(ctx, f, n)
					if err != nil {
						b.Fatal(err)
					}
					sinkI64 = s
				}
			})
		}
	}
}
