// Command apftool is a CLI for the §4 additive pairing functions: inspect
// bases, strides and groups, encode/decode task indices, and locate stride
// crossovers between families.
//
// Usage:
//
//	apftool rows   -apf T# -n 16            # x, g, κ, base, stride table
//	apftool encode -apf T* 7 42             # 𝒯(7, 42)
//	apftool decode -apf T# 1424             # 𝒯⁻¹(1424)
//	apftool cross  -a T<3> -b T# -limit 4096
//	apftool list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"pairfn/internal/apf"
)

func lookup(name string) (*apf.Constructed, error) {
	switch name {
	case "T<1>":
		return apf.NewTC(1), nil
	case "T<2>":
		return apf.NewTC(2), nil
	case "T<3>":
		return apf.NewTC(3), nil
	case "T<4>":
		return apf.NewTC(4), nil
	case "T#":
		return apf.NewTHash(), nil
	case "T[2]":
		return apf.NewTPow(2), nil
	case "T[3]":
		return apf.NewTPow(3), nil
	case "T*":
		return apf.NewTStar(), nil
	case "Texp":
		return apf.NewTExp(), nil
	}
	return nil, fmt.Errorf("unknown APF %q (try apftool list)", name)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "list":
		fmt.Println("T<1> T<2> T<3> T<4> T# T[2] T[3] T* Texp")
	case "rows":
		cmdRows(args)
	case "encode":
		cmdEncode(args)
	case "decode":
		cmdDecode(args)
	case "cross":
		cmdCross(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: apftool {rows|encode|decode|cross|list} [flags] [args]")
	os.Exit(2)
}

func cmdRows(args []string) {
	fs := flag.NewFlagSet("rows", flag.ExitOnError)
	name := fs.String("apf", "T#", "APF name")
	n := fs.Int64("n", 16, "rows to print")
	_ = fs.Parse(args)
	t, err := lookup(*name)
	die(err)
	fmt.Printf("%6s %4s %6s %22s %22s\n", "x", "g", "κ(g)", "base B_x", "stride S_x")
	for x := int64(1); x <= *n; x++ {
		g, k, err := t.Group(x)
		die(err)
		b, err := t.BaseBig(x)
		die(err)
		s, err := t.StrideBig(x)
		die(err)
		fmt.Printf("%6d %4d %6d %22s %22s\n", x, g, k, b, s)
	}
}

func cmdEncode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	name := fs.String("apf", "T#", "APF name")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		die(fmt.Errorf("encode needs x y"))
	}
	x, err := strconv.ParseInt(rest[0], 10, 64)
	die(err)
	y, err := strconv.ParseInt(rest[1], 10, 64)
	die(err)
	t, err := lookup(*name)
	die(err)
	z, err := t.EncodeBig(x, y)
	die(err)
	fmt.Printf("%s(%d, %d) = %s\n", t.Name(), x, y, z)
}

func cmdDecode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	name := fs.String("apf", "T#", "APF name")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 1 {
		die(fmt.Errorf("decode needs z"))
	}
	z, err := strconv.ParseInt(rest[0], 10, 64)
	die(err)
	t, err := lookup(*name)
	die(err)
	x, y, err := t.Decode(z)
	die(err)
	fmt.Printf("%s⁻¹(%d) = (volunteer %d, task #%d)\n", t.Name(), z, x, y)
}

func cmdCross(args []string) {
	fs := flag.NewFlagSet("cross", flag.ExitOnError)
	an := fs.String("a", "T<3>", "dominating APF")
	bn := fs.String("b", "T#", "reference APF")
	limit := fs.Int64("limit", 4096, "verify dominance up to this row")
	_ = fs.Parse(args)
	a, err := lookup(*an)
	die(err)
	b, err := lookup(*bn)
	die(err)
	x0, last, err := apf.Crossover(a, b, *limit)
	die(err)
	fmt.Printf("S_%s(x) ≥ S_%s(x) for all x in [%d, %d]; last strictly-below row: %d\n",
		a.Name(), b.Name(), x0, *limit, last)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "apftool:", err)
		os.Exit(1)
	}
}
