// Command figures regenerates every figure and table of Rosenberg's
// "Efficient Pairing Functions — and Why You Should Care" (IPPS 2002) from
// the pairfn library, printing paper values next to measured values.
//
// Usage:
//
//	figures           # all figures and quantitative claims
//	figures -fig 4    # one figure (2, 3, 4, 5 or 6)
//	figures -claims   # only the quantitative §3/§4 claims
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"pairfn/internal/apf"
	"pairfn/internal/core"
	"pairfn/internal/numtheory"
	"pairfn/internal/spread"
)

func main() {
	fig := flag.Int("fig", 0, "print only this figure (2-6); 0 = everything")
	claims := flag.Bool("claims", false, "print only the quantitative claims")
	flag.Parse()

	if *claims {
		printClaims()
		return
	}
	switch *fig {
	case 0:
		fig2()
		fig3()
		fig4()
		fig5()
		fig6()
		printClaims()
	case 2:
		fig2()
	case 3:
		fig3()
	case 4:
		fig4()
	case 5:
		fig5()
	case 6:
		fig6()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %d (have 2-6)\n", *fig)
		os.Exit(2)
	}
}

func printTable(title string, f core.PF, rows, cols int) {
	fmt.Printf("%s — %s\n", title, f.Name())
	t := core.Table(f, rows, cols)
	for _, row := range t {
		for _, v := range row {
			fmt.Printf("%6d", v)
		}
		fmt.Println()
	}
	fmt.Println()
}

func fig2() {
	printTable("Figure 2: the diagonal PF 𝒟 (eq. 2.1)", core.Diagonal{}, 8, 8)
}

func fig3() {
	printTable("Figure 3: the square-shell PF 𝒜₁,₁ (eq. 3.3)", core.SquareShell{}, 8, 8)
}

func fig4() {
	printTable("Figure 4: the hyperbolic PF ℋ (eq. 3.4)", core.Hyperbolic{}, 8, 7)
}

func fig5() {
	fmt.Println("Figure 5: aggregate positions of arrays having ≤ 16 positions")
	const n = 16
	pts := spread.HyperbolaPoints(n)
	marked := make(map[[2]int64]bool, len(pts))
	for _, p := range pts {
		marked[[2]int64{p.X, p.Y}] = true
	}
	for x := int64(1); x <= n; x++ {
		if n/x == 0 {
			break
		}
		for y := int64(1); y <= n; y++ {
			if marked[[2]int64{x, y}] {
				fmt.Print(" ●")
			} else {
				fmt.Print(" ·")
			}
		}
		fmt.Println()
	}
	fmt.Printf("lattice points under xy = %d: %d (= D(%d); Θ(n log n))\n\n",
		n, len(pts), n)
}

func fig6() {
	fmt.Println("Figure 6: sample values by several APFs (y = 1..5)")
	type rowSpec struct {
		f  *apf.Constructed
		xs []int64
	}
	specs := []rowSpec{
		{apf.NewTC(1), []int64{14, 15}},
		{apf.NewTC(3), []int64{14, 15, 28, 29}},
		{apf.NewTHash(), []int64{28, 29}},
		{apf.NewTStar(), []int64{28, 29}},
	}
	for _, s := range specs {
		fmt.Printf("  %s\n", s.f.Name())
		fmt.Printf("    %4s %3s %s\n", "x", "g", "𝒯(x, 1..5)")
		for _, x := range s.xs {
			g, _, err := s.f.Group(x)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("    %4d %3d", x, g)
			for y := int64(1); y <= 5; y++ {
				v, err := s.f.EncodeBig(x, y)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf(" %10s", v)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

func printClaims() {
	fmt.Println("Quantitative claims, paper vs measured")
	fmt.Println("--------------------------------------")

	// §3.2: spread of 𝒟.
	n := int64(1024)
	s, at, err := spread.Measure(core.Diagonal{}, n)
	must(err)
	fmt.Printf("§3.2  S_𝒟(%d): paper (n²+n)/2 = %d; measured %d at (%d, %d)\n",
		n, (n*n+n)/2, s, at.X, at.Y)
	fmt.Printf("§3.2  𝒟(n, n) = 2n²: 𝒟(%d, %d) = %d (2n² = %d)\n",
		n, n, core.MustEncode(core.Diagonal{}, n, n), 2*n*n)

	// eq. 3.2: perfect compactness of 𝒜_{a,b}.
	f12 := core.MustAspect(1, 2)
	c, err := spread.MeasureConforming(f12, 1, 2, 1000)
	must(err)
	fmt.Printf("eq3.2 𝒜₁,₂ conforming spread at n = 1000: paper = largest 2k² ≤ n = 968; measured %d\n", c)

	// §3.2.2: dovetail bound.
	fs := []core.PF{core.MustAspect(1, 1), core.MustAspect(1, 2), core.MustAspect(2, 1)}
	dv := core.MustDovetail(fs...)
	sd, _, err := spread.Measure(dv, 256)
	must(err)
	best := int64(-1)
	for _, f := range fs {
		si, _, err := spread.Measure(f, 256)
		must(err)
		if best < 0 || si < best {
			best = si
		}
	}
	fmt.Printf("§3.2.2 dovetail: S(256) = %d ≤ m·min = 3·%d = %d\n", sd, best, 3*best)

	// §3.2.3: hyperbolic optimality.
	h := core.NewCachedHyperbolic(1 << 14)
	for _, nn := range []int64{1 << 10, 1 << 14} {
		sh, _, err := spread.Measure(h, nn)
		must(err)
		fmt.Printf("§3.2.3 S_ℋ(%d) = %d = D(n) = %d; S/(n ln n) = %.3f (Θ(n log n), optimal)\n",
			nn, sh, numtheory.DivisorSummatory(nn), spread.FitNLogN(nn, sh))
	}

	// Measured growth exponents over n = 2^6 … 2^12.
	ns := []int64{1 << 6, 1 << 8, 1 << 10, 1 << 12}
	fmt.Println("§3.2  fitted spread growth S(n) ≈ C·n^α over n = 2^6..2^12:")
	for _, f := range []core.StorageMapping{
		core.Diagonal{}, core.SquareShell{}, core.Morton{}, core.NewCachedHyperbolic(1 << 12),
	} {
		ss, err := spread.Curve(f, ns)
		must(err)
		fit, err := spread.FitGrowth(ns, ss)
		must(err)
		fmt.Printf("   %-18s %s\n", f.Name(), fit)
	}

	// §4.2: stride growth and crossovers.
	th := apf.NewTHash()
	fmt.Println("§4.2.2 crossovers x₀ where S^<c> ≥ S^# for all x ≥ x₀ (limit 4096):")
	for _, c := range []int{1, 2, 3} {
		x0, last, err := apf.Crossover(apf.NewTC(c), th, 1<<12)
		must(err)
		paper := map[int]int64{1: 5, 2: 11, 3: 25}[c]
		note := ""
		if x0 != paper {
			note = "  ← measured deviation (see EXPERIMENTS.md E13)"
		}
		fmt.Printf("   T<%d>: paper %d, measured %d (last below at %d)%s\n",
			c, paper, x0, last, note)
	}

	// Prop 4.2 / 4.4: quadratic vs subquadratic strides.
	x := int64(1 << 20)
	sh2, err := th.StrideBig(x)
	must(err)
	ss, err := apf.NewTStar().StrideBig(x)
	must(err)
	fmt.Printf("§4.2.3 strides at x = 2^20: S^# = %s (≤ 2x² = %d); S^★ = %s (≈ 8x·4^√(2 log x) = %.3g)\n",
		sh2, 2*x*x, ss, 8*float64(x)*math.Pow(4, math.Sqrt(40)))

	// §4.2.3: the κ = 2^g danger.
	te := apf.NewTExp()
	fmt.Println("§4.2.3 κ(g) = 2^g group fronts: stride vs x²·log₂ x (superquadratic from g = 3):")
	for g := int64(3); g <= 5; g++ {
		front, err := apf.GroupFront(te, g)
		must(err)
		st, err := te.StrideBig(front)
		must(err)
		bound := float64(front) * float64(front) * math.Log2(float64(front))
		fmt.Printf("   g = %d: x = %d, S_x = %s > x² log x ≈ %.0f\n", g, front, st, bound)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
