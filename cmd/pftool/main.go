// Command pftool is a CLI for the pairfn pairing-function library: print
// sample tables, encode/decode positions, and sweep spread functions.
//
// Usage:
//
//	pftool table  -pf hyperbolic -rows 8 -cols 7
//	pftool encode -pf diagonal 3 4
//	pftool decode -pf square-shell 24
//	pftool spread -pf diagonal,square-shell,hyperbolic -n 1024
//	pftool list
//
// Known -pf names: diagonal, diagonal-twin, square-shell, square-shell-cw,
// aspect-AxB (e.g. aspect-2x3), hyperbolic, dovetail (the 3-way
// square/wide/tall dovetail).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pairfn/internal/core"
	"pairfn/internal/spread"
)

func lookupPF(name string) (core.PF, error) {
	switch name {
	case "diagonal":
		return core.Diagonal{}, nil
	case "diagonal-twin":
		return core.Diagonal{Twin: true}, nil
	case "square-shell":
		return core.SquareShell{}, nil
	case "square-shell-cw":
		return core.SquareShell{Clockwise: true}, nil
	case "hyperbolic":
		return core.Hyperbolic{}, nil
	case "morton":
		return core.Morton{}, nil
	case "hilbert":
		return core.Hilbert{Order: 16}, nil
	case "dovetail":
		return core.MustDovetail(
			core.MustAspect(1, 1), core.MustAspect(1, 2), core.MustAspect(2, 1)), nil
	}
	if rest, ok := strings.CutPrefix(name, "aspect-"); ok {
		parts := strings.SplitN(rest, "x", 2)
		if len(parts) == 2 {
			a, errA := strconv.ParseInt(parts[0], 10, 64)
			b, errB := strconv.ParseInt(parts[1], 10, 64)
			if errA == nil && errB == nil {
				return core.NewAspect(a, b)
			}
		}
	}
	return nil, fmt.Errorf("unknown PF %q (try pftool list)", name)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "list":
		fmt.Println("diagonal  diagonal-twin  square-shell  square-shell-cw  hyperbolic  morton  dovetail  aspect-AxB")
	case "table":
		cmdTable(args)
	case "encode":
		cmdEncode(args)
	case "decode":
		cmdDecode(args)
	case "spread":
		cmdSpread(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pftool {table|encode|decode|spread|list} [flags] [args]`)
	os.Exit(2)
}

func cmdTable(args []string) {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	name := fs.String("pf", "diagonal", "pairing function name")
	rows := fs.Int("rows", 8, "rows to print")
	cols := fs.Int("cols", 8, "columns to print")
	_ = fs.Parse(args)
	f, err := lookupPF(*name)
	die(err)
	for _, row := range core.Table(f, *rows, *cols) {
		for _, v := range row {
			fmt.Printf("%8d", v)
		}
		fmt.Println()
	}
}

func cmdEncode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	name := fs.String("pf", "diagonal", "pairing function name")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		die(fmt.Errorf("encode needs x y"))
	}
	x, err := strconv.ParseInt(rest[0], 10, 64)
	die(err)
	y, err := strconv.ParseInt(rest[1], 10, 64)
	die(err)
	f, err := lookupPF(*name)
	die(err)
	z, err := f.Encode(x, y)
	die(err)
	fmt.Printf("%s(%d, %d) = %d\n", f.Name(), x, y, z)
}

func cmdDecode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	name := fs.String("pf", "diagonal", "pairing function name")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 1 {
		die(fmt.Errorf("decode needs z"))
	}
	z, err := strconv.ParseInt(rest[0], 10, 64)
	die(err)
	f, err := lookupPF(*name)
	die(err)
	x, y, err := f.Decode(z)
	die(err)
	fmt.Printf("%s⁻¹(%d) = (%d, %d)\n", f.Name(), z, x, y)
}

func cmdSpread(args []string) {
	fs := flag.NewFlagSet("spread", flag.ExitOnError)
	names := fs.String("pf", "diagonal,square-shell,hyperbolic", "comma-separated PF names")
	n := fs.Int64("n", 256, "max array size (positions)")
	_ = fs.Parse(args)
	fmt.Printf("%-18s %12s %12s %10s %10s\n", "pf", "n", "S(n)", "S/n²", "S/(n ln n)")
	for _, name := range strings.Split(*names, ",") {
		f, err := lookupPF(strings.TrimSpace(name))
		die(err)
		s, _, err := spread.Measure(f, *n)
		die(err)
		fmt.Printf("%-18s %12d %12d %10.4f %10.4f\n",
			f.Name(), *n, s, spread.FitQuadratic(*n, s), spread.FitNLogN(*n, s))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pftool:", err)
		os.Exit(1)
	}
}
