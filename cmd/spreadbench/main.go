// Command spreadbench sweeps the spread function S_A(n) of eq. 3.1 over n
// for each storage mapping and emits CSV, suitable for regenerating the
// §3.2 compactness comparison: quadratic spreads for 𝒟 and 𝒜₁,₁ versus the
// optimal Θ(n log n) spread of ℋ.
//
// Measurements run through the parallel spread engine (count-balanced
// x-stripes over a bounded worker pool) unless -serial is given; the CSV
// gains a wall_ms column and a per-mapping wall-clock summary goes to
// stderr, so the engine's scaling is visible directly from the tool.
//
// With -json, each measurement is emitted as one JSON object per line
// (JSONL) instead of CSV — the machine-readable form CI archives as a
// benchmark artifact for run-over-run comparison.
//
// Usage:
//
//	spreadbench -max 4096 -points 8 -workers 4 -timeout 30s
//	spreadbench -max 65536 -min 1024 -serial          # serial baseline
//	spreadbench -max 4096 -json > BENCH_spread.json   # JSONL records
//	spreadbench -max 4096 -dumpmetrics                # Prometheus dump
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/numtheory"
	"pairfn/internal/obs"
	"pairfn/internal/spread"
)

func main() {
	max := flag.Int64("max", 4096, "largest n (array positions)")
	min := flag.Int64("min", 2, "smallest n to sample (sweep halves from max until below this)")
	points := flag.Int("points", 8, "number of sample points (doubling from max downward)")
	workers := flag.Int("workers", 0, "parallel engine worker goroutines (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole sweep after this duration (0 = no limit)")
	serial := flag.Bool("serial", false, "measure with the serial loop instead of the parallel engine")
	dumpMetrics := flag.Bool("dumpmetrics", false, "print a Prometheus dump of the engine metrics (points scanned, stripe latencies) to stderr after the sweep")
	jsonOut := flag.Bool("json", false, "emit one JSON object per measurement (JSONL) instead of CSV")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The engine is instrumented only when the dump is requested; a nil
	// registry wires nil (no-op) metrics.
	var reg *obs.Registry
	if *dumpMetrics {
		reg = obs.NewRegistry()
	}
	eng := &spread.Engine{Workers: *workers, Metrics: spread.NewEngineMetrics(reg)}

	mappings := []core.StorageMapping{
		core.Diagonal{},
		core.SquareShell{},
		core.Morton{},
		core.MustAspect(1, 2),
		core.MustDovetail(core.MustAspect(1, 1), core.MustAspect(1, 2), core.MustAspect(2, 1)),
		core.NewCachedHyperbolic(*max),
	}
	var ns []int64
	for n, i := *max, 0; n >= *min && n >= 2 && i < *points; n, i = n/2, i+1 {
		ns = append([]int64{n}, ns...)
	}
	mode := "parallel"
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	if *serial {
		mode = "serial"
		effWorkers = 1
	}
	type record struct {
		Mapping    string  `json:"mapping"`
		N          int64   `json:"n"`
		Spread     int64   `json:"spread"`
		OverN2     float64 `json:"spread_over_n2"`
		OverNLogN  float64 `json:"spread_over_nlogn"`
		LowerBound int64   `json:"lower_bound_Dn"`
		WallMs     float64 `json:"wall_ms"`
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"`
	}
	enc := json.NewEncoder(os.Stdout)
	if !*jsonOut {
		fmt.Println("mapping,n,spread,spread_over_n2,spread_over_nlogn,lower_bound_Dn,wall_ms")
	}
	for _, f := range mappings {
		var total time.Duration
		for _, n := range ns {
			var (
				s   int64
				err error
			)
			start := time.Now()
			if *serial {
				s, _, err = spread.Measure(f, n)
			} else {
				s, _, err = eng.Measure(ctx, f, n)
			}
			elapsed := time.Since(start)
			total += elapsed
			if err != nil {
				fmt.Fprintln(os.Stderr, "spreadbench:", err)
				os.Exit(1)
			}
			if *jsonOut {
				if err := enc.Encode(record{
					Mapping: f.Name(), N: n, Spread: s,
					OverN2: spread.FitQuadratic(n, s), OverNLogN: spread.FitNLogN(n, s),
					LowerBound: numtheory.DivisorSummatory(n),
					WallMs:     float64(elapsed.Microseconds()) / 1000,
					Mode:       mode, Workers: effWorkers,
				}); err != nil {
					fmt.Fprintln(os.Stderr, "spreadbench:", err)
					os.Exit(1)
				}
				continue
			}
			fmt.Printf("%s,%d,%d,%.5f,%.5f,%d,%.3f\n",
				f.Name(), n, s,
				spread.FitQuadratic(n, s), spread.FitNLogN(n, s),
				numtheory.DivisorSummatory(n),
				float64(elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(os.Stderr, "spreadbench: %-20s %10.3f ms total (%s, workers=%d)\n",
			f.Name(), float64(total.Microseconds())/1000, mode, effWorkers)
	}
	if *dumpMetrics {
		fmt.Fprintln(os.Stderr)
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "spreadbench: metrics dump:", err)
			os.Exit(1)
		}
	}
}
