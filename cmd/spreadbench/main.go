// Command spreadbench sweeps the spread function S_A(n) of eq. 3.1 over n
// for each storage mapping and emits CSV, suitable for regenerating the
// §3.2 compactness comparison: quadratic spreads for 𝒟 and 𝒜₁,₁ versus the
// optimal Θ(n log n) spread of ℋ.
//
// Usage:
//
//	spreadbench -max 4096 -points 8
package main

import (
	"flag"
	"fmt"
	"os"

	"pairfn/internal/core"
	"pairfn/internal/numtheory"
	"pairfn/internal/spread"
)

func main() {
	max := flag.Int64("max", 4096, "largest n (array positions)")
	points := flag.Int("points", 8, "number of sample points (doubling from max downward)")
	flag.Parse()

	mappings := []core.StorageMapping{
		core.Diagonal{},
		core.SquareShell{},
		core.Morton{},
		core.MustAspect(1, 2),
		core.MustDovetail(core.MustAspect(1, 1), core.MustAspect(1, 2), core.MustAspect(2, 1)),
		core.NewCachedHyperbolic(*max),
	}
	var ns []int64
	for n, i := *max, 0; n >= 2 && i < *points; n, i = n/2, i+1 {
		ns = append([]int64{n}, ns...)
	}
	fmt.Println("mapping,n,spread,spread_over_n2,spread_over_nlogn,lower_bound_Dn")
	for _, f := range mappings {
		for _, n := range ns {
			s, _, err := spread.Measure(f, n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spreadbench:", err)
				os.Exit(1)
			}
			fmt.Printf("%s,%d,%d,%.5f,%.5f,%d\n",
				f.Name(), n, s,
				spread.FitQuadratic(n, s), spread.FitNLogN(n, s),
				numtheory.DivisorSummatory(n))
		}
	}
}
