// Command tabledload is the concurrent load generator for the tabled
// service and the E23 experiment driver: it measures batched set/get
// throughput and latency against either a running tabledserver (HTTP mode)
// or an in-process backend (-direct), where the sharded store and the
// extarray.Sync global-mutex baseline can be compared head to head under
// client contention.
//
// Usage:
//
//	tabledload -addr http://localhost:8080 -clients 8 -batch 128 -ops 100000
//	tabledload -addr http://localhost:8080 -wire binary ...     # E26: binary codec
//	tabledload -direct -backend sharded -shards 16 -clients 8 -batch 128
//	tabledload -direct -backend sync    -clients 8 -batch 128   # E23 baseline
//	tabledload -direct -backend hash    -clients 8 -batch 128   # §3-aside store
//
// In HTTP mode, -wire selects the /v1/batch encoding: "json" (the default)
// or "binary", the length-prefixed codec specified in docs/WIRE.md. The
// server accepts both on the same endpoint via content negotiation, so the
// two wires can be compared against one running server (experiment E26).
//
// Each client issues batches of -batch cells at uniformly random positions
// of the rows×cols table: a set-batch with probability -setfrac, else a
// get-batch. With -resize-every K, client 0 additionally grows the table by
// one row every K batches — reshapes under live traffic, the §3 scenario.
// Per-batch latencies are aggregated into p50/p95/p99; the summary goes to
// stderr and, with -json, one machine-readable JSON line to stdout.
//
// Pointed at a tabledrouter (the cluster front door is wire-compatible),
// -nodes adds a per-member summary: the router's /v1/cluster counters are
// snapshotted before and after the run, and the deltas — ops routed,
// sub-batch errors, sub-batch latency percentiles per member — cover
// exactly this run. With -json they ride along as the "nodes" field.
//
// Chaos-verification mode (exercising the tabled WAL):
//
//	tabledload -seq -acklog acked.log -retries 5 ...   # unique cells, log acks
//	<SIGKILL the server mid-run, restart it>
//	tabledload -check acked.log                        # every ack must read back
//
// With -seq every batch writes FRESH cells — positions are assigned from a
// global counter, values are derived from the position — and each
// acknowledged batch is appended to -acklog only after the server's 200.
// -check reads such a log back and verifies every acknowledged cell is
// present with its exact value: the WAL durability contract, falsified if
// any line is missing. -retries wraps the client in jittered-backoff
// retries (with idempotency keys, so a retried batch is never applied
// twice).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pairfn/internal/cluster"
	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/retry"
	"pairfn/internal/tabled"
)

// driver abstracts the two modes behind batch calls.
type driver interface {
	setBatch(cells []tabled.Cell[string]) error
	getBatch(keys []tabled.Pos) error
	resize(rows, cols int64) error
	describe() tabled.Info
}

type report struct {
	Mode string `json:"mode"`
	// Wire has no omitempty: a -json consumer diffing E26 runs needs the
	// field present even when it is JSON-mode's default.
	Wire     string        `json:"wire"`
	Backend  string        `json:"backend"`
	Mapping  string        `json:"mapping,omitempty"`
	Shards   int           `json:"shards"`
	Clients  int           `json:"clients"`
	Batch    int           `json:"batch"`
	SetFrac  float64       `json:"set_fraction"`
	Ops      int64         `json:"ops"`
	Resizes  int64         `json:"resizes"`
	Errors   int64         `json:"errors"`
	WallMs   float64       `json:"wall_ms"`
	OpsPerS  float64       `json:"ops_per_sec"`
	P50us    float64       `json:"batch_p50_us"`
	P95us    float64       `json:"batch_p95_us"`
	P99us    float64       `json:"batch_p99_us"`
	GoMaxPro int           `json:"gomaxprocs"`
	Nodes    []nodeSummary `json:"nodes,omitempty"`
}

// nodeSummary is one cluster member's share of a -nodes run: deltas of the
// router's /v1/cluster counters between the pre- and post-run snapshots,
// so the numbers cover exactly this load run no matter what else hit the
// router before it.
type nodeSummary struct {
	Name   string  `json:"name"`
	State  string  `json:"state"`
	Ops    int64   `json:"ops"`
	Errors int64   `json:"errors"`
	P50us  float64 `json:"sub_batch_p50_us"`
	P95us  float64 `json:"sub_batch_p95_us"`
	P99us  float64 `json:"sub_batch_p99_us"`
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8080", "tabledserver base URL (HTTP mode)")
	direct := flag.Bool("direct", false, "drive an in-process backend instead of a server (E23 mode)")
	backend := flag.String("backend", "sharded", "in-process backend: sharded | sync | hash (with -direct)")
	shards := flag.Int("shards", 16, "shard count for -direct -backend sharded")
	mapping := flag.String("mapping", "square-shell", "storage mapping (any core.ByName form; -direct)")
	rows := flag.Int64("rows", 1024, "table rows (position space; -direct creates the table, HTTP mode resizes to at least this)")
	cols := flag.Int64("cols", 1024, "table cols")
	clients := flag.Int("clients", 8, "concurrent clients")
	batch := flag.Int("batch", 128, "cells per batch")
	ops := flag.Int64("ops", 200000, "total cell operations across all clients")
	setFrac := flag.Float64("setfrac", 0.5, "fraction of batches that are sets")
	resizeEvery := flag.Int("resize-every", 0, "client 0 grows the table by one row every N of its batches (0 = never)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	jsonOut := flag.Bool("json", false, "emit one JSON summary line to stdout")
	retries := flag.Int("retries", 0, "attempts per request with jittered backoff (HTTP mode; 0 = no retries)")
	wire := flag.String("wire", tabled.WireJSON, "batch encoding in HTTP mode: json | binary (docs/WIRE.md)")
	nodesOut := flag.Bool("nodes", false, "per-node summary from the router's /v1/cluster, delta over this run (HTTP mode against tabledrouter)")
	seq := flag.Bool("seq", false, "sequential mode: every batch writes fresh cells with position-derived values (chaos verification)")
	ackPath := flag.String("acklog", "", "append each acknowledged cell as 'x y v' to this file (requires -seq)")
	checkPath := flag.String("check", "", "verify every cell in this ack log reads back with its exact value, then exit")
	flag.Parse()

	var pol *retry.Policy
	if *retries > 0 {
		pol = &retry.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, MaxAttempts: *retries}
	}
	if *wire != tabled.WireJSON && *wire != tabled.WireBinary {
		fmt.Fprintf(os.Stderr, "tabledload: -wire %q: must be %q or %q\n", *wire, tabled.WireJSON, tabled.WireBinary)
		return 2
	}
	if *checkPath != "" {
		return runCheck(*addr, *checkPath, *batch, pol, *wire)
	}
	if *ackPath != "" && !*seq {
		fmt.Fprintln(os.Stderr, "tabledload: -acklog requires -seq (random mode overwrites cells)")
		return 2
	}
	if *seq && *ops > *rows**cols {
		fmt.Fprintf(os.Stderr, "tabledload: -seq needs ops ≤ rows*cols (%d > %d): every cell is written at most once\n",
			*ops, *rows**cols)
		return 2
	}

	var (
		d   driver
		err error
	)
	if *direct {
		d, err = newDirectDriver(*backend, *mapping, *shards, *rows, *cols)
	} else {
		d, err = newHTTPDriver(*addr, *rows, *cols, pol, *wire)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabledload:", err)
		return 1
	}

	var before *cluster.StatusReply
	if *nodesOut {
		if *direct {
			fmt.Fprintln(os.Stderr, "tabledload: -nodes needs HTTP mode against a tabledrouter")
			return 2
		}
		before, err = fetchCluster(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabledload: -nodes: %v (is %s a tabledrouter?)\n", err, *addr)
			return 1
		}
	}

	var acks *ackLogger
	if *ackPath != "" {
		acks, err = newAckLogger(*ackPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tabledload:", err)
			return 1
		}
		defer acks.close()
	}

	totalBatches := *ops / int64(*batch)
	if totalBatches < 1 {
		totalBatches = 1
	}
	var (
		nextBatch atomic.Int64
		errCount  atomic.Int64
		resizes   atomic.Int64
		curRows   atomic.Int64
	)
	curRows.Store(*rows)
	latencies := make([][]float64, *clients)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			cells := make([]tabled.Cell[string], *batch)
			keys := make([]tabled.Pos, *batch)
			myBatches := 0
			for {
				bn := nextBatch.Add(1)
				if bn > totalBatches {
					break
				}
				myBatches++
				if w == 0 && *resizeEvery > 0 && myBatches%*resizeEvery == 0 {
					nr := curRows.Add(1)
					if err := d.resize(nr, *cols); err != nil {
						errCount.Add(1)
					} else {
						resizes.Add(1)
					}
				}
				t0 := time.Now()
				if *seq {
					// Fresh cells from the global batch counter: each position
					// is written exactly once, with a value derived from it,
					// so an ack log can be verified after a crash.
					base := (bn - 1) * int64(*batch)
					for i := range cells {
						idx := base + int64(i)
						x, y := idx / *cols + 1, idx%*cols+1
						cells[i] = tabled.Cell[string]{X: x, Y: y, V: seqValue(x, y)}
					}
					if err := d.setBatch(cells); err != nil {
						errCount.Add(1)
					} else if acks != nil {
						if err := acks.log(cells); err != nil {
							fmt.Fprintln(os.Stderr, "tabledload: acklog:", err)
							errCount.Add(1)
						}
					}
				} else if rng.Float64() < *setFrac {
					for i := range cells {
						cells[i] = tabled.Cell[string]{
							X: rng.Int63n(*rows) + 1, Y: rng.Int63n(*cols) + 1,
							V: fmt.Sprintf("w%d-%d", w, i),
						}
					}
					if err := d.setBatch(cells); err != nil {
						errCount.Add(1)
					}
				} else {
					for i := range keys {
						keys[i] = tabled.Pos{X: rng.Int63n(*rows) + 1, Y: rng.Int63n(*cols) + 1}
					}
					if err := d.getBatch(keys); err != nil {
						errCount.Add(1)
					}
				}
				latencies[w] = append(latencies[w], float64(time.Since(t0).Microseconds()))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []float64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	info := d.describe()
	mode := "http"
	if *direct {
		mode = "direct"
	}
	doneOps := totalBatches * int64(*batch)
	repWire := ""
	if !*direct {
		repWire = *wire
	}
	rep := report{
		Mode: mode, Wire: repWire, Backend: info.Backend, Mapping: info.Mapping, Shards: info.Shards,
		Clients: *clients, Batch: *batch, SetFrac: *setFrac,
		Ops: doneOps, Resizes: resizes.Load(), Errors: errCount.Load(),
		WallMs:  float64(wall.Microseconds()) / 1000,
		OpsPerS: float64(doneOps) / wall.Seconds(),
		P50us:   percentile(all, 0.50), P95us: percentile(all, 0.95), P99us: percentile(all, 0.99),
		GoMaxPro: runtime.GOMAXPROCS(0),
	}
	if before != nil {
		after, err := fetchCluster(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tabledload: -nodes:", err)
			return 1
		}
		rep.Nodes = nodeDeltas(before, after)
	}
	fmt.Fprintf(os.Stderr,
		"tabledload: %s/%s shards=%d clients=%d batch=%d setfrac=%.2f\n"+
			"tabledload: %d ops in %.1f ms → %.0f ops/s (batch p50 %.0f µs, p95 %.0f µs, p99 %.0f µs; %d resizes, %d errors)\n",
		rep.Mode, rep.Backend, rep.Shards, rep.Clients, rep.Batch, rep.SetFrac,
		rep.Ops, rep.WallMs, rep.OpsPerS, rep.P50us, rep.P95us, rep.P99us, rep.Resizes, rep.Errors)
	for _, n := range rep.Nodes {
		fmt.Fprintf(os.Stderr,
			"tabledload: node %s %s: %d ops, %d errors (sub-batch p50 %.0f µs, p95 %.0f µs, p99 %.0f µs)\n",
			n.Name, n.State, n.Ops, n.Errors, n.P50us, n.P95us, n.P99us)
	}
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(&rep); err != nil {
			fmt.Fprintln(os.Stderr, "tabledload:", err)
			return 1
		}
	}
	if rep.Errors > 0 {
		return 1
	}
	return 0
}

// fetchCluster snapshots a tabledrouter's /v1/cluster.
func fetchCluster(addr string) (*cluster.StatusReply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/cluster", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/cluster: %s", resp.Status)
	}
	var reply cluster.StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// nodeDeltas diffs two /v1/cluster snapshots into per-node run summaries.
// Counters are cumulative, so the difference isolates this run; the
// latency percentiles come from the delta of the cumulative histogram
// counts (cluster.HistogramPercentile's shape), converted to µs.
func nodeDeltas(before, after *cluster.StatusReply) []nodeSummary {
	prev := make(map[string]cluster.NodeStatus, len(before.Nodes))
	for _, n := range before.Nodes {
		prev[n.Name] = n
	}
	out := make([]nodeSummary, 0, len(after.Nodes))
	for _, n := range after.Nodes {
		s := nodeSummary{Name: n.Name, State: n.State, Ops: n.Ops, Errors: n.Errors}
		counts := append([]int64(nil), n.LatencyCounts...)
		if p, ok := prev[n.Name]; ok {
			s.Ops -= p.Ops
			s.Errors -= p.Errors
			if len(p.LatencyCounts) == len(counts) {
				for i := range counts {
					counts[i] -= p.LatencyCounts[i]
				}
			}
		}
		s.P50us = cluster.HistogramPercentile(n.LatencyBounds, counts, 0.50) * 1e6
		s.P95us = cluster.HistogramPercentile(n.LatencyBounds, counts, 0.95) * 1e6
		s.P99us = cluster.HistogramPercentile(n.LatencyBounds, counts, 0.99) * 1e6
		out = append(out, s)
	}
	return out
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// directDriver runs batches straight against a Backend.
type directDriver struct {
	b tabled.Backend[string]
}

func newDirectDriver(backend, mapping string, shards int, rows, cols int64) (*directDriver, error) {
	f, err := core.ByName(mapping)
	if err != nil {
		return nil, err
	}
	newStore := func() extarray.Store[string] { return extarray.NewPagedStore[string]() }
	switch backend {
	case "sharded":
		s, err := tabled.NewSharded[string](f, shards, newStore, rows, cols, nil)
		if err != nil {
			return nil, err
		}
		return &directDriver{b: s}, nil
	case "sync":
		arr, err := extarray.New[string](f, extarray.NewPagedStore[string](), rows, cols)
		if err != nil {
			return nil, err
		}
		return &directDriver{b: tabled.WrapTable[string](extarray.NewSync[string](arr),
			tabled.Info{Backend: "sync", Mapping: f.Name(), Shards: 1})}, nil
	case "hash":
		return &directDriver{b: tabled.WrapTable[string](
			extarray.NewSync[string](extarray.NewHashBacked[string](rows, cols)),
			tabled.Info{Backend: "hash", Shards: 1})}, nil
	}
	return nil, fmt.Errorf("unknown backend %q (sharded | sync | hash)", backend)
}

func (d *directDriver) setBatch(cells []tabled.Cell[string]) error {
	for _, err := range d.b.SetBatch(cells) {
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *directDriver) getBatch(keys []tabled.Pos) error {
	for _, r := range d.b.GetBatch(keys) {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

func (d *directDriver) resize(rows, cols int64) error { return d.b.Resize(rows, cols) }
func (d *directDriver) describe() tabled.Info         { return d.b.Describe() }

// httpDriver runs batches through the typed client against a live server.
type httpDriver struct {
	c    *tabled.Client
	info tabled.Info
}

func newHTTPDriver(addr string, rows, cols int64, pol *retry.Policy, wire string) (*httpDriver, error) {
	c := &tabled.Client{Base: addr, Retry: pol, Wire: wire}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("connecting to %s: %w", addr, err)
	}
	// Make sure the position space fits the server's table.
	if reply.Rows < rows || reply.Cols < cols {
		nr, nc := max64(reply.Rows, rows), max64(reply.Cols, cols)
		if err := c.Resize(ctx, nr, nc); err != nil {
			return nil, err
		}
	}
	return &httpDriver{c: c, info: reply.Info}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (d *httpDriver) setBatch(cells []tabled.Cell[string]) error {
	return d.c.Set(context.Background(), cells...)
}

func (d *httpDriver) getBatch(keys []tabled.Pos) error {
	res, err := d.c.GetBatch(context.Background(), keys)
	if err != nil {
		return err
	}
	for _, r := range res {
		if r.Err != "" {
			return fmt.Errorf("%w: %s", tabled.ErrRemote, r.Err)
		}
	}
	return nil
}

func (d *httpDriver) resize(rows, cols int64) error {
	return d.c.Resize(context.Background(), rows, cols)
}

func (d *httpDriver) describe() tabled.Info { return d.info }

// seqValue is the deterministic value for a -seq cell: derived entirely
// from the position, so -check needs no state beyond the ack log.
func seqValue(x, y int64) string { return fmt.Sprintf("s-%d-%d", x, y) }

// ackLogger appends acknowledged cells to a file, one "x y v" line each,
// flushed per batch — the ground truth the durability check replays.
type ackLogger struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

func newAckLogger(path string) (*ackLogger, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &ackLogger{f: f, w: bufio.NewWriter(f)}, nil
}

func (a *ackLogger) log(cells []tabled.Cell[string]) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range cells {
		if _, err := fmt.Fprintf(a.w, "%d %d %s\n", c.X, c.Y, c.V); err != nil {
			return err
		}
	}
	return a.w.Flush()
}

func (a *ackLogger) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = a.w.Flush()
	_ = a.f.Close()
}

// runCheck replays an ack log against the server: every acknowledged cell
// must read back with its exact value. Any miss is a broken durability
// contract and a nonzero exit.
func runCheck(addr, path string, batch int, pol *retry.Policy, wire string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabledload:", err)
		return 1
	}
	type want struct {
		pos tabled.Pos
		v   string
	}
	var wants []want
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		var x, y int64
		var v string
		if _, err := fmt.Sscanf(line, "%d %d %s", &x, &y, &v); err != nil {
			// The writer may itself have been killed mid-flush: a torn FINAL
			// line is an unacknowledged batch, not a lost one. Anything
			// malformed earlier is a corrupt log and fatal.
			if ln == len(lines)-1 || (ln == len(lines)-2 && lines[len(lines)-1] == "") {
				fmt.Fprintf(os.Stderr, "tabledload: ignoring torn final ack line %d\n", ln+1)
				continue
			}
			fmt.Fprintf(os.Stderr, "tabledload: %s:%d: %v\n", path, ln+1, err)
			return 1
		}
		wants = append(wants, want{pos: tabled.Pos{X: x, Y: y}, v: v})
	}
	// A kill mid-flush can also truncate the final VALUE into something that
	// still parses ("s-12-3" cut from "s-12-34"). -acklog implies -seq, so
	// the expected value is derivable: drop a final line that disagrees.
	if n := len(wants); n > 0 {
		last := wants[n-1]
		if last.v != seqValue(last.pos.X, last.pos.Y) {
			fmt.Fprintf(os.Stderr, "tabledload: ignoring torn final ack line (value %q)\n", last.v)
			wants = wants[:n-1]
		}
	}
	c := &tabled.Client{Base: addr, Retry: pol, Wire: wire}
	ctx := context.Background()
	lost := 0
	for i := 0; i < len(wants); i += batch {
		j := i + batch
		if j > len(wants) {
			j = len(wants)
		}
		keys := make([]tabled.Pos, j-i)
		for k := i; k < j; k++ {
			keys[k-i] = wants[k].pos
		}
		res, err := c.GetBatch(ctx, keys)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tabledload: check:", err)
			return 1
		}
		for k, r := range res {
			w := wants[i+k]
			switch {
			case r.Err != "":
				fmt.Fprintf(os.Stderr, "tabledload: LOST (%d,%d): %s\n", w.pos.X, w.pos.Y, r.Err)
				lost++
			case !r.Found:
				fmt.Fprintf(os.Stderr, "tabledload: LOST (%d,%d): acked but absent\n", w.pos.X, w.pos.Y)
				lost++
			case r.V != w.v:
				fmt.Fprintf(os.Stderr, "tabledload: CORRUPT (%d,%d): %q, want %q\n", w.pos.X, w.pos.Y, r.V, w.v)
				lost++
			}
		}
	}
	if lost > 0 {
		fmt.Fprintf(os.Stderr, "tabledload: check FAILED: %d of %d acknowledged cells lost or corrupt\n", lost, len(wants))
		return 1
	}
	fmt.Fprintf(os.Stderr, "tabledload: check ok: all %d acknowledged cells durable\n", len(wants))
	return 0
}
