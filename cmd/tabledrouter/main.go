// Command tabledrouter is the routing front door of a tabledcluster: a
// stateless proxy that splits the storage mapping's address space into
// contiguous ranges owned by N tabledserver members, partitions every
// /v1/batch by owning node with the same counting-sort plan the in-process
// sharded backend uses, fans the sub-batches out concurrently over pooled
// connections, and merges the replies back into request order. To clients
// it is wire-compatible with a single tabledserver — tabled.Client and
// tabledload point at it unchanged, in JSON or binary wire.
//
// Usage:
//
//	tabledrouter -addr :8090 -spec cluster.json \
//	             [-node-wire binary] [-node-timeout 5s] [-retries 3] \
//	             [-health-every 500ms] [-health-timeout 2s] \
//	             [-rate 0 -rate-window 1s] \
//	             [-timeout 30s] [-drain 10s] [-maxbatch 4096] [-pprof]
//
// The cluster spec is a JSON file (see cluster.ParseSpec):
//
//	{"mapping": "square-shell",
//	 "nodes": [
//	   {"name": "n0", "base": "http://127.0.0.1:8081", "lo": 1,     "hi": 30000,
//	    "replica": "http://127.0.0.1:9081"},
//	   {"name": "n1", "base": "http://127.0.0.1:8082", "lo": 30000, "hi": 60000},
//	   {"name": "n2", "base": "http://127.0.0.1:8083", "lo": 60000, "hi": 1099511627776}]}
//
// A node's optional replica is a tabledserver started with
// -replicate-from pointing at its base. While the primary is degraded or
// down the router serves that range's reads from the replica; once the
// replica is promoted (POST /v1/promote) the health checker observes the
// role change and writes fail over too — no router restart.
//
// In -spec mode the file is live: the router re-reads it on SIGHUP and on
// an mtime change (every -spec-poll), builds a fresh routing table, and
// swaps it in between requests. An invalid edit is rejected and logged
// while the old spec keeps serving. -replicas pairs with -nodes the same
// way (positional, empty entries skip).
//
// Ranges must tile the address space from 1 contiguously; the last range's
// hi is the cluster's growth headroom (addresses past it answer a per-op
// routing error). For quick starts, -nodes skips the file: a comma list of
// base URLs split evenly over [1, -max-addr) with -mapping:
//
//	tabledrouter -nodes http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	             -mapping square-shell -max-addr 1000000
//
// The router holds no durable state — run as many as you like behind any
// load balancer. Client idempotency keys are propagated: each sub-batch
// carries a key derived from the client's Idempotency-Key, so end-to-end
// retries replay from the members' caches instead of double-applying.
//
// An active health checker polls every member's /readyz each
// -health-every. Members reporting degraded (read-only after a WAL
// failure) keep receiving reads while writes for their range fail fast
// with a typed error; unreachable members fail fast entirely. The
// router's own /readyz stays 200 while members are down — the healthy
// ranges must keep serving — with the trouble in the ready detail
// ("ready (1/3 nodes unhealthy: node-2 down)") and on /v1/cluster.
//
// -rate enables per-client-IP admission control on /v1/batch: a sliding
// window of -rate requests per -rate-window, refusing the excess with 429.
//
// On SIGINT/SIGTERM the router flips /readyz to 503, drains for up to
// -drain, and exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"pairfn/internal/cluster"
	"pairfn/internal/obs"
	"pairfn/internal/retry"
	"pairfn/internal/srvkit"
	"pairfn/internal/tabled"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8090", "listen address")
	specPath := flag.String("spec", "", "cluster spec JSON file (see cmd doc for the format)")
	nodes := flag.String("nodes", "", "comma-separated member base URLs (even split; alternative to -spec)")
	mapping := flag.String("mapping", "square-shell", "storage mapping every member runs (with -nodes)")
	maxAddr := flag.Int64("max-addr", 1<<20, "address space split evenly across -nodes; the last node absorbs all growth past it")
	nodeWire := flag.String("node-wire", tabled.WireBinary, "member /v1/batch encoding: binary | json")
	nodeTimeout := flag.Duration("node-timeout", 5*time.Second, "per-attempt deadline for one member sub-batch")
	retries := flag.Int("retries", 3, "attempts per member sub-batch (1 = no retry)")
	healthEvery := flag.Duration("health-every", cluster.DefaultHealthInterval, "interval between member /readyz sweeps")
	healthTimeout := flag.Duration("health-timeout", cluster.DefaultHealthTimeout, "per-probe timeout")
	replicas := flag.String("replicas", "", "comma-separated replica URLs matched positionally to -nodes (empty entries skip a node; with -spec, put replicas in the file)")
	specPoll := flag.Duration("spec-poll", srvkit.DefaultReloadPoll, "with -spec: poll interval for live spec reloads (SIGHUP also reloads; negative disables polling)")
	rate := flag.Int("rate", 0, "per-client-IP /v1/batch requests per -rate-window (0 = unlimited)")
	rateWindow := flag.Duration("rate-window", time.Second, "sliding admission window")
	maxBatch := flag.Int("maxbatch", tabled.DefaultMaxBatch, "max ops per /v1/batch request")
	reqTimeout := flag.Duration("timeout", tabled.DefaultBatchTimeout, "per-request handler timeout for /v1/batch (503 on overrun; negative = none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	replicaReads := flag.Bool("replica-reads", false, "offload all-read sub-batches to healthy nodes' live replicas")
	replicaReadLag := flag.Uint64("replica-read-lag", cluster.DefaultReplicaReadMaxLag, "with -replica-reads: max replica record lag before reads stay on the primary")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	reg := obs.NewRegistry()
	ready := obs.NewFlag(true)
	var pol *retry.Policy
	if *retries > 1 {
		pol = &retry.Policy{Base: 50 * time.Millisecond, Max: time.Second, MaxAttempts: *retries}
	}
	copt := cluster.Options{
		Wire:              *nodeWire,
		Retry:             pol,
		NodeTimeout:       *nodeTimeout,
		Registry:          reg,
		Logger:            logger,
		ReplicaReads:      *replicaReads,
		ReplicaReadMaxLag: *replicaReadLag,
		Health: cluster.CheckerOptions{
			Interval: *healthEvery,
			Timeout:  *healthTimeout,
		},
	}

	var (
		src cluster.RouterSource
		bg  []func(context.Context)
	)
	switch {
	case *specPath != "" && *nodes != "":
		fmt.Fprintln(os.Stderr, "tabledrouter: -spec and -nodes are mutually exclusive")
		return 2
	case *specPath != "":
		if *replicas != "" {
			fmt.Fprintln(os.Stderr, "tabledrouter: -replicas goes with -nodes; with -spec, set each node's replica field in the file")
			return 2
		}
		// Spec-file mode reconfigures live: edit the file (promote a
		// replica, move a boundary) and SIGHUP the router — or just wait
		// for the poll. The running router serves until the new one is
		// built and baselined; a botched edit is rejected and logged.
		rl, err := cluster.NewReloader(*specPath, copt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tabledrouter:", err)
			return 2
		}
		src = rl
		bg = append(bg, rl.Run, srvkit.ConfigWatcher{
			Path:   *specPath,
			Poll:   *specPoll,
			Reload: rl.Reload,
			Logger: logger,
		}.Run)
	case *nodes != "":
		// The last node's range is open-ended so the cluster keeps routing
		// as the table grows past -max-addr, as the flag promises.
		spec, err := cluster.EvenSpec(*mapping, strings.Split(*nodes, ","), *maxAddr, math.MaxInt64)
		if err == nil && *replicas != "" {
			err = spec.WithReplicas(strings.Split(*replicas, ","))
		}
		var rt *cluster.Router
		if err == nil {
			rt, err = cluster.New(spec, copt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tabledrouter:", err)
			return 2
		}
		src = rt
		bg = append(bg, rt.Health().Run)
	default:
		fmt.Fprintln(os.Stderr, "tabledrouter: one of -spec or -nodes is required")
		return 2
	}
	rt := src.Router()
	spec := rt.Spec()
	// Baseline the member states before accepting traffic so a member that
	// is already down fails fast from the first request.
	rt.Health().CheckNow(context.Background())

	mux := http.NewServeMux()
	mux.Handle("/", cluster.NewHandler(src, cluster.HandlerOptions{
		MaxBatch:     *maxBatch,
		BatchTimeout: *reqTimeout,
		Limiter:      &cluster.Limiter{Limit: *rate, Window: *rateWindow},
		Registry:     reg,
		Logger:       logger,
		Ready:        ready,
	}))
	if *pprofOn {
		srvkit.MountPprof(mux)
	}

	for _, n := range spec.Nodes {
		logger.Info("member", "node", n.Name, "base", n.Base, "replica", n.Replica,
			"lo", n.Lo, "hi", n.Hi,
			"state", rt.Health().State(indexOf(spec, n.Name)).String())
	}
	logger.Info("routing", "addr", *addr, "mapping", spec.Mapping, "nodes", len(spec.Nodes),
		"node_wire", *nodeWire, "retries", *retries, "rate", *rate,
		"health_every", *healthEvery, "timeout", *reqTimeout, "pprof", *pprofOn)

	lc := srvkit.Lifecycle{
		Server:       srvkit.NewHTTPServer(*addr, mux, *reqTimeout),
		Ready:        ready,
		Logger:       logger,
		DrainTimeout: *drain,
		Background:   bg,
	}
	return lc.Run(context.Background())
}

func indexOf(spec *cluster.Spec, name string) int {
	for i := range spec.Nodes {
		if spec.Nodes[i].Name == name {
			return i
		}
	}
	return 0
}
