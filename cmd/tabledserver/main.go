// Command tabledserver serves a PF-addressed extendible table over the
// batched tabled JSON/HTTP API (§3 as a network service): clients get and
// set cells, and grow or shrink the live table, without the server ever
// remapping a surviving element — that is the pairing-function guarantee
// the daemon exists to demonstrate.
//
// Usage:
//
//	tabledserver -addr :8080 -mapping square-shell -backend sharded \
//	             -shards 16 -rows 1024 -cols 1024 \
//	             [-snapshot table.gob [-snapshot-every 30s]] \
//	             [-wal table.wal [-wal-sync 2ms]] [-faults SPEC] \
//	             [-replicate-from http://primary:8081] [-repl-ack 2s] \
//	             [-timeout 30s] [-drain 10s] [-maxbatch 4096] [-pprof]
//
// Then, from any HTTP client (or the typed tabled.Client):
//
//	curl -X POST localhost:8080/v1/batch -d '{"ops":[
//	    {"op":"set","x":1,"y":2,"v":"hello"},
//	    {"op":"get","x":1,"y":2},
//	    {"op":"resize","rows":2048,"cols":1024},
//	    {"op":"dims"},{"op":"stats"}]}'
//	curl localhost:8080/v1/stats
//	curl -X POST localhost:8080/v1/snapshot
//	curl localhost:8080/metrics      # Prometheus text
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//
// /v1/batch also speaks the compact binary wire format (docs/WIRE.md):
// POST the length-prefixed frame with Content-Type
// application/x-tabled-batch and the response comes back in the same
// encoding. Negotiation is per-request — JSON and binary clients share one
// endpoint, so a fleet can migrate (or roll back) client by client with no
// server flag. The binary path is the zero-allocation one; use it for bulk
// loads (tabledload -wire binary).
//
// Backends: "sharded" (the address-striped store; the default), "sync"
// (extarray.Sync's single RWMutex around a paged Array — the E23 baseline),
// and "hash" (position-hashed §3-aside store behind the same mutex; no
// mapping, no spread). The -mapping flag accepts any core.ByName form
// (diagonal, square-shell, aspect-AxB, hyperbolic, morton, ...).
//
// With -snapshot, the table is loaded from the file on boot when it
// exists (the mapping name inside the snapshot is checked), persisted
// every -snapshot-every (0 disables the timer), on POST /v1/snapshot, and
// once more during shutdown. Writes are atomic (temp file + fsync +
// rename): a crash mid-write never corrupts the previous snapshot.
// Snapshots require the sharded backend. Every save attempt is accounted
// under srvkit_persist_*{name="snapshot"}; after three consecutive
// failures /readyz stays 200 but its body flips to
// "ready (snapshot failing: N consecutive failures)".
//
// With -wal, every acknowledged set/resize is appended to a CRC-framed
// write-ahead log and fsynced before the HTTP response (a 200 means the
// write survives a crash). -wal-sync sets a group-commit window: appends
// within one window share a single fsync. On boot the server loads the
// newest snapshot (if any), then replays the WAL tail on top of it,
// truncating a torn final record. Snapshots checkpoint the log: the save
// and the truncation happen under one cut, so recovery is always snapshot
// + tail. If the WAL volume fails at runtime the server degrades to
// read-only (writes 503, reads 200, /readyz 503) instead of dying; a
// restart recovers. WAL requires the sharded backend.
//
// With -replicate-from, the server runs as a read-only FOLLOWER of the
// named primary (which must itself run with -wal): it tails the primary's
// /v1/repl/frames, applies every record locally, and re-appends it to its
// own WAL — a byte-identical suffix of the primary's record stream —
// fsynced before advancing. Requires -wal. A follower MAY also run with
// -snapshot: record numbering is durable (the WAL keeps a small .state
// sidecar carrying its base sequence and epoch history), so the follower
// checkpoints its own log like a primary does, and a checkpointed
// follower resumes tailing from its absolute position after a restart.
// POST /v1/promote flips it into a primary: the epoch is bumped durably
// FIRST (the fencing token — see DESIGN §5e), then the pull loop stops,
// writes open up, and the router fails the range over (see DESIGN §5d). A
// follower's /readyz reports "degraded: follower ..." — routable for
// reads.
//
// A follower running with -snapshot can also RESEED itself: when the
// primary answers 410 (it checkpointed past the follower's position) or
// 409 under a newer epoch (the follower's log is a stale fork — the
// ex-primary rejoin case), the follower downloads the primary's snapshot
// over /v1/repl/snapshot (CRC-framed, resumable, verified fail-closed),
// installs it atomically, and resumes tailing from the snapshot's cut.
// Without -snapshot those conditions remain sticky failures requiring an
// operator rebuild, as before.
//
// With -repl-ack on a primary, replication turns semi-synchronous: each
// write's HTTP response is withheld until the follower's pulls confirm it
// durable, or the wait expires and the ack is refused with a 503 (the
// write stays durable locally; the client retries). This is the CP
// choice — a dead follower stalls writes rather than widening the window
// of writes only the primary holds.
//
// -timeout bounds one /v1/batch request end to end; an overrun answers a
// clean 503 ("batch timed out"). The connection read/write deadlines are
// derived from it by srvkit.NewHTTPServer — the write deadline always
// exceeds the handler timeout, so a slow batch is cut by the
// 503-producing TimeoutHandler, never by a dropped connection.
//
// -faults enables the deterministic fault injector for chaos testing:
// "seed=7,errrate=0.05,latency=2ms,tornat=8192,syncerr=0.01" (see
// tabled.ParseFaults). Off by default and zero-cost when off.
//
// On SIGINT/SIGTERM the server flips /readyz to 503, drains in-flight
// requests for up to -drain, saves a final snapshot, and exits 0 on a
// clean drain. The final snapshot and WAL close run even when the drain
// deadline is missed — a slow drain costs the exit code, never the data.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/obs"
	"pairfn/internal/srvkit"
	"pairfn/internal/tabled"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	mapping := flag.String("mapping", "square-shell", "storage mapping (any core.ByName form)")
	backend := flag.String("backend", "sharded", "table backend: sharded | sync | hash")
	shards := flag.Int("shards", 16, "shard count for the sharded backend (rounded up to a power of two)")
	rows := flag.Int64("rows", 1024, "initial rows")
	cols := flag.Int64("cols", 1024, "initial cols")
	snapshot := flag.String("snapshot", "", "snapshot file: load on boot, save periodically and on shutdown (sharded backend only)")
	snapEvery := flag.Duration("snapshot-every", 0, "periodic snapshot interval (0 = only on demand and shutdown)")
	walPath := flag.String("wal", "", "write-ahead log file: fsync every acked write, replay on boot (sharded backend only)")
	walSync := flag.Duration("wal-sync", 0, "WAL group-commit window (0 = fsync every append)")
	replFrom := flag.String("replicate-from", "", "primary base URL: run as a read-only follower replicating its WAL (requires -wal; forbids -snapshot)")
	replAck := flag.Duration("repl-ack", 0, "withhold write acks until a follower durably replicated them, 503 after this wait (0 = async replication; requires -wal)")
	faultSpec := flag.String("faults", "", "fault injection spec, e.g. seed=7,errrate=0.05,latency=2ms,tornat=8192,syncerr=0.01 (chaos testing)")
	maxBatch := flag.Int("maxbatch", tabled.DefaultMaxBatch, "max ops per /v1/batch request")
	reqTimeout := flag.Duration("timeout", tabled.DefaultBatchTimeout, "per-request handler timeout for /v1/batch (503 on overrun; negative = none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *replFrom != "" {
		if *walPath == "" || *backend != "sharded" {
			fmt.Fprintln(os.Stderr, "tabledserver: -replicate-from requires -wal and -backend sharded")
			return 2
		}
	}
	if *replAck > 0 && *walPath == "" {
		fmt.Fprintln(os.Stderr, "tabledserver: -repl-ack requires -wal")
		return 2
	}

	f, err := core.ByName(*mapping)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabledserver:", err)
		return 2
	}
	faults, err := tabled.ParseFaults(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabledserver:", err)
		return 2
	}
	injector := tabled.NewFaultInjector(faults)
	if faults != nil {
		logger.Warn("fault injection enabled", "spec", *faultSpec)
	}

	reg := obs.NewRegistry()
	ready := obs.NewFlag(true)
	m := tabled.NewMetrics(reg, *shards)
	newStore := func() extarray.Store[string] { return extarray.NewPagedStore[string]() }

	var (
		table      tabled.Backend[string]
		saveSnap   func() error
		wal        *tabled.WAL
		follower   *tabled.Follower
		writable   *obs.Flag
		snapSaveAt func(w io.Writer, cut, epoch uint64) error
	)
	switch *backend {
	case "sharded":
		var sh *tabled.Sharded[string]
		var snapSeq, snapEpoch uint64
		if *snapshot != "" {
			if _, statErr := os.Stat(*snapshot); statErr == nil {
				// A truncated or bit-rotted snapshot must be a clean refusal
				// to boot (operator intervention), never a decode panic.
				sh, snapSeq, snapEpoch, err = tabled.LoadShardedFileMeta[string](*snapshot, f, *shards, newStore, m)
				if err != nil {
					logger.Error("snapshot load", "path", *snapshot, "err", err)
					return 1
				}
				r, c := sh.Dims()
				logger.Info("snapshot loaded", "path", *snapshot, "rows", r, "cols", c,
					"cells", sh.Len(), "repl_seq", snapSeq, "repl_epoch", snapEpoch)
			}
		}
		if sh == nil {
			sh, err = tabled.NewSharded[string](f, *shards, newStore, *rows, *cols, m)
			if err != nil {
				logger.Error("backend", "err", err)
				return 1
			}
		}
		if *walPath != "" {
			// Recovery = newest snapshot (loaded above) + WAL tail replayed
			// on top; a torn final record is truncated, not fatal. The
			// .state sidecar keeps the log's base sequence and epoch marks
			// durable, and the snapshot's embedded cut resolves any crash
			// window between a snapshot write and the log reset.
			var replayed int
			wal, replayed, err = tabled.OpenWAL(*walPath,
				func(rec tabled.WALRecord) error { return tabled.ApplyWALRecord(sh, rec) },
				tabled.WALOptions{
					SyncWindow:    *walSync,
					Metrics:       m,
					WrapFile:      injector.WrapWALFile,
					StatePath:     *walPath + ".state",
					SnapshotSeq:   snapSeq,
					SnapshotEpoch: snapEpoch,
				})
			if err != nil {
				logger.Error("wal open", "path", *walPath, "err", err)
				return 1
			}
			base, next := wal.SeqState()
			logger.Info("wal open", "path", *walPath, "replayed", replayed,
				"bytes", wal.Size(), "seq", fmt.Sprintf("[%d,%d)", base, next),
				"epoch", wal.Epoch(), "sync_window", *walSync)
			snapSaveAt = sh.SaveAt
		}
		if *replFrom != "" {
			// The boot position is absolute: the sidecar base plus the
			// replayed records — checkpointed records keep their numbers,
			// so a checkpointing follower still presents the right `from`.
			writable = obs.NewFlag(false)
			_, next := wal.SeqState()
			fopt := tabled.FollowerOptions{
				Source:   *replFrom,
				Writable: writable,
				Metrics:  m,
				Logger:   logger,
			}
			if *snapshot != "" {
				// Reseed capability: stranded (410) or forked-under-a-newer-
				// epoch (409) followers rebuild from the primary's snapshot
				// instead of sticking.
				fopt.SnapshotPath = *snapshot
				fopt.Restore = sh.RestoreSnapshot
			}
			follower = tabled.NewFollower(sh, wal, next, fopt)
			logger.Info("follower mode", "source", *replFrom, "position", next,
				"reseed", *snapshot != "")
		}
		if *snapshot != "" {
			path := *snapshot
			saveSnap = func() error { return sh.SaveFile(path) }
			if wal != nil {
				// Checkpoint: the snapshot save and the log reset share one
				// cut, so recovery stays snapshot + tail with nothing lost
				// and nothing applied twice. The cut sequence and epoch are
				// stamped into the snapshot for the boot rule above.
				w := wal
				saveSnap = func() error {
					e := w.Epoch()
					return w.CheckpointAt(func(cut uint64) error { return sh.SaveFileAt(path, cut, e) })
				}
			}
			if follower != nil {
				// A reseed install must never interleave with a checkpoint:
				// both rewrite the snapshot/WAL pair.
				inner := saveSnap
				saveSnap = func() error { return follower.GuardInstall(inner) }
			}
		}
		table = sh
	case "sync":
		arr, err := extarray.New[string](f, extarray.NewPagedStore[string](), *rows, *cols)
		if err != nil {
			logger.Error("backend", "err", err)
			return 1
		}
		table = tabled.WrapTable[string](extarray.NewSync[string](arr),
			tabled.Info{Backend: "sync", Mapping: f.Name(), Shards: 1})
	case "hash":
		table = tabled.WrapTable[string](extarray.NewSync[string](extarray.NewHashBacked[string](*rows, *cols)),
			tabled.Info{Backend: "hash", Shards: 1})
	default:
		fmt.Fprintf(os.Stderr, "tabledserver: unknown backend %q (sharded | sync | hash)\n", *backend)
		return 2
	}
	if *snapshot != "" && saveSnap == nil {
		fmt.Fprintln(os.Stderr, "tabledserver: -snapshot requires -backend sharded")
		return 2
	}
	if *walPath != "" && wal == nil {
		fmt.Fprintln(os.Stderr, "tabledserver: -wal requires -backend sharded")
		return 2
	}
	table = injector.WrapBackend(table)

	// Every snapshot save — periodic, on-demand (/v1/snapshot), and the
	// shutdown one — goes through the persist scheduler, so failures are
	// counted, exported, and surfaced in the /readyz detail text.
	var persist *srvkit.Persist
	if saveSnap != nil {
		persist = srvkit.NewPersist(srvkit.PersistConfig{
			Name:     "snapshot",
			Save:     saveSnap,
			Every:    *snapEvery,
			Registry: reg,
			Logger:   logger,
		})
	}

	// Any server with a WAL serves the replication surface: a primary so a
	// follower can chain from it, a follower so a promoted one already has
	// its own /v1/repl/frames for the next follower.
	var repl *tabled.Repl
	if wal != nil {
		repl = &tabled.Repl{WAL: wal, Follower: follower, Metrics: m, Logger: logger}
		if *replAck > 0 {
			repl.Gate = &tabled.ReplGate{Timeout: *replAck}
			logger.Info("semi-synchronous replication", "ack_timeout", *replAck)
		}
		if snapSaveAt != nil {
			// Snapshot transfer for stranded followers: /v1/repl/snapshot
			// streams a cut-consistent snapshot spooled next to the WAL.
			repl.Snap = &tabled.ReplSnapshots{
				WAL:      wal,
				Save:     snapSaveAt,
				Dir:      filepath.Dir(*walPath),
				Injector: injector,
				Metrics:  m,
				Logger:   logger,
			}
		}
	}

	opt := tabled.ServerOptions{
		Registry:     reg,
		Metrics:      m,
		Logger:       logger,
		Ready:        ready,
		MaxBatch:     *maxBatch,
		BatchTimeout: *reqTimeout,
		WAL:          wal,
		Writable:     writable,
		Repl:         repl,
		ReadyDetail:  persist.Detail,
	}
	if persist != nil {
		opt.Snapshot = persist.SaveNow
	}
	if follower != nil {
		opt.ReadOnlyDetail = func() string {
			return fmt.Sprintf("follower replicating from %s, lag %d", *replFrom, follower.Lag())
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/", tabled.NewHandler(table, opt))
	if *pprofOn {
		srvkit.MountPprof(mux)
	}

	info := table.Describe()
	logger.Info("serving",
		"addr", *addr, "backend", info.Backend, "mapping", *mapping,
		"shards", info.Shards, "rows", *rows, "cols", *cols,
		"snapshot", *snapshot, "timeout", *reqTimeout, "pprof", *pprofOn,
		"wire", "json+binary ("+tabled.ContentTypeBinary+")")

	lc := srvkit.Lifecycle{
		Server:       srvkit.NewHTTPServer(*addr, mux, *reqTimeout),
		Ready:        ready,
		Logger:       logger,
		DrainTimeout: *drain,
		Background:   []func(context.Context){persist.Run},
	}
	if follower != nil {
		// The pull loop is a background task: canceled after the drain and
		// waited for before the Final wal close, so no frame is mid-append
		// when the log shuts.
		lc.Background = append(lc.Background, follower.Run)
	}
	if persist != nil {
		lc.Final = append(lc.Final, srvkit.Step{Name: "final snapshot", Run: persist.SaveNow})
	}
	if wal != nil {
		lc.Final = append(lc.Final, srvkit.Step{Name: "wal close", Run: wal.Close})
	}
	return lc.Run(context.Background())
}
