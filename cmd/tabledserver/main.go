// Command tabledserver serves a PF-addressed extendible table over the
// batched tabled JSON/HTTP API (§3 as a network service): clients get and
// set cells, and grow or shrink the live table, without the server ever
// remapping a surviving element — that is the pairing-function guarantee
// the daemon exists to demonstrate.
//
// Usage:
//
//	tabledserver -addr :8080 -mapping square-shell -backend sharded \
//	             -shards 16 -rows 1024 -cols 1024 \
//	             [-snapshot table.gob [-snapshot-every 30s]] \
//	             [-wal table.wal [-wal-sync 2ms]] [-faults SPEC] \
//	             [-drain 10s] [-maxbatch 4096] [-pprof]
//
// Then, from any HTTP client (or the typed tabled.Client):
//
//	curl -X POST localhost:8080/v1/batch -d '{"ops":[
//	    {"op":"set","x":1,"y":2,"v":"hello"},
//	    {"op":"get","x":1,"y":2},
//	    {"op":"resize","rows":2048,"cols":1024},
//	    {"op":"dims"},{"op":"stats"}]}'
//	curl localhost:8080/v1/stats
//	curl -X POST localhost:8080/v1/snapshot
//	curl localhost:8080/metrics      # Prometheus text
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//
// /v1/batch also speaks the compact binary wire format (docs/WIRE.md):
// POST the length-prefixed frame with Content-Type
// application/x-tabled-batch and the response comes back in the same
// encoding. Negotiation is per-request — JSON and binary clients share one
// endpoint, so a fleet can migrate (or roll back) client by client with no
// server flag. The binary path is the zero-allocation one; use it for bulk
// loads (tabledload -wire binary).
//
// Backends: "sharded" (the address-striped store; the default), "sync"
// (extarray.Sync's single RWMutex around a paged Array — the E23 baseline),
// and "hash" (position-hashed §3-aside store behind the same mutex; no
// mapping, no spread). The -mapping flag accepts any core.ByName form
// (diagonal, square-shell, aspect-AxB, hyperbolic, morton, ...).
//
// With -snapshot, the table is loaded from the file on boot when it
// exists (the mapping name inside the snapshot is checked), persisted
// every -snapshot-every (0 disables the timer), on POST /v1/snapshot, and
// once more during shutdown. Writes are atomic (temp file + fsync +
// rename): a crash mid-write never corrupts the previous snapshot.
// Snapshots require the sharded backend.
//
// With -wal, every acknowledged set/resize is appended to a CRC-framed
// write-ahead log and fsynced before the HTTP response (a 200 means the
// write survives a crash). -wal-sync sets a group-commit window: appends
// within one window share a single fsync. On boot the server loads the
// newest snapshot (if any), then replays the WAL tail on top of it,
// truncating a torn final record. Snapshots checkpoint the log: the save
// and the truncation happen under one cut, so recovery is always snapshot
// + tail. If the WAL volume fails at runtime the server degrades to
// read-only (writes 503, reads 200, /readyz 503) instead of dying; a
// restart recovers. WAL requires the sharded backend.
//
// -faults enables the deterministic fault injector for chaos testing:
// "seed=7,errrate=0.05,latency=2ms,tornat=8192,syncerr=0.01" (see
// tabled.ParseFaults). Off by default and zero-cost when off.
//
// On SIGINT/SIGTERM the server flips /readyz to 503, drains in-flight
// requests for up to -drain, saves a final snapshot, and exits 0 on a
// clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/obs"
	"pairfn/internal/tabled"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	mapping := flag.String("mapping", "square-shell", "storage mapping (any core.ByName form)")
	backend := flag.String("backend", "sharded", "table backend: sharded | sync | hash")
	shards := flag.Int("shards", 16, "shard count for the sharded backend (rounded up to a power of two)")
	rows := flag.Int64("rows", 1024, "initial rows")
	cols := flag.Int64("cols", 1024, "initial cols")
	snapshot := flag.String("snapshot", "", "snapshot file: load on boot, save periodically and on shutdown (sharded backend only)")
	snapEvery := flag.Duration("snapshot-every", 0, "periodic snapshot interval (0 = only on demand and shutdown)")
	walPath := flag.String("wal", "", "write-ahead log file: fsync every acked write, replay on boot (sharded backend only)")
	walSync := flag.Duration("wal-sync", 0, "WAL group-commit window (0 = fsync every append)")
	faultSpec := flag.String("faults", "", "fault injection spec, e.g. seed=7,errrate=0.05,latency=2ms,tornat=8192,syncerr=0.01 (chaos testing)")
	maxBatch := flag.Int("maxbatch", tabled.DefaultMaxBatch, "max ops per /v1/batch request")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	f, err := core.ByName(*mapping)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabledserver:", err)
		return 2
	}
	faults, err := tabled.ParseFaults(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabledserver:", err)
		return 2
	}
	injector := tabled.NewFaultInjector(faults)
	if faults != nil {
		logger.Warn("fault injection enabled", "spec", *faultSpec)
	}

	reg := obs.NewRegistry()
	ready := obs.NewFlag(true)
	m := tabled.NewMetrics(reg, *shards)
	newStore := func() extarray.Store[string] { return extarray.NewPagedStore[string]() }

	var (
		table    tabled.Backend[string]
		saveSnap func() error
		wal      *tabled.WAL
	)
	switch *backend {
	case "sharded":
		var sh *tabled.Sharded[string]
		if *snapshot != "" {
			if _, statErr := os.Stat(*snapshot); statErr == nil {
				// A truncated or bit-rotted snapshot must be a clean refusal
				// to boot (operator intervention), never a decode panic.
				sh, err = tabled.LoadShardedFile[string](*snapshot, f, *shards, newStore, m)
				if err != nil {
					logger.Error("snapshot load", "path", *snapshot, "err", err)
					return 1
				}
				r, c := sh.Dims()
				logger.Info("snapshot loaded", "path", *snapshot, "rows", r, "cols", c, "cells", sh.Len())
			}
		}
		if sh == nil {
			sh, err = tabled.NewSharded[string](f, *shards, newStore, *rows, *cols, m)
			if err != nil {
				logger.Error("backend", "err", err)
				return 1
			}
		}
		if *walPath != "" {
			// Recovery = newest snapshot (loaded above) + WAL tail replayed
			// on top; a torn final record is truncated, not fatal.
			var replayed int
			wal, replayed, err = tabled.OpenWAL(*walPath,
				func(rec tabled.WALRecord) error { return tabled.ApplyWALRecord(sh, rec) },
				tabled.WALOptions{SyncWindow: *walSync, Metrics: m, WrapFile: injector.WrapWALFile})
			if err != nil {
				logger.Error("wal open", "path", *walPath, "err", err)
				return 1
			}
			logger.Info("wal open", "path", *walPath, "replayed", replayed,
				"bytes", wal.Size(), "sync_window", *walSync)
		}
		if *snapshot != "" {
			path := *snapshot
			saveSnap = func() error { return sh.SaveFile(path) }
			if wal != nil {
				// Checkpoint: the snapshot save and the log reset share one
				// cut, so recovery stays snapshot + tail with nothing lost
				// and nothing applied twice.
				saveSnap = func() error {
					return wal.Checkpoint(func() error { return sh.SaveFile(path) })
				}
			}
		}
		table = sh
	case "sync":
		arr, err := extarray.New[string](f, extarray.NewPagedStore[string](), *rows, *cols)
		if err != nil {
			logger.Error("backend", "err", err)
			return 1
		}
		table = tabled.WrapTable[string](extarray.NewSync[string](arr),
			tabled.Info{Backend: "sync", Mapping: f.Name(), Shards: 1})
	case "hash":
		table = tabled.WrapTable[string](extarray.NewSync[string](extarray.NewHashBacked[string](*rows, *cols)),
			tabled.Info{Backend: "hash", Shards: 1})
	default:
		fmt.Fprintf(os.Stderr, "tabledserver: unknown backend %q (sharded | sync | hash)\n", *backend)
		return 2
	}
	if *snapshot != "" && saveSnap == nil {
		fmt.Fprintln(os.Stderr, "tabledserver: -snapshot requires -backend sharded")
		return 2
	}
	if *walPath != "" && wal == nil {
		fmt.Fprintln(os.Stderr, "tabledserver: -wal requires -backend sharded")
		return 2
	}
	table = injector.WrapBackend(table)

	handler := tabled.NewHandler(table, tabled.ServerOptions{
		Registry: reg,
		Metrics:  m,
		Logger:   logger,
		Ready:    ready,
		MaxBatch: *maxBatch,
		Snapshot: saveSnap,
		WAL:      wal,
	})
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *pprofOn {
		// Mounted explicitly: importing net/http/pprof only registers on
		// http.DefaultServeMux, which this server does not use.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		// A stalled or malicious client must not pin a connection forever:
		// bound the whole request read and response write. WriteTimeout
		// comfortably exceeds the per-batch handler timeout so slow batches
		// are cut by the 503-producing TimeoutHandler, not a dropped conn.
		ReadTimeout:  1 * time.Minute,
		WriteTimeout: 2 * time.Minute,
	}

	info := table.Describe()
	logger.Info("serving",
		"addr", *addr, "backend", info.Backend, "mapping", *mapping,
		"shards", info.Shards, "rows", *rows, "cols", *cols,
		"snapshot", *snapshot, "pprof", *pprofOn,
		"wire", "json+binary ("+tabled.ContentTypeBinary+")")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// Periodic snapshots on their own ticker goroutine, stopped by ctx.
	snapDone := make(chan struct{})
	if saveSnap != nil && *snapEvery > 0 {
		go func() {
			defer close(snapDone)
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					start := time.Now()
					if err := saveSnap(); err != nil {
						logger.Error("snapshot", "err", err)
					} else {
						logger.Info("snapshot saved", "path", *snapshot, "took", time.Since(start))
					}
				}
			}
		}()
	} else {
		close(snapDone)
	}

	select {
	case err := <-errc:
		// ListenAndServe only returns pre-shutdown on a real failure
		// (port in use, listener error) — never ErrServerClosed here.
		logger.Error("listen", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard

	// Drain: stop admitting (load balancers see /readyz go 503 first),
	// then let in-flight requests finish within the deadline.
	ready.Set(false)
	logger.Info("shutdown: draining", "timeout", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("shutdown: drain incomplete", "err", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
		code = 1
	}
	<-snapDone
	if saveSnap != nil {
		if err := saveSnap(); err != nil {
			logger.Error("shutdown: final snapshot", "err", err)
			code = 1
		} else {
			logger.Info("shutdown: final snapshot saved", "path", *snapshot)
		}
	}
	if wal != nil {
		if err := wal.Close(); err != nil {
			logger.Error("shutdown: wal close", "err", err)
			code = 1
		}
	}
	if code == 0 {
		logger.Info("shutdown: clean")
	}
	return code
}
