// Command wbcserver serves the §4 Web-Based Computing website: a JSON/HTTP
// API over the APF task-allocation coordinator. Volunteers register, fetch
// prime-counting tasks, and submit results; the project head can query
// attribution of any task index and live metrics.
//
// Usage:
//
//	wbcserver -addr :8080 -apf T# -audit 0.25 -strikes 2 -span 1000 \
//	          -wal wbc.wal -wal-sync 2ms -checkpoint wbc.ckpt \
//	          -checkpoint-every 1m -lease 30s -drain 10s [-pprof]
//
// Then, from any HTTP client:
//
//	curl -X POST localhost:8080/register -d '{"speed":1}'
//	curl -X POST localhost:8080/next     -d '{"volunteer":1}'
//	curl -X POST localhost:8080/submit   -d '{"volunteer":1,"task":3,"result":168}'
//	curl -X POST localhost:8080/heartbeat -d '{"volunteer":1}'
//	curl 'localhost:8080/attribute?task=3'
//	curl localhost:8080/metrics                                   # Prometheus text
//	curl -H 'Accept: application/json' localhost:8080/metrics     # legacy JSON
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//
// Durability: with -wal, every acknowledged mutation is journaled and
// fsynced (group-committed within -wal-sync) before the HTTP response, so
// registration, issuance, and attribution survive kill -9. Boot recovery
// loads the newest -checkpoint (if present) and replays the journal tail;
// a corrupt checkpoint or journal is a clean nonzero exit, a torn final
// journal record is truncated. -checkpoint-every snapshots periodically
// and truncates the journal under the append lock; every checkpoint
// attempt is accounted under srvkit_persist_*{name="checkpoint"}, and
// after three consecutive failures /readyz stays 200 but its body flips
// to "ready (checkpoint failing: N consecutive failures)". A journal
// write failure degrades the server to read-only (mutations 503,
// attribution and metrics 200, /readyz 503 "degraded") instead of
// killing it.
//
// Self-healing: with -lease, a volunteer that stays silent past the TTL
// (no next/submit/heartbeat) is implicitly departed by the lease sweeper;
// its outstanding tasks are reissued to surviving volunteers with exact
// attribution overrides.
//
// -timeout bounds one volunteer-protocol request; an overrun answers a
// clean 503. The connection read/write deadlines are derived from it by
// srvkit.NewHTTPServer, so the write deadline always exceeds the handler
// timeout and slow handlers are cut by the TimeoutHandler, never by a
// dropped connection.
//
// On SIGINT/SIGTERM the server flips /readyz to 503, drains in-flight
// requests for up to -drain, takes a final checkpoint, and exits 0 on a
// clean drain. The final checkpoint and journal close run even when the
// drain deadline is missed. With -pprof, the net/http/pprof profiling
// handlers are mounted under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/obs"
	"pairfn/internal/srvkit"
	"pairfn/internal/wbc"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	apfName := flag.String("apf", "T#", "task-allocation APF (T<1> T<2> T<3> T# T[2] T*)")
	audit := flag.Float64("audit", 0.25, "inline audit probability")
	strikes := flag.Int("strikes", 2, "strikes before ban")
	span := flag.Int64("span", 1000, "prime-count block width")
	seed := flag.Int64("seed", time.Now().UnixNano()%1e9, "audit sampling seed")
	wal := flag.String("wal", "", "journal file for crash-safe mutations (empty = in-memory only)")
	walSync := flag.Duration("wal-sync", 0, "group-commit fsync window (0 = fsync every mutation)")
	ckpt := flag.String("checkpoint", "", "checkpoint file (loaded at boot if present; written at shutdown)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = shutdown only)")
	lease := flag.Duration("lease", 0, "volunteer lease TTL; silent volunteers are expired and their tasks reclaimed (0 = off)")
	reqTimeout := flag.Duration("timeout", 10*time.Second, "per-request handler timeout for the volunteer protocol")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var f apf.APF
	switch *apfName {
	case "T<1>":
		f = apf.NewTC(1)
	case "T<2>":
		f = apf.NewTC(2)
	case "T<3>":
		f = apf.NewTC(3)
	case "T#":
		f = apf.NewTHash()
	case "T[2]":
		f = apf.NewTPow(2)
	case "T*":
		f = apf.NewTStar()
	default:
		fmt.Fprintf(os.Stderr, "wbcserver: unknown APF %q\n", *apfName)
		return 2
	}

	reg := obs.NewRegistry()
	ready := obs.NewFlag(true)
	cfg := wbc.Config{
		APF:         f,
		Workload:    wbc.PrimeCount{Span: *span},
		AuditRate:   *audit,
		StrikeLimit: *strikes,
		Seed:        *seed,
		LeaseTTL:    *lease,
		Obs:         reg,
	}

	// Boot recovery: newest checkpoint (when one exists), then the
	// journal tail. Either being unreadable is a clean failed boot — an
	// accountability service must not start from silently corrupt state.
	var c *wbc.Coordinator
	var err error
	if *ckpt != "" {
		if _, statErr := os.Stat(*ckpt); statErr == nil {
			c, err = wbc.RestoreFile(*ckpt, cfg)
			if err != nil {
				logger.Error("checkpoint restore failed", "path", *ckpt, "err", err)
				return 1
			}
			logger.Info("checkpoint restored", "path", *ckpt)
		}
	}
	if c == nil {
		c, err = wbc.NewCoordinator(cfg)
		if err != nil {
			logger.Error("coordinator", "err", err)
			return 1
		}
	}

	var journal *wbc.Journal
	if *wal != "" {
		j, replayed, jerr := wbc.OpenJournal(*wal, c, wbc.JournalOptions{
			SyncWindow: *walSync,
			Obs:        reg,
			OnDegrade: func(err error) {
				logger.Error("journal failure: entering read-only degraded mode", "err", err)
			},
		})
		if jerr != nil {
			logger.Error("journal recovery failed", "path", *wal, "err", jerr)
			return 1
		}
		journal = j
		logger.Info("journal open", "path", *wal, "replayed", replayed, "sync_window", *walSync)
	}

	// Every checkpoint — periodic and the shutdown one — goes through the
	// persist scheduler, so failures are counted, exported, and surfaced
	// in the /readyz detail text.
	var persist *srvkit.Persist
	if *ckpt != "" {
		path := *ckpt
		persist = srvkit.NewPersist(srvkit.PersistConfig{
			Name:     "checkpoint",
			Save:     func() error { return c.SaveCheckpoint(path) },
			Every:    *ckptEvery,
			Registry: reg,
			Logger:   logger,
		})
	}

	var background []func(context.Context)
	if *lease > 0 {
		sweep := *lease / 4
		if sweep < 10*time.Millisecond {
			sweep = 10 * time.Millisecond
		}
		background = append(background, func(ctx context.Context) {
			c.RunLeaseSweeper(ctx, sweep)
		})
		logger.Info("lease sweeper running", "ttl", *lease, "sweep", sweep)
	}
	background = append(background, persist.Run)

	mux := http.NewServeMux()
	mux.Handle("/", wbc.NewObservedHandler(c, wbc.ServerOptions{
		Registry:       reg,
		Logger:         logger,
		Ready:          ready,
		RequestTimeout: *reqTimeout,
		ReadyDetail:    persist.Detail,
	}))
	if *pprofOn {
		srvkit.MountPprof(mux)
	}

	logger.Info("serving",
		"workload", "prime-count", "apf", f.Name(), "addr", *addr,
		"audit", *audit, "strikes", *strikes, "timeout", *reqTimeout,
		"wal", *wal, "checkpoint", *ckpt, "lease", *lease, "pprof", *pprofOn)

	lc := srvkit.Lifecycle{
		Server:       srvkit.NewHTTPServer(*addr, mux, *reqTimeout),
		Ready:        ready,
		Logger:       logger,
		DrainTimeout: *drain,
		Background:   background,
	}
	if persist != nil {
		lc.Final = append(lc.Final, srvkit.Step{Name: "final checkpoint", Run: persist.SaveNow})
	}
	if journal != nil {
		lc.Final = append(lc.Final, srvkit.Step{Name: "journal close", Run: journal.Close})
	}
	return lc.Run(context.Background())
}
