// Command wbcserver serves the §4 Web-Based Computing website: a JSON/HTTP
// API over the APF task-allocation coordinator. Volunteers register, fetch
// prime-counting tasks, and submit results; the project head can query
// attribution of any task index and live metrics.
//
// Usage:
//
//	wbcserver -addr :8080 -apf T# -audit 0.25 -strikes 2 -span 1000 \
//	          -wal wbc.wal -wal-sync 2ms -checkpoint wbc.ckpt \
//	          -checkpoint-every 1m -lease 30s -drain 10s [-pprof]
//
// Then, from any HTTP client:
//
//	curl -X POST localhost:8080/register -d '{"speed":1}'
//	curl -X POST localhost:8080/next     -d '{"volunteer":1}'
//	curl -X POST localhost:8080/submit   -d '{"volunteer":1,"task":3,"result":168}'
//	curl -X POST localhost:8080/heartbeat -d '{"volunteer":1}'
//	curl 'localhost:8080/attribute?task=3'
//	curl localhost:8080/metrics                                   # Prometheus text
//	curl -H 'Accept: application/json' localhost:8080/metrics     # legacy JSON
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//
// Durability: with -wal, every acknowledged mutation is journaled and
// fsynced (group-committed within -wal-sync) before the HTTP response, so
// registration, issuance, and attribution survive kill -9. Boot recovery
// loads the newest -checkpoint (if present) and replays the journal tail;
// a corrupt checkpoint or journal is a clean nonzero exit, a torn final
// journal record is truncated. -checkpoint-every snapshots periodically
// and truncates the journal under the append lock. A journal write
// failure degrades the server to read-only (mutations 503, attribution
// and metrics 200, /readyz 503 "degraded") instead of killing it.
//
// Self-healing: with -lease, a volunteer that stays silent past the TTL
// (no next/submit/heartbeat) is implicitly departed by the lease sweeper;
// its outstanding tasks are reissued to surviving volunteers with exact
// attribution overrides.
//
// On SIGINT/SIGTERM the server flips /readyz to 503, drains in-flight
// requests for up to -drain, takes a final checkpoint, and exits 0 on a
// clean drain. With -pprof, the net/http/pprof profiling handlers are
// mounted under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/obs"
	"pairfn/internal/wbc"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	apfName := flag.String("apf", "T#", "task-allocation APF (T<1> T<2> T<3> T# T[2] T*)")
	audit := flag.Float64("audit", 0.25, "inline audit probability")
	strikes := flag.Int("strikes", 2, "strikes before ban")
	span := flag.Int64("span", 1000, "prime-count block width")
	seed := flag.Int64("seed", time.Now().UnixNano()%1e9, "audit sampling seed")
	wal := flag.String("wal", "", "journal file for crash-safe mutations (empty = in-memory only)")
	walSync := flag.Duration("wal-sync", 0, "group-commit fsync window (0 = fsync every mutation)")
	ckpt := flag.String("checkpoint", "", "checkpoint file (loaded at boot if present; written at shutdown)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = shutdown only)")
	lease := flag.Duration("lease", 0, "volunteer lease TTL; silent volunteers are expired and their tasks reclaimed (0 = off)")
	reqTimeout := flag.Duration("timeout", 10*time.Second, "per-request handler timeout for the volunteer protocol")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var f apf.APF
	switch *apfName {
	case "T<1>":
		f = apf.NewTC(1)
	case "T<2>":
		f = apf.NewTC(2)
	case "T<3>":
		f = apf.NewTC(3)
	case "T#":
		f = apf.NewTHash()
	case "T[2]":
		f = apf.NewTPow(2)
	case "T*":
		f = apf.NewTStar()
	default:
		fmt.Fprintf(os.Stderr, "wbcserver: unknown APF %q\n", *apfName)
		return 2
	}

	reg := obs.NewRegistry()
	ready := obs.NewFlag(true)
	cfg := wbc.Config{
		APF:         f,
		Workload:    wbc.PrimeCount{Span: *span},
		AuditRate:   *audit,
		StrikeLimit: *strikes,
		Seed:        *seed,
		LeaseTTL:    *lease,
		Obs:         reg,
	}

	// Boot recovery: newest checkpoint (when one exists), then the
	// journal tail. Either being unreadable is a clean failed boot — an
	// accountability service must not start from silently corrupt state.
	var c *wbc.Coordinator
	var err error
	if *ckpt != "" {
		if _, statErr := os.Stat(*ckpt); statErr == nil {
			c, err = wbc.RestoreFile(*ckpt, cfg)
			if err != nil {
				logger.Error("checkpoint restore failed", "path", *ckpt, "err", err)
				return 1
			}
			logger.Info("checkpoint restored", "path", *ckpt)
		}
	}
	if c == nil {
		c, err = wbc.NewCoordinator(cfg)
		if err != nil {
			logger.Error("coordinator", "err", err)
			return 1
		}
	}

	var journal *wbc.Journal
	if *wal != "" {
		j, replayed, jerr := wbc.OpenJournal(*wal, c, wbc.JournalOptions{
			SyncWindow: *walSync,
			Obs:        reg,
			OnDegrade: func(err error) {
				logger.Error("journal failure: entering read-only degraded mode", "err", err)
			},
		})
		if jerr != nil {
			logger.Error("journal recovery failed", "path", *wal, "err", jerr)
			return 1
		}
		journal = j
		logger.Info("journal open", "path", *wal, "replayed", replayed, "sync_window", *walSync)
	}

	bg, bgStop := context.WithCancel(context.Background())
	defer bgStop()
	if *lease > 0 {
		sweep := *lease / 4
		if sweep < 10*time.Millisecond {
			sweep = 10 * time.Millisecond
		}
		go c.RunLeaseSweeper(bg, sweep)
		logger.Info("lease sweeper running", "ttl", *lease, "sweep", sweep)
	}
	if *ckpt != "" && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-bg.Done():
					return
				case <-t.C:
					if err := c.SaveCheckpoint(*ckpt); err != nil {
						logger.Error("periodic checkpoint", "err", err)
					} else {
						logger.Info("checkpoint saved", "path", *ckpt)
					}
				}
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", wbc.NewObservedHandler(c, wbc.ServerOptions{
		Registry:       reg,
		Logger:         logger,
		Ready:          ready,
		RequestTimeout: *reqTimeout,
	}))
	if *pprofOn {
		// Mounted explicitly: importing net/http/pprof only registers on
		// http.DefaultServeMux, which this server does not use.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Must exceed -timeout so TimeoutHandler, not the connection
		// deadline, is what cuts off a slow handler (clients then see a
		// clean 503 instead of a reset).
		WriteTimeout: *reqTimeout + 20*time.Second,
	}

	logger.Info("serving",
		"workload", "prime-count", "apf", f.Name(), "addr", *addr,
		"audit", *audit, "strikes", *strikes,
		"wal", *wal, "checkpoint", *ckpt, "lease", *lease, "pprof", *pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		// ListenAndServe only returns pre-shutdown on a real failure
		// (port in use, listener error) — never ErrServerClosed here.
		logger.Error("listen", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard

	// Drain: stop admitting (load balancers see /readyz go 503 first),
	// then let in-flight requests finish within the deadline.
	ready.Set(false)
	logger.Info("shutdown: draining", "timeout", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("shutdown: drain incomplete", "err", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
		code = 1
	}
	bgStop() // stop sweeper and checkpoint ticker before the final cut

	if *ckpt != "" {
		if err := c.SaveCheckpoint(*ckpt); err != nil {
			logger.Error("final checkpoint", "err", err)
			code = 1
		} else {
			logger.Info("final checkpoint saved", "path", *ckpt)
		}
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			logger.Error("journal close", "err", err)
			code = 1
		}
	}
	if code == 0 {
		logger.Info("shutdown: clean")
	}
	return code
}
