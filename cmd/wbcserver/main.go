// Command wbcserver serves the §4 Web-Based Computing website: a JSON/HTTP
// API over the APF task-allocation coordinator. Volunteers register, fetch
// prime-counting tasks, and submit results; the project head can query
// attribution of any task index and live metrics.
//
// Usage:
//
//	wbcserver -addr :8080 -apf T# -audit 0.25 -strikes 2 -span 1000
//
// Then, from any HTTP client:
//
//	curl -X POST localhost:8080/register -d '{"speed":1}'
//	curl -X POST localhost:8080/next     -d '{"volunteer":1}'
//	curl -X POST localhost:8080/submit   -d '{"volunteer":1,"task":3,"result":168}'
//	curl 'localhost:8080/attribute?task=3'
//	curl  localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/wbc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	apfName := flag.String("apf", "T#", "task-allocation APF (T<1> T<2> T<3> T# T[2] T*)")
	audit := flag.Float64("audit", 0.25, "inline audit probability")
	strikes := flag.Int("strikes", 2, "strikes before ban")
	span := flag.Int64("span", 1000, "prime-count block width")
	seed := flag.Int64("seed", time.Now().UnixNano()%1e9, "audit sampling seed")
	flag.Parse()

	var f apf.APF
	switch *apfName {
	case "T<1>":
		f = apf.NewTC(1)
	case "T<2>":
		f = apf.NewTC(2)
	case "T<3>":
		f = apf.NewTC(3)
	case "T#":
		f = apf.NewTHash()
	case "T[2]":
		f = apf.NewTPow(2)
	case "T*":
		f = apf.NewTStar()
	default:
		fmt.Fprintf(os.Stderr, "wbcserver: unknown APF %q\n", *apfName)
		os.Exit(2)
	}

	c, err := wbc.NewCoordinator(wbc.Config{
		APF:         f,
		Workload:    wbc.PrimeCount{Span: *span},
		AuditRate:   *audit,
		StrikeLimit: *strikes,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wbcserver: serving %s tasks via %s on %s (audit %.2f, strikes %d)",
		"prime-count", f.Name(), *addr, *audit, *strikes)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           wbc.NewHTTPHandler(c),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
