// Command wbcserver serves the §4 Web-Based Computing website: a JSON/HTTP
// API over the APF task-allocation coordinator. Volunteers register, fetch
// prime-counting tasks, and submit results; the project head can query
// attribution of any task index and live metrics.
//
// Usage:
//
//	wbcserver -addr :8080 -apf T# -audit 0.25 -strikes 2 -span 1000 \
//	          -drain 10s [-pprof]
//
// Then, from any HTTP client:
//
//	curl -X POST localhost:8080/register -d '{"speed":1}'
//	curl -X POST localhost:8080/next     -d '{"volunteer":1}'
//	curl -X POST localhost:8080/submit   -d '{"volunteer":1,"task":3,"result":168}'
//	curl 'localhost:8080/attribute?task=3'
//	curl localhost:8080/metrics                                   # Prometheus text
//	curl -H 'Accept: application/json' localhost:8080/metrics     # legacy JSON
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//
// The server exposes per-endpoint request/latency metrics, coordinator
// operation counters and APF encode/decode counters on /metrics, liveness
// on /healthz, and readiness on /readyz. On SIGINT/SIGTERM it flips
// /readyz to 503, drains in-flight requests for up to -drain, and exits 0
// on a clean drain (1 if the drain deadline expires with requests still in
// flight). With -pprof, the net/http/pprof profiling handlers are mounted
// under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/obs"
	"pairfn/internal/wbc"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	apfName := flag.String("apf", "T#", "task-allocation APF (T<1> T<2> T<3> T# T[2] T*)")
	audit := flag.Float64("audit", 0.25, "inline audit probability")
	strikes := flag.Int("strikes", 2, "strikes before ban")
	span := flag.Int64("span", 1000, "prime-count block width")
	seed := flag.Int64("seed", time.Now().UnixNano()%1e9, "audit sampling seed")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var f apf.APF
	switch *apfName {
	case "T<1>":
		f = apf.NewTC(1)
	case "T<2>":
		f = apf.NewTC(2)
	case "T<3>":
		f = apf.NewTC(3)
	case "T#":
		f = apf.NewTHash()
	case "T[2]":
		f = apf.NewTPow(2)
	case "T*":
		f = apf.NewTStar()
	default:
		fmt.Fprintf(os.Stderr, "wbcserver: unknown APF %q\n", *apfName)
		return 2
	}

	reg := obs.NewRegistry()
	ready := obs.NewFlag(true)
	c, err := wbc.NewCoordinator(wbc.Config{
		APF:         f,
		Workload:    wbc.PrimeCount{Span: *span},
		AuditRate:   *audit,
		StrikeLimit: *strikes,
		Seed:        *seed,
		Obs:         reg,
	})
	if err != nil {
		logger.Error("coordinator", "err", err)
		return 1
	}

	mux := http.NewServeMux()
	mux.Handle("/", wbc.NewObservedHandler(c, wbc.ServerOptions{
		Registry: reg,
		Logger:   logger,
		Ready:    ready,
	}))
	if *pprofOn {
		// Mounted explicitly: importing net/http/pprof only registers on
		// http.DefaultServeMux, which this server does not use.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	logger.Info("serving",
		"workload", "prime-count", "apf", f.Name(), "addr", *addr,
		"audit", *audit, "strikes", *strikes, "pprof", *pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		// ListenAndServe only returns pre-shutdown on a real failure
		// (port in use, listener error) — never ErrServerClosed here.
		logger.Error("listen", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard

	// Drain: stop admitting (load balancers see /readyz go 503 first),
	// then let in-flight requests finish within the deadline.
	ready.Set(false)
	logger.Info("shutdown: draining", "timeout", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("shutdown: drain incomplete", "err", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
		return 1
	}
	logger.Info("shutdown: clean")
	return 0
}
