// Command wbcsim runs the §4 Web-Based Computing accountability simulation:
// a mixed population of honest, careless and malicious volunteers computes
// verifiable tasks allocated through an additive pairing function; the
// server audits a sample, bans errant volunteers, and at the end attributes
// every bad result through 𝒯⁻¹ plus the binding ledger.
//
// Usage:
//
//	wbcsim -apf T# -honest 8 -careless 3 -malicious 2 -tasks 50 -audit 0.2
//	wbcsim -footprints             # compactness race across APF families
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pairfn/internal/apf"
	"pairfn/internal/obs"
	"pairfn/internal/wbc"
)

func lookupAPF(name string) (apf.APF, error) {
	switch name {
	case "T<1>":
		return apf.NewTC(1), nil
	case "T<2>":
		return apf.NewTC(2), nil
	case "T<3>":
		return apf.NewTC(3), nil
	case "T#":
		return apf.NewTHash(), nil
	case "T[2]":
		return apf.NewTPow(2), nil
	case "T*":
		return apf.NewTStar(), nil
	}
	return nil, fmt.Errorf("unknown APF %q (have T<1> T<2> T<3> T# T[2] T*)", name)
}

func main() {
	apfName := flag.String("apf", "T#", "task-allocation APF")
	honest := flag.Int("honest", 8, "honest volunteers")
	careless := flag.Int("careless", 3, "careless volunteers (10% bad results)")
	malicious := flag.Int("malicious", 2, "malicious volunteers (90% bad results)")
	churners := flag.Int("churners", 2, "honest volunteers that depart and are replaced")
	tasks := flag.Int("tasks", 50, "tasks per volunteer")
	audit := flag.Float64("audit", 0.2, "inline audit probability")
	strikes := flag.Int("strikes", 2, "strikes before ban")
	span := flag.Int64("span", 200, "prime-count block width")
	seed := flag.Int64("seed", 1, "simulation seed")
	footprints := flag.Bool("footprints", false, "only run the APF footprint race")
	replicate := flag.Int("replicate", 0, "run the r-way replication/voting comparison instead")
	dumpMetrics := flag.Bool("dumpmetrics", false, "print a final Prometheus metrics dump after the simulation")
	flag.Parse()

	if *footprints {
		runFootprints(*tasks)
		return
	}
	if *replicate > 0 {
		runReplicated(*replicate, *tasks, *seed)
		return
	}

	f, err := lookupAPF(*apfName)
	die(err)
	// With -dumpmetrics the whole run is instrumented — coordinator ops,
	// latency histograms, APF encode/decode counts — and dumped at the
	// end in the same exposition format wbcserver scrapes serve.
	var reg *obs.Registry
	if *dumpMetrics {
		reg = obs.NewRegistry()
	}
	res, c, err := wbc.Simulate(wbc.SimConfig{
		Coordinator: wbc.Config{
			APF:         f,
			Workload:    wbc.PrimeCount{Span: *span},
			AuditRate:   *audit,
			StrikeLimit: *strikes,
			Seed:        *seed,
			Obs:         reg,
		},
		Profiles: []wbc.Profile{
			{Name: "honest", Count: *honest, ErrorRate: 0, Tasks: *tasks, Speed: 1},
			{Name: "careless", Count: *careless, ErrorRate: 0.10, Tasks: *tasks, Speed: 1},
			{Name: "malicious", Count: *malicious, ErrorRate: 0.90, Tasks: *tasks, Speed: 2},
			{Name: "churner", Count: *churners, ErrorRate: 0, Tasks: *tasks,
				DepartAfter: *tasks / 3, Speed: 0.5},
		},
		Seed: *seed + 1,
	})
	die(err)

	m := res.Metrics
	fmt.Printf("WBC simulation over %s (%s, span %d)\n", f.Name(), "prime-count", *span)
	fmt.Printf("  volunteers registered: %d (active at end: %d)\n", m.Registered, m.Active)
	fmt.Printf("  tasks issued/completed: %d/%d (%d reissues after churn)\n",
		m.Issued, m.Completed, m.Reissues)
	fmt.Printf("  inline audits: %d, bad caught inline: %d, bans: %d\n",
		m.Audited, m.BadCaught, m.Bans)
	fmt.Printf("  task-table footprint: %d (utilization %.4f)\n",
		m.Footprint, float64(m.Issued)/float64(m.Footprint))
	fmt.Printf("  full end-of-run audit: attribution errors = %d\n", res.AttributionErrors)
	for v, ks := range res.BadByVolunteer {
		if len(ks) > 0 {
			fmt.Printf("    volunteer %3d charged with %d bad results (banned: %v)\n",
				v, len(ks), c.Banned(v))
		}
	}
	fmt.Println("  roster:")
	for _, r := range c.Report() {
		status := "active"
		switch {
		case r.Banned:
			status = "BANNED"
		case r.Departed:
			status = "departed"
		}
		fmt.Printf("    volunteer %3d  row %3d  completed %4d  strikes %d  %s\n",
			r.ID, r.Row, r.Completed, r.Strikes, status)
	}
	if reg != nil {
		wbc.RegisterCoordinatorMetrics(c, reg)
		fmt.Println("\n# final metrics (Prometheus text exposition)")
		die(reg.WritePrometheus(os.Stdout))
	}
}

func runFootprints(tasks int) {
	fmt.Printf("APF footprint race: 64 honest volunteers × %d tasks\n", tasks)
	for _, f := range []apf.APF{apf.NewTC(3), apf.NewTHash(), apf.NewTPow(2), apf.NewTStar()} {
		_, c, err := wbc.Simulate(wbc.SimConfig{
			Coordinator: wbc.Config{APF: f, Workload: wbc.Null{}, Seed: 1},
			Profiles: []wbc.Profile{
				{Name: "honest", Count: 64, ErrorRate: 0, Tasks: tasks, Speed: 1},
			},
			Seed: 2,
		})
		die(err)
		m := c.Metrics()
		fmt.Printf("  %s\n", wbc.FootprintReport{
			Name:        f.Name(),
			Footprint:   m.Footprint,
			Utilization: float64(m.Issued) / float64(m.Footprint),
		})
	}
}

// runReplicated compares accepted-bad-result rates at replication 1 vs r
// for a 10%-careless population — the wbc.Voting extension.
func runReplicated(r, tasks int, seed int64) {
	run := func(rep int) wbc.VotingMetrics {
		v, err := wbc.NewVoting(wbc.Config{
			APF: apf.NewTHash(), Workload: wbc.DivisorSum{}, Seed: seed,
		}, rep)
		die(err)
		c := v.Coordinator()
		type vol struct {
			id  wbc.VolunteerID
			rng *rand.Rand
		}
		var vols []vol
		for i := 0; i < 6; i++ {
			vols = append(vols, vol{c.MustRegister(1), rand.New(rand.NewSource(seed + int64(i)))})
		}
		for step := 0; step < tasks; step++ {
			for _, w := range vols {
				k, l, err := v.NextTask(w.id)
				die(err)
				res := (wbc.DivisorSum{}).Do(wbc.TaskID(l))
				if w.rng.Float64() < 0.10 {
					res++
				}
				_, err = v.Submit(w.id, k, res)
				die(err)
			}
		}
		return v.Metrics()
	}
	fmt.Printf("Replication comparison (6 volunteers, 10%% careless, %d replicas each):\n", tasks)
	for _, rep := range []int{1, r} {
		m := run(rep)
		fmt.Printf("  r = %d: decided %4d logical tasks, accepted bad %3d (%.2f%%), ties %d\n",
			rep, m.Decided, m.AcceptedBad,
			100*float64(m.AcceptedBad)/float64(max64(m.Decided, 1)), m.Ties)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbcsim:", err)
		os.Exit(1)
	}
}
