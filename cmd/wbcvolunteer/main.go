// Command wbcvolunteer is a volunteer client for wbcserver: it registers,
// then loops fetching prime-counting tasks and submitting results. With
// -error it misbehaves at the given rate, which is how one demos the
// accountability pipeline end to end:
//
//	wbcserver -audit 0.5 -strikes 2 &
//	wbcvolunteer -tasks 20                 # honest
//	wbcvolunteer -tasks 20 -error 0.5      # soon banned; then ask the server:
//	curl 'localhost:8080/attribute?task=…'
//
// Against a leased server (wbcserver -lease), -heartbeat keeps the lease
// alive between tasks. With -acklog every acknowledged submission is
// appended as a "task volunteer result" line — the client-side truth the
// chaos harness uses; -check replays such a log against /attribute and
// fails if any acknowledged task is no longer attributed to the volunteer
// that computed it.
//
// Transient failures (connection refused, 5xx — including a degraded
// read-only server) are retried with jittered exponential backoff up to
// -retries attempts; a 4xx — a ban, an unknown id — is a verdict and fails
// immediately. A 409 on submit means the task was reclaimed (our lease
// expired mid-computation) and is skipped, not fatal.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pairfn/internal/retry"
	"pairfn/internal/wbc"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "wbcserver base URL")
	tasks := flag.Int("tasks", 10, "tasks to compute before departing")
	errRate := flag.Float64("error", 0, "probability of corrupting each result")
	span := flag.Int64("span", 1000, "prime-count block width (must match the server)")
	speed := flag.Float64("speed", 1, "speed hint for the front end")
	seed := flag.Int64("seed", time.Now().UnixNano(), "corruption RNG seed")
	depart := flag.Bool("depart", true, "deregister when done")
	retries := flag.Int("retries", 3, "attempts per request for transient failures (1 = no retries)")
	heartbeat := flag.Duration("heartbeat", 0, "lease heartbeat interval (0 = off)")
	acklog := flag.String("acklog", "", "append one 'task volunteer result' line per acknowledged submit")
	check := flag.String("check", "", "verify an acklog against /attribute instead of computing")
	sleep := flag.Duration("sleep", 0, "pause between tasks (lets leases/chaos play out)")
	flag.Parse()

	cl := &wbc.Client{BaseURL: *url}
	pol := &retry.Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, MaxAttempts: *retries}
	// do retries op under the policy. Transport errors and 5xx are
	// transient; any 4xx from the coordinator is permanent.
	do := func(op func() error) error {
		return pol.Do(context.Background(), func(context.Context) error {
			err := op()
			var se *wbc.StatusError
			if errors.As(err, &se) && se.Code < 500 {
				return retry.Permanent(err)
			}
			return err
		})
	}

	if *check != "" {
		os.Exit(runCheck(cl, do, *check))
	}

	rng := rand.New(rand.NewSource(*seed))
	workload := wbc.PrimeCount{Span: *span}

	var ack *os.File
	if *acklog != "" {
		f, err := os.OpenFile(*acklog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("acklog: %v", err)
		}
		defer f.Close()
		ack = f
	}

	var id wbc.VolunteerID
	if err := do(func() (e error) { id, e = cl.Register(*speed); return }); err != nil {
		log.Fatalf("register: %v", err)
	}
	log.Printf("registered as volunteer %d", id)

	if *heartbeat > 0 {
		stopBeat := make(chan struct{})
		defer close(stopBeat)
		go func() {
			t := time.NewTicker(*heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stopBeat:
					return
				case <-t.C:
					if err := do(func() error { return cl.Heartbeat(id) }); err != nil {
						log.Printf("heartbeat: %v", err)
					}
				}
			}
		}()
	}

	for i := 0; i < *tasks; i++ {
		var k wbc.TaskID
		if err := do(func() (e error) { k, e = cl.Next(id); return }); err != nil {
			log.Printf("next: %v (banned?)", err)
			os.Exit(1)
		}
		result := workload.Do(k)
		note := ""
		if rng.Float64() < *errRate {
			result++
			note = "  (corrupted!)"
		}
		var caught bool
		if err := do(func() (e error) { caught, e = cl.Submit(id, k, result); return }); err != nil {
			var se *wbc.StatusError
			if errors.As(err, &se) && se.Code == 409 {
				// The lease sweeper reclaimed this task before our submit
				// landed; someone else owns it now. Not our ack to log.
				log.Printf("submit: task %d reclaimed, skipping: %v", k, err)
				continue
			}
			log.Printf("submit: %v", err)
			os.Exit(1)
		}
		if ack != nil {
			// One unbuffered line per ack: what the server has
			// acknowledged as durable, written before the next fetch.
			if _, err := fmt.Fprintf(ack, "%d %d %d\n", k, id, result); err != nil {
				log.Fatalf("acklog write: %v", err)
			}
		}
		status := ""
		if caught {
			status = "  ← audit caught this one"
		}
		fmt.Printf("task %8d → %d%s%s\n", k, result, note, status)
		if *sleep > 0 {
			time.Sleep(*sleep)
		}
	}
	if *depart {
		if err := do(func() error { return cl.Depart(id) }); err != nil {
			log.Printf("depart: %v", err)
		} else {
			log.Printf("departed; row recycled for the next arrival")
		}
	}
}

// runCheck replays an acklog against /attribute: every acknowledged
// submission must still be attributed to the volunteer that computed it —
// the crash-recovery and reclamation-attribution invariant.
func runCheck(cl *wbc.Client, do func(func() error) error, path string) int {
	f, err := os.Open(path)
	if err != nil {
		log.Printf("check: %v", err)
		return 1
	}
	defer f.Close()
	checked, bad := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var k wbc.TaskID
		var id wbc.VolunteerID
		var result int64
		if _, err := fmt.Sscanf(sc.Text(), "%d %d %d", &k, &id, &result); err != nil {
			log.Printf("check: bad acklog line %q: %v", sc.Text(), err)
			return 1
		}
		var got wbc.VolunteerID
		if err := do(func() (e error) { got, e = cl.Attribute(k); return }); err != nil {
			log.Printf("check: attribute(%d): %v", k, err)
			bad++
			checked++
			continue
		}
		if got != id {
			log.Printf("check: task %d attributed to %d, acknowledged to %d", k, got, id)
			bad++
		}
		checked++
	}
	if err := sc.Err(); err != nil {
		log.Printf("check: %v", err)
		return 1
	}
	if bad > 0 {
		log.Printf("check: FAIL — %d/%d acknowledged submissions lost or mis-attributed", bad, checked)
		return 1
	}
	log.Printf("check: OK — %d acknowledged submissions all attributed correctly", checked)
	return 0
}
