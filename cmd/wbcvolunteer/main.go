// Command wbcvolunteer is a volunteer client for wbcserver: it registers,
// then loops fetching prime-counting tasks and submitting results. With
// -error it misbehaves at the given rate, which is how one demos the
// accountability pipeline end to end:
//
//	wbcserver -audit 0.5 -strikes 2 &
//	wbcvolunteer -tasks 20                 # honest
//	wbcvolunteer -tasks 20 -error 0.5      # soon banned; then ask the server:
//	curl 'localhost:8080/attribute?task=…'
//
// Transient failures (connection refused, 5xx) are retried with jittered
// exponential backoff up to -retries attempts; a 4xx — a ban, an unknown
// id — is a verdict and fails immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pairfn/internal/retry"
	"pairfn/internal/wbc"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "wbcserver base URL")
	tasks := flag.Int("tasks", 10, "tasks to compute before departing")
	errRate := flag.Float64("error", 0, "probability of corrupting each result")
	span := flag.Int64("span", 1000, "prime-count block width (must match the server)")
	speed := flag.Float64("speed", 1, "speed hint for the front end")
	seed := flag.Int64("seed", time.Now().UnixNano(), "corruption RNG seed")
	depart := flag.Bool("depart", true, "deregister when done")
	retries := flag.Int("retries", 3, "attempts per request for transient failures (1 = no retries)")
	flag.Parse()

	cl := &wbc.Client{BaseURL: *url}
	rng := rand.New(rand.NewSource(*seed))
	workload := wbc.PrimeCount{Span: *span}

	pol := &retry.Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, MaxAttempts: *retries}
	// do retries op under the policy. Transport errors and 5xx are
	// transient; any 4xx from the coordinator is permanent.
	do := func(op func() error) error {
		return pol.Do(context.Background(), func(context.Context) error {
			err := op()
			var se *wbc.StatusError
			if errors.As(err, &se) && se.Code < 500 {
				return retry.Permanent(err)
			}
			return err
		})
	}

	var id wbc.VolunteerID
	if err := do(func() (e error) { id, e = cl.Register(*speed); return }); err != nil {
		log.Fatalf("register: %v", err)
	}
	log.Printf("registered as volunteer %d", id)
	for i := 0; i < *tasks; i++ {
		var k wbc.TaskID
		if err := do(func() (e error) { k, e = cl.Next(id); return }); err != nil {
			log.Printf("next: %v (banned?)", err)
			os.Exit(1)
		}
		result := workload.Do(k)
		note := ""
		if rng.Float64() < *errRate {
			result++
			note = "  (corrupted!)"
		}
		var caught bool
		if err := do(func() (e error) { caught, e = cl.Submit(id, k, result); return }); err != nil {
			log.Printf("submit: %v", err)
			os.Exit(1)
		}
		status := ""
		if caught {
			status = "  ← audit caught this one"
		}
		fmt.Printf("task %8d → %d%s%s\n", k, result, note, status)
	}
	if *depart {
		if err := do(func() error { return cl.Depart(id) }); err != nil {
			log.Printf("depart: %v", err)
		} else {
			log.Printf("departed; row recycled for the next arrival")
		}
	}
}
