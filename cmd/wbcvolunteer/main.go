// Command wbcvolunteer is a volunteer client for wbcserver: it registers,
// then loops fetching prime-counting tasks and submitting results. With
// -error it misbehaves at the given rate, which is how one demos the
// accountability pipeline end to end:
//
//	wbcserver -audit 0.5 -strikes 2 &
//	wbcvolunteer -tasks 20                 # honest
//	wbcvolunteer -tasks 20 -error 0.5      # soon banned; then ask the server:
//	curl 'localhost:8080/attribute?task=…'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pairfn/internal/wbc"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "wbcserver base URL")
	tasks := flag.Int("tasks", 10, "tasks to compute before departing")
	errRate := flag.Float64("error", 0, "probability of corrupting each result")
	span := flag.Int64("span", 1000, "prime-count block width (must match the server)")
	speed := flag.Float64("speed", 1, "speed hint for the front end")
	seed := flag.Int64("seed", time.Now().UnixNano(), "corruption RNG seed")
	depart := flag.Bool("depart", true, "deregister when done")
	flag.Parse()

	cl := &wbc.Client{BaseURL: *url}
	rng := rand.New(rand.NewSource(*seed))
	workload := wbc.PrimeCount{Span: *span}

	id, err := cl.Register(*speed)
	if err != nil {
		log.Fatalf("register: %v", err)
	}
	log.Printf("registered as volunteer %d", id)
	for i := 0; i < *tasks; i++ {
		k, err := cl.Next(id)
		if err != nil {
			log.Printf("next: %v (banned?)", err)
			os.Exit(1)
		}
		result := workload.Do(k)
		note := ""
		if rng.Float64() < *errRate {
			result++
			note = "  (corrupted!)"
		}
		caught, err := cl.Submit(id, k, result)
		if err != nil {
			log.Printf("submit: %v", err)
			os.Exit(1)
		}
		status := ""
		if caught {
			status = "  ← audit caught this one"
		}
		fmt.Printf("task %8d → %d%s%s\n", k, result, note, status)
	}
	if *depart {
		if err := cl.Depart(id); err != nil {
			log.Printf("depart: %v", err)
		} else {
			log.Printf("departed; row recycled for the next arrival")
		}
	}
}
