// Extendible-matrix: the §3 scientific-computing scenario.
//
// An iterative solver keeps a dense matrix of simulation state and
// periodically refines its grid, adding rows and columns. With the usual
// row-major layout every refinement remaps the whole matrix (Ω(n²) work for
// O(n) changes, as §3 complains); with a pairing-function layout no element
// ever moves. This example grows a matrix through 12 refinement steps under
// both disciplines and prints the cost ledger, then shows the price PF
// layouts pay — spread — and how choosing the right PF (square-shell for
// near-square matrices) keeps it perfect.
//
// Run with: go run ./examples/extendible-matrix
package main

import (
	"fmt"
	"log"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
)

func main() {
	log.SetFlags(0)

	const steps = 12
	pf := extarray.NewMapBacked[float64](core.SquareShell{}, 2, 2)
	naive := extarray.NewNaiveRowMajor[float64](2, 2)

	// Seed the 2×2 state.
	for x := int64(1); x <= 2; x++ {
		for y := int64(1); y <= 2; y++ {
			set(pf, x, y)
			set(naive, x, y)
		}
	}

	fmt.Println("step  dims      PF moves  naive moves  PF footprint")
	for s := 1; s <= steps; s++ {
		// Refine: one new row and one new column, then initialize them.
		for _, t := range []extarray.Table[float64]{pf, naive} {
			if err := t.Resize(dimsPlus(t, 1, 1)); err != nil {
				log.Fatal(err)
			}
			r, c := t.Dims()
			for x := int64(1); x <= r; x++ {
				set(t, x, c)
			}
			for y := int64(1); y <= c; y++ {
				set(t, r, y)
			}
		}
		r, c := pf.Dims()
		fmt.Printf("%4d  %3d×%-3d  %8d  %11d  %12d\n",
			s, r, c, pf.Stats().Moves, naive.Stats().Moves, pf.Stats().Footprint)
	}

	r, c := pf.Dims()
	n := r * c
	fmt.Printf("\nAfter %d refinements (%d elements):\n", steps, n)
	fmt.Printf("  PF layout moved %d elements; naive row-major moved %d.\n",
		pf.Stats().Moves, naive.Stats().Moves)
	fmt.Printf("  PF footprint %d vs logical size %d — square-shell is perfect\n",
		pf.Stats().Footprint, n)
	fmt.Println("  on square matrices (eq. 3.2): zero moves AND zero waste.")

	// Spot-check numerical state survived every reshape.
	for x := int64(1); x <= r; x++ {
		for y := int64(1); y <= c; y++ {
			v, ok, err := pf.Get(x, y)
			if err != nil || !ok || v != value(x, y) {
				log.Fatalf("state corrupted at (%d, %d): %v %v %v", x, y, v, ok, err)
			}
		}
	}
	fmt.Println("  state verified intact after all reshapes ✓")
}

func dimsPlus(t extarray.Table[float64], dr, dc int64) (int64, int64) {
	r, c := t.Dims()
	return r + dr, c + dc
}

func value(x, y int64) float64 { return float64(x)*1e-3 + float64(y) }

func set(t extarray.Table[float64], x, y int64) {
	if err := t.Set(x, y, value(x, y)); err != nil {
		log.Fatal(err)
	}
}
