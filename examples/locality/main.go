// Locality: the full storage-mapping zoo on one workload.
//
// §3's aside notes that PF storage supports access "by position, by
// row/column, by block (at varying computational costs)". This example
// makes the costs concrete: one 64×64 array, three traversals (a row, a
// column, an aligned 16×16 block), six mappings — the paper's PFs, the
// compiler's row-major, and the modern dyadic curves (Morton, Hilbert).
// Span = address window the traversal touches; pages = distinct 1 KiB
// pages. Every mapping wins somewhere and loses somewhere else; the paper's
// point is that *extendibility* (PFs) and *compactness* (ℋ) are additional
// axes the dyadic curves and row-major simply don't have.
//
// Run with: go run ./examples/locality
package main

import (
	"fmt"
	"log"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
)

func main() {
	log.SetFlags(0)
	const n = 64

	mappings := []core.PF{
		core.RowMajor{Width: n},
		core.Hilbert{Order: 6},
		core.Morton{},
		core.SquareShell{},
		core.Diagonal{},
		core.NewCachedHyperbolic(n * n),
	}

	fmt.Printf("64×64 array; traversal costs (span / pages of 1Ki addresses)\n\n")
	fmt.Printf("%-20s %16s %16s %16s %12s\n",
		"mapping", "row 32 (64 el)", "col 32 (64 el)", "16×16 block", "S(n) spread")
	for _, f := range mappings {
		row, err := extarray.RowCost(f, 32, n)
		die(err)
		col, err := extarray.ColCost(f, 32, n)
		die(err)
		blk, err := extarray.BlockCost(f, 17, 32, 17, 32)
		die(err)
		// Spread over all arrays with ≤ n² positions is only defined for
		// the unbounded mappings; bounded ones report their square.
		spread := "—"
		switch f.(type) {
		case core.RowMajor, core.Hilbert:
			spread = "bounded"
		default:
			s, err := measureSpread(f, n*n)
			if err == nil {
				spread = fmt.Sprintf("%d", s)
			}
		}
		fmt.Printf("%-20s %9d/%-6d %9d/%-6d %9d/%-6d %12s\n",
			f.Name(), row.Span, row.Pages, col.Span, col.Pages, blk.Span, blk.Pages, spread)
	}

	fmt.Println(`
Reading the table:
  row-major      rows perfectly local, columns catastrophic, no extendibility
  hilbert/morton blocks perfectly local (contiguous!), but bounded / dyadic
  square-shell   reshape-free AND perfectly compact on squares; long rows pay
  diagonal       reshape-free; everything pays its quadratic spread
  hyperbolic     reshape-free with OPTIMAL spread over arbitrary shapes (§3.2.3)`)
}

func measureSpread(f core.PF, n int64) (int64, error) {
	var s int64
	for x := int64(1); x <= n; x++ {
		for y := int64(1); y <= n/x; y++ {
			z, err := f.Encode(x, y)
			if err != nil {
				return 0, err
			}
			if z > s {
				s = z
			}
		}
	}
	return s, nil
}

func die(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
