// Quickstart: the three faces of a pairing function.
//
// This example walks through the library's core objects in a few lines
// each: encoding/decoding with the classic pairing functions, measuring
// spread (the §3.2 compactness metric), and using an additive PF as a
// task-allocation function (§4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pairfn/internal/apf"
	"pairfn/internal/core"
	"pairfn/internal/spread"
)

func main() {
	log.SetFlags(0)

	// 1. Pairing functions are bijections N×N ↔ N.
	pfs := []core.PF{core.Diagonal{}, core.SquareShell{}, core.Hyperbolic{}}
	fmt.Println("Encoding position (3, 5) and decoding address 20:")
	for _, f := range pfs {
		z, err := f.Encode(3, 5)
		if err != nil {
			log.Fatal(err)
		}
		x, y, err := f.Decode(20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s (3,5) → %4d      20 → (%d, %d)\n", f.Name(), z, x, y)
	}

	// 2. Spread: how much storage does an n-position array scatter over?
	fmt.Println("\nSpread S(n) = largest address used by any array with ≤ n positions:")
	for _, f := range pfs {
		s, at, err := spread.Measure(f, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s S(256) = %6d  (worst shape peaks at (%d, %d))\n",
			f.Name(), s, at.X, at.Y)
	}
	fmt.Println("  ℋ achieves the optimal Θ(n log n); 𝒟 and 𝒜₁,₁ are quadratic.")

	// 3. Additive PFs: every row is an arithmetic progression, so volunteer
	//    v's t-th task is base + (t−1)·stride — trivially computable, and
	//    invertible for accountability.
	t := apf.NewTHash()
	fmt.Println("\nAdditive PF 𝒯# as a task-allocation function:")
	for v := int64(1); v <= 4; v++ {
		b, err := t.Base(v)
		if err != nil {
			log.Fatal(err)
		}
		s, err := t.Stride(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  volunteer %d: tasks %d, %d, %d, … (stride %d)\n",
			v, b, b+s, b+2*s, s)
	}
	k, err := t.Encode(3, 7)
	if err != nil {
		log.Fatal(err)
	}
	v, seq, err := t.Decode(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  who computed task %d? 𝒯⁻¹(%d) = volunteer %d, their task #%d\n",
		k, k, v, seq)
}
