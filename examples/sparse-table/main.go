// Sparse-table: the §3.2.3 relational-database scenario.
//
// A relational table's shape cannot be bounded a priori: one workload adds
// attributes (columns), another adds tuples (rows). §3.2.3 shows the
// hyperbolic PF ℋ is the right storage mapping here — its worst-case spread
// Θ(n log n) is optimal over arbitrary shapes. This example reshapes one
// table through wildly different aspect ratios under three mappings and
// compares footprints, then demonstrates the aside's alternative: a
// position-keyed hash store with < 2n slots when only point access is
// needed.
//
// Run with: go run ./examples/sparse-table
package main

import (
	"fmt"
	"log"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/hashstore"
)

// phase is one workload era of the table's life.
type phase struct {
	name       string
	rows, cols int64
}

func main() {
	log.SetFlags(0)

	phases := []phase{
		{"OLTP ingest (tall)", 512, 4},
		{"feature engineering (wide)", 16, 128},
		{"archival (square-ish)", 48, 40},
		{"pruned (tall again)", 256, 8},
	}

	mappings := []core.StorageMapping{
		core.Diagonal{},
		core.SquareShell{},
		core.NewCachedHyperbolic(1 << 16),
	}

	fmt.Println("Reshaping one table through 4 workload phases:")
	fmt.Printf("%-28s", "phase (rows×cols)")
	tables := make([]*extarray.Array[string], len(mappings))
	for i, m := range mappings {
		tables[i] = extarray.NewMapBacked[string](m, 1, 1)
		fmt.Printf("  %16s", m.Name())
	}
	fmt.Println()

	for _, ph := range phases {
		for _, t := range tables {
			if err := t.Resize(ph.rows, ph.cols); err != nil {
				log.Fatal(err)
			}
			// Touch every cell of the current shape (tuples materialize).
			for x := int64(1); x <= ph.rows; x++ {
				for y := int64(1); y <= ph.cols; y++ {
					if err := t.Set(x, y, "r"); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		fmt.Printf("%-28s", fmt.Sprintf("%s (%d×%d)", ph.name, ph.rows, ph.cols))
		for _, t := range tables {
			fmt.Printf("  %16d", t.Stats().Footprint)
		}
		fmt.Println()
	}
	fmt.Println("(numbers are footprints: the largest address each mapping has used)")
	fmt.Println("ℋ stays near n·log n across every shape; 𝒟 and 𝒜₁,₁ blow up on the")
	fmt.Println("shapes they disfavor — §3.2.3's optimality, live.")

	// The aside: access-by-position only ⇒ hash the positions.
	fmt.Println("\n§3 aside: if the table is only ever accessed by position,")
	fmt.Println("a hash store beats every PF's spread:")
	open := hashstore.NewOpen[string]()
	n := 0
	for _, ph := range phases {
		for x := int64(1); x <= ph.rows; x++ {
			for y := int64(1); y <= ph.cols; y++ {
				open.Set(hashstore.Position{X: x, Y: y}, "r")
			}
		}
		n = open.Len()
		fmt.Printf("  after %-28s %6d keys in %6d slots (< 2n), mean probes %.2f\n",
			ph.name+":", n, open.Slots(), open.Stats().Mean())
	}
	fmt.Println("  …at the price of losing address arithmetic and locality (§3 aside).")
}
