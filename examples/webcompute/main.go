// Webcompute: the §4 accountability scenario end to end.
//
// A volunteer-computing project hands out blocks of a prime-counting sweep
// (the style of the RSA-factoring / FightAIDS@Home projects §4 cites).
// Tasks are allocated through the additive PF 𝒯#, so the server can answer
// "who computed task k?" with one 𝒯⁻¹ evaluation — no per-task bookkeeping.
// A malicious volunteer corrupts results; sampling audits catch and ban it;
// the end-of-run full audit attributes every bad result exactly.
//
// Run with: go run ./examples/webcompute
package main

import (
	"fmt"
	"log"

	"pairfn/internal/apf"
	"pairfn/internal/wbc"
)

func main() {
	log.SetFlags(0)

	cfg := wbc.SimConfig{
		Coordinator: wbc.Config{
			APF:         apf.NewTHash(),
			Workload:    wbc.PrimeCount{Span: 500},
			AuditRate:   0.25,
			StrikeLimit: 2,
			Seed:        2026,
		},
		Profiles: []wbc.Profile{
			{Name: "honest", Count: 6, ErrorRate: 0, Tasks: 30, Speed: 1},
			{Name: "careless", Count: 2, ErrorRate: 0.08, Tasks: 30, Speed: 1},
			{Name: "malicious", Count: 1, ErrorRate: 0.9, Tasks: 30, Speed: 3},
			{Name: "churner", Count: 1, ErrorRate: 0, Tasks: 24, DepartAfter: 8, Speed: 0.5},
		},
		Seed: 7,
	}
	res, c, err := wbc.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("Volunteer computing with APF task allocation (𝒯#)")
	fmt.Printf("  %d volunteer identities registered (churners re-register)\n", m.Registered)
	fmt.Printf("  %d tasks completed; %d reissued after departures\n", m.Completed, m.Reissues)
	fmt.Printf("  inline audits: %d → %d bad results caught → %d ban(s)\n",
		m.Audited, m.BadCaught, m.Bans)
	fmt.Printf("  task table footprint: %d indices for %d tasks (utilization %.3f)\n",
		m.Footprint, m.Issued, float64(m.Issued)/float64(m.Footprint))

	fmt.Println("\nEnd-of-run full audit (the project head's ledger):")
	if res.AttributionErrors != 0 {
		log.Fatalf("attribution errors: %d", res.AttributionErrors)
	}
	for v, ks := range res.BadByVolunteer {
		if len(ks) == 0 {
			continue
		}
		fmt.Printf("  volunteer %2d: %2d bad results, banned: %-5v  (e.g. task %d)\n",
			v, len(ks), c.Banned(v), ks[0])
	}
	fmt.Println("  every bad result attributed to its true producer ✓")

	// The accountability mechanism itself, by hand:
	fmt.Println("\nAttribution is just 𝒯⁻¹ plus the row-binding ledger:")
	for v, ks := range res.BadByVolunteer {
		if len(ks) == 0 {
			continue
		}
		k := ks[0]
		row, seq, err := c.Ledger().APF().Decode(int64(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  task %d = 𝒯(row %d, seq %d); row %d's binding at seq %d → volunteer %d\n",
			k, row, seq, row, seq, v)
		break
	}
}
