// Webservice: the §4 scheme over real HTTP, self-contained.
//
// This example starts the WBC website on a loopback listener, runs three
// volunteer clients over actual sockets — two honest, one malicious — and
// then interrogates the server's accountability endpoints, exactly the way
// a project head would operate the deployed system (see cmd/wbcserver and
// cmd/wbcvolunteer for the split binaries).
//
// Run with: go run ./examples/webservice
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"pairfn/internal/apf"
	"pairfn/internal/wbc"
)

func main() {
	log.SetFlags(0)

	coord, err := wbc.NewCoordinator(wbc.Config{
		APF:         apf.NewTHash(),
		Workload:    wbc.PrimeCount{Span: 200},
		AuditRate:   0.5,
		StrikeLimit: 2,
		Seed:        2002, // the paper's year
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: wbc.NewHTTPHandler(coord)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("WBC website listening on %s\n\n", base)

	type volunteerPlan struct {
		name    string
		corrupt bool
		tasks   int
	}
	plans := []volunteerPlan{
		{"alice (honest)", false, 12},
		{"bob (honest)", false, 12},
		{"mallory (malicious)", true, 12},
	}
	var wg sync.WaitGroup
	for _, p := range plans {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &wbc.Client{BaseURL: base}
			id, err := cl.Register(1)
			if err != nil {
				log.Fatalf("%s: register: %v", p.name, err)
			}
			fmt.Printf("%-22s registered as volunteer %d\n", p.name, id)
			workload := wbc.PrimeCount{Span: 200}
			for i := 0; i < p.tasks; i++ {
				k, err := cl.Next(id)
				if err != nil {
					fmt.Printf("%-22s cut off after %d tasks: banned\n", p.name, i)
					return
				}
				result := workload.Do(k)
				if p.corrupt {
					result++
				}
				if _, err := cl.Submit(id, k, result); err != nil {
					fmt.Printf("%-22s submit rejected: %v\n", p.name, err)
					return
				}
			}
			fmt.Printf("%-22s completed %d tasks\n", p.name, p.tasks)
		}()
	}
	wg.Wait()

	fmt.Println("\nProject head's view:")
	m := coord.Metrics()
	fmt.Printf("  completed %d tasks; %d audits caught %d bad results; %d ban(s)\n",
		m.Completed, m.Audited, m.BadCaught, m.Bans)
	bad, err := coord.AuditAll()
	if err != nil {
		log.Fatal(err)
	}
	cl := &wbc.Client{BaseURL: base}
	for v, ks := range bad {
		if len(ks) == 0 {
			continue
		}
		// Attribution over the wire, task by task — 𝒯⁻¹ behind one GET.
		who, err := cl.Attribute(ks[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  volunteer %d charged with %d bad results (e.g. /attribute?task=%d → %d)\n",
			v, len(ks), ks[0], who)
		if who != v {
			log.Fatalf("attribution mismatch: %d vs %d", who, v)
		}
	}
	fmt.Println("  attribution verified over HTTP ✓")
}
