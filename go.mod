module pairfn

go 1.22
