package apf

import (
	"math/big"
	"testing"
)

// TestNoBidirectionalAdditivity documents the §3.2 remark that PF-based
// storage gives up "the bidirectional arithmetic progressions enjoyed by
// the standard row- or column-major indexings": every APF is additive
// along rows by construction, but no family is additive along columns —
// the x-direction steps 𝒯(x+1, y) − 𝒯(x, y) vary with x for every fixed y
// we probe. (A total bijection N×N ↔ N additive in both directions cannot
// exist: bidirectional additivity forces 𝒯(x, y) = a·x + b·y + c, which is
// never injective on N×N.)
func TestNoBidirectionalAdditivity(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			for y := int64(1); y <= 4; y++ {
				// Collect the first few x-steps and require them non-constant.
				var steps []*big.Int
				prev, err := f.EncodeBig(1, y)
				if err != nil {
					t.Fatal(err)
				}
				for x := int64(2); x <= 12; x++ {
					cur, err := f.EncodeBig(x, y)
					if err != nil {
						t.Fatal(err)
					}
					steps = append(steps, new(big.Int).Sub(cur, prev))
					prev = cur
				}
				constant := true
				for i := 1; i < len(steps); i++ {
					if steps[i].Cmp(steps[0]) != 0 {
						constant = false
						break
					}
				}
				if constant {
					t.Errorf("column y = %d of %s is an arithmetic progression — impossible for a valid APF", y, f.Name())
				}
			}
		})
	}
}

// TestLinearMapsAreNotPFs backs the parenthetical claim above: a·x+b·y+c
// collides on N×N for every positive a, b (take (x+b, y) vs (x, y+a)).
func TestLinearMapsAreNotPFs(t *testing.T) {
	for a := int64(1); a <= 5; a++ {
		for b := int64(1); b <= 5; b++ {
			x, y := int64(1), int64(1)
			v1 := a*(x+b) + b*y
			v2 := a*x + b*(y+a)
			if v1 != v2 {
				t.Fatalf("expected collision for a=%d b=%d", a, b)
			}
		}
	}
}
