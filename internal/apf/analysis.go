package apf

import (
	"fmt"
	"math/big"
)

// Crossover returns the smallest row index x0 such that the strides of a
// are at least as large as the strides of b for every x in [x0, limit]
// (checked exactly with big.Int arithmetic), along with the last x < x0
// where a's stride is still smaller (0 if none). §4.2.2 reports these
// dominance points for 𝒯^<c> vs 𝒯^#: x0 = 5 for c = 1, 11 for c = 2, and
// 25 for c = 3.
//
// Crossover returns an error if a's strides do not dominate b's anywhere in
// [1, limit], or if a stride is uncomputable.
func Crossover(a, b *Constructed, limit int64) (x0 int64, lastBelow int64, err error) {
	if limit < 1 {
		return 0, 0, fmt.Errorf("apf: Crossover limit %d < 1", limit)
	}
	// Scan from the top: x0−1 is the largest x where S_a(x) < S_b(x).
	x0 = 1
	for x := int64(1); x <= limit; x++ {
		sa, err := a.StrideBig(x)
		if err != nil {
			return 0, 0, fmt.Errorf("apf: Crossover: %s stride at %d: %w", a.Name(), x, err)
		}
		sb, err := b.StrideBig(x)
		if err != nil {
			return 0, 0, fmt.Errorf("apf: Crossover: %s stride at %d: %w", b.Name(), x, err)
		}
		if sa.Cmp(sb) < 0 {
			lastBelow = x
			x0 = x + 1
		}
	}
	if x0 > limit {
		return 0, 0, fmt.Errorf("apf: %s's strides never dominate %s's within [1, %d]",
			a.Name(), b.Name(), limit)
	}
	return x0, lastBelow, nil
}

// Interval is a closed row-index range [Lo, Hi].
type Interval struct {
	Lo, Hi int64
}

// DominanceIntervals returns the maximal intervals within [1, limit] on
// which S_a(x) ≥ S_b(x), computed exactly. It is the full-resolution form
// of Crossover: for 𝒯^<3> vs 𝒯^# it returns [5,8], [25,31], [33,limit], …
// exposing the dip at x = 32 that moves the paper's crossover from 25 to
// 33 (EXPERIMENTS.md E13).
func DominanceIntervals(a, b *Constructed, limit int64) ([]Interval, error) {
	if limit < 1 {
		return nil, fmt.Errorf("apf: DominanceIntervals limit %d < 1", limit)
	}
	var out []Interval
	var openLo int64 = -1
	for x := int64(1); x <= limit; x++ {
		sa, err := a.StrideBig(x)
		if err != nil {
			return nil, err
		}
		sb, err := b.StrideBig(x)
		if err != nil {
			return nil, err
		}
		if sa.Cmp(sb) >= 0 {
			if openLo < 0 {
				openLo = x
			}
		} else if openLo >= 0 {
			out = append(out, Interval{Lo: openLo, Hi: x - 1})
			openLo = -1
		}
	}
	if openLo >= 0 {
		out = append(out, Interval{Lo: openLo, Hi: limit})
	}
	return out, nil
}

// StrideRatio returns S_t(x)/x² as an exact rational. Prop 4.2 bounds it by
// 2 for 𝒯^#; Prop 4.3 sends it to 0 for 𝒯^[k]; for 𝒯^<c> it diverges.
func StrideRatio(t *Constructed, x int64) (*big.Rat, error) {
	s, err := t.StrideBig(x)
	if err != nil {
		return nil, err
	}
	x2 := new(big.Int).Mul(big.NewInt(x), big.NewInt(x))
	return new(big.Rat).SetFrac(s, x2), nil
}

// GroupFront returns the first row x of group g for t, i.e. start(g) — the
// row where a fresh (larger) stride takes effect. The κ(g)=2^g analysis of
// §4.2.3 evaluates strides exactly at these fronts. Fronts beyond int64
// report ErrOverflow; use GroupFrontBig for those.
func GroupFront(t *Constructed, g int64) (int64, error) {
	s, err := t.startOfBig(g)
	if err != nil {
		return 0, err
	}
	if !s.IsInt64() {
		return 0, fmt.Errorf("apf: %s: group %d starts at %s: %w", t.Name(), g, s, ErrOverflow)
	}
	return s.Int64(), nil
}

// GroupFrontBig returns start(g) exactly, however large.
func GroupFrontBig(t *Constructed, g int64) (*big.Int, error) {
	return t.startOfBig(g)
}

// StrideTable returns the strides S_x for x = 1..n as exact big.Ints.
func StrideTable(t *Constructed, n int64) ([]*big.Int, error) {
	out := make([]*big.Int, 0, n)
	for x := int64(1); x <= n; x++ {
		s, err := t.StrideBig(x)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
