package apf

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"pairfn/internal/numtheory"
)

// ErrOverflow reports that an exact int64 computation would exceed int64
// range; the *Big methods remain available.
var ErrOverflow = errors.New("apf: int64 overflow")

// ErrDomain reports a coordinate or address outside N (i.e. < 1).
var ErrDomain = errors.New("apf: argument outside N (must be ≥ 1)")

// ErrUncomputable reports a value whose exact representation is too large
// to materialize even as a big.Int (e.g. a stride of 2^(2^62)), or a group
// search that would enumerate an unreasonable number of groups.
var ErrUncomputable = errors.New("apf: value too large to materialize")

// maxKappaBits bounds the strides the *Big methods will materialize:
// 2^(1+g+κ) with 1+g+κ beyond this limit returns ErrUncomputable instead of
// attempting a multi-gigabyte big.Int.
const maxKappaBits = 1 << 22

// maxGroups bounds how many group starts a prefix-sum search will
// materialize before giving up (a κ like κ ≡ 0 without a closed-form lookup
// would otherwise scan one group per row).
const maxGroups = 1 << 21

// An APF is an additive pairing function. In addition to the PF contract
// (Encode/Decode are mutually inverse bijections N×N ↔ N), every row is an
// arithmetic progression: Encode(x, y) = Base(x) + (y−1)·Stride(x), and
// Base(x) < Stride(x) (Theorem 4.2).
type APF interface {
	// Name returns a short identifier used in tables and benchmarks.
	Name() string
	// Encode returns the task index 𝒯(x, y).
	Encode(x, y int64) (int64, error)
	// Decode inverts Encode.
	Decode(z int64) (x, y int64, err error)
	// Base returns B_x = 𝒯(x, 1).
	Base(x int64) (int64, error)
	// Stride returns S_x = 𝒯(x, y+1) − 𝒯(x, y).
	Stride(x int64) (int64, error)
	// Group returns the 0-based group index g of row x and the copy index
	// κ(g) assigned by Procedure APF-Constructor.
	Group(x int64) (g, kappa int64, err error)
}

// Kappa is a copy-index function κ: group index g (0-based) → κ(g) ≥ 0
// (§4.1 Step 2). Group g then holds 2^κ(g) consecutive rows. κ may grow
// arbitrarily fast; group fronts beyond int64 are tracked exactly.
type Kappa func(g int64) int64

// GroupLookup is an optional closed form for the group of row x, returning
// (g, true) when available; the constructor falls back to prefix-sum binary
// search otherwise. §4.1 notes that translating the range (4.3) into an
// efficient g = f(x) "may be a simple or a challenging enterprise".
type GroupLookup func(x int64) (int64, bool)

// Constructed is the APF produced by Procedure APF-Constructor from a copy
// index κ. Group g starts at row start(g) = 1 + Σ_{j<g} 2^κ(j) (eq. 4.3);
// its i-th member (1-based) carries the odd signature-class residue
// r = 2i−1 (mod 2^{1+κ(g)}) of Lemma 4.1, and
//
//	𝒯(x, y) = 2^g · (2^{1+κ(g)}·(y−1) + r)        (eq. 4.1)
//
// so B_x = 2^g·r and S_x = 2^{1+g+κ(g)} (eq. 4.2). Safe for concurrent use.
type Constructed struct {
	name   string
	kappa  Kappa
	lookup GroupLookup

	mu sync.Mutex
	// starts[g] = first row of group g, exact; starts[0] = 1. Extended
	// lazily; superlinear κ keep this slice very short.
	starts []*big.Int
	// starts64 mirrors starts where the value fits int64, with
	// math.MaxInt64 as the saturation sentinel; it keeps the int64 fast
	// paths allocation-free.
	starts64 []int64
}

// New returns the APF built by Procedure APF-Constructor from κ. The name
// is used in tables and benchmarks; lookup may be nil.
func New(name string, kappa Kappa, lookup GroupLookup) *Constructed {
	return &Constructed{
		name: name, kappa: kappa, lookup: lookup,
		starts:   []*big.Int{big.NewInt(1)},
		starts64: []int64{1},
	}
}

// Name implements APF.
func (t *Constructed) Name() string { return t.name }

// kappaOf returns κ(g), validating non-negativity.
func (t *Constructed) kappaOf(g int64) (int64, error) {
	k := t.kappa(g)
	if k < 0 {
		return 0, fmt.Errorf("apf: %s: κ(%d) = %d is negative", t.name, g, k)
	}
	return k, nil
}

// growLocked appends start(len(starts)) = start(last) + 2^κ(last).
func (t *Constructed) growLocked() error {
	if len(t.starts) >= maxGroups {
		return fmt.Errorf("apf: %s: more than %d groups materialized: %w",
			t.name, maxGroups, ErrUncomputable)
	}
	g := int64(len(t.starts) - 1)
	k, err := t.kappaOf(g)
	if err != nil {
		return err
	}
	if k > maxKappaBits {
		return fmt.Errorf("apf: %s: group %d has 2^%d rows: %w",
			t.name, g, k, ErrUncomputable)
	}
	size := new(big.Int).Lsh(big.NewInt(1), uint(k))
	next := size.Add(size, t.starts[g])
	t.starts = append(t.starts, next)
	if next.IsInt64() {
		t.starts64 = append(t.starts64, next.Int64())
	} else {
		t.starts64 = append(t.starts64, maxInt64) // saturation sentinel
	}
	return nil
}

// maxInt64 is the starts64 saturation sentinel for group starts past int64.
const maxInt64 = int64(^uint64(0) >> 1)

// groupOf64 returns the group and exact start of an int64 row without
// allocating, provided the start fits int64 (it always does for a row that
// fits int64, since start(g) ≤ x). Used by the fast paths.
func (t *Constructed) groupOf64(x int64) (g, start int64, err error) {
	if t.lookup != nil {
		if lg, ok := t.lookup(x); ok {
			t.mu.Lock()
			for int64(len(t.starts)) <= lg {
				if err := t.growLocked(); err != nil {
					t.mu.Unlock()
					return 0, 0, err
				}
			}
			s := t.starts64[lg]
			t.mu.Unlock()
			return lg, s, nil
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for last := t.starts64[len(t.starts64)-1]; last <= x && last != maxInt64; last = t.starts64[len(t.starts64)-1] {
		if err := t.growLocked(); err != nil {
			return 0, 0, err
		}
	}
	i := sort.Search(len(t.starts64), func(i int) bool { return t.starts64[i] > x }) - 1
	if t.starts64[i] == maxInt64 && !t.starts[i].IsInt64() {
		// Only reachable for x = MaxInt64 against a saturated table.
		return 0, 0, fmt.Errorf("apf: %s: row %d: %w", t.name, x, ErrOverflow)
	}
	return int64(i), t.starts64[i], nil
}

// startOfBig returns start(g) exactly, extending the table as needed.
func (t *Constructed) startOfBig(g int64) (*big.Int, error) {
	if g < 0 {
		return nil, fmt.Errorf("apf: %s: negative group %d", t.name, g)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for int64(len(t.starts)) <= g {
		if err := t.growLocked(); err != nil {
			return nil, err
		}
	}
	return t.starts[g], nil
}

// groupOfBig returns the group index g and exact start(g) for a row x ≥ 1
// of any size.
func (t *Constructed) groupOfBig(x *big.Int) (g int64, start *big.Int, err error) {
	if t.lookup != nil && x.IsInt64() {
		if g, ok := t.lookup(x.Int64()); ok {
			s, err := t.startOfBig(g)
			if err != nil {
				return 0, nil, err
			}
			return g, s, nil
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.starts[len(t.starts)-1].Cmp(x) <= 0 {
		if err := t.growLocked(); err != nil {
			return 0, nil, err
		}
	}
	i := sort.Search(len(t.starts), func(i int) bool { return t.starts[i].Cmp(x) > 0 }) - 1
	return int64(i), t.starts[i], nil
}

// Group implements APF.
func (t *Constructed) Group(x int64) (int64, int64, error) {
	if x < 1 {
		return 0, 0, fmt.Errorf("%w: row %d", ErrDomain, x)
	}
	g, _, err := t.groupOf64(x)
	if err != nil {
		return 0, 0, err
	}
	k, err := t.kappaOf(g)
	if err != nil {
		return 0, 0, err
	}
	return g, k, nil
}

// residueBig returns the Lemma 4.1 residue r = 2(x − start(g)) + 1 of row
// x, with its group and copy index.
func (t *Constructed) residueBig(x *big.Int) (g, kappa int64, r *big.Int, err error) {
	g, start, err := t.groupOfBig(x)
	if err != nil {
		return 0, 0, nil, err
	}
	kappa, err = t.kappaOf(g)
	if err != nil {
		return 0, 0, nil, err
	}
	r = new(big.Int).Sub(x, start)
	r.Lsh(r, 1)
	r.Add(r, big.NewInt(1))
	return g, kappa, r, nil
}

// Encode implements APF (eq. 4.1). Values that leave int64 report
// ErrOverflow; use EncodeBig for totality. This path is allocation-free
// (see BenchmarkAPFFastEncode vs BenchmarkAPFBigEncode).
func (t *Constructed) Encode(x, y int64) (int64, error) {
	if x < 1 || y < 1 {
		return 0, fmt.Errorf("%w: position (%d, %d)", ErrDomain, x, y)
	}
	g, start, err := t.groupOf64(x)
	if err != nil {
		return 0, err
	}
	kappa, err := t.kappaOf(g)
	if err != nil {
		return 0, err
	}
	if x-start > (maxInt64-1)/2 {
		return 0, ErrOverflow // r alone would exceed int64
	}
	r := 2*(x-start) + 1
	// odd = 2^{1+κ}·(y−1) + r; z = odd·2^g. Any overflow means the true
	// value exceeds int64.
	shift := 1 + kappa
	if shift > 63 {
		shift = 63 // shifting a nonzero y−1 by ≥ 63 overflows below anyway
	}
	block, err := numtheory.ShlCheck(y-1, int(shift))
	if err != nil {
		return 0, ErrOverflow
	}
	odd, err := numtheory.AddCheck(block, r)
	if err != nil {
		return 0, ErrOverflow
	}
	if g > 62 {
		return 0, ErrOverflow
	}
	z, err := numtheory.ShlCheck(odd, int(g))
	if err != nil {
		return 0, ErrOverflow
	}
	return z, nil
}

// EncodeBig returns 𝒯(x, y) exactly as a big.Int, even when it overflows
// int64 (e.g. the κ(g)=2^g family at moderate x). It returns
// ErrUncomputable if the representation itself would be astronomically
// large.
func (t *Constructed) EncodeBig(x, y int64) (*big.Int, error) {
	if x < 1 || y < 1 {
		return nil, fmt.Errorf("%w: position (%d, %d)", ErrDomain, x, y)
	}
	return t.EncodeBigInt(big.NewInt(x), big.NewInt(y))
}

// EncodeBigInt is EncodeBig for rows and columns of any size.
func (t *Constructed) EncodeBigInt(x, y *big.Int) (*big.Int, error) {
	if x.Sign() < 1 || y.Sign() < 1 {
		return nil, fmt.Errorf("%w: position (%s, %s)", ErrDomain, x, y)
	}
	g, kappa, r, err := t.residueBig(x)
	if err != nil {
		return nil, err
	}
	if 1+g+kappa > maxKappaBits {
		return nil, fmt.Errorf("apf: %s: 2^(1+%d+%d): %w", t.name, g, kappa, ErrUncomputable)
	}
	odd := new(big.Int).Sub(y, big.NewInt(1))
	odd.Lsh(odd, uint(1+kappa))
	odd.Add(odd, r)
	return odd.Lsh(odd, uint(g)), nil
}

// Decode implements APF. The 2-adic valuation of z identifies the group
// (the "trailing 0's of each image integer", Theorem 4.2); the residue
// mod 2^{1+κ(g)} identifies the row; the quotient identifies y. A preimage
// row beyond int64 (possible for fast-growing κ, whose group fronts
// explode) reports ErrOverflow; DecodeBig is total.
func (t *Constructed) Decode(z int64) (int64, int64, error) {
	if z < 1 {
		return 0, 0, fmt.Errorf("%w: address %d", ErrDomain, z)
	}
	g := int64(0)
	for z&(1<<uint(g)) == 0 {
		g++
	}
	start, err := t.startOfBig(g)
	if err != nil {
		return 0, 0, err
	}
	kappa, err := t.kappaOf(g)
	if err != nil {
		return 0, 0, err
	}
	w := z >> uint(g) // odd part
	var r, y int64
	if kappa >= 63 {
		r, y = w, 1
	} else {
		mod := int64(1) << uint(1+kappa)
		r = w % mod
		y = (w-r)/mod + 1
	}
	if !start.IsInt64() {
		return 0, 0, fmt.Errorf("apf: %s: preimage row of %d starts past int64: %w",
			t.name, z, ErrOverflow)
	}
	x, err := numtheory.AddCheck(start.Int64(), (r-1)/2)
	if err != nil {
		return 0, 0, fmt.Errorf("apf: %s: preimage row of %d: %w", t.name, z, ErrOverflow)
	}
	return x, y, nil
}

// DecodeBig inverts EncodeBigInt for addresses of any size.
func (t *Constructed) DecodeBig(z *big.Int) (x, y *big.Int, err error) {
	if z.Sign() < 1 {
		return nil, nil, fmt.Errorf("%w: address %s", ErrDomain, z)
	}
	var g int64
	for z.Bit(int(g)) == 0 {
		g++
	}
	start, err := t.startOfBig(g)
	if err != nil {
		return nil, nil, err
	}
	kappa, err := t.kappaOf(g)
	if err != nil {
		return nil, nil, err
	}
	if 1+g+kappa > maxKappaBits {
		return nil, nil, fmt.Errorf("apf: %s: 2^(1+%d+%d): %w", t.name, g, kappa, ErrUncomputable)
	}
	w := new(big.Int).Rsh(z, uint(g))
	mod := new(big.Int).Lsh(big.NewInt(1), uint(1+kappa))
	r := new(big.Int).Mod(w, mod)
	y = new(big.Int).Sub(w, r)
	y.Div(y, mod)
	y.Add(y, big.NewInt(1))
	x = new(big.Int).Sub(r, big.NewInt(1))
	x.Rsh(x, 1)
	x.Add(x, start)
	return x, y, nil
}

// Base implements APF: B_x = 2^g · r.
func (t *Constructed) Base(x int64) (int64, error) {
	if x < 1 {
		return 0, fmt.Errorf("%w: row %d", ErrDomain, x)
	}
	g, start, err := t.groupOf64(x)
	if err != nil {
		return 0, err
	}
	if g > 62 {
		return 0, ErrOverflow
	}
	b, err := numtheory.ShlCheck(2*(x-start)+1, int(g))
	if err != nil {
		return 0, ErrOverflow
	}
	return b, nil
}

// Stride implements APF: S_x = 2^{1+g+κ(g)} (eq. 4.2).
func (t *Constructed) Stride(x int64) (int64, error) {
	if x < 1 {
		return 0, fmt.Errorf("%w: row %d", ErrDomain, x)
	}
	g, kappa, err := t.Group(x)
	if err != nil {
		return 0, err
	}
	if 1+g+kappa >= 63 {
		return 0, ErrOverflow
	}
	return int64(1) << uint(1+g+kappa), nil
}

// StrideBig returns S_x = 2^{1+g+κ(g)} exactly.
func (t *Constructed) StrideBig(x int64) (*big.Int, error) {
	if x < 1 {
		return nil, fmt.Errorf("%w: row %d", ErrDomain, x)
	}
	g, kappa, err := t.Group(x)
	if err != nil {
		return nil, err
	}
	if 1+g+kappa > maxKappaBits {
		return nil, fmt.Errorf("apf: %s: 2^(1+%d+%d): %w", t.name, g, kappa, ErrUncomputable)
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(1+g+kappa)), nil
}

// StrideExponent returns (g, κ(g), 1+g+κ(g)) for row x: the exact base-2
// exponent of S_x, useful when S_x itself is astronomically large.
func (t *Constructed) StrideExponent(x int64) (g, kappa, exp int64, err error) {
	if x < 1 {
		return 0, 0, 0, fmt.Errorf("%w: row %d", ErrDomain, x)
	}
	g, kappa, err = t.Group(x)
	if err != nil {
		return 0, 0, 0, err
	}
	return g, kappa, 1 + g + kappa, nil
}

// BaseBig returns B_x = 2^g · r exactly.
func (t *Constructed) BaseBig(x int64) (*big.Int, error) {
	if x < 1 {
		return nil, fmt.Errorf("%w: row %d", ErrDomain, x)
	}
	g, _, r, err := t.residueBig(big.NewInt(x))
	if err != nil {
		return nil, err
	}
	return r.Lsh(r, uint(g)), nil
}
