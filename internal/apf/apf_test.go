package apf

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

// testFamilies returns the APFs under test, including the dangerous
// κ(g)=2^g family for small coordinates.
func testFamilies() []*Constructed {
	fs := Families()
	fs = append(fs, NewTC(4), NewTC(6), NewTPow(3), NewTExp())
	return fs
}

// TestBijectionOnBox checks injectivity and Decode∘Encode = id on a box
// (restricted where values overflow int64 — those positions are skipped,
// which exercises the overflow reporting too).
func TestBijectionOnBox(t *testing.T) {
	for _, f := range testFamilies() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			seen := make(map[int64][2]int64)
			checked := 0
			for x := int64(1); x <= 48; x++ {
				for y := int64(1); y <= 48; y++ {
					z, err := f.Encode(x, y)
					if errors.Is(err, ErrOverflow) {
						continue
					}
					if err != nil {
						t.Fatalf("Encode(%d, %d): %v", x, y, err)
					}
					if p, dup := seen[z]; dup {
						t.Fatalf("collision: (%d,%d) and (%d,%d) → %d", p[0], p[1], x, y, z)
					}
					seen[z] = [2]int64{x, y}
					gx, gy, err := f.Decode(z)
					if err != nil {
						t.Fatalf("Decode(%d): %v", z, err)
					}
					if gx != x || gy != y {
						t.Fatalf("Decode(Encode(%d, %d)) = (%d, %d)", x, y, gx, gy)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no positions checked")
			}
		})
	}
}

// TestSurjectivePrefix checks that every address in an initial segment has
// a preimage — Theorem 4.2's "every positive integer equals some power of 2
// times some odd integer" made concrete. For fast-growing κ the preimage
// row can exceed int64 (e.g. 𝒯^[2]'s group 9 starts past 2^64), so the big
// path does the round trip; the int64 path must then report ErrOverflow,
// not a wrong answer.
func TestSurjectivePrefix(t *testing.T) {
	for _, f := range testFamilies() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			for z := int64(1); z <= 4096; z++ {
				bx, by, err := f.DecodeBig(big.NewInt(z))
				if err != nil {
					t.Fatalf("DecodeBig(%d): %v", z, err)
				}
				back, err := f.EncodeBigInt(bx, by)
				if err != nil {
					t.Fatalf("EncodeBigInt(%s, %s): %v", bx, by, err)
				}
				if back.Cmp(big.NewInt(z)) != 0 {
					t.Fatalf("Encode(Decode(%d)) = %s", z, back)
				}
				x, y, err := f.Decode(z)
				if bx.IsInt64() && by.IsInt64() {
					if err != nil || x != bx.Int64() || y != by.Int64() {
						t.Fatalf("Decode(%d) = (%d, %d), %v; big path says (%s, %s)",
							z, x, y, err, bx, by)
					}
				} else if !errors.Is(err, ErrOverflow) {
					t.Fatalf("Decode(%d) with big preimage: err = %v, want ErrOverflow", z, err)
				}
			}
		})
	}
}

// TestTheorem42 verifies eq. 4.2 for every family (experiment E10):
// B_x < S_x = 2^{1+g+κ(g)}, and rows are arithmetic progressions:
// 𝒯(x, y+1) − 𝒯(x, y) = S_x, exactly, in big arithmetic.
func TestTheorem42(t *testing.T) {
	for _, f := range testFamilies() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			for x := int64(1); x <= 300; x++ {
				g, kappa, err := f.Group(x)
				if err != nil {
					t.Fatalf("Group(%d): %v", x, err)
				}
				s, err := f.StrideBig(x)
				if errors.Is(err, ErrUncomputable) {
					continue
				}
				if err != nil {
					t.Fatalf("StrideBig(%d): %v", x, err)
				}
				want := new(big.Int).Lsh(big.NewInt(1), uint(1+g+kappa))
				if s.Cmp(want) != 0 {
					t.Fatalf("S_%d = %s ≠ 2^(1+%d+%d)", x, s, g, kappa)
				}
				b, err := f.BaseBig(x)
				if err != nil {
					t.Fatalf("BaseBig(%d): %v", x, err)
				}
				if b.Cmp(s) >= 0 {
					t.Fatalf("B_%d = %s ≥ S_%d = %s", x, b, x, s)
				}
				if b.Sign() < 1 {
					t.Fatalf("B_%d = %s not positive", x, b)
				}
				// Arithmetic-progression law for a few y.
				prev, err := f.EncodeBig(x, 1)
				if err != nil {
					t.Fatal(err)
				}
				if prev.Cmp(b) != 0 {
					t.Fatalf("𝒯(%d, 1) = %s ≠ B_x = %s", x, prev, b)
				}
				for y := int64(2); y <= 5; y++ {
					cur, err := f.EncodeBig(x, y)
					if err != nil {
						t.Fatal(err)
					}
					diff := new(big.Int).Sub(cur, prev)
					if diff.Cmp(s) != 0 {
						t.Fatalf("𝒯(%d, %d) − 𝒯(%d, %d) = %s ≠ S_x = %s",
							x, y, x, y-1, diff, s)
					}
					prev = cur
				}
			}
		})
	}
}

// TestEncodeBigMatchesEncode cross-validates the two encode paths wherever
// int64 succeeds.
func TestEncodeBigMatchesEncode(t *testing.T) {
	for _, f := range testFamilies() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			check := func(a, b uint16) bool {
				x, y := int64(a)+1, int64(b)+1
				z, err := f.Encode(x, y)
				if err != nil {
					return true // overflow path exercised elsewhere
				}
				bz, err := f.EncodeBig(x, y)
				return err == nil && bz.IsInt64() && bz.Int64() == z
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDecodeBigRoundTrip round-trips addresses too large for int64.
func TestDecodeBigRoundTrip(t *testing.T) {
	for _, f := range testFamilies() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			for _, pos := range [][2]int64{{1, 1}, {7, 1 << 40}, {33, 12345}, {100, 3}} {
				z, err := f.EncodeBig(pos[0], pos[1])
				if errors.Is(err, ErrUncomputable) {
					continue
				}
				if err != nil {
					t.Fatalf("EncodeBig(%d, %d): %v", pos[0], pos[1], err)
				}
				x, y, err := f.DecodeBig(z)
				if err != nil {
					t.Fatalf("DecodeBig(%s): %v", z, err)
				}
				if !x.IsInt64() || !y.IsInt64() || x.Int64() != pos[0] || y.Int64() != pos[1] {
					t.Errorf("round trip (%d, %d) → %s → (%s, %s)", pos[0], pos[1], z, x, y)
				}
			}
		})
	}
}

// TestDomainErrors checks rejection of out-of-domain arguments.
func TestDomainErrors(t *testing.T) {
	f := NewTHash()
	if _, err := f.Encode(0, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("Encode(0, 1): %v", err)
	}
	if _, err := f.Encode(1, 0); !errors.Is(err, ErrDomain) {
		t.Errorf("Encode(1, 0): %v", err)
	}
	if _, _, err := f.Decode(0); !errors.Is(err, ErrDomain) {
		t.Errorf("Decode(0): %v", err)
	}
	if _, err := f.Base(-1); !errors.Is(err, ErrDomain) {
		t.Errorf("Base(-1): %v", err)
	}
	if _, err := f.Stride(0); !errors.Is(err, ErrDomain) {
		t.Errorf("Stride(0): %v", err)
	}
	if _, _, err := f.Group(0); !errors.Is(err, ErrDomain) {
		t.Errorf("Group(0): %v", err)
	}
	if _, err := f.EncodeBig(0, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("EncodeBig(0, 1): %v", err)
	}
	if _, _, err := f.DecodeBig(big.NewInt(-5)); !errors.Is(err, ErrDomain) {
		t.Errorf("DecodeBig(-5): %v", err)
	}
}

// TestGroupLayout verifies eq. 4.3 directly: group g's rows are the
// contiguous block of 2^κ(g) indices after Σ_{j<g} 2^κ(j).
func TestGroupLayout(t *testing.T) {
	for _, f := range []*Constructed{NewTC(3), NewTHash(), NewTStar(), NewTPow(2)} {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			start := int64(1)
			for g := int64(0); start <= 2000; g++ {
				kappa := f.kappa(g)
				size := int64(1) << uint(kappa)
				for x := start; x < start+size && x <= 2000; x++ {
					gg, kk, err := f.Group(x)
					if err != nil {
						t.Fatalf("Group(%d): %v", x, err)
					}
					if gg != g || kk != kappa {
						t.Fatalf("Group(%d) = (%d, %d), want (%d, %d)", x, gg, kk, g, kappa)
					}
				}
				start += size
			}
		})
	}
}

// TestConcurrentAccess exercises the lazy prefix table under concurrency
// (run with -race).
func TestConcurrentAccess(t *testing.T) {
	f := NewTStar()
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for x := int64(1); x <= 500; x++ {
				z, err := f.Encode(x, int64(w)+1)
				if err != nil {
					done <- err
					return
				}
				gx, gy, err := f.Decode(z)
				if err != nil || gx != x || gy != int64(w)+1 {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestKappaValidation checks that a negative κ is reported, not silently
// misused.
func TestKappaValidation(t *testing.T) {
	f := New("bad", func(g int64) int64 { return -1 }, nil)
	if _, err := f.Encode(1, 1); err == nil {
		t.Error("negative κ should be an error")
	}
}

// TestConstructorPanics checks family constructor validation.
func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTC(0) },
		func() { NewTC(63) },
		func() { NewTPow(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
