package apf

import (
	"fmt"
	"math/big"
)

// NewCustom returns the APF built from an explicit leading group plan plus
// a tail rule: group g has copy index plan[g] for g < len(plan) and
// tail(g) beyond — Step 1 of Procedure APF-Constructor in full generality
// ("with any desired mix of equal-size and distinct-size groups"). The
// plan entries and tail values must be ≥ 0; tail must be non-nil.
//
// Example: NewCustom("burst", []int64{6, 0, 0}, func(g int64) int64 {
// return g }) opens with one 64-row group, two singleton groups, then
// grows like 𝒯^#.
func NewCustom(name string, plan []int64, tail Kappa) (*Constructed, error) {
	if tail == nil {
		return nil, fmt.Errorf("apf: NewCustom(%q): tail rule is required", name)
	}
	for g, k := range plan {
		if k < 0 {
			return nil, fmt.Errorf("apf: NewCustom(%q): plan[%d] = %d is negative", name, g, k)
		}
	}
	fixed := append([]int64(nil), plan...)
	return New(name, func(g int64) int64 {
		if g < int64(len(fixed)) {
			return fixed[g]
		}
		return tail(g)
	}, nil), nil
}

// VerifyAPF checks, on a bounded region, the two laws that make any
// 𝒯: N×N → N a valid additive pairing function:
//
//  1. additivity — every row is an arithmetic progression with
//     Base(x) < Stride(x) (Theorem 4.2's shape), checked for x ≤ rows,
//     y ≤ cols;
//  2. bijectivity on a prefix — every address z ≤ prefix has exactly one
//     preimage, and Encode(Decode(z)) = z.
//
// Values beyond int64 are checked through the exact big paths. VerifyAPF
// is how the tests certify user-supplied custom groupings without trusting
// the constructor.
func VerifyAPF(t *Constructed, rows, cols, prefix int64) error {
	if rows < 1 || cols < 2 || prefix < 1 {
		return fmt.Errorf("apf: VerifyAPF(%d, %d, %d): region too small", rows, cols, prefix)
	}
	seen := make(map[string][2]int64, rows*cols)
	for x := int64(1); x <= rows; x++ {
		s, err := t.StrideBig(x)
		if err != nil {
			return fmt.Errorf("apf: VerifyAPF: StrideBig(%d): %w", x, err)
		}
		b, err := t.BaseBig(x)
		if err != nil {
			return fmt.Errorf("apf: VerifyAPF: BaseBig(%d): %w", x, err)
		}
		if b.Sign() < 1 || b.Cmp(s) >= 0 {
			return fmt.Errorf("apf: VerifyAPF: row %d: base %s outside (0, stride %s)", x, b, s)
		}
		prev := new(big.Int).Set(b)
		for y := int64(1); y <= cols; y++ {
			z, err := t.EncodeBig(x, y)
			if err != nil {
				return fmt.Errorf("apf: VerifyAPF: Encode(%d, %d): %w", x, y, err)
			}
			if y == 1 {
				if z.Cmp(b) != 0 {
					return fmt.Errorf("apf: VerifyAPF: 𝒯(%d, 1) = %s ≠ Base = %s", x, z, b)
				}
			} else {
				diff := new(big.Int).Sub(z, prev)
				if diff.Cmp(s) != 0 {
					return fmt.Errorf("apf: VerifyAPF: row %d not additive at y = %d: step %s ≠ stride %s",
						x, y, diff, s)
				}
			}
			prev.Set(z)
			key := z.String()
			if p, dup := seen[key]; dup {
				return fmt.Errorf("apf: VerifyAPF: collision: (%d, %d) and (%d, %d) → %s",
					p[0], p[1], x, y, z)
			}
			seen[key] = [2]int64{x, y}
		}
	}
	// Bijectivity on the prefix.
	z := new(big.Int)
	for v := int64(1); v <= prefix; v++ {
		z.SetInt64(v)
		x, y, err := t.DecodeBig(z)
		if err != nil {
			return fmt.Errorf("apf: VerifyAPF: Decode(%d): %w", v, err)
		}
		if x.Sign() < 1 || y.Sign() < 1 {
			return fmt.Errorf("apf: VerifyAPF: Decode(%d) = (%s, %s) outside N×N", v, x, y)
		}
		back, err := t.EncodeBigInt(x, y)
		if err != nil {
			return fmt.Errorf("apf: VerifyAPF: re-encode of %d: %w", v, err)
		}
		if back.Cmp(z) != 0 {
			return fmt.Errorf("apf: VerifyAPF: Encode(Decode(%d)) = %s", v, back)
		}
	}
	return nil
}
