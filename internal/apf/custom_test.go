package apf

import (
	"strings"
	"testing"
)

// TestVerifyAPFAcceptsFamilies certifies every built-in family through the
// generic validator.
func TestVerifyAPFAcceptsFamilies(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			if err := VerifyAPF(f, 64, 8, 2048); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCustomGroupings exercises §4.1 Step 1's freedom: arbitrary mixes of
// equal-size and distinct-size groups all yield valid APFs (Theorem 4.2).
func TestCustomGroupings(t *testing.T) {
	cases := []struct {
		name string
		plan []int64
		tail Kappa
	}{
		{"burst-then-hash", []int64{6, 0, 0}, func(g int64) int64 { return g }},
		{"alternating", []int64{1, 3, 1, 3, 1, 3}, func(g int64) int64 { return 2 }},
		{"empty-plan", nil, func(g int64) int64 { return g / 2 }},
		{"front-heavy", []int64{10}, func(g int64) int64 { return 0 }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f, err := NewCustom(c.name, c.plan, c.tail)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyAPF(f, 48, 6, 1024); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCustomGroupLayout checks the plan actually drives the group sizes.
func TestCustomGroupLayout(t *testing.T) {
	f, err := NewCustom("burst", []int64{3, 0, 2}, func(g int64) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	// Groups: sizes 8, 1, 4, then 2, 2, 2, …; starts 1, 9, 10, 14, 16, …
	wantStarts := []int64{1, 9, 10, 14, 16, 18}
	for g, want := range wantStarts {
		got, err := GroupFront(f, int64(g))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("start(%d) = %d, want %d", g, got, want)
		}
	}
	// Row 12 lies in group 2 (κ = 2).
	g, kappa, err := f.Group(12)
	if err != nil || g != 2 || kappa != 2 {
		t.Errorf("Group(12) = (%d, %d), %v; want (2, 2)", g, kappa, err)
	}
}

// TestNewCustomValidation covers rejection paths.
func TestNewCustomValidation(t *testing.T) {
	if _, err := NewCustom("x", nil, nil); err == nil {
		t.Error("nil tail should fail")
	}
	if _, err := NewCustom("x", []int64{1, -2}, func(int64) int64 { return 0 }); err == nil {
		t.Error("negative plan entry should fail")
	}
}

// TestVerifyAPFRejects checks the validator catches a non-additive and a
// colliding construction (built by bypassing the constructor's κ
// discipline with an inconsistent lookup).
func TestVerifyAPFRejects(t *testing.T) {
	// A lookup that assigns two different rows to the same group position
	// breaks injectivity; VerifyAPF must notice.
	bad := New("bad-lookup", func(g int64) int64 { return 1 },
		func(x int64) (int64, bool) { return 0, true }) // every row in group 0
	err := VerifyAPF(bad, 8, 4, 64)
	// Rows past the group's capacity get residues ≥ 2^{1+κ}, which the
	// validator reports either as base ≥ stride or as a collision,
	// whichever it reaches first.
	if err == nil ||
		!(strings.Contains(err.Error(), "collision") || strings.Contains(err.Error(), "base")) {
		t.Errorf("expected a base/collision report, got %v", err)
	}
	// Region validation.
	if err := VerifyAPF(NewTHash(), 0, 4, 64); err == nil {
		t.Error("rows = 0 should fail")
	}
	if err := VerifyAPF(NewTHash(), 4, 1, 64); err == nil {
		t.Error("cols = 1 should fail (additivity needs 2 points)")
	}
}
