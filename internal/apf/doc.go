// Package apf implements the additive pairing functions (APFs) of §4 of
// Rosenberg's "Efficient Pairing Functions — and Why You Should Care"
// (IPPS 2002): bijections 𝒯 between N×N and N in which each row x is an
// arithmetic progression,
//
//	𝒯(x, y) = B_x + (y−1)·S_x,
//
// with base row-entry B_x and stride S_x. In the paper's Web-computing
// application, row x is a volunteer, y is the sequence number of a task, and
// 𝒯(x, y) is the task index — so 𝒯, 𝒯⁻¹ and the strides must all be easy to
// compute, and slow-growing strides make the task table compact.
//
// The package implements Procedure APF-Constructor (built on Lemma 4.1)
// generically for an arbitrary copy-index function κ(g), plus the paper's
// explicit families: 𝒯^<c> (equal-size groups, §4.2.1), 𝒯^# (κ(g)=g,
// §4.2.2), 𝒯^[k] (κ(g)=g^k) and 𝒯^★ (κ(g)=⌈g²/2⌉) (§4.2.3), and the
// cautionary κ(g)=2^g family whose strides grow superquadratically.
// Instrument wraps any APF with atomic encode/decode/error counters
// (internal/obs) for production services; the measured overhead is a few
// nanoseconds per call (see BenchmarkInstrumentedEncode).
//
// Rows, columns and addresses are 1-based; group indices g are 0-based as
// in the paper.
//
// # Overflow
//
// Fast-growing κ put group fronts beyond int64 within a few groups (e.g.
// group 9 of 𝒯^[2] starts past 2^64), so the group-start table is kept
// exactly as big.Ints; the int64 Encode/Decode fast paths report
// ErrOverflow where a value leaves int64 range, and the *Big methods are
// total up to a sanity cap (ErrUncomputable) on materializing
// astronomically large strides. All arithmetic is exact; no floating
// point participates in any load-bearing computation.
//
// # Concurrency
//
// All APF values are safe for concurrent use. The Constructed family
// extends its group-start tables lazily under an internal mutex; the
// closed-form families are stateless. Instrumented wrappers add only
// lock-free atomic counters.
package apf
