package apf

import "testing"

// TestDominanceIntervalsT3 maps the complete dominance structure of
// 𝒯^<3> vs 𝒯^# up to 256, pinning the E13 finding at full resolution.
func TestDominanceIntervalsT3(t *testing.T) {
	got, err := DominanceIntervals(NewTC(3), NewTHash(), 256)
	if err != nil {
		t.Fatal(err)
	}
	// Compute the expected intervals directly from the stride formulas:
	// S^<3>_x = 2^{⌊(x−1)/4⌋+3}, S^#_x = 2^{1+2⌊log₂ x⌋}.
	exp := func(x int64) int64 { return (x-1)/4 + 3 }
	hxp := func(x int64) int64 {
		lg := int64(0)
		for v := x; v > 1; v >>= 1 {
			lg++
		}
		return 1 + 2*lg
	}
	var want []Interval
	openLo := int64(-1)
	for x := int64(1); x <= 256; x++ {
		if exp(x) >= hxp(x) {
			if openLo < 0 {
				openLo = x
			}
		} else if openLo >= 0 {
			want = append(want, Interval{openLo, x - 1})
			openLo = -1
		}
	}
	if openLo >= 0 {
		want = append(want, Interval{openLo, 256})
	}
	if len(got) != len(want) {
		t.Fatalf("intervals %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("interval %d: %v, want %v", i, got[i], want[i])
		}
	}
	// The structural facts the paper's §4.2.2 narrative implies:
	// equality/dominance holds on [25, 31], breaks at 32, and the final
	// interval starts at 33 and reaches the limit.
	last := got[len(got)-1]
	if last.Lo != 33 || last.Hi != 256 {
		t.Errorf("final interval %v, want [33, 256]", last)
	}
	covered := func(x int64) bool {
		for _, iv := range got {
			if x >= iv.Lo && x <= iv.Hi {
				return true
			}
		}
		return false
	}
	if !covered(25) || !covered(31) {
		t.Error("[25, 31] should be dominated")
	}
	if covered(32) {
		t.Error("x = 32 must be the dip")
	}
}

// TestDominanceIntervalsT1 cross-checks Crossover: a single interval
// [5, limit] (after the small-x noise below 5).
func TestDominanceIntervalsT1(t *testing.T) {
	got, err := DominanceIntervals(NewTC(1), NewTHash(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no dominance intervals")
	}
	last := got[len(got)-1]
	if last.Lo != 5 || last.Hi != 128 {
		t.Errorf("final interval %v, want [5, 128]", last)
	}
	if _, err := DominanceIntervals(NewTC(1), NewTHash(), 0); err == nil {
		t.Error("limit 0 should fail")
	}
}
