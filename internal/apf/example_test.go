package apf_test

import (
	"fmt"

	"pairfn/internal/apf"
)

func ExampleNewTHash() {
	t := apf.NewTHash()
	// Volunteer 28's first tasks — the Fig. 6 row.
	for y := int64(1); y <= 5; y++ {
		z, _ := t.Encode(28, y)
		fmt.Print(z, " ")
	}
	fmt.Println()
	// Output: 400 912 1424 1936 2448
}

func ExampleConstructed_Decode() {
	t := apf.NewTHash()
	// Who computed task 1424? One inversion answers.
	v, seq, _ := t.Decode(1424)
	fmt.Printf("volunteer %d, their task #%d\n", v, seq)
	// Output: volunteer 28, their task #3
}

func ExampleConstructed_Stride() {
	t := apf.NewTStar()
	b, _ := t.Base(29)
	s, _ := t.Stride(29)
	fmt.Println(b, s) // Fig. 6's 𝒯^★ row for x = 29
	// Output: 344 512
}

func ExampleCrossover() {
	x0, _, _ := apf.Crossover(apf.NewTC(2), apf.NewTHash(), 1024)
	fmt.Println(x0) // §4.2.2: 𝒯^<2>'s strides dominate 𝒯^#'s from 11 on
	// Output: 11
}

func ExampleNew() {
	// Procedure APF-Constructor with a custom copy index κ(g) = 3g.
	t := apf.New("T3g", func(g int64) int64 { return 3 * g }, nil)
	// Groups hold 1, 8, 64, 512, … rows, starting at 1, 2, 10, 74, …
	g, kappa, _ := t.Group(100)
	fmt.Println(g, kappa)
	// Output: 3 9
}

func ExampleNewCustom() {
	// One 64-row opening group, then 𝒯#-style growth.
	t, _ := apf.NewCustom("burst", []int64{6}, func(g int64) int64 { return g })
	s1, _ := t.Stride(1)
	s64, _ := t.Stride(64)
	fmt.Println(s1 == s64) // both rows share the big opening group
	// Output: true
}
