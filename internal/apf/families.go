package apf

import (
	"fmt"

	"pairfn/internal/numtheory"
)

// NewTC returns 𝒯^<c> (§4.2.1): Procedure APF-Constructor with equal-size
// groups, κ(g) ≡ c−1, so group g = ⌊(x−1)/2^{c−1}⌋ holds 2^{c−1} rows and
//
//	𝒯^<c>(x, y) = 2^{⌊(x−1)/2^{c−1}⌋} · (2^c·(y−1) + (2x−1 mod 2^c)).
//
// Strides grow exponentially with x (Prop 4.1): S_x = 2^{⌊(x−1)/2^{c−1}⌋+c}.
// Larger c penalizes a few low-index rows but gives all others smaller
// bases and strides. c must be ≥ 1 and ≤ 62.
func NewTC(c int) *Constructed {
	if c < 1 || c > 62 {
		panic(fmt.Sprintf("apf: NewTC(%d): c must be in [1, 62]", c))
	}
	groupSize := int64(1) << uint(c-1)
	return New(
		fmt.Sprintf("T<%d>", c),
		func(g int64) int64 { return int64(c - 1) },
		func(x int64) (int64, bool) { return (x - 1) / groupSize, true },
	)
}

// NewTHash returns 𝒯^# (§4.2.2, eq. 4.6): κ(g) = g, which aggregates rows
// into groups of exponentially growing sizes — group g holds rows
// 2^g … 2^{g+1}−1, so g = ⌊log₂ x⌋ (eq. 4.5) and
//
//	𝒯^#(x, y) = 2^{⌊log x⌋} · (2^{1+⌊log x⌋}·(y−1) + (2x+1 mod 2^{1+⌊log x⌋})).
//
// Bases and strides grow only quadratically (Prop 4.2):
// S_x = 2^{1+2⌊log x⌋} ≤ 2x².
func NewTHash() *Constructed {
	return New(
		"T#",
		func(g int64) int64 { return g },
		func(x int64) (int64, bool) { return int64(numtheory.Log2Floor(x)), true },
	)
}

// NewTPow returns 𝒯^[k] (§4.2.3): κ(g) = g^k, whose strides grow
// subquadratically, S_x = x·2^{O((log x)^{1/k})} (Prop 4.3). No closed form
// for the group of x is known ("closed-form expressions … have eluded us"),
// so group lookup uses the constructor's prefix-sum search. k must be ≥ 1.
func NewTPow(k int) *Constructed {
	if k < 1 {
		panic(fmt.Sprintf("apf: NewTPow(%d): k must be ≥ 1", k))
	}
	return New(
		fmt.Sprintf("T[%d]", k),
		func(g int64) int64 {
			p := int64(1)
			for i := 0; i < k; i++ {
				var err error
				p, err = numtheory.MulCheck(p, g)
				if err != nil {
					return int64(1) << 62 // saturate: group is unreachably large
				}
			}
			return p
		},
		nil,
	)
}

// NewTStar returns 𝒯^★ (§4.2.3): κ(g) = ⌈g²/2⌉, a close relative of 𝒯^[2]
// that exhibits subquadratic stride growth at much smaller x:
// S_x ≈ 8x·4^{√(2 log x)} (Prop 4.4).
func NewTStar() *Constructed {
	return New(
		"T*",
		func(g int64) int64 {
			sq, err := numtheory.MulCheck(g, g)
			if err != nil {
				return int64(1) << 62
			}
			return (sq + 1) / 2 // ⌈g²/2⌉
		},
		nil,
	)
}

// NewTExp returns the cautionary family of §4.2.3's closing discussion:
// κ(g) = 2^g grows so fast that the strides of the resulting APF grow
// superquadratically — at each group front x ≈ √(2^κ(g)) the stride is
// S_x > 2^κ(g)·κ(g) ≈ x²·log x — confuting the goal of beating quadratic
// growth.
func NewTExp() *Constructed {
	return New(
		"Texp",
		func(g int64) int64 {
			if g >= 62 {
				return int64(1) << 62
			}
			return int64(1) << uint(g)
		},
		nil,
	)
}

// Families returns the paper's named APF families in presentation order:
// 𝒯^<1>, 𝒯^<2>, 𝒯^<3>, 𝒯^#, 𝒯^[2], 𝒯^★. Useful for sweeps and tables.
func Families() []*Constructed {
	return []*Constructed{
		NewTC(1), NewTC(2), NewTC(3), NewTHash(), NewTPow(2), NewTStar(),
	}
}
