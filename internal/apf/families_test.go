package apf

import (
	"math"
	"math/big"
	"testing"

	"pairfn/internal/numtheory"
)

// TestProp41 verifies Prop 4.1 exactly (experiment E11):
// S_x^<c> = 2^{⌊(x−1)/2^{c−1}⌋+c}, and the closed form of §4.2.1:
// 𝒯^<c>(x, y) = 2^{⌊(x−1)/2^{c−1}⌋}(2^c(y−1) + (2x−1 mod 2^c)).
func TestProp41(t *testing.T) {
	for c := 1; c <= 6; c++ {
		f := NewTC(c)
		for x := int64(1); x <= 40; x++ {
			g := (x - 1) >> uint(c-1)
			wantStride := new(big.Int).Lsh(big.NewInt(1), uint(g)+uint(c))
			s, err := f.StrideBig(x)
			if err != nil {
				t.Fatalf("T<%d>: StrideBig(%d): %v", c, x, err)
			}
			if s.Cmp(wantStride) != 0 {
				t.Errorf("T<%d>: S_%d = %s, want 2^(%d+%d)", c, x, s, g, c)
			}
			for y := int64(1); y <= 6; y++ {
				mod := int64(1) << uint(c)
				want := new(big.Int).SetInt64(mod*(y-1) + (2*x-1)%mod)
				want.Lsh(want, uint(g))
				got, err := f.EncodeBig(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(want) != 0 {
					t.Errorf("T<%d>(%d, %d) = %s, closed form says %s", c, x, y, got, want)
				}
			}
		}
	}
}

// TestProp42 verifies Prop 4.2 exactly (experiment E12):
// S_x^# = 2^{1+2⌊log x⌋} ≤ 2x², and eq. 4.6's closed form.
func TestProp42(t *testing.T) {
	f := NewTHash()
	for x := int64(1); x <= 5000; x++ {
		lg := int64(math.Ilogb(float64(x))) // ⌊log₂ x⌋ exact for x < 2^53
		s, err := f.Stride(x)
		if err != nil {
			t.Fatalf("Stride(%d): %v", x, err)
		}
		if want := int64(1) << uint(1+2*lg); s != want {
			t.Errorf("S#_%d = %d, want 2^(1+2·%d) = %d", x, s, lg, want)
		}
		if s > 2*x*x {
			t.Errorf("S#_%d = %d exceeds 2x² = %d", x, s, 2*x*x)
		}
	}
	// eq. 4.6 closed form on a sample.
	for x := int64(1); x <= 200; x++ {
		lg := uint(numtheory.Log2Floor(x))
		mod := int64(1) << (1 + lg)
		for y := int64(1); y <= 4; y++ {
			want := (int64(1) << lg) * (mod*(y-1) + (2*x+1)%mod)
			got, err := f.Encode(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("T#(%d, %d) = %d, eq. 4.6 says %d", x, y, got, want)
			}
		}
	}
}

// TestProp43Subquadratic verifies Prop 4.3 (experiment E14): for 𝒯^[k],
// S_x = x·2^{O((log x)^{1/k})}, i.e. S_x/x² → 0 — but, as §4.2.3 warns,
// "only asymptotically": within a group the ratio falls while x² grows
// against a frozen stride, then jumps at each group front. The honest
// check is therefore at the group fronts, where the ratio is locally
// maximal: the base-2 exponent of S_x/x² at the front of group g is
//
//	E(g) = 1 + g + g^k − 2·⌊log₂ start(g)⌋,
//
// computed exactly with big.Int starts (fronts of 𝒯^[3] pass 2^216 by
// g = 7). E(g) must eventually be strictly decreasing and negative.
func TestProp43Subquadratic(t *testing.T) {
	cases := []struct {
		k        int
		from, to int64 // groups over which E must decrease and end negative
	}{
		{2, 5, 12},
		{3, 5, 9},
	}
	for _, c := range cases {
		f := NewTPow(c.k)
		prev := int64(1 << 62)
		for g := c.from; g <= c.to; g++ {
			start, err := GroupFrontBig(f, g)
			if err != nil {
				t.Fatalf("T[%d]: GroupFrontBig(%d): %v", c.k, g, err)
			}
			gk := int64(1)
			for i := 0; i < c.k; i++ {
				gk *= g
			}
			exp := 1 + g + gk - 2*int64(start.BitLen()-1)
			if exp >= prev {
				t.Errorf("T[%d]: front exponent not decreasing at g = %d: %d after %d",
					c.k, g, exp, prev)
			}
			prev = exp
		}
		if prev >= 0 {
			t.Errorf("T[%d]: S_x/x² exponent at last front = %d, want negative", c.k, prev)
		}
	}
	// Within-group decay, int64 range: for T[2], the ratio at the last
	// int64-representable front (g = 8, start ≈ 2^49) is already tiny.
	f := NewTPow(2)
	front, err := GroupFront(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := StrideRatio(f, front)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Float64(); v > 1e-6 {
		t.Errorf("T[2]: S/x² = %g at group-8 front %d, want ≪ 1", v, front)
	}
}

// TestProp44 verifies Prop 4.4 (experiment E15): S*_x = 2^{1+g+⌈g²/2⌉} with
// g = ⌈√(2 log x)⌉ + 1 up to the paper's own o(1) slack, and the
// approximation S*_x ≈ 8x·4^{√(2 log x)} holds within a constant factor.
func TestProp44(t *testing.T) {
	f := NewTStar()
	for e := 3; e <= 40; e++ {
		x := int64(1) << uint(e)
		g, kappa, err := f.Group(x)
		if err != nil {
			t.Fatalf("Group(2^%d): %v", e, err)
		}
		if want := (g*g + 1) / 2; kappa != want {
			t.Fatalf("κ*(%d) = %d, want ⌈g²/2⌉ = %d", g, kappa, want)
		}
		// The simplified expression of §4.2.3 — the paper itself flags it
		// as "slightly inaccurate" (it absorbs a (1+o(1)) factor), and the
		// exact group lags it by up to 2 at these magnitudes.
		approxG := int64(math.Ceil(math.Sqrt(2*float64(e)))) + 1
		if diff := g - approxG; diff < -2 || diff > 1 {
			t.Errorf("x = 2^%d: group %d vs simplified %d (off by %d)", e, g, approxG, diff)
		}
		// Approximation: S* ≈ 8x·4^√(2 log x). The o(1) slack in g shifts
		// the exponent by O(√(2 log x)), so compare exponents with that
		// slack rather than demanding a constant factor.
		s, err := f.StrideBig(x)
		if err != nil {
			t.Fatal(err)
		}
		gotExp := float64(s.BitLen() - 1)
		wantExp := 3 + float64(e) + 2*math.Sqrt(2*float64(e)) // log₂(8x·4^√(2 log x))
		if slack := 2*math.Sqrt(2*float64(e)) + 3; math.Abs(gotExp-wantExp) > slack {
			t.Errorf("x = 2^%d: log₂ S* = %.1f vs approx %.1f (slack %.1f)",
				e, gotExp, wantExp, slack)
		}
	}
	// Subquadratic: the ratio S*/x² shrinks by orders of magnitude.
	early, _ := StrideRatio(f, 1<<6)
	late, _ := StrideRatio(f, 1<<40)
	ef, _ := early.Float64()
	lf, _ := late.Float64()
	if lf >= ef/100 {
		t.Errorf("S*/x² did not shrink: %g → %g", ef, lf)
	}
}

// TestCrossovers verifies the §4.2.2 dominance points (experiment E13).
// The paper reports x = 5 for 𝒯^<1> and x = 11 for 𝒯^<2>, which exact
// computation confirms. For 𝒯^<3> the paper reports x = 25; the exact
// stride comparison shows equality holds on [25, 31] but dips once more on
// [32, 32] (S^<3>_32 = 2^10 < 2^11 = S^#_32), so the true dominance point
// is x = 33. EXPERIMENTS.md records this deviation.
func TestCrossovers(t *testing.T) {
	th := NewTHash()
	cases := []struct {
		c     int
		want  int64
		paper int64
	}{
		{1, 5, 5},
		{2, 11, 11},
		{3, 33, 25},
	}
	for _, cse := range cases {
		x0, lastBelow, err := Crossover(NewTC(cse.c), th, 1<<12)
		if err != nil {
			t.Fatalf("Crossover(T<%d>, T#): %v", cse.c, err)
		}
		if x0 != cse.want {
			t.Errorf("Crossover(T<%d>, T#) = %d, want %d (paper: %d)",
				cse.c, x0, cse.want, cse.paper)
		}
		if lastBelow != cse.want-1 {
			t.Errorf("lastBelow = %d, want %d", lastBelow, cse.want-1)
		}
	}
}

// TestT3DipAt32 pins down the single dip that moves 𝒯^<3>'s dominance
// point from the paper's 25 to 33.
func TestT3DipAt32(t *testing.T) {
	f3, th := NewTC(3), NewTHash()
	for x := int64(25); x <= 40; x++ {
		s3, err := f3.Stride(x)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := th.Stride(x)
		if err != nil {
			t.Fatal(err)
		}
		if x == 32 {
			if s3 >= sh {
				t.Errorf("expected dip at x = 32: S<3> = %d, S# = %d", s3, sh)
			}
		} else if s3 < sh {
			t.Errorf("unexpected dip at x = %d: S<3> = %d < S# = %d", x, s3, sh)
		}
	}
}

// TestExplodingKappa verifies the §4.2.3 cautionary analysis (experiment
// E16): with κ(g) = 2^g, at each group front x = start(g) the stride
// exceeds x²·log₂(x) (superquadratic), confuting subquadratic hopes.
func TestExplodingKappa(t *testing.T) {
	f := NewTExp()
	// g = 2's front (x = 7) is still below the asymptotic regime (S = 128
	// vs x²·log x ≈ 138); the superquadratic bound holds from g = 3 on.
	for g := int64(3); g <= 5; g++ {
		x, err := GroupFront(f, g)
		if err != nil {
			t.Fatalf("GroupFront(%d): %v", g, err)
		}
		s, err := f.StrideBig(x)
		if err != nil {
			t.Fatalf("StrideBig(%d): %v", x, err)
		}
		lg := math.Log2(float64(x))
		bound := new(big.Float).SetFloat64(float64(x) * float64(x) * lg)
		sf := new(big.Float).SetInt(s)
		if sf.Cmp(bound) <= 0 {
			t.Errorf("group %d front x = %d: S = %s not > x²·log x ≈ %s",
				g, x, s, bound.Text('g', 6))
		}
	}
	// And the paper's front-location claim x ≈ √(2^κ(g)).
	for g := int64(3); g <= 5; g++ {
		x, _ := GroupFront(f, g)
		kappa := int64(1) << uint(g)
		sqrt := math.Sqrt(math.Pow(2, float64(kappa)))
		if ratio := float64(x) / sqrt; ratio < 0.4 || ratio > 2.5 {
			t.Errorf("group %d front %d vs √(2^κ) = %g (ratio %g)", g, x, sqrt, ratio)
		}
	}
}

// TestFamiliesList sanity-checks the Families helper.
func TestFamiliesList(t *testing.T) {
	fs := Families()
	if len(fs) != 6 {
		t.Fatalf("Families() returned %d entries", len(fs))
	}
	names := map[string]bool{}
	for _, f := range fs {
		if names[f.Name()] {
			t.Errorf("duplicate family name %s", f.Name())
		}
		names[f.Name()] = true
	}
}
