package apf

import "testing"

// fig6 transcribes Fig. 6 of the paper verbatim: sample values 𝒯(x, y) for
// y = 1..5 of four APFs, together with the group index g of each row.
var fig6 = []struct {
	family string
	x      int64
	g      int64
	vals   [5]int64
}{
	{"T<1>", 14, 13, [5]int64{8192, 24576, 40960, 57344, 73728}},
	{"T<1>", 15, 14, [5]int64{16384, 49152, 81920, 114688, 147456}},
	{"T<3>", 14, 3, [5]int64{24, 88, 152, 216, 280}},
	{"T<3>", 15, 3, [5]int64{40, 104, 168, 232, 296}},
	{"T<3>", 28, 6, [5]int64{448, 960, 1472, 1984, 2496}},
	{"T<3>", 29, 7, [5]int64{128, 1152, 2176, 3200, 4224}},
	{"T#", 28, 4, [5]int64{400, 912, 1424, 1936, 2448}},
	{"T#", 29, 4, [5]int64{432, 944, 1456, 1968, 2480}},
	{"T*", 28, 3, [5]int64{328, 840, 1352, 1864, 2376}},
	{"T*", 29, 3, [5]int64{344, 856, 1368, 1880, 2392}},
}

func familyByName(t *testing.T, name string) *Constructed {
	t.Helper()
	switch name {
	case "T<1>":
		return NewTC(1)
	case "T<3>":
		return NewTC(3)
	case "T#":
		return NewTHash()
	case "T*":
		return NewTStar()
	}
	t.Fatalf("unknown family %q", name)
	return nil
}

// TestFig6Exact reproduces every value and group index in Fig. 6
// (experiment E5).
func TestFig6Exact(t *testing.T) {
	for _, row := range fig6 {
		f := familyByName(t, row.family)
		g, _, err := f.Group(row.x)
		if err != nil {
			t.Fatalf("%s: Group(%d): %v", row.family, row.x, err)
		}
		if g != row.g {
			t.Errorf("%s: group of x = %d is %d, paper says %d", row.family, row.x, g, row.g)
		}
		for j, want := range row.vals {
			y := int64(j + 1)
			got, err := f.Encode(row.x, y)
			if err != nil {
				t.Fatalf("%s(%d, %d): %v", row.family, row.x, y, err)
			}
			if got != want {
				t.Errorf("%s(%d, %d) = %d, paper says %d", row.family, row.x, y, got, want)
			}
		}
	}
}

// TestFig6Strides checks that consecutive Fig. 6 values differ by exactly
// Stride(x), i.e. the table rows really are arithmetic progressions.
func TestFig6Strides(t *testing.T) {
	for _, row := range fig6 {
		f := familyByName(t, row.family)
		s, err := f.Stride(row.x)
		if err != nil {
			t.Fatalf("%s: Stride(%d): %v", row.family, row.x, err)
		}
		for j := 1; j < len(row.vals); j++ {
			if diff := row.vals[j] - row.vals[j-1]; diff != s {
				t.Errorf("%s row %d: consecutive difference %d ≠ stride %d",
					row.family, row.x, diff, s)
			}
		}
		b, err := f.Base(row.x)
		if err != nil {
			t.Fatal(err)
		}
		if b != row.vals[0] {
			t.Errorf("%s: Base(%d) = %d, want %d", row.family, row.x, b, row.vals[0])
		}
	}
}
