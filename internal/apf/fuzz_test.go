package apf

import (
	"errors"
	"math/big"
	"testing"
)

// FuzzAPFRoundTrip checks the bijection laws on arbitrary coordinates for
// the practical families, with overflow reported rather than wrapped.
func FuzzAPFRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(28), int64(5))
	f.Add(int64(1<<20), int64(1<<20))
	f.Fuzz(func(t *testing.T, a, b int64) {
		x := a % (1 << 22)
		if x < 0 {
			x = -x
		}
		x++
		y := b % (1 << 22)
		if y < 0 {
			y = -y
		}
		y++
		for _, fam := range []*Constructed{NewTC(3), NewTHash(), NewTStar()} {
			z, err := fam.Encode(x, y)
			if errors.Is(err, ErrOverflow) {
				// The exact value must indeed exceed int64.
				bz, err := fam.EncodeBig(x, y)
				if err != nil {
					t.Fatalf("%s: EncodeBig(%d, %d): %v", fam.Name(), x, y, err)
				}
				if bz.IsInt64() {
					t.Fatalf("%s: Encode(%d, %d) claimed overflow for %s", fam.Name(), x, y, bz)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: Encode(%d, %d): %v", fam.Name(), x, y, err)
			}
			gx, gy, err := fam.Decode(z)
			if err != nil || gx != x || gy != y {
				t.Fatalf("%s: (%d, %d) → %d → (%d, %d), %v", fam.Name(), x, y, z, gx, gy, err)
			}
		}
	})
}

// FuzzAPFDecodeTotal: every positive int64 address has a preimage (maybe
// beyond int64 — then the big path must deliver it).
func FuzzAPFDecodeTotal(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(512))
	f.Add(int64(3) << 40)
	f.Fuzz(func(t *testing.T, z int64) {
		if z < 1 {
			z = -z%(1<<50) + 1
		}
		for _, fam := range []*Constructed{NewTC(2), NewTHash(), NewTPow(2)} {
			bx, by, err := fam.DecodeBig(big.NewInt(z))
			if err != nil {
				t.Fatalf("%s: DecodeBig(%d): %v", fam.Name(), z, err)
			}
			back, err := fam.EncodeBigInt(bx, by)
			if err != nil || back.Cmp(big.NewInt(z)) != 0 {
				t.Fatalf("%s: Encode(Decode(%d)) = %s, %v", fam.Name(), z, back, err)
			}
		}
	})
}
