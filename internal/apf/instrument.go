package apf

import "pairfn/internal/obs"

// Instrumented wraps an APF, counting Encode/Decode calls and errors in an
// obs registry. The overhead per call is one nil-checked atomic add plus
// an error branch — a few nanoseconds, small against even the cheapest
// family's table lookup — so production services (internal/wbc) can leave
// instrumentation permanently enabled. Base, Stride, Group, Name and the
// *Big methods pass through uncounted: they are setup/analysis paths, not
// the per-task hot path §4 cares about.
type Instrumented struct {
	APF
	encodes, decodes, errs *obs.Counter
}

// Instrument wraps f with call counters registered in r as
//
//	apf_encode_total{apf="<name>"}
//	apf_decode_total{apf="<name>"}
//	apf_errors_total{apf="<name>"}
//
// A nil registry returns f unwrapped, so callers can thread an optional
// registry without branching.
func Instrument(f APF, r *obs.Registry) APF {
	if r == nil {
		return f
	}
	r.Help("apf_encode_total", "APF Encode calls (task-index computations).")
	r.Help("apf_decode_total", "APF Decode calls (attribution inversions).")
	r.Help("apf_errors_total", "APF Encode/Decode calls that returned an error.")
	name := obs.L("apf", f.Name())
	return &Instrumented{
		APF:     f,
		encodes: r.Counter("apf_encode_total", name),
		decodes: r.Counter("apf_decode_total", name),
		errs:    r.Counter("apf_errors_total", name),
	}
}

// Unwrap returns the underlying APF.
func (ia *Instrumented) Unwrap() APF { return ia.APF }

// Encode counts the call (and any error) and defers to the wrapped APF.
func (ia *Instrumented) Encode(x, y int64) (int64, error) {
	z, err := ia.APF.Encode(x, y)
	ia.encodes.Inc()
	if err != nil {
		ia.errs.Inc()
	}
	return z, err
}

// Decode counts the call (and any error) and defers to the wrapped APF.
func (ia *Instrumented) Decode(z int64) (x, y int64, err error) {
	x, y, err = ia.APF.Decode(z)
	ia.decodes.Inc()
	if err != nil {
		ia.errs.Inc()
	}
	return x, y, err
}
