package apf

import (
	"testing"

	"pairfn/internal/obs"
)

func TestInstrumentedAgreesWithRaw(t *testing.T) {
	raw := NewTHash()
	reg := obs.NewRegistry()
	wrapped := Instrument(raw, reg)
	if _, ok := wrapped.(*Instrumented); !ok {
		t.Fatalf("Instrument returned %T", wrapped)
	}
	for x := int64(1); x <= 40; x++ {
		for y := int64(1); y <= 40; y++ {
			a, errA := raw.Encode(x, y)
			b, errB := wrapped.Encode(x, y)
			if a != b || (errA == nil) != (errB == nil) {
				t.Fatalf("Encode(%d,%d): raw %d,%v wrapped %d,%v", x, y, a, errA, b, errB)
			}
			if errA != nil {
				continue
			}
			xa, ya, _ := raw.Decode(a)
			xb, yb, err := wrapped.Decode(b)
			if xa != xb || ya != yb || err != nil {
				t.Fatalf("Decode(%d) disagrees", a)
			}
		}
	}
	// Base/Stride/Group/Name pass through.
	if wrapped.Name() != raw.Name() {
		t.Errorf("Name %q ≠ %q", wrapped.Name(), raw.Name())
	}
	b1, _ := raw.Base(17)
	b2, err := wrapped.Base(17)
	if b1 != b2 || err != nil {
		t.Errorf("Base passthrough: %d vs %d (%v)", b1, b2, err)
	}
}

func TestInstrumentCounts(t *testing.T) {
	reg := obs.NewRegistry()
	f := Instrument(NewTHash(), reg)
	for i := int64(1); i <= 10; i++ {
		z, err := f.Encode(i, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.Decode(z); err != nil {
			t.Fatal(err)
		}
	}
	f.Encode(0, 1) // ErrDomain
	f.Decode(-5)   // ErrDomain
	name := obs.L("apf", "T#")
	if got := reg.Counter("apf_encode_total", name).Value(); got != 11 {
		t.Errorf("encodes = %d, want 11", got)
	}
	if got := reg.Counter("apf_decode_total", name).Value(); got != 11 {
		t.Errorf("decodes = %d, want 11", got)
	}
	if got := reg.Counter("apf_errors_total", name).Value(); got != 2 {
		t.Errorf("errors = %d, want 2", got)
	}
}

func TestInstrumentNilRegistryIsIdentity(t *testing.T) {
	raw := NewTHash()
	if got := Instrument(raw, nil); got != APF(raw) {
		t.Errorf("Instrument(f, nil) = %T, want the raw APF", got)
	}
}

// BenchmarkInstrumentedEncode measures the instrumentation overhead on the
// apf.Encode hot path: the "instrumented" sub-benchmark's ns/op minus the
// "raw" sub-benchmark's ns/op is the cost of the two atomic counters, and
// the observability budget requires it below 20 ns/op (measured ≈ 5 ns on
// the reference container). Encode arguments cycle through 64 rows so the
// group-table lookup behaves as in the WBC coordinator, not as a
// single-row cache hit.
func BenchmarkInstrumentedEncode(b *testing.B) {
	raw := NewTHash()
	reg := obs.NewRegistry()
	wrapped := Instrument(raw, reg)
	bench := func(f APF) func(*testing.B) {
		return func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				z, err := f.Encode(int64(i&63)+1, int64(i&1023)+1)
				if err != nil {
					b.Fatal(err)
				}
				sink += z
			}
			_ = sink
		}
	}
	b.Run("raw", bench(raw))
	b.Run("instrumented", bench(wrapped))
}

// TestInstrumentationOverheadBudget machine-checks the < 20 ns/op budget
// with testing.Benchmark. Skipped in -short mode (timing assertions on a
// loaded CI machine are noise-prone) and under the race detector (whose
// instrumentation adds ~100 ns to every atomic op, dwarfing the budget);
// the benchmark above remains the authoritative measurement.
func TestInstrumentationOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; run without -short")
	}
	if raceEnabled {
		t.Skip("timing assertion; race-detector instrumentation dominates the budget")
	}
	raw := NewTHash()
	wrapped := Instrument(raw, obs.NewRegistry())
	measure := func(f APF) float64 {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			r := testing.Benchmark(func(b *testing.B) {
				var sink int64
				for i := 0; i < b.N; i++ {
					z, _ := f.Encode(int64(i&63)+1, int64(i&1023)+1)
					sink += z
				}
				_ = sink
			})
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if trial == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	rawNS := measure(raw)
	wrappedNS := measure(wrapped)
	overhead := wrappedNS - rawNS
	t.Logf("raw %.1f ns/op, instrumented %.1f ns/op, overhead %.1f ns/op", rawNS, wrappedNS, overhead)
	if overhead >= 20 {
		t.Errorf("instrumentation overhead %.1f ns/op exceeds the 20 ns budget", overhead)
	}
}
