//go:build !race

package apf

const raceEnabled = false
