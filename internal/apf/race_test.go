//go:build race

package apf

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation adds ~100 ns to every atomic operation and makes timing
// budgets meaningless. Timing-assertion tests consult it and skip.
const raceEnabled = true
