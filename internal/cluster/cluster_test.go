package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/obs"
	"pairfn/internal/tabled"
)

// startServer spins a real tabled server (sharded backend over the
// diagonal mapping) and returns its httptest harness.
func startServer(t *testing.T, rows, cols int64, opt tabled.ServerOptions) *httptest.Server {
	t.Helper()
	f, err := core.ByName("diagonal")
	if err != nil {
		t.Fatal(err)
	}
	newStore := func() extarray.Store[string] { return extarray.NewPagedStore[string]() }
	b, err := tabled.NewSharded[string](f, 4, newStore, rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tabled.NewHandler(b, opt))
	t.Cleanup(srv.Close)
	return srv
}

// startCluster builds N member servers tiling [1, 1<<40) evenly plus a
// Router over them.
func startCluster(t *testing.T, n int, rows, cols int64, opt Options) (*Router, []*httptest.Server) {
	t.Helper()
	members := make([]*httptest.Server, n)
	bases := make([]string, n)
	for i := range members {
		members[i] = startServer(t, rows, cols, tabled.ServerOptions{})
		bases[i] = members[i].URL
	}
	spec, err := EvenSpec("diagonal", bases, 1<<20, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rt, members
}

// randomOps builds a seeded op mix touching every routing class: in-range
// sets/gets, boundary-adjacent positions, grows and shrinks, dims, stats,
// rejected positions, and unknown kinds.
func randomOps(rng *rand.Rand, n int, rows, cols int64) []tabled.Op {
	ops := make([]tabled.Op, n)
	for i := range ops {
		switch r := rng.Float64(); {
		case r < 0.40:
			ops[i] = tabled.Op{Op: "set",
				X: rng.Int63n(rows) + 1, Y: rng.Int63n(cols) + 1,
				V: fmt.Sprintf("v%d", rng.Intn(1000))}
		case r < 0.80:
			ops[i] = tabled.Op{Op: "get", X: rng.Int63n(rows) + 1, Y: rng.Int63n(cols) + 1}
		case r < 0.86:
			// Grow or shrink — broadcast, and shrinks delete cells (Moves).
			ops[i] = tabled.Op{Op: "resize",
				Rows: rows/2 + rng.Int63n(rows), Cols: cols/2 + rng.Int63n(cols)}
		case r < 0.90:
			ops[i] = tabled.Op{Op: "dims"}
		case r < 0.94:
			ops[i] = tabled.Op{Op: "stats"}
		case r < 0.97:
			// The mapping rejects non-positive positions: the error must come
			// back bit-identical to single-node execution.
			ops[i] = tabled.Op{Op: "set", X: -rng.Int63n(3), Y: rng.Int63n(cols) + 1, V: "bad"}
		default:
			ops[i] = tabled.Op{Op: "mystery"}
		}
	}
	return ops
}

// TestExecuteEquivalence quick-checks the tentpole property: partition +
// concurrent fan-out + merge over N members is indistinguishable — per-op
// results, errors, stats — from running the same batch on one server.
func TestExecuteEquivalence(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5} {
		for _, wire := range []string{tabled.WireJSON, tabled.WireBinary} {
			t.Run(fmt.Sprintf("nodes=%d/wire=%s", nodes, wire), func(t *testing.T) {
				const rows, cols = 40, 40
				rt, _ := startCluster(t, nodes, rows, cols, Options{Wire: wire})
				direct := startServer(t, rows, cols, tabled.ServerOptions{})
				// The direct baseline always speaks JSON: the binary codec
				// rejects unknown op kinds at encode, and the semantics under
				// test are the server's, not the wire's. Only the router's
				// node fan-out wire varies.
				dc := &tabled.Client{Base: direct.URL, Wire: tabled.WireJSON}
				rng := rand.New(rand.NewSource(int64(nodes)*100 + 7))
				ctx := context.Background()
				for round := 0; round < 8; round++ {
					ops := randomOps(rng, 60, rows, cols)
					want, err := dc.Batch(ctx, ops)
					if err != nil {
						t.Fatalf("round %d: direct batch: %v", round, err)
					}
					got := rt.Execute(ctx, ops, "")
					if !reflect.DeepEqual(got, want) {
						for i := range got {
							if !reflect.DeepEqual(got[i], want[i]) {
								t.Errorf("round %d op %d %+v:\n  cluster %+v\n  direct  %+v",
									round, i, ops[i], got[i], want[i])
							}
						}
						t.Fatalf("round %d: cluster and direct results diverge", round)
					}
				}
			})
		}
	}
}

func TestExecuteOutOfRange(t *testing.T) {
	// A spec with a tiny address space: positions whose address lands past
	// the last range answer the typed error without touching any member.
	srv := startServer(t, 100, 100, tabled.ServerOptions{})
	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{Name: "solo", Base: srv.URL, Lo: 1, Hi: 10}}}
	rt, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Execute(context.Background(), []tabled.Op{
		{Op: "get", X: 2, Y: 2},          // addr 5: in range
		{Op: "set", X: 30, Y: 30, V: "v"}, // addr ≫ 10: out of range
	}, "")
	if res[0].Err != "" {
		t.Fatalf("in-range op failed: %+v", res[0])
	}
	if !strings.Contains(res[1].Err, ErrOutOfRange.Error()) {
		t.Fatalf("out-of-range Err = %q", res[1].Err)
	}
}

func TestExecuteDownMemberFailsFast(t *testing.T) {
	rt, members := startCluster(t, 2, 40, 40, Options{})
	members[1].Close()
	rt.Health().CheckNow(context.Background())

	// Ops for the dead range fail with the unavailability class; the
	// surviving range keeps serving.
	live := tabled.Op{Op: "set", X: 1, Y: 1, V: "ok"} // addr 1 → node 0
	dead := tabled.Op{Op: "set", X: 900, Y: 900, V: "x"}
	if a := diagAddr(900, 900); a < 1<<19 {
		t.Fatalf("test op addr %d not in node 1's range", a)
	}
	res := rt.Execute(context.Background(), []tabled.Op{live, dead}, "")
	if res[0].Err != "" || !res[0].OK {
		t.Fatalf("surviving-range op = %+v", res[0])
	}
	if !IsUnavailable(res[1].Err) {
		t.Fatalf("dead-range Err = %q, want unavailability class", res[1].Err)
	}
}

func TestExecuteDegradedMemberReadOnly(t *testing.T) {
	// Member 0 runs with Writable=false: its /readyz reports degraded and
	// its writes 503. After a sweep the router reads from it but fails its
	// writes fast with the typed read-only error.
	f, _ := core.ByName("diagonal")
	newStore := func() extarray.Store[string] { return extarray.NewPagedStore[string]() }
	b, err := tabled.NewSharded[string](f, 4, newStore, 40, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	writable := obs.NewFlag(true)
	degradedSrv := httptest.NewServer(tabled.NewHandler(b, tabled.ServerOptions{Writable: writable}))
	t.Cleanup(degradedSrv.Close)
	healthySrv := startServer(t, 40, 40, tabled.ServerOptions{})

	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{
		{Name: "deg", Base: degradedSrv.URL, Lo: 1, Hi: 100},
		{Name: "ok", Base: healthySrv.URL, Lo: 100, Hi: 1 << 40},
	}}
	rt, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Seed a cell on the soon-degraded member while it is writable.
	res := rt.Execute(ctx, []tabled.Op{{Op: "set", X: 1, Y: 1, V: "kept"}}, "")
	if res[0].Err != "" {
		t.Fatalf("seed set: %+v", res[0])
	}

	writable.Set(false)
	rt.Health().CheckNow(ctx)
	if rt.Health().State(0) != StateDegraded {
		t.Fatalf("state = %v, want degraded", rt.Health().State(0))
	}

	res = rt.Execute(ctx, []tabled.Op{
		{Op: "get", X: 1, Y: 1},          // read from the degraded range: served
		{Op: "set", X: 1, Y: 2, V: "no"}, // write to it: typed fail-fast
		{Op: "set", X: 20, Y: 5, V: "yes"}, // addr 281 → healthy range write
	}, "")
	if res[0].Err != "" || !res[0].Found || res[0].V != "kept" {
		t.Fatalf("degraded-range read = %+v", res[0])
	}
	if !IsUnavailable(res[1].Err) || !strings.Contains(res[1].Err, "read-only") {
		t.Fatalf("degraded-range write Err = %q", res[1].Err)
	}
	if res[2].Err != "" {
		t.Fatalf("healthy-range write = %+v", res[2])
	}
}

// TestHandlerRoundTrips drives the full front door over both wires with a
// real tabled.Client — the handler must be wire-compatible with a single
// tabledserver.
func TestHandlerRoundTrips(t *testing.T) {
	for _, wire := range []string{tabled.WireJSON, tabled.WireBinary} {
		t.Run(wire, func(t *testing.T) {
			rt, _ := startCluster(t, 3, 40, 40, Options{})
			front := httptest.NewServer(NewHandler(rt, HandlerOptions{}))
			t.Cleanup(front.Close)
			c := &tabled.Client{Base: front.URL, Wire: wire}
			ctx := context.Background()

			if err := c.Set(ctx, tabled.Cell[string]{X: 3, Y: 4, V: "hello"}); err != nil {
				t.Fatal(err)
			}
			v, found, err := c.Get(ctx, 3, 4)
			if err != nil || !found || v != "hello" {
				t.Fatalf("Get = %q %v %v", v, found, err)
			}
			if err := c.Resize(ctx, 80, 80); err != nil {
				t.Fatal(err)
			}
			rows, cols, err := c.Dims(ctx)
			if err != nil || rows != 80 || cols != 80 {
				t.Fatalf("Dims = %d×%d, %v", rows, cols, err)
			}
			reply, err := c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if reply.Info.Backend != "cluster" || reply.Info.Mapping != "diagonal" {
				t.Fatalf("stats info = %+v", reply.Info)
			}
			if reply.Info.Shards != 3*4 {
				t.Fatalf("aggregated shards = %d, want 12", reply.Info.Shards)
			}
		})
	}
}

func TestHandlerBadRequests(t *testing.T) {
	rt, _ := startCluster(t, 2, 40, 40, Options{})
	front := httptest.NewServer(NewHandler(rt, HandlerOptions{MaxBatch: 4}))
	t.Cleanup(front.Close)

	post := func(body, ct string) *http.Response {
		resp, err := http.Post(front.URL+"/v1/batch", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(`{"ops":[]}`, "application/json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", resp.StatusCode)
	}
	if resp := post(`{nope`, "application/json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status = %d", resp.StatusCode)
	}
	if resp := post("\x00\x01garbage-frame", tabled.ContentTypeBinary); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage binary status = %d", resp.StatusCode)
	}
	big, _ := json.Marshal(tabled.BatchRequest{Ops: make([]tabled.Op, 5)})
	if resp := post(string(big), "application/json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-MaxBatch status = %d", resp.StatusCode)
	}
}

func TestHandlerAllUnavailableIs503(t *testing.T) {
	rt, members := startCluster(t, 2, 40, 40, Options{})
	front := httptest.NewServer(NewHandler(rt, HandlerOptions{}))
	t.Cleanup(front.Close)
	for _, m := range members {
		m.Close()
	}
	rt.Health().CheckNow(context.Background())

	body, _ := json.Marshal(tabled.BatchRequest{Ops: []tabled.Op{{Op: "set", X: 1, Y: 1, V: "v"}}})
	resp, err := http.Post(front.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down status = %d, want 503", resp.StatusCode)
	}
}

func TestHandlerRateLimit(t *testing.T) {
	rt, _ := startCluster(t, 1, 40, 40, Options{})
	front := httptest.NewServer(NewHandler(rt, HandlerOptions{
		Limiter: &Limiter{Limit: 2, Window: time.Hour},
	}))
	t.Cleanup(front.Close)
	body := `{"ops":[{"op":"dims"}]}`
	codes := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(front.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK || codes[2] != http.StatusTooManyRequests {
		t.Fatalf("codes = %v, want [200 200 429]", codes)
	}
	// Probes are not rate limited.
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status = %d", resp.StatusCode)
	}
}

func TestHandlerClusterStatus(t *testing.T) {
	rt, members := startCluster(t, 3, 40, 40, Options{Registry: obs.NewRegistry()})
	front := httptest.NewServer(NewHandler(rt, HandlerOptions{}))
	t.Cleanup(front.Close)

	// Route something so the counters move, then kill a member.
	rt.Execute(context.Background(), []tabled.Op{{Op: "set", X: 1, Y: 1, V: "v"}}, "")
	members[2].Close()
	rt.Health().CheckNow(context.Background())

	resp, err := http.Get(front.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Mapping != "diagonal" || len(reply.Nodes) != 3 {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.Nodes[0].Lo != 1 || reply.Nodes[0].Ops < 1 {
		t.Fatalf("node 0 = %+v", reply.Nodes[0])
	}
	if reply.Nodes[2].State != "down" {
		t.Fatalf("node 2 state = %q, want down", reply.Nodes[2].State)
	}

	// /readyz stays 200 with the trouble in the detail text.
	rresp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(rresp.Body)
	if rresp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "1/3 nodes unhealthy") {
		t.Fatalf("readyz = %d %q", rresp.StatusCode, buf.String())
	}
}
