// Package cluster is the range-sharded multi-node layer of tabled: a
// stateless routing front door (cmd/tabledrouter) over N independent
// tabledserver members, each owning one contiguous slice of the pairing
// function's address space.
//
// The pairing function is what makes the sharding this simple. Every
// member runs the same mapping; a cell's PF address is a pure function of
// its (x, y), so the router computes owners locally — one batched
// core.EncodeBatch call per request, no metadata service, no lookups —
// and a contiguous address range is a contiguous region of the mapping's
// layout (a row-block under diagonal, a block-grid tile under block2d...),
// so range ownership inherits whatever locality the mapping was chosen
// for. The spec (Spec, rangemap.go) is a static contiguous tiling
// [1, max) of the address space, validated at startup.
//
// Request flow: the front door (handler.go) decodes /v1/batch in either
// wire format, the Partitioner (partition.go) lays the ops out per owner
// with the same counting-sort plan the in-process Sharded backend uses,
// the Router (fanout.go) calls the owners concurrently through pooled
// tabled.Clients, and the plan merges the replies back into request
// order — bit-identical to single-node execution (broadcast ops combine
// under exact rules; rejected positions are forwarded so even error
// strings match; the equivalence test quick-checks this).
//
// The router holds no durable state. Idempotency lives on the members:
// each sub-batch carries a key derived from the client's Idempotency-Key,
// so retries — the client's or the router's — replay from the members'
// caches instead of double-applying. An active health checker (health.go)
// routes around trouble: degraded (read-only) members keep serving reads
// while their writes fail fast with a typed error, down members fail fast
// entirely. A sliding-window per-client Limiter (limiter.go) guards the
// front door.
package cluster
