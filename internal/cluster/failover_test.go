package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/obs"
	"pairfn/internal/retry"
	"pairfn/internal/tabled"
)

// replPair is a primary tabledserver with a WAL and a follower replicating
// it — the real replication stack, not a stub, so the router-level tests
// exercise the same frames/status/promote surface production does.
type replPair struct {
	primary  *httptest.Server
	follower *httptest.Server
	wal      *tabled.WAL // primary's
	fol      *tabled.Follower
}

func startReplPair(t *testing.T, rows, cols int64) *replPair {
	t.Helper()
	f, err := core.ByName("diagonal")
	if err != nil {
		t.Fatal(err)
	}
	newStore := func() extarray.Store[string] { return extarray.NewPagedStore[string]() }
	dir := t.TempDir()
	open := func(name string) (*tabled.Sharded[string], *tabled.WAL) {
		b, err := tabled.NewSharded[string](f, 4, newStore, rows, cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := tabled.OpenWAL(filepath.Join(dir, name),
			func(rec tabled.WALRecord) error { return tabled.ApplyWALRecord(b, rec) },
			tabled.WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		return b, w
	}

	pb, pw := open("primary.wal")
	p := &replPair{wal: pw}
	p.primary = httptest.NewServer(tabled.NewHandler(pb, tabled.ServerOptions{
		WAL: pw, Repl: &tabled.Repl{WAL: pw},
	}))
	t.Cleanup(p.primary.Close)

	fb, fw := open("follower.wal")
	writable := obs.NewFlag(false)
	_, next := fw.SeqState()
	p.fol = tabled.NewFollower(fb, fw, next, tabled.FollowerOptions{
		Source:   p.primary.URL,
		PollWait: 50 * time.Millisecond,
		Writable: writable,
		Retry:    &retry.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, MaxAttempts: -1},
	})
	p.follower = httptest.NewServer(tabled.NewHandler(fb, tabled.ServerOptions{
		WAL: fw, Writable: writable, Repl: &tabled.Repl{WAL: fw, Follower: p.fol},
	}))
	t.Cleanup(p.follower.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); p.fol.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return p
}

func (p *replPair) waitCaughtUp(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, next := p.wal.SeqState()
		if p.fol.Applied() >= next {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, primary at %d (err=%v)", p.fol.Applied(), next, p.fol.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFailoverReadEquivalence extends the cluster's DeepEqual quick-check
// across a failover: random writes through the router, a read of every
// written position recorded, then the primary is killed and the follower
// promoted — the identical read batch must come back bit-identical from
// the promoted replica, and writes must flow again.
func TestFailoverReadEquivalence(t *testing.T) {
	const rows, cols = 40, 40
	pair := startReplPair(t, rows, cols)
	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{
		Name: "n0", Base: pair.primary.URL, Replica: pair.follower.URL, Lo: 1, Hi: 1 << 40,
	}}}
	rt, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.Health().CheckNow(ctx)

	rng := rand.New(rand.NewSource(42))
	var writes, reads []tabled.Op
	for i := 0; i < 80; i++ {
		x, y := rng.Int63n(rows)+1, rng.Int63n(cols)+1
		writes = append(writes, tabled.Op{Op: "set", X: x, Y: y, V: fmt.Sprintf("v%d", i)})
		reads = append(reads, tabled.Op{Op: "get", X: x, Y: y})
	}
	reads = append(reads, tabled.Op{Op: "dims"}, tabled.Op{Op: "get", X: 7, Y: 9})
	for _, r := range rt.Execute(ctx, writes, "") {
		if r.Err != "" {
			t.Fatalf("write: %+v", r)
		}
	}
	want := rt.Execute(ctx, reads, "")
	for _, r := range want {
		if r.Err != "" {
			t.Fatalf("pre-failover read: %+v", r)
		}
	}
	pair.waitCaughtUp(t)

	// Failover: the primary dies; the operator promotes the follower; the
	// checker observes the role change. No router reconstruction.
	pair.primary.Close()
	resp, err := http.Post(pair.follower.URL+tabled.PromotePath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rt.Health().CheckNow(ctx)
	if !rt.Health().ReplicaPromoted(0) || rt.Health().ReplicaState(0) != StateHealthy {
		t.Fatalf("checker: promoted=%v state=%v", rt.Health().ReplicaPromoted(0), rt.Health().ReplicaState(0))
	}

	got := rt.Execute(ctx, reads, "")
	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("op %d %+v:\n  post-failover %+v\n  pre-failover  %+v",
					i, reads[i], got[i], want[i])
			}
		}
		t.Fatal("post-failover reads diverge from pre-failover reads")
	}
	// Writes fail over too, and land on the promoted replica.
	res := rt.Execute(ctx, []tabled.Op{
		{Op: "set", X: 1, Y: 1, V: "after"},
		{Op: "get", X: 1, Y: 1},
	}, "")
	if res[0].Err != "" || res[1].V != "after" {
		t.Fatalf("post-failover write/read = %+v", res)
	}
	if st := rt.Status(); st.Nodes[0].ReplicaState != "healthy" || !st.Nodes[0].ReplicaPromoted {
		t.Fatalf("status replica columns = %+v", st.Nodes[0])
	}
}

// TestUnpromotedReplicaServesReadsOnly: with the primary down and the
// replica alive but not promoted, reads route to the replica and writes
// fail fast with the awaiting-promotion error — never silently write to a
// follower.
func TestUnpromotedReplicaServesReadsOnly(t *testing.T) {
	pair := startReplPair(t, 40, 40)
	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{
		Name: "n0", Base: pair.primary.URL, Replica: pair.follower.URL, Lo: 1, Hi: 1 << 40,
	}}}
	rt, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.Health().CheckNow(ctx)

	res := rt.Execute(ctx, []tabled.Op{{Op: "set", X: 2, Y: 3, V: "kept"}}, "")
	if res[0].Err != "" {
		t.Fatalf("seed write: %+v", res[0])
	}
	pair.waitCaughtUp(t)
	pair.primary.Close()
	rt.Health().CheckNow(ctx)
	if rt.Health().State(0) != StateDown || rt.Health().ReplicaPromoted(0) {
		t.Fatalf("states: primary=%v promoted=%v", rt.Health().State(0), rt.Health().ReplicaPromoted(0))
	}

	res = rt.Execute(ctx, []tabled.Op{
		{Op: "get", X: 2, Y: 3},
		{Op: "set", X: 4, Y: 4, V: "no"},
	}, "")
	if res[0].Err != "" || !res[0].Found || res[0].V != "kept" {
		t.Fatalf("replica read = %+v", res[0])
	}
	if !IsUnavailable(res[1].Err) || !strings.Contains(res[1].Err, "not promoted") {
		t.Fatalf("unpromoted write Err = %q", res[1].Err)
	}
	// The ready detail names the covering replica.
	if ok, detail := rt.Health().Summary(); ok || !strings.Contains(detail, "replica serving reads") {
		t.Fatalf("summary = %v %q", ok, detail)
	}
}

// TestReloaderSwapsSpecLive: the front door follows a Reloader across a
// spec rewrite — traffic lands on the new topology with no handler or
// listener rebuild, and a broken edit leaves the old spec serving.
func TestReloaderSwapsSpecLive(t *testing.T) {
	a := startServer(t, 40, 40, tabled.ServerOptions{})
	b := startServer(t, 40, 40, tabled.ServerOptions{})
	specJSON := func(base string) string {
		return fmt.Sprintf(`{"mapping":"diagonal","nodes":[{"name":"n0","base":%q,"lo":1,"hi":1099511627776}]}`, base)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(specJSON(a.URL)), 0o644); err != nil {
		t.Fatal(err)
	}
	rl, err := NewReloader(path, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewHandler(rl, HandlerOptions{}))
	t.Cleanup(front.Close)
	c := &tabled.Client{Base: front.URL}
	ctx := context.Background()

	if err := c.Set(ctx, tabled.Cell[string]{X: 1, Y: 2, V: "on-a"}); err != nil {
		t.Fatal(err)
	}

	// A corrupt edit must not take the front door down.
	if err := os.WriteFile(path, []byte(`{"mapping":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := rl.Reload(ctx); err == nil {
		t.Fatal("corrupt spec reloaded without error")
	}
	if v, found, err := c.Get(ctx, 1, 2); err != nil || !found || v != "on-a" {
		t.Fatalf("after corrupt reload: %q %v %v", v, found, err)
	}

	// The real swap: same handler, new member.
	if err := os.WriteFile(path, []byte(specJSON(b.URL)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := rl.Reload(ctx); err != nil {
		t.Fatal(err)
	}
	if rl.Router().Spec().Nodes[0].Base != b.URL {
		t.Fatalf("live spec base = %q", rl.Router().Spec().Nodes[0].Base)
	}
	// Node B never saw the old write: proof traffic moved.
	if _, found, err := c.Get(ctx, 1, 2); err != nil || found {
		t.Fatalf("post-swap read = found=%v err=%v, want clean miss on b", found, err)
	}
	if err := c.Set(ctx, tabled.Cell[string]{X: 1, Y: 2, V: "on-b"}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get(ctx, 1, 2); v != "on-b" {
		t.Fatalf("post-swap write landed elsewhere: %q", v)
	}

	// A reload with identical content is a no-op (same router survives).
	before := rl.Router()
	if err := rl.Reload(ctx); err != nil {
		t.Fatal(err)
	}
	if rl.Router() != before {
		t.Fatal("no-change reload rebuilt the router")
	}

	// /v1/cluster reflects the live spec.
	resp, err := http.Get(front.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes[0].Base != b.URL {
		t.Fatalf("cluster status base = %q", st.Nodes[0].Base)
	}
}

// TestJitteredInterval: every draw stays inside [interval/2, 3·interval/2)
// — the desynchronization window Run promises.
func TestJitteredInterval(t *testing.T) {
	c := NewChecker(&Spec{Mapping: "diagonal", Nodes: []NodeSpec{{Name: "n", Base: "http://x", Lo: 1, Hi: 2}}},
		CheckerOptions{Interval: 100 * time.Millisecond})
	for i := 0; i < 200; i++ {
		d := c.jitteredInterval()
		if d < 50*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("draw %d: %v outside [50ms, 150ms)", i, d)
		}
	}
}

func TestWithReplicas(t *testing.T) {
	mk := func() *Spec {
		s, err := EvenSpec("diagonal", []string{"http://a", "http://b", "http://c"}, 1<<20, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk()
	if err := s.WithReplicas([]string{"http://ra", "", "http://rc"}); err != nil {
		t.Fatal(err)
	}
	if s.Nodes[0].Replica != "http://ra" || s.Nodes[1].Replica != "" || s.Nodes[2].Replica != "http://rc" {
		t.Fatalf("replicas = %+v", s.Nodes)
	}
	if err := mk().WithReplicas([]string{"r", "r", "r", "extra"}); err == nil {
		t.Fatal("extra replica entry accepted")
	}
	if err := mk().WithReplicas([]string{"http://a"}); err == nil {
		t.Fatal("replica equal to base accepted")
	}
}
