package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/obs"
	"pairfn/internal/retry"
	"pairfn/internal/tabled"
)

// nodeUnavailablePrefix marks per-op errors caused by a member being
// unreachable or refusing the sub-batch — the transient class a client
// should retry, as opposed to ErrOutOfRange (a spec problem) or the
// member's own per-op errors (bounds, overflow), which retrying cannot
// fix. IsUnavailable keys off it.
const nodeUnavailablePrefix = "cluster: node "

// IsUnavailable reports whether a per-op error string is the router's
// node-unavailability class.
func IsUnavailable(errstr string) bool {
	return strings.HasPrefix(errstr, nodeUnavailablePrefix)
}

// AllUnavailable reports whether every op failed and at least one failure
// is node unavailability — the condition under which the front door
// answers a typed 503 instead of 200-with-errors, so retrying clients
// treat the whole batch as retryable.
func AllUnavailable(results []tabled.OpResult) bool {
	if len(results) == 0 {
		return false
	}
	any := false
	for i := range results {
		if results[i].Err == "" {
			return false
		}
		if IsUnavailable(results[i].Err) {
			any = true
		}
	}
	return any
}

func nodeDownErr(name string, cause error) string {
	return fmt.Sprintf("%sunavailable: %s: %v", nodeUnavailablePrefix, name, cause)
}

func nodeReadOnlyErr(name string) string {
	return fmt.Sprintf("%sread-only: %s: writes are disabled while the member is degraded", nodeUnavailablePrefix, name)
}

func nodeAwaitingPromotionErr(name string) string {
	return fmt.Sprintf("%sread-only: %s: primary unavailable and replica not promoted, writes are disabled", nodeUnavailablePrefix, name)
}

// nodeFencedMark prefixes per-op errors caused by the owning primary
// being fenced: a promotion happened that it predates, so routing writes
// to it would fork history. A sub-class of IsUnavailable (the marker
// extends nodeUnavailablePrefix), additionally detected by IsFenced so
// the front door can answer 409 instead of 503 — "retry later" is the
// wrong hint when the range needs an operator (or the stale node's
// auto-reseed) to converge.
const nodeFencedMark = nodeUnavailablePrefix + "fenced: "

// IsFenced reports whether a per-op error string is the router's
// fenced-primary class.
func IsFenced(errstr string) bool {
	return strings.HasPrefix(errstr, nodeFencedMark)
}

// AnyFenced reports whether any per-op error is the fenced-primary class.
func AnyFenced(results []tabled.OpResult) bool {
	for i := range results {
		if IsFenced(results[i].Err) {
			return true
		}
	}
	return false
}

func nodeFencedErr(name string, epoch, maxEpoch uint64) string {
	return fmt.Sprintf("%s%s: primary epoch %d is behind observed epoch %d; refusing to route to a stale primary",
		nodeFencedMark, name, epoch, maxEpoch)
}

// errDown is the fail-fast cause recorded when the health checker already
// marked the member down and the router never attempted the call.
var errDown = errors.New("marked down by health check")

// errUnrouted is the defensive fill for ops no merge reached; it cannot
// occur while every sub-batch (including failed ones) merges a result.
var errUnrouted = errors.New("cluster: internal: op was not routed")

// DefaultReplicaReadMaxLag is the replica read-offload lag ceiling used
// when the operator enables -replica-reads without tuning the threshold:
// generous enough that a replica applying a steady stream stays eligible,
// small enough that a stalled one is quickly bypassed.
const DefaultReplicaReadMaxLag = 1024

// Options configures New.
type Options struct {
	// Wire selects the /v1/batch encoding for node fan-out:
	// tabled.WireBinary (the default — the zero-allocation codec) or
	// tabled.WireJSON.
	Wire string
	// Retry, when non-nil, retries failed sub-batches with jittered
	// backoff. Safe because every sub-batch carries a per-node
	// Idempotency-Key derived from the client's: a node that already
	// executed a lost-ack sub-batch replays its recorded response.
	Retry *retry.Policy
	// NodeTimeout bounds each sub-batch attempt (tabled.Client.Timeout);
	// 0 leaves attempts bounded only by the request context.
	NodeTimeout time.Duration
	// HTTPClient overrides the pooled default for node traffic and
	// health probes (tests inject httptest clients).
	HTTPClient *http.Client
	// Registry receives cluster_* metrics; nil disables them.
	Registry *obs.Registry
	// Logger receives router log lines (may be nil).
	Logger *slog.Logger
	// Health configures the active checker (Metrics/HTTPClient/Logger
	// fields are filled from the options above when zero).
	Health CheckerOptions
	// ReplicaReads offloads read-only sub-batches to a node's live,
	// unpromoted replica even while the primary is healthy — read scaling
	// for replicated ranges. Writes always go to the primary.
	ReplicaReads bool
	// ReplicaReadMaxLag caps the replica record lag (last observed by the
	// checker) at which reads are still offloaded; above it the primary
	// serves them. Only meaningful with ReplicaReads; 0 means only a
	// fully-caught-up replica takes reads.
	ReplicaReadMaxLag uint64
}

// A Router is the stateless routing core of tabledcluster: it splits the
// PF address space across the spec's members, fans every batch out to the
// owning nodes concurrently, and merges the replies back into request
// order. All cluster state it keeps is soft (health observations,
// metrics); idempotency and durability live on the members, reached by
// propagating the client's Idempotency-Key per node — so routers can be
// replicated and restarted freely.
type Router struct {
	spec    *Spec
	pf      core.PF
	rm      *RangeMap
	part    *Partitioner
	clients []*tabled.Client
	// rclients[i] reaches Nodes[i].Replica (nil without one): the read
	// fallback while the primary is degraded or down, and the write
	// target once the checker observes the replica promoted.
	rclients []*tabled.Client
	health   *Checker
	m        *Metrics
	logger   *slog.Logger

	replicaReads      bool
	replicaReadMaxLag uint64
}

// New builds a router over a validated spec. The spec's mapping name is
// resolved through core.ByName; every member must be serving the same
// mapping or routed reads will miss (the smoke test's /v1/stats handshake
// catches the misconfiguration).
func New(spec *Spec, opt Options) (*Router, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	f, err := core.ByName(spec.Mapping)
	if err != nil {
		return nil, fmt.Errorf("cluster: spec mapping: %w", err)
	}
	rm, err := NewRangeMap(spec)
	if err != nil {
		return nil, err
	}
	if opt.Wire == "" {
		opt.Wire = tabled.WireBinary
	}
	m := NewMetrics(opt.Registry, spec)
	hopt := opt.Health
	if hopt.HTTPClient == nil {
		hopt.HTTPClient = opt.HTTPClient
	}
	if hopt.Logger == nil {
		hopt.Logger = opt.Logger
	}
	if hopt.Metrics == nil {
		hopt.Metrics = m
	}
	r := &Router{
		spec:              spec,
		pf:                f,
		rm:                rm,
		part:              NewPartitioner(f, rm),
		health:            NewChecker(spec, hopt),
		m:                 m,
		logger:            opt.Logger,
		replicaReads:      opt.ReplicaReads,
		replicaReadMaxLag: opt.ReplicaReadMaxLag,
	}
	for i := range spec.Nodes {
		r.clients = append(r.clients, &tabled.Client{
			Base:    spec.Nodes[i].Base,
			HTTP:    opt.HTTPClient,
			Retry:   opt.Retry,
			Wire:    opt.Wire,
			Timeout: opt.NodeTimeout,
		})
		var rc *tabled.Client
		if spec.Nodes[i].Replica != "" {
			rc = &tabled.Client{
				Base:    spec.Nodes[i].Replica,
				HTTP:    opt.HTTPClient,
				Retry:   opt.Retry,
				Wire:    opt.Wire,
				Timeout: opt.NodeTimeout,
			}
		}
		r.rclients = append(r.rclients, rc)
	}
	return r, nil
}

// Router returns the router itself — the degenerate RouterSource, so a
// fixed-spec composition hands a *Router straight to NewHandler while a
// live-reload one hands a *Reloader.
func (r *Router) Router() *Router { return r }

// Health returns the router's active checker (run it as a lifecycle
// background task).
func (r *Router) Health() *Checker { return r.health }

// Spec returns the cluster spec the router serves.
func (r *Router) Spec() *Spec { return r.spec }

// nodeKey derives the per-node idempotency key from the client's: stable
// across both the client's retries of the whole batch and the router's
// retries of the sub-batch, so a node never applies a replayed sub-batch
// twice. The op count is folded in so a degraded-member read-only filter
// (which shrinks the sub-batch) never replays a response recorded for a
// different op set.
func nodeKey(key, node string, nops int) string {
	return fmt.Sprintf("%s/%s/%d", key, node, nops)
}

// Execute runs one batch through the cluster: partition by owning node,
// fan out concurrently, merge in request order. Per-op errors — the
// members' own and the router's (range misses, unavailable members) —
// come back inline, exactly like a single tabledserver's /v1/batch.
//
// key is the client's Idempotency-Key ("" generates one), propagated to
// every sub-batch via nodeKey so end-to-end retries stay idempotent
// without any router-side replay cache.
func (r *Router) Execute(ctx context.Context, ops []tabled.Op, key string) []tabled.OpResult {
	if key == "" {
		key = tabled.NewIdemKey()
	}
	plan := r.part.Partition(ops, r.health.FirstHealthy())
	defer plan.Release()
	out := make([]tabled.OpResult, len(ops))
	if n := plan.MergeLocal(out); n > 0 {
		r.m.unroutableOps(n)
	}
	replies := make([][]tabled.OpResult, len(r.clients))
	var wg sync.WaitGroup
	for n := range r.clients {
		sub, _ := plan.Sub(n)
		if len(sub) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int, sub []tabled.Op) {
			defer wg.Done()
			replies[n] = r.callNode(ctx, n, sub, key)
		}(n, sub)
	}
	wg.Wait()
	// Merge in ascending node order — the broadcast combine rules in
	// MergeInto depend on it for determinism.
	for n := range replies {
		if replies[n] != nil {
			plan.MergeInto(out, n, replies[n])
		}
	}
	plan.FillUnmerged(out, errUnrouted)
	return out
}

// callNode executes one node's sub-batch, honoring the member's observed
// health, its fencing status, and failing over to its replica when the
// primary cannot serve. The decision table (DESIGN §5d/§5e):
//
//	primary healthy, not fenced          → primary, all ops (reads may
//	                                       offload to the replica under
//	                                       Options.ReplicaReads)
//	primary fenced (any live state),
//	  replica promoted and healthy       → replica, all ops (failover)
//	primary fenced, replica up
//	  but not promoted                   → replica reads; writes fenced
//	primary fenced, no usable replica    → everything fails fenced (its
//	                                       data may predate the fork)
//	primary degraded/down, replica
//	  promoted and healthy               → replica, all ops (failover)
//	primary degraded/down, replica up
//	  but not promoted (or read-only)    → replica, reads only
//	primary degraded, no usable replica  → primary, reads only (as before)
//	primary down, no usable replica      → everything fails fast
//
// An observed-healthy primary always wins over a promoted replica —
// UNLESS it is fenced: fencing exists precisely for the stale restarted
// primary whose /readyz looks healthy but whose epoch predates a
// promotion the checker has witnessed. The epoch latch is monotonic, so
// the stale node stays fenced until the spec is amended or it reseeds
// under the new primary (and then reports the new epoch itself). The
// returned slice always has one result per sub-batch op.
func (r *Router) callNode(ctx context.Context, n int, sub []tabled.Op, key string) []tabled.OpResult {
	name := r.spec.Nodes[n].Name
	res := make([]tabled.OpResult, len(sub))
	client := r.clients[n]
	readsOnly, readOnlyErr := false, ""
	st := r.health.State(n)
	replicaRead := false
	if fenced := r.health.PrimaryFenced(n); fenced && st != StateDown {
		priEpoch, _ := r.health.Epoch(n)
		fencedErr := nodeFencedErr(name, priEpoch, r.health.MaxEpoch(n))
		repl := r.rclients[n]
		repSt := StateDown
		if repl != nil {
			repSt = r.health.ReplicaState(n)
		}
		switch {
		case repSt == StateHealthy && r.health.ReplicaPromoted(n):
			// The promoted replica owns the range now; the stale primary
			// gets nothing.
			client = repl
			r.m.failover()
		case repSt != StateDown:
			// Replica alive but not (yet) promoted: it still has the
			// pre-fork reads; writes are refused rather than routed to
			// either a stale primary or an unpromoted follower.
			client = repl
			readsOnly, readOnlyErr = true, fencedErr
			r.m.fencedBatch()
			r.m.failover()
		default:
			// Fenced with no usable replica: even reads are refused — the
			// stale node's data may predate writes the promoted (now
			// unreachable) primary acknowledged.
			r.m.fencedBatch()
			for i := range res {
				res[i] = tabled.OpResult{Err: fencedErr}
			}
			return res
		}
	} else if st != StateHealthy {
		repl := r.rclients[n]
		repSt := StateDown
		if repl != nil {
			repSt = r.health.ReplicaState(n)
		}
		switch {
		case repSt == StateHealthy && r.health.ReplicaPromoted(n):
			// The follower was explicitly promoted and answers writable:
			// the whole range fails over.
			client = repl
			r.m.failover()
		case repSt != StateDown:
			// A live but unpromoted (or read-only) replica serves the
			// reads; writes wait for an operator promotion.
			client = repl
			readsOnly, readOnlyErr = true, nodeAwaitingPromotionErr(name)
			r.m.failover()
		case st == StateDegraded:
			// No usable replica: the degraded primary still owns reads.
			readsOnly, readOnlyErr = true, nodeReadOnlyErr(name)
		default:
			for i := range res {
				res[i] = tabled.OpResult{Err: nodeDownErr(name, errDown)}
			}
			return res
		}
	} else if r.replicaReads {
		// Healthy, unfenced primary with read offload enabled: an all-get
		// sub-batch can go to the replica when it is live, unpromoted
		// (a promoted one is a primary in its own right, handled above),
		// and within the configured lag. Writes, and batches mixing in
		// writes, always take the primary — one node answers, so a batch
		// reads its own writes.
		if repl := r.rclients[n]; repl != nil && allGets(sub) &&
			r.health.ReplicaState(n) != StateDown && !r.health.ReplicaPromoted(n) &&
			r.health.ReplicaLag(n) <= r.replicaReadMaxLag {
			client = repl
			replicaRead = true
		}
	}
	send := sub
	var sendPos []int // res position of each sent op when filtering
	if readsOnly && tabled.HasWrites(sub) {
		send = make([]tabled.Op, 0, len(sub))
		sendPos = make([]int, 0, len(sub))
		for i := range sub {
			if sub[i].Op == "set" || sub[i].Op == "resize" {
				res[i] = tabled.OpResult{Err: readOnlyErr}
			} else {
				send = append(send, sub[i])
				sendPos = append(sendPos, i)
			}
		}
		if len(send) == 0 {
			return res
		}
	}
	if replicaRead {
		// Offloaded reads fall back to the primary on any replica error:
		// offload is an optimization, never a new failure mode.
		t0 := time.Now()
		got, err := client.BatchWithKey(ctx, send, nodeKey(key, name+"/replica", len(send)))
		if err == nil {
			r.m.nodeBatch(n, len(send), time.Since(t0), false)
			r.m.replicaRead(len(send))
			copy(res, got)
			return res
		}
		if r.logger != nil {
			r.logger.Warn("cluster: replica read failed, falling back to primary",
				"node", name, "ops", len(send), "err", err)
		}
		client = r.clients[n]
	}
	t0 := time.Now()
	got, err := client.BatchWithKey(ctx, send, nodeKey(key, name, len(send)))
	r.m.nodeBatch(n, len(send), time.Since(t0), err != nil)
	if err != nil {
		if r.logger != nil {
			r.logger.Warn("cluster: sub-batch failed", "node", name, "ops", len(send), "err", err)
		}
		for _, i := range sendIndices(sendPos, len(send)) {
			res[i] = tabled.OpResult{Err: nodeDownErr(name, err)}
		}
		return res
	}
	if sendPos == nil {
		copy(res, got)
	} else {
		for k, i := range sendPos {
			res[i] = got[k]
		}
	}
	return res
}

// allGets reports whether every op is a plain read — the only batches
// eligible for replica-read offload.
func allGets(ops []tabled.Op) bool {
	for i := range ops {
		if ops[i].Op != "get" {
			return false
		}
	}
	return len(ops) > 0
}

// sendIndices yields the res positions of the sent ops: identity when no
// filter was applied.
func sendIndices(sendPos []int, n int) []int {
	if sendPos != nil {
		return sendPos
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// ClusterStats aggregates the members' /v1/stats into one StatsReply for
// the router's own /v1/stats endpoint: Backend "cluster", the spec's
// mapping, Shards summed over reachable members, dimensions from the
// first reachable one, and Stats combined under the broadcast rules
// (Moves sum, Footprint/Reshapes max). Members marked down are skipped;
// with nothing reachable an error is returned.
func (r *Router) ClusterStats(ctx context.Context) (*tabled.StatsReply, error) {
	type nodeStats struct {
		reply *tabled.StatsReply
		err   error
	}
	replies := make([]nodeStats, len(r.clients))
	var wg sync.WaitGroup
	for n := range r.clients {
		if r.health.State(n) == StateDown {
			replies[n].err = errDown
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			replies[n].reply, replies[n].err = r.clients[n].Stats(ctx)
		}(n)
	}
	wg.Wait()
	agg := &tabled.StatsReply{Info: tabled.Info{Backend: "cluster", Mapping: r.spec.Mapping}}
	got := 0
	for n := range replies {
		if replies[n].err != nil {
			continue
		}
		rep := replies[n].reply
		if got == 0 {
			agg.Rows, agg.Cols = rep.Rows, rep.Cols
		}
		agg.Info.Shards += rep.Info.Shards
		AggregateStats(&agg.Stats, rep.Stats)
		got++
	}
	if got == 0 {
		return nil, fmt.Errorf("%sunavailable: no member reachable for stats", nodeUnavailablePrefix)
	}
	return agg, nil
}

// NodeStatus is one member's row in the /v1/cluster reply.
type NodeStatus struct {
	Name  string `json:"name"`
	Base  string `json:"base"`
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	State string `json:"state"`
	// Replica fields mirror the spec and the checker's replica
	// observations; omitted when the node has no replica.
	Replica         string `json:"replica,omitempty"`
	ReplicaState    string `json:"replica_state,omitempty"`
	ReplicaPromoted bool   `json:"replica_promoted,omitempty"`
	// Epoch observations (replicated nodes only): the primary's last
	// reported epoch, the pair's latched maximum, whether the primary is
	// fenced by it, and the replica's epoch/lag.
	Epoch        uint64  `json:"epoch,omitempty"`
	MaxEpoch     uint64  `json:"max_epoch,omitempty"`
	Fenced       bool    `json:"fenced,omitempty"`
	ReplicaEpoch uint64  `json:"replica_epoch,omitempty"`
	ReplicaLag   uint64  `json:"replica_lag,omitempty"`
	Ops          int64   `json:"ops_total"`
	Errors          int64   `json:"errors_total"`
	P50us           float64 `json:"p50_us"`
	P95us           float64 `json:"p95_us"`
	P99us           float64 `json:"p99_us"`
	// Raw latency histogram (upper bounds in seconds; cumulative counts,
	// final entry = total) so clients — tabledload -nodes — can diff two
	// snapshots and compute percentiles for just their own run.
	LatencyBounds []float64 `json:"latency_bounds,omitempty"`
	LatencyCounts []int64   `json:"latency_counts,omitempty"`
}

// StatusReply is the body of GET /v1/cluster.
type StatusReply struct {
	Mapping string       `json:"mapping"`
	Nodes   []NodeStatus `json:"nodes"`
}

// Status reports the live cluster view: the range map, each member's
// observed health, and its cumulative routing counters.
func (r *Router) Status() StatusReply {
	reply := StatusReply{Mapping: r.spec.Mapping, Nodes: make([]NodeStatus, len(r.spec.Nodes))}
	for n := range r.spec.Nodes {
		ops, errs, bounds, counts := r.m.nodeSnapshot(n)
		reply.Nodes[n] = NodeStatus{
			Name:          r.spec.Nodes[n].Name,
			Base:          r.spec.Nodes[n].Base,
			Lo:            r.spec.Nodes[n].Lo,
			Hi:            r.spec.Nodes[n].Hi,
			State:         r.health.State(n).String(),
			Replica:       r.spec.Nodes[n].Replica,
			Ops:           ops,
			Errors:        errs,
			P50us:         HistogramPercentile(bounds, counts, 0.50) * 1e6,
			P95us:         HistogramPercentile(bounds, counts, 0.95) * 1e6,
			P99us:         HistogramPercentile(bounds, counts, 0.99) * 1e6,
			LatencyBounds: bounds,
			LatencyCounts: counts,
		}
		if r.spec.Nodes[n].Replica != "" {
			reply.Nodes[n].ReplicaState = r.health.ReplicaState(n).String()
			reply.Nodes[n].ReplicaPromoted = r.health.ReplicaPromoted(n)
			if e, ok := r.health.Epoch(n); ok {
				reply.Nodes[n].Epoch = e
			}
			if e, ok := r.health.ReplicaEpoch(n); ok {
				reply.Nodes[n].ReplicaEpoch = e
			}
			reply.Nodes[n].MaxEpoch = r.health.MaxEpoch(n)
			reply.Nodes[n].Fenced = r.health.PrimaryFenced(n)
			reply.Nodes[n].ReplicaLag = r.health.ReplicaLag(n)
		}
	}
	return reply
}
