package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"pairfn/internal/obs"
	"pairfn/internal/tabled"
)

func promote(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url+tabled.PromotePath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote = %d", resp.StatusCode)
	}
}

// TestFencedPrimaryFailsOver is the split-brain drill at the router: the
// follower is promoted while the old primary is STILL ALIVE and healthy.
// The checker must observe the epoch fork and fence the old primary —
// every op, writes first, routes to the promoted node; nothing lands on
// the stale one.
func TestFencedPrimaryFailsOver(t *testing.T) {
	pair := startReplPair(t, 40, 40)
	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{
		Name: "n0", Base: pair.primary.URL, Replica: pair.follower.URL, Lo: 1, Hi: 1 << 40,
	}}}
	rt, err := New(spec, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.Health().CheckNow(ctx)

	for _, r := range rt.Execute(ctx, []tabled.Op{{Op: "set", X: 1, Y: 1, V: "before"}}, "") {
		if r.Err != "" {
			t.Fatalf("pre-fork write: %+v", r)
		}
	}
	pair.waitCaughtUp(t)
	if e, ok := rt.Health().Epoch(0); !ok || e != 0 || rt.Health().MaxEpoch(0) != 0 {
		t.Fatalf("pre-fork epochs = %d (ok=%v) / %d", e, ok, rt.Health().MaxEpoch(0))
	}

	// The operator promotes the follower; the old primary is not dead,
	// just cut off from the operator's view — the classic fencing hazard.
	promote(t, pair.follower.URL)
	rt.Health().CheckNow(ctx)
	if !rt.Health().PrimaryFenced(0) {
		e, _ := rt.Health().Epoch(0)
		t.Fatalf("primary not fenced: epoch %d, max %d", e, rt.Health().MaxEpoch(0))
	}

	// Writes flow — to the promoted replica, never the stale primary.
	res := rt.Execute(ctx, []tabled.Op{
		{Op: "set", X: 2, Y: 2, V: "after"},
		{Op: "get", X: 2, Y: 2},
		{Op: "get", X: 1, Y: 1},
	}, "")
	if res[0].Err != "" || res[1].V != "after" || res[2].V != "before" {
		t.Fatalf("post-fence batch = %+v", res)
	}
	pc := &tabled.Client{Base: pair.primary.URL}
	if _, found, err := pc.Get(ctx, 2, 2); err != nil || found {
		t.Fatalf("stale primary saw the fenced write: found=%v err=%v", found, err)
	}

	st := rt.Status()
	if !st.Nodes[0].Fenced || st.Nodes[0].Epoch != 0 || st.Nodes[0].MaxEpoch != 1 {
		t.Fatalf("status = %+v", st.Nodes[0])
	}
	if _, detail := rt.Health().Summary(); !strings.Contains(detail, "fenced") {
		t.Fatalf("summary detail = %q", detail)
	}
}

// TestFencedPrimaryNoReplicaIs409: with the promoted node gone, a fenced
// primary must refuse EVERYTHING — its data may predate the fork, so even
// reads are wrong — and the front door reports the all-fenced batch as a
// typed 409, not a retryable 503.
func TestFencedPrimaryNoReplicaIs409(t *testing.T) {
	pair := startReplPair(t, 40, 40)
	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{
		Name: "n0", Base: pair.primary.URL, Replica: pair.follower.URL, Lo: 1, Hi: 1 << 40,
	}}}
	rt, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	promote(t, pair.follower.URL)
	rt.Health().CheckNow(ctx) // latches max epoch 1 from the promoted node
	pair.follower.Close()
	rt.Health().CheckNow(ctx) // replica now down; fencing must persist

	if !rt.Health().PrimaryFenced(0) {
		t.Fatal("fencing lost when the promoted node went down")
	}
	res := rt.Execute(ctx, []tabled.Op{
		{Op: "set", X: 1, Y: 1, V: "x"},
		{Op: "get", X: 1, Y: 1},
	}, "")
	for i, r := range res {
		if !IsFenced(r.Err) {
			t.Fatalf("op %d err = %q, want fenced refusal", i, r.Err)
		}
	}

	h := NewHandler(rt, HandlerOptions{})
	body := `{"ops":[{"op":"set","x":1,"y":1,"v":"x"}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "fenced") {
		t.Fatalf("front door = %d %q, want 409 fenced", rec.Code, rec.Body.String())
	}
}

// TestReplicaReads: with -replica-reads on and the replica caught up,
// all-get sub-batches are served by the replica — bit-identically — while
// anything containing a write stays on the primary.
func TestReplicaReads(t *testing.T) {
	const rows, cols = 40, 40
	pair := startReplPair(t, rows, cols)
	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{
		Name: "n0", Base: pair.primary.URL, Replica: pair.follower.URL, Lo: 1, Hi: 1 << 40,
	}}}
	rt, err := New(spec, Options{Registry: obs.NewRegistry(), ReplicaReads: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.Health().CheckNow(ctx)

	var writes, reads []tabled.Op
	for i := 0; i < 30; i++ {
		x, y := int64(i%8+1), int64(i/8+1)
		writes = append(writes, tabled.Op{Op: "set", X: x, Y: y, V: fmt.Sprintf("v%d", i)})
		reads = append(reads, tabled.Op{Op: "get", X: x, Y: y})
	}
	for _, r := range rt.Execute(ctx, writes, "") {
		if r.Err != "" {
			t.Fatalf("write: %+v", r)
		}
	}
	want := rt.Execute(ctx, reads, "") // replica may or may not be caught up yet
	for _, r := range want {
		if r.Err != "" {
			t.Fatalf("read: %+v", r)
		}
	}
	pair.waitCaughtUp(t)
	rt.Health().CheckNow(ctx) // observe zero lag

	if lag := rt.Health().ReplicaLag(0); lag != 0 {
		t.Fatalf("caught-up replica lag = %d", lag)
	}
	before := rt.m.repReads.Value()
	got := rt.Execute(ctx, reads, "")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replica reads diverge from primary reads")
	}
	offloaded := rt.m.repReads.Value() - before
	if offloaded != int64(len(reads)) {
		t.Fatalf("offloaded %d of %d reads", offloaded, len(reads))
	}

	// A batch with one write in it must stay on the primary wholesale.
	before = rt.m.repReads.Value()
	mixed := append([]tabled.Op{{Op: "set", X: 1, Y: 1, V: "w"}}, reads[:5]...)
	for _, r := range rt.Execute(ctx, mixed, "") {
		if r.Err != "" {
			t.Fatalf("mixed batch: %+v", r)
		}
	}
	if n := rt.m.repReads.Value() - before; n != 0 {
		t.Fatalf("mixed batch offloaded %d reads", n)
	}

	// Promoted replica: offload must stop (it is a primary now, serving
	// its own writes; routing "replica reads" to it would double-count).
	promote(t, pair.follower.URL)
	rt.Health().CheckNow(ctx)
	before = rt.m.repReads.Value()
	_ = rt.Execute(ctx, reads[:5], "")
	if n := rt.m.repReads.Value() - before; n != 0 {
		t.Fatalf("offloaded %d reads to a promoted replica", n)
	}
}

// TestReplicaReadsLagGate: a replica lagging past ReplicaReadMaxLag keeps
// reads on the primary until the next sweep sees it caught back up. The
// lag observation is planted directly in the checker's slot — creating
// real sustained lag against a long-polling follower is a timing game —
// so this pins exactly the callNode gate: lag > threshold stays home,
// lag ≤ threshold offloads.
func TestReplicaReadsLagGate(t *testing.T) {
	pair := startReplPair(t, 40, 40)
	spec := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{
		Name: "n0", Base: pair.primary.URL, Replica: pair.follower.URL, Lo: 1, Hi: 1 << 40,
	}}}
	rt, err := New(spec, Options{Registry: obs.NewRegistry(), ReplicaReads: true, ReplicaReadMaxLag: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, r := range rt.Execute(ctx, []tabled.Op{{Op: "set", X: 1, Y: 1, V: "v"}}, "") {
		if r.Err != "" {
			t.Fatalf("write: %+v", r)
		}
	}
	pair.waitCaughtUp(t)
	rt.Health().CheckNow(ctx)

	read := []tabled.Op{{Op: "get", X: 1, Y: 1}}
	offloads := func() int64 {
		before := rt.m.repReads.Value()
		for _, r := range rt.Execute(ctx, read, "") {
			if r.Err != "" || r.V != "v" {
				t.Fatalf("read = %+v", r)
			}
		}
		return rt.m.repReads.Value() - before
	}
	if n := offloads(); n != 1 {
		t.Fatalf("caught-up replica offloaded %d reads, want 1", n)
	}
	rt.health.repLags[0].Store(6) // one past the threshold
	if n := offloads(); n != 0 {
		t.Fatalf("lagging replica offloaded %d reads, want 0", n)
	}
	rt.health.repLags[0].Store(5) // exactly at the threshold
	if n := offloads(); n != 1 {
		t.Fatalf("at-threshold replica offloaded %d reads, want 1", n)
	}
}
