package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"pairfn/internal/obs"
	"pairfn/internal/srvkit"
	"pairfn/internal/tabled"
)

// HandlerOptions configures NewHandler. Zero limits inherit the tabled
// server defaults so a batch the router accepts is one every member will
// accept too.
type HandlerOptions struct {
	// MaxBatch caps ops per request (0 → tabled.DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes caps the /v1/batch body (0 → tabled.DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// BatchTimeout bounds one routed batch end to end, fan-out included
	// (0 → tabled.DefaultBatchTimeout).
	BatchTimeout time.Duration
	// Limiter is the per-client admission control on /v1/batch (nil or
	// zero-Limit admits everything).
	Limiter *Limiter
	// Registry receives request metrics and serves /metrics (may be nil;
	// pass the same registry given to New so cluster_* metrics co-publish).
	Registry *obs.Registry
	// Logger receives one line per request (may be nil).
	Logger *slog.Logger
	// Ready gates /readyz for drains (nil reads as always ready).
	Ready *obs.Flag
}

// A RouterSource yields the router the front door should serve a request
// with. A *Router is its own (fixed) source; a *Reloader swaps routers
// live on spec reloads. The handler resolves the source per request, so a
// reload needs no handler or listener restart.
type RouterSource interface {
	Router() *Router
}

// NewHandler mounts the router's front door — wire-compatible with a
// single tabledserver, so tabled.Client and tabledload point at a cluster
// unchanged:
//
//	POST /v1/batch    batched ops, JSON or binary wire, routed by range
//	GET  /v1/stats    aggregated member stats (Backend "cluster")
//	GET  /v1/cluster  range map + member health + routing counters
//	GET  /metrics     Prometheus text exposition
//	GET  /healthz     liveness
//	GET  /readyz      readiness; member trouble shows as ready detail
//
// /readyz stays 200 while members are down: a router that went unready
// whenever one range was unavailable would let a load balancer blackhole
// the healthy ranges too. Unhealthy members surface in the ready body —
// "ready (1/3 nodes unhealthy: node-2 down)" — and on /v1/cluster.
func NewHandler(src RouterSource, opt HandlerOptions) http.Handler {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = tabled.DefaultMaxBatch
	}
	if opt.MaxBodyBytes == 0 {
		opt.MaxBodyBytes = tabled.DefaultMaxBodyBytes
	}
	if opt.BatchTimeout == 0 {
		opt.BatchTimeout = tabled.DefaultBatchTimeout
	}
	h := &frontDoor{src: src, opt: opt}
	mux := http.NewServeMux()
	// Pinning the current router's metrics here is safe across reloads:
	// the rate-limited counter carries no per-node labels, so every
	// reloaded router's Metrics (same registry, get-or-create) holds the
	// identical counter object.
	mux.Handle("POST /v1/batch", opt.Limiter.Middleware(nil, src.Router().m, srvkit.APIStack{
		MaxBodyBytes:   opt.MaxBodyBytes,
		RequestTimeout: opt.BatchTimeout,
		TimeoutBody:    "batch timed out",
	}.Wrap(http.HandlerFunc(h.handleBatch))))
	mux.HandleFunc("GET /v1/stats", h.handleStats)
	mux.HandleFunc("GET /v1/cluster", h.handleCluster)
	if opt.Registry != nil {
		mux.Handle("GET /metrics", opt.Registry.Handler())
	}
	srvkit.Probes{
		Ready: opt.Ready,
		Detail: func() string {
			_, detail := src.Router().health.Summary()
			return detail
		},
	}.Register(mux)
	return obs.Middleware(obs.MiddlewareConfig{
		Registry: opt.Registry,
		Logger:   opt.Logger,
		PathLabel: func(r *http.Request) string {
			switch r.URL.Path {
			case "/v1/batch", "/v1/stats", "/v1/cluster", "/metrics", "/healthz", "/readyz":
				return r.URL.Path
			}
			return "other"
		},
	}, mux)
}

type frontDoor struct {
	src RouterSource
	opt HandlerOptions
}

// routerScratch recycles the per-request body and frame buffers — the
// router re-encodes sub-batches through the tabled client's own pools, so
// this only covers the front-door decode/encode.
type routerScratch struct {
	body []byte
	ops  []tabled.Op
	out  []byte
}

var routerScratchPool = sync.Pool{New: func() any { return new(routerScratch) }}

func isBinaryContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == tabled.ContentTypeBinary
}

// handleBatch decodes one batch (JSON or binary, mirroring tabledserver's
// negotiation), routes it through the cluster, and answers in the same
// encoding. Per-op failures come back inline under a 200; only a batch in
// which EVERY op failed and at least one failure was member unavailability
// collapses to a typed 503, so a blanket outage looks like one retryable
// error instead of a success full of failures.
func (h *frontDoor) handleBatch(w http.ResponseWriter, r *http.Request) {
	scr := routerScratchPool.Get().(*routerScratch)
	defer routerScratchPool.Put(scr)
	binary := isBinaryContentType(r.Header.Get("Content-Type"))
	var err error
	scr.body, err = readAll(scr.body[:0], r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var ops []tabled.Op
	if binary {
		ops, err = tabled.DecodeBatchRequest(scr.body, scr.ops, h.opt.MaxBatch)
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		scr.ops = ops
	} else {
		var req tabled.BatchRequest
		dec := json.NewDecoder(bytes.NewReader(scr.body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		ops = req.Ops
	}
	if len(ops) == 0 {
		http.Error(w, "bad request: empty batch", http.StatusBadRequest)
		return
	}
	if len(ops) > h.opt.MaxBatch {
		http.Error(w, fmt.Sprintf("bad request: batch of %d exceeds limit %d",
			len(ops), h.opt.MaxBatch), http.StatusBadRequest)
		return
	}
	results := h.src.Router().Execute(r.Context(), ops, r.Header.Get(tabled.IdempotencyKeyHeader))
	if AllUnavailable(results) {
		// The whole batch failed on unavailable members (e.g. a write to a
		// degraded range, or every owner down): a typed, retryable refusal.
		// A fenced owner answers 409, not 503 — retrying won't help until
		// the stale primary is reseeded or the spec amended, and the
		// distinct status keeps clients from hammering a conflict.
		status := http.StatusServiceUnavailable
		if AnyFenced(results) {
			status = http.StatusConflict
		}
		http.Error(w, firstError(results), status)
		return
	}
	if binary {
		scr.out, err = tabled.AppendBatchResponse(scr.out[:0], results)
		if err != nil {
			http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", tabled.ContentTypeBinary)
		_, _ = w.Write(scr.out)
		return
	}
	body, err := json.Marshal(&tabled.BatchResponse{Results: results})
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// readAll reads r into buf (reusing its capacity); the byte cap is already
// imposed by the MaxBytesReader that APIStack wrapped around r.
func readAll(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func firstError(results []tabled.OpResult) string {
	for i := range results {
		if IsUnavailable(results[i].Err) {
			return results[i].Err
		}
	}
	return results[0].Err
}

func (h *frontDoor) handleStats(w http.ResponseWriter, r *http.Request) {
	reply, err := h.src.Router().ClusterStats(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func (h *frontDoor) handleCluster(w http.ResponseWriter, r *http.Request) {
	reply := h.src.Router().Status()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}
