package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A State is a cluster member's last observed health.
type State int32

const (
	// StateHealthy: /readyz answered 200 — reads and writes route there.
	StateHealthy State = iota
	// StateDegraded: /readyz answered "degraded: …" (the member's WAL
	// failed and it is read-only) — reads still route there, writes for
	// its range fail fast at the router.
	StateDegraded
	// StateDown: /readyz unreachable, draining, or otherwise not serving —
	// nothing routes there; its range is unavailable.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// DefaultHealthInterval is how often the checker sweeps the members.
const DefaultHealthInterval = 500 * time.Millisecond

// DefaultHealthTimeout bounds one probe request.
const DefaultHealthTimeout = 2 * time.Second

// A Checker actively polls every member's /readyz and publishes a State
// per node for the router's routing decisions. States start Healthy
// (optimistic, so a router booted before its checker's first sweep does
// not refuse traffic); call CheckNow once at boot for an immediate
// baseline.
type Checker struct {
	spec     *Spec
	interval time.Duration
	timeout  time.Duration
	httpc    *http.Client
	logger   *slog.Logger
	m        *Metrics
	states   []atomic.Int32
}

// CheckerOptions configures NewChecker; zero values select defaults.
type CheckerOptions struct {
	// Interval between sweeps (0 → DefaultHealthInterval).
	Interval time.Duration
	// Timeout per probe request (0 → DefaultHealthTimeout).
	Timeout time.Duration
	// HTTPClient issues the probes (nil → http.DefaultClient).
	HTTPClient *http.Client
	// Logger receives one line per state transition (may be nil).
	Logger *slog.Logger
	// Metrics receives per-node up/degraded gauges (may be nil).
	Metrics *Metrics
}

// NewChecker builds a checker over the spec's members.
func NewChecker(spec *Spec, opt CheckerOptions) *Checker {
	if opt.Interval <= 0 {
		opt.Interval = DefaultHealthInterval
	}
	if opt.Timeout <= 0 {
		opt.Timeout = DefaultHealthTimeout
	}
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	return &Checker{
		spec:     spec,
		interval: opt.Interval,
		timeout:  opt.Timeout,
		httpc:    opt.HTTPClient,
		logger:   opt.Logger,
		m:        opt.Metrics,
		states:   make([]atomic.Int32, len(spec.Nodes)),
	}
}

// State returns node n's last observed state.
func (c *Checker) State(n int) State { return State(c.states[n].Load()) }

// FirstHealthy returns the lowest-index healthy node, falling back to the
// lowest degraded one (it can still answer reads/dims), then to 0 — the
// anycast target must always exist even when everything is down.
func (c *Checker) FirstHealthy() int {
	deg := -1
	for i := range c.states {
		switch c.State(i) {
		case StateHealthy:
			return i
		case StateDegraded:
			if deg < 0 {
				deg = i
			}
		}
	}
	if deg >= 0 {
		return deg
	}
	return 0
}

// Summary reports whether every member is healthy and, when not, a short
// detail naming the unhealthy ones, e.g. "1/3 nodes unhealthy: node-1 down".
func (c *Checker) Summary() (allHealthy bool, detail string) {
	var bad []string
	for i := range c.states {
		if st := c.State(i); st != StateHealthy {
			bad = append(bad, c.spec.Nodes[i].Name+" "+st.String())
		}
	}
	if len(bad) == 0 {
		return true, ""
	}
	return false, fmt.Sprintf("%d/%d nodes unhealthy: %s", len(bad), len(c.spec.Nodes), strings.Join(bad, ", "))
}

// CheckNow probes every member once, concurrently, and publishes the
// observed states before returning.
func (c *Checker) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range c.spec.Nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := c.probe(ctx, i)
			old := State(c.states[i].Swap(int32(st)))
			if old != st {
				if c.logger != nil {
					c.logger.Info("cluster: node state change",
						"node", c.spec.Nodes[i].Name, "from", old.String(), "to", st.String())
				}
			}
			c.m.nodeState(i, st)
		}(i)
	}
	wg.Wait()
	c.m.healthSweep()
}

// probe classifies one member from its /readyz:
//
//	200                         → healthy
//	503 with a "degraded:" body → degraded (read-only member)
//	anything else               → down (unreachable, draining, …)
func (c *Checker) probe(ctx context.Context, i int) State {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.spec.Nodes[i].Base+"/readyz", nil)
	if err != nil {
		return StateDown
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return StateDown
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	switch {
	case resp.StatusCode == http.StatusOK:
		return StateHealthy
	case resp.StatusCode == http.StatusServiceUnavailable &&
		strings.HasPrefix(strings.TrimSpace(string(body)), "degraded"):
		return StateDegraded
	default:
		return StateDown
	}
}

// Run sweeps the members every interval until ctx ends — wire it as a
// srvkit.Lifecycle background task.
func (c *Checker) Run(ctx context.Context) {
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.CheckNow(ctx)
		}
	}
}
