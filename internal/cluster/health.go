package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A State is a cluster member's last observed health.
type State int32

const (
	// StateHealthy: /readyz answered 200 — reads and writes route there.
	StateHealthy State = iota
	// StateDegraded: /readyz answered "degraded: …" (the member's WAL
	// failed and it is read-only) — reads still route there, writes for
	// its range fail fast at the router.
	StateDegraded
	// StateDown: /readyz unreachable, draining, or otherwise not serving —
	// nothing routes there; its range is unavailable.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// DefaultHealthInterval is how often the checker sweeps the members.
const DefaultHealthInterval = 500 * time.Millisecond

// DefaultHealthTimeout bounds one probe request.
const DefaultHealthTimeout = 2 * time.Second

// A Checker actively polls every member's /readyz and publishes a State
// per node for the router's routing decisions. States start Healthy
// (optimistic, so a router booted before its checker's first sweep does
// not refuse traffic); call CheckNow once at boot for an immediate
// baseline.
//
// Nodes with a replica get two extra probes per sweep: the replica's
// /readyz (a live follower is read-only, so it normally reads degraded)
// and its /v1/repl/status, whose role field is the promotion signal — a
// follower that answered role "primary" takes writes. Replica states
// start Down, not Healthy: a replica is a fallback, and falling back to
// an unverified one is worse than failing fast.
type Checker struct {
	spec     *Spec
	interval time.Duration
	timeout  time.Duration
	httpc    *http.Client
	logger   *slog.Logger
	m        *Metrics
	states   []atomic.Int32
	// Replica observations, indexed like states; unused (Down/false)
	// where the node has no replica.
	repStates   []atomic.Int32
	repPromoted []atomic.Bool
	// Epoch observations (replicated nodes only). priEpochs/repEpochs
	// store epoch+1 so zero means "never observed"; maxEpochs latches the
	// highest raw epoch ever seen from EITHER member of the pair and never
	// decreases — that monotonicity is the fencing invariant: once a
	// promotion at epoch E is observed, a member reporting < E is a stale
	// restarted primary and PrimaryFenced keeps writes away from it even
	// though its /readyz answers healthy.
	priEpochs []atomic.Uint64
	repEpochs []atomic.Uint64
	maxEpochs []atomic.Uint64
	repLags   []atomic.Uint64
}

// CheckerOptions configures NewChecker; zero values select defaults.
type CheckerOptions struct {
	// Interval between sweeps (0 → DefaultHealthInterval).
	Interval time.Duration
	// Timeout per probe request (0 → DefaultHealthTimeout).
	Timeout time.Duration
	// HTTPClient issues the probes (nil → http.DefaultClient).
	HTTPClient *http.Client
	// Logger receives one line per state transition (may be nil).
	Logger *slog.Logger
	// Metrics receives per-node up/degraded gauges (may be nil).
	Metrics *Metrics
}

// NewChecker builds a checker over the spec's members.
func NewChecker(spec *Spec, opt CheckerOptions) *Checker {
	if opt.Interval <= 0 {
		opt.Interval = DefaultHealthInterval
	}
	if opt.Timeout <= 0 {
		opt.Timeout = DefaultHealthTimeout
	}
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	c := &Checker{
		spec:        spec,
		interval:    opt.Interval,
		timeout:     opt.Timeout,
		httpc:       opt.HTTPClient,
		logger:      opt.Logger,
		m:           opt.Metrics,
		states:      make([]atomic.Int32, len(spec.Nodes)),
		repStates:   make([]atomic.Int32, len(spec.Nodes)),
		repPromoted: make([]atomic.Bool, len(spec.Nodes)),
		priEpochs:   make([]atomic.Uint64, len(spec.Nodes)),
		repEpochs:   make([]atomic.Uint64, len(spec.Nodes)),
		maxEpochs:   make([]atomic.Uint64, len(spec.Nodes)),
		repLags:     make([]atomic.Uint64, len(spec.Nodes)),
	}
	for i := range c.repStates {
		c.repStates[i].Store(int32(StateDown))
	}
	return c
}

// State returns node n's last observed state.
func (c *Checker) State(n int) State { return State(c.states[n].Load()) }

// ReplicaState returns node n's replica's last observed state (Down when
// the node has no replica).
func (c *Checker) ReplicaState(n int) State { return State(c.repStates[n].Load()) }

// ReplicaPromoted reports whether node n's replica last identified itself
// as a primary on /v1/repl/status — the signal that writes may fail over
// to it.
func (c *Checker) ReplicaPromoted(n int) bool { return c.repPromoted[n].Load() }

// Epoch returns node n's primary's last observed replication epoch (ok
// false when its /v1/repl/status has never answered).
func (c *Checker) Epoch(n int) (epoch uint64, ok bool) {
	e := c.priEpochs[n].Load()
	return e - 1, e > 0
}

// ReplicaEpoch returns node n's replica's last observed epoch (ok false
// when never observed).
func (c *Checker) ReplicaEpoch(n int) (epoch uint64, ok bool) {
	e := c.repEpochs[n].Load()
	return e - 1, e > 0
}

// MaxEpoch returns the highest epoch ever observed from node n's pair.
func (c *Checker) MaxEpoch(n int) uint64 { return c.maxEpochs[n].Load() }

// ReplicaLag returns node n's replica's last reported record lag behind
// its source's committed horizon.
func (c *Checker) ReplicaLag(n int) uint64 { return c.repLags[n].Load() }

// PrimaryFenced reports whether node n's primary is fenced: its epoch has
// been observed, and a higher epoch exists somewhere in the pair — i.e. a
// promotion happened that this primary predates. A fenced primary never
// receives writes from the router, however healthy its /readyz looks; the
// promoted replica owns the range until the spec (or the stale node) is
// fixed.
func (c *Checker) PrimaryFenced(n int) bool {
	e := c.priEpochs[n].Load()
	return e > 0 && e-1 < c.maxEpochs[n].Load()
}

// latchMax raises a to at least v, monotonically.
func latchMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// FirstHealthy returns the lowest-index healthy node, falling back to the
// lowest degraded one (it can still answer reads/dims), then to 0 — the
// anycast target must always exist even when everything is down.
func (c *Checker) FirstHealthy() int {
	deg := -1
	for i := range c.states {
		switch c.State(i) {
		case StateHealthy:
			return i
		case StateDegraded:
			if deg < 0 {
				deg = i
			}
		}
	}
	if deg >= 0 {
		return deg
	}
	return 0
}

// Summary reports whether every member is healthy and, when not, a short
// detail naming the unhealthy ones, e.g. "1/3 nodes unhealthy: node-1
// down". A member whose replica covers for it says so — "node-1 down
// (replica promoted)" reads very differently from a dead range.
func (c *Checker) Summary() (allHealthy bool, detail string) {
	var bad []string
	for i := range c.states {
		st := c.State(i)
		if st == StateHealthy {
			if c.PrimaryFenced(i) {
				// Healthy by probe, but a newer epoch exists: the node is
				// a stale ex-primary the router refuses writes to.
				bad = append(bad, fmt.Sprintf("%s fenced (epoch %d < %d)",
					c.spec.Nodes[i].Name, c.priEpochs[i].Load()-1, c.MaxEpoch(i)))
			}
			continue
		}
		entry := c.spec.Nodes[i].Name + " " + st.String()
		if c.spec.Nodes[i].Replica != "" {
			switch rst := c.ReplicaState(i); {
			case c.ReplicaPromoted(i) && rst != StateDown:
				entry += " (replica promoted)"
			case rst != StateDown:
				entry += " (replica serving reads)"
			default:
				entry += " (replica down)"
			}
		}
		bad = append(bad, entry)
	}
	if len(bad) == 0 {
		return true, ""
	}
	return false, fmt.Sprintf("%d/%d nodes unhealthy: %s", len(bad), len(c.spec.Nodes), strings.Join(bad, ", "))
}

// CheckNow probes every member (and every configured replica) once,
// concurrently, and publishes the observed states before returning.
func (c *Checker) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range c.spec.Nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := c.probe(ctx, c.spec.Nodes[i].Base)
			old := State(c.states[i].Swap(int32(st)))
			if old != st && c.logger != nil {
				c.logger.Info("cluster: node state change",
					"node", c.spec.Nodes[i].Name, "from", old.String(), "to", st.String())
			}
			c.m.nodeState(i, st)
			// Epoch observation (replicated ranges only): the primary's
			// epoch vs. the pair's latched maximum is the fencing input.
			if c.spec.Nodes[i].Replica == "" || st == StateDown {
				return
			}
			if rs, ok := c.probeStatus(ctx, c.spec.Nodes[i].Base); ok {
				wasFenced := c.PrimaryFenced(i)
				c.priEpochs[i].Store(rs.Epoch + 1)
				latchMax(&c.maxEpochs[i], rs.Epoch)
				fenced := c.PrimaryFenced(i)
				if fenced != wasFenced && c.logger != nil {
					c.logger.Warn("cluster: primary fencing change",
						"node", c.spec.Nodes[i].Name, "fenced", fenced,
						"epoch", rs.Epoch, "max_epoch", c.MaxEpoch(i))
				}
				c.m.nodeEpoch(i, rs.Epoch, fenced)
			}
		}(i)
		if c.spec.Nodes[i].Replica == "" {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := c.spec.Nodes[i].Replica
			st := c.probe(ctx, rep)
			promoted := false
			if st != StateDown {
				if rs, ok := c.probeStatus(ctx, rep); ok {
					promoted = rs.Role == "primary"
					c.repEpochs[i].Store(rs.Epoch + 1)
					c.repLags[i].Store(rs.Lag)
					latchMax(&c.maxEpochs[i], rs.Epoch)
					c.m.replicaEpoch(i, rs.Epoch, rs.Lag)
				}
			}
			old := State(c.repStates[i].Swap(int32(st)))
			oldProm := c.repPromoted[i].Swap(promoted)
			if (old != st || oldProm != promoted) && c.logger != nil {
				c.logger.Info("cluster: replica state change",
					"node", c.spec.Nodes[i].Name, "from", old.String(), "to", st.String(),
					"promoted", promoted)
			}
			c.m.replicaState(i, st, promoted)
		}(i)
	}
	wg.Wait()
	c.m.healthSweep()
}

// probe classifies one server from its /readyz:
//
//	200                         → healthy
//	503 with a "degraded:" body → degraded (read-only: a tripped WAL
//	                              volume, or a live follower)
//	anything else               → down (unreachable, draining, …)
func (c *Checker) probe(ctx context.Context, base string) State {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return StateDown
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return StateDown
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	switch {
	case resp.StatusCode == http.StatusOK:
		return StateHealthy
	case resp.StatusCode == http.StatusServiceUnavailable &&
		strings.HasPrefix(strings.TrimSpace(string(body)), "degraded"):
		return StateDegraded
	default:
		return StateDown
	}
}

// replProbe is the slice of /v1/repl/status the checker consumes.
type replProbe struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	Lag   uint64 `json:"lag"`
}

// probeStatus reads a member's /v1/repl/status (ok false on any failure —
// never guess a promotion or an epoch).
func (c *Checker) probeStatus(ctx context.Context, base string) (replProbe, bool) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var st replProbe
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/repl/status", nil)
	if err != nil {
		return st, false
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}

// Run sweeps the members until ctx ends — wire it as a srvkit.Lifecycle
// background task. Each gap is jittered over [interval/2, 3·interval/2):
// N routers probing the same members would otherwise lock step (they all
// start on deploy, and a slow member stretches every router's sweep by
// the same timeout), hammering each /readyz in synchronized bursts.
// Jitter desynchronizes them within a few sweeps; the expected gap stays
// one interval.
func (c *Checker) Run(ctx context.Context) {
	t := time.NewTimer(c.jitteredInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.CheckNow(ctx)
			t.Reset(c.jitteredInterval())
		}
	}
}

// jitteredInterval draws one sweep gap: interval/2 plus up to one
// interval, uniformly.
func (c *Checker) jitteredInterval() time.Duration {
	return c.interval/2 + time.Duration(rand.Int63n(int64(c.interval)))
}
