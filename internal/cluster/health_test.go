package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fakeMember is an httptest server whose /readyz answer is switchable.
type fakeMember struct {
	srv  *httptest.Server
	mode atomic.Value // "healthy" | "degraded" | "down"
}

func newFakeMember(t *testing.T) *fakeMember {
	t.Helper()
	m := &fakeMember{}
	m.mode.Store("healthy")
	m.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		switch m.mode.Load().(string) {
		case "healthy":
			w.Write([]byte("ready\n"))
		case "degraded":
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("degraded: read-only (WAL volume failed)\n"))
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	t.Cleanup(m.srv.Close)
	return m
}

func memberSpec(members ...*fakeMember) *Spec {
	s := &Spec{Mapping: "diagonal"}
	lo := int64(1)
	for i, m := range members {
		s.Nodes = append(s.Nodes, NodeSpec{
			Name: "node-" + string(rune('0'+i)), Base: m.srv.URL, Lo: lo, Hi: lo + 100,
		})
		lo += 100
	}
	return s
}

func TestCheckerStates(t *testing.T) {
	a, b, c := newFakeMember(t), newFakeMember(t), newFakeMember(t)
	spec := memberSpec(a, b, c)
	ck := NewChecker(spec, CheckerOptions{})

	// Optimistic start: everything reads healthy before the first sweep.
	for i := 0; i < 3; i++ {
		if st := ck.State(i); st != StateHealthy {
			t.Fatalf("initial State(%d) = %v", i, st)
		}
	}

	b.mode.Store("degraded")
	c.mode.Store("down")
	ck.CheckNow(context.Background())
	if ck.State(0) != StateHealthy || ck.State(1) != StateDegraded || ck.State(2) != StateDown {
		t.Fatalf("states = %v %v %v", ck.State(0), ck.State(1), ck.State(2))
	}
	ok, detail := ck.Summary()
	if ok || detail != "2/3 nodes unhealthy: node-1 degraded, node-2 down" {
		t.Fatalf("Summary = %v %q", ok, detail)
	}
	if got := ck.FirstHealthy(); got != 0 {
		t.Fatalf("FirstHealthy = %d", got)
	}

	// An unreachable server (connection refused) is down too.
	a.srv.Close()
	ck.CheckNow(context.Background())
	if ck.State(0) != StateDown {
		t.Fatalf("closed member State = %v, want down", ck.State(0))
	}
	// With no healthy member left the degraded one still anycasts reads.
	if got := ck.FirstHealthy(); got != 1 {
		t.Fatalf("FirstHealthy = %d, want the degraded member", got)
	}

	// Recovery flips back.
	b.mode.Store("healthy")
	c.mode.Store("healthy")
	ck.CheckNow(context.Background())
	if ck.State(1) != StateHealthy || ck.State(2) != StateHealthy {
		t.Fatalf("recovered states = %v %v", ck.State(1), ck.State(2))
	}
	if ok, _ := ck.Summary(); ok {
		t.Fatal("Summary healthy while node-0 is down")
	}
}

func TestCheckerAllDownFirstHealthyIsZero(t *testing.T) {
	a := newFakeMember(t)
	spec := memberSpec(a)
	ck := NewChecker(spec, CheckerOptions{})
	a.srv.Close()
	ck.CheckNow(context.Background())
	if got := ck.FirstHealthy(); got != 0 {
		t.Fatalf("FirstHealthy with everything down = %d, want 0", got)
	}
	ok, detail := ck.Summary()
	if ok || detail == "" {
		t.Fatalf("Summary = %v %q", ok, detail)
	}
}
