package cluster

import (
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// limiterMaxClients bounds the per-client bookkeeping map; past it, Allow
// sweeps entries idle for two windows before admitting new clients. A
// router fronting millions of users sees far fewer distinct client IPs per
// window than this at any sane limit.
const limiterMaxClients = 65536

// A Limiter is the router front door's per-client admission control: a
// sliding-window counter in the two-bucket approximation (current window
// count plus the previous window's, weighted by overlap — the classic
// trade of one timestamped deque per client for two integers). A client
// is admitted while its estimated rate over the trailing window stays
// below Limit.
//
// The zero Limiter admits everything (Limit 0 disables).
type Limiter struct {
	// Limit is the admitted requests per Window per client (≤ 0 = off).
	Limit int
	// Window is the sliding window length (0 → 1s).
	Window time.Duration
	// Now is the clock seam for tests (nil → time.Now).
	Now func() time.Time

	mu sync.Mutex
	m  map[string]*window
}

type window struct {
	start     time.Time // start of the current bucket
	cur, prev int
}

func (l *Limiter) window() time.Duration {
	if l.Window > 0 {
		return l.Window
	}
	return time.Second
}

func (l *Limiter) now() time.Time {
	if l.Now != nil {
		return l.Now()
	}
	return time.Now()
}

// Allow records one request for key and reports whether it is admitted.
func (l *Limiter) Allow(key string) bool {
	ok, _ := l.AllowHint(key)
	return ok
}

// AllowHint is Allow plus, on refusal, the earliest wait after which a
// retry can plausibly be admitted — the Retry-After value the middleware
// sends, computed from the same two-bucket state that refused: the
// estimate decays as the previous bucket slides out of the window, so the
// hint is when it first dips below the limit (never less than a
// millisecond, and at most a full window, after which the current bucket
// itself has rotated out).
func (l *Limiter) AllowHint(key string) (ok bool, after time.Duration) {
	if l.Limit <= 0 {
		return true, 0
	}
	w := l.window()
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[string]*window)
	}
	e := l.m[key]
	if e == nil {
		if len(l.m) >= limiterMaxClients {
			l.sweepLocked(now, w)
		}
		e = &window{start: now}
		l.m[key] = e
	}
	// Rotate buckets forward to the window containing now.
	switch elapsed := now.Sub(e.start); {
	case elapsed >= 2*w:
		e.start, e.cur, e.prev = now, 0, 0
	case elapsed >= w:
		e.start, e.prev, e.cur = e.start.Add(w), e.cur, 0
	}
	// Weighted estimate over the trailing window: the previous bucket
	// counts by how much of it the window still covers.
	frac := 1 - float64(now.Sub(e.start))/float64(w)
	if frac < 0 {
		frac = 0
	}
	est := float64(e.cur) + frac*float64(e.prev)
	if est >= float64(l.Limit) {
		return false, l.hintLocked(e, now, w)
	}
	e.cur++
	return true, 0
}

// hintLocked computes when the sliding estimate first admits this client
// again. With cur already at or past the limit, only the window rotation
// helps — wait until the current bucket ends. Otherwise the surplus is
// prev's weighted contribution, which decays linearly: it drops below the
// headroom (Limit − cur) once the window has slid far enough, solvable in
// closed form.
func (l *Limiter) hintLocked(e *window, now time.Time, w time.Duration) time.Duration {
	windowEnd := e.start.Add(w).Sub(now)
	if windowEnd < time.Millisecond {
		windowEnd = time.Millisecond
	}
	headroom := float64(l.Limit - e.cur)
	if headroom <= 0 || e.prev <= 0 {
		return windowEnd
	}
	// Need frac·prev < headroom, frac = 1 − (now+after − start)/w:
	// after > w·(1 − headroom/prev) − (now − start).
	after := time.Duration((1 - headroom/float64(e.prev)) * float64(w))
	after -= now.Sub(e.start)
	if after < time.Millisecond {
		after = time.Millisecond
	}
	if after > windowEnd {
		after = windowEnd
	}
	return after
}

// sweepLocked drops clients idle for at least two windows.
func (l *Limiter) sweepLocked(now time.Time, w time.Duration) {
	for k, e := range l.m {
		if now.Sub(e.start) >= 2*w {
			delete(l.m, k)
		}
	}
}

// ClientKey is the default admission key: the client IP (RemoteAddr
// without the port). Deployments behind a trusted proxy would swap in a
// keyFn reading the forwarded address instead.
func ClientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Middleware wraps next with admission control: a request over the limit
// answers 429 with a Retry-After hint and never reaches next. keyFn nil
// uses ClientKey; a nil or disabled limiter passes everything through.
func (l *Limiter) Middleware(keyFn func(*http.Request) string, m *Metrics, next http.Handler) http.Handler {
	if l == nil || l.Limit <= 0 {
		return next
	}
	if keyFn == nil {
		keyFn = ClientKey
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ok, after := l.AllowHint(keyFn(r)); !ok {
			m.rateLimited()
			// Retry-After is whole seconds on the wire; round up so the
			// hinted retry lands after admission reopens, not just before.
			secs := int64((after + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			http.Error(w, "cluster: rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}
