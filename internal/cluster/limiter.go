package cluster

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// limiterMaxClients bounds the per-client bookkeeping map; past it, Allow
// sweeps entries idle for two windows before admitting new clients. A
// router fronting millions of users sees far fewer distinct client IPs per
// window than this at any sane limit.
const limiterMaxClients = 65536

// A Limiter is the router front door's per-client admission control: a
// sliding-window counter in the two-bucket approximation (current window
// count plus the previous window's, weighted by overlap — the classic
// trade of one timestamped deque per client for two integers). A client
// is admitted while its estimated rate over the trailing window stays
// below Limit.
//
// The zero Limiter admits everything (Limit 0 disables).
type Limiter struct {
	// Limit is the admitted requests per Window per client (≤ 0 = off).
	Limit int
	// Window is the sliding window length (0 → 1s).
	Window time.Duration
	// Now is the clock seam for tests (nil → time.Now).
	Now func() time.Time

	mu sync.Mutex
	m  map[string]*window
}

type window struct {
	start     time.Time // start of the current bucket
	cur, prev int
}

func (l *Limiter) window() time.Duration {
	if l.Window > 0 {
		return l.Window
	}
	return time.Second
}

func (l *Limiter) now() time.Time {
	if l.Now != nil {
		return l.Now()
	}
	return time.Now()
}

// Allow records one request for key and reports whether it is admitted.
func (l *Limiter) Allow(key string) bool {
	if l.Limit <= 0 {
		return true
	}
	w := l.window()
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[string]*window)
	}
	e := l.m[key]
	if e == nil {
		if len(l.m) >= limiterMaxClients {
			l.sweepLocked(now, w)
		}
		e = &window{start: now}
		l.m[key] = e
	}
	// Rotate buckets forward to the window containing now.
	switch elapsed := now.Sub(e.start); {
	case elapsed >= 2*w:
		e.start, e.cur, e.prev = now, 0, 0
	case elapsed >= w:
		e.start, e.prev, e.cur = e.start.Add(w), e.cur, 0
	}
	// Weighted estimate over the trailing window: the previous bucket
	// counts by how much of it the window still covers.
	frac := 1 - float64(now.Sub(e.start))/float64(w)
	if frac < 0 {
		frac = 0
	}
	est := float64(e.cur) + frac*float64(e.prev)
	if est >= float64(l.Limit) {
		return false
	}
	e.cur++
	return true
}

// sweepLocked drops clients idle for at least two windows.
func (l *Limiter) sweepLocked(now time.Time, w time.Duration) {
	for k, e := range l.m {
		if now.Sub(e.start) >= 2*w {
			delete(l.m, k)
		}
	}
}

// ClientKey is the default admission key: the client IP (RemoteAddr
// without the port). Deployments behind a trusted proxy would swap in a
// keyFn reading the forwarded address instead.
func ClientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Middleware wraps next with admission control: a request over the limit
// answers 429 with a Retry-After hint and never reaches next. keyFn nil
// uses ClientKey; a nil or disabled limiter passes everything through.
func (l *Limiter) Middleware(keyFn func(*http.Request) string, m *Metrics, next http.Handler) http.Handler {
	if l == nil || l.Limit <= 0 {
		return next
	}
	if keyFn == nil {
		keyFn = ClientKey
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !l.Allow(keyFn(r)) {
			m.rateLimited()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "cluster: rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}
