package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestLimiterWindowMath(t *testing.T) {
	now := time.Unix(1000, 0)
	l := &Limiter{Limit: 10, Window: time.Second, Now: func() time.Time { return now }}

	for i := 0; i < 10; i++ {
		if !l.Allow("c") {
			t.Fatalf("request %d refused under the limit", i)
		}
	}
	if l.Allow("c") {
		t.Fatal("11th request in one window admitted")
	}
	// Other clients are independent.
	if !l.Allow("other") {
		t.Fatal("separate client refused")
	}

	// Half a window later the previous bucket still weighs in at ~50%:
	// estimate = 0 + 0.5·10 = 5, so 5 more requests fit.
	now = now.Add(1500 * time.Millisecond)
	admitted := 0
	for i := 0; i < 10; i++ {
		if l.Allow("c") {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d half a window later, want 5", admitted)
	}

	// Two idle windows reset the client completely.
	now = now.Add(2 * time.Second)
	for i := 0; i < 10; i++ {
		if !l.Allow("c") {
			t.Fatalf("request %d refused after full reset", i)
		}
	}
}

func TestLimiterDisabled(t *testing.T) {
	var l Limiter // zero Limit = off
	for i := 0; i < 10000; i++ {
		if !l.Allow("c") {
			t.Fatal("disabled limiter refused a request")
		}
	}
}

func TestLimiterSweep(t *testing.T) {
	now := time.Unix(0, 0)
	l := &Limiter{Limit: 1, Window: time.Second, Now: func() time.Time { return now }}
	l.Allow("old")
	now = now.Add(3 * time.Second)
	l.sweepLocked(now, time.Second) // mu not needed: single goroutine
	if len(l.m) != 0 {
		t.Fatalf("idle client survived the sweep: %v", l.m)
	}
}

func TestLimiterMiddleware(t *testing.T) {
	now := time.Unix(0, 0)
	l := &Limiter{Limit: 2, Window: time.Second, Now: func() time.Time { return now }}
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h := l.Middleware(nil, nil, next)

	status := func(remote string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", nil)
		req.RemoteAddr = remote
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if status("10.0.0.1:111") != http.StatusOK || status("10.0.0.1:222") != http.StatusOK {
		t.Fatal("requests under the limit refused")
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", nil)
	req.RemoteAddr = "10.0.0.1:333" // same IP, different port: same client
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if status("10.0.0.2:111") != http.StatusOK {
		t.Fatal("unrelated client caught by another client's limit")
	}
}

func TestLimiterMiddlewareDisabledPassthrough(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusTeapot) })
	for _, l := range []*Limiter{nil, {Limit: 0}} {
		h := l.Middleware(nil, nil, next)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/", nil))
		if rec.Code != http.StatusTeapot {
			t.Fatalf("disabled limiter intercepted: %d", rec.Code)
		}
	}
}
