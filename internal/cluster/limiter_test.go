package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestLimiterWindowMath(t *testing.T) {
	now := time.Unix(1000, 0)
	l := &Limiter{Limit: 10, Window: time.Second, Now: func() time.Time { return now }}

	for i := 0; i < 10; i++ {
		if !l.Allow("c") {
			t.Fatalf("request %d refused under the limit", i)
		}
	}
	if l.Allow("c") {
		t.Fatal("11th request in one window admitted")
	}
	// Other clients are independent.
	if !l.Allow("other") {
		t.Fatal("separate client refused")
	}

	// Half a window later the previous bucket still weighs in at ~50%:
	// estimate = 0 + 0.5·10 = 5, so 5 more requests fit.
	now = now.Add(1500 * time.Millisecond)
	admitted := 0
	for i := 0; i < 10; i++ {
		if l.Allow("c") {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d half a window later, want 5", admitted)
	}

	// Two idle windows reset the client completely.
	now = now.Add(2 * time.Second)
	for i := 0; i < 10; i++ {
		if !l.Allow("c") {
			t.Fatalf("request %d refused after full reset", i)
		}
	}
}

// TestLimiterHint pins the closed-form Retry-After math: the hint is the
// smallest wait after which the sliding estimate dips below the limit.
func TestLimiterHint(t *testing.T) {
	now := time.Unix(2000, 0)
	l := &Limiter{Limit: 5, Window: time.Second, Now: func() time.Time { return now }}
	for i := 0; i < 5; i++ {
		if ok, _ := l.AllowHint("c"); !ok {
			t.Fatalf("fill request %d refused", i)
		}
	}
	// Current bucket saturated: only the rotation helps, hint = window end.
	ok, after := l.AllowHint("c")
	if ok || after != time.Second {
		t.Fatalf("saturated hint = %v, %v; want refused with the full window", ok, after)
	}
	// Waiting less than the hint must not reopen admission.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.AllowHint("c"); ok {
		t.Fatal("admitted before the hinted wait elapsed")
	}

	// Decay case: 100ms into the next window the previous bucket weighs
	// 0.9·5 = 4.5; one admit brings cur to 1, the next needs frac·5 < 4,
	// i.e. ~100ms more of decay. The hint must land there, not at the
	// window end and not at the 1ms floor.
	now = time.Unix(2000, 0).Add(1100 * time.Millisecond)
	if ok, _ := l.AllowHint("c"); !ok {
		t.Fatal("decayed estimate 4.5 refused under limit 5")
	}
	ok, after = l.AllowHint("c")
	if ok || after < 95*time.Millisecond || after > 100*time.Millisecond {
		t.Fatalf("decay hint = %v, %v; want refused with ~100ms", ok, after)
	}
	now = now.Add(after - time.Millisecond)
	if ok, _ := l.AllowHint("c"); ok {
		t.Fatal("admitted 1ms before the decay hint")
	}
	now = now.Add(2 * time.Millisecond)
	if ok, _ := l.AllowHint("c"); !ok {
		t.Fatal("hinted wait did not reopen admission")
	}
}

func TestLimiterDisabled(t *testing.T) {
	var l Limiter // zero Limit = off
	for i := 0; i < 10000; i++ {
		if !l.Allow("c") {
			t.Fatal("disabled limiter refused a request")
		}
	}
}

func TestLimiterSweep(t *testing.T) {
	now := time.Unix(0, 0)
	l := &Limiter{Limit: 1, Window: time.Second, Now: func() time.Time { return now }}
	l.Allow("old")
	now = now.Add(3 * time.Second)
	l.sweepLocked(now, time.Second) // mu not needed: single goroutine
	if len(l.m) != 0 {
		t.Fatalf("idle client survived the sweep: %v", l.m)
	}
}

func TestLimiterMiddleware(t *testing.T) {
	now := time.Unix(0, 0)
	l := &Limiter{Limit: 2, Window: time.Second, Now: func() time.Time { return now }}
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h := l.Middleware(nil, nil, next)

	status := func(remote string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", nil)
		req.RemoteAddr = remote
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if status("10.0.0.1:111") != http.StatusOK || status("10.0.0.1:222") != http.StatusOK {
		t.Fatal("requests under the limit refused")
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", nil)
	req.RemoteAddr = "10.0.0.1:333" // same IP, different port: same client
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if status("10.0.0.2:111") != http.StatusOK {
		t.Fatal("unrelated client caught by another client's limit")
	}
}

func TestLimiterMiddlewareDisabledPassthrough(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusTeapot) })
	for _, l := range []*Limiter{nil, {Limit: 0}} {
		h := l.Middleware(nil, nil, next)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/", nil))
		if rec.Code != http.StatusTeapot {
			t.Fatalf("disabled limiter intercepted: %d", rec.Code)
		}
	}
}
