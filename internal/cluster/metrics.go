package cluster

import (
	"time"

	"pairfn/internal/obs"
)

// Metrics is the router instrumentation bundle, registered under
// cluster_*. A nil *Metrics records nothing, so every component takes one
// unconditionally.
type Metrics struct {
	nodeOps    []*obs.Counter
	nodeErrs   []*obs.Counter
	nodeDur    []*obs.Histogram
	nodeUpG    []*obs.Gauge
	nodeDegG   []*obs.Gauge
	repUpG     []*obs.Gauge
	repPromG   []*obs.Gauge
	nodeEpochG []*obs.Gauge
	nodeFenceG []*obs.Gauge
	repEpochG  []*obs.Gauge
	repLagG    []*obs.Gauge
	failovers  *obs.Counter
	fenced     *obs.Counter
	repReads   *obs.Counter
	sweeps     *obs.Counter
	limited    *obs.Counter
	unroutable *obs.Counter
}

// NewMetrics registers the cluster metric families on reg (nil reg → nil
// Metrics) for the spec's members.
func NewMetrics(reg *obs.Registry, spec *Spec) *Metrics {
	if reg == nil {
		return nil
	}
	reg.Help("cluster_node_ops_total", "Batch ops routed to each member node.")
	reg.Help("cluster_node_errors_total", "Sub-batch requests to each member that failed (transport or non-200, after retries).")
	reg.Help("cluster_node_batch_duration_seconds", "Sub-batch round-trip latency, by member.")
	reg.Help("cluster_node_up", "1 while the member's last health probe was 200-ready.")
	reg.Help("cluster_node_degraded", "1 while the member's last health probe reported read-only degradation.")
	reg.Help("cluster_replica_up", "1 while the member's replica answers probes (ready or read-only degraded).")
	reg.Help("cluster_replica_promoted", "1 while the member's replica reports role primary on /v1/repl/status.")
	reg.Help("cluster_failover_batches_total", "Sub-batches routed to a member's replica because the primary was degraded or down.")
	reg.Help("cluster_node_epoch", "The member primary's last observed replication epoch (replicated nodes only).")
	reg.Help("cluster_node_fenced", "1 while the member primary is fenced: a newer epoch was observed in its pair, so the router refuses it writes.")
	reg.Help("cluster_replica_epoch", "The member replica's last observed replication epoch.")
	reg.Help("cluster_replica_lag_records", "The member replica's last reported record lag behind its source.")
	reg.Help("cluster_fenced_batches_total", "Sub-batches (or write portions) refused because the owning primary is fenced.")
	reg.Help("cluster_replica_read_ops_total", "Read ops offloaded to a healthy member's replica (-replica-reads).")
	reg.Help("cluster_health_sweeps_total", "Completed health sweeps over all members.")
	reg.Help("cluster_rate_limited_total", "Requests refused by the per-client admission limiter.")
	reg.Help("cluster_unroutable_ops_total", "Ops answered locally by the router (address outside every configured range, or unknown op kind).")
	m := &Metrics{
		failovers:  reg.Counter("cluster_failover_batches_total"),
		fenced:     reg.Counter("cluster_fenced_batches_total"),
		repReads:   reg.Counter("cluster_replica_read_ops_total"),
		sweeps:     reg.Counter("cluster_health_sweeps_total"),
		limited:    reg.Counter("cluster_rate_limited_total"),
		unroutable: reg.Counter("cluster_unroutable_ops_total"),
	}
	for _, n := range spec.Nodes {
		l := obs.L("node", n.Name)
		m.nodeOps = append(m.nodeOps, reg.Counter("cluster_node_ops_total", l))
		m.nodeErrs = append(m.nodeErrs, reg.Counter("cluster_node_errors_total", l))
		m.nodeDur = append(m.nodeDur, reg.Histogram("cluster_node_batch_duration_seconds", obs.DefDurationBuckets, l))
		up := reg.Gauge("cluster_node_up", l)
		up.Set(1) // states start optimistic-healthy
		m.nodeUpG = append(m.nodeUpG, up)
		m.nodeDegG = append(m.nodeDegG, reg.Gauge("cluster_node_degraded", l))
		m.repUpG = append(m.repUpG, reg.Gauge("cluster_replica_up", l))
		m.repPromG = append(m.repPromG, reg.Gauge("cluster_replica_promoted", l))
		m.nodeEpochG = append(m.nodeEpochG, reg.Gauge("cluster_node_epoch", l))
		m.nodeFenceG = append(m.nodeFenceG, reg.Gauge("cluster_node_fenced", l))
		m.repEpochG = append(m.repEpochG, reg.Gauge("cluster_replica_epoch", l))
		m.repLagG = append(m.repLagG, reg.Gauge("cluster_replica_lag_records", l))
	}
	return m
}

// nodeBatch records one sub-batch round trip to node n.
func (m *Metrics) nodeBatch(n, ops int, d time.Duration, failed bool) {
	if m == nil {
		return
	}
	m.nodeOps[n].Add(int64(ops))
	if failed {
		m.nodeErrs[n].Inc()
	}
	m.nodeDur[n].Observe(d.Seconds())
}

// nodeState publishes node n's probed state.
func (m *Metrics) nodeState(n int, st State) {
	if m == nil {
		return
	}
	up, deg := int64(0), int64(0)
	switch st {
	case StateHealthy:
		up = 1
	case StateDegraded:
		deg = 1
	}
	m.nodeUpG[n].Set(up)
	m.nodeDegG[n].Set(deg)
}

// replicaState publishes node n's replica's probed state.
func (m *Metrics) replicaState(n int, st State, promoted bool) {
	if m == nil {
		return
	}
	up := int64(0)
	if st != StateDown {
		up = 1
	}
	m.repUpG[n].Set(up)
	prom := int64(0)
	if promoted {
		prom = 1
	}
	m.repPromG[n].Set(prom)
}

// nodeEpoch publishes node n's primary's observed epoch and fencing.
func (m *Metrics) nodeEpoch(n int, epoch uint64, fenced bool) {
	if m == nil {
		return
	}
	m.nodeEpochG[n].Set(int64(epoch))
	f := int64(0)
	if fenced {
		f = 1
	}
	m.nodeFenceG[n].Set(f)
}

// replicaEpoch publishes node n's replica's observed epoch and lag.
func (m *Metrics) replicaEpoch(n int, epoch, lag uint64) {
	if m == nil {
		return
	}
	m.repEpochG[n].Set(int64(epoch))
	m.repLagG[n].Set(int64(lag))
}

// failover records one sub-batch routed to a replica.
func (m *Metrics) failover() {
	if m != nil {
		m.failovers.Inc()
	}
}

// fencedBatch records one sub-batch (or its write portion) refused
// because the owning primary is fenced.
func (m *Metrics) fencedBatch() {
	if m != nil {
		m.fenced.Inc()
	}
}

// replicaRead records n read ops offloaded to a healthy node's replica.
func (m *Metrics) replicaRead(n int) {
	if m != nil {
		m.repReads.Add(int64(n))
	}
}

func (m *Metrics) healthSweep() {
	if m != nil {
		m.sweeps.Inc()
	}
}

func (m *Metrics) rateLimited() {
	if m != nil {
		m.limited.Inc()
	}
}

func (m *Metrics) unroutableOps(n int) {
	if m != nil {
		m.unroutable.Add(int64(n))
	}
}

// nodeSnapshot returns node n's cumulative op/error counts and latency
// histogram for /v1/cluster.
func (m *Metrics) nodeSnapshot(n int) (ops, errs int64, bounds []float64, counts []int64) {
	if m == nil {
		return 0, 0, nil, nil
	}
	bounds, counts = m.nodeDur[n].Snapshot()
	return m.nodeOps[n].Value(), m.nodeErrs[n].Value(), bounds, counts
}

// HistogramPercentile estimates the p-quantile (0 < p ≤ 1) of an
// obs.Histogram snapshot: bounds are bucket upper limits, counts the
// CUMULATIVE count at or below each bound with one trailing +Inf entry
// (exactly obs.Histogram.Snapshot's shape). Linear interpolation inside
// the selected bucket; observations in the +Inf bucket report the last
// finite bound (an underestimate, flagged by the caller if it matters).
// tabledload's -nodes summary runs this over snapshot DELTAS to report
// one load run's per-node percentiles.
func HistogramPercentile(bounds []float64, counts []int64, p float64) float64 {
	if len(counts) == 0 || len(bounds) != len(counts)-1 {
		return 0
	}
	total := counts[len(counts)-1]
	if total <= 0 {
		return 0
	}
	rank := p * float64(total)
	lo := 0.0
	for i, b := range bounds {
		c := float64(counts[i])
		if c >= rank {
			prev := 0.0
			if i > 0 {
				prev = float64(counts[i-1])
			}
			if c == prev {
				return b
			}
			return lo + (b-lo)*(rank-prev)/(c-prev)
		}
		lo = b
	}
	return bounds[len(bounds)-1]
}
