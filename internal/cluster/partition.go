package cluster

import (
	"fmt"
	"sync"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/tabled"
)

// Op routing classes. Addressed ops (set/get) go to the owner of their PF
// address; broadcast ops (resize/stats) go to every node, because every
// member keeps the full logical dimensions and per-member stats aggregate
// exactly (see Plan.MergeInto); anycast ops (dims, and set/get whose
// position the mapping rejects) go to one designated node — any member can
// answer dims, and a rejected position is forwarded so the node produces
// the per-op error bit-identically to single-node execution. Unknown op
// kinds are answered locally with the server's own error text: the binary
// node wire cannot even encode them, and forwarding would let one junk op
// poison a whole sub-batch.
const (
	classAddressed = iota
	classBroadcast
	classAnycast
	classLocal // answered by the router (address outside every range)
)

// A Partitioner lays batches out by owning node: the cluster-level twin of
// the Sharded counting-sort planner. Addresses for the whole batch are
// computed in one core.EncodeBatch call, then a stable two-pass counting
// sort scatters ops into per-node sub-batches.
type Partitioner struct {
	f  core.PF
	rm *RangeMap
}

// NewPartitioner builds a partitioner over mapping f and range map rm. The
// mapping must be the one every cluster member runs — the router encodes
// positions with it to find the owning range.
func NewPartitioner(f core.PF, rm *RangeMap) *Partitioner {
	return &Partitioner{f: f, rm: rm}
}

// A Plan is one partitioned batch: per-node sub-batches in a flat
// node-ordered layout (shard-planner idiom), plus the ops the router
// answers locally. A Plan borrows pooled scratch — call Release when the
// merge is done, and do not retain its slices past that.
type Plan struct {
	ops    []tabled.Op // the original batch (borrowed from the caller)
	nnodes int

	// localErr[i] non-nil means op i never leaves the router.
	localErr []error

	// subOps/subIdx hold every node assignment, grouped by node:
	// node n's sub-batch is subOps[starts[n]:starts[n+1]], and
	// subIdx[k] is the original batch index of subOps[k]. A broadcast op
	// appears once per node, so len(subOps) can exceed len(ops).
	subOps []tabled.Op
	subIdx []int32
	starts []int32

	// merged[i] records that out[i] has been written during the merge
	// (local errors count), so broadcast combining can tell "first reply"
	// from "combine with an earlier node's reply".
	merged []bool

	// scratch for the planning pass
	xs, ys, addrs []int64
	class         []int8
	node          []int32 // owning node for classAddressed
	count         []int32
}

var planPool = sync.Pool{New: func() any { return new(Plan) }}

// grow sizes the scratch for n ops over nnodes nodes, reusing capacity.
// assignments is the worst-case flat size (computed by the caller).
func (p *Plan) grow(n, nnodes, assignments int) {
	if cap(p.localErr) < n {
		p.localErr = make([]error, n)
		p.merged = make([]bool, n)
		p.xs = make([]int64, n)
		p.ys = make([]int64, n)
		p.addrs = make([]int64, n)
		p.class = make([]int8, n)
		p.node = make([]int32, n)
	}
	p.localErr = p.localErr[:n]
	p.merged = p.merged[:n]
	p.xs, p.ys, p.addrs = p.xs[:n], p.ys[:n], p.addrs[:n]
	p.class, p.node = p.class[:n], p.node[:n]
	clear(p.localErr)
	clear(p.merged)
	if cap(p.starts) < nnodes+1 {
		p.starts = make([]int32, nnodes+1)
		p.count = make([]int32, nnodes)
	}
	p.starts = p.starts[:nnodes+1]
	p.count = p.count[:nnodes]
	clear(p.starts)
	clear(p.count)
	if cap(p.subOps) < assignments {
		p.subOps = make([]tabled.Op, assignments)
		p.subIdx = make([]int32, assignments)
	}
	p.subOps = p.subOps[:assignments]
	p.subIdx = p.subIdx[:assignments]
}

// Release returns the plan's scratch to the pool.
func (p *Plan) Release() {
	p.ops = nil
	planPool.Put(p)
}

// NumAssignments returns the total ops across all sub-batches (broadcast
// ops counted once per node).
func (p *Plan) NumAssignments() int { return len(p.subOps) }

// Sub returns node n's sub-batch and the original batch index of each of
// its ops. The slices alias plan scratch.
func (p *Plan) Sub(n int) (ops []tabled.Op, idx []int32) {
	return p.subOps[p.starts[n]:p.starts[n+1]], p.subIdx[p.starts[n]:p.starts[n+1]]
}

// Partition lays ops out by owning node. anycast names the node that
// receives the anycast class (callers pass the preferred healthy member).
//
// Sub-batches preserve the relative order of the original batch, and a
// broadcast op appears in every node's sub-batch at its correct relative
// position — so each node executes exactly the projection of the batch it
// owns, in order, and the merged results are identical to single-node
// execution (the equivalence property the tests quick-check).
func (pt *Partitioner) Partition(ops []tabled.Op, anycast int) *Plan {
	nnodes := pt.rm.NumNodes()
	if anycast < 0 || anycast >= nnodes {
		anycast = 0
	}
	p := planPool.Get().(*Plan)
	p.ops = ops

	// Pass 0: positions for the batched address computation. Non-addressed
	// ops get (1,1) so the batch encoder never sees them as failures worth
	// reporting; their address is ignored.
	p.grow(len(ops), nnodes, 0) // flat layout sized below once assignments are known
	for i := range ops {
		switch ops[i].Op {
		case "set", "get":
			p.xs[i], p.ys[i] = ops[i].X, ops[i].Y
		default:
			p.xs[i], p.ys[i] = 1, 1
		}
	}
	core.EncodeBatch(pt.f, p.xs, p.ys, p.addrs, nil)

	// Pass 1: classify and count.
	for i := range ops {
		switch ops[i].Op {
		case "set", "get":
			if p.addrs[i] == 0 {
				// The mapping rejected the position (out of domain,
				// overflow): forward to the anycast node, which re-derives
				// and reports the error exactly as a single node would.
				p.class[i] = classAnycast
				p.count[anycast]++
				continue
			}
			n, err := pt.rm.NodeFor(p.addrs[i])
			if err != nil {
				p.class[i] = classLocal
				p.localErr[i] = err
				continue
			}
			p.class[i] = classAddressed
			p.node[i] = int32(n)
			p.count[n]++
		case "resize", "stats":
			p.class[i] = classBroadcast
			for n := range p.count {
				p.count[n]++
			}
		case "dims":
			p.class[i] = classAnycast
			p.count[anycast]++
		default:
			// Same text a tabled server answers, so cluster and single-node
			// execution stay bit-identical.
			p.class[i] = classLocal
			p.localErr[i] = fmt.Errorf("unknown op %q", ops[i].Op)
		}
	}

	// Prefix sums → starts; re-grow the flat layout now that the
	// assignment total is known (localErr/class/… keep their contents:
	// grow only reallocates when capacity is short, and the first grow
	// already sized the per-op scratch).
	total := 0
	for n := range p.count {
		total += int(p.count[n])
	}
	if cap(p.subOps) < total {
		p.subOps = make([]tabled.Op, total)
		p.subIdx = make([]int32, total)
	}
	p.subOps = p.subOps[:total]
	p.subIdx = p.subIdx[:total]
	p.starts[0] = 0
	for n := 0; n < nnodes; n++ {
		p.starts[n+1] = p.starts[n] + p.count[n]
	}

	// Pass 2: stable scatter against incrementing cursors (reusing count
	// as the cursor array).
	cur := p.count
	copy(cur, p.starts[:nnodes])
	put := func(n int32, i int) {
		p.subOps[cur[n]] = p.ops[i]
		p.subIdx[cur[n]] = int32(i)
		cur[n]++
	}
	for i := range ops {
		switch p.class[i] {
		case classAddressed:
			put(p.node[i], i)
		case classAnycast:
			put(int32(anycast), i)
		case classBroadcast:
			for n := int32(0); int(n) < nnodes; n++ {
				put(n, i)
			}
		}
	}
	return p
}

// MergeLocal writes the router-answered ops into out (len(out) must equal
// the batch length) and returns how many there were.
func (p *Plan) MergeLocal(out []tabled.OpResult) int {
	n := 0
	for i, err := range p.localErr {
		if err != nil {
			out[i] = tabled.OpResult{Err: err.Error()}
			p.merged[i] = true
			n++
		}
	}
	return n
}

// MergeInto merges node n's sub-batch results into out, in request order.
// Nodes MUST be merged in ascending index order (the caller loops 0..N
// after the fan-out completes) so broadcast combining is deterministic:
//
//   - addressed/anycast ops: the single owner's result is taken verbatim;
//   - broadcast resize: OK only if every node succeeded; otherwise the
//     first (lowest-node) error wins — matching single-node execution,
//     where the one server's error would be the answer;
//   - broadcast stats: per-member stats aggregate exactly to the
//     single-node values — Moves sums (a shrink deletes each discarded
//     cell on exactly the node owning its address), Footprint and
//     Reshapes take the max (every member applies every resize, so the
//     counters are replicas; footprint's max-over-members IS the global
//     max address).
//
// sub must have one entry per op of node n's sub-batch.
func (p *Plan) MergeInto(out []tabled.OpResult, n int, sub []tabled.OpResult) {
	_, idx := p.Sub(n)
	for k, r := range sub {
		i := idx[k]
		if !p.merged[i] {
			p.merged[i] = true
			if r.Stats != nil {
				// Own the aggregation target: later nodes add into it.
				st := *r.Stats
				r.Stats = &st
			}
			out[i] = r
			continue
		}
		if p.class[i] != classBroadcast {
			out[i] = r // single owner; overwrite is defensive
			continue
		}
		switch {
		case out[i].Err != "":
			// An earlier node already failed this broadcast op.
		case r.Err != "":
			out[i] = r
		case out[i].Stats != nil && r.Stats != nil:
			out[i].Stats.Moves += r.Stats.Moves
			if r.Stats.Footprint > out[i].Stats.Footprint {
				out[i].Stats.Footprint = r.Stats.Footprint
			}
			if r.Stats.Reshapes > out[i].Stats.Reshapes {
				out[i].Stats.Reshapes = r.Stats.Reshapes
			}
		}
	}
}

// FillUnmerged writes err into every op no merge reached — the safety net
// for a node whose reply never arrived; with every sub-batch merged (even
// failed ones merge synthesized errors) it writes nothing.
func (p *Plan) FillUnmerged(out []tabled.OpResult, err error) {
	for i := range p.merged {
		if !p.merged[i] {
			out[i] = tabled.OpResult{Err: err.Error()}
			p.merged[i] = true
		}
	}
}

// AggregateStats is the broadcast-stats combine rule, exposed for the
// router's /v1/stats endpoint: Moves sum, Footprint max, Reshapes max.
func AggregateStats(agg *extarray.Stats, st extarray.Stats) {
	agg.Moves += st.Moves
	if st.Footprint > agg.Footprint {
		agg.Footprint = st.Footprint
	}
	if st.Reshapes > agg.Reshapes {
		agg.Reshapes = st.Reshapes
	}
}
