package cluster

import (
	"errors"
	"strings"
	"testing"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/tabled"
)

// diag is the diagonal mapping: addr(x,y) = (x+y−1)(x+y−2)/2 + y, handy in
// tests because owners are computable by hand.
func diag(t *testing.T) core.PF {
	t.Helper()
	f, err := core.ByName("diagonal")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func diagAddr(x, y int64) int64 { return (x+y-1)*(x+y-2)/2 + y }

func newTestPartitioner(t *testing.T, s *Spec) *Partitioner {
	t.Helper()
	rm, err := NewRangeMap(s)
	if err != nil {
		t.Fatal(err)
	}
	return NewPartitioner(diag(t), rm)
}

func TestPartitionClassification(t *testing.T) {
	pt := newTestPartitioner(t, spec3()) // a:[1,100) b:[100,250) c:[250,1000)
	ops := []tabled.Op{
		{Op: "set", X: 1, Y: 1, V: "v"},   // addr 1 → node 0
		{Op: "get", X: 1, Y: 1},           // addr 1 → node 0
		{Op: "resize", Rows: 9, Cols: 9},  // broadcast
		{Op: "set", X: 13, Y: 1, V: "b"},  // addr diagAddr(13,1)=79 → node 0
		{Op: "get", X: 10, Y: 5},          // addr diagAddr(10,5)=96 → node 0
		{Op: "set", X: 10, Y: 9, V: "m"},  // addr 162 → node 1
		{Op: "dims"},                      // anycast
		{Op: "set", X: 0, Y: 1, V: "bad"}, // encode fails → anycast (forwarded for the error)
		{Op: "get", X: 25, Y: 25},         // addr 1201 → outside every range → local
		{Op: "frobnicate"},                // unknown kind → answered locally
		{Op: "stats"},                     // broadcast
		{Op: "set", X: 2, Y: 22, V: "c"},  // addr 275 → node 2
	}
	if diagAddr(13, 1) != 79 || diagAddr(10, 5) != 96 || diagAddr(10, 9) != 162 ||
		diagAddr(25, 25) != 1201 || diagAddr(2, 22) != 275 {
		t.Fatal("hand-computed addresses drifted")
	}
	p := pt.Partition(ops, 1) // anycast target: node 1
	defer p.Release()

	// Broadcasts appear once per node, everything else exactly once.
	// 12 ops − 2 local − 2 broadcast = 8 singles, plus 2 broadcasts × 3 nodes.
	if got, want := p.NumAssignments(), 8+2*3; got != want {
		t.Fatalf("NumAssignments = %d, want %d", got, want)
	}
	wantSubs := [][]string{
		0: {"set", "get", "resize", "set", "get", "stats"},
		1: {"resize", "set", "dims", "set", "stats"},
		2: {"resize", "stats", "set"},
	}
	for n, want := range wantSubs {
		sub, idx := p.Sub(n)
		if len(sub) != len(want) {
			t.Fatalf("node %d sub = %d ops, want %d (%v)", n, len(sub), len(want), sub)
		}
		for k := range sub {
			if sub[k].Op != want[k] {
				t.Errorf("node %d op %d = %q, want %q", n, k, sub[k].Op, want[k])
			}
		}
		// Sub-batches preserve request order: idx strictly increasing.
		for k := 1; k < len(idx); k++ {
			if idx[k] <= idx[k-1] {
				t.Errorf("node %d indices not increasing: %v", n, idx)
			}
		}
	}

	// The out-of-range op and the unknown kind are answered locally — the
	// former with the typed error, the latter with the server's own text.
	out := make([]tabled.OpResult, len(ops))
	if n := p.MergeLocal(out); n != 2 {
		t.Fatalf("MergeLocal = %d, want 2", n)
	}
	if !strings.Contains(out[8].Err, ErrOutOfRange.Error()) {
		t.Fatalf("out-of-range result = %+v", out[8])
	}
	if out[9].Err != `unknown op "frobnicate"` {
		t.Fatalf("unknown-kind result = %+v", out[9])
	}
}

func TestPartitionSingleNodeIsIdentity(t *testing.T) {
	s := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{Name: "solo", Base: "http://s", Lo: 1, Hi: 1 << 40}}}
	pt := newTestPartitioner(t, s)
	ops := []tabled.Op{
		{Op: "set", X: 3, Y: 4, V: "v"},
		{Op: "resize", Rows: 10, Cols: 10},
		{Op: "get", X: 3, Y: 4},
		{Op: "dims"},
		{Op: "stats"},
		{Op: "set", X: -1, Y: 2, V: "bad"},
	}
	p := pt.Partition(ops, 0)
	defer p.Release()
	sub, idx := p.Sub(0)
	if len(sub) != len(ops) {
		t.Fatalf("single node sub = %d ops, want all %d", len(sub), len(ops))
	}
	for k := range sub {
		if int(idx[k]) != k || sub[k].Op != ops[k].Op {
			t.Fatalf("single-node sub is not the identity at %d: %v", k, sub[k])
		}
	}
}

func TestMergeBroadcastRules(t *testing.T) {
	pt := newTestPartitioner(t, spec3())
	ops := []tabled.Op{
		{Op: "stats"},
		{Op: "resize", Rows: 5, Cols: 5},
	}
	p := pt.Partition(ops, 0)
	defer p.Release()
	out := make([]tabled.OpResult, len(ops))
	p.MergeLocal(out)

	st := func(moves, foot, reshapes int64) *extarray.Stats {
		return &extarray.Stats{Moves: moves, Footprint: foot, Reshapes: reshapes}
	}
	// Node 0: ok stats, ok resize. Node 1: resize failed. Node 2: ok.
	p.MergeInto(out, 0, []tabled.OpResult{{OK: true, Stats: st(2, 90, 3)}, {OK: true, Rows: 5, Cols: 5}})
	p.MergeInto(out, 1, []tabled.OpResult{{OK: true, Stats: st(5, 240, 3)}, {Err: "resize exploded"}})
	p.MergeInto(out, 2, []tabled.OpResult{{OK: true, Stats: st(1, 700, 3)}, {OK: true, Rows: 5, Cols: 5}})
	p.FillUnmerged(out, errUnrouted)

	got := out[0].Stats
	if got == nil || got.Moves != 8 || got.Footprint != 700 || got.Reshapes != 3 {
		t.Fatalf("aggregated stats = %+v, want Moves 8, Footprint 700, Reshapes 3", got)
	}
	if out[1].Err != "resize exploded" || out[1].OK {
		t.Fatalf("broadcast resize error lost: %+v", out[1])
	}
}

func TestMergeFirstErrorWinsInNodeOrder(t *testing.T) {
	pt := newTestPartitioner(t, spec3())
	ops := []tabled.Op{{Op: "resize", Rows: 4, Cols: 4}}
	p := pt.Partition(ops, 0)
	defer p.Release()
	out := make([]tabled.OpResult, 1)
	p.MergeInto(out, 0, []tabled.OpResult{{Err: "first"}})
	p.MergeInto(out, 1, []tabled.OpResult{{Err: "second"}})
	p.MergeInto(out, 2, []tabled.OpResult{{OK: true}})
	if out[0].Err != "first" {
		t.Fatalf("Err = %q, want the lowest node's", out[0].Err)
	}
}

func TestFillUnmerged(t *testing.T) {
	pt := newTestPartitioner(t, spec3())
	ops := []tabled.Op{{Op: "get", X: 1, Y: 1}, {Op: "get", X: 10, Y: 9}}
	p := pt.Partition(ops, 0)
	defer p.Release()
	out := make([]tabled.OpResult, 2)
	p.MergeInto(out, 0, []tabled.OpResult{{OK: true, Found: true, V: "x"}})
	// Node 1's reply never arrives.
	sentinel := errors.New("cluster: dropped")
	p.FillUnmerged(out, sentinel)
	if out[0].V != "x" || out[1].Err != sentinel.Error() {
		t.Fatalf("fill = %+v", out)
	}
}

func TestAggregateStats(t *testing.T) {
	var agg extarray.Stats
	AggregateStats(&agg, extarray.Stats{Moves: 3, Footprint: 10, Reshapes: 2})
	AggregateStats(&agg, extarray.Stats{Moves: 4, Footprint: 7, Reshapes: 5})
	if agg.Moves != 7 || agg.Footprint != 10 || agg.Reshapes != 5 {
		t.Fatalf("agg = %+v", agg)
	}
}

// TestPlanReuse exercises the pool across differently-shaped batches: a
// stale plan must never leak assignments or local errors into a later one.
func TestPlanReuse(t *testing.T) {
	pt := newTestPartitioner(t, spec3())
	big := make([]tabled.Op, 64)
	for i := range big {
		big[i] = tabled.Op{Op: "stats"}
	}
	p := pt.Partition(big, 0)
	p.Release()
	small := []tabled.Op{{Op: "get", X: 1, Y: 1}}
	p = pt.Partition(small, 0)
	defer p.Release()
	if p.NumAssignments() != 1 {
		t.Fatalf("NumAssignments = %d after pool reuse, want 1", p.NumAssignments())
	}
	out := make([]tabled.OpResult, 1)
	if n := p.MergeLocal(out); n != 0 {
		t.Fatalf("MergeLocal leaked %d stale local errors", n)
	}
}
