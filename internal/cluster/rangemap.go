package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// A NodeSpec is one cluster member: a tabledserver owning the contiguous
// PF-address range [Lo, Hi), optionally shadowed by a replica.
type NodeSpec struct {
	// Name identifies the node in metrics, logs, and /v1/cluster.
	Name string `json:"name"`
	// Base is the node's URL, e.g. "http://10.0.0.7:8080".
	Base string `json:"base"`
	// Replica, when non-empty, is the URL of the range's follower — a
	// tabledserver started with -replicate-from pointing at Base. The
	// router reads from it while the primary is degraded or down, and
	// writes to it once it has been promoted (see DESIGN §5d).
	Replica string `json:"replica,omitempty"`
	// Lo is the first address the node owns (inclusive, ≥ 1).
	Lo int64 `json:"lo"`
	// Hi is the end of the node's range (exclusive; Hi > Lo).
	Hi int64 `json:"hi"`
}

// A Spec is the static cluster map the router serves from: the storage
// mapping every member must be running, plus the members in ascending
// range order. Ranges must tile [Nodes[0].Lo, Nodes[last].Hi) exactly —
// contiguous, non-empty, non-overlapping — and start at address 1, the
// smallest address any PF produces. Addresses at or past the last range's
// Hi are a routing error (ErrOutOfRange), so the final range should carry
// whatever growth headroom the workload needs.
type Spec struct {
	Mapping string     `json:"mapping"`
	Nodes   []NodeSpec `json:"nodes"`
}

// ErrOutOfRange reports a PF address no configured range owns. It is a
// cluster-configuration error (the spec does not cover the address space
// the workload reaches), answered per-op — never a panic.
var ErrOutOfRange = errors.New("cluster: address outside every configured range")

// ErrSpec reports an invalid cluster spec.
var ErrSpec = errors.New("cluster: invalid spec")

// Validate checks the spec invariants: a known mapping name is NOT
// required here (the caller resolves it via core.ByName), but the range
// tiling is.
func (s *Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrSpec)
	}
	if s.Mapping == "" {
		return fmt.Errorf("%w: missing mapping name", ErrSpec)
	}
	seen := make(map[string]bool, len(s.Nodes))
	for i, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("%w: node %d has no name", ErrSpec, i)
		}
		if seen[n.Name] {
			return fmt.Errorf("%w: duplicate node name %q", ErrSpec, n.Name)
		}
		seen[n.Name] = true
		if n.Base == "" {
			return fmt.Errorf("%w: node %q has no base URL", ErrSpec, n.Name)
		}
		if n.Replica == n.Base && n.Replica != "" {
			return fmt.Errorf("%w: node %q replica URL equals its base", ErrSpec, n.Name)
		}
		if n.Hi <= n.Lo {
			return fmt.Errorf("%w: node %q owns empty range [%d, %d)", ErrSpec, n.Name, n.Lo, n.Hi)
		}
	}
	if s.Nodes[0].Lo != 1 {
		return fmt.Errorf("%w: first range starts at %d, want 1 (PF addresses are 1-based)",
			ErrSpec, s.Nodes[0].Lo)
	}
	for i := 1; i < len(s.Nodes); i++ {
		prev, cur := s.Nodes[i-1], s.Nodes[i]
		if cur.Lo != prev.Hi {
			return fmt.Errorf("%w: gap or overlap between %q [%d, %d) and %q [%d, %d)",
				ErrSpec, prev.Name, prev.Lo, prev.Hi, cur.Name, cur.Lo, cur.Hi)
		}
	}
	return nil
}

// ParseSpec decodes and validates a JSON cluster spec:
//
//	{"mapping": "square-shell",
//	 "nodes": [
//	   {"name": "n0", "base": "http://127.0.0.1:8081", "lo": 1,     "hi": 30000},
//	   {"name": "n1", "base": "http://127.0.0.1:8082", "lo": 30000, "hi": 60000},
//	   {"name": "n2", "base": "http://127.0.0.1:8083", "lo": 60000, "hi": 1099511627776}]}
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a cluster spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// EvenSpec builds a spec splitting [1, maxAddr+headroom) evenly across
// bases — the quick-start form behind tabledrouter's -nodes flag, for
// when writing a JSON file is overkill. The final node absorbs the
// remainder plus all growth headroom up to hi.
func EvenSpec(mapping string, bases []string, maxAddr, hi int64) (*Spec, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrSpec)
	}
	if maxAddr < int64(len(bases)) {
		return nil, fmt.Errorf("%w: max address %d below node count %d", ErrSpec, maxAddr, len(bases))
	}
	if hi <= maxAddr {
		hi = maxAddr + 1
	}
	span := maxAddr / int64(len(bases))
	s := &Spec{Mapping: mapping, Nodes: make([]NodeSpec, len(bases))}
	lo := int64(1)
	for i, base := range bases {
		end := lo + span
		if i == len(bases)-1 {
			end = hi
		}
		s.Nodes[i] = NodeSpec{Name: fmt.Sprintf("node-%d", i), Base: base, Lo: lo, Hi: end}
		lo = end
	}
	return s, s.Validate()
}

// WithReplicas assigns replica URLs to the spec's nodes positionally —
// the -replicas quick-start companion to EvenSpec. Empty entries leave
// the node without a replica; extra entries are an error.
func (s *Spec) WithReplicas(replicas []string) error {
	if len(replicas) > len(s.Nodes) {
		return fmt.Errorf("%w: %d replicas for %d nodes", ErrSpec, len(replicas), len(s.Nodes))
	}
	for i, rep := range replicas {
		s.Nodes[i].Replica = rep
	}
	return s.Validate()
}

// A RangeMap answers "which node owns this address" by binary search over
// the spec's range boundaries. It is immutable after construction and
// safe for concurrent use.
type RangeMap struct {
	lows []int64 // lows[i] = Nodes[i].Lo; ascending
	max  int64   // Nodes[last].Hi (exclusive)
}

// NewRangeMap indexes a validated spec.
func NewRangeMap(s *Spec) (*RangeMap, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := &RangeMap{lows: make([]int64, len(s.Nodes)), max: s.Nodes[len(s.Nodes)-1].Hi}
	for i, n := range s.Nodes {
		m.lows[i] = n.Lo
	}
	return m, nil
}

// NumNodes returns the member count.
func (m *RangeMap) NumNodes() int { return len(m.lows) }

// NodeFor returns the index of the node owning addr, or ErrOutOfRange
// (wrapped with the address) when no range covers it. Boundary semantics:
// addr == Lo belongs to the node, addr == Hi to the next one.
func (m *RangeMap) NodeFor(addr int64) (int, error) {
	if addr < m.lows[0] || addr >= m.max {
		return 0, fmt.Errorf("%w: %d not in [%d, %d)", ErrOutOfRange, addr, m.lows[0], m.max)
	}
	// First i with lows[i] > addr; the owner is i-1.
	i := sort.Search(len(m.lows), func(i int) bool { return m.lows[i] > addr })
	return i - 1, nil
}
