package cluster

import (
	"errors"
	"fmt"
	"testing"
)

func spec3() *Spec {
	return &Spec{
		Mapping: "diagonal",
		Nodes: []NodeSpec{
			{Name: "a", Base: "http://a", Lo: 1, Hi: 100},
			{Name: "b", Base: "http://b", Lo: 100, Hi: 250},
			{Name: "c", Base: "http://c", Lo: 250, Hi: 1000},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := spec3().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no nodes", func(s *Spec) { s.Nodes = nil }},
		{"no mapping", func(s *Spec) { s.Mapping = "" }},
		{"unnamed node", func(s *Spec) { s.Nodes[1].Name = "" }},
		{"duplicate name", func(s *Spec) { s.Nodes[2].Name = "a" }},
		{"no base", func(s *Spec) { s.Nodes[0].Base = "" }},
		{"empty range", func(s *Spec) { s.Nodes[1].Hi = s.Nodes[1].Lo }},
		{"inverted range", func(s *Spec) { s.Nodes[1].Hi = s.Nodes[1].Lo - 10 }},
		{"first range not at 1", func(s *Spec) { s.Nodes[0].Lo = 2 }},
		{"gap", func(s *Spec) { s.Nodes[2].Lo = 260 }},
		{"overlap", func(s *Spec) { s.Nodes[2].Lo = 200 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := spec3()
			tc.mutate(s)
			err := s.Validate()
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("Validate = %v, want ErrSpec", err)
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{"mapping":"diagonal","nodes":[
		{"name":"n0","base":"http://x","lo":1,"hi":50},
		{"name":"n1","base":"http://y","lo":50,"hi":200}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 2 || s.Nodes[1].Hi != 200 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseSpec([]byte(`{not json`)); !errors.Is(err, ErrSpec) {
		t.Fatalf("garbage parse = %v, want ErrSpec", err)
	}
	if _, err := ParseSpec([]byte(`{"mapping":"m","nodes":[{"name":"n","base":"b","lo":2,"hi":9}]}`)); !errors.Is(err, ErrSpec) {
		t.Fatalf("invalid tiling = %v, want ErrSpec", err)
	}
}

func TestEvenSpec(t *testing.T) {
	s, err := EvenSpec("diagonal", []string{"http://a", "http://b", "http://c"}, 100, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Nodes); got != 3 {
		t.Fatalf("nodes = %d", got)
	}
	if s.Nodes[0].Lo != 1 || s.Nodes[2].Hi != 1<<30 {
		t.Fatalf("span [%d, %d)", s.Nodes[0].Lo, s.Nodes[2].Hi)
	}
	for i := 1; i < len(s.Nodes); i++ {
		if s.Nodes[i].Lo != s.Nodes[i-1].Hi {
			t.Fatalf("not contiguous at %d: %+v", i, s.Nodes)
		}
	}
	if _, err := EvenSpec("diagonal", nil, 100, 0); !errors.Is(err, ErrSpec) {
		t.Fatalf("no bases = %v, want ErrSpec", err)
	}
	if _, err := EvenSpec("diagonal", []string{"a", "b", "c"}, 2, 0); !errors.Is(err, ErrSpec) {
		t.Fatalf("maxAddr below node count = %v, want ErrSpec", err)
	}
}

func TestRangeMapBoundaries(t *testing.T) {
	rm, err := NewRangeMap(spec3())
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d", got)
	}
	cases := []struct {
		addr int64
		want int
	}{
		{1, 0},    // very first address
		{99, 0},   // last of node a
		{100, 1},  // exactly on a boundary: belongs to the upper node
		{249, 1},  // last of node b
		{250, 2},  // boundary again
		{999, 2},  // last owned address
	}
	for _, tc := range cases {
		n, err := rm.NodeFor(tc.addr)
		if err != nil || n != tc.want {
			t.Errorf("NodeFor(%d) = %d, %v; want %d", tc.addr, n, err, tc.want)
		}
	}
	// Addresses no range owns are a typed per-op error, never a panic.
	for _, addr := range []int64{0, -5, 1000, 1 << 40} {
		if _, err := rm.NodeFor(addr); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("NodeFor(%d) err = %v, want ErrOutOfRange", addr, err)
		}
	}
}

func TestRangeMapSingleNode(t *testing.T) {
	s := &Spec{Mapping: "diagonal", Nodes: []NodeSpec{{Name: "solo", Base: "http://s", Lo: 1, Hi: 1 << 40}}}
	rm, err := NewRangeMap(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []int64{1, 2, 1 << 39, 1<<40 - 1} {
		n, err := rm.NodeFor(addr)
		if err != nil || n != 0 {
			t.Fatalf("NodeFor(%d) = %d, %v", addr, n, err)
		}
	}
	if _, err := rm.NodeFor(1 << 40); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("past-end err = %v, want ErrOutOfRange", err)
	}
}

func TestRangeMapManyNodesExhaustive(t *testing.T) {
	// Every address in a small tiled space maps to the node whose range
	// holds it — cross-checked against a linear scan.
	s := &Spec{Mapping: "diagonal"}
	lo := int64(1)
	for i := 0; i < 7; i++ {
		hi := lo + int64(3+i)
		s.Nodes = append(s.Nodes, NodeSpec{Name: fmt.Sprintf("n%d", i), Base: "http://n", Lo: lo, Hi: hi})
		lo = hi
	}
	rm, err := NewRangeMap(s)
	if err != nil {
		t.Fatal(err)
	}
	for addr := int64(1); addr < lo; addr++ {
		want := -1
		for i, n := range s.Nodes {
			if addr >= n.Lo && addr < n.Hi {
				want = i
			}
		}
		got, err := rm.NodeFor(addr)
		if err != nil || got != want {
			t.Fatalf("NodeFor(%d) = %d, %v; want %d", addr, got, err, want)
		}
	}
}
