package cluster

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
)

// A Reloader owns the live *Router for a spec-file-driven deployment and
// rebuilds it when the file changes — tabledrouter's live-reconfiguration
// seam. It is a RouterSource: the front door resolves Router() per
// request, so a swap takes effect on the next batch with no listener or
// handler restart. The old router is simply dropped; its in-flight
// sub-batches finish against it (soft state only — nothing to migrate),
// and its health checker is stopped once the new one is running.
//
// Metrics survive reloads because obs.Registry families are get-or-create:
// a rebuilt router re-acquires the same counters for unchanged node names,
// so rates keep accumulating across swaps. Gauges for nodes that left the
// spec go stale at their last value — a spec shrink is rare enough that a
// process restart is the supported way to clear them.
type Reloader struct {
	path string
	opt  Options
	cur  atomic.Pointer[Router]

	mu     sync.Mutex // serializes Reload; guards runCtx/cancel
	runCtx context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewReloader loads the spec file and builds the initial router. opt is
// reused verbatim for every rebuild.
func NewReloader(path string, opt Options) (*Reloader, error) {
	spec, err := LoadSpec(path)
	if err != nil {
		return nil, err
	}
	rt, err := New(spec, opt)
	if err != nil {
		return nil, err
	}
	rl := &Reloader{path: path, opt: opt}
	rl.cur.Store(rt)
	return rl, nil
}

// Router returns the live router (RouterSource).
func (rl *Reloader) Router() *Router { return rl.cur.Load() }

// Path returns the watched spec file.
func (rl *Reloader) Path() string { return rl.path }

// Run drives the live router's health checker until ctx ends — wire it as
// the lifecycle background task in place of Router.Health().Run. Reloads
// before Run start their checker when Run begins; reloads after hand off
// from the old checker to the new one.
func (rl *Reloader) Run(ctx context.Context) {
	rl.mu.Lock()
	rl.runCtx = ctx
	rl.startLocked(rl.cur.Load())
	rl.mu.Unlock()
	<-ctx.Done()
	rl.mu.Lock()
	if rl.cancel != nil {
		rl.cancel()
		rl.cancel = nil
	}
	rl.mu.Unlock()
	rl.wg.Wait()
}

// startLocked launches rt's checker under a cancelable child of runCtx
// (no-op before Run provides one).
func (rl *Reloader) startLocked(rt *Router) {
	if rl.runCtx == nil {
		return
	}
	cctx, cancel := context.WithCancel(rl.runCtx)
	rl.cancel = cancel
	rl.wg.Add(1)
	go func() {
		defer rl.wg.Done()
		rt.Health().Run(cctx)
	}()
}

// Reload re-reads the spec file and, if it changed, swaps in a freshly
// built router. The new router's checker probes every member once before
// the swap so the first routed batch sees real states, not the optimistic
// boot defaults. An invalid or unreadable file is an error and the old
// router keeps serving — a botched edit can never take the front door
// down.
func (rl *Reloader) Reload(ctx context.Context) error {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	spec, err := LoadSpec(rl.path)
	if err != nil {
		return err
	}
	old := rl.cur.Load()
	if reflect.DeepEqual(spec, old.Spec()) {
		return nil // spurious trigger (touch, repeated SIGHUP)
	}
	rt, err := New(spec, rl.opt)
	if err != nil {
		return err
	}
	rt.Health().CheckNow(ctx)
	rl.cur.Store(rt)
	if rl.cancel != nil {
		rl.cancel()
		rl.cancel = nil
	}
	rl.startLocked(rt)
	if rl.opt.Logger != nil {
		rl.opt.Logger.Info("cluster: spec reloaded",
			"path", rl.path, "nodes", len(spec.Nodes))
	}
	return nil
}
