package core

import (
	"fmt"

	"pairfn/internal/numtheory"
)

// Aspect is the aspect-ratio pairing function 𝒜_{a,b} of §3.2.1. Its shells
// follow the nested ak×bk arrays: shell k comprises the positions of the
// a·k × b·k array that are not in the a(k−1) × b(k−1) array. Enumeration
// inside shell k covers the b new columns first (each column of height ak,
// taken bottom-up in x), then the a new rows (each of length b(k−1)).
//
// 𝒜_{a,b} manages storage perfectly for its aspect ratio (eq. 3.2): every
// position of an ak×bk array receives an address ≤ abk², the array's exact
// size, so S_{𝒜_{a,b}}(n) = n over conforming arrays.
type Aspect struct {
	a, b int64
}

// NewAspect returns the PF 𝒜_{a,b}. Both a and b must be ≥ 1.
func NewAspect(a, b int64) (*Aspect, error) {
	if a < 1 || b < 1 {
		return nil, fmt.Errorf("%w: aspect ratio (%d, %d)", ErrDomain, a, b)
	}
	return &Aspect{a: a, b: b}, nil
}

// MustAspect is NewAspect with a panic on error.
func MustAspect(a, b int64) *Aspect {
	f, err := NewAspect(a, b)
	if err != nil {
		panic(err)
	}
	return f
}

// Ratio returns the aspect ratio ⟨a, b⟩ the PF favors.
func (f *Aspect) Ratio() (a, b int64) { return f.a, f.b }

// Name implements PF.
func (f *Aspect) Name() string { return fmt.Sprintf("aspect-%dx%d", f.a, f.b) }

// shellOf returns the shell index of ⟨x, y⟩: the smallest k with x ≤ ak and
// y ≤ bk.
func (f *Aspect) shellOf(x, y int64) int64 {
	k := numtheory.CeilDiv(x, f.a)
	if k2 := numtheory.CeilDiv(y, f.b); k2 > k {
		k = k2
	}
	return k
}

// Encode implements PF.
func (f *Aspect) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	k := f.shellOf(x, y)
	ab, err := numtheory.MulCheck(f.a, f.b)
	if err != nil {
		return 0, err
	}
	km1sq, err := numtheory.MulCheck(k-1, k-1)
	if err != nil {
		return 0, err
	}
	base, err := numtheory.MulCheck(ab, km1sq) // positions of the (k−1) array
	if err != nil {
		return 0, err
	}
	if y > f.b*(k-1) {
		// New-columns arm: column y−b(k−1) of b, height a·k.
		col := y - f.b*(k-1) - 1
		ak, err := numtheory.MulCheck(f.a, k)
		if err != nil {
			return 0, err
		}
		off, err := numtheory.MulCheck(col, ak)
		if err != nil {
			return 0, err
		}
		z, err := numtheory.AddCheck(base, off)
		if err != nil {
			return 0, err
		}
		return numtheory.AddCheck(z, x)
	}
	// New-rows arm: row x−a(k−1) of a, length b(k−1); preceded by the
	// ab·k positions of the new-columns arm.
	abk, err := numtheory.MulCheck(ab, k)
	if err != nil {
		return 0, err
	}
	base, err = numtheory.AddCheck(base, abk)
	if err != nil {
		return 0, err
	}
	row := x - f.a*(k-1) - 1
	off, err := numtheory.MulCheck(row, f.b*(k-1))
	if err != nil {
		return 0, err
	}
	z, err := numtheory.AddCheck(base, off)
	if err != nil {
		return 0, err
	}
	return numtheory.AddCheck(z, y)
}

// Decode implements PF.
func (f *Aspect) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	ab := f.a * f.b
	// Smallest k with abk² ≥ z. An overflowing abk² is certainly ≥ z.
	k := numtheory.Isqrt((z - 1) / ab)
	for {
		sq, err := numtheory.MulCheck(k, k)
		if err == nil {
			sq, err = numtheory.MulCheck(ab, sq)
		}
		if err != nil || sq >= z {
			break
		}
		k++
	}
	r := z - ab*(k-1)*(k-1) // 1 … ab(2k−1)
	if r <= ab*k {
		// New-columns arm.
		ak := f.a * k
		y := f.b*(k-1) + 1 + (r-1)/ak
		x := (r-1)%ak + 1
		return x, y, nil
	}
	r -= ab * k
	bk1 := f.b * (k - 1)
	x := f.a*(k-1) + 1 + (r-1)/bk1
	y := (r-1)%bk1 + 1
	return x, y, nil
}
