package core

import (
	"testing"
	"testing/quick"
)

// TestAspectPerfectCompactness verifies eq. 3.2 (experiment E7): 𝒜_{a,b}
// maps every position of an ak×bk array to an address ≤ abk² — perfect
// storage utilization for the favored aspect ratio.
func TestAspectPerfectCompactness(t *testing.T) {
	ratios := [][2]int64{{1, 1}, {1, 2}, {2, 1}, {2, 3}, {3, 2}, {4, 7}, {1, 5}}
	for _, r := range ratios {
		a, b := r[0], r[1]
		f := MustAspect(a, b)
		for k := int64(1); k <= 12; k++ {
			size := a * b * k * k
			var maxAddr int64
			for x := int64(1); x <= a*k; x++ {
				for y := int64(1); y <= b*k; y++ {
					z := MustEncode(f, x, y)
					if z > maxAddr {
						maxAddr = z
					}
				}
			}
			if maxAddr != size {
				t.Errorf("%s: max address over %d×%d = %d, want exactly %d",
					f.Name(), a*k, b*k, maxAddr, size)
			}
		}
	}
}

// TestAspectShellNesting checks that shell k of 𝒜_{a,b} occupies exactly
// the address interval (ab(k−1)², abk²].
func TestAspectShellNesting(t *testing.T) {
	f := MustAspect(2, 3)
	a, b := f.Ratio()
	for k := int64(1); k <= 8; k++ {
		lo, hi := a*b*(k-1)*(k-1), a*b*k*k
		seen := make(map[int64]bool)
		for x := int64(1); x <= a*k; x++ {
			for y := int64(1); y <= b*k; y++ {
				if x <= a*(k-1) && y <= b*(k-1) {
					continue // previous shells
				}
				z := MustEncode(f, x, y)
				if z <= lo || z > hi {
					t.Fatalf("shell %d: (%d, %d) → %d outside (%d, %d]", k, x, y, z, lo, hi)
				}
				if seen[z] {
					t.Fatalf("shell %d: duplicate address %d", k, z)
				}
				seen[z] = true
			}
		}
		if int64(len(seen)) != hi-lo {
			t.Fatalf("shell %d: %d addresses, want %d", k, len(seen), hi-lo)
		}
	}
}

// TestAspectRoundTripProperty quick-checks the bijection law for random
// ratios and positions.
func TestAspectRoundTripProperty(t *testing.T) {
	f := func(ar, br uint8, xr, yr uint16) bool {
		a, b := int64(ar%6)+1, int64(br%6)+1
		x, y := int64(xr)+1, int64(yr)+1
		pf := MustAspect(a, b)
		z, err := pf.Encode(x, y)
		if err != nil {
			return false
		}
		gx, gy, err := pf.Decode(z)
		return err == nil && gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAspectInvalid checks constructor validation.
func TestAspectInvalid(t *testing.T) {
	if _, err := NewAspect(0, 1); err == nil {
		t.Error("NewAspect(0, 1) should fail")
	}
	if _, err := NewAspect(1, -2); err == nil {
		t.Error("NewAspect(1, -2) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAspect(0, 0) did not panic")
		}
	}()
	MustAspect(0, 0)
}

// TestAspect11IsPerfectOnSquares sanity-checks that 𝒜₁,₁ via the Aspect
// construction shares the square-shell PF's perfect compactness even though
// the within-shell walk differs from eq. 3.3's.
func TestAspect11IsPerfectOnSquares(t *testing.T) {
	f := MustAspect(1, 1)
	for n := int64(1); n <= 20; n++ {
		var maxAddr int64
		for x := int64(1); x <= n; x++ {
			for y := int64(1); y <= n; y++ {
				if z := MustEncode(f, x, y); z > maxAddr {
					maxAddr = z
				}
			}
		}
		if maxAddr != n*n {
			t.Errorf("n = %d: max = %d, want %d", n, maxAddr, n*n)
		}
	}
}
