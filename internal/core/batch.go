package core

import "pairfn/internal/numtheory"

// This file is the batch surface of the PF layer: encode or decode a whole
// coordinate slice in one call, amortizing per-call state — prefix-cache
// locks, shell lookups, Isqrt results — across consecutive elements. It is
// an extension beyond the paper's text motivated by the batched table
// service (internal/tabled), whose planner addresses every cell of a batch
// before taking any lock: with the batch surface the addressing pass costs
// one dynamic dispatch per batch instead of one per cell, and mappings with
// internal state (Enumerated's shell-prefix cache) pay their mutex once.
//
// The contract mirrors the scalar one element-wise. On failure of element
// i the destination is set to 0 — never a valid address or coordinate,
// both are ≥ 1 — and errf (when non-nil) receives the element's error, so
// callers can consume results without a parallel success mask.

// A BatchEncoder is a PF that can encode a whole coordinate slice in one
// call. Implementations must agree element-wise with Encode.
type BatchEncoder interface {
	PF
	// EncodeBatch sets dst[i] to the address of ⟨xs[i], ys[i]⟩ for each i,
	// or to 0 with errf(i, err) when that element fails. The three slices
	// must have equal length; errf may be nil.
	EncodeBatch(xs, ys, dst []int64, errf func(i int, err error))
}

// A BatchDecoder is a PF that can decode a whole address slice in one
// call. Implementations must agree element-wise with Decode.
type BatchDecoder interface {
	PF
	// DecodeBatch sets xs[i], ys[i] to the position stored at zs[i] for
	// each i, or to 0, 0 with errf(i, err) when that element fails. The
	// three slices must have equal length; errf may be nil.
	DecodeBatch(zs, xs, ys []int64, errf func(i int, err error))
}

// EncodeBatch encodes every position through f, delegating to the
// mapping's own EncodeBatch when implemented and falling back to a scalar
// loop otherwise. Semantics are those of BatchEncoder.EncodeBatch.
func EncodeBatch(f PF, xs, ys, dst []int64, errf func(i int, err error)) {
	if be, ok := f.(BatchEncoder); ok {
		be.EncodeBatch(xs, ys, dst, errf)
		return
	}
	for i := range xs {
		z, err := f.Encode(xs[i], ys[i])
		if err != nil {
			dst[i] = 0
			if errf != nil {
				errf(i, err)
			}
			continue
		}
		dst[i] = z
	}
}

// DecodeBatch decodes every address through f, delegating to the mapping's
// own DecodeBatch when implemented and falling back to a scalar loop
// otherwise. Semantics are those of BatchDecoder.DecodeBatch.
func DecodeBatch(f PF, zs, xs, ys []int64, errf func(i int, err error)) {
	if bd, ok := f.(BatchDecoder); ok {
		bd.DecodeBatch(zs, xs, ys, errf)
		return
	}
	for i := range zs {
		x, y, err := f.Decode(zs[i])
		if err != nil {
			xs[i], ys[i] = 0, 0
			if errf != nil {
				errf(i, err)
			}
			continue
		}
		xs[i], ys[i] = x, y
	}
}

// EncodeBatch implements BatchEncoder. The scalar Encode is already pure
// arithmetic; the batch form removes the per-element interface dispatch
// the generic loop pays, which is what the tabled planner measures.
func (s SquareShell) EncodeBatch(xs, ys, dst []int64, errf func(i int, err error)) {
	for i := range xs {
		z, err := s.Encode(xs[i], ys[i])
		if err != nil {
			dst[i] = 0
			if errf != nil {
				errf(i, err)
			}
			continue
		}
		dst[i] = z
	}
}

// squareShellCacheMax bounds the shell index for which the cached-shell
// fast path may compute (m+2)² and friends without overflow checks;
// addresses in larger shells (beyond ~4.6·10¹⁸) take the scalar path.
const squareShellCacheMax = 1 << 31

// DecodeBatch implements BatchDecoder, amortizing the integer square root
// across elements: runs of addresses that stay within one square shell —
// or step into the next — reuse the previous shell index instead of
// re-deriving it, so decoding a sorted address slice walks the shells.
func (s SquareShell) DecodeBatch(zs, xs, ys []int64, errf func(i int, err error)) {
	m := int64(-1) // current shell index; valid when ≥ 0 (addresses m²+1 … (m+1)²)
	var lo, hi int64
	for i, z := range zs {
		if z < 1 {
			xs[i], ys[i] = 0, 0
			if errf != nil {
				errf(i, checkAddr(z))
			}
			continue
		}
		switch {
		case m >= 0 && z > lo && z <= hi:
			// Same shell as the previous address.
		case m >= 0 && m < squareShellCacheMax && z > hi && z <= hi+2*(m+1)+1:
			// The next shell: (m+1)²+1 … (m+2)².
			m++
			lo, hi = m*m, (m+1)*(m+1)
		default:
			m = numtheory.Isqrt(z - 1)
			if m < squareShellCacheMax {
				lo, hi = m*m, (m+1)*(m+1)
			} else {
				// Too close to the int64 edge for the window arithmetic:
				// decode this element standalone and invalidate the cache.
				x, y, err := s.Decode(z)
				if err != nil {
					xs[i], ys[i] = 0, 0
					if errf != nil {
						errf(i, err)
					}
				} else {
					xs[i], ys[i] = x, y
				}
				m = -1
				continue
			}
		}
		r := z - lo // 1 … 2m+1
		var x, y int64
		if r <= m+1 {
			x, y = m+1, r
		} else {
			x, y = 2*m+2-r, m+1
		}
		if s.Clockwise {
			x, y = y, x
		}
		xs[i], ys[i] = x, y
	}
}

// EncodeBatch implements BatchEncoder (scalar Encode is pure arithmetic;
// see SquareShell.EncodeBatch for why the batch form still pays).
func (d Diagonal) EncodeBatch(xs, ys, dst []int64, errf func(i int, err error)) {
	for i := range xs {
		z, err := d.Encode(xs[i], ys[i])
		if err != nil {
			dst[i] = 0
			if errf != nil {
				errf(i, err)
			}
			continue
		}
		dst[i] = z
	}
}

// DecodeBatch implements BatchDecoder, reusing the diagonal-shell index
// across elements the same way SquareShell.DecodeBatch reuses the square
// shell: addresses within (or adjacent to) the previous shell skip the
// triangular-root derivation.
func (d Diagonal) DecodeBatch(zs, xs, ys []int64, errf func(i int, err error)) {
	k := int64(-1) // current triangular index; shell holds tri(k)+1 … tri(k+1)
	var lo, hi int64
	for i, z := range zs {
		if z < 1 {
			xs[i], ys[i] = 0, 0
			if errf != nil {
				errf(i, checkAddr(z))
			}
			continue
		}
		switch {
		case k >= 0 && z > lo && z <= hi:
			// Same diagonal as the previous address.
		case k >= 0 && k < squareShellCacheMax && z > hi && z <= hi+k+2:
			// The next diagonal: tri(k+1)+1 … tri(k+2).
			k++
			lo, hi = lo+k, hi+k+1
		default:
			k = numtheory.TriangularRoot(z - 1)
			if k < squareShellCacheMax {
				lo = k * (k + 1) / 2 // tri(k)
				hi = lo + k + 1      // tri(k+1)
			} else {
				x, y, err := d.Decode(z)
				if err != nil {
					xs[i], ys[i] = 0, 0
					if errf != nil {
						errf(i, err)
					}
				} else {
					xs[i], ys[i] = x, y
				}
				k = -1
				continue
			}
		}
		y := z - lo
		x := k + 2 - y
		if d.Twin {
			x, y = y, x
		}
		xs[i], ys[i] = x, y
	}
}

// EncodeBatch implements BatchEncoder: the whole batch shares one
// acquisition of the shell-prefix cache lock, where scalar Encode pays the
// mutex per call — the dominant cost for enumerated mappings under the
// tabled planner.
func (e *Enumerated) EncodeBatch(xs, ys, dst []int64, errf func(i int, err error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range xs {
		z, err := e.encodeLocked(xs[i], ys[i])
		if err != nil {
			dst[i] = 0
			if errf != nil {
				errf(i, err)
			}
			continue
		}
		dst[i] = z
	}
}

// DecodeBatch implements BatchDecoder under a single cache-lock
// acquisition (Unrank is pure, so holding the lock across it is safe).
func (e *Enumerated) DecodeBatch(zs, xs, ys []int64, errf func(i int, err error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, z := range zs {
		x, y, err := e.decodeLocked(z)
		if err != nil {
			xs[i], ys[i] = 0, 0
			if errf != nil {
				errf(i, err)
			}
			continue
		}
		xs[i], ys[i] = x, y
	}
}
