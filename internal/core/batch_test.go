package core

import (
	"errors"
	"math/rand"
	"testing"
)

// batchPFs are the mappings exercised element-wise against their scalar
// forms: the native BatchEncoder/BatchDecoder implementations plus one
// mapping (morton) that takes the generic fallback loop.
func batchPFs() []PF {
	return []PF{
		SquareShell{},
		SquareShell{Clockwise: true},
		Diagonal{},
		Diagonal{Twin: true},
		NewEnumerated(HyperbolicShells{}),
		Morton{}, // no batch methods: covers the fallback path
	}
}

// TestBatchMatchesScalar checks EncodeBatch/DecodeBatch agree with
// Encode/Decode element-wise on random, sorted, and shell-walking inputs.
func TestBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range batchPFs() {
		const n = 4096
		xs := make([]int64, n)
		ys := make([]int64, n)
		zs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int63n(2000) + 1
			ys[i] = rng.Int63n(2000) + 1
		}
		EncodeBatch(f, xs, ys, zs, func(i int, err error) {
			t.Fatalf("%s: EncodeBatch element %d (%d, %d): %v", f.Name(), i, xs[i], ys[i], err)
		})
		for i := range xs {
			want, err := f.Encode(xs[i], ys[i])
			if err != nil {
				t.Fatalf("%s: Encode(%d, %d): %v", f.Name(), xs[i], ys[i], err)
			}
			if zs[i] != want {
				t.Fatalf("%s: EncodeBatch(%d, %d) = %d, want %d", f.Name(), xs[i], ys[i], zs[i], want)
			}
		}
		// Decode the addresses back — first in encode order (random), then
		// sorted ascending 1..n (the shell-walking fast path), then a few
		// runs that deliberately straddle shell boundaries.
		gx := make([]int64, n)
		gy := make([]int64, n)
		checkDecode := func(zs []int64) {
			t.Helper()
			DecodeBatch(f, zs, gx[:len(zs)], gy[:len(zs)], func(i int, err error) {
				t.Fatalf("%s: DecodeBatch element %d (z=%d): %v", f.Name(), i, zs[i], err)
			})
			for i, z := range zs {
				wx, wy, err := f.Decode(z)
				if err != nil {
					t.Fatalf("%s: Decode(%d): %v", f.Name(), z, err)
				}
				if gx[i] != wx || gy[i] != wy {
					t.Fatalf("%s: DecodeBatch(%d) = (%d, %d), want (%d, %d)",
						f.Name(), z, gx[i], gy[i], wx, wy)
				}
			}
		}
		checkDecode(zs)
		seq := make([]int64, n)
		for i := range seq {
			seq[i] = int64(i + 1)
		}
		checkDecode(seq)
		// Shell-boundary straddles: m²-1, m², m²+1 for several m.
		var edges []int64
		for _, m := range []int64{2, 3, 10, 100, 1000} {
			edges = append(edges, m*m-1, m*m, m*m+1)
		}
		checkDecode(edges)
	}
}

// TestBatchNearInt64Edge pins the cached-shell fast paths near the int64
// boundary, where the window arithmetic must defer to the scalar decode
// instead of overflowing.
func TestBatchNearInt64Edge(t *testing.T) {
	const maxI64 = int64(^uint64(0) >> 1)
	zs := []int64{maxI64, maxI64 - 1, 1, maxI64 - 2, 2, maxI64}
	for _, f := range []PF{SquareShell{}, Diagonal{}} {
		xs := make([]int64, len(zs))
		ys := make([]int64, len(zs))
		DecodeBatch(f, zs, xs, ys, func(i int, err error) {
			t.Fatalf("%s: DecodeBatch element %d (z=%d): %v", f.Name(), i, zs[i], err)
		})
		for i, z := range zs {
			wx, wy, err := f.Decode(z)
			if err != nil {
				t.Fatalf("%s: Decode(%d): %v", f.Name(), z, err)
			}
			if xs[i] != wx || ys[i] != wy {
				t.Fatalf("%s: DecodeBatch(%d) = (%d, %d), want (%d, %d)",
					f.Name(), z, xs[i], ys[i], wx, wy)
			}
		}
	}
}

// TestBatchErrorElements checks failed elements surface through errf with
// a zeroed destination while surrounding elements still succeed.
func TestBatchErrorElements(t *testing.T) {
	for _, f := range batchPFs() {
		xs := []int64{1, 0, 2, -5, 3}
		ys := []int64{1, 1, 2, 1, 3}
		zs := make([]int64, len(xs))
		var encErrs []int
		EncodeBatch(f, xs, ys, zs, func(i int, err error) {
			if !errors.Is(err, ErrDomain) {
				t.Fatalf("%s: element %d: got %v, want ErrDomain", f.Name(), i, err)
			}
			encErrs = append(encErrs, i)
		})
		if len(encErrs) != 2 || encErrs[0] != 1 || encErrs[1] != 3 {
			t.Fatalf("%s: EncodeBatch error indices = %v, want [1 3]", f.Name(), encErrs)
		}
		for _, i := range encErrs {
			if zs[i] != 0 {
				t.Fatalf("%s: failed element %d has dst %d, want 0", f.Name(), i, zs[i])
			}
		}
		for _, i := range []int{0, 2, 4} {
			want, _ := f.Encode(xs[i], ys[i])
			if zs[i] != want {
				t.Fatalf("%s: element %d = %d, want %d", f.Name(), i, zs[i], want)
			}
		}

		dzs := []int64{5, 0, 7, -1, 9}
		gx := make([]int64, len(dzs))
		gy := make([]int64, len(dzs))
		var decErrs []int
		DecodeBatch(f, dzs, gx, gy, func(i int, err error) {
			if !errors.Is(err, ErrDomain) {
				t.Fatalf("%s: decode element %d: got %v, want ErrDomain", f.Name(), i, err)
			}
			decErrs = append(decErrs, i)
		})
		if len(decErrs) != 2 || decErrs[0] != 1 || decErrs[1] != 3 {
			t.Fatalf("%s: DecodeBatch error indices = %v, want [1 3]", f.Name(), decErrs)
		}
		for _, i := range decErrs {
			if gx[i] != 0 || gy[i] != 0 {
				t.Fatalf("%s: failed element %d = (%d, %d), want (0, 0)", f.Name(), i, gx[i], gy[i])
			}
		}
	}
}

// TestBatchNilErrf checks a nil errf is legal: failures zero the
// destination silently.
func TestBatchNilErrf(t *testing.T) {
	f := SquareShell{}
	zs := make([]int64, 2)
	EncodeBatch(f, []int64{0, 3}, []int64{1, 4}, zs, nil)
	if zs[0] != 0 {
		t.Fatalf("failed element dst = %d, want 0", zs[0])
	}
	if want := MustEncode(f, 3, 4); zs[1] != want {
		t.Fatalf("element 1 = %d, want %d", zs[1], want)
	}
	xs, ys := make([]int64, 2), make([]int64, 2)
	DecodeBatch(f, []int64{-3, 17}, xs, ys, nil)
	if xs[0] != 0 || ys[0] != 0 {
		t.Fatalf("failed element = (%d, %d), want (0, 0)", xs[0], ys[0])
	}
}

// TestBatchAllocFree pins the batch fast paths at zero allocations per
// call on the happy path — the property the tabled zero-allocation batch
// pipeline builds on.
func TestBatchAllocFree(t *testing.T) {
	const n = 256
	xs := make([]int64, n)
	ys := make([]int64, n)
	zs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i%37 + 1)
		ys[i] = int64(i%53 + 1)
	}
	for _, f := range []PF{SquareShell{}, Diagonal{}} {
		if a := testing.AllocsPerRun(100, func() {
			EncodeBatch(f, xs, ys, zs, nil)
		}); a != 0 {
			t.Errorf("%s: EncodeBatch allocates %.1f per call, want 0", f.Name(), a)
		}
		if a := testing.AllocsPerRun(100, func() {
			DecodeBatch(f, zs, xs, ys, nil)
		}); a != 0 {
			t.Errorf("%s: DecodeBatch allocates %.1f per call, want 0", f.Name(), a)
		}
	}
}

// BenchmarkEncodeBatch contrasts the batch surface with the scalar loop it
// replaces (per-element interface dispatch).
func BenchmarkEncodeBatch(b *testing.B) {
	const n = 128
	xs := make([]int64, n)
	ys := make([]int64, n)
	zs := make([]int64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.Int63n(1024) + 1
		ys[i] = rng.Int63n(1024) + 1
	}
	for _, f := range []PF{SquareShell{}, Diagonal{}, NewEnumerated(HyperbolicShells{})} {
		b.Run(f.Name()+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EncodeBatch(f, xs, ys, zs, nil)
			}
		})
		b.Run(f.Name()+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := range xs {
					zs[j], _ = f.Encode(xs[j], ys[j])
				}
			}
		})
	}
}
