package core

import "math/big"

// BigPF is the arbitrary-precision face of a pairing function: exact
// encode/decode on big.Ints, total for all positive inputs. Diagonal and
// SquareShell implement it; the hyperbolic PF does not (its shell-prefix
// term D(xy−1) is a summatory function whose exact evaluation beyond int64
// is outside this library's scope).
type BigPF interface {
	PF
	// EncodeBig returns the address of ⟨x, y⟩ exactly.
	EncodeBig(x, y *big.Int) (*big.Int, error)
	// DecodeBig inverts EncodeBig.
	DecodeBig(z *big.Int) (x, y *big.Int, err error)
}

// Static interface checks.
var (
	_ BigPF = Diagonal{}
	_ BigPF = SquareShell{}
)

// EncodeBig returns 𝒜₁,₁(x, y) = m² + m + y − x + 1, m = max(x−1, y−1),
// for arbitrarily large positive coordinates.
func (s SquareShell) EncodeBig(x, y *big.Int) (*big.Int, error) {
	if x.Sign() < 1 || y.Sign() < 1 {
		return nil, ErrDomain
	}
	if s.Clockwise {
		x, y = y, x
	}
	m := new(big.Int)
	if x.Cmp(y) >= 0 {
		m.Sub(x, big.NewInt(1))
	} else {
		m.Sub(y, big.NewInt(1))
	}
	z := new(big.Int).Mul(m, m)
	z.Add(z, m)
	z.Add(z, y)
	z.Sub(z, x)
	return z.Add(z, big.NewInt(1)), nil
}

// DecodeBig inverts EncodeBig: m = ⌊√(z−1)⌋, then walk the shell's two
// arms.
func (s SquareShell) DecodeBig(z *big.Int) (*big.Int, *big.Int, error) {
	if z.Sign() < 1 {
		return nil, nil, ErrDomain
	}
	m := new(big.Int).Sub(z, big.NewInt(1))
	m.Sqrt(m)
	r := new(big.Int).Mul(m, m)
	r.Sub(z, r) // 1 … 2m+1
	mp1 := new(big.Int).Add(m, big.NewInt(1))
	var x, y *big.Int
	if r.Cmp(mp1) <= 0 {
		x, y = mp1, r
	} else {
		x = new(big.Int).Lsh(m, 1)
		x.Add(x, big.NewInt(2))
		x.Sub(x, r)
		y = mp1
	}
	if s.Clockwise {
		x, y = y, x
	}
	return x, y, nil
}
