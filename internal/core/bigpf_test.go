package core

import (
	"math/big"
	"testing"
	"testing/quick"
)

// TestSquareShellBigMatchesInt64 cross-validates the two paths.
func TestSquareShellBigMatchesInt64(t *testing.T) {
	for _, cw := range []bool{false, true} {
		s := SquareShell{Clockwise: cw}
		for x := int64(1); x <= 30; x++ {
			for y := int64(1); y <= 30; y++ {
				want := MustEncode(s, x, y)
				got, err := s.EncodeBig(big.NewInt(x), big.NewInt(y))
				if err != nil {
					t.Fatal(err)
				}
				if got.Int64() != want {
					t.Fatalf("EncodeBig(%d, %d) = %s, want %d", x, y, got, want)
				}
				bx, by, err := s.DecodeBig(got)
				if err != nil {
					t.Fatal(err)
				}
				if bx.Int64() != x || by.Int64() != y {
					t.Fatalf("DecodeBig(%s) = (%s, %s)", got, bx, by)
				}
			}
		}
	}
}

// TestSquareShellBigHuge round-trips far beyond int64.
func TestSquareShellBigHuge(t *testing.T) {
	var s SquareShell
	x, _ := new(big.Int).SetString("340282366920938463463374607431768211457", 10) // 2^128+1
	y := big.NewInt(12345)
	z, err := s.EncodeBig(x, y)
	if err != nil {
		t.Fatal(err)
	}
	gx, gy, err := s.DecodeBig(z)
	if err != nil {
		t.Fatal(err)
	}
	if gx.Cmp(x) != 0 || gy.Cmp(y) != 0 {
		t.Errorf("round trip failed: (%s, %s)", gx, gy)
	}
	// The shell identity 𝒜₁,₁(x, 1) = (x−1)² + (x−1) + 2 − x = x²−2x+2.
	z1, err := s.EncodeBig(x, big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(x, x)
	want.Sub(want, new(big.Int).Lsh(x, 1))
	want.Add(want, big.NewInt(2))
	if z1.Cmp(want) != 0 {
		t.Errorf("𝒜₁,₁(x, 1) = %s, want x²−2x+2 = %s", z1, want)
	}
}

// TestSquareShellBigProperty quick-checks the big round trip with mixed
// magnitudes.
func TestSquareShellBigProperty(t *testing.T) {
	f := func(a, b uint32, shift uint8, cw bool) bool {
		s := SquareShell{Clockwise: cw}
		x := new(big.Int).SetUint64(uint64(a) + 1)
		x.Lsh(x, uint(shift%80))
		y := new(big.Int).SetUint64(uint64(b) + 1)
		z, err := s.EncodeBig(x, y)
		if err != nil {
			return false
		}
		gx, gy, err := s.DecodeBig(z)
		return err == nil && gx.Cmp(x) == 0 && gy.Cmp(y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestBigDomain checks domain rejection on both BigPF implementations.
func TestBigDomain(t *testing.T) {
	for _, f := range []BigPF{Diagonal{}, SquareShell{}} {
		if _, err := f.EncodeBig(big.NewInt(0), big.NewInt(3)); err == nil {
			t.Errorf("%s: EncodeBig(0, 3) should fail", f.Name())
		}
		if _, _, err := f.DecodeBig(big.NewInt(-7)); err == nil {
			t.Errorf("%s: DecodeBig(-7) should fail", f.Name())
		}
	}
}
