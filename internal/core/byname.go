package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ByName resolves a storage-mapping name — as printed by Name() — back to
// the mapping, so servers and tools can select mappings from flags and
// snapshot headers without a switch per call site. Supported:
//
//	diagonal, diagonal-twin          𝒟 and its twin (eq. 2.1)
//	square-shell, square-shell-cw    𝒜₁,₁ and its clockwise twin (eq. 3.3)
//	aspect-AxB                       𝒜_{a,b} for any a, b ≥ 1 (§3.2.1)
//	hyperbolic                       ℋ, the optimal-spread PF (§3.2.2)
//	morton                           bit-interleaved 𝓜 (locality extension)
//	hilbert-K                        bounded Hilbert curve of order K
//
// Composite names round-trip too: dovetail(f,g,...) for the §3.2.2
// combinator and transposed(f) for the x↔y exchange. Unknown names return
// an error listing the supported forms.
func ByName(name string) (PF, error) {
	switch name {
	case "diagonal":
		return Diagonal{}, nil
	case "diagonal-twin":
		return Diagonal{Twin: true}, nil
	case "square-shell":
		return SquareShell{}, nil
	case "square-shell-cw":
		return SquareShell{Clockwise: true}, nil
	case "hyperbolic":
		return Hyperbolic{}, nil
	case "morton":
		return Morton{}, nil
	}
	if inner, ok := strings.CutPrefix(name, "transposed("); ok && strings.HasSuffix(inner, ")") {
		f, err := ByName(strings.TrimSuffix(inner, ")"))
		if err != nil {
			return nil, err
		}
		return Transposed{Inner: f}, nil
	}
	if inner, ok := strings.CutPrefix(name, "dovetail("); ok && strings.HasSuffix(inner, ")") {
		parts := strings.Split(strings.TrimSuffix(inner, ")"), ",")
		fs := make([]PF, 0, len(parts))
		for _, p := range parts {
			f, err := ByName(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
		return NewDovetail(fs...)
	}
	if rest, ok := strings.CutPrefix(name, "aspect-"); ok {
		as, bs, found := strings.Cut(rest, "x")
		a, errA := strconv.ParseInt(as, 10, 64)
		b, errB := strconv.ParseInt(bs, 10, 64)
		if found && errA == nil && errB == nil {
			return NewAspect(a, b)
		}
	}
	if rest, ok := strings.CutPrefix(name, "hilbert-"); ok {
		if k, err := strconv.ParseUint(rest, 10, 32); err == nil && k >= 1 && k <= 31 {
			return Hilbert{Order: uint(k)}, nil
		}
	}
	return nil, fmt.Errorf("core: unknown mapping %q (supported: %s)",
		name, strings.Join(MappingNames(), ", "))
}

// MustByName is ByName with a panic on error, for tests and tables.
func MustByName(name string) PF {
	f, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// MappingNames lists the names (and name forms) ByName accepts, sorted.
func MappingNames() []string {
	names := []string{
		"diagonal", "diagonal-twin",
		"square-shell", "square-shell-cw",
		"aspect-<a>x<b>",
		"hyperbolic",
		"morton",
		"hilbert-<k>",
		"dovetail(<f>,<g>,...)",
		"transposed(<f>)",
	}
	sort.Strings(names)
	return names
}
