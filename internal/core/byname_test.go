package core

import (
	"strings"
	"testing"
)

// TestByNameRoundTrip verifies that every mapping ByName can produce is
// found again under its own Name() — the property snapshot loading relies
// on (addresses are only meaningful under the mapping that wrote them).
func TestByNameRoundTrip(t *testing.T) {
	names := []string{
		"diagonal", "diagonal-twin",
		"square-shell", "square-shell-cw",
		"aspect-1x1", "aspect-2x3", "aspect-7x2",
		"hyperbolic",
		"morton",
		"hilbert-8",
		"transposed(diagonal)",
		"dovetail(aspect-1x1,aspect-1x2,aspect-2x1)",
	}
	for _, name := range names {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if f.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, f.Name())
		}
		g, err := ByName(f.Name())
		if err != nil {
			t.Fatalf("ByName(%q) after round trip: %v", f.Name(), err)
		}
		// The two instances must agree pointwise (spot check).
		for _, p := range [][2]int64{{1, 1}, {3, 7}, {100, 2}} {
			zf, errf := f.Encode(p[0], p[1])
			zg, errg := g.Encode(p[0], p[1])
			if (errf == nil) != (errg == nil) || zf != zg {
				t.Errorf("%q: Encode(%d,%d) disagrees after round trip: %d/%v vs %d/%v",
					name, p[0], p[1], zf, errf, zg, errg)
			}
		}
	}
}

func TestByNameErrors(t *testing.T) {
	for _, name := range []string{"", "nope", "aspect-0x3", "aspect-x", "hilbert-0", "hilbert-99", "dovetail(nope)", "transposed(nope)"} {
		if f, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) = %v, want error", name, f.Name())
		}
	}
	if _, err := ByName("zorp"); err == nil || !strings.Contains(err.Error(), "supported") {
		t.Errorf("unknown-name error should list supported forms, got %v", err)
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName of unknown name did not panic")
		}
	}()
	MustByName("definitely-not-a-mapping")
}
