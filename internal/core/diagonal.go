package core

import (
	"math/big"

	"pairfn/internal/numtheory"
)

// Diagonal is the Cauchy–Cantor diagonal pairing function 𝒟 of eq. 2.1:
//
//	𝒟(x, y) = C(x+y−1, 2) + y = (x+y−1)(x+y−2)/2 + y.
//
// It enumerates N×N upward along the diagonal shells x+y = 2, 3, 4, …
// (Fig. 2). Up to exchanging x and y it is the only quadratic polynomial PF
// (Fueter–Pólya). If Twin is true the mirrored polynomial 𝒟(y, x) is used.
//
// The zero value is the paper's 𝒟.
type Diagonal struct {
	// Twin selects the mirrored polynomial obtained by exchanging x and y.
	Twin bool
}

// Name implements PF.
func (d Diagonal) Name() string {
	if d.Twin {
		return "diagonal-twin"
	}
	return "diagonal"
}

// Encode implements PF. The diagonal shell of ⟨x, y⟩ is s = x+y; the shell's
// first address is C(s−1, 2) + 1 and positions are taken in increasing y.
func (d Diagonal) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	if d.Twin {
		x, y = y, x
	}
	s, err := numtheory.AddCheck(x, y)
	if err != nil {
		return 0, err
	}
	tri, err := numtheory.Triangular(s - 2) // C(s−1, 2) = (s−1)(s−2)/2
	if err != nil {
		return 0, err
	}
	return numtheory.AddCheck(tri, y)
}

// Decode implements PF. Given z, the shell index is the largest s with
// C(s−1, 2) < z, recovered through the triangular root of z−1.
func (d Diagonal) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	k := numtheory.TriangularRoot(z - 1) // largest k with k(k+1)/2 ≤ z−1
	tri, err := numtheory.Triangular(k)
	if err != nil {
		return 0, 0, err
	}
	y := z - tri
	x := k + 2 - y
	if d.Twin {
		x, y = y, x
	}
	return x, y, nil
}

// EncodeBig returns 𝒟(x, y) for arbitrarily large positive x, y.
func (d Diagonal) EncodeBig(x, y *big.Int) (*big.Int, error) {
	if x.Sign() < 1 || y.Sign() < 1 {
		return nil, ErrDomain
	}
	if d.Twin {
		x, y = y, x
	}
	s := new(big.Int).Add(x, y) // s = x+y
	a := new(big.Int).Sub(s, big.NewInt(1))
	b := new(big.Int).Sub(s, big.NewInt(2))
	tri := new(big.Int).Mul(a, b)
	tri.Rsh(tri, 1) // (s−1)(s−2)/2
	return tri.Add(tri, y), nil
}

// DecodeBig inverts EncodeBig.
func (d Diagonal) DecodeBig(z *big.Int) (x, y *big.Int, err error) {
	if z.Sign() < 1 {
		return nil, nil, ErrDomain
	}
	// Largest k with k(k+1)/2 ≤ z−1, via k = ⌊(√(8(z−1)+1) − 1)/2⌋ with
	// exact integer sqrt, then local correction.
	m := new(big.Int).Sub(z, big.NewInt(1))
	t := new(big.Int).Lsh(m, 3)
	t.Add(t, big.NewInt(1))
	t.Sqrt(t)
	t.Sub(t, big.NewInt(1))
	k := t.Rsh(t, 1)
	tri := func(k *big.Int) *big.Int {
		r := new(big.Int).Add(k, big.NewInt(1))
		r.Mul(r, k)
		return r.Rsh(r, 1)
	}
	for tri(new(big.Int).Add(k, big.NewInt(1))).Cmp(m) <= 0 {
		k.Add(k, big.NewInt(1))
	}
	for k.Sign() > 0 && tri(k).Cmp(m) > 0 {
		k.Sub(k, big.NewInt(1))
	}
	y = new(big.Int).Sub(z, tri(k))
	x = new(big.Int).Add(k, big.NewInt(2))
	x.Sub(x, y)
	if d.Twin {
		x, y = y, x
	}
	return x, y, nil
}
