package core

import (
	"math/big"
	"testing"
	"testing/quick"
)

// TestDiagonalBigMatchesInt64 checks the math/big path against the int64
// path on the int64-safe range.
func TestDiagonalBigMatchesInt64(t *testing.T) {
	var d Diagonal
	for _, p := range [][2]int64{{1, 1}, {3, 4}, {1000, 1}, {1, 1000}, {123456, 654321}} {
		want, err := d.Encode(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.EncodeBig(big.NewInt(p[0]), big.NewInt(p[1]))
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != want {
			t.Errorf("EncodeBig(%d, %d) = %s, want %d", p[0], p[1], got, want)
		}
		bx, by, err := d.DecodeBig(got)
		if err != nil {
			t.Fatal(err)
		}
		if bx.Int64() != p[0] || by.Int64() != p[1] {
			t.Errorf("DecodeBig(%s) = (%s, %s), want (%d, %d)", got, bx, by, p[0], p[1])
		}
	}
}

// TestDiagonalBigHuge round-trips coordinates far beyond int64.
func TestDiagonalBigHuge(t *testing.T) {
	var d Diagonal
	x, _ := new(big.Int).SetString("123456789012345678901234567890", 10)
	y, _ := new(big.Int).SetString("987654321098765432109876543210", 10)
	z, err := d.EncodeBig(x, y)
	if err != nil {
		t.Fatal(err)
	}
	gx, gy, err := d.DecodeBig(z)
	if err != nil {
		t.Fatal(err)
	}
	if gx.Cmp(x) != 0 || gy.Cmp(y) != 0 {
		t.Errorf("big round trip failed: got (%s, %s)", gx, gy)
	}
}

// TestDiagonalBigProperty is the quick-check form of the big round trip.
func TestDiagonalBigProperty(t *testing.T) {
	var d Diagonal
	f := func(a, b uint32, twin bool) bool {
		dd := Diagonal{Twin: twin}
		x := new(big.Int).SetUint64(uint64(a) + 1)
		y := new(big.Int).SetUint64(uint64(b) + 1)
		// Stretch beyond int64 occasionally.
		x.Mul(x, big.NewInt(1<<40))
		z, err := dd.EncodeBig(x, y)
		if err != nil {
			return false
		}
		gx, gy, err := dd.DecodeBig(z)
		if err != nil {
			return false
		}
		_ = d
		return gx.Cmp(x) == 0 && gy.Cmp(y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDiagonalBigDomain checks domain validation on the big path.
func TestDiagonalBigDomain(t *testing.T) {
	var d Diagonal
	if _, err := d.EncodeBig(big.NewInt(0), big.NewInt(1)); err == nil {
		t.Error("EncodeBig(0, 1) should fail")
	}
	if _, _, err := d.DecodeBig(big.NewInt(0)); err == nil {
		t.Error("DecodeBig(0) should fail")
	}
}

// TestDiagonalOverflow checks ErrOverflow near the int64 boundary.
func TestDiagonalOverflow(t *testing.T) {
	var d Diagonal
	if _, err := d.Encode(1<<62, 1<<62); err == nil {
		t.Error("Encode(2^62, 2^62) should overflow")
	}
	// A value that fits: x+y ≈ 2^32 gives z ≈ 2^63/2.
	if _, err := d.Encode(1<<31, 1<<31); err != nil {
		t.Errorf("Encode(2^31, 2^31) should fit: %v", err)
	}
}

// TestDiagonalShellStructure verifies that 𝒟 fills each diagonal shell
// contiguously upward: along shell s (x+y = s), values are consecutive.
func TestDiagonalShellStructure(t *testing.T) {
	var d Diagonal
	for s := int64(2); s <= 100; s++ {
		prev := int64(0)
		for y := int64(1); y < s; y++ {
			z := MustEncode(d, s-y, y)
			if y == 1 {
				// First element of shell s is C(s−1, 2) + 1.
				want := (s-1)*(s-2)/2 + 1
				if z != want {
					t.Fatalf("shell %d starts at %d, want %d", s, z, want)
				}
			} else if z != prev+1 {
				t.Fatalf("shell %d not contiguous at y = %d: %d after %d", s, y, z, prev)
			}
			prev = z
		}
	}
}
