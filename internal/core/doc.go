// Package core implements the pairing functions of Rosenberg's "Efficient
// Pairing Functions — and Why You Should Care" (IPPS 2002): bijections
// between N×N and N (N = positive integers) together with the injective
// storage mappings derived from them.
//
// The package provides:
//
//   - the Cauchy–Cantor diagonal PF 𝒟 (eq. 2.1) and its twin,
//   - the square-shell PF 𝒜₁,₁ (eq. 3.3) and its clockwise twin,
//   - the aspect-ratio PFs 𝒜_{a,b} with perfect compactness (eq. 3.2),
//   - the dovetail combinator of §3.2.2,
//   - the hyperbolic PF ℋ with optimal Θ(n log n) spread (eq. 3.4),
//   - the generic Procedure PF-Constructor of §3.1 (Theorem 3.1),
//   - row-/column-major baselines for comparison, and
//   - Morton (Z-order) and Hilbert curves as locality baselines beyond
//     the paper's text.
//
// All coordinates and addresses are 1-based, matching the paper's
// convention N = {1, 2, 3, …}.
//
// # Overflow
//
// All arithmetic is exact: Encode returns ErrOverflow rather than a
// wrapped or saturated value when the address does not fit in int64, and
// Decode returns ErrDomain for arguments outside N. No floating point
// participates in any load-bearing computation — a PF is a bijection, and
// a single rounding error destroys bijectivity. BigPF provides math/big
// variants where values beyond int64 are needed.
//
// # Concurrency
//
// Every PF value in this package is stateless (or holds only immutable
// configuration fixed at construction), so all Encode/Decode/Name calls
// are safe for concurrent use without synchronization. InstrumentPF wraps
// a PF with lock-free atomic call counters (internal/obs) and preserves
// this property. (Enumerated, which memoizes shell prefixes, guards its
// table with a mutex and stays safe under the same contract.)
//
// # Batch surface
//
// EncodeBatch and DecodeBatch (batch.go) map whole slices through a PF in
// one call, writing into caller-owned destination slices with zero
// allocations. PFs implementing BatchEncoder/BatchDecoder amortize
// per-call state across the slice — the shell walkers reuse the previous
// element's shell when consecutive addresses land nearby, skipping the
// Isqrt that dominates scalar Decode — and every other PF gets a correct
// scalar-loop fallback. Failed elements are written as 0 (never a valid
// address or coordinate, since everything is 1-based) and reported through
// an optional callback, so error handling stays off the hot path. This is
// the surface the tabled batch planner drives (internal/tabled).
package core
