package core

import (
	"fmt"
	"strings"

	"pairfn/internal/numtheory"
)

// Dovetail combines m pairing functions 𝒜₁ … 𝒜_m into a single storage
// mapping whose compactness is at worst m times that of the most compact
// constituent (§3.2.2):
//
//	𝒜(x, y) = min_k { m·𝒜_k(x, y) + k − 1 + 1 }
//
// (the trailing +1 keeps addresses 1-based: constituent k owns the residue
// class k−1 (mod m) of the 0-based addresses, exactly as in the paper).
//
// The result is injective — distinct positions map to distinct addresses —
// and satisfies S_𝒜(n) ≤ m · min_k S_{𝒜_k}(n), which is the property §3.2.2
// uses it for. It is not surjective onto N: a class-k address that is not
// the minimum for its position is never used, and Decode reports
// ErrNotInRange for it. As a storage mapping (the paper's application)
// injectivity plus the spread bound is exactly what is required.
type Dovetail struct {
	fs []PF
}

// NewDovetail returns the dovetail of the given PFs, which must be
// non-empty.
func NewDovetail(fs ...PF) (*Dovetail, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("core: NewDovetail requires at least one PF")
	}
	return &Dovetail{fs: append([]PF(nil), fs...)}, nil
}

// MustDovetail is NewDovetail with a panic on error.
func MustDovetail(fs ...PF) *Dovetail {
	d, err := NewDovetail(fs...)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements PF.
func (d *Dovetail) Name() string {
	names := make([]string, len(d.fs))
	for i, f := range d.fs {
		names[i] = f.Name()
	}
	return "dovetail(" + strings.Join(names, ",") + ")"
}

// Constituents returns the dovetailed PFs in order.
func (d *Dovetail) Constituents() []PF { return append([]PF(nil), d.fs...) }

// Encode implements PF: the minimum over the constituents' signed copies.
func (d *Dovetail) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	m := int64(len(d.fs))
	best := int64(-1)
	var firstErr error
	for k, f := range d.fs {
		z, err := f.Encode(x, y)
		if err != nil {
			// One constituent overflowing does not overflow the min
			// unless all do.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		v, err := numtheory.MulCheck(m, z)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// 0-based class value m·z + k − m = m·(z−1) + k; store 1-based.
		v = v - m + int64(k) + 1
		if best < 0 || v < best {
			best = v
		}
	}
	if best < 0 {
		return 0, firstErr
	}
	return best, nil
}

// Decode implements PF. The residue class of z−1 identifies the
// constituent; the quotient is its address. Because the dovetail is not
// surjective, the candidate preimage is verified by re-encoding.
func (d *Dovetail) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	m := int64(len(d.fs))
	k := (z - 1) % m
	zk := (z-1)/m + 1
	x, y, err := d.fs[k].Decode(zk)
	if err != nil {
		return 0, 0, err
	}
	back, err := d.Encode(x, y)
	if err != nil {
		return 0, 0, err
	}
	if back != z {
		return 0, 0, fmt.Errorf("%w: %d belongs to %s but position (%d, %d) dovetails to %d",
			ErrNotInRange, z, d.fs[k].Name(), x, y, back)
	}
	return x, y, nil
}
