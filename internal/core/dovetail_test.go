package core

import (
	"errors"
	"testing"
)

// TestDovetailInjective checks injectivity of the dovetailed mapping on a
// large box.
func TestDovetailInjective(t *testing.T) {
	d := MustDovetail(MustAspect(1, 1), MustAspect(1, 2), MustAspect(2, 1))
	seen := make(map[int64][2]int64)
	for x := int64(1); x <= 50; x++ {
		for y := int64(1); y <= 50; y++ {
			z, err := d.Encode(x, y)
			if err != nil {
				t.Fatalf("Encode(%d, %d): %v", x, y, err)
			}
			if p, dup := seen[z]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) → %d", p[0], p[1], x, y, z)
			}
			seen[z] = [2]int64{x, y}
		}
	}
}

// TestDovetailDecode checks that Decode inverts Encode and that addresses
// outside the image report ErrNotInRange.
func TestDovetailDecode(t *testing.T) {
	d := MustDovetail(SquareShell{}, Diagonal{})
	inImage := make(map[int64]bool)
	for x := int64(1); x <= 40; x++ {
		for y := int64(1); y <= 40; y++ {
			z := MustEncode(d, x, y)
			inImage[z] = true
			gx, gy, err := d.Decode(z)
			if err != nil {
				t.Fatalf("Decode(%d): %v", z, err)
			}
			if gx != x || gy != y {
				t.Fatalf("Decode(Encode(%d, %d)) = (%d, %d)", x, y, gx, gy)
			}
		}
	}
	// Addresses ≤ 2·40 that are not in the image must be rejected; the
	// image over the box covers all small addresses that belong to it.
	var holes int
	for z := int64(1); z <= 80; z++ {
		if inImage[z] {
			continue
		}
		if _, _, err := d.Decode(z); err == nil {
			// A valid preimage outside the 40×40 box is possible; verify.
			x, y, _ := d.Decode(z)
			if x <= 40 && y <= 40 {
				t.Errorf("Decode(%d) = (%d, %d) inside box but address not in image", z, x, y)
			}
		} else if !errors.Is(err, ErrNotInRange) {
			t.Errorf("Decode(%d) err = %v, want ErrNotInRange", z, err)
		} else {
			holes++
		}
	}
	if holes == 0 {
		t.Error("expected some out-of-range addresses (dovetail is not surjective)")
	}
}

// TestDovetailSpreadBound verifies §3.2.2 (experiment E8):
// S_A(n) ≤ m·min_k S_{A_k}(n), checked pointwise — for every position, the
// dovetailed address is within m× the best constituent address.
func TestDovetailSpreadBound(t *testing.T) {
	fs := []PF{MustAspect(1, 1), MustAspect(1, 3), MustAspect(3, 1)}
	d := MustDovetail(fs...)
	m := int64(len(fs))
	for x := int64(1); x <= 60; x++ {
		for y := int64(1); y <= 60; y++ {
			z := MustEncode(d, x, y)
			best := int64(-1)
			for _, f := range fs {
				v := MustEncode(f, x, y)
				if best < 0 || v < best {
					best = v
				}
			}
			if z > m*best {
				t.Fatalf("(%d, %d): dovetail %d > %d × best %d", x, y, z, m, best)
			}
		}
	}
}

// TestDovetailSingle checks the degenerate single-constituent dovetail is
// the constituent itself (addresses unchanged).
func TestDovetailSingle(t *testing.T) {
	d := MustDovetail(Diagonal{})
	for x := int64(1); x <= 20; x++ {
		for y := int64(1); y <= 20; y++ {
			if MustEncode(d, x, y) != MustEncode(Diagonal{}, x, y) {
				t.Fatalf("single dovetail differs at (%d, %d)", x, y)
			}
		}
	}
}

// TestDovetailEmpty checks constructor validation.
func TestDovetailEmpty(t *testing.T) {
	if _, err := NewDovetail(); err == nil {
		t.Error("NewDovetail() should fail")
	}
}

// TestDovetailResidueClasses checks that constituent k's addresses land in
// residue class (k−1) mod m of z−1, the signature §3.2.2 uses.
func TestDovetailResidueClasses(t *testing.T) {
	fs := []PF{MustAspect(1, 1), MustAspect(1, 2)}
	d := MustDovetail(fs...)
	m := int64(len(fs))
	for x := int64(1); x <= 30; x++ {
		for y := int64(1); y <= 30; y++ {
			z := MustEncode(d, x, y)
			k := (z - 1) % m
			// The class-k constituent must reproduce the quotient.
			zk := (z-1)/m + 1
			if got := MustEncode(fs[k], x, y); got != zk {
				t.Fatalf("(%d, %d): class %d quotient %d ≠ constituent address %d",
					x, y, k, zk, got)
			}
		}
	}
}
