package core_test

import (
	"fmt"

	"pairfn/internal/core"
)

func ExampleDiagonal() {
	var d core.Diagonal
	z, _ := d.Encode(3, 4) // C(6, 2) + 4
	x, y, _ := d.Decode(z)
	fmt.Println(z, x, y)
	// Output: 19 3 4
}

func ExampleSquareShell() {
	var s core.SquareShell
	// Row 1 of Fig. 3 is the perfect squares.
	for y := int64(1); y <= 5; y++ {
		z, _ := s.Encode(1, y)
		fmt.Print(z, " ")
	}
	fmt.Println()
	// Output: 1 4 9 16 25
}

func ExampleHyperbolic() {
	var h core.Hyperbolic
	// Shell xy = 4 holds the three factorizations of 4, in reverse
	// lexicographic order after the D(3) = 5 earlier positions.
	for _, p := range [][2]int64{{4, 1}, {2, 2}, {1, 4}} {
		z, _ := h.Encode(p[0], p[1])
		fmt.Print(z, " ")
	}
	fmt.Println()
	// Output: 6 7 8
}

func ExampleNewEnumerated() {
	// Procedure PF-Constructor (Thm 3.1): any shell partition is a PF.
	f := core.NewEnumerated(core.DiagonalShells{})
	z, _ := f.Encode(3, 4)
	fmt.Println(z) // agrees with the closed form 𝒟
	// Output: 19
}

func ExampleNewDovetail() {
	// Dovetailing is compact for every constituent's favorite shape at the
	// price of a factor m = 2.
	dv, _ := core.NewDovetail(core.MustAspect(1, 2), core.MustAspect(2, 1))
	z, _ := dv.Encode(4, 2) // a 2:1-shaped position
	fmt.Println(z <= 2*8)   // within 2× the 4×2 array's size
	// Output: true
}

func ExampleMorton() {
	var m core.Morton
	z, _ := m.Encode(3, 3) // interleave(2)<<1 | interleave(2), plus 1
	fmt.Println(z)
	// Output: 13
}

func ExampleHilbert() {
	h := core.Hilbert{Order: 1}
	for z := int64(1); z <= 4; z++ {
		x, y, _ := h.Decode(z)
		fmt.Printf("(%d,%d) ", x, y)
	}
	fmt.Println()
	// Output: (1,1) (1,2) (2,2) (2,1)
}

func ExampleTransposed() {
	t := core.Transposed{Inner: core.Diagonal{}}
	a, _ := core.Diagonal{}.Encode(2, 5)
	b, _ := t.Encode(5, 2)
	fmt.Println(a == b)
	// Output: true
}
