package core

import "testing"

// fig2 is the 8×8 sample of the diagonal PF 𝒟 printed in Fig. 2 of the
// paper, transcribed verbatim.
var fig2 = [8][8]int64{
	{1, 3, 6, 10, 15, 21, 28, 36},
	{2, 5, 9, 14, 20, 27, 35, 44},
	{4, 8, 13, 19, 26, 34, 43, 53},
	{7, 12, 18, 25, 33, 42, 52, 63},
	{11, 17, 24, 32, 41, 51, 62, 74},
	{16, 23, 31, 40, 50, 61, 73, 86},
	{22, 30, 39, 49, 60, 72, 85, 99},
	{29, 38, 48, 59, 71, 84, 98, 113},
}

// fig3 is the 8×8 sample of the square-shell PF 𝒜₁,₁ printed in Fig. 3.
var fig3 = [8][8]int64{
	{1, 4, 9, 16, 25, 36, 49, 64},
	{2, 3, 8, 15, 24, 35, 48, 63},
	{5, 6, 7, 14, 23, 34, 47, 62},
	{10, 11, 12, 13, 22, 33, 46, 61},
	{17, 18, 19, 20, 21, 32, 45, 60},
	{26, 27, 28, 29, 30, 31, 44, 59},
	{37, 38, 39, 40, 41, 42, 43, 58},
	{50, 51, 52, 53, 54, 55, 56, 57},
}

// fig4 is the 8×7 sample of the hyperbolic PF ℋ printed in Fig. 4.
var fig4 = [8][7]int64{
	{1, 3, 5, 8, 10, 14, 16},
	{2, 7, 13, 19, 26, 34, 40},
	{4, 12, 22, 33, 44, 56, 69},
	{6, 18, 32, 48, 64, 81, 99},
	{9, 25, 43, 63, 86, 108, 130},
	{11, 31, 55, 80, 107, 136, 165},
	{15, 39, 68, 98, 129, 164, 200},
	{17, 47, 79, 116, 154, 193, 235},
}

// TestFig2Exact reproduces Fig. 2 exactly (experiment E1).
func TestFig2Exact(t *testing.T) {
	var d Diagonal
	for i := range fig2 {
		for j := range fig2[i] {
			x, y := int64(i+1), int64(j+1)
			got, err := d.Encode(x, y)
			if err != nil {
				t.Fatalf("𝒟(%d, %d): %v", x, y, err)
			}
			if got != fig2[i][j] {
				t.Errorf("𝒟(%d, %d) = %d, paper says %d", x, y, got, fig2[i][j])
			}
		}
	}
}

// TestFig2Twin checks the twin is the transpose of Fig. 2.
func TestFig2Twin(t *testing.T) {
	tw := Diagonal{Twin: true}
	for i := range fig2 {
		for j := range fig2[i] {
			got, err := tw.Encode(int64(j+1), int64(i+1))
			if err != nil {
				t.Fatal(err)
			}
			if got != fig2[i][j] {
				t.Errorf("twin(%d, %d) = %d, want %d", j+1, i+1, got, fig2[i][j])
			}
		}
	}
}

// TestFig3Exact reproduces Fig. 3 exactly (experiment E2).
func TestFig3Exact(t *testing.T) {
	var s SquareShell
	for i := range fig3 {
		for j := range fig3[i] {
			x, y := int64(i+1), int64(j+1)
			got, err := s.Encode(x, y)
			if err != nil {
				t.Fatalf("𝒜₁,₁(%d, %d): %v", x, y, err)
			}
			if got != fig3[i][j] {
				t.Errorf("𝒜₁,₁(%d, %d) = %d, paper says %d", x, y, got, fig3[i][j])
			}
		}
	}
}

// TestFig3Clockwise checks the clockwise twin transposes Fig. 3.
func TestFig3Clockwise(t *testing.T) {
	s := SquareShell{Clockwise: true}
	for i := range fig3 {
		for j := range fig3[i] {
			got, err := s.Encode(int64(j+1), int64(i+1))
			if err != nil {
				t.Fatal(err)
			}
			if got != fig3[i][j] {
				t.Errorf("cw(%d, %d) = %d, want %d", j+1, i+1, got, fig3[i][j])
			}
		}
	}
}

// TestFig4Exact reproduces Fig. 4 exactly (experiment E3).
func TestFig4Exact(t *testing.T) {
	var h Hyperbolic
	for i := range fig4 {
		for j := range fig4[i] {
			x, y := int64(i+1), int64(j+1)
			got, err := h.Encode(x, y)
			if err != nil {
				t.Fatalf("ℋ(%d, %d): %v", x, y, err)
			}
			if got != fig4[i][j] {
				t.Errorf("ℋ(%d, %d) = %d, paper says %d", x, y, got, fig4[i][j])
			}
		}
	}
}

// TestFig4Cached reproduces Fig. 4 with the cached variant, both inside and
// beyond the table limit (exercising the fallback path).
func TestFig4Cached(t *testing.T) {
	for _, limit := range []int64{1, 10, 1000} {
		h := NewCachedHyperbolic(limit)
		for i := range fig4 {
			for j := range fig4[i] {
				x, y := int64(i+1), int64(j+1)
				got, err := h.Encode(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if got != fig4[i][j] {
					t.Errorf("limit %d: ℋ(%d, %d) = %d, want %d", limit, x, y, got, fig4[i][j])
				}
			}
		}
	}
}

// TestTableHelper checks the figure-printing helper against Fig. 2.
func TestTableHelper(t *testing.T) {
	tab := Table(Diagonal{}, 8, 8)
	for i := range fig2 {
		for j := range fig2[i] {
			if tab[i][j] != fig2[i][j] {
				t.Fatalf("Table[%d][%d] = %d, want %d", i, j, tab[i][j], fig2[i][j])
			}
		}
	}
}

// TestPaperSpreadExamples checks the §3.2 spot values. Exactly:
// 𝒟(1,1) = 1, 𝒟(n,n) = 2n²−2n+1 (the paper rounds this to "2n²"), and
// 𝒟(1,n) = (n²+n)/2 (exact as stated).
func TestPaperSpreadExamples(t *testing.T) {
	var d Diagonal
	for _, n := range []int64{1, 2, 10, 100, 4096, 1 << 20} {
		want := 2*n*n - 2*n + 1
		if got := MustEncode(d, n, n); got != want {
			t.Errorf("𝒟(%d, %d) = %d, want 2n²−2n+1 = %d", n, n, got, want)
		}
		// The paper's "2n²" is the right leading order: within 2n of it.
		if got := MustEncode(d, n, n); 2*n*n-got > 2*n {
			t.Errorf("𝒟(%d, %d) = %d strays from the paper's 2n² by more than 2n", n, n, got)
		}
		if got := MustEncode(d, 1, n); got != (n*n+n)/2 {
			t.Errorf("𝒟(1, %d) = %d, want (n²+n)/2 = %d", n, got, (n*n+n)/2)
		}
	}
}
