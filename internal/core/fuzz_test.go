package core

import "testing"

// Native fuzz targets. Under plain `go test` they run their seed corpus;
// under `go test -fuzz=FuzzX` they explore. Each asserts the bijection
// laws on arbitrary inputs with graceful domain/overflow handling.

func fuzzRoundTrip(f PF, coordCap int64) func(*testing.T, int64, int64) {
	return func(t *testing.T, a, b int64) {
		x := a % coordCap
		if x < 0 {
			x = -x
		}
		x++
		y := b % coordCap
		if y < 0 {
			y = -y
		}
		y++
		z, err := f.Encode(x, y)
		if err != nil {
			return // overflow: legitimate for huge coordinates
		}
		gx, gy, err := f.Decode(z)
		if err != nil {
			t.Fatalf("%s: Decode(%d): %v", f.Name(), z, err)
		}
		if gx != x || gy != y {
			t.Fatalf("%s: (%d, %d) → %d → (%d, %d)", f.Name(), x, y, z, gx, gy)
		}
	}
}

func FuzzDiagonalRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(8), int64(8))
	f.Add(int64(1<<30), int64(3))
	f.Fuzz(fuzzRoundTrip(Diagonal{}, 1<<31))
}

func FuzzSquareShellRoundTrip(f *testing.F) {
	f.Add(int64(5), int64(5))
	f.Add(int64(1), int64(1<<30))
	f.Fuzz(fuzzRoundTrip(SquareShell{}, 1<<31))
}

func FuzzHyperbolicRoundTrip(f *testing.F) {
	f.Add(int64(6), int64(6))
	f.Add(int64(997), int64(2))
	f.Fuzz(fuzzRoundTrip(Hyperbolic{}, 2000))
}

func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(int64(3), int64(3))
	f.Add(int64(1<<20), int64(1<<20))
	f.Fuzz(fuzzRoundTrip(Morton{}, 1<<31))
}

func FuzzAspectRoundTrip(f *testing.F) {
	f.Add(int64(2), int64(3), int64(10), int64(20))
	f.Fuzz(func(t *testing.T, ar, br, xr, yr int64) {
		a := ar%5 + 1
		if a < 1 {
			a += 5
		}
		b := br%5 + 1
		if b < 1 {
			b += 5
		}
		fuzzRoundTrip(MustAspect(a, b), 1<<20)(t, xr, yr)
	})
}

// FuzzDecodeTotal: every positive address decodes and re-encodes for the
// total PFs.
func FuzzDecodeTotal(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(113))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, z int64) {
		z = z % (1 << 40)
		if z < 1 {
			z = -z + 1
		}
		for _, pf := range []PF{Diagonal{}, SquareShell{}, Morton{}} {
			x, y, err := pf.Decode(z)
			if err != nil {
				t.Fatalf("%s: Decode(%d): %v", pf.Name(), z, err)
			}
			back, err := pf.Encode(x, y)
			if err != nil || back != z {
				t.Fatalf("%s: Encode(Decode(%d)) = %d, %v", pf.Name(), z, back, err)
			}
		}
	})
}
