package core

import "fmt"

// Hilbert is the Hilbert space-filling curve on the fixed square
// [1, 2^Order]², the locality gold standard among storage mappings:
// consecutive addresses are always 4-adjacent cells, so every traversal
// has the best attainable page behaviour. Like RowMajor it is a *bounded*
// mapping, not a PF on all of N×N (positions outside the square return
// ErrDomain) — which is exactly the §3 trade-off from the other side:
// perfect locality and perfect compactness on its square, but no
// extendibility at all; growing past 2^Order means remapping everything.
// Compare core.Morton (unbounded, dyadic locality) and the paper's ℋ
// (unbounded, optimal spread, no locality).
type Hilbert struct {
	// Order k fixes the square side 2^k; 1 ≤ Order ≤ 31.
	Order uint
}

// Name implements PF.
func (h Hilbert) Name() string { return fmt.Sprintf("hilbert-%d", h.Order) }

// Side returns the square's side length 2^Order.
func (h Hilbert) Side() int64 { return int64(1) << h.Order }

func (h Hilbert) check() error {
	if h.Order < 1 || h.Order > 31 {
		return fmt.Errorf("%w: hilbert order %d outside [1, 31]", ErrDomain, h.Order)
	}
	return nil
}

// Encode implements PF on the bounded square, using the classic
// rotate-and-accumulate walk from the top bit down.
func (h Hilbert) Encode(x, y int64) (int64, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	side := h.Side()
	if x > side || y > side {
		return 0, fmt.Errorf("%w: (%d, %d) outside the %d×%d Hilbert square",
			ErrDomain, x, y, side, side)
	}
	ux, uy := x-1, y-1
	var d int64
	for s := side / 2; s > 0; s /= 2 {
		var rx, ry int64
		if ux&s > 0 {
			rx = 1
		}
		if uy&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		ux, uy = hilbertRotate(side, ux, uy, rx, ry)
	}
	return d + 1, nil
}

// Decode implements PF on the bounded square.
func (h Hilbert) Decode(z int64) (int64, int64, error) {
	if err := h.check(); err != nil {
		return 0, 0, err
	}
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	side := h.Side()
	if z > side*side {
		return 0, 0, fmt.Errorf("%w: address %d outside the %d-cell Hilbert square",
			ErrDomain, z, side*side)
	}
	t := z - 1
	var ux, uy int64
	for s := int64(1); s < side; s *= 2 {
		rx := (t / 2) & 1
		ry := (t ^ rx) & 1
		ux, uy = hilbertRotate(s, ux, uy, rx, ry)
		ux += s * rx
		uy += s * ry
		t /= 4
	}
	return ux + 1, uy + 1, nil
}

// hilbertRotate flips/rotates a quadrant-relative coordinate pair.
func hilbertRotate(s, x, y, rx, ry int64) (int64, int64) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
