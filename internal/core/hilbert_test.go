package core

import (
	"testing"
	"testing/quick"
)

func TestHilbertBijectionOnSquare(t *testing.T) {
	for _, order := range []uint{1, 2, 3, 5} {
		h := Hilbert{Order: order}
		side := h.Side()
		seen := make(map[int64][2]int64, side*side)
		for x := int64(1); x <= side; x++ {
			for y := int64(1); y <= side; y++ {
				z := MustEncode(h, x, y)
				if z < 1 || z > side*side {
					t.Fatalf("order %d: address %d outside [1, %d]", order, z, side*side)
				}
				if p, dup := seen[z]; dup {
					t.Fatalf("order %d: collision (%v)/(%d,%d) → %d", order, p, x, y, z)
				}
				seen[z] = [2]int64{x, y}
				gx, gy := MustDecode(h, z)
				if gx != x || gy != y {
					t.Fatalf("order %d: round trip (%d,%d) → %d → (%d,%d)", order, x, y, z, gx, gy)
				}
			}
		}
		if int64(len(seen)) != side*side {
			t.Fatalf("order %d: %d addresses, want %d", order, len(seen), side*side)
		}
	}
}

// TestHilbertAdjacency is the curve's defining property: consecutive
// addresses are 4-adjacent cells (Manhattan distance exactly 1) — locality
// no unbounded PF in the paper can offer.
func TestHilbertAdjacency(t *testing.T) {
	h := Hilbert{Order: 6}
	side := h.Side()
	px, py := MustDecode(h, 1)
	for z := int64(2); z <= side*side; z++ {
		x, y := MustDecode(h, z)
		dx, dy := x-px, y-py
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("addresses %d and %d are at (%d,%d)→(%d,%d), not adjacent",
				z-1, z, px, py, x, y)
		}
		px, py = x, y
	}
}

// TestHilbertKnownOrder1: the order-1 curve visits (1,1),(1,2),(2,2),(2,1).
func TestHilbertKnownOrder1(t *testing.T) {
	h := Hilbert{Order: 1}
	want := [][2]int64{{1, 1}, {1, 2}, {2, 2}, {2, 1}}
	for i, w := range want {
		x, y := MustDecode(h, int64(i)+1)
		if x != w[0] || y != w[1] {
			t.Errorf("d = %d: (%d, %d), want (%d, %d)", i+1, x, y, w[0], w[1])
		}
	}
}

// TestHilbertQuadrantContiguity: each quadrant of the square is one
// contiguous quarter of the address range (the recursive structure).
func TestHilbertQuadrantContiguity(t *testing.T) {
	h := Hilbert{Order: 5}
	side := h.Side()
	half := side / 2
	quarter := side * side / 4
	for qx := int64(0); qx < 2; qx++ {
		for qy := int64(0); qy < 2; qy++ {
			min, max := int64(1<<62), int64(0)
			for dx := int64(1); dx <= half; dx++ {
				for dy := int64(1); dy <= half; dy++ {
					z := MustEncode(h, qx*half+dx, qy*half+dy)
					if z < min {
						min = z
					}
					if z > max {
						max = z
					}
				}
			}
			if max-min+1 != quarter {
				t.Errorf("quadrant (%d,%d) spans [%d, %d], want contiguous %d",
					qx, qy, min, max, quarter)
			}
		}
	}
}

func TestHilbertDomainErrors(t *testing.T) {
	h := Hilbert{Order: 3}
	if _, err := h.Encode(9, 1); err == nil {
		t.Error("x beyond the square should fail")
	}
	if _, err := h.Encode(0, 1); err == nil {
		t.Error("x = 0 should fail")
	}
	if _, _, err := h.Decode(65); err == nil {
		t.Error("address beyond side² should fail")
	}
	if _, _, err := h.Decode(0); err == nil {
		t.Error("address 0 should fail")
	}
	bad := Hilbert{Order: 0}
	if _, err := bad.Encode(1, 1); err == nil {
		t.Error("order 0 should fail")
	}
	big := Hilbert{Order: 40}
	if _, err := big.Encode(1, 1); err == nil {
		t.Error("order 40 should fail")
	}
}

func TestHilbertQuickRoundTrip(t *testing.T) {
	h := Hilbert{Order: 20}
	side := h.Side()
	f := func(a, b uint32) bool {
		x := int64(a)%side + 1
		y := int64(b)%side + 1
		z, err := h.Encode(x, y)
		if err != nil {
			return false
		}
		gx, gy, err := h.Decode(z)
		return err == nil && gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLocalityLadder quantifies the §3-aside "varying computational costs"
// across the whole mapping zoo on one workload: scanning an aligned 16×16
// block of a 64×64 array. Hilbert and Morton keep the block within a small
// address window; the paper's PFs pay spread-shaped penalties; row-major
// pays its stride.
func TestLocalityLadder(t *testing.T) {
	type result struct {
		name string
		span int64
	}
	mappings := []PF{
		Hilbert{Order: 6},
		Morton{},
		RowMajor{Width: 64},
		SquareShell{},
		Diagonal{},
	}
	var spans []result
	for _, f := range mappings {
		min, max := int64(1<<62), int64(0)
		for x := int64(17); x <= 32; x++ {
			for y := int64(17); y <= 32; y++ {
				z := MustEncode(f, x, y)
				if z < min {
					min = z
				}
				if z > max {
					max = z
				}
			}
		}
		spans = append(spans, result{f.Name(), max - min + 1})
	}
	// Hilbert and Morton: the aligned 16×16 block is exactly 256 contiguous
	// addresses.
	for i := 0; i < 2; i++ {
		if spans[i].span != 256 {
			t.Errorf("%s: block span %d, want 256", spans[i].name, spans[i].span)
		}
	}
	// Row-major: 15 full strides plus 16.
	if spans[2].span != 64*15+16 {
		t.Errorf("row-major block span %d, want %d", spans[2].span, 64*15+16)
	}
	// The unbounded PFs must be strictly worse than the dyadic curves here.
	for _, r := range spans[3:] {
		if r.span <= 256 {
			t.Errorf("%s: span %d unexpectedly beats the curves", r.name, r.span)
		}
	}
}
