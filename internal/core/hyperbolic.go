package core

import (
	"fmt"
	"sync"

	"pairfn/internal/numtheory"
)

// Hyperbolic is the hyperbolic pairing function ℋ of eq. 3.4. Its shells are
// the hyperbolas xy = 1, xy = 2, xy = 3, …; shell N holds the δ(N) two-part
// factorizations of N, enumerated in reverse lexicographic order:
//
//	ℋ(x, y) = Σ_{k=1}^{xy−1} δ(k) + |{d : d | xy, d ≥ x}|.
//
// ℋ minimizes worst-case spread over arrays of arbitrary shape:
// S_ℋ(n) = D(n) = Θ(n log n), and no PF beats this by more than a constant
// factor (§3.2.3), because the lattice points under the hyperbola xy = n —
// the union of all arrays with ≤ n positions, each containing (1,1) — number
// Θ(n log n).
//
// The shell-prefix term Σδ(k) = D(xy−1) is computed exactly in O(√(xy))
// time by the Dirichlet hyperbola method; Decode locates the shell by
// binary search over D (see CachedHyperbolic for the table-driven
// alternative measured in the ablation benches).
//
// The zero value is ready to use.
type Hyperbolic struct{}

// Name implements PF.
func (Hyperbolic) Name() string { return "hyperbolic" }

// Encode implements PF.
func (Hyperbolic) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	n, err := numtheory.MulCheck(x, y)
	if err != nil {
		return 0, err
	}
	prefix := numtheory.DivisorSummatory(n - 1)
	rank := numtheory.DivisorsAtLeast(n, x)
	return numtheory.AddCheck(prefix, rank)
}

// Decode implements PF: find the shell N = xy containing address z, then
// take the (z − D(N−1))-th largest divisor of N as x. Addresses beyond
// numtheory.MaxSummatoryValue — the largest shell-prefix value computable
// exactly in int64 — return ErrOverflow rather than garbage coordinates
// (before this check the shell search probed wrapped summatory values and
// decoded out-of-range z to arbitrary positions).
func (Hyperbolic) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	n, err := numtheory.SummatoryInverseCheck(z)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: address %d beyond the largest exactly locatable shell (D(2^57) = %d)",
			ErrOverflow, z, numtheory.MaxSummatoryValue)
	}
	rank := z - numtheory.DivisorSummatory(n-1) // 1 … δ(n)
	divs := numtheory.Divisors(n)
	x := divs[int64(len(divs))-rank] // rank-th largest divisor
	return x, n / x, nil
}

// CachedHyperbolic is ℋ with a precomputed shell-prefix table covering
// shells xy ≤ limit: Encode and Decode of any address in the covered range
// run in O(√(xy)) and O(log limit + √(xy)) respectively without recomputing
// the summatory function. Positions or addresses beyond the table fall back
// to the exact on-the-fly computation. Safe for concurrent use.
type CachedHyperbolic struct {
	limit int64
	once  sync.Once
	// prefix[k] = D(k) for 0 ≤ k ≤ limit.
	prefix []int64
}

// NewCachedHyperbolic returns a CachedHyperbolic whose table covers shells
// xy ≤ limit. The table is built lazily on first use (O(limit log limit)).
func NewCachedHyperbolic(limit int64) *CachedHyperbolic {
	if limit < 1 {
		limit = 1
	}
	return &CachedHyperbolic{limit: limit}
}

// Name implements PF.
func (h *CachedHyperbolic) Name() string { return "hyperbolic-cached" }

func (h *CachedHyperbolic) build() {
	t := numtheory.DivisorTable(h.limit)
	prefix := make([]int64, h.limit+1)
	for k := int64(1); k <= h.limit; k++ {
		prefix[k] = prefix[k-1] + t[k]
	}
	h.prefix = prefix
}

// Encode implements PF.
func (h *CachedHyperbolic) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	n, err := numtheory.MulCheck(x, y)
	if err != nil {
		return 0, err
	}
	if n > h.limit {
		return Hyperbolic{}.Encode(x, y)
	}
	h.once.Do(h.build)
	return h.prefix[n-1] + numtheory.DivisorsAtLeast(n, x), nil
}

// Decode implements PF.
func (h *CachedHyperbolic) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	h.once.Do(h.build)
	if z > h.prefix[h.limit] {
		return Hyperbolic{}.Decode(z)
	}
	// Binary search: smallest n with prefix[n] ≥ z.
	lo, hi := int64(1), h.limit
	for lo < hi {
		mid := (lo + hi) / 2
		if h.prefix[mid] >= z {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	n := lo
	rank := z - h.prefix[n-1]
	divs := numtheory.Divisors(n)
	x := divs[int64(len(divs))-rank]
	return x, n / x, nil
}
