package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"pairfn/internal/numtheory"
)

// TestHyperbolicShellPrefix checks ℋ's first address of each shell:
// ℋ(largest divisor first) and that shell N spans exactly δ(N) addresses
// after D(N−1).
func TestHyperbolicShellPrefix(t *testing.T) {
	var h Hyperbolic
	for n := int64(1); n <= 200; n++ {
		prefix := numtheory.DivisorSummatory(n - 1)
		divs := numtheory.Divisors(n)
		// Reverse-lex order: x descending.
		for i := len(divs) - 1; i >= 0; i-- {
			x := divs[i]
			y := n / x
			want := prefix + int64(len(divs)-i)
			if got := MustEncode(h, x, y); got != want {
				t.Fatalf("ℋ(%d, %d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

// TestHyperbolicSpreadIsSummatory checks S_ℋ(n) = D(n) exactly: the
// largest address over {xy ≤ n} is the divisor summatory function — the
// optimality claim of §3.2.3 (experiment E9's exact core).
func TestHyperbolicSpreadIsSummatory(t *testing.T) {
	var h Hyperbolic
	for _, n := range []int64{1, 2, 3, 10, 16, 64, 200} {
		var max int64
		for x := int64(1); x <= n; x++ {
			for y := int64(1); y <= n/x; y++ {
				if z := MustEncode(h, x, y); z > max {
					max = z
				}
			}
		}
		if want := numtheory.DivisorSummatory(n); max != want {
			t.Errorf("S_ℋ(%d) = %d, want D(n) = %d", n, max, want)
		}
	}
}

// TestHyperbolicLargeRoundTrip exercises the O(√n) encode and the
// binary-search decode far from the origin.
func TestHyperbolicLargeRoundTrip(t *testing.T) {
	var h Hyperbolic
	coords := [][2]int64{
		{1, 1 << 20}, {1 << 20, 1}, {1 << 10, 1 << 10},
		{999983, 2}, {12345, 6789}, {1, 1}, {2, 3},
	}
	for _, c := range coords {
		z, err := h.Encode(c[0], c[1])
		if err != nil {
			t.Fatalf("Encode(%d, %d): %v", c[0], c[1], err)
		}
		x, y, err := h.Decode(z)
		if err != nil {
			t.Fatalf("Decode(%d): %v", z, err)
		}
		if x != c[0] || y != c[1] {
			t.Errorf("round trip (%d, %d) → %d → (%d, %d)", c[0], c[1], z, x, y)
		}
	}
}

// TestCachedHyperbolicMatches checks cached and direct variants agree on
// both encode and decode across the cache boundary.
func TestCachedHyperbolicMatches(t *testing.T) {
	var h Hyperbolic
	cached := NewCachedHyperbolic(100) // boundary at xy = 100
	for x := int64(1); x <= 25; x++ {
		for y := int64(1); y <= 25; y++ {
			a := MustEncode(h, x, y)
			b := MustEncode(cached, x, y)
			if a != b {
				t.Fatalf("(%d, %d): direct %d ≠ cached %d", x, y, a, b)
			}
		}
	}
	for z := int64(1); z <= 800; z++ {
		ax, ay := MustDecode(h, z)
		bx, by := MustDecode(cached, z)
		if ax != bx || ay != by {
			t.Fatalf("Decode(%d): direct (%d,%d) ≠ cached (%d,%d)", z, ax, ay, bx, by)
		}
	}
}

// TestHyperbolicDecodeOverflow is the edge-of-int64 regression for decode:
// addresses beyond the largest exactly locatable shell must return
// ErrOverflow promptly. Before the fix, Decode(MaxInt64) spent minutes
// probing wrapped summatory values and returned garbage coordinates.
func TestHyperbolicDecodeOverflow(t *testing.T) {
	start := time.Now()
	var h Hyperbolic
	cached := NewCachedHyperbolic(64) // out-of-table fallback hits the same path
	for _, z := range []int64{numtheory.MaxSummatoryValue + 1, math.MaxInt64} {
		if _, _, err := h.Decode(z); !errors.Is(err, ErrOverflow) {
			t.Errorf("Hyperbolic.Decode(%d) = %v, want ErrOverflow", z, err)
		}
		if _, _, err := cached.Decode(z); !errors.Is(err, ErrOverflow) {
			t.Errorf("CachedHyperbolic.Decode(%d) = %v, want ErrOverflow", z, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("out-of-range decode took %v, want immediate rejection", elapsed)
	}
	// Just-in-range addresses still decode to consistent coordinates.
	z := int64(10_000_019)
	x, y, err := h.Decode(z)
	if err != nil {
		t.Fatalf("Decode(%d): %v", z, err)
	}
	if back := MustEncode(h, x, y); back != z {
		t.Errorf("Decode(%d) = (%d, %d), re-encodes to %d", z, x, y, back)
	}
}

// TestRowColumnMajorPartial tests the fixed-strip baselines.
func TestRowColumnMajorPartial(t *testing.T) {
	r := RowMajor{Width: 5}
	for x := int64(1); x <= 20; x++ {
		for y := int64(1); y <= 5; y++ {
			z := MustEncode(r, x, y)
			if want := (x-1)*5 + y; z != want {
				t.Fatalf("row-major(%d, %d) = %d, want %d", x, y, z, want)
			}
			gx, gy := MustDecode(r, z)
			if gx != x || gy != y {
				t.Fatalf("row-major decode(%d) = (%d, %d)", z, gx, gy)
			}
		}
	}
	if _, err := r.Encode(1, 6); err == nil {
		t.Error("row-major Encode(1, 6) should reject y > width")
	}
	c := ColumnMajor{Height: 7}
	for y := int64(1); y <= 20; y++ {
		for x := int64(1); x <= 7; x++ {
			z := MustEncode(c, x, y)
			if want := (y-1)*7 + x; z != want {
				t.Fatalf("column-major(%d, %d) = %d, want %d", x, y, z, want)
			}
		}
	}
	if _, err := c.Encode(8, 1); err == nil {
		t.Error("column-major Encode(8, 1) should reject x > height")
	}
	if _, err := (RowMajor{}).Encode(1, 1); err == nil {
		t.Error("zero-width row-major should reject")
	}
}
