package core

import "pairfn/internal/obs"

// InstrumentedPF wraps a PF, counting Encode/Decode calls and errors in an
// obs registry — the storage-mapping analogue of apf.Instrument, for
// services that address extendible arrays (§3) rather than task tables
// (§4). Overhead is one nil-checked atomic add plus an error branch per
// call.
type InstrumentedPF struct {
	PF
	encodes, decodes, errs *obs.Counter
}

// InstrumentPF wraps f with call counters registered in r as
//
//	pf_encode_total{pf="<name>"}
//	pf_decode_total{pf="<name>"}
//	pf_errors_total{pf="<name>"}
//
// A nil registry returns f unwrapped.
func InstrumentPF(f PF, r *obs.Registry) PF {
	if r == nil {
		return f
	}
	r.Help("pf_encode_total", "PF Encode calls (address computations).")
	r.Help("pf_decode_total", "PF Decode calls (address inversions).")
	r.Help("pf_errors_total", "PF Encode/Decode calls that returned an error.")
	name := obs.L("pf", f.Name())
	return &InstrumentedPF{
		PF:      f,
		encodes: r.Counter("pf_encode_total", name),
		decodes: r.Counter("pf_decode_total", name),
		errs:    r.Counter("pf_errors_total", name),
	}
}

// Unwrap returns the underlying PF.
func (ip *InstrumentedPF) Unwrap() PF { return ip.PF }

// Encode counts the call (and any error) and defers to the wrapped PF.
func (ip *InstrumentedPF) Encode(x, y int64) (int64, error) {
	z, err := ip.PF.Encode(x, y)
	ip.encodes.Inc()
	if err != nil {
		ip.errs.Inc()
	}
	return z, err
}

// Decode counts the call (and any error) and defers to the wrapped PF.
func (ip *InstrumentedPF) Decode(z int64) (x, y int64, err error) {
	x, y, err = ip.PF.Decode(z)
	ip.decodes.Inc()
	if err != nil {
		ip.errs.Inc()
	}
	return x, y, err
}
