package core

import "math/bits"

// Morton is the Z-order (bit-interleaving) pairing function, the storage
// mapping modern spatial systems reach for. It is not in the paper — we
// include it as the natural present-day baseline for the §3.2 compactness
// race: interleaving the bits of x−1 and y−1 gives a bijection N×N ↔ N
// whose shells are the nested 2^k×2^k squares, so like 𝒜₁,₁ it is
// quadratically compact on squares (S(4^k) = 4^k exactly at power-of-four
// sizes) and quadratically wasteful on thin arrays — but unlike any of the
// paper's PFs its block locality is dyadic: every aligned 2^j×2^j block is
// one contiguous address range, which BenchmarkEncode and the extarray
// traversal costs quantify.
//
// The zero value is ready to use.
type Morton struct{}

// Name implements PF.
func (Morton) Name() string { return "morton" }

// Encode implements PF: interleave the bits of x−1 (odd positions) and
// y−1 (even positions), plus 1.
func (Morton) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	ux, uy := uint64(x-1), uint64(y-1)
	if bits.Len64(ux) > 31 || bits.Len64(uy) > 31 {
		return 0, ErrOverflow // interleaved result would pass 63 bits
	}
	z := interleave(uy) | interleave(ux)<<1
	return int64(z) + 1, nil
}

// Decode implements PF.
func (Morton) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	u := uint64(z - 1)
	y := deinterleave(u)
	x := deinterleave(u >> 1)
	return int64(x) + 1, int64(y) + 1, nil
}

// interleave spreads the low 32 bits of v into the even bit positions.
func interleave(v uint64) uint64 {
	v &= 0xFFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// deinterleave gathers the even bit positions of v into the low 32 bits.
func deinterleave(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}
