package core

import (
	"testing"
	"testing/quick"
)

func TestMortonBijectionOnBox(t *testing.T) {
	var m Morton
	seen := make(map[int64][2]int64)
	for x := int64(1); x <= 64; x++ {
		for y := int64(1); y <= 64; y++ {
			z := MustEncode(m, x, y)
			if p, dup := seen[z]; dup {
				t.Fatalf("collision (%d,%d)/(%d,%d) → %d", p[0], p[1], x, y, z)
			}
			seen[z] = [2]int64{x, y}
			gx, gy := MustDecode(m, z)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d, %d) → %d → (%d, %d)", x, y, z, gx, gy)
			}
		}
	}
	// Surjective prefix: a 64×64 box is the Morton cube [1, 4096].
	for z := int64(1); z <= 4096; z++ {
		if _, dup := seen[z]; !dup {
			t.Fatalf("address %d missing from the 64×64 box", z)
		}
	}
}

func TestMortonKnownValues(t *testing.T) {
	var m Morton
	cases := []struct{ x, y, z int64 }{
		{1, 1, 1}, {1, 2, 2}, {2, 1, 3}, {2, 2, 4},
		{1, 3, 5}, {3, 1, 9}, {3, 3, 13}, {4, 4, 16},
	}
	for _, c := range cases {
		if got := MustEncode(m, c.x, c.y); got != c.z {
			t.Errorf("morton(%d, %d) = %d, want %d", c.x, c.y, got, c.z)
		}
	}
}

// TestMortonDyadicBlocks verifies the locality property: every aligned
// 2^j×2^j block occupies one contiguous address range of length 4^j.
func TestMortonDyadicBlocks(t *testing.T) {
	var m Morton
	for j := uint(0); j <= 3; j++ {
		side := int64(1) << j
		for bx := int64(0); bx < 4; bx++ {
			for by := int64(0); by < 4; by++ {
				min, max := int64(1<<62), int64(0)
				for dx := int64(1); dx <= side; dx++ {
					for dy := int64(1); dy <= side; dy++ {
						z := MustEncode(m, bx*side+dx, by*side+dy)
						if z < min {
							min = z
						}
						if z > max {
							max = z
						}
					}
				}
				if max-min+1 != side*side {
					t.Fatalf("block (%d,%d) side %d spans [%d, %d], want contiguous %d",
						bx, by, side, min, max, side*side)
				}
			}
		}
	}
}

// TestMortonSpread: like 𝒜₁,₁, Morton is quadratic on arbitrary shapes
// (thin arrays devastate it) and perfect at power-of-four square sizes.
func TestMortonSpread(t *testing.T) {
	var m Morton
	// Perfect on the 2^k×2^k square.
	for k := uint(0); k <= 5; k++ {
		side := int64(1) << k
		var max int64
		for x := int64(1); x <= side; x++ {
			for y := int64(1); y <= side; y++ {
				if z := MustEncode(m, x, y); z > max {
					max = z
				}
			}
		}
		if max != side*side {
			t.Errorf("S over %d×%d = %d, want %d", side, side, max, side*side)
		}
	}
	// Quadratic on the 1×n thin array: morton(1, n) ≈ the deinterleaved
	// square. For n = 2^k+1, morton(1, n) > n²/4.
	n := int64(1<<10 + 1)
	z := MustEncode(m, 1, n)
	if z <= n*n/4 {
		t.Errorf("morton(1, %d) = %d, expected quadratic blow-up", n, z)
	}
}

func TestMortonOverflowAndDomain(t *testing.T) {
	var m Morton
	if _, err := m.Encode(1<<31+1, 1); err == nil {
		t.Error("coordinates past 2^31 should overflow the interleave")
	}
	if _, err := m.Encode(1<<31, 1); err != nil {
		t.Errorf("2^31 should fit: %v", err)
	}
	if _, err := m.Encode(0, 1); err == nil {
		t.Error("x = 0 should fail")
	}
	if _, _, err := m.Decode(0); err == nil {
		t.Error("z = 0 should fail")
	}
}

func TestMortonQuickRoundTrip(t *testing.T) {
	var m Morton
	f := func(a, b uint32) bool {
		// Stay within the 31-bit-per-coordinate interleave capacity.
		x, y := int64(a%(1<<31))+1, int64(b%(1<<31))+1
		z, err := m.Encode(x, y)
		if err != nil {
			return false
		}
		gx, gy, err := m.Decode(z)
		return err == nil && gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
