package core

import (
	"errors"
	"fmt"
)

// ErrOverflow reports that an exact address or coordinate computation would
// exceed the range of int64.
var ErrOverflow = errors.New("core: int64 overflow")

// ErrDomain reports a coordinate or address outside N (i.e. < 1).
var ErrDomain = errors.New("core: argument outside N (must be ≥ 1)")

// ErrNotInRange reports that an address is not in the range of an injective
// (non-surjective) storage mapping and therefore has no preimage.
var ErrNotInRange = errors.New("core: address not in the mapping's range")

// A PF is a pairing function: a bijection N×N ↔ N. Encode maps a position
// ⟨x, y⟩ (row, column; both ≥ 1) to its address; Decode inverts it.
//
// Implementations must satisfy, for all x, y, z ≥ 1 (within int64 range):
//
//	Decode(Encode(x, y)) = (x, y)   and   Encode(Decode(z)) = z.
type PF interface {
	// Name returns a short identifier used in tables and benchmarks.
	Name() string
	// Encode returns the address of position ⟨x, y⟩.
	Encode(x, y int64) (int64, error)
	// Decode returns the position stored at address z.
	Decode(z int64) (x, y int64, err error)
}

// A StorageMapping is an injective map N×N → N. Every PF is a
// StorageMapping; the dovetail combinator of §3.2.2 yields StorageMappings
// that are injective but not surjective (its Decode returns ErrNotInRange
// for addresses outside the image). The spread measure S_A(n) of eq. 3.1 is
// defined for any StorageMapping.
type StorageMapping = PF

// checkPos validates a 1-based position.
func checkPos(x, y int64) error {
	if x < 1 || y < 1 {
		return fmt.Errorf("%w: position (%d, %d)", ErrDomain, x, y)
	}
	return nil
}

// checkAddr validates a 1-based address.
func checkAddr(z int64) error {
	if z < 1 {
		return fmt.Errorf("%w: address %d", ErrDomain, z)
	}
	return nil
}

// MustEncode is Encode with a panic on error; intended for examples, tests
// and table printers operating far from the int64 boundary.
func MustEncode(f PF, x, y int64) int64 {
	z, err := f.Encode(x, y)
	if err != nil {
		panic(fmt.Sprintf("core: %s.Encode(%d, %d): %v", f.Name(), x, y, err))
	}
	return z
}

// MustDecode is Decode with a panic on error.
func MustDecode(f PF, z int64) (int64, int64) {
	x, y, err := f.Decode(z)
	if err != nil {
		panic(fmt.Sprintf("core: %s.Decode(%d): %v", f.Name(), z, err))
	}
	return x, y
}

// Table returns the rows×cols sample of f laid out as in the paper's
// figures: Table[i][j] = f(i+1, j+1).
func Table(f PF, rows, cols int) [][]int64 {
	t := make([][]int64, rows)
	for i := range t {
		t[i] = make([]int64, cols)
		for j := range t[i] {
			t[i][j] = MustEncode(f, int64(i+1), int64(j+1))
		}
	}
	return t
}
