package core

import (
	"errors"
	"testing"
	"testing/quick"
)

// allPFs returns every total PF in the package (row/column-major are
// partial and tested separately; Dovetail is injective-only and tested in
// dovetail_test.go).
func allPFs() []PF {
	return []PF{
		Diagonal{},
		Diagonal{Twin: true},
		SquareShell{},
		SquareShell{Clockwise: true},
		MustAspect(1, 1),
		MustAspect(1, 2),
		MustAspect(2, 1),
		MustAspect(2, 3),
		MustAspect(5, 1),
		Hyperbolic{},
		NewCachedHyperbolic(4096),
		NewEnumerated(DiagonalShells{}),
		NewEnumerated(SquareShells{}),
		NewEnumerated(HyperbolicShells{}),
	}
}

// TestBijectionOnBox checks, for every PF, that Encode is injective on
// [1,60]² and that Decode inverts it.
func TestBijectionOnBox(t *testing.T) {
	const B = 60
	for _, f := range allPFs() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			seen := make(map[int64][2]int64, B*B)
			for x := int64(1); x <= B; x++ {
				for y := int64(1); y <= B; y++ {
					z, err := f.Encode(x, y)
					if err != nil {
						t.Fatalf("Encode(%d, %d): %v", x, y, err)
					}
					if z < 1 {
						t.Fatalf("Encode(%d, %d) = %d < 1", x, y, z)
					}
					if p, dup := seen[z]; dup {
						t.Fatalf("collision: (%d,%d) and (%d,%d) → %d", p[0], p[1], x, y, z)
					}
					seen[z] = [2]int64{x, y}
					gx, gy, err := f.Decode(z)
					if err != nil {
						t.Fatalf("Decode(%d): %v", z, err)
					}
					if gx != x || gy != y {
						t.Fatalf("Decode(Encode(%d, %d)) = (%d, %d)", x, y, gx, gy)
					}
				}
			}
		})
	}
}

// TestSurjectivePrefix checks that every PF's Decode∘Encode is the identity
// on an initial segment of addresses — i.e. every small address has a
// preimage (surjectivity of the enumeration).
func TestSurjectivePrefix(t *testing.T) {
	const N = 3000
	for _, f := range allPFs() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			for z := int64(1); z <= N; z++ {
				x, y, err := f.Decode(z)
				if err != nil {
					t.Fatalf("Decode(%d): %v", z, err)
				}
				if x < 1 || y < 1 {
					t.Fatalf("Decode(%d) = (%d, %d) outside N×N", z, x, y)
				}
				back, err := f.Encode(x, y)
				if err != nil {
					t.Fatalf("Encode(Decode(%d)): %v", z, err)
				}
				if back != z {
					t.Fatalf("Encode(Decode(%d)) = %d", z, back)
				}
			}
		})
	}
}

// coordCap bounds property-test coordinates per PF: the hyperbolic decode
// costs O(√(xy) log xy) and the generic Enumerated PF materializes one
// prefix entry per shell, so their shells must stay laptop-sized. The
// closed-form polynomial PFs get the full 10⁵ range.
func coordCap(f PF) int64 {
	switch f.(type) {
	case Hyperbolic, *CachedHyperbolic:
		return 3000 // xy ≤ 9·10⁶
	case *Enumerated:
		if _, ok := f.(*Enumerated).Partition().(HyperbolicShells); ok {
			return 300 // xy = shell count ≤ 9·10⁴
		}
		return 30000
	default:
		return 100000
	}
}

// TestRoundTripProperty is the testing/quick form of the bijection law on
// random coordinates across the full int64-safe range.
func TestRoundTripProperty(t *testing.T) {
	for _, f := range allPFs() {
		f := f
		limit := coordCap(f)
		t.Run(f.Name(), func(t *testing.T) {
			check := func(a, b int64) bool {
				x := a%limit + 1
				y := b%limit + 1
				if x < 1 {
					x += limit
				}
				if y < 1 {
					y += limit
				}
				z, err := f.Encode(x, y)
				if err != nil {
					return false
				}
				gx, gy, err := f.Decode(z)
				return err == nil && gx == x && gy == y
			}
			cfg := &quick.Config{MaxCount: 200}
			if err := quick.Check(check, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDomainErrors checks uniform rejection of out-of-domain arguments.
func TestDomainErrors(t *testing.T) {
	for _, f := range allPFs() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			for _, p := range [][2]int64{{0, 1}, {1, 0}, {0, 0}, {-3, 5}, {5, -3}} {
				if _, err := f.Encode(p[0], p[1]); !errors.Is(err, ErrDomain) {
					t.Errorf("Encode(%d, %d) err = %v, want ErrDomain", p[0], p[1], err)
				}
			}
			for _, z := range []int64{0, -1, -100} {
				if _, _, err := f.Decode(z); !errors.Is(err, ErrDomain) {
					t.Errorf("Decode(%d) err = %v, want ErrDomain", z, err)
				}
			}
		})
	}
}

// TestEnumeratedMatchesClosedForms cross-validates Theorem 3.1: the PFs
// built generically by Procedure PF-Constructor from the diagonal, square
// and hyperbolic shell partitions must agree everywhere with the closed
// forms (eqs. 2.1, 3.3, 3.4).
func TestEnumeratedMatchesClosedForms(t *testing.T) {
	pairs := []struct {
		enum   PF
		closed PF
	}{
		{NewEnumerated(DiagonalShells{}), Diagonal{}},
		{NewEnumerated(SquareShells{}), SquareShell{}},
		{NewEnumerated(HyperbolicShells{}), Hyperbolic{}},
	}
	for _, p := range pairs {
		p := p
		t.Run(p.closed.Name(), func(t *testing.T) {
			for x := int64(1); x <= 40; x++ {
				for y := int64(1); y <= 40; y++ {
					a := MustEncode(p.enum, x, y)
					b := MustEncode(p.closed, x, y)
					if a != b {
						t.Fatalf("(%d, %d): enumerated %d ≠ closed form %d", x, y, a, b)
					}
				}
			}
		})
	}
}

// TestShellPartitionContracts checks the ShellPartition laws directly.
func TestShellPartitionContracts(t *testing.T) {
	parts := []ShellPartition{DiagonalShells{}, SquareShells{}, HyperbolicShells{}}
	for _, p := range parts {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for x := int64(1); x <= 30; x++ {
				for y := int64(1); y <= 30; y++ {
					c := p.Shell(x, y)
					r := p.Rank(x, y)
					if r < 1 || r > p.Size(c) {
						t.Fatalf("Rank(%d, %d) = %d outside [1, %d]", x, y, r, p.Size(c))
					}
					gx, gy := p.Unrank(c, r)
					if gx != x || gy != y {
						t.Fatalf("Unrank(Shell, Rank) of (%d, %d) = (%d, %d)", x, y, gx, gy)
					}
				}
			}
			// Each shell's ranks are a permutation of 1..Size.
			for c := int64(1); c <= 20; c++ {
				seen := make(map[int64]bool)
				for r := int64(1); r <= p.Size(c); r++ {
					x, y := p.Unrank(c, r)
					if p.Shell(x, y) != c {
						t.Fatalf("Unrank(%d, %d) = (%d, %d) in shell %d", c, r, x, y, p.Shell(x, y))
					}
					if seen[r] {
						t.Fatalf("duplicate rank %d in shell %d", r, c)
					}
					seen[r] = true
				}
			}
		})
	}
}

// TestMustHelpers checks the panic behaviour of MustEncode/MustDecode.
func TestMustHelpers(t *testing.T) {
	// 𝒟(3, 4) = C(6, 2) + 4 = 19 (Fig. 2, row 3, column 4).
	if got := MustEncode(Diagonal{}, 3, 4); got != 19 {
		t.Errorf("MustEncode = %d, want 19", got)
	}
	x, y := MustDecode(Diagonal{}, 19)
	if x != 3 || y != 4 {
		t.Errorf("MustDecode(19) = (%d, %d)", x, y)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEncode(0, 0) did not panic")
		}
	}()
	MustEncode(Diagonal{}, 0, 0)
}
