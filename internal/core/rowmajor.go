package core

import (
	"fmt"

	"pairfn/internal/numtheory"
)

// RowMajor is the standard fixed-width row-major indexing used by most
// compilers (§3.2): addr(x, y) = (x−1)·Width + y. It is the baseline the
// paper's storage mappings are measured against.
//
// RowMajor is a bijection between the strip {(x, y) : y ≤ Width} and N, not
// between N×N and N: positions with y > Width are outside its domain and
// Encode returns ErrDomain for them. Reshaping an array stored this way
// requires remapping every element whenever the width changes — the
// Ω(n²)-work-for-O(n)-changes behaviour criticized in §3; see package
// extarray for that cost measured.
type RowMajor struct {
	// Width is the fixed number of columns; must be ≥ 1.
	Width int64
}

// Name implements PF.
func (r RowMajor) Name() string { return fmt.Sprintf("row-major-%d", r.Width) }

// Encode implements PF for the strip y ≤ Width.
func (r RowMajor) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	if r.Width < 1 {
		return 0, fmt.Errorf("%w: row-major width %d", ErrDomain, r.Width)
	}
	if y > r.Width {
		return 0, fmt.Errorf("%w: column %d exceeds fixed width %d", ErrDomain, y, r.Width)
	}
	off, err := numtheory.MulCheck(x-1, r.Width)
	if err != nil {
		return 0, err
	}
	return numtheory.AddCheck(off, y)
}

// Decode implements PF.
func (r RowMajor) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	if r.Width < 1 {
		return 0, 0, fmt.Errorf("%w: row-major width %d", ErrDomain, r.Width)
	}
	return (z-1)/r.Width + 1, (z-1)%r.Width + 1, nil
}

// ColumnMajor is the column-major twin of RowMajor for a fixed number of
// rows: addr(x, y) = (y−1)·Height + x, defined on the strip x ≤ Height.
type ColumnMajor struct {
	// Height is the fixed number of rows; must be ≥ 1.
	Height int64
}

// Name implements PF.
func (c ColumnMajor) Name() string { return fmt.Sprintf("column-major-%d", c.Height) }

// Encode implements PF for the strip x ≤ Height.
func (c ColumnMajor) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	if c.Height < 1 {
		return 0, fmt.Errorf("%w: column-major height %d", ErrDomain, c.Height)
	}
	if x > c.Height {
		return 0, fmt.Errorf("%w: row %d exceeds fixed height %d", ErrDomain, x, c.Height)
	}
	off, err := numtheory.MulCheck(y-1, c.Height)
	if err != nil {
		return 0, err
	}
	return numtheory.AddCheck(off, x)
}

// Decode implements PF.
func (c ColumnMajor) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	if c.Height < 1 {
		return 0, 0, fmt.Errorf("%w: column-major height %d", ErrDomain, c.Height)
	}
	return (z-1)%c.Height + 1, (z-1)/c.Height + 1, nil
}
