package core

import (
	"fmt"
	"sync"

	"pairfn/internal/numtheory"
)

// A ShellPartition describes Step 1 and Step 2b of Procedure PF-Constructor
// (§3.1): a partition of N×N into finite, linearly ordered shells together
// with a linear order inside each shell. Shells are indexed 1, 2, 3, …
//
// Implementations must satisfy, for every position (x, y) and shell c:
//
//	1 ≤ Rank(x, y) ≤ Size(Shell(x, y))
//	Unrank(Shell(x, y), Rank(x, y)) = (x, y)
//
// and every position must belong to exactly one shell.
type ShellPartition interface {
	// Name identifies the partition in tables and benchmarks.
	Name() string
	// Shell returns the 1-based shell index of position ⟨x, y⟩.
	Shell(x, y int64) int64
	// Size returns the number of positions in shell c.
	Size(c int64) int64
	// Rank returns the 1-based position of ⟨x, y⟩ in its shell's order.
	Rank(x, y int64) int64
	// Unrank returns the r-th position of shell c.
	Unrank(c, r int64) (x, y int64)
}

// Enumerated realizes Theorem 3.1: given any ShellPartition it is a valid
// PF, obtained by enumerating N×N shell by shell (Step 2a) and honoring the
// within-shell order (Step 2b). Shell-prefix sums are cached incrementally,
// so the first access to shell c costs O(c) and later accesses to shells
// ≤ c cost O(log c). Safe for concurrent use.
type Enumerated struct {
	part ShellPartition

	mu     sync.Mutex
	prefix []int64 // prefix[c] = Σ_{j ≤ c} Size(j); prefix[0] = 0
}

// NewEnumerated returns the PF that Procedure PF-Constructor builds from
// the given shell partition.
func NewEnumerated(part ShellPartition) *Enumerated {
	return &Enumerated{part: part, prefix: []int64{0}}
}

// Name implements PF.
func (e *Enumerated) Name() string { return "enumerated(" + e.part.Name() + ")" }

// Partition returns the underlying shell partition.
func (e *Enumerated) Partition() ShellPartition { return e.part }

// prefixOfLocked returns Σ_{j ≤ c} Size(j), extending the cache as needed.
// The caller must hold e.mu.
func (e *Enumerated) prefixOfLocked(c int64) (int64, error) {
	for int64(len(e.prefix)) <= c {
		j := int64(len(e.prefix))
		s, err := numtheory.AddCheck(e.prefix[j-1], e.part.Size(j))
		if err != nil {
			return 0, err
		}
		e.prefix = append(e.prefix, s)
	}
	return e.prefix[c], nil
}

// encodeLocked is Encode with e.mu already held (the batch path holds it
// across a whole slice).
func (e *Enumerated) encodeLocked(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	c := e.part.Shell(x, y)
	if c < 1 {
		return 0, fmt.Errorf("core: partition %s returned shell %d for (%d, %d)",
			e.part.Name(), c, x, y)
	}
	p, err := e.prefixOfLocked(c - 1)
	if err != nil {
		return 0, err
	}
	return numtheory.AddCheck(p, e.part.Rank(x, y))
}

// Encode implements PF.
func (e *Enumerated) Encode(x, y int64) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.encodeLocked(x, y)
}

// decodeLocked is Decode with e.mu already held: find the shell whose
// prefix range contains z, then unrank (Unrank is pure, so calling it
// under the lock is safe).
func (e *Enumerated) decodeLocked(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	// Extend the cache until it covers z.
	for e.prefix[len(e.prefix)-1] < z {
		j := int64(len(e.prefix))
		s, err := numtheory.AddCheck(e.prefix[j-1], e.part.Size(j))
		if err != nil {
			return 0, 0, err
		}
		e.prefix = append(e.prefix, s)
	}
	// Binary search: smallest c with prefix[c] ≥ z.
	lo, hi := 1, len(e.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.prefix[mid] >= z {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := z - e.prefix[lo-1]
	x, y := e.part.Unrank(int64(lo), r)
	return x, y, nil
}

// Decode implements PF.
func (e *Enumerated) Decode(z int64) (int64, int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.decodeLocked(z)
}

// DiagonalShells is the partition x + y = c+1 (shell c = diagonal x+y−1 = c,
// so shell 1 = {(1,1)}), ordered by increasing y — the shells that define
// the diagonal PF 𝒟 of eq. 2.1 and Fig. 2.
type DiagonalShells struct{}

// Name implements ShellPartition.
func (DiagonalShells) Name() string { return "diagonal-shells" }

// Shell implements ShellPartition.
func (DiagonalShells) Shell(x, y int64) int64 { return x + y - 1 }

// Size implements ShellPartition: the diagonal x+y = c+1 has c positions.
func (DiagonalShells) Size(c int64) int64 { return c }

// Rank implements ShellPartition: by increasing y.
func (DiagonalShells) Rank(x, y int64) int64 { return y }

// Unrank implements ShellPartition.
func (DiagonalShells) Unrank(c, r int64) (int64, int64) { return c + 1 - r, r }

// SquareShells is the partition max(x, y) = c, walked counterclockwise: up
// the column x = c first, then right-to-left along the row y = c — the
// shells of the square-shell PF 𝒜₁,₁ of eq. 3.3 and Fig. 3.
type SquareShells struct{}

// Name implements ShellPartition.
func (SquareShells) Name() string { return "square-shells" }

// Shell implements ShellPartition.
func (SquareShells) Shell(x, y int64) int64 {
	if x > y {
		return x
	}
	return y
}

// Size implements ShellPartition: shell c is an L of 2c−1 positions.
func (SquareShells) Size(c int64) int64 { return 2*c - 1 }

// Rank implements ShellPartition.
func (SquareShells) Rank(x, y int64) int64 {
	if x >= y {
		return y // ascending the column x = c
	}
	return 2*y - x // then right-to-left along the row y = c
}

// Unrank implements ShellPartition.
func (SquareShells) Unrank(c, r int64) (int64, int64) {
	if r <= c {
		return c, r
	}
	return 2*c - r, c
}

// HyperbolicShells is the partition xy = c with reverse-lexicographic order
// inside each shell — the shells of the hyperbolic PF ℋ of eq. 3.4 and
// Fig. 4. Size(c) = δ(c), so shell sizes are the divisor function.
type HyperbolicShells struct{}

// Name implements ShellPartition.
func (HyperbolicShells) Name() string { return "hyperbolic-shells" }

// Shell implements ShellPartition.
func (HyperbolicShells) Shell(x, y int64) int64 { return x * y }

// Size implements ShellPartition.
func (HyperbolicShells) Size(c int64) int64 { return numtheory.DivisorCount(c) }

// Rank implements ShellPartition: reverse-lexicographic position, i.e. the
// number of divisors of xy that are ≥ x.
func (HyperbolicShells) Rank(x, y int64) int64 {
	return numtheory.DivisorsAtLeast(x*y, x)
}

// Unrank implements ShellPartition: the r-th largest divisor of c.
func (HyperbolicShells) Unrank(c, r int64) (int64, int64) {
	divs := numtheory.Divisors(c)
	x := divs[int64(len(divs))-r]
	return x, c / x
}
