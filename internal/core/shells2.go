package core

import (
	"fmt"

	"pairfn/internal/numtheory"
)

// This file supplies further instances of Procedure PF-Constructor's
// Step 1/Step 2b design space (§3.1): the aside lists diagonal, square and
// hyperbolic shell partitions, and Step 2b notes that either traversal
// direction inside a shell "works as well". Each partition here
// cross-validates a closed-form PF elsewhere in the package, or exhibits a
// legitimate variant the paper allows.

// DiagonalShellsByX is the diagonal partition of Fig. 2 with the opposite
// within-shell order: increasing x (decreasing y) — the Step 2b variant.
// The resulting PF is 𝒟's twin.
type DiagonalShellsByX struct{}

// Name implements ShellPartition.
func (DiagonalShellsByX) Name() string { return "diagonal-shells-by-x" }

// Shell implements ShellPartition.
func (DiagonalShellsByX) Shell(x, y int64) int64 { return x + y - 1 }

// Size implements ShellPartition.
func (DiagonalShellsByX) Size(c int64) int64 { return c }

// Rank implements ShellPartition: by increasing x.
func (DiagonalShellsByX) Rank(x, y int64) int64 { return x }

// Unrank implements ShellPartition.
func (DiagonalShellsByX) Unrank(c, r int64) (int64, int64) { return r, c + 1 - r }

// SquareShellsClockwise walks each square shell in the clockwise
// direction: along the row y = c first (left to right in x), then down the
// column x = c — eq. 3.3's "twin that proceeds in a clockwise direction".
type SquareShellsClockwise struct{}

// Name implements ShellPartition.
func (SquareShellsClockwise) Name() string { return "square-shells-cw" }

// Shell implements ShellPartition.
func (SquareShellsClockwise) Shell(x, y int64) int64 {
	if x > y {
		return x
	}
	return y
}

// Size implements ShellPartition.
func (SquareShellsClockwise) Size(c int64) int64 { return 2*c - 1 }

// Rank implements ShellPartition.
func (SquareShellsClockwise) Rank(x, y int64) int64 {
	if y >= x {
		return x // along the row y = c
	}
	return 2*x - y // then down the column x = c
}

// Unrank implements ShellPartition.
func (SquareShellsClockwise) Unrank(c, r int64) (int64, int64) {
	if r <= c {
		return r, c
	}
	return c, 2*c - r
}

// AspectShells is the nested-rectangle partition of §3.2.1: shell k holds
// the positions of the ak×bk array outside the a(k−1)×b(k−1) array,
// enumerated new-columns-first exactly as the Aspect PF does — so
// Enumerated(AspectShells{a,b}) must agree with MustAspect(a, b)
// everywhere, which TestEnumeratedMatchesAspect verifies.
type AspectShells struct {
	// A, B is the favored aspect ratio; both ≥ 1.
	A, B int64
}

// Name implements ShellPartition.
func (p AspectShells) Name() string { return fmt.Sprintf("aspect-shells-%dx%d", p.A, p.B) }

// Shell implements ShellPartition.
func (p AspectShells) Shell(x, y int64) int64 {
	k := numtheory.CeilDiv(x, p.A)
	if k2 := numtheory.CeilDiv(y, p.B); k2 > k {
		k = k2
	}
	return k
}

// Size implements ShellPartition: ab(2k−1).
func (p AspectShells) Size(c int64) int64 { return p.A * p.B * (2*c - 1) }

// Rank implements ShellPartition: the new-columns arm (b columns of height
// ak, bottom-up), then the new-rows arm (a rows of length b(k−1)).
func (p AspectShells) Rank(x, y int64) int64 {
	k := p.Shell(x, y)
	if y > p.B*(k-1) {
		col := y - p.B*(k-1) - 1
		return col*p.A*k + x
	}
	row := x - p.A*(k-1) - 1
	return p.A*p.B*k + row*p.B*(k-1) + y
}

// Unrank implements ShellPartition.
func (p AspectShells) Unrank(c, r int64) (int64, int64) {
	if r <= p.A*p.B*c {
		ak := p.A * c
		y := p.B*(c-1) + 1 + (r-1)/ak
		x := (r-1)%ak + 1
		return x, y
	}
	r -= p.A * p.B * c
	bk1 := p.B * (c - 1)
	x := p.A*(c-1) + 1 + (r-1)/bk1
	y := (r-1)%bk1 + 1
	return x, y
}

// HyperbolicShellsLex is the hyperbolic partition with the *forward*
// lexicographic within-shell order (x ascending) — the other legitimate
// Step 2b choice for eq. 3.4's shells. It shares ℋ's optimal spread
// because the shells are identical; only within-shell ranks differ.
type HyperbolicShellsLex struct{}

// Name implements ShellPartition.
func (HyperbolicShellsLex) Name() string { return "hyperbolic-shells-lex" }

// Shell implements ShellPartition.
func (HyperbolicShellsLex) Shell(x, y int64) int64 { return x * y }

// Size implements ShellPartition.
func (HyperbolicShellsLex) Size(c int64) int64 { return numtheory.DivisorCount(c) }

// Rank implements ShellPartition: |{d | xy : d ≤ x}|.
func (HyperbolicShellsLex) Rank(x, y int64) int64 {
	n := x * y
	return numtheory.DivisorCount(n) - numtheory.DivisorsAtLeast(n, x+1)
}

// Unrank implements ShellPartition: the r-th smallest divisor.
func (HyperbolicShellsLex) Unrank(c, r int64) (int64, int64) {
	divs := numtheory.Divisors(c)
	x := divs[r-1]
	return x, c / x
}
