package core

import "testing"

// TestStep2bVariants verifies §3.1 Step 2b's claim that either traversal
// direction inside a shell yields a valid PF, and identifies the variants
// with the closed-form twins where they coincide.
func TestStep2bVariants(t *testing.T) {
	// Diagonal shells by increasing x = 𝒟's twin.
	byX := NewEnumerated(DiagonalShellsByX{})
	tw := Diagonal{Twin: true}
	for x := int64(1); x <= 30; x++ {
		for y := int64(1); y <= 30; y++ {
			if a, b := MustEncode(byX, x, y), MustEncode(tw, x, y); a != b {
				t.Fatalf("by-x diagonal (%d, %d): %d ≠ twin %d", x, y, a, b)
			}
		}
	}
	// Clockwise square shells = 𝒜₁,₁'s clockwise twin.
	cw := NewEnumerated(SquareShellsClockwise{})
	scw := SquareShell{Clockwise: true}
	for x := int64(1); x <= 30; x++ {
		for y := int64(1); y <= 30; y++ {
			if a, b := MustEncode(cw, x, y), MustEncode(scw, x, y); a != b {
				t.Fatalf("cw square (%d, %d): %d ≠ twin %d", x, y, a, b)
			}
		}
	}
}

// TestEnumeratedMatchesAspect cross-validates the closed-form 𝒜_{a,b}
// against the generic constructor over its shell partition — Theorem 3.1
// applied to §3.2.1's shells.
func TestEnumeratedMatchesAspect(t *testing.T) {
	for _, r := range [][2]int64{{1, 1}, {1, 2}, {2, 3}, {3, 1}} {
		enum := NewEnumerated(AspectShells{A: r[0], B: r[1]})
		closed := MustAspect(r[0], r[1])
		for x := int64(1); x <= 25; x++ {
			for y := int64(1); y <= 25; y++ {
				a := MustEncode(enum, x, y)
				b := MustEncode(closed, x, y)
				if a != b {
					t.Fatalf("%s (%d, %d): enumerated %d ≠ closed %d",
						closed.Name(), x, y, a, b)
				}
			}
		}
	}
}

// TestHyperbolicLexIsValidPF checks the forward-lexicographic hyperbolic
// variant: a different PF from ℋ, same shells, same spread.
func TestHyperbolicLexIsValidPF(t *testing.T) {
	lex := NewEnumerated(HyperbolicShellsLex{})
	var h Hyperbolic
	seen := make(map[int64]bool)
	diff := false
	for x := int64(1); x <= 25; x++ {
		for y := int64(1); y <= 25; y++ {
			z := MustEncode(lex, x, y)
			if seen[z] {
				t.Fatalf("collision at (%d, %d) → %d", x, y, z)
			}
			seen[z] = true
			gx, gy := MustDecode(lex, z)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d, %d) → %d → (%d, %d)", x, y, z, gx, gy)
			}
			if z != MustEncode(h, x, y) {
				diff = true
			}
			// Same shell prefix ⇒ same per-shell address range ⇒ identical
			// spread: both land in (D(xy−1), D(xy)].
		}
	}
	if !diff {
		t.Error("lex variant should differ from reverse-lex ℋ somewhere")
	}
	// On squares x = y the two variants agree about the shell and rank
	// only when the divisor count is odd and x = √shell is the middle
	// divisor... simply check spread equality instead:
	for _, n := range []int64{16, 64, 256} {
		var maxLex, maxRev int64
		for x := int64(1); x <= n; x++ {
			for y := int64(1); y <= n/x; y++ {
				if z := MustEncode(lex, x, y); z > maxLex {
					maxLex = z
				}
				if z := MustEncode(h, x, y); z > maxRev {
					maxRev = z
				}
			}
		}
		if maxLex != maxRev {
			t.Errorf("n = %d: lex spread %d ≠ reverse-lex spread %d", n, maxLex, maxRev)
		}
	}
}

// TestNewPartitionContracts runs the generic ShellPartition laws over the
// additional partitions.
func TestNewPartitionContracts(t *testing.T) {
	parts := []ShellPartition{
		DiagonalShellsByX{},
		SquareShellsClockwise{},
		AspectShells{A: 2, B: 3},
		AspectShells{A: 1, B: 4},
		HyperbolicShellsLex{},
	}
	for _, p := range parts {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for x := int64(1); x <= 24; x++ {
				for y := int64(1); y <= 24; y++ {
					c := p.Shell(x, y)
					r := p.Rank(x, y)
					if r < 1 || r > p.Size(c) {
						t.Fatalf("Rank(%d, %d) = %d outside [1, %d]", x, y, r, p.Size(c))
					}
					gx, gy := p.Unrank(c, r)
					if gx != x || gy != y {
						t.Fatalf("Unrank∘(Shell, Rank)(%d, %d) = (%d, %d)", x, y, gx, gy)
					}
				}
			}
		})
	}
}
