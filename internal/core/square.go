package core

import "pairfn/internal/numtheory"

// SquareShell is the square-shell pairing function 𝒜₁,₁ of eq. 3.3:
//
//	𝒜₁,₁(x, y) = m² + m + y − x + 1,  m = max(x−1, y−1).
//
// It enumerates N×N counterclockwise along the square shells
// max(x, y) = 1, 2, 3, … (Fig. 3) and utilizes storage perfectly — in the
// sense of eq. 3.2 — on square arrays: every position of an n-position
// square array receives an address ≤ n. If Clockwise is true the twin that
// walks each shell in the opposite direction is used.
//
// The zero value is the paper's 𝒜₁,₁.
type SquareShell struct {
	// Clockwise selects the twin that proceeds clockwise along each shell,
	// i.e. exchanges the roles of x and y.
	Clockwise bool
}

// Name implements PF.
func (s SquareShell) Name() string {
	if s.Clockwise {
		return "square-shell-cw"
	}
	return "square-shell"
}

// Encode implements PF.
func (s SquareShell) Encode(x, y int64) (int64, error) {
	if err := checkPos(x, y); err != nil {
		return 0, err
	}
	if s.Clockwise {
		x, y = y, x
	}
	m := x - 1
	if y-1 > m {
		m = y - 1
	}
	sq, err := numtheory.MulCheck(m, m)
	if err != nil {
		return 0, err
	}
	// m² + m + (y − x) + 1; the shell term dominates, so the remaining
	// additions stay within one shell width (≤ 2m+1) of sq.
	z, err := numtheory.AddCheck(sq, m+1)
	if err != nil {
		return 0, err
	}
	return z + (y - x), nil
}

// Decode implements PF. Shell m holds addresses m²+1 … (m+1)²; within the
// shell, the first m+1 addresses run up the column x = m+1 and the rest run
// right-to-left along the row y = m+1.
func (s SquareShell) Decode(z int64) (int64, int64, error) {
	if err := checkAddr(z); err != nil {
		return 0, 0, err
	}
	m := numtheory.Isqrt(z - 1)
	r := z - m*m // 1 … 2m+1
	var x, y int64
	if r <= m+1 {
		x, y = m+1, r
	} else {
		x, y = 2*m+2-r, m+1
	}
	if s.Clockwise {
		x, y = y, x
	}
	return x, y, nil
}
