package core

// Transposed is the twin combinator: it exchanges the roles of x and y in
// any PF, generalizing the bespoke Twin/Clockwise fields of 𝒟 and 𝒜₁,₁
// ("which, of course, has a twin obtained by exchanging x and y", §2).
// Transposing preserves bijectivity trivially and reflects the spread
// profile across the diagonal: a PF that favors wide arrays starts
// favoring tall ones.
type Transposed struct {
	// Inner is the PF whose axes are exchanged.
	Inner PF
}

// Name implements PF.
func (t Transposed) Name() string { return "transposed(" + t.Inner.Name() + ")" }

// Encode implements PF.
func (t Transposed) Encode(x, y int64) (int64, error) { return t.Inner.Encode(y, x) }

// Decode implements PF.
func (t Transposed) Decode(z int64) (int64, int64, error) {
	x, y, err := t.Inner.Decode(z)
	return y, x, err
}
