package core

import "testing"

// TestTransposedMatchesBespokeTwins: the generic combinator reproduces the
// hand-written twins exactly.
func TestTransposedMatchesBespokeTwins(t *testing.T) {
	pairs := []struct{ a, b PF }{
		{Transposed{Inner: Diagonal{}}, Diagonal{Twin: true}},
		{Transposed{Inner: SquareShell{}}, SquareShell{Clockwise: true}},
		{Transposed{Inner: MustAspect(2, 3)}, MustAspect(3, 2)},
	}
	for _, p := range pairs {
		for x := int64(1); x <= 25; x++ {
			for y := int64(1); y <= 25; y++ {
				av := MustEncode(p.a, x, y)
				bv := MustEncode(p.b, x, y)
				if p.a.Name() == "transposed(aspect-2x3)" {
					// 𝒜₃,₂ is not literally the transpose of 𝒜₂,₃ (the
					// within-shell walks differ); only the spread profile
					// reflects. Skip exact equality for this pair.
					continue
				}
				if av != bv {
					t.Fatalf("%s(%d, %d) = %d ≠ %s = %d", p.a.Name(), x, y, av, p.b.Name(), bv)
				}
			}
		}
	}
}

// TestTransposedLaws: the transpose is still a PF.
func TestTransposedLaws(t *testing.T) {
	for _, inner := range []PF{Diagonal{}, SquareShell{}, Hyperbolic{}, MustAspect(1, 3)} {
		f := Transposed{Inner: inner}
		if err := VerifyInjective(f, 30, 30); err != nil {
			t.Error(err)
		}
		if err := VerifySurjectivePrefix(f, 500); err != nil {
			t.Error(err)
		}
	}
	// Double transpose is the identity.
	d := Transposed{Inner: Transposed{Inner: Hyperbolic{}}}
	for x := int64(1); x <= 15; x++ {
		for y := int64(1); y <= 15; y++ {
			if MustEncode(d, x, y) != MustEncode(Hyperbolic{}, x, y) {
				t.Fatalf("double transpose differs at (%d, %d)", x, y)
			}
		}
	}
}

// TestTransposedSpreadReflects: 𝒜₁,₄ is perfectly compact on 1:4 arrays;
// its transpose is perfectly compact on 4:1 arrays.
func TestTransposedSpreadReflects(t *testing.T) {
	f := Transposed{Inner: MustAspect(1, 4)}
	for k := int64(1); k <= 8; k++ {
		var max int64
		for x := int64(1); x <= 4*k; x++ {
			for y := int64(1); y <= k; y++ {
				if z := MustEncode(f, x, y); z > max {
					max = z
				}
			}
		}
		if max != 4*k*k {
			t.Errorf("k = %d: max = %d, want %d", k, max, 4*k*k)
		}
	}
}
