package core

import "fmt"

// Verification utilities: machine checks of the PF laws on bounded
// regions, shared by this repository's tests and available to users
// validating their own ShellPartitions or PFs (Theorem 3.1 guarantees
// validity for anything built through Procedure PF-Constructor; these
// checks catch hand-written Rank/Unrank bugs).

// VerifyInjective checks that f assigns distinct positive addresses to
// every position of [1, rows]×[1, cols] and that Decode inverts Encode
// there.
func VerifyInjective(f PF, rows, cols int64) error {
	if rows < 1 || cols < 1 {
		return fmt.Errorf("core: VerifyInjective(%d, %d): empty box", rows, cols)
	}
	seen := make(map[int64][2]int64, rows*cols)
	for x := int64(1); x <= rows; x++ {
		for y := int64(1); y <= cols; y++ {
			z, err := f.Encode(x, y)
			if err != nil {
				return fmt.Errorf("core: %s.Encode(%d, %d): %w", f.Name(), x, y, err)
			}
			if z < 1 {
				return fmt.Errorf("core: %s.Encode(%d, %d) = %d < 1", f.Name(), x, y, z)
			}
			if p, dup := seen[z]; dup {
				return fmt.Errorf("core: %s: collision: (%d, %d) and (%d, %d) → %d",
					f.Name(), p[0], p[1], x, y, z)
			}
			seen[z] = [2]int64{x, y}
			gx, gy, err := f.Decode(z)
			if err != nil {
				return fmt.Errorf("core: %s.Decode(%d): %w", f.Name(), z, err)
			}
			if gx != x || gy != y {
				return fmt.Errorf("core: %s: Decode(Encode(%d, %d)) = (%d, %d)",
					f.Name(), x, y, gx, gy)
			}
		}
	}
	return nil
}

// VerifySurjectivePrefix checks that every address in [1, n] has a
// preimage in N×N: Decode succeeds and Encode maps back — the
// "enumeration" half of Theorem 3.1's proof.
func VerifySurjectivePrefix(f PF, n int64) error {
	if n < 1 {
		return fmt.Errorf("core: VerifySurjectivePrefix(%d): empty prefix", n)
	}
	for z := int64(1); z <= n; z++ {
		x, y, err := f.Decode(z)
		if err != nil {
			return fmt.Errorf("core: %s.Decode(%d): %w", f.Name(), z, err)
		}
		if x < 1 || y < 1 {
			return fmt.Errorf("core: %s.Decode(%d) = (%d, %d) outside N×N", f.Name(), z, x, y)
		}
		back, err := f.Encode(x, y)
		if err != nil {
			return fmt.Errorf("core: %s.Encode(Decode(%d)): %w", f.Name(), z, err)
		}
		if back != z {
			return fmt.Errorf("core: %s: Encode(Decode(%d)) = %d", f.Name(), z, back)
		}
	}
	return nil
}

// VerifyPartition checks the ShellPartition contract on a box and on the
// first shells: ranks are in range, Unrank inverts (Shell, Rank), and each
// shell's ranks enumerate 1..Size without repetition.
func VerifyPartition(p ShellPartition, box, shells int64) error {
	if box < 1 || shells < 1 {
		return fmt.Errorf("core: VerifyPartition(%d, %d): empty region", box, shells)
	}
	for x := int64(1); x <= box; x++ {
		for y := int64(1); y <= box; y++ {
			c := p.Shell(x, y)
			if c < 1 {
				return fmt.Errorf("core: %s.Shell(%d, %d) = %d < 1", p.Name(), x, y, c)
			}
			r := p.Rank(x, y)
			if r < 1 || r > p.Size(c) {
				return fmt.Errorf("core: %s.Rank(%d, %d) = %d outside [1, %d]",
					p.Name(), x, y, r, p.Size(c))
			}
			gx, gy := p.Unrank(c, r)
			if gx != x || gy != y {
				return fmt.Errorf("core: %s: Unrank(%d, %d) = (%d, %d), want (%d, %d)",
					p.Name(), c, r, gx, gy, x, y)
			}
		}
	}
	for c := int64(1); c <= shells; c++ {
		size := p.Size(c)
		if size < 1 {
			return fmt.Errorf("core: %s.Size(%d) = %d < 1", p.Name(), c, size)
		}
		for r := int64(1); r <= size; r++ {
			x, y := p.Unrank(c, r)
			if got := p.Shell(x, y); got != c {
				return fmt.Errorf("core: %s: Unrank(%d, %d) = (%d, %d) lies in shell %d",
					p.Name(), c, r, x, y, got)
			}
			if got := p.Rank(x, y); got != r {
				return fmt.Errorf("core: %s: Rank(Unrank(%d, %d)) = %d", p.Name(), c, r, got)
			}
		}
	}
	return nil
}
