package core

import (
	"strings"
	"testing"
)

// TestVerifyHelpersAcceptAll runs the exported validators over the whole
// PF zoo and every shell partition — the package eating its own dog food.
func TestVerifyHelpersAcceptAll(t *testing.T) {
	for _, f := range allPFs() {
		if err := VerifyInjective(f, 40, 40); err != nil {
			t.Errorf("%v", err)
		}
		if err := VerifySurjectivePrefix(f, 1000); err != nil {
			t.Errorf("%v", err)
		}
	}
	for _, f := range []PF{Morton{}, Hilbert{Order: 6}} {
		if err := VerifyInjective(f, 40, 40); err != nil {
			t.Errorf("%v", err)
		}
	}
	parts := []ShellPartition{
		DiagonalShells{}, SquareShells{}, HyperbolicShells{},
		DiagonalShellsByX{}, SquareShellsClockwise{},
		AspectShells{A: 3, B: 2}, HyperbolicShellsLex{},
	}
	for _, p := range parts {
		if err := VerifyPartition(p, 25, 15); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// brokenPartition violates the rank contract on purpose.
type brokenPartition struct{ DiagonalShells }

func (brokenPartition) Name() string { return "broken" }
func (brokenPartition) Rank(x, y int64) int64 {
	if x == 3 && y == 2 {
		return 1 // collides with the true rank-1 member of shell 4
	}
	return y
}

// TestVerifyHelpersReject checks the validators actually catch breakage.
func TestVerifyHelpersReject(t *testing.T) {
	if err := VerifyPartition(brokenPartition{}, 10, 6); err == nil {
		t.Error("broken partition accepted")
	}
	// The PF built from it must fail verification — either as a collision
	// or, earlier, as a broken round trip (Decode lands on the position
	// the duplicate rank shadows).
	bad := NewEnumerated(brokenPartition{})
	err := VerifyInjective(bad, 10, 10)
	if err == nil ||
		!(strings.Contains(err.Error(), "collision") || strings.Contains(err.Error(), "Decode(Encode")) {
		t.Errorf("broken PF: %v", err)
	}
	// RowMajor is partial: surjectivity on a prefix holds, injectivity on
	// a box wider than its strip fails with a domain error.
	if err := VerifyInjective(RowMajor{Width: 4}, 3, 10); err == nil {
		t.Error("partial mapping should fail the wide box")
	}
	if err := VerifySurjectivePrefix(RowMajor{Width: 4}, 100); err != nil {
		t.Errorf("row-major prefix: %v", err)
	}
	// Degenerate regions.
	if err := VerifyInjective(Diagonal{}, 0, 5); err == nil {
		t.Error("empty box should fail")
	}
	if err := VerifySurjectivePrefix(Diagonal{}, 0); err == nil {
		t.Error("empty prefix should fail")
	}
	if err := VerifyPartition(DiagonalShells{}, 0, 1); err == nil {
		t.Error("empty region should fail")
	}
}
