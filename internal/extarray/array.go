package extarray

import (
	"errors"
	"fmt"

	"pairfn/internal/core"
)

// ErrBounds reports access outside the array's current logical bounds.
var ErrBounds = errors.New("extarray: position outside current bounds")

// ErrShrink reports an attempt to shrink an array below 0×0.
var ErrShrink = errors.New("extarray: cannot shrink below zero")

// Stats records the cost of a table's lifetime of operations.
type Stats struct {
	// Moves counts elements physically relocated to a different address by
	// reshaping. PF-mapped arrays never move elements; the naive row-major
	// scheme moves the whole array on each width change.
	Moves int64
	// Reshapes counts grow/shrink operations.
	Reshapes int64
	// Footprint is the largest address ever occupied (the realized spread).
	Footprint int64
}

// A Table is a dynamically reshapable two-dimensional array with 1-based
// positions (x = row, y = column).
type Table[T any] interface {
	// Dims returns the current logical dimensions (rows, cols).
	Dims() (rows, cols int64)
	// Get returns the element at (x, y); ok is false if the position was
	// never set. An error means the position is outside current bounds.
	Get(x, y int64) (v T, ok bool, err error)
	// Set stores v at (x, y).
	Set(x, y int64, v T) error
	// Resize sets the logical dimensions, growing and/or shrinking in one
	// step. Shrinking discards elements outside the new bounds.
	Resize(rows, cols int64) error
	// Stats returns the accumulated cost counters.
	Stats() Stats
}

// Array is a Table whose positions are laid out by a pairing function (or
// any injective storage mapping): reshaping never remaps surviving
// positions, so Moves stays 0 for pure growth and equals only the number of
// discarded elements for shrinks.
type Array[T any] struct {
	f     core.StorageMapping
	store Store[T]
	rows  int64
	cols  int64
	stats Stats
}

// New returns an empty rows×cols Array laid out by f and backed by store.
func New[T any](f core.StorageMapping, store Store[T], rows, cols int64) (*Array[T], error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("extarray: dimensions %d×%d invalid", rows, cols)
	}
	return &Array[T]{f: f, store: store, rows: rows, cols: cols}, nil
}

// NewMapBacked returns a rows×cols Array over f with a fresh MapStore.
func NewMapBacked[T any](f core.StorageMapping, rows, cols int64) *Array[T] {
	a, err := New[T](f, NewMapStore[T](), rows, cols)
	if err != nil {
		panic(err)
	}
	return a
}

// Mapping returns the storage mapping laying out this array.
func (a *Array[T]) Mapping() core.StorageMapping { return a.f }

// Dims implements Table.
func (a *Array[T]) Dims() (int64, int64) { return a.rows, a.cols }

func (a *Array[T]) check(x, y int64) error {
	if x < 1 || y < 1 || x > a.rows || y > a.cols {
		return fmt.Errorf("%w: (%d, %d) in %d×%d", ErrBounds, x, y, a.rows, a.cols)
	}
	return nil
}

// Get implements Table.
func (a *Array[T]) Get(x, y int64) (T, bool, error) {
	var zero T
	if err := a.check(x, y); err != nil {
		return zero, false, err
	}
	addr, err := a.f.Encode(x, y)
	if err != nil {
		return zero, false, err
	}
	v, ok := a.store.Get(addr)
	return v, ok, nil
}

// Set implements Table.
func (a *Array[T]) Set(x, y int64, v T) error {
	if err := a.check(x, y); err != nil {
		return err
	}
	addr, err := a.f.Encode(x, y)
	if err != nil {
		return err
	}
	a.store.Set(addr, v)
	if addr > a.stats.Footprint {
		a.stats.Footprint = addr
	}
	return nil
}

// Resize implements Table. Growth moves nothing — that is the point of
// PF-based storage mappings. Shrinking deletes the elements of discarded
// rows/columns (counted as moves, since a remapping scheme would have to
// touch at least those too) and leaves every surviving element in place.
func (a *Array[T]) Resize(rows, cols int64) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("%w: to %d×%d", ErrShrink, rows, cols)
	}
	a.stats.Reshapes++
	// Discard elements that fall outside the new bounds.
	if rows < a.rows || cols < a.cols {
		for x := int64(1); x <= a.rows; x++ {
			for y := int64(1); y <= a.cols; y++ {
				if x <= rows && y <= cols {
					continue
				}
				addr, err := a.f.Encode(x, y)
				if err != nil {
					return err
				}
				if _, ok := a.store.Get(addr); ok {
					a.store.Delete(addr)
					a.stats.Moves++
				}
			}
		}
	}
	a.rows, a.cols = rows, cols
	return nil
}

// GrowRows adds delta rows (delta ≥ 0).
func (a *Array[T]) GrowRows(delta int64) error { return a.Resize(a.rows+delta, a.cols) }

// GrowCols adds delta columns (delta ≥ 0).
func (a *Array[T]) GrowCols(delta int64) error { return a.Resize(a.rows, a.cols+delta) }

// ShrinkRows removes delta rows.
func (a *Array[T]) ShrinkRows(delta int64) error { return a.Resize(a.rows-delta, a.cols) }

// ShrinkCols removes delta columns.
func (a *Array[T]) ShrinkCols(delta int64) error { return a.Resize(a.rows, a.cols-delta) }

// Stats implements Table.
func (a *Array[T]) Stats() Stats {
	s := a.stats
	if m := a.store.MaxAddr(); m > s.Footprint {
		s.Footprint = m
	}
	return s
}

// Len returns the number of elements currently stored.
func (a *Array[T]) Len() int { return a.store.Len() }
