package extarray

import (
	"errors"
	"testing"

	"pairfn/internal/core"
)

// fill writes a recognizable value into every cell of the table.
func fill(t *testing.T, tab Table[int64], rows, cols int64) {
	t.Helper()
	for x := int64(1); x <= rows; x++ {
		for y := int64(1); y <= cols; y++ {
			if err := tab.Set(x, y, x*1000+y); err != nil {
				t.Fatalf("Set(%d, %d): %v", x, y, err)
			}
		}
	}
}

// verify checks every cell holds the fill value.
func verify(t *testing.T, tab Table[int64], rows, cols int64) {
	t.Helper()
	for x := int64(1); x <= rows; x++ {
		for y := int64(1); y <= cols; y++ {
			v, ok, err := tab.Get(x, y)
			if err != nil {
				t.Fatalf("Get(%d, %d): %v", x, y, err)
			}
			if !ok || v != x*1000+y {
				t.Fatalf("Get(%d, %d) = %d, %v; want %d", x, y, v, ok, x*1000+y)
			}
		}
	}
}

// mappings under test for the PF-backed array.
func mappings() []core.StorageMapping {
	return []core.StorageMapping{
		core.Diagonal{},
		core.SquareShell{},
		core.MustAspect(1, 1),
		core.MustAspect(2, 3),
		core.Hyperbolic{},
		core.MustDovetail(core.MustAspect(1, 1), core.MustAspect(1, 2), core.MustAspect(2, 1)),
	}
}

// TestReshapePreservesData grows and shrinks in all directions and checks
// surviving data is intact and moves stay at the shrink-discard minimum.
func TestReshapePreservesData(t *testing.T) {
	for _, m := range mappings() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			a := NewMapBacked[int64](m, 4, 4)
			fill(t, a, 4, 4)
			if err := a.GrowRows(3); err != nil {
				t.Fatal(err)
			}
			if err := a.GrowCols(2); err != nil {
				t.Fatal(err)
			}
			verify(t, a, 4, 4) // old data untouched
			fill(t, a, 7, 6)   // fill the grown region too
			verify(t, a, 7, 6)
			if got := a.Stats().Moves; got != 0 {
				t.Fatalf("growth moved %d elements, want 0", got)
			}
			if err := a.ShrinkRows(2); err != nil {
				t.Fatal(err)
			}
			if err := a.ShrinkCols(3); err != nil {
				t.Fatal(err)
			}
			verify(t, a, 5, 3)
			// Shrink discarded exactly the cells outside 5×3 that were set:
			// 7·6 − 5·3 = 27.
			if got := a.Stats().Moves; got != 27 {
				t.Fatalf("shrink discarded %d, want 27", got)
			}
			if a.Len() != 15 {
				t.Fatalf("Len = %d, want 15", a.Len())
			}
		})
	}
}

// TestReshapeCosts is experiment E17's unit form: growing an array n times
// by one column costs zero moves under a PF mapping and Θ(n²) total moves
// under the naive row-major scheme.
func TestReshapeCosts(t *testing.T) {
	const n = 32
	pf := NewMapBacked[int64](core.SquareShell{}, n, 1)
	naive := NewNaiveRowMajor[int64](n, 1)
	fill(t, pf, n, 1)
	fill(t, naive, n, 1)
	for c := int64(1); c < n; c++ {
		if err := pf.GrowCols(1); err != nil {
			t.Fatal(err)
		}
		if err := naive.GrowCols(1); err != nil {
			t.Fatal(err)
		}
		// Populate the new column so the next remap has to carry it.
		for x := int64(1); x <= n; x++ {
			if err := pf.Set(x, c+1, x*1000+c+1); err != nil {
				t.Fatal(err)
			}
			if err := naive.Set(x, c+1, x*1000+c+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	verify(t, pf, n, n)
	verify(t, naive, n, n)
	if got := pf.Stats().Moves; got != 0 {
		t.Errorf("PF array moved %d elements, want 0", got)
	}
	// Naive: reshape k moves n·k elements, total n·Σk = n·(n−1)n/2 ∈ Θ(n³)
	// for n column-adds of an n-row array — per element of final size n²,
	// that is Θ(n) moves each, the Ω(n²)-work-for-O(n)-changes of §3.
	want := n * (n - 1) * n / 2
	if got := naive.Stats().Moves; got != int64(want) {
		t.Errorf("naive moves = %d, want %d", got, want)
	}
}

// TestFootprintOrdering: for thin (1×n) tables the hyperbolic mapping's
// footprint beats the diagonal's, which beats nothing — the §3.2 spread
// race realized in storage.
func TestFootprintOrdering(t *testing.T) {
	const n = 256
	h := NewMapBacked[int64](core.Hyperbolic{}, 1, n)
	d := NewMapBacked[int64](core.Diagonal{}, 1, n)
	for y := int64(1); y <= n; y++ {
		if err := h.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
		if err := d.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
	}
	fh, fd := h.Stats().Footprint, d.Stats().Footprint
	if fh >= fd {
		t.Errorf("hyperbolic footprint %d should beat diagonal %d on 1×%d", fh, fd, n)
	}
	if fd != (n*n+n)/2 {
		t.Errorf("diagonal footprint = %d, want (n²+n)/2 = %d", fd, (n*n+n)/2)
	}
}

// TestBoundsAndErrors exercises bounds checks on both implementations.
func TestBoundsAndErrors(t *testing.T) {
	tables := []Table[int64]{
		NewMapBacked[int64](core.Diagonal{}, 3, 3),
		NewNaiveRowMajor[int64](3, 3),
	}
	for _, tab := range tables {
		if err := tab.Set(4, 1, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("Set(4, 1): %v", err)
		}
		if err := tab.Set(1, 0, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("Set(1, 0): %v", err)
		}
		if _, _, err := tab.Get(0, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("Get(0, 1): %v", err)
		}
		if err := tab.Resize(-1, 2); err == nil {
			t.Error("Resize(-1, 2) should fail")
		}
		// Unset cell reads as absent, not error.
		if _, ok, err := tab.Get(2, 2); ok || err != nil {
			t.Errorf("Get of unset cell: ok=%v err=%v", ok, err)
		}
	}
	if _, err := New[int64](core.Diagonal{}, NewMapStore[int64](), -1, 0); err == nil {
		t.Error("New with negative dims should fail")
	}
}

// TestNaiveRowMajorSemantics verifies the baseline preserves data across
// width changes (it moves everything, but correctly).
func TestNaiveRowMajorSemantics(t *testing.T) {
	a := NewNaiveRowMajor[int64](3, 4)
	fill(t, a, 3, 4)
	if err := a.GrowCols(2); err != nil {
		t.Fatal(err)
	}
	verify(t, a, 3, 4)
	if err := a.GrowRows(2); err != nil {
		t.Fatal(err)
	}
	verify(t, a, 3, 4)
	if err := a.ShrinkCols(3); err != nil {
		t.Fatal(err)
	}
	verify(t, a, 3, 3)
	if err := a.ShrinkRows(4); err != nil {
		t.Fatal(err)
	}
	verify(t, a, 1, 3)
	if r, c := a.Dims(); r != 1 || c != 3 {
		t.Fatalf("Dims = %d×%d", r, c)
	}
	if a.Stats().Reshapes != 4 {
		t.Errorf("Reshapes = %d, want 4", a.Stats().Reshapes)
	}
}

// TestPagedStoreParity checks PagedStore behaves like MapStore and exposes
// page counts.
func TestPagedStoreParity(t *testing.T) {
	ps := NewPagedStore[int64]()
	ms := NewMapStore[int64]()
	ops := []struct {
		addr int64
		val  int64
	}{{1, 10}, {1024, 20}, {1025, 30}, {999999, 40}, {1, 11}}
	for _, op := range ops {
		ps.Set(op.addr, op.val)
		ms.Set(op.addr, op.val)
	}
	for _, addr := range []int64{1, 2, 1024, 1025, 999999} {
		pv, pok := ps.Get(addr)
		mv, mok := ms.Get(addr)
		if pv != mv || pok != mok {
			t.Errorf("addr %d: paged (%d, %v) vs map (%d, %v)", addr, pv, pok, mv, mok)
		}
	}
	if ps.Len() != ms.Len() {
		t.Errorf("Len: %d vs %d", ps.Len(), ms.Len())
	}
	if ps.MaxAddr() != 999999 || ms.MaxAddr() != 999999 {
		t.Error("MaxAddr mismatch")
	}
	ps.Delete(1024)
	ms.Delete(1024)
	if _, ok := ps.Get(1024); ok {
		t.Error("paged delete failed")
	}
	if ps.Len() != ms.Len() {
		t.Errorf("Len after delete: %d vs %d", ps.Len(), ms.Len())
	}
	// Deleting an absent address is a no-op.
	ps.Delete(5555)
	if ps.Pages() < 3 {
		t.Errorf("expected ≥ 3 pages, got %d", ps.Pages())
	}
}

// TestPagedStoreExposesSpread demonstrates the physical effect of spread:
// storing a 1×n row costs ~1 page under 𝒜_{1,n-ish} mappings but many pages
// under 𝒟, whose addresses scatter quadratically.
func TestPagedStoreExposesSpread(t *testing.T) {
	const n = 512
	diag := NewPagedStore[int64]()
	hyp := NewPagedStore[int64]()
	ad, _ := New[int64](core.Diagonal{}, diag, 1, n)
	ah, _ := New[int64](core.Hyperbolic{}, hyp, 1, n)
	for y := int64(1); y <= n; y++ {
		if err := ad.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
		if err := ah.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
	}
	if diag.Pages() <= hyp.Pages() {
		t.Errorf("diagonal pages %d should exceed hyperbolic pages %d",
			diag.Pages(), hyp.Pages())
	}
}
