package extarray

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file via write(w) so that path is either left
// untouched (on any error, including a partial write or a crash mid-write)
// or atomically replaced by the complete new contents. The sequence is the
// classic temp-file + fsync + rename + fsync-dir dance:
//
//  1. create an exclusive temp file next to path (same filesystem, so the
//     rename in step 4 is atomic),
//  2. stream the contents through write,
//  3. fsync the temp file — data is durable before it becomes visible,
//  4. rename over path — readers see either the old or the new snapshot,
//     never a prefix,
//  5. fsync the directory so the rename itself survives a crash.
//
// On any failure the temp file is removed and the previous contents of
// path remain intact. This is the only sanctioned way to persist snapshots
// (see Array.SaveFile and tabled's snapshot loop).
func AtomicWriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("extarray: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("extarray: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("extarray: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("extarray: atomic write %s: close: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("extarray: atomic write %s: rename: %w", path, err)
	}
	// Persist the rename. Directory fsync can fail on filesystems that do
	// not support it (the file data is already synced); surface real errors
	// but tolerate unsupported operations.
	if d, derr := os.Open(dir); derr == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil && !os.IsPermission(serr) {
			// Some filesystems (e.g. certain network mounts) reject
			// directory fsync with EINVAL; the rename itself succeeded and
			// the data is synced, so treat that as best-effort.
			if !isUnsupportedSync(serr) {
				return fmt.Errorf("extarray: atomic write %s: dir sync: %w", path, serr)
			}
		}
	}
	return nil
}

// isUnsupportedSync reports whether err looks like "this filesystem cannot
// fsync a directory" rather than a real durability failure.
func isUnsupportedSync(err error) bool {
	return os.IsNotExist(err) ||
		pathErrIs(err, "invalid argument") ||
		pathErrIs(err, "operation not supported")
}

func pathErrIs(err error, substr string) bool {
	pe, ok := err.(*os.PathError)
	return ok && pe.Err != nil && pe.Err.Error() == substr
}

// SaveFile atomically persists the array to path via Save: the previous
// snapshot at path is never corrupted, even by a crash mid-write.
func (a *Array[T]) SaveFile(path string) error {
	return AtomicWriteFile(path, func(w io.Writer) error { return a.Save(w) })
}

// LoadFile reconstructs an Array persisted by SaveFile (or any reader-level
// Save output written to a file).
func LoadFile[T any](path string, f PFLike, store Store[T]) (*Array[T], error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Load[T](r, f, store)
}
