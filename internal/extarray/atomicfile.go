package extarray

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Failure-injection seams for the durability tests: production code always
// sees the os implementations; atomicfile_test.go swaps these to prove the
// cleanup contract (temp file removed, previous snapshot intact) under
// rename and fsync failure.
var (
	osRename = os.Rename
	syncFile = func(f *os.File) error { return f.Sync() }
)

// AtomicWriteFile writes a file via write(w) so that path is either left
// untouched (on any error, including a partial write or a crash mid-write)
// or atomically replaced by the complete new contents. The sequence is the
// classic temp-file + fsync + rename + fsync-dir dance:
//
//  1. create an exclusive temp file next to path (same filesystem, so the
//     rename in step 4 is atomic),
//  2. stream the contents through write,
//  3. fsync the temp file — data is durable before it becomes visible,
//  4. rename over path — readers see either the old or the new snapshot,
//     never a prefix,
//  5. fsync the directory so the rename itself survives a crash.
//
// On any failure the temp file is removed and the previous contents of
// path remain intact. This is the only sanctioned way to persist snapshots
// (see Array.SaveFile and tabled's snapshot loop).
func AtomicWriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("extarray: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("extarray: atomic write %s: %w", path, err)
	}
	if err = syncFile(tmp); err != nil {
		return fmt.Errorf("extarray: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("extarray: atomic write %s: close: %w", path, err)
	}
	if err = osRename(tmpName, path); err != nil {
		return fmt.Errorf("extarray: atomic write %s: rename: %w", path, err)
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("extarray: atomic write %s: %w", path, err)
	}
	return nil
}

// SyncDir fsyncs a directory so that a just-completed rename or create in
// it survives a crash. Filesystems that cannot fsync directories (certain
// network mounts reject it with EINVAL or EPERM; the file data itself is
// already synced by then) are tolerated as best-effort — only real
// durability failures are surfaced. Shared by AtomicWriteFile and the
// tabled write-ahead log, which must persist the creation of a fresh log
// file before acknowledging the writes it carries.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		// The directory vanished or is unreadable; the caller's file ops
		// succeeded, so report nothing — there is no handle to sync.
		return nil
	}
	serr := syncFile(d)
	d.Close()
	if serr != nil && !os.IsPermission(serr) && !isUnsupportedSync(serr) {
		return fmt.Errorf("extarray: dir sync %s: %w", dir, serr)
	}
	return nil
}

// isUnsupportedSync reports whether err looks like "this filesystem cannot
// fsync a directory" rather than a real durability failure.
func isUnsupportedSync(err error) bool {
	return os.IsNotExist(err) ||
		pathErrIs(err, "invalid argument") ||
		pathErrIs(err, "operation not supported")
}

func pathErrIs(err error, substr string) bool {
	pe, ok := err.(*os.PathError)
	return ok && pe.Err != nil && pe.Err.Error() == substr
}

// SaveFile atomically persists the array to path via Save: the previous
// snapshot at path is never corrupted, even by a crash mid-write.
func (a *Array[T]) SaveFile(path string) error {
	return AtomicWriteFile(path, func(w io.Writer) error { return a.Save(w) })
}

// LoadFile reconstructs an Array persisted by SaveFile (or any reader-level
// Save output written to a file).
func LoadFile[T any](path string, f PFLike, store Store[T]) (*Array[T], error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Load[T](r, f, store)
}
