package extarray

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pairfn/internal/core"
)

// TestAtomicWriteFileCrashSafety verifies the crash-safety contract: a
// write that fails partway (the moral equivalent of a crash mid-write)
// leaves the previous file contents fully intact, and no temp debris
// accumulates.
func TestAtomicWriteFileCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")

	// Install a good snapshot.
	a := NewMapBacked[int64](core.SquareShell{}, 8, 8)
	for x := int64(1); x <= 8; x++ {
		for y := int64(1); y <= 8; y++ {
			if err := a.Set(x, y, x*100+y); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A later save dies partway through: some bytes are written, then the
	// writer fails (torn write). The original file must be untouched.
	boom := errors.New("simulated crash")
	err = AtomicWriteFile(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage that must never reach snap.gob")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("AtomicWriteFile error = %v, want wrapped simulated crash", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Fatal("failed atomic write corrupted the previous snapshot")
	}

	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}

	// And the surviving snapshot still loads.
	b, err := LoadFile[int64](path, core.SquareShell{}, NewMapStore[int64]())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := b.Get(5, 7); err != nil || !ok || v != 507 {
		t.Fatalf("reloaded snapshot Get(5,7) = %d, %v, %v; want 507, true, nil", v, ok, err)
	}
}

// TestAtomicWriteFileRenameFailure injects a failure into the rename step:
// the previous snapshot must survive byte-for-byte and the temp file must
// be cleaned up.
func TestAtomicWriteFileRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")
	if err := os.WriteFile(path, []byte("previous contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected rename failure")
	osRename = func(_, _ string) error { return boom }
	defer func() { osRename = os.Rename }()
	err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new contents"))
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("AtomicWriteFile = %v, want injected rename failure", err)
	}
	after, rerr := os.ReadFile(path)
	if rerr != nil || string(after) != "previous contents" {
		t.Fatalf("previous snapshot damaged: %q, %v", after, rerr)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}

// TestAtomicWriteFileFsyncFailure injects a failure into the temp-file
// fsync: data that cannot be made durable must never become visible at the
// target path.
func TestAtomicWriteFileFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")
	if err := os.WriteFile(path, []byte("previous contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected fsync failure")
	syncFile = func(*os.File) error { return boom }
	defer func() { syncFile = func(f *os.File) error { return f.Sync() } }()
	err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new contents"))
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("AtomicWriteFile = %v, want injected fsync failure", err)
	}
	after, rerr := os.ReadFile(path)
	if rerr != nil || string(after) != "previous contents" {
		t.Fatalf("previous snapshot damaged: %q, %v", after, rerr)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}

// TestSaveFileRoundTrip is the happy path: SaveFile then LoadFile
// reproduces the array, replacing any previous snapshot at the path.
func TestSaveFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arr.gob")
	a := NewMapBacked[string](core.Diagonal{}, 4, 4)
	if err := a.Set(2, 3, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second, different snapshot: rename must replace.
	if err := a.Set(4, 4, "world"); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadFile[string](path, core.Diagonal{}, NewMapStore[string]())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		x, y int64
		want string
	}{{2, 3, "hello"}, {4, 4, "world"}} {
		if v, ok, err := b.Get(tc.x, tc.y); err != nil || !ok || v != tc.want {
			t.Fatalf("Get(%d,%d) = %q, %v, %v; want %q", tc.x, tc.y, v, ok, err, tc.want)
		}
	}
	if _, err := LoadFile[string](path, core.SquareShell{}, NewMapStore[string]()); err == nil {
		t.Fatal("LoadFile under the wrong mapping should fail the name check")
	}
}
