package extarray

// DenseStore backs an array with one flat slice indexed directly by
// address: the memory model of a language runtime that allocates the
// address space a storage mapping names. It makes the §3.2 spread cost
// literal — storing an array whose mapping has spread S(n) allocates S(n)
// slots — and is therefore the store under which the compactness race
// matters most. Capacity grows geometrically to amortize appends.
type DenseStore[T any] struct {
	vals []T
	used []bool
	n    int
	max  int64
}

// NewDenseStore returns an empty DenseStore.
func NewDenseStore[T any]() *DenseStore[T] { return &DenseStore[T]{} }

// Get implements Store.
func (s *DenseStore[T]) Get(addr int64) (T, bool) {
	var zero T
	if addr < 1 || addr > int64(len(s.vals)) {
		return zero, false
	}
	if !s.used[addr-1] {
		return zero, false
	}
	return s.vals[addr-1], true
}

// Set implements Store.
func (s *DenseStore[T]) Set(addr int64, v T) {
	if addr < 1 {
		return
	}
	for int64(len(s.vals)) < addr {
		// Geometric growth, at least to addr.
		newCap := int64(cap(s.vals)) * 2
		if newCap < addr {
			newCap = addr
		}
		grown := make([]T, newCap)
		copy(grown, s.vals)
		s.vals = grown[:newCap]
		grownUsed := make([]bool, newCap)
		copy(grownUsed, s.used)
		s.used = grownUsed[:newCap]
	}
	if !s.used[addr-1] {
		s.used[addr-1] = true
		s.n++
	}
	s.vals[addr-1] = v
	if addr > s.max {
		s.max = addr
	}
}

// Delete implements Store.
func (s *DenseStore[T]) Delete(addr int64) {
	if addr < 1 || addr > int64(len(s.vals)) || !s.used[addr-1] {
		return
	}
	var zero T
	s.vals[addr-1] = zero
	s.used[addr-1] = false
	s.n--
}

// Len implements Store.
func (s *DenseStore[T]) Len() int { return s.n }

// MaxAddr implements Store.
func (s *DenseStore[T]) MaxAddr() int64 { return s.max }

// Slots returns the allocated slot count — the literal memory bill of the
// mapping's spread.
func (s *DenseStore[T]) Slots() int64 { return int64(len(s.vals)) }
