package extarray

import (
	"testing"

	"pairfn/internal/core"
	"pairfn/internal/numtheory"
)

func TestDenseStoreParity(t *testing.T) {
	d := NewDenseStore[int64]()
	m := NewMapStore[int64]()
	ops := []struct{ addr, val int64 }{
		{1, 10}, {100, 20}, {50, 30}, {100, 21}, {7, 40},
	}
	for _, op := range ops {
		d.Set(op.addr, op.val)
		m.Set(op.addr, op.val)
	}
	for _, addr := range []int64{1, 2, 7, 50, 100, 101} {
		dv, dok := d.Get(addr)
		mv, mok := m.Get(addr)
		if dv != mv || dok != mok {
			t.Errorf("addr %d: dense (%d,%v) map (%d,%v)", addr, dv, dok, mv, mok)
		}
	}
	if d.Len() != m.Len() || d.MaxAddr() != m.MaxAddr() {
		t.Errorf("Len/MaxAddr mismatch: %d/%d vs %d/%d", d.Len(), d.MaxAddr(), m.Len(), m.MaxAddr())
	}
	d.Delete(50)
	m.Delete(50)
	if _, ok := d.Get(50); ok {
		t.Error("delete failed")
	}
	if d.Len() != m.Len() {
		t.Error("Len after delete mismatch")
	}
	d.Delete(9999) // no-op
	d.Delete(0)    // no-op
	if d.Slots() < 100 {
		t.Errorf("Slots = %d, expected ≥ 100", d.Slots())
	}
}

// TestDenseStoreMakesSpreadLiteral is E17/E9's memory story in one test:
// holding the same 1×n table, the dense slot bill equals each mapping's
// realized spread — Θ(n log n) for ℋ, Θ(n²) for 𝒟.
func TestDenseStoreMakesSpreadLiteral(t *testing.T) {
	const n = 512
	dh := NewDenseStore[int64]()
	dd := NewDenseStore[int64]()
	ah, err := New[int64](core.Hyperbolic{}, dh, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := New[int64](core.Diagonal{}, dd, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	for y := int64(1); y <= n; y++ {
		if err := ah.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
		if err := ad.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
	}
	// ℋ's bill is within 2× of D(n) (geometric growth slack);
	// 𝒟's is within 2× of (n²+n)/2.
	hBill, dBill := dh.Slots(), dd.Slots()
	if want := numtheory.DivisorSummatory(n); hBill < want || hBill > 2*want {
		t.Errorf("hyperbolic slot bill %d vs D(n) = %d", hBill, want)
	}
	if want := int64(n*n+n) / 2; dBill < want || dBill > 2*want {
		t.Errorf("diagonal slot bill %d vs (n²+n)/2 = %d", dBill, want)
	}
	if hBill*8 > dBill {
		t.Errorf("hyperbolic bill %d should be ≪ diagonal bill %d", hBill, dBill)
	}
}
