// Package extarray implements dynamically extendible two-dimensional
// arrays/tables (§3): the programmer may expand and shrink them at run
// time. When the storage mapping is a pairing function, positions
// unaffected by a reshaping are never remapped — growing an r×c array by a
// row or a column moves zero elements — whereas the naive row-major scheme
// used by the language processors the paper criticizes remaps the whole
// array, doing Ω(n²) work to accommodate O(n) changes (§3, §1).
//
// The package also accounts for the storage cost of PF-based mapping: the
// footprint (largest address used) is exactly the spread S_A of eq. 3.1
// applied to the positions actually touched, which is what §3.2's compact
// PFs minimize. Beyond the flat PF-addressed array it provides dense and
// hash-table backings, snapshots, row/column views, k-dimensional arrays
// via iterated pairing (internal/tuple), and the naive remap-on-reshape
// baseline.
//
// # Overflow and concurrency
//
// Addresses are computed by the underlying storage mapping and inherit its
// exact-int64 contract: a reshape or access whose address would overflow
// int64 surfaces the mapping's ErrOverflow instead of wrapping. Plain
// Array/Table values are not safe for concurrent mutation; wrap them in
// Sync (an RWMutex'd Table, with reshapes acting as write barriers) for
// concurrent workers. Snapshots are immutable once taken.
package extarray
