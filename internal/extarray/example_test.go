package extarray_test

import (
	"fmt"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
)

func ExampleArray_Resize() {
	// A PF-mapped table grows without moving a single element.
	a := extarray.NewMapBacked[string](core.SquareShell{}, 2, 2)
	_ = a.Set(1, 1, "keep")
	_ = a.Resize(1000, 1000)
	v, ok, _ := a.Get(1, 1)
	fmt.Println(v, ok, a.Stats().Moves)
	// Output: keep true 0
}

func ExampleNewNaiveRowMajor() {
	// The baseline §3 criticizes: adding one column remaps everything.
	n := extarray.NewNaiveRowMajor[int64](3, 3)
	for x := int64(1); x <= 3; x++ {
		for y := int64(1); y <= 3; y++ {
			_ = n.Set(x, y, x*10+y)
		}
	}
	_ = n.GrowCols(1)
	fmt.Println(n.Stats().Moves) // all 9 elements moved
	// Output: 9
}

func ExampleNewHashBacked() {
	// The §3-aside alternative: position-keyed hashing, no addresses.
	h := extarray.NewHashBacked[int64](4, 4)
	_ = h.Set(4, 4, 44)
	v, ok, _ := h.Get(4, 4)
	fmt.Println(v, ok)
	// Output: 44 true
}

func ExampleRowCost() {
	// Traversal locality under the fixed-width compiler layout.
	c, _ := extarray.RowCost(core.RowMajor{Width: 64}, 5, 64)
	fmt.Println(c.Span) // one row = one contiguous run
	// Output: 64
}
