package extarray

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the frame layer shared by every append-only log in the repo
// (today: tabled's write-ahead log). A frame is
//
//	[4B little-endian payload length][4B CRC32-Castagnoli of payload][payload]
//
// so a reader can both detect a torn tail (a crash mid-append leaves a
// short or checksum-failing final frame) and refuse to trust anything past
// the first damaged byte: replay stops at the last intact frame and the
// caller truncates there. Castagnoli is the polynomial with hardware
// support on amd64/arm64, so framing costs are dominated by the write
// itself.

// MaxFramePayload caps a single frame at 16 MiB. The cap exists so a
// corrupted length prefix cannot make a reader allocate unbounded memory —
// the same class of bug the snapshot decoder guards against.
const MaxFramePayload = 16 << 20

// castagnoli is the CRC32C table used for all frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the fixed per-frame overhead: length + checksum.
const frameHeaderSize = 8

// ErrFrameTooLarge is returned by AppendFrame for payloads over
// MaxFramePayload, and reported as a torn tail by ReadFrames when a length
// prefix exceeds it (a corrupt length is indistinguishable from a torn
// write).
var ErrFrameTooLarge = fmt.Errorf("extarray: frame exceeds %d bytes", int64(MaxFramePayload))

// AppendFrame writes one framed record to w and returns the number of
// bytes written (frameHeaderSize + len(payload) on success). A short write
// returns the error from w; the caller owns recovery (for a log file:
// truncate back to the pre-append offset, or let the next boot's ReadFrames
// cut the torn tail).
func AppendFrame(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxFramePayload {
		return 0, ErrFrameTooLarge
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, err
	}
	m, err := w.Write(payload)
	return n + m, err
}

// FrameLen returns the on-disk size of a frame carrying len(payload) bytes.
func FrameLen(payload []byte) int64 { return int64(frameHeaderSize + len(payload)) }

// ReadFrames scans r from the current position, invoking fn once per
// intact frame with its payload (the slice is reused; fn must copy what it
// keeps). It returns the byte offset just past the last intact frame and
// whether the scan stopped at a torn or corrupt record rather than a clean
// EOF. A torn tail is NOT an error — it is the expected residue of a crash
// mid-append, and the caller truncates the log to valid and carries on. An
// error is returned only for real read failures or a non-nil error from fn
// (which aborts the scan).
func ReadFrames(r io.Reader, fn func(payload []byte) error) (valid int64, torn bool, err error) {
	br := bufio.NewReader(r)
	var (
		hdr [frameHeaderSize]byte
		buf []byte
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return valid, false, nil // clean end of log
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, true, nil // torn header
			}
			return valid, false, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxFramePayload {
			return valid, true, nil // corrupt length prefix
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, true, nil // torn payload
			}
			return valid, false, err
		}
		if crc32.Checksum(buf, castagnoli) != want {
			return valid, true, nil // bit rot or torn overwrite
		}
		if err := fn(buf); err != nil {
			return valid, false, err
		}
		valid += int64(frameHeaderSize) + int64(n)
	}
}
