package extarray

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte("first"),
		{},
		[]byte("a longer third record with some structure: 1,2,3"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var wrote int64
	for _, p := range payloads {
		n, err := AppendFrame(&buf, p)
		if err != nil {
			t.Fatal(err)
		}
		if int64(n) != FrameLen(p) {
			t.Fatalf("AppendFrame wrote %d bytes, FrameLen says %d", n, FrameLen(p))
		}
		wrote += int64(n)
	}
	var got [][]byte
	valid, torn, err := ReadFrames(bytes.NewReader(buf.Bytes()), func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil || torn {
		t.Fatalf("ReadFrames: valid=%d torn=%v err=%v", valid, torn, err)
	}
	if valid != wrote {
		t.Fatalf("valid offset %d, want %d", valid, wrote)
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("frame %d: got %q want %q", i, got[i], payloads[i])
		}
	}
}

// TestFrameTornTail verifies the crash contract: truncating the stream at
// every possible byte offset inside the final frame yields exactly the
// preceding intact frames, a torn flag, and the right truncation offset —
// never an error, never a garbage frame.
func TestFrameTornTail(t *testing.T) {
	var buf bytes.Buffer
	if _, err := AppendFrame(&buf, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	goodLen := int64(buf.Len())
	if _, err := AppendFrame(&buf, []byte("the torn one")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// cut == goodLen is a clean EOF (the append never reached the disk at
	// all), so the torn range starts one byte in.
	for cut := goodLen + 1; cut < int64(len(full)); cut++ {
		var got []string
		valid, torn, err := ReadFrames(bytes.NewReader(full[:cut]), func(p []byte) error {
			got = append(got, string(p))
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: err %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut %d: torn tail not flagged", cut)
		}
		if valid != goodLen {
			t.Fatalf("cut %d: valid=%d, want %d", cut, valid, goodLen)
		}
		if len(got) != 1 || got[0] != "keep me" {
			t.Fatalf("cut %d: frames %q", cut, got)
		}
	}
}

// TestFrameCorruptMiddle verifies that a flipped bit anywhere stops replay
// at the last frame whose checksum still holds.
func TestFrameCorruptMiddle(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if _, err := AppendFrame(&buf, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	one := FrameLen([]byte("record-0"))
	data := append([]byte(nil), buf.Bytes()...)
	data[one+frameHeaderSize] ^= 0x01 // flip a payload bit in record 1
	var got []string
	valid, torn, err := ReadFrames(bytes.NewReader(data), func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil || !torn {
		t.Fatalf("torn=%v err=%v", torn, err)
	}
	if valid != one || len(got) != 1 || got[0] != "record-0" {
		t.Fatalf("valid=%d frames=%q", valid, got)
	}
}

// TestFrameCorruptLength verifies a damaged length prefix cannot force a
// huge allocation: it reads as a torn tail.
func TestFrameCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	if _, err := AppendFrame(&buf, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	off := int64(buf.Len())
	if _, err := AppendFrame(&buf, []byte("victim")); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint32(data[off:], uint32(MaxFramePayload)+1)
	valid, torn, err := ReadFrames(bytes.NewReader(data), func([]byte) error { return nil })
	if err != nil || !torn || valid != off {
		t.Fatalf("valid=%d torn=%v err=%v, want %d true nil", valid, torn, err, off)
	}
}

func TestAppendFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	_, err := AppendFrame(&buf, make([]byte, MaxFramePayload+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatal("oversize append wrote bytes")
	}
}

func TestReadFramesCallbackError(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 2; i++ {
		if _, err := AppendFrame(&buf, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("stop")
	_, _, err := ReadFrames(bytes.NewReader(buf.Bytes()), func([]byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want callback error", err)
	}
}
