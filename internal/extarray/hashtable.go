package extarray

import (
	"fmt"

	"pairfn/internal/hashstore"
)

// HashBacked is the §3 aside as a Table: elements are keyed directly by
// position in a hash store — no storage mapping, no addresses, no spread.
// Reshaping only adjusts bounds (shrink discards out-of-bounds elements),
// access is O(1) expected regardless of aspect ratio, and memory stays
// within 2n slots. What it gives up is everything address arithmetic
// provides: no row/column/block locality, no contiguity for bulk I/O —
// the exact trade the aside describes against PF mappings.
type HashBacked[T any] struct {
	store *hashstore.Open[T]
	rows  int64
	cols  int64
	stats Stats
}

// NewHashBacked returns an empty rows×cols hash-backed table.
func NewHashBacked[T any](rows, cols int64) *HashBacked[T] {
	return &HashBacked[T]{store: hashstore.NewOpen[T](), rows: rows, cols: cols}
}

// Dims implements Table.
func (h *HashBacked[T]) Dims() (int64, int64) { return h.rows, h.cols }

func (h *HashBacked[T]) check(x, y int64) error {
	if x < 1 || y < 1 || x > h.rows || y > h.cols {
		return fmt.Errorf("%w: (%d, %d) in %d×%d", ErrBounds, x, y, h.rows, h.cols)
	}
	return nil
}

// Get implements Table.
func (h *HashBacked[T]) Get(x, y int64) (T, bool, error) {
	var zero T
	if err := h.check(x, y); err != nil {
		return zero, false, err
	}
	v, ok := h.store.Get(hashstore.Position{X: x, Y: y})
	return v, ok, nil
}

// Set implements Table.
func (h *HashBacked[T]) Set(x, y int64, v T) error {
	if err := h.check(x, y); err != nil {
		return err
	}
	h.store.Set(hashstore.Position{X: x, Y: y}, v)
	if s := int64(h.store.Slots()); s > h.stats.Footprint {
		h.stats.Footprint = s
	}
	return nil
}

// Resize implements Table. Shrinks walk the discarded region (the hash
// store has no order to exploit); growth is free like any PF table.
func (h *HashBacked[T]) Resize(rows, cols int64) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("%w: to %d×%d", ErrShrink, rows, cols)
	}
	h.stats.Reshapes++
	if rows < h.rows || cols < h.cols {
		for x := int64(1); x <= h.rows; x++ {
			for y := int64(1); y <= h.cols; y++ {
				if x <= rows && y <= cols {
					continue
				}
				p := hashstore.Position{X: x, Y: y}
				if _, ok := h.store.Get(p); ok {
					h.store.Delete(p)
					h.stats.Moves++
				}
			}
		}
	}
	h.rows, h.cols = rows, cols
	return nil
}

// Stats implements Table: Footprint reports the peak slot count of the
// hash store (≤ 2·elements), the §3-aside space bound.
func (h *HashBacked[T]) Stats() Stats { return h.stats }

// Len returns the number of stored elements.
func (h *HashBacked[T]) Len() int { return h.store.Len() }

// ProbeStats exposes the underlying store's access-cost measurements.
func (h *HashBacked[T]) ProbeStats() hashstore.ProbeStats { return h.store.Stats() }
