package extarray

import (
	"errors"
	"testing"

	"pairfn/internal/core"
)

func TestHashBackedSemantics(t *testing.T) {
	h := NewHashBacked[int64](4, 4)
	fill(t, h, 4, 4)
	verify(t, h, 4, 4)
	if err := h.Resize(8, 8); err != nil {
		t.Fatal(err)
	}
	verify(t, h, 4, 4)
	fill(t, h, 8, 8)
	verify(t, h, 8, 8)
	if err := h.Resize(3, 5); err != nil {
		t.Fatal(err)
	}
	verify(t, h, 3, 5)
	if h.Len() != 15 {
		t.Fatalf("Len = %d, want 15", h.Len())
	}
	if h.Stats().Moves != 64-15 {
		t.Fatalf("discards = %d, want %d", h.Stats().Moves, 64-15)
	}
	if err := h.Set(4, 1, 1); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-bounds Set: %v", err)
	}
	if _, _, err := h.Get(1, 6); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-bounds Get: %v", err)
	}
	if err := h.Resize(-1, 1); err == nil {
		t.Error("negative resize should fail")
	}
}

// TestHashBackedFootprintBeatsEveryPF: for the wild-shape workload, the
// hash table's peak slot bill (≤ 2n) beats even the optimal PF's Θ(n log n)
// footprint — the aside's whole point — at the cost of having no addresses
// at all.
func TestHashBackedFootprintBeatsEveryPF(t *testing.T) {
	const n = 512
	hb := NewHashBacked[int64](1, n)
	pf := NewMapBacked[int64](core.Hyperbolic{}, 1, n)
	for y := int64(1); y <= n; y++ {
		if err := hb.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
		if err := pf.Set(1, y, y); err != nil {
			t.Fatal(err)
		}
	}
	if hb.Stats().Footprint > 2*int64(hb.Len()) {
		t.Errorf("hash footprint %d > 2n = %d", hb.Stats().Footprint, 2*hb.Len())
	}
	if hb.Stats().Footprint >= pf.Stats().Footprint {
		t.Errorf("hash footprint %d should beat ℋ's %d", hb.Stats().Footprint, pf.Stats().Footprint)
	}
	if mean := hb.ProbeStats().Mean(); mean > 6 {
		t.Errorf("mean probes %v, want O(1)", mean)
	}
}

// TestHashBackedInModel reuses the model-equivalence battery with the
// hash-backed table standing in for the PF table.
func TestHashBackedInModel(t *testing.T) {
	hb := NewHashBacked[int64](3, 3)
	naive := NewNaiveRowMajor[int64](3, 3)
	type key struct{ x, y int64 }
	model := map[key]int64{}
	// A fixed deterministic script touching every operation class.
	script := []func() error{
		func() error { model[key{1, 1}] = 5; _ = naive.Set(1, 1, 5); return hb.Set(1, 1, 5) },
		func() error { model[key{3, 3}] = 7; _ = naive.Set(3, 3, 7); return hb.Set(3, 3, 7) },
		func() error { _ = naive.Resize(5, 2); return hb.Resize(5, 2) },
		func() error { model[key{5, 2}] = 9; _ = naive.Set(5, 2, 9); return hb.Set(5, 2, 9) },
		func() error { _ = naive.Resize(2, 2); return hb.Resize(2, 2) },
	}
	for i, step := range script {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	for k := range model {
		if k.x > 2 || k.y > 2 {
			delete(model, k)
		}
	}
	for x := int64(1); x <= 2; x++ {
		for y := int64(1); y <= 2; y++ {
			hv, hok, err := hb.Get(x, y)
			if err != nil {
				t.Fatal(err)
			}
			mv, mok := model[key{x, y}]
			if hok != mok || (mok && hv != mv) {
				t.Fatalf("(%d,%d): hash (%d,%v) model (%d,%v)", x, y, hv, hok, mv, mok)
			}
		}
	}
	if hb.Len() != len(model) {
		t.Fatalf("Len %d vs model %d", hb.Len(), len(model))
	}
}
