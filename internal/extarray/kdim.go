package extarray

import (
	"fmt"

	"pairfn/internal/tuple"
)

// KArray is a k-dimensional extendible array laid out by an iterated
// pairing function (package tuple) — the paper's remark that "extending
// this work to higher dimensionalities is immediate" (§3) made executable.
// Growth along any axis moves nothing.
type KArray[T any] struct {
	code  *tuple.Code
	store Store[T]
	dims  []int64
	stats Stats
}

// NewK returns an empty k-dimensional array with the given initial
// dimensions, laid out by code (whose arity must equal len(dims)).
func NewK[T any](code *tuple.Code, store Store[T], dims ...int64) (*KArray[T], error) {
	if code.Arity() != len(dims) {
		return nil, fmt.Errorf("extarray: code arity %d ≠ %d dims", code.Arity(), len(dims))
	}
	for i, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("extarray: dimension %d is %d", i+1, d)
		}
	}
	return &KArray[T]{code: code, store: store, dims: append([]int64(nil), dims...)}, nil
}

// Dims returns a copy of the current dimensions.
func (a *KArray[T]) Dims() []int64 { return append([]int64(nil), a.dims...) }

func (a *KArray[T]) check(pos []int64) error {
	if len(pos) != len(a.dims) {
		return fmt.Errorf("extarray: position arity %d ≠ %d dims", len(pos), len(a.dims))
	}
	for i, p := range pos {
		if p < 1 || p > a.dims[i] {
			return fmt.Errorf("%w: axis %d position %d of %d", ErrBounds, i+1, p, a.dims[i])
		}
	}
	return nil
}

// Get returns the element at pos.
func (a *KArray[T]) Get(pos ...int64) (T, bool, error) {
	var zero T
	if err := a.check(pos); err != nil {
		return zero, false, err
	}
	addr, err := a.code.Encode(pos...)
	if err != nil {
		return zero, false, err
	}
	v, ok := a.store.Get(addr)
	return v, ok, nil
}

// Set stores v at pos.
func (a *KArray[T]) Set(v T, pos ...int64) error {
	if err := a.check(pos); err != nil {
		return err
	}
	addr, err := a.code.Encode(pos...)
	if err != nil {
		return err
	}
	a.store.Set(addr, v)
	if addr > a.stats.Footprint {
		a.stats.Footprint = addr
	}
	return nil
}

// Grow extends axis (1-based) by delta ≥ 0; no elements move.
func (a *KArray[T]) Grow(axis int, delta int64) error {
	if axis < 1 || axis > len(a.dims) {
		return fmt.Errorf("extarray: axis %d of %d", axis, len(a.dims))
	}
	if delta < 0 {
		return fmt.Errorf("extarray: Grow by %d; use Shrink", delta)
	}
	a.dims[axis-1] += delta
	a.stats.Reshapes++
	return nil
}

// Shrink trims axis (1-based) by delta, discarding stored elements outside
// the new bounds.
func (a *KArray[T]) Shrink(axis int, delta int64) error {
	if axis < 1 || axis > len(a.dims) {
		return fmt.Errorf("extarray: axis %d of %d", axis, len(a.dims))
	}
	if delta < 0 || delta > a.dims[axis-1] {
		return fmt.Errorf("%w: axis %d by %d from %d", ErrShrink, axis, delta, a.dims[axis-1])
	}
	old := a.dims[axis-1]
	a.dims[axis-1] = old - delta
	a.stats.Reshapes++
	// Walk the discarded slab and delete any stored elements.
	pos := make([]int64, len(a.dims))
	for i := range pos {
		pos[i] = 1
	}
	var walk func(axisIdx int) error
	walk = func(i int) error {
		if i == len(a.dims) {
			addr, err := a.code.Encode(pos...)
			if err != nil {
				return err
			}
			if _, ok := a.store.Get(addr); ok {
				a.store.Delete(addr)
				a.stats.Moves++
			}
			return nil
		}
		lo, hi := int64(1), a.dims[i]
		if i == axis-1 {
			lo, hi = a.dims[i]+1, old
		}
		for pos[i] = lo; pos[i] <= hi; pos[i]++ {
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		pos[i] = 1
		return nil
	}
	return walk(0)
}

// Stats returns the accumulated cost counters.
func (a *KArray[T]) Stats() Stats {
	s := a.stats
	if m := a.store.MaxAddr(); m > s.Footprint {
		s.Footprint = m
	}
	return s
}

// Len returns the number of stored elements.
func (a *KArray[T]) Len() int { return a.store.Len() }
