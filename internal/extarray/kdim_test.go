package extarray

import (
	"errors"
	"testing"

	"pairfn/internal/core"
	"pairfn/internal/tuple"
)

func TestKArrayRoundTrip(t *testing.T) {
	code := tuple.MustNew(core.SquareShell{}, 3)
	a, err := NewK(code, NewMapStore[string](), 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(1); x <= 3; x++ {
		for y := int64(1); y <= 4; y++ {
			for z := int64(1); z <= 5; z++ {
				if err := a.Set("v", x, y, z); err != nil {
					t.Fatalf("Set(%d,%d,%d): %v", x, y, z, err)
				}
			}
		}
	}
	if a.Len() != 60 {
		t.Fatalf("Len = %d, want 60", a.Len())
	}
	v, ok, err := a.Get(2, 3, 4)
	if err != nil || !ok || v != "v" {
		t.Fatalf("Get(2,3,4) = %q, %v, %v", v, ok, err)
	}
}

func TestKArrayGrowMovesNothing(t *testing.T) {
	code := tuple.MustNew(core.Hyperbolic{}, 3)
	a, err := NewK(code, NewMapStore[int64](), 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	for x := int64(1); x <= 2; x++ {
		for y := int64(1); y <= 2; y++ {
			for z := int64(1); z <= 2; z++ {
				n++
				if err := a.Set(n, x, y, z); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for axis := 1; axis <= 3; axis++ {
		if err := a.Grow(axis, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Dims(); got[0] != 4 || got[1] != 4 || got[2] != 4 {
		t.Fatalf("Dims = %v", got)
	}
	if a.Stats().Moves != 0 {
		t.Fatalf("growth moved %d elements", a.Stats().Moves)
	}
	// All old data intact.
	n = 0
	for x := int64(1); x <= 2; x++ {
		for y := int64(1); y <= 2; y++ {
			for z := int64(1); z <= 2; z++ {
				n++
				v, ok, err := a.Get(x, y, z)
				if err != nil || !ok || v != n {
					t.Fatalf("Get(%d,%d,%d) = %d, %v, %v; want %d", x, y, z, v, ok, err, n)
				}
			}
		}
	}
}

func TestKArrayShrinkDiscards(t *testing.T) {
	code := tuple.MustNew(core.Diagonal{}, 2)
	a, err := NewK(code, NewMapStore[int64](), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(1); x <= 4; x++ {
		for y := int64(1); y <= 4; y++ {
			if err := a.Set(x*10+y, x, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Shrink(2, 1); err != nil { // drop column 4
		t.Fatal(err)
	}
	if a.Len() != 12 {
		t.Fatalf("Len = %d, want 12", a.Len())
	}
	if a.Stats().Moves != 4 {
		t.Fatalf("Moves = %d, want 4", a.Stats().Moves)
	}
	if _, _, err := a.Get(1, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("Get outside bounds: %v", err)
	}
	v, ok, _ := a.Get(3, 3)
	if !ok || v != 33 {
		t.Errorf("surviving cell = %d, %v", v, ok)
	}
}

func TestKArrayErrors(t *testing.T) {
	code := tuple.MustNew(core.Diagonal{}, 2)
	if _, err := NewK(code, NewMapStore[int64](), 1, 2, 3); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := NewK(code, NewMapStore[int64](), 1, -2); err == nil {
		t.Error("negative dim should fail")
	}
	a, _ := NewK(code, NewMapStore[int64](), 2, 2)
	if err := a.Set(1, 3, 1); !errors.Is(err, ErrBounds) {
		t.Errorf("Set out of bounds: %v", err)
	}
	if err := a.Grow(3, 1); err == nil {
		t.Error("bad axis should fail")
	}
	if err := a.Grow(1, -1); err == nil {
		t.Error("negative grow should fail")
	}
	if err := a.Shrink(1, 5); err == nil {
		t.Error("over-shrink should fail")
	}
	if err := a.Shrink(0, 1); err == nil {
		t.Error("bad axis should fail")
	}
}
