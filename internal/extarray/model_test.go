package extarray

import (
	"math/rand"
	"testing"

	"pairfn/internal/core"
)

// TestModelEquivalence drives random operation sequences against a
// PF-backed Array, the naive row-major baseline, and a plain-map reference
// model simultaneously; all three must agree on every observable at every
// step. This is the strongest correctness evidence for the reshape
// semantics: any divergence in bounds handling, discard-on-shrink or data
// placement shows up within a few hundred operations.
func TestModelEquivalence(t *testing.T) {
	mappingsUnderTest := []core.StorageMapping{
		core.SquareShell{},
		core.Hyperbolic{},
		core.MustAspect(2, 1),
		core.MustDovetail(core.MustAspect(1, 1), core.MustAspect(1, 2)),
	}
	for _, m := range mappingsUnderTest {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(123))
			pf := NewMapBacked[int64](m, 3, 3)
			naive := NewNaiveRowMajor[int64](3, 3)
			type key struct{ x, y int64 }
			model := map[key]int64{}
			rows, cols := int64(3), int64(3)

			for op := 0; op < 600; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // Set in bounds
					if rows == 0 || cols == 0 {
						continue
					}
					x, y := rng.Int63n(rows)+1, rng.Int63n(cols)+1
					v := rng.Int63()
					if err := pf.Set(x, y, v); err != nil {
						t.Fatalf("op %d: pf.Set: %v", op, err)
					}
					if err := naive.Set(x, y, v); err != nil {
						t.Fatalf("op %d: naive.Set: %v", op, err)
					}
					model[key{x, y}] = v
				case 4, 5, 6: // Get (possibly out of bounds)
					x, y := rng.Int63n(rows+2)+1, rng.Int63n(cols+2)+1
					pv, pok, perr := pf.Get(x, y)
					nv, nok, nerr := naive.Get(x, y)
					if (perr == nil) != (nerr == nil) {
						t.Fatalf("op %d: Get(%d,%d) err mismatch: %v vs %v", op, x, y, perr, nerr)
					}
					if perr != nil {
						if x >= 1 && y >= 1 && x <= rows && y <= cols {
							t.Fatalf("op %d: in-bounds Get(%d,%d) errored: %v", op, x, y, perr)
						}
						continue
					}
					mv, mok := model[key{x, y}]
					if pok != mok || nok != mok || (mok && (pv != mv || nv != mv)) {
						t.Fatalf("op %d: Get(%d,%d): pf (%d,%v) naive (%d,%v) model (%d,%v)",
							op, x, y, pv, pok, nv, nok, mv, mok)
					}
				case 7: // grow
					dr, dc := rng.Int63n(3), rng.Int63n(3)
					rows, cols = rows+dr, cols+dc
					if err := pf.Resize(rows, cols); err != nil {
						t.Fatalf("op %d: pf grow: %v", op, err)
					}
					if err := naive.Resize(rows, cols); err != nil {
						t.Fatalf("op %d: naive grow: %v", op, err)
					}
				case 8: // shrink
					nr, nc := rows, cols
					if rows > 0 {
						nr = rows - rng.Int63n(rows+1)
					}
					if cols > 0 {
						nc = cols - rng.Int63n(cols+1)
					}
					rows, cols = nr, nc
					if err := pf.Resize(rows, cols); err != nil {
						t.Fatalf("op %d: pf shrink: %v", op, err)
					}
					if err := naive.Resize(rows, cols); err != nil {
						t.Fatalf("op %d: naive shrink: %v", op, err)
					}
					for k := range model {
						if k.x > rows || k.y > cols {
							delete(model, k)
						}
					}
				case 9: // full sweep compare
					for k, mv := range model {
						pv, pok, err := pf.Get(k.x, k.y)
						if err != nil || !pok || pv != mv {
							t.Fatalf("op %d: sweep pf(%d,%d) = (%d,%v,%v), want %d",
								op, k.x, k.y, pv, pok, err, mv)
						}
					}
					if int(int64(len(model))) != pf.Len() {
						t.Fatalf("op %d: pf.Len %d, model %d", op, pf.Len(), len(model))
					}
				}
			}
			// Final invariant: PF growth never moves anything; only
			// shrinks did (counted against discards).
			if pfStats := pf.Stats(); pfStats.Moves > pfStats.Reshapes*64 {
				t.Logf("stats: %+v", pfStats) // informational only
			}
		})
	}
}
