package extarray

import "fmt"

// NaiveRowMajor is the remap-on-reshape baseline: the storage discipline of
// the language processors §3 criticizes, which "implement the capability
// quite naively, by completely remapping an array/table with each
// reshaping". Elements live in a dense row-major slice of the current
// width; adding or removing a column changes the row stride and therefore
// physically relocates every element of the array, so accommodating O(n)
// single-column reshapes of an n-element array costs Ω(n²) moves. Adding
// rows appends in place (row-major's one free direction) — the asymmetry is
// itself instructive: a PF-mapped Array is reshape-free in *both*
// directions.
type NaiveRowMajor[T any] struct {
	data  []T
	set   []bool
	rows  int64
	cols  int64
	stats Stats
}

// NewNaiveRowMajor returns an empty rows×cols naive row-major table.
func NewNaiveRowMajor[T any](rows, cols int64) *NaiveRowMajor[T] {
	n := &NaiveRowMajor[T]{rows: rows, cols: cols}
	n.data = make([]T, rows*cols)
	n.set = make([]bool, rows*cols)
	return n
}

// Dims implements Table.
func (n *NaiveRowMajor[T]) Dims() (int64, int64) { return n.rows, n.cols }

func (n *NaiveRowMajor[T]) index(x, y int64) (int64, error) {
	if x < 1 || y < 1 || x > n.rows || y > n.cols {
		return 0, fmt.Errorf("%w: (%d, %d) in %d×%d", ErrBounds, x, y, n.rows, n.cols)
	}
	return (x-1)*n.cols + (y - 1), nil
}

// Get implements Table.
func (n *NaiveRowMajor[T]) Get(x, y int64) (T, bool, error) {
	var zero T
	i, err := n.index(x, y)
	if err != nil {
		return zero, false, err
	}
	if !n.set[i] {
		return zero, false, nil
	}
	return n.data[i], true, nil
}

// Set implements Table.
func (n *NaiveRowMajor[T]) Set(x, y int64, v T) error {
	i, err := n.index(x, y)
	if err != nil {
		return err
	}
	n.data[i] = v
	n.set[i] = true
	if i+1 > n.stats.Footprint {
		n.stats.Footprint = i + 1
	}
	return nil
}

// Resize implements Table. A width change remaps the entire array: every
// surviving element is copied to its new row-major address (one move each).
// A pure row-count change keeps the stride and only truncates or extends.
func (n *NaiveRowMajor[T]) Resize(rows, cols int64) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("%w: to %d×%d", ErrShrink, rows, cols)
	}
	n.stats.Reshapes++
	if cols == n.cols {
		// Stride unchanged: extend or truncate in place.
		if rows > n.rows {
			grow := make([]T, (rows-n.rows)*cols)
			n.data = append(n.data, grow...)
			n.set = append(n.set, make([]bool, (rows-n.rows)*cols)...)
		} else if rows < n.rows {
			for i := rows * cols; i < n.rows*n.cols; i++ {
				if n.set[i] {
					n.stats.Moves++ // discarded elements still cost a touch
				}
			}
			n.data = n.data[:rows*cols]
			n.set = n.set[:rows*cols]
		}
		n.rows = rows
		return nil
	}
	// Width change: full remap.
	data := make([]T, rows*cols)
	set := make([]bool, rows*cols)
	keepRows, keepCols := min64(rows, n.rows), min64(cols, n.cols)
	for x := int64(0); x < keepRows; x++ {
		for y := int64(0); y < keepCols; y++ {
			old := x*n.cols + y
			if !n.set[old] {
				continue
			}
			data[x*cols+y] = n.data[old]
			set[x*cols+y] = true
			n.stats.Moves++
		}
	}
	n.data, n.set, n.rows, n.cols = data, set, rows, cols
	if f := rows * cols; f > n.stats.Footprint {
		n.stats.Footprint = f
	}
	return nil
}

// GrowRows adds delta rows.
func (n *NaiveRowMajor[T]) GrowRows(delta int64) error { return n.Resize(n.rows+delta, n.cols) }

// GrowCols adds delta columns.
func (n *NaiveRowMajor[T]) GrowCols(delta int64) error { return n.Resize(n.rows, n.cols+delta) }

// ShrinkRows removes delta rows.
func (n *NaiveRowMajor[T]) ShrinkRows(delta int64) error { return n.Resize(n.rows-delta, n.cols) }

// ShrinkCols removes delta columns.
func (n *NaiveRowMajor[T]) ShrinkCols(delta int64) error { return n.Resize(n.rows, n.cols-delta) }

// Stats implements Table.
func (n *NaiveRowMajor[T]) Stats() Stats { return n.stats }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
