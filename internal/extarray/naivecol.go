package extarray

import "fmt"

// NaiveColumnMajor is the column-major twin of NaiveRowMajor: elements
// live in a dense column-major slice of the current height, so adding or
// removing a *row* changes the column stride and relocates every element,
// while column growth appends in place. Together the two naive baselines
// show that no fixed lexicographic layout escapes §3's complaint — each
// merely chooses which reshaping direction is ruinous, whereas a PF
// layout is reshape-free in both.
type NaiveColumnMajor[T any] struct {
	data  []T
	set   []bool
	rows  int64
	cols  int64
	stats Stats
}

// NewNaiveColumnMajor returns an empty rows×cols naive column-major table.
func NewNaiveColumnMajor[T any](rows, cols int64) *NaiveColumnMajor[T] {
	n := &NaiveColumnMajor[T]{rows: rows, cols: cols}
	n.data = make([]T, rows*cols)
	n.set = make([]bool, rows*cols)
	return n
}

// Dims implements Table.
func (n *NaiveColumnMajor[T]) Dims() (int64, int64) { return n.rows, n.cols }

func (n *NaiveColumnMajor[T]) index(x, y int64) (int64, error) {
	if x < 1 || y < 1 || x > n.rows || y > n.cols {
		return 0, fmt.Errorf("%w: (%d, %d) in %d×%d", ErrBounds, x, y, n.rows, n.cols)
	}
	return (y-1)*n.rows + (x - 1), nil
}

// Get implements Table.
func (n *NaiveColumnMajor[T]) Get(x, y int64) (T, bool, error) {
	var zero T
	i, err := n.index(x, y)
	if err != nil {
		return zero, false, err
	}
	if !n.set[i] {
		return zero, false, nil
	}
	return n.data[i], true, nil
}

// Set implements Table.
func (n *NaiveColumnMajor[T]) Set(x, y int64, v T) error {
	i, err := n.index(x, y)
	if err != nil {
		return err
	}
	n.data[i] = v
	n.set[i] = true
	if i+1 > n.stats.Footprint {
		n.stats.Footprint = i + 1
	}
	return nil
}

// Resize implements Table: a height change remaps the entire array; a pure
// column-count change extends or truncates in place.
func (n *NaiveColumnMajor[T]) Resize(rows, cols int64) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("%w: to %d×%d", ErrShrink, rows, cols)
	}
	n.stats.Reshapes++
	if rows == n.rows {
		if cols > n.cols {
			grow := make([]T, (cols-n.cols)*rows)
			n.data = append(n.data, grow...)
			n.set = append(n.set, make([]bool, (cols-n.cols)*rows)...)
		} else if cols < n.cols {
			for i := cols * rows; i < n.cols*n.rows; i++ {
				if n.set[i] {
					n.stats.Moves++
				}
			}
			n.data = n.data[:cols*rows]
			n.set = n.set[:cols*rows]
		}
		n.cols = cols
		return nil
	}
	data := make([]T, rows*cols)
	set := make([]bool, rows*cols)
	keepRows, keepCols := min64(rows, n.rows), min64(cols, n.cols)
	for y := int64(0); y < keepCols; y++ {
		for x := int64(0); x < keepRows; x++ {
			old := y*n.rows + x
			if !n.set[old] {
				continue
			}
			data[y*rows+x] = n.data[old]
			set[y*rows+x] = true
			n.stats.Moves++
		}
	}
	n.data, n.set, n.rows, n.cols = data, set, rows, cols
	if f := rows * cols; f > n.stats.Footprint {
		n.stats.Footprint = f
	}
	return nil
}

// GrowRows adds delta rows (full remap).
func (n *NaiveColumnMajor[T]) GrowRows(delta int64) error { return n.Resize(n.rows+delta, n.cols) }

// GrowCols adds delta columns (in place).
func (n *NaiveColumnMajor[T]) GrowCols(delta int64) error { return n.Resize(n.rows, n.cols+delta) }

// ShrinkRows removes delta rows (full remap).
func (n *NaiveColumnMajor[T]) ShrinkRows(delta int64) error { return n.Resize(n.rows-delta, n.cols) }

// ShrinkCols removes delta columns (in place).
func (n *NaiveColumnMajor[T]) ShrinkCols(delta int64) error { return n.Resize(n.rows, n.cols-delta) }

// Stats implements Table.
func (n *NaiveColumnMajor[T]) Stats() Stats { return n.stats }
