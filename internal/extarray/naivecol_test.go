package extarray

import "testing"

// TestNaiveColumnMajorSemantics mirrors the row-major baseline's test with
// the axes exchanged.
func TestNaiveColumnMajorSemantics(t *testing.T) {
	a := NewNaiveColumnMajor[int64](4, 3)
	fill(t, a, 4, 3)
	if err := a.GrowRows(2); err != nil { // remap
		t.Fatal(err)
	}
	verify(t, a, 4, 3)
	if err := a.GrowCols(2); err != nil { // in place
		t.Fatal(err)
	}
	verify(t, a, 4, 3)
	if err := a.ShrinkRows(3); err != nil {
		t.Fatal(err)
	}
	verify(t, a, 3, 3)
	if err := a.ShrinkCols(4); err != nil {
		t.Fatal(err)
	}
	verify(t, a, 3, 1)
	if r, c := a.Dims(); r != 3 || c != 1 {
		t.Fatalf("dims %d×%d", r, c)
	}
}

// TestNaiveBaselinesAreDuals: adding rows is free for row-major and a full
// remap for column-major, and vice versa for columns — no lexicographic
// layout is reshape-free in both directions.
func TestNaiveBaselinesAreDuals(t *testing.T) {
	rm := NewNaiveRowMajor[int64](8, 8)
	cm := NewNaiveColumnMajor[int64](8, 8)
	fill(t, rm, 8, 8)
	fill(t, cm, 8, 8)
	if err := rm.GrowRows(1); err != nil {
		t.Fatal(err)
	}
	if err := cm.GrowRows(1); err != nil {
		t.Fatal(err)
	}
	if rm.Stats().Moves != 0 {
		t.Errorf("row-major row growth moved %d", rm.Stats().Moves)
	}
	if cm.Stats().Moves != 64 {
		t.Errorf("column-major row growth moved %d, want 64", cm.Stats().Moves)
	}
	if err := rm.GrowCols(1); err != nil {
		t.Fatal(err)
	}
	if err := cm.GrowCols(1); err != nil {
		t.Fatal(err)
	}
	if rm.Stats().Moves != 64 { // the 64 set cells carried to the new stride
		t.Errorf("row-major col growth total moves %d, want 64", rm.Stats().Moves)
	}
	if cm.Stats().Moves != 64 {
		t.Errorf("column-major col growth should stay at 64, got %d", cm.Stats().Moves)
	}
	verify(t, rm, 8, 8)
	verify(t, cm, 8, 8)
}

func TestNaiveColumnMajorBounds(t *testing.T) {
	a := NewNaiveColumnMajor[int64](2, 2)
	if err := a.Set(3, 1, 1); err == nil {
		t.Error("out of bounds Set should fail")
	}
	if _, _, err := a.Get(1, 3); err == nil {
		t.Error("out of bounds Get should fail")
	}
	if err := a.Resize(-1, 1); err == nil {
		t.Error("negative resize should fail")
	}
	if _, ok, err := a.Get(1, 1); ok || err != nil {
		t.Error("unset cell should read absent")
	}
}
