package extarray

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire form of an Array.
type snapshot[T any] struct {
	Mapping string
	Rows    int64
	Cols    int64
	Stats   Stats
	Addrs   []int64
	Values  []T
}

// Save serializes the array — dimensions, cost counters and every stored
// element with its address — with encoding/gob. The storage mapping itself
// is not serialized (mappings are code); its Name is recorded and checked
// on Load, because addresses are only meaningful under the mapping that
// produced them.
func (a *Array[T]) Save(w io.Writer) error {
	snap := snapshot[T]{
		Mapping: a.f.Name(),
		Rows:    a.rows,
		Cols:    a.cols,
		Stats:   a.stats,
	}
	// Walk the logical box; only stored elements are emitted. (Stores do
	// not expose iteration; the logical walk keeps the Store interface
	// minimal and the snapshot deterministic.)
	for x := int64(1); x <= a.rows; x++ {
		for y := int64(1); y <= a.cols; y++ {
			addr, err := a.f.Encode(x, y)
			if err != nil {
				return fmt.Errorf("extarray: Save: %w", err)
			}
			if v, ok := a.store.Get(addr); ok {
				snap.Addrs = append(snap.Addrs, addr)
				snap.Values = append(snap.Values, v)
			}
		}
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reconstructs an Array saved by Save. The caller supplies the same
// storage mapping (checked by name) and a fresh backing store.
func Load[T any](r io.Reader, f interface {
	Name() string
	Encode(x, y int64) (int64, error)
	Decode(z int64) (x, y int64, err error)
}, store Store[T]) (*Array[T], error) {
	var snap snapshot[T]
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("extarray: Load: %w", err)
	}
	if snap.Mapping != f.Name() {
		return nil, fmt.Errorf("extarray: Load: snapshot was laid out by %q, not %q",
			snap.Mapping, f.Name())
	}
	if len(snap.Addrs) != len(snap.Values) {
		return nil, fmt.Errorf("extarray: Load: corrupt snapshot (%d addrs, %d values)",
			len(snap.Addrs), len(snap.Values))
	}
	a, err := New[T](f, store, snap.Rows, snap.Cols)
	if err != nil {
		return nil, err
	}
	for i, addr := range snap.Addrs {
		// Validate the address decodes into the logical box before
		// trusting it.
		x, y, err := f.Decode(addr)
		if err != nil {
			return nil, fmt.Errorf("extarray: Load: address %d: %w", addr, err)
		}
		if x < 1 || y < 1 || x > snap.Rows || y > snap.Cols {
			return nil, fmt.Errorf("extarray: Load: address %d decodes to (%d, %d) outside %d×%d",
				addr, x, y, snap.Rows, snap.Cols)
		}
		store.Set(addr, snap.Values[i])
	}
	a.stats = snap.Stats
	return a, nil
}

// Range calls fn for every stored element in row-major logical order,
// stopping early if fn returns false.
func (a *Array[T]) Range(fn func(x, y int64, v T) bool) error {
	for x := int64(1); x <= a.rows; x++ {
		for y := int64(1); y <= a.cols; y++ {
			addr, err := a.f.Encode(x, y)
			if err != nil {
				return err
			}
			if v, ok := a.store.Get(addr); ok {
				if !fn(x, y, v) {
					return nil
				}
			}
		}
	}
	return nil
}
