package extarray

import (
	"encoding/gob"
	"fmt"
	"io"
)

// PFLike is the slice of core.StorageMapping that snapshots need: a named,
// invertible address mapping. (Declared structurally so extarray does not
// force its callers through core's concrete types.)
type PFLike interface {
	Name() string
	Encode(x, y int64) (int64, error)
	Decode(z int64) (x, y int64, err error)
}

// SnapshotData is the gob wire form of a persisted table: the mapping's
// name, the logical dimensions, the cost counters, and every stored element
// with its address. It is shared by Array.Save/Load and by the tabled
// service's sharded snapshots — one format, loadable by either. The storage
// mapping itself is never serialized (mappings are code); its Name is
// recorded and checked on load, because addresses are only meaningful under
// the mapping that produced them.
type SnapshotData[T any] struct {
	Mapping string
	Rows    int64
	Cols    int64
	Stats   Stats
	Addrs   []int64
	Values  []T
	// ReplSeq and ReplEpoch tie the snapshot to the replication stream it
	// was cut from: the snapshot is exactly the effect of WAL records
	// [0, ReplSeq), taken under primary epoch ReplEpoch. Zero for
	// snapshots of unreplicated tables; gob leaves absent fields zero, so
	// old snapshots load unchanged.
	ReplSeq   uint64
	ReplEpoch uint64
}

// EncodeSnapshot writes s to w in the snapshot gob format.
func EncodeSnapshot[T any](w io.Writer, s *SnapshotData[T]) error {
	return gob.NewEncoder(w).Encode(s)
}

// DecodeSnapshot reads a snapshot from r, validating its internal
// consistency (equal address/value counts) but not its mapping — callers
// check Mapping against the mapping they will decode addresses with.
//
// Corrupt input — a truncated file, a flipped bit — must surface as an
// error, never a crash: encoding/gob documents that it is not hardened
// against adversarial data and can panic on malformed streams, and a
// server booting from a damaged snapshot needs a clean logged error and a
// nonzero exit, not a panic trace. The decode therefore runs under a
// recover that converts any gob panic into a decode error.
func DecodeSnapshot[T any](r io.Reader) (snap *SnapshotData[T], err error) {
	defer func() {
		if p := recover(); p != nil {
			snap, err = nil, fmt.Errorf("extarray: decode snapshot: corrupt stream: %v", p)
		}
	}()
	var s SnapshotData[T]
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("extarray: decode snapshot: %w", err)
	}
	if len(s.Addrs) != len(s.Values) {
		return nil, fmt.Errorf("extarray: corrupt snapshot (%d addrs, %d values)",
			len(s.Addrs), len(s.Values))
	}
	return &s, nil
}

// CheckSnapshotAddr validates one snapshot address against the mapping and
// the snapshot's logical box, returning the decoded position.
func CheckSnapshotAddr[T any](snap *SnapshotData[T], f PFLike, addr int64) (x, y int64, err error) {
	x, y, err = f.Decode(addr)
	if err != nil {
		return 0, 0, fmt.Errorf("extarray: snapshot address %d: %w", addr, err)
	}
	if x < 1 || y < 1 || x > snap.Rows || y > snap.Cols {
		return 0, 0, fmt.Errorf("extarray: snapshot address %d decodes to (%d, %d) outside %d×%d",
			addr, x, y, snap.Rows, snap.Cols)
	}
	return x, y, nil
}

// Save serializes the array with encoding/gob in the SnapshotData format.
func (a *Array[T]) Save(w io.Writer) error {
	snap := SnapshotData[T]{
		Mapping: a.f.Name(),
		Rows:    a.rows,
		Cols:    a.cols,
		Stats:   a.stats,
	}
	// Walk the logical box; only stored elements are emitted. (Stores do
	// not expose iteration; the logical walk keeps the Store interface
	// minimal and the snapshot deterministic.)
	for x := int64(1); x <= a.rows; x++ {
		for y := int64(1); y <= a.cols; y++ {
			addr, err := a.f.Encode(x, y)
			if err != nil {
				return fmt.Errorf("extarray: Save: %w", err)
			}
			if v, ok := a.store.Get(addr); ok {
				snap.Addrs = append(snap.Addrs, addr)
				snap.Values = append(snap.Values, v)
			}
		}
	}
	return EncodeSnapshot(w, &snap)
}

// Load reconstructs an Array saved by Save. The caller supplies the same
// storage mapping (checked by name) and a fresh backing store.
func Load[T any](r io.Reader, f PFLike, store Store[T]) (*Array[T], error) {
	snap, err := DecodeSnapshot[T](r)
	if err != nil {
		return nil, fmt.Errorf("extarray: Load: %w", err)
	}
	if snap.Mapping != f.Name() {
		return nil, fmt.Errorf("extarray: Load: snapshot was laid out by %q, not %q",
			snap.Mapping, f.Name())
	}
	a, err := New[T](f, store, snap.Rows, snap.Cols)
	if err != nil {
		return nil, err
	}
	for i, addr := range snap.Addrs {
		// Validate the address decodes into the logical box before
		// trusting it.
		if _, _, err := CheckSnapshotAddr(snap, f, addr); err != nil {
			return nil, fmt.Errorf("extarray: Load: %w", err)
		}
		store.Set(addr, snap.Values[i])
	}
	a.stats = snap.Stats
	return a, nil
}

// Range calls fn for every stored element in row-major logical order,
// stopping early if fn returns false.
func (a *Array[T]) Range(fn func(x, y int64, v T) bool) error {
	for x := int64(1); x <= a.rows; x++ {
		for y := int64(1); y <= a.cols; y++ {
			addr, err := a.f.Encode(x, y)
			if err != nil {
				return err
			}
			if v, ok := a.store.Get(addr); ok {
				if !fn(x, y, v) {
					return nil
				}
			}
		}
	}
	return nil
}
