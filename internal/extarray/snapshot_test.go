package extarray

import (
	"bytes"
	"strings"
	"testing"

	"pairfn/internal/core"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	a := NewMapBacked[int64](core.Hyperbolic{}, 6, 9)
	for x := int64(1); x <= 6; x++ {
		for y := int64(1); y <= 9; y += 2 { // leave holes
			if err := a.Set(x, y, x*100+y); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.GrowRows(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Load[int64](&buf, core.Hyperbolic{}, NewMapStore[int64]())
	if err != nil {
		t.Fatal(err)
	}
	br, bc := b.Dims()
	if br != 8 || bc != 9 {
		t.Fatalf("loaded dims %d×%d", br, bc)
	}
	if b.Len() != a.Len() {
		t.Fatalf("loaded %d elements, want %d", b.Len(), a.Len())
	}
	for x := int64(1); x <= 6; x++ {
		for y := int64(1); y <= 9; y++ {
			av, aok, _ := a.Get(x, y)
			bv, bok, _ := b.Get(x, y)
			if av != bv || aok != bok {
				t.Fatalf("(%d, %d): loaded (%d, %v), want (%d, %v)", x, y, bv, bok, av, aok)
			}
		}
	}
	if b.Stats().Reshapes != a.Stats().Reshapes {
		t.Error("stats not preserved")
	}
}

func TestLoadRejectsWrongMapping(t *testing.T) {
	a := NewMapBacked[string](core.Diagonal{}, 3, 3)
	if err := a.Set(2, 2, "v"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Load[string](&buf, core.SquareShell{}, NewMapStore[string]())
	if err == nil || !strings.Contains(err.Error(), "laid out by") {
		t.Errorf("wrong-mapping load: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load[int64](strings.NewReader("not a gob"), core.Diagonal{}, NewMapStore[int64]()); err == nil {
		t.Error("garbage input should fail")
	}
}

// TestLoadCorruptSnapshot is the boot-safety regression: a bit-flipped or
// truncated snapshot must yield a clean error from every decode entry
// point — encoding/gob can panic on malformed streams, and a panic at boot
// is an unclean crash where a logged error and nonzero exit is required.
func TestLoadCorruptSnapshot(t *testing.T) {
	a := NewMapBacked[string](core.SquareShell{}, 16, 16)
	for x := int64(1); x <= 16; x++ {
		for y := int64(1); y <= 16; y++ {
			if err := a.Set(x, y, strings.Repeat("v", int(x+y))); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Every single-bit flip and every truncation point must decode to an
	// error, never a panic. (Exhaustive over a small snapshot: a few KB.)
	for i := range good {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), good...)
			flipped[i] ^= 1 << bit
			if bytes.Equal(flipped, good) {
				continue
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("flip byte %d bit %d: decode panicked: %v", i, bit, p)
					}
				}()
				snap, err := DecodeSnapshot[string](bytes.NewReader(flipped))
				if err != nil {
					return // clean rejection
				}
				// Flips that survive decoding (e.g. inside a value string)
				// must still be structurally consistent.
				if len(snap.Addrs) != len(snap.Values) {
					t.Fatalf("flip byte %d bit %d: inconsistent snapshot accepted", i, bit)
				}
			}()
		}
	}
	for cut := 0; cut < len(good); cut += 7 {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("truncate at %d: decode panicked: %v", cut, p)
				}
			}()
			if _, err := DecodeSnapshot[string](bytes.NewReader(good[:cut])); err == nil {
				t.Fatalf("truncate at %d: decode accepted a partial snapshot", cut)
			}
		}()
	}
}

func TestRange(t *testing.T) {
	a := NewMapBacked[int64](core.SquareShell{}, 4, 4)
	want := map[[2]int64]int64{}
	for x := int64(1); x <= 4; x++ {
		for y := int64(1); y <= 4; y++ {
			if (x+y)%2 == 0 {
				if err := a.Set(x, y, x*10+y); err != nil {
					t.Fatal(err)
				}
				want[[2]int64{x, y}] = x*10 + y
			}
		}
	}
	got := map[[2]int64]int64{}
	var order [][2]int64
	if err := a.Range(func(x, y int64, v int64) bool {
		got[[2]int64{x, y}] = v
		order = append(order, [2]int64{x, y})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ranged over %d elements, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%v: got %d want %d", k, got[k], v)
		}
	}
	// Row-major order.
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("not row-major at %d: %v then %v", i, a, b)
		}
	}
	// Early stop.
	count := 0
	if err := a.Range(func(x, y int64, v int64) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}
