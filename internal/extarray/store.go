package extarray

// A Store is an address-indexed backing memory for array elements.
// Addresses are the 1-based values produced by a storage mapping.
type Store[T any] interface {
	// Get returns the element at addr and whether it is present.
	Get(addr int64) (T, bool)
	// Set stores v at addr.
	Set(addr int64, v T)
	// Delete removes the element at addr (no-op if absent).
	Delete(addr int64)
	// Len returns the number of stored elements.
	Len() int
	// MaxAddr returns the largest address ever occupied — the footprint.
	MaxAddr() int64
}

// MapStore is a hash-map-backed Store: O(1) expected access, memory
// proportional to the number of stored elements regardless of spread.
// This is the §3-aside trade-off in its simplest form (see package
// hashstore for the measured variants).
type MapStore[T any] struct {
	m   map[int64]T
	max int64
}

// NewMapStore returns an empty MapStore.
func NewMapStore[T any]() *MapStore[T] {
	return &MapStore[T]{m: make(map[int64]T)}
}

// Get implements Store.
func (s *MapStore[T]) Get(addr int64) (T, bool) {
	v, ok := s.m[addr]
	return v, ok
}

// Set implements Store.
func (s *MapStore[T]) Set(addr int64, v T) {
	s.m[addr] = v
	if addr > s.max {
		s.max = addr
	}
}

// Delete implements Store.
func (s *MapStore[T]) Delete(addr int64) { delete(s.m, addr) }

// Len implements Store.
func (s *MapStore[T]) Len() int { return len(s.m) }

// MaxAddr implements Store.
func (s *MapStore[T]) MaxAddr() int64 { return s.max }

// pageBits sizes PagedStore pages at 2^pageBits elements.
const pageBits = 10

// PagedStore is a paged-slice-backed Store: contiguous pages of 2^10
// elements allocated on demand. Unlike MapStore its memory is proportional
// to the *address range touched* (rounded up to pages), so it makes the
// spread of the storage mapping physically visible: a mapping with spread
// S(n) allocates ≈ S(n)/2^10 pages to hold n elements. This is the memory
// model under which §3.2's compactness race matters.
type PagedStore[T any] struct {
	pages map[int64][]T
	used  map[int64][]bool
	n     int
	max   int64
}

// NewPagedStore returns an empty PagedStore.
func NewPagedStore[T any]() *PagedStore[T] {
	return &PagedStore[T]{pages: make(map[int64][]T), used: make(map[int64][]bool)}
}

// Get implements Store.
func (s *PagedStore[T]) Get(addr int64) (T, bool) {
	var zero T
	p, off := addr>>pageBits, addr&(1<<pageBits-1)
	u, ok := s.used[p]
	if !ok || !u[off] {
		return zero, false
	}
	return s.pages[p][off], true
}

// Set implements Store.
func (s *PagedStore[T]) Set(addr int64, v T) {
	p, off := addr>>pageBits, addr&(1<<pageBits-1)
	if _, ok := s.pages[p]; !ok {
		s.pages[p] = make([]T, 1<<pageBits)
		s.used[p] = make([]bool, 1<<pageBits)
	}
	if !s.used[p][off] {
		s.used[p][off] = true
		s.n++
	}
	s.pages[p][off] = v
	if addr > s.max {
		s.max = addr
	}
}

// Delete implements Store.
func (s *PagedStore[T]) Delete(addr int64) {
	p, off := addr>>pageBits, addr&(1<<pageBits-1)
	if u, ok := s.used[p]; ok && u[off] {
		var zero T
		s.pages[p][off] = zero
		u[off] = false
		s.n--
	}
}

// Len implements Store.
func (s *PagedStore[T]) Len() int { return s.n }

// MaxAddr implements Store.
func (s *PagedStore[T]) MaxAddr() int64 { return s.max }

// Pages returns the number of pages currently allocated — the physical
// memory proxy that exposes spread.
func (s *PagedStore[T]) Pages() int { return len(s.pages) }
