package extarray

import "sync"

// Sync wraps any Table with a read-write mutex, making it safe for
// concurrent use by worker goroutines — the natural deployment of a
// PF-addressed array in a parallel solver (see examples/extendible-matrix
// for the serial version). Gets take the read lock; Sets and Resizes take
// the write lock. Reshapes therefore act as barriers, which is exactly the
// semantics a grow-then-fill refinement loop needs.
type Sync[T any] struct {
	mu    sync.RWMutex
	inner Table[T]
}

// NewSync wraps inner. The wrapped table must not be used directly
// afterwards.
func NewSync[T any](inner Table[T]) *Sync[T] {
	return &Sync[T]{inner: inner}
}

// Dims implements Table.
func (s *Sync[T]) Dims() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Dims()
}

// Get implements Table.
func (s *Sync[T]) Get(x, y int64) (T, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Get(x, y)
}

// Set implements Table.
func (s *Sync[T]) Set(x, y int64, v T) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Set(x, y, v)
}

// Resize implements Table.
func (s *Sync[T]) Resize(rows, cols int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Resize(rows, cols)
}

// Stats implements Table.
func (s *Sync[T]) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Stats()
}
