package extarray

import (
	"fmt"
	"math/rand"
	"testing"

	"pairfn/internal/core"
)

// BenchmarkSyncContention pins the cost of the single RWMutex in Sync under
// concurrent mutation — the baseline the tabled sharded store (E23) is
// measured against. Sub-benchmarks sweep GOMAXPROCS (via -cpu) × read fraction; each
// iteration is one Get or Set at a uniformly random in-bounds position of a
// 256×256 table over 𝒜₁,₁ with a paged backing.
//
// Regenerate: go test ./internal/extarray -bench SyncContention -cpu 1,2,4
func BenchmarkSyncContention(b *testing.B) {
	const side = 256
	for _, readPct := range []int{90, 50} {
		b.Run(fmt.Sprintf("read=%d%%", readPct), func(b *testing.B) {
			arr, err := New[int64](core.SquareShell{}, NewPagedStore[int64](), side, side)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-fill so Gets hit occupied cells.
			for x := int64(1); x <= side; x++ {
				for y := int64(1); y <= side; y++ {
					if err := arr.Set(x, y, x*side+y); err != nil {
						b.Fatal(err)
					}
				}
			}
			s := NewSync[int64](arr)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					x, y := rng.Int63n(side)+1, rng.Int63n(side)+1
					if rng.Intn(100) < readPct {
						if _, _, err := s.Get(x, y); err != nil {
							b.Fatal(err)
						}
					} else if err := s.Set(x, y, x^y); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSyncResizeBarrier measures the write-barrier cost of reshapes
// through the global lock: one goroutine grows/shrinks a column while the
// parallel body reads. This is the operation PF addressing makes O(1) in
// moves; the mutex makes it a full barrier regardless.
func BenchmarkSyncResizeBarrier(b *testing.B) {
	const side = 128
	arr, err := New[int64](core.SquareShell{}, NewPagedStore[int64](), side, side)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSync[int64](arr)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		i := 0
		for pb.Next() {
			i++
			if i%1024 == 0 {
				// Grow then shrink one column: zero element moves under a
				// PF mapping, but every reader stalls on the write lock.
				if err := s.Resize(side, side+1); err != nil {
					b.Fatal(err)
				}
				if err := s.Resize(side, side); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if _, _, err := s.Get(rng.Int63n(side)+1, rng.Int63n(side)+1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
