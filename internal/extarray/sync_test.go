package extarray

import (
	"sync"
	"testing"

	"pairfn/internal/core"
)

// TestSyncConcurrentFill: workers fill disjoint rows concurrently, the
// array grows between phases, and every value survives (run with -race).
func TestSyncConcurrentFill(t *testing.T) {
	tab := NewSync[int64](NewMapBacked[int64](core.SquareShell{}, 8, 8))
	const workers = 8
	fill := func(rows, cols int64) {
		var wg sync.WaitGroup
		for w := int64(0); w < workers; w++ {
			wg.Add(1)
			go func(w int64) {
				defer wg.Done()
				for x := w + 1; x <= rows; x += workers {
					for y := int64(1); y <= cols; y++ {
						if err := tab.Set(x, y, x*1000+y); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
	}
	fill(8, 8)
	if err := tab.Resize(16, 12); err != nil {
		t.Fatal(err)
	}
	fill(16, 12)
	// Concurrent readers validate while more writers churn one row.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for x := int64(1); x <= 16; x++ {
				for y := int64(1); y <= 12; y++ {
					v, ok, err := tab.Get(x, y)
					if err != nil || !ok || v != x*1000+y {
						t.Errorf("Get(%d,%d) = %d, %v, %v", x, y, v, ok, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := tab.Set(1, 1, 1001); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if r, c := tab.Dims(); r != 16 || c != 12 {
		t.Errorf("dims %d×%d", r, c)
	}
	if tab.Stats().Moves != 0 {
		t.Errorf("growth moved %d elements", tab.Stats().Moves)
	}
}
