package extarray

import (
	"fmt"

	"pairfn/internal/core"
)

// The §3 aside observes that PF-based storage gives "a broad range of ways
// of accessing one's arrays/tables: by position, by row/column, by block
// (at varying computational costs)". This file provides those traversals
// plus a locality cost model: traversing a row/column/block visits a
// sequence of addresses, and the number of distinct memory pages touched is
// the classic proxy for that traversal's cost. Row-major indexing makes
// rows perfectly local and columns terrible; the PFs trade both against
// reshape-freedom, each in its own way (diagonal shells favor
// anti-diagonals, square shells favor square blocks, hyperbolic shells
// favor nothing but stay compact).

// Addresses returns the addresses of the positions of row x, columns
// 1..cols, under mapping f.
func RowAddresses(f core.StorageMapping, x, cols int64) ([]int64, error) {
	if x < 1 || cols < 0 {
		return nil, fmt.Errorf("extarray: RowAddresses(%d, %d) domain error", x, cols)
	}
	out := make([]int64, 0, cols)
	for y := int64(1); y <= cols; y++ {
		z, err := f.Encode(x, y)
		if err != nil {
			return nil, err
		}
		out = append(out, z)
	}
	return out, nil
}

// ColAddresses returns the addresses of the positions of column y, rows
// 1..rows, under mapping f.
func ColAddresses(f core.StorageMapping, y, rows int64) ([]int64, error) {
	if y < 1 || rows < 0 {
		return nil, fmt.Errorf("extarray: ColAddresses(%d, %d) domain error", y, rows)
	}
	out := make([]int64, 0, rows)
	for x := int64(1); x <= rows; x++ {
		z, err := f.Encode(x, y)
		if err != nil {
			return nil, err
		}
		out = append(out, z)
	}
	return out, nil
}

// BlockAddresses returns the addresses of the block [x0, x1] × [y0, y1]
// under mapping f, in row-major visit order.
func BlockAddresses(f core.StorageMapping, x0, x1, y0, y1 int64) ([]int64, error) {
	if x0 < 1 || y0 < 1 || x1 < x0 || y1 < y0 {
		return nil, fmt.Errorf("extarray: BlockAddresses(%d..%d, %d..%d) domain error",
			x0, x1, y0, y1)
	}
	out := make([]int64, 0, (x1-x0+1)*(y1-y0+1))
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			z, err := f.Encode(x, y)
			if err != nil {
				return nil, err
			}
			out = append(out, z)
		}
	}
	return out, nil
}

// TraversalCost summarizes the locality of one traversal.
type TraversalCost struct {
	// Elements is the number of positions visited.
	Elements int64
	// Span is max−min+1 over the visited addresses: the window a
	// prefetcher would have to cover.
	Span int64
	// Pages is the number of distinct pages of 2^pageBits addresses
	// touched — the cache/VM cost proxy.
	Pages int64
}

// Cost computes the TraversalCost of an address sequence.
func Cost(addrs []int64) TraversalCost {
	if len(addrs) == 0 {
		return TraversalCost{}
	}
	min, max := addrs[0], addrs[0]
	pages := make(map[int64]struct{}, len(addrs))
	for _, a := range addrs {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
		pages[a>>pageBits] = struct{}{}
	}
	return TraversalCost{
		Elements: int64(len(addrs)),
		Span:     max - min + 1,
		Pages:    int64(len(pages)),
	}
}

// RowCost is Cost(RowAddresses(f, x, cols)).
func RowCost(f core.StorageMapping, x, cols int64) (TraversalCost, error) {
	a, err := RowAddresses(f, x, cols)
	if err != nil {
		return TraversalCost{}, err
	}
	return Cost(a), nil
}

// ColCost is Cost(ColAddresses(f, y, rows)).
func ColCost(f core.StorageMapping, y, rows int64) (TraversalCost, error) {
	a, err := ColAddresses(f, y, rows)
	if err != nil {
		return TraversalCost{}, err
	}
	return Cost(a), nil
}

// BlockCost is Cost(BlockAddresses(f, x0, x1, y0, y1)).
func BlockCost(f core.StorageMapping, x0, x1, y0, y1 int64) (TraversalCost, error) {
	a, err := BlockAddresses(f, x0, x1, y0, y1)
	if err != nil {
		return TraversalCost{}, err
	}
	return Cost(a), nil
}
