package extarray

import (
	"testing"

	"pairfn/internal/core"
)

func TestRowColBlockAddresses(t *testing.T) {
	f := core.RowMajor{Width: 100}
	row, err := RowAddresses(f, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range row {
		if want := int64(2*100 + i + 1); a != want {
			t.Errorf("row address[%d] = %d, want %d", i, a, want)
		}
	}
	col, err := ColAddresses(f, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range col {
		if want := int64(i*100 + 2); a != want {
			t.Errorf("col address[%d] = %d, want %d", i, a, want)
		}
	}
	blk, err := BlockAddresses(f, 2, 3, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{105, 106, 205, 206}
	for i := range want {
		if blk[i] != want[i] {
			t.Fatalf("block = %v, want %v", blk, want)
		}
	}
}

func TestCost(t *testing.T) {
	c := Cost([]int64{1, 2, 3, 1024, 1025})
	if c.Elements != 5 || c.Span != 1025 {
		t.Errorf("cost = %+v", c)
	}
	if c.Pages != 2 { // addresses 1..3 on page 0, 1024..1025 on page 1
		t.Errorf("pages = %d, want 2", c.Pages)
	}
	if (Cost(nil) != TraversalCost{}) {
		t.Error("empty cost should be zero")
	}
}

// TestAccessCostTradeoffs captures the §3 aside quantitatively:
//   - row-major: rows perfectly local (span = cols), columns terrible;
//   - square-shell: the column x-range [1,n] of column n is one shell arm —
//     span ~ n for the *last* column, quadratic for the first;
//   - hyperbolic: nothing is an arithmetic progression, but every
//     traversal of an n-position array stays within its Θ(n log n) spread.
func TestAccessCostTradeoffs(t *testing.T) {
	const n = 64
	rm := core.RowMajor{Width: n}
	rmRow, err := RowCost(rm, 5, n)
	if err != nil {
		t.Fatal(err)
	}
	if rmRow.Span != n {
		t.Errorf("row-major row span = %d, want %d", rmRow.Span, n)
	}
	rmCol, err := ColCost(rm, 5, n)
	if err != nil {
		t.Fatal(err)
	}
	if rmCol.Span != n*(n-1)+1 {
		t.Errorf("row-major col span = %d, want %d", rmCol.Span, n*(n-1)+1)
	}

	ss := core.SquareShell{}
	// Column y = n under 𝒜₁,₁ crosses shells max(x,y) for x ≤ n, i.e. the
	// single shell n: addresses are contiguous along the arm.
	ssCol, err := ColCost(ss, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if ssCol.Span != n {
		t.Errorf("square-shell last-column span = %d, want %d (one shell arm)", ssCol.Span, n)
	}
	// Row x = 1 under 𝒜₁,₁ hits every shell: quadratic span.
	ssRow, err := RowCost(ss, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if ssRow.Span != n*n-1+1 {
		t.Errorf("square-shell first-row span = %d, want %d", ssRow.Span, n*n)
	}

	// Hyperbolic: a thin row of n² elements spans ≤ S_ℋ(n²) = Θ(n² log n²),
	// two orders below the diagonal PF's quadratic Θ(n⁴) span on the same
	// row.
	h := core.Hyperbolic{}
	hRow, err := RowCost(h, 1, n*n) // n² elements in a thin array
	if err != nil {
		t.Fatal(err)
	}
	dRow, err := RowCost(core.Diagonal{}, 1, n*n)
	if err != nil {
		t.Fatal(err)
	}
	if hRow.Span*100 >= dRow.Span {
		t.Errorf("hyperbolic thin-row span %d not ≪ diagonal's %d", hRow.Span, dRow.Span)
	}

	// Block access: a square block under 𝒜₁,₁ touches only its own shells.
	blk, err := BlockCost(ss, n/2, n/2+7, n/2, n/2+7)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Elements != 64 {
		t.Errorf("block elements = %d", blk.Elements)
	}
	// The 8×8 block at (32,32) lives within shells 32..40: span bounded by
	// the shell-40 boundary minus the shell-31 boundary.
	if max := int64(40*40 - 31*31); blk.Span > max {
		t.Errorf("block span = %d, want ≤ %d", blk.Span, max)
	}
}

func TestViewDomainErrors(t *testing.T) {
	f := core.Diagonal{}
	if _, err := RowAddresses(f, 0, 5); err == nil {
		t.Error("RowAddresses(0, ·) should fail")
	}
	if _, err := ColAddresses(f, 1, -1); err == nil {
		t.Error("ColAddresses(·, -1) should fail")
	}
	if _, err := BlockAddresses(f, 2, 1, 1, 1); err == nil {
		t.Error("inverted block should fail")
	}
	// Partial mapping error propagation.
	if _, err := RowAddresses(core.RowMajor{Width: 3}, 1, 5); err == nil {
		t.Error("row beyond width should surface mapping error")
	}
}
