// Package hashstore implements the §3-aside alternative to PF storage
// mappings: when an extendible array/table is accessed *only by position*,
// hashing beats any pairing function's spread. The aside cites
// Rosenberg–Stockmeyer (J. ACM 1977), whose schemes use fewer than 2n
// memory locations for an n-position table of any aspect ratio, with O(1)
// expected and O(log log n) worst-case access time.
//
// We provide two modern stand-ins that preserve the claims the paper uses
// the aside for (documented as a substitution in DESIGN.md):
//
//   - Open: open-addressing with load factor kept in [1/2, 4/5], hence
//     fewer than 2n slots and O(1) expected probes;
//   - TwoLevel: an FKS-style two-level table with collision-free buckets,
//     hence O(1) worst-case probes per lookup (amortized rebuilds), at
//     O(n) slots.
//
// Both are keyed directly by position ⟨x, y⟩, need no pairing function, and
// are oblivious to aspect ratio — which is exactly the trade-off the aside
// describes: compact constant-time access, but no address arithmetic, no
// row/column locality and no block access.
//
// # Overflow and concurrency
//
// Positions are hashed, never arithmetically combined, so no coordinate
// magnitude can overflow — any ⟨x, y⟩ in int64 range is a valid key (this
// is the aside's point: hashing has no spread). Open and TwoLevel are not
// safe for concurrent mutation; guard them externally (e.g. with
// extarray.Sync) when shared across goroutines. Under such an RWMutex
// guard, concurrent read-locked Gets are safe: the read path's only shared
// mutation is probe accounting, which is atomic (verified by the
// TestOpenUnderSyncGuard / TestTwoLevelUnderSyncGuard race tests).
package hashstore
