package hashstore_test

import (
	"fmt"

	"pairfn/internal/hashstore"
)

func ExampleOpen() {
	// Position-keyed storage: no pairing function, ≤ 2n slots, O(1)
	// expected access (the §3 aside).
	s := hashstore.NewOpen[string]()
	s.Set(hashstore.Position{X: 1000000, Y: 3}, "far corner")
	v, ok := s.Get(hashstore.Position{X: 1000000, Y: 3})
	fmt.Println(v, ok, s.Len())
	// Output: far corner true 1
}

func ExampleTwoLevel() {
	// FKS-style two-level hashing: every lookup is exactly two probes.
	s := hashstore.NewTwoLevel[int64]()
	for i := int64(1); i <= 100; i++ {
		s.Set(hashstore.Position{X: i, Y: i}, i)
	}
	_, _ = s.Get(hashstore.Position{X: 50, Y: 50})
	fmt.Println(s.Stats().MaxProbe)
	// Output: 2
}
