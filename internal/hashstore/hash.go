package hashstore

// Position is a 1-based array position.
type Position struct {
	X, Y int64
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashPos mixes a position with a seed into a 64-bit hash.
func hashPos(p Position, seed uint64) uint64 {
	h := splitmix64(uint64(p.X) ^ seed)
	return splitmix64(h ^ uint64(p.Y)*0xD1B54A32D192ED03)
}

// ProbeStats accumulates access-cost measurements.
type ProbeStats struct {
	// Lookups is the number of Get/Set/Delete key searches performed.
	Lookups int64
	// Probes is the total number of slot inspections across all searches.
	Probes int64
	// MaxProbe is the longest single probe sequence observed.
	MaxProbe int64
}

// Mean returns the average probes per lookup (0 if no lookups).
func (s ProbeStats) Mean() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Probes) / float64(s.Lookups)
}

func (s *ProbeStats) record(probes int64) {
	s.Lookups++
	s.Probes += probes
	if probes > s.MaxProbe {
		s.MaxProbe = probes
	}
}
