package hashstore

import "sync/atomic"

// Position is a 1-based array position.
type Position struct {
	X, Y int64
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashPos mixes a position with a seed into a 64-bit hash.
func hashPos(p Position, seed uint64) uint64 {
	h := splitmix64(uint64(p.X) ^ seed)
	return splitmix64(h ^ uint64(p.Y)*0xD1B54A32D192ED03)
}

// ProbeStats is a point-in-time snapshot of access-cost measurements.
type ProbeStats struct {
	// Lookups is the number of Get/Take/Set/Delete key searches performed.
	Lookups int64
	// Probes is the total number of slot inspections across all searches.
	Probes int64
	// MaxProbe is the longest single probe sequence observed.
	MaxProbe int64
}

// Mean returns the average probes per lookup (0 if no lookups).
func (s ProbeStats) Mean() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Probes) / float64(s.Lookups)
}

// probeCounters is the live, concurrently-updated form of ProbeStats.
// Recording is atomic so that *read* operations — which touch nothing but
// these counters — stay safe under an RWMutex read lock (the extarray.Sync
// deployment the package doc promises). Structure mutation is still the
// caller's lock to take.
type probeCounters struct {
	lookups  atomic.Int64
	probes   atomic.Int64
	maxProbe atomic.Int64
}

func (c *probeCounters) record(probes int64) {
	c.lookups.Add(1)
	c.probes.Add(probes)
	for {
		cur := c.maxProbe.Load()
		if probes <= cur || c.maxProbe.CompareAndSwap(cur, probes) {
			return
		}
	}
}

// snapshot returns the counters as a ProbeStats value. Each field is read
// atomically; the triple is not a single linearization point, which is fine
// for the monotone accounting these stats exist for.
func (c *probeCounters) snapshot() ProbeStats {
	return ProbeStats{
		Lookups:  c.lookups.Load(),
		Probes:   c.probes.Load(),
		MaxProbe: c.maxProbe.Load(),
	}
}
