package hashstore

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// storeAPI lets the same battery run over both stores.
type storeAPI interface {
	Get(Position) (int64, bool)
	Set(Position, int64)
	Delete(Position)
	Len() int
	Slots() int
}

func stores() map[string]func() storeAPI {
	return map[string]func() storeAPI{
		"open":     func() storeAPI { return NewOpen[int64]() },
		"twolevel": func() storeAPI { return NewTwoLevel[int64]() },
	}
}

func TestBasicOps(t *testing.T) {
	for name, mk := range stores() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			s := mk()
			if _, ok := s.Get(Position{1, 1}); ok {
				t.Error("empty store Get should miss")
			}
			s.Set(Position{1, 1}, 10)
			s.Set(Position{1, 2}, 20)
			s.Set(Position{2, 1}, 30)
			if v, ok := s.Get(Position{1, 2}); !ok || v != 20 {
				t.Errorf("Get(1,2) = %d, %v", v, ok)
			}
			s.Set(Position{1, 2}, 21) // overwrite
			if v, _ := s.Get(Position{1, 2}); v != 21 {
				t.Errorf("overwrite failed: %d", v)
			}
			if s.Len() != 3 {
				t.Errorf("Len = %d, want 3", s.Len())
			}
			s.Delete(Position{1, 1})
			if _, ok := s.Get(Position{1, 1}); ok {
				t.Error("deleted key still present")
			}
			s.Delete(Position{9, 9}) // absent: no-op
			if s.Len() != 2 {
				t.Errorf("Len = %d, want 2", s.Len())
			}
		})
	}
}

// TestAgainstMap drives random workloads and compares to a reference map.
func TestAgainstMap(t *testing.T) {
	for name, mk := range stores() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			s := mk()
			ref := make(map[Position]int64)
			rng := rand.New(rand.NewSource(42))
			for op := 0; op < 20000; op++ {
				p := Position{X: rng.Int63n(50) + 1, Y: rng.Int63n(50) + 1}
				switch rng.Intn(3) {
				case 0, 1:
					v := rng.Int63()
					s.Set(p, v)
					ref[p] = v
				case 2:
					s.Delete(p)
					delete(ref, p)
				}
				if s.Len() != len(ref) {
					t.Fatalf("op %d: Len %d vs ref %d", op, s.Len(), len(ref))
				}
			}
			for p, want := range ref {
				if got, ok := s.Get(p); !ok || got != want {
					t.Fatalf("Get(%v) = %d, %v; want %d", p, got, ok, want)
				}
			}
		})
	}
}

// TestHashStoreBounds is experiment E18: the open store must stay under 2n
// slots (n ≥ 8) with O(1) mean probes; the two-level store must do exactly
// 2 probes per lookup with O(n) slots.
func TestHashStoreBounds(t *testing.T) {
	open := NewOpen[int64]()
	// Fill with a worst-case-ish pattern: a long thin row, then a block.
	n := 0
	for y := int64(1); y <= 4000; y++ {
		open.Set(Position{1, y}, y)
		n++
		if n >= 8 && open.Slots() > 2*n {
			t.Fatalf("open store: %d slots for %d keys (> 2n)", open.Slots(), n)
		}
	}
	for x := int64(2); x <= 60; x++ {
		for y := int64(1); y <= 60; y++ {
			open.Set(Position{x, y}, x+y)
			n++
			if open.Slots() > 2*n {
				t.Fatalf("open store: %d slots for %d keys (> 2n)", open.Slots(), n)
			}
		}
	}
	if mean := open.Stats().Mean(); mean > 6 {
		t.Errorf("open store mean probes = %v, want O(1) (≤ 6 at load ≤ 0.7)", mean)
	}

	tl := NewTwoLevel[int64]()
	for y := int64(1); y <= 4000; y++ {
		tl.Set(Position{1, y}, y)
	}
	for y := int64(1); y <= 4000; y++ {
		if v, ok := tl.Get(Position{1, y}); !ok || v != y {
			t.Fatalf("twolevel Get(1, %d) = %d, %v", y, v, ok)
		}
	}
	if max := tl.Stats().MaxProbe; max != 2 {
		t.Errorf("twolevel max probe = %d, want exactly 2", max)
	}
	if slots := tl.Slots(); slots > 16*tl.Len() {
		t.Errorf("twolevel slots %d ≫ O(n) for n = %d", slots, tl.Len())
	}
}

// TestOpenStoreShrinks verifies the table shrinks after mass deletion, so
// the < 2n bound also holds on the way down.
func TestOpenStoreShrinks(t *testing.T) {
	s := NewOpen[int64]()
	for i := int64(0); i < 10000; i++ {
		s.Set(Position{i, i}, i)
	}
	grown := s.Slots()
	for i := int64(0); i < 9900; i++ {
		s.Delete(Position{i, i})
	}
	if s.Slots() >= grown {
		t.Errorf("slots did not shrink: %d → %d", grown, s.Slots())
	}
	if s.Len() >= 8 && s.Slots() > 2*s.Len()+openMinSlots {
		t.Errorf("after shrink: %d slots for %d keys", s.Slots(), s.Len())
	}
	for i := int64(9900); i < 10000; i++ {
		if v, ok := s.Get(Position{i, i}); !ok || v != i {
			t.Fatalf("survivor %d lost: %d, %v", i, v, ok)
		}
	}
}

// TestTombstoneChurn hammers one key-set with set/delete cycles to stress
// tombstone reclamation.
func TestTombstoneChurn(t *testing.T) {
	s := NewOpen[int64]()
	for round := 0; round < 50; round++ {
		for i := int64(0); i < 200; i++ {
			s.Set(Position{i, 0}, i)
		}
		for i := int64(0); i < 200; i++ {
			s.Delete(Position{i, 0})
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after churn", s.Len())
	}
	if s.Slots() > 64 {
		t.Errorf("churn left %d slots allocated", s.Slots())
	}
}

// TestQuickSetGet is the property form: Set then Get returns the value.
func TestQuickSetGet(t *testing.T) {
	for name, mk := range stores() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			s := mk()
			f := func(x, y uint16, v int64) bool {
				p := Position{int64(x) + 1, int64(y) + 1}
				s.Set(p, v)
				got, ok := s.Get(p)
				return ok && got == v
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestTwoLevelRebuildAccounting sanity-checks that rebuild counters move
// and stay sane (amortization evidence).
func TestTwoLevelRebuildAccounting(t *testing.T) {
	s := NewTwoLevel[int64]()
	for i := int64(0); i < 5000; i++ {
		s.Set(Position{i % 97, i}, i)
	}
	global, bucket := s.Rebuilds()
	if global == 0 {
		t.Error("expected at least one global rebuild")
	}
	// Amortized O(1): salt retries should be O(n), not O(n²).
	if bucket > 10*5000 {
		t.Errorf("bucket rebuilds = %d, far beyond O(n)", bucket)
	}
}

func TestProbeStatsMean(t *testing.T) {
	var c probeCounters
	if c.snapshot().Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
	c.record(3)
	c.record(5)
	if s := c.snapshot(); s.Mean() != 4 || s.MaxProbe != 5 || s.Lookups != 2 {
		t.Errorf("stats = %+v", s)
	}
}
