package hashstore

const (
	openMinSlots = 8
	// Load factor bounds: resizing to 7n/4 slots keeps the table at or
	// under 2n slots (the Rosenberg–Stockmeyer space bound) while linear
	// probing at load ≤ 0.7 keeps expected probe counts at a small
	// constant.
	openMaxLoadNum, openMaxLoadDen = 7, 10 // grow when occupancy > 7/10
	openMinLoadNum, openMinLoadDen = 1, 2  // shrink when n/slots < 1/2
	openTargetNum, openTargetDen   = 7, 4  // resize to slots = 7n/4
)

// Open is a position-keyed open-addressing hash store for extendible-array
// elements. Its live load factor is kept within [1/2, 7/10], so for n ≥ 8
// stored elements it occupies at most 2n slots — the space bound of the §3
// aside — while linear probing at load ≤ 0.7 gives O(1) expected probes.
// Deletions use tombstones; the table rehashes when tombstones accumulate.
type Open[T any] struct {
	slots []openSlot[T]
	n     int // live entries
	dead  int // tombstones
	seed  uint64
	stats probeCounters
}

type openSlot[T any] struct {
	state uint8 // 0 empty, 1 live, 2 tombstone
	key   Position
	val   T
}

// NewOpen returns an empty Open store.
func NewOpen[T any]() *Open[T] {
	return &Open[T]{slots: make([]openSlot[T], openMinSlots), seed: 0x9E3779B97F4A7C15}
}

// Len returns the number of stored elements.
func (h *Open[T]) Len() int { return h.n }

// Slots returns the current number of slots; tests assert Slots < 2·Len
// once Len ≥ 8.
func (h *Open[T]) Slots() int { return len(h.slots) }

// Stats returns accumulated probe statistics.
func (h *Open[T]) Stats() ProbeStats { return h.stats.snapshot() }

// find locates key, returning (index, found). When not found, index is the
// first insertable slot (empty or tombstone) on the probe path.
func (h *Open[T]) find(key Position) (int, bool) {
	m := uint64(len(h.slots))
	i := hashPos(key, h.seed) % m
	insert := -1
	var probes int64
	for {
		probes++
		s := &h.slots[i]
		switch s.state {
		case 0:
			h.stats.record(probes)
			if insert >= 0 {
				return insert, false
			}
			return int(i), false
		case 1:
			if s.key == key {
				h.stats.record(probes)
				return int(i), true
			}
		case 2:
			if insert < 0 {
				insert = int(i)
			}
		}
		i++
		if i == m {
			i = 0
		}
	}
}

// Get returns the element stored at key.
func (h *Open[T]) Get(key Position) (T, bool) {
	var zero T
	i, ok := h.find(key)
	if !ok {
		return zero, false
	}
	return h.slots[i].val, true
}

// Set stores v at key.
func (h *Open[T]) Set(key Position, v T) {
	i, ok := h.find(key)
	if ok {
		h.slots[i].val = v
		return
	}
	if h.slots[i].state == 2 {
		h.dead--
	}
	h.slots[i] = openSlot[T]{state: 1, key: key, val: v}
	h.n++
	h.maybeResize()
}

// Delete removes key if present.
func (h *Open[T]) Delete(key Position) {
	i, ok := h.find(key)
	if !ok {
		return
	}
	var zero T
	h.slots[i].state = 2
	h.slots[i].val = zero
	h.n--
	h.dead++
	h.maybeResize()
}

// maybeResize rehashes when the live load leaves [1/2, 4/5] or tombstones
// exceed a quarter of the table.
func (h *Open[T]) maybeResize() {
	m := len(h.slots)
	occupied := h.n + h.dead
	switch {
	case occupied*openMaxLoadDen > m*openMaxLoadNum:
		h.rehash()
	case m > openMinSlots && h.n*openMinLoadDen < m*openMinLoadNum:
		h.rehash()
	case h.dead*4 > m:
		h.rehash()
	}
}

// rehash rebuilds the table at 7n/4 slots (≥ openMinSlots), dropping
// tombstones.
func (h *Open[T]) rehash() {
	target := h.n * openTargetNum / openTargetDen
	if target < openMinSlots {
		target = openMinSlots
	}
	old := h.slots
	h.slots = make([]openSlot[T], target)
	h.dead = 0
	h.seed = splitmix64(h.seed)
	for _, s := range old {
		if s.state != 1 {
			continue
		}
		// Direct insert without stats or resize recursion.
		m := uint64(len(h.slots))
		i := hashPos(s.key, h.seed) % m
		for h.slots[i].state == 1 {
			i++
			if i == m {
				i = 0
			}
		}
		h.slots[i] = s
	}
}
