package hashstore

import (
	"sync"
	"testing"
)

// guarded is the extarray.Sync deployment pattern the package doc
// prescribes: reads under RLock, mutations under Lock. The stores' only
// read-path mutation is probe accounting, which must therefore be atomic —
// this test, run under -race, is what verifies that contract.
type guarded[T any] struct {
	mu     sync.RWMutex
	get    func(Position) (T, bool)
	set    func(Position, T)
	delete func(Position)
	stats  func() ProbeStats
}

func (g *guarded[T]) Get(p Position) (T, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.get(p)
}

func (g *guarded[T]) Set(p Position, v T) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.set(p, v)
}

func (g *guarded[T]) Delete(p Position) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.delete(p)
}

func (g *guarded[T]) Stats() ProbeStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.stats()
}

// driveGuarded hammers a guarded store with concurrent readers and writers
// over an overlapping key range. Correctness of values is checked by the
// single-threaded tests; this test exists for the race detector.
func driveGuarded(t *testing.T, g *guarded[int64]) {
	t.Helper()
	const (
		workers = 8
		ops     = 2000
		keys    = 128
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				p := Position{X: int64(i % keys), Y: int64((i * 7) % keys)}
				switch {
				case w%2 == 0: // reader: Gets plus the occasional stats scrape
					if v, ok := g.Get(p); ok && v < 0 {
						t.Error("impossible negative value")
					}
					if i%64 == 0 {
						_ = g.Stats().Mean()
					}
				case i%16 == 15:
					g.Delete(p)
				default:
					g.Set(p, int64(w*ops+i))
				}
			}
		}(w)
	}
	wg.Wait()
	if s := g.Stats(); s.Lookups == 0 {
		t.Error("no lookups recorded")
	}
}

// TestOpenUnderSyncGuard verifies the doc.go concurrency contract for Open:
// guarded by an RWMutex in the extarray.Sync style (concurrent read-locked
// Gets), it must be race-clean. Probe accounting is the hidden shared state
// on the read path.
func TestOpenUnderSyncGuard(t *testing.T) {
	h := NewOpen[int64]()
	driveGuarded(t, &guarded[int64]{
		get:    h.Get,
		set:    h.Set,
		delete: h.Delete,
		stats:  h.Stats,
	})
}

// TestTwoLevelUnderSyncGuard is the same contract check for TwoLevel.
func TestTwoLevelUnderSyncGuard(t *testing.T) {
	s := NewTwoLevel[int64]()
	driveGuarded(t, &guarded[int64]{
		get:    s.Get,
		set:    s.Set,
		delete: s.Delete,
		stats:  s.Stats,
	})
}
