package hashstore

// TwoLevel is an FKS-style two-level hash store: a top-level table of m
// buckets, each bucket a collision-free secondary table of size b²
// (b = bucket population) with its own salt. Every lookup inspects exactly
// two slots — one top-level bucket header plus one secondary slot — giving
// O(1) *worst-case* probes, the modern sharpening of the O(log log n)
// worst-case bound the §3 aside cites from Rosenberg–Stockmeyer. Expected
// total space is O(n): with universal hashing, Σ b_i² = O(n) for m = Θ(n),
// and salts are retried until each bucket is collision-free.
//
// Mutations may rebuild a bucket (or, when n drifts past the rebuild
// thresholds, the whole structure); the cost is amortized O(1) per update.
type TwoLevel[T any] struct {
	buckets []tlBucket[T]
	n       int
	builtAt int // n at the time of the last global rebuild
	seed    uint64
	stats   probeCounters
	// rebuilds counts global rebuilds; bucketRebuilds counts salt retries.
	rebuilds       int64
	bucketRebuilds int64
}

type tlBucket[T any] struct {
	salt  uint64
	slots []tlSlot[T]
	n     int
}

type tlSlot[T any] struct {
	live bool
	key  Position
	val  T
}

const tlMinBuckets = 8

// NewTwoLevel returns an empty TwoLevel store.
func NewTwoLevel[T any]() *TwoLevel[T] {
	t := &TwoLevel[T]{seed: 0xC2B2AE3D27D4EB4F}
	t.buckets = make([]tlBucket[T], tlMinBuckets)
	return t
}

// Len returns the number of stored elements.
func (t *TwoLevel[T]) Len() int { return t.n }

// Slots returns the total number of secondary slots allocated.
func (t *TwoLevel[T]) Slots() int {
	total := 0
	for i := range t.buckets {
		total += len(t.buckets[i].slots)
	}
	return total
}

// Stats returns accumulated probe statistics. Every successful or failed
// lookup records exactly 2 probes (bucket header + secondary slot).
func (t *TwoLevel[T]) Stats() ProbeStats { return t.stats.snapshot() }

// Rebuilds returns (global rebuilds, bucket salt retries) — the amortized
// costs behind the O(1) worst-case lookups.
func (t *TwoLevel[T]) Rebuilds() (global, bucket int64) {
	return t.rebuilds, t.bucketRebuilds
}

func (t *TwoLevel[T]) bucketOf(key Position) *tlBucket[T] {
	i := hashPos(key, t.seed) % uint64(len(t.buckets))
	return &t.buckets[i]
}

// slotOf returns the secondary slot index of key within b.
func (b *tlBucket[T]) slotOf(key Position) int {
	return int(hashPos(key, b.salt) % uint64(len(b.slots)))
}

// Get returns the element stored at key: always exactly two probes.
func (t *TwoLevel[T]) Get(key Position) (T, bool) {
	var zero T
	t.stats.record(2)
	b := t.bucketOf(key)
	if len(b.slots) == 0 {
		return zero, false
	}
	s := &b.slots[b.slotOf(key)]
	if s.live && s.key == key {
		return s.val, true
	}
	return zero, false
}

// Set stores v at key, rebuilding the bucket on collision.
func (t *TwoLevel[T]) Set(key Position, v T) {
	t.stats.record(2)
	b := t.bucketOf(key)
	if len(b.slots) > 0 {
		s := &b.slots[b.slotOf(key)]
		if s.live && s.key == key {
			s.val = v
			return
		}
		if !s.live {
			*s = tlSlot[T]{live: true, key: key, val: v}
			b.n++
			t.n++
			t.maybeRebuild()
			return
		}
	}
	// Collision or empty bucket: rebuild the bucket with the new key.
	keys := make([]tlSlot[T], 0, b.n+1)
	for _, s := range b.slots {
		if s.live {
			keys = append(keys, s)
		}
	}
	keys = append(keys, tlSlot[T]{live: true, key: key, val: v})
	t.rebuildBucket(b, keys)
	b.n = len(keys)
	t.n++
	t.maybeRebuild()
}

// Delete removes key if present.
func (t *TwoLevel[T]) Delete(key Position) {
	t.stats.record(2)
	b := t.bucketOf(key)
	if len(b.slots) == 0 {
		return
	}
	s := &b.slots[b.slotOf(key)]
	if !s.live || s.key != key {
		return
	}
	var zero T
	*s = tlSlot[T]{val: zero}
	b.n--
	t.n--
	t.maybeRebuild()
}

// rebuildBucket finds a salt under which the keys are collision-free in a
// table of size max(1, len(keys)²).
func (t *TwoLevel[T]) rebuildBucket(b *tlBucket[T], keys []tlSlot[T]) {
	size := len(keys) * len(keys)
	if size < 1 {
		b.slots, b.n = nil, 0
		return
	}
	salt := splitmix64(b.salt ^ 0xA076_1D64_78BD_642F)
	for {
		t.bucketRebuilds++
		slots := make([]tlSlot[T], size)
		ok := true
		for _, k := range keys {
			i := hashPos(k.key, salt) % uint64(size)
			if slots[i].live {
				ok = false
				break
			}
			slots[i] = k
		}
		if ok {
			b.salt = salt
			b.slots = slots
			return
		}
		salt = splitmix64(salt)
	}
}

// maybeRebuild triggers a global rebuild when n has doubled or quartered
// since the last one, keeping m = Θ(n) buckets and Σ b_i² = O(n) slots.
func (t *TwoLevel[T]) maybeRebuild() {
	if t.n > 2*t.builtAt+tlMinBuckets || (t.builtAt > 4*tlMinBuckets && 4*t.n < t.builtAt) {
		t.rebuildAll()
	}
}

// rebuildAll redistributes every key over max(tlMinBuckets, n) buckets.
func (t *TwoLevel[T]) rebuildAll() {
	t.rebuilds++
	var entries []tlSlot[T]
	for i := range t.buckets {
		for _, s := range t.buckets[i].slots {
			if s.live {
				entries = append(entries, s)
			}
		}
	}
	m := len(entries)
	if m < tlMinBuckets {
		m = tlMinBuckets
	}
	t.seed = splitmix64(t.seed)
	t.buckets = make([]tlBucket[T], m)
	t.builtAt = len(entries)
	groups := make(map[int][]tlSlot[T])
	for _, e := range entries {
		i := int(hashPos(e.key, t.seed) % uint64(m))
		groups[i] = append(groups[i], e)
	}
	for i, g := range groups {
		b := &t.buckets[i]
		t.rebuildBucket(b, g)
		b.n = len(g)
	}
}
