package numtheory

import "sort"

// DivisorCount returns δ(n), the number of positive divisors of n ≥ 1.
// It runs in O(√n) time. It panics if n < 1.
func DivisorCount(n int64) int64 {
	if n < 1 {
		panic("numtheory: DivisorCount of non-positive number")
	}
	var count int64
	r := Isqrt(n)
	for d := int64(1); d <= r; d++ {
		if n%d == 0 {
			count += 2
		}
	}
	if r*r == n {
		count--
	}
	return count
}

// Divisors returns the positive divisors of n ≥ 1 in increasing order.
// It runs in O(√n) time plus a sort of the δ(n) divisors.
func Divisors(n int64) []int64 {
	if n < 1 {
		panic("numtheory: Divisors of non-positive number")
	}
	var small, large []int64
	r := Isqrt(n)
	for d := int64(1); d <= r; d++ {
		if n%d == 0 {
			small = append(small, d)
			if q := n / d; q != d {
				large = append(large, q)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// DivisorsAtLeast returns |{d : d | n, d ≥ x}| for n ≥ 1, x ≥ 1.
// This is the reverse-lexicographic rank of the factorization ⟨x, n/x⟩ among
// the two-part factorizations of n when x | n (eq. 3.4 of the paper).
func DivisorsAtLeast(n, x int64) int64 {
	if n < 1 || x < 1 {
		panic("numtheory: DivisorsAtLeast domain error")
	}
	var count int64
	r := Isqrt(n)
	for d := int64(1); d <= r; d++ {
		if n%d == 0 {
			if d >= x {
				count++
			}
			if q := n / d; q != d && q >= x {
				count++
			}
		}
	}
	return count
}

// DivisorSummatory returns D(n) = Σ_{k=1..n} δ(k) for n ≥ 0, computed
// exactly in O(√n) time by the Dirichlet hyperbola identity
//
//	D(n) = 2·Σ_{i=1..⌊√n⌋} ⌊n/i⌋ − ⌊√n⌋².
//
// D(n) is also the number of lattice points (x,y) ∈ N×N with xy ≤ n — the
// cardinality of the Fig. 5 region — and equals the optimal worst-case
// spread S_ℋ(n) of the hyperbolic PF.
func DivisorSummatory(n int64) int64 {
	if n < 0 {
		panic("numtheory: DivisorSummatory of negative number")
	}
	if n == 0 {
		return 0
	}
	r := Isqrt(n)
	var sum int64
	for i := int64(1); i <= r; i++ {
		sum += n / i
	}
	return 2*sum - r*r
}

// DivisorSummatoryNaive returns D(n) by direct summation of δ(k); O(n√n).
// Retained as the ablation baseline for BenchmarkDivisorSummatory* and as a
// cross-check in tests.
func DivisorSummatoryNaive(n int64) int64 {
	if n < 0 {
		panic("numtheory: DivisorSummatoryNaive of negative number")
	}
	var sum int64
	for k := int64(1); k <= n; k++ {
		sum += DivisorCount(k)
	}
	return sum
}

// DivisorTable returns the table t with t[k] = δ(k) for 1 ≤ k ≤ n (t[0] is
// unused and zero), computed by a sieve in O(n log n) time. Useful when many
// consecutive δ values are needed, e.g. when tabulating hyperbolic shells.
func DivisorTable(n int64) []int64 {
	if n < 0 {
		panic("numtheory: DivisorTable of negative number")
	}
	t := make([]int64, n+1)
	for d := int64(1); d <= n; d++ {
		for m := d; m <= n; m += d {
			t[m]++
		}
	}
	return t
}

// SummatoryInverse returns the smallest N ≥ 1 with DivisorSummatory(N) ≥ z,
// for z ≥ 1. This locates the hyperbolic shell xy = N containing the
// address z. It runs in O(√N · log N) time via exponential + binary search.
func SummatoryInverse(z int64) int64 {
	if z < 1 {
		panic("numtheory: SummatoryInverse domain error")
	}
	// Exponential search for an upper bound.
	hi := int64(1)
	for DivisorSummatory(hi) < z {
		if hi > (1<<62)/2 {
			hi = 1 << 62
			break
		}
		hi *= 2
	}
	lo := int64(1)
	off := sort.Search(int(hi-lo+1), func(i int) bool {
		return DivisorSummatory(lo+int64(i)) >= z
	})
	return lo + int64(off)
}
