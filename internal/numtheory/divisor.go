package numtheory

import "sort"

// DivisorCount returns δ(n), the number of positive divisors of n ≥ 1.
// It runs in O(√n) time. It panics if n < 1.
func DivisorCount(n int64) int64 {
	if n < 1 {
		panic("numtheory: DivisorCount of non-positive number")
	}
	var count int64
	r := Isqrt(n)
	for d := int64(1); d <= r; d++ {
		if n%d == 0 {
			count += 2
		}
	}
	if r*r == n {
		count--
	}
	return count
}

// Divisors returns the positive divisors of n ≥ 1 in increasing order.
// It runs in O(√n) time plus a sort of the δ(n) divisors.
func Divisors(n int64) []int64 {
	if n < 1 {
		panic("numtheory: Divisors of non-positive number")
	}
	var small, large []int64
	r := Isqrt(n)
	for d := int64(1); d <= r; d++ {
		if n%d == 0 {
			small = append(small, d)
			if q := n / d; q != d {
				large = append(large, q)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// DivisorsAtLeast returns |{d : d | n, d ≥ x}| for n ≥ 1, x ≥ 1.
// This is the reverse-lexicographic rank of the factorization ⟨x, n/x⟩ among
// the two-part factorizations of n when x | n (eq. 3.4 of the paper).
func DivisorsAtLeast(n, x int64) int64 {
	if n < 1 || x < 1 {
		panic("numtheory: DivisorsAtLeast domain error")
	}
	var count int64
	r := Isqrt(n)
	for d := int64(1); d <= r; d++ {
		if n%d == 0 {
			if d >= x {
				count++
			}
			if q := n / d; q != d && q >= x {
				count++
			}
		}
	}
	return count
}

// MaxSummatoryArg is the largest argument for which DivisorSummatory (and
// PartialHyperbolaSum) is guaranteed exact in int64 arithmetic. At
// n = 2^57 the Dirichlet identity's intermediate Σ⌊n/i⌋ ≈ 2.93·10^18, its
// double ≈ 5.86·10^18 and the result D(n) ≈ 5.72·10^18 all sit below
// 2^63 − 1 ≈ 9.22·10^18 with better than 1.5× margin; at n = 2^58 the
// doubled sum ≈ 1.19·10^19 already wraps, so 2^57 is the last safe power
// of two.
const MaxSummatoryArg = int64(1) << 57

// MaxSummatoryValue is DivisorSummatory(MaxSummatoryArg) — the largest
// divisor-summatory value (equivalently, the largest hyperbolic-PF address
// whose shell is locatable) that this package can compute exactly in
// int64. The value is precomputed because the O(√n) evaluation at 2^57
// walks ~3.8·10^8 quotients; TestMaxSummatoryValueExact re-derives it.
const MaxSummatoryValue = int64(5716158968706199114)

// DivisorSummatory returns D(n) = Σ_{k=1..n} δ(k) for n ≥ 0, computed
// exactly in O(√n) time by the Dirichlet hyperbola identity
//
//	D(n) = 2·Σ_{i=1..⌊√n⌋} ⌊n/i⌋ − ⌊√n⌋².
//
// D(n) is also the number of lattice points (x,y) ∈ N×N with xy ≤ n — the
// cardinality of the Fig. 5 region — and equals the optimal worst-case
// spread S_ℋ(n) of the hyperbolic PF.
//
// The identity is exact only for n ≤ MaxSummatoryArg; beyond that the
// intermediate 2·Σ⌊n/i⌋ silently wraps. Callers that cannot bound their
// input should use DivisorSummatoryCheck.
func DivisorSummatory(n int64) int64 {
	if n < 0 {
		panic("numtheory: DivisorSummatory of negative number")
	}
	if n == 0 {
		return 0
	}
	r := Isqrt(n)
	var sum int64
	for i := int64(1); i <= r; i++ {
		sum += n / i
	}
	return 2*sum - r*r
}

// DivisorSummatoryCheck returns D(n) like DivisorSummatory, or ErrOverflow
// when n > MaxSummatoryArg and the Dirichlet identity's intermediates are
// no longer guaranteed to fit in int64. It panics if n < 0.
func DivisorSummatoryCheck(n int64) (int64, error) {
	if n < 0 {
		panic("numtheory: DivisorSummatoryCheck of negative number")
	}
	if n > MaxSummatoryArg {
		return 0, ErrOverflow
	}
	return DivisorSummatory(n), nil
}

// PartialHyperbolaSum returns Σ_{i=1..t} ⌊n/i⌋ — the number of lattice
// points (x, y) ∈ N×N with x ≤ t and xy ≤ n, i.e. the first t rows of the
// Fig. 5 region — in O(√n) time by iterating over the O(√n) distinct
// quotient blocks of ⌊n/i⌋. Arguments t > n are clamped to n, so
// PartialHyperbolaSum(n, n) is the full lattice count Σ_{i≤n} ⌊n/i⌋ =
// DivisorSummatory(n). Exact for n ≤ MaxSummatoryArg (the partial sums are
// bounded by D(n)). It panics if n < 0 or t < 0.
//
// This is the row-prefix function the parallel spread engine inverts to
// cut the region into stripes of equal lattice-point count.
func PartialHyperbolaSum(n, t int64) int64 {
	if n < 0 || t < 0 {
		panic("numtheory: PartialHyperbolaSum domain error")
	}
	if t > n {
		t = n
	}
	var sum int64
	for i := int64(1); i <= t; {
		q := n / i
		j := n / q // last index sharing the quotient q
		if j > t {
			j = t
		}
		sum += q * (j - i + 1)
		i = j + 1
	}
	return sum
}

// DivisorSummatoryNaive returns D(n) by direct summation of δ(k); O(n√n).
// Retained as the ablation baseline for BenchmarkDivisorSummatory* and as a
// cross-check in tests.
func DivisorSummatoryNaive(n int64) int64 {
	if n < 0 {
		panic("numtheory: DivisorSummatoryNaive of negative number")
	}
	var sum int64
	for k := int64(1); k <= n; k++ {
		sum += DivisorCount(k)
	}
	return sum
}

// DivisorTable returns the table t with t[k] = δ(k) for 1 ≤ k ≤ n (t[0] is
// unused and zero), computed by a sieve in O(n log n) time. Useful when many
// consecutive δ values are needed, e.g. when tabulating hyperbolic shells.
func DivisorTable(n int64) []int64 {
	if n < 0 {
		panic("numtheory: DivisorTable of negative number")
	}
	t := make([]int64, n+1)
	for d := int64(1); d <= n; d++ {
		for m := d; m <= n; m += d {
			t[m]++
		}
	}
	return t
}

// SummatoryInverseCheck returns the smallest N ≥ 1 with
// DivisorSummatory(N) ≥ z, locating the hyperbolic shell xy = N that
// contains the address z, or ErrOverflow when z > MaxSummatoryValue and no
// shell is locatable in exact int64 arithmetic. It runs in O(√N · log N)
// time via exponential + binary search, with every probe ≤ MaxSummatoryArg
// so no probe ever wraps. It panics if z < 1.
func SummatoryInverseCheck(z int64) (int64, error) {
	if z < 1 {
		panic("numtheory: SummatoryInverse domain error")
	}
	if z > MaxSummatoryValue {
		// Before this O(1) reject the exponential search probed
		// DivisorSummatory(1<<62), whose wrapped (negative) values sent the
		// binary search to a garbage shell — and each probe past 2^58 cost
		// seconds. Out-of-range addresses must be an error, not wrong
		// coordinates.
		return 0, ErrOverflow
	}
	// Exponential search for an upper bound, capped at the largest shell
	// whose summatory value is exactly computable. Termination: z ≤
	// MaxSummatoryValue = DivisorSummatory(MaxSummatoryArg), so the capped
	// bound always satisfies the predicate.
	hi := int64(1)
	for DivisorSummatory(hi) < z {
		hi *= 2
		if hi > MaxSummatoryArg {
			hi = MaxSummatoryArg
		}
	}
	lo := int64(1)
	off := sort.Search(int(hi-lo+1), func(i int) bool {
		return DivisorSummatory(lo+int64(i)) >= z
	})
	return lo + int64(off), nil
}

// SummatoryInverse is SummatoryInverseCheck for callers that can bound
// their input: it panics if z < 1 or z > MaxSummatoryValue. Use
// SummatoryInverseCheck where z is data-driven (e.g. decoding addresses).
func SummatoryInverse(z int64) int64 {
	n, err := SummatoryInverseCheck(z)
	if err != nil {
		panic("numtheory: SummatoryInverse of address beyond MaxSummatoryValue")
	}
	return n
}
