package numtheory

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDivisorCountSmall(t *testing.T) {
	// OEIS A000005.
	want := []int64{1, 2, 2, 3, 2, 4, 2, 4, 3, 4, 2, 6, 2, 4, 4, 5, 2, 6, 2, 6,
		4, 4, 2, 8, 3, 4, 4, 6, 2, 8, 2, 6, 4, 4, 4, 9}
	for i, w := range want {
		if got := DivisorCount(int64(i + 1)); got != w {
			t.Errorf("δ(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestDivisorCountMatchesFactorization(t *testing.T) {
	for n := int64(1); n <= 3000; n++ {
		_, exps := Factor(n)
		if got, want := DivisorCount(n), DivisorCountFromFactorization(exps); got != want {
			t.Fatalf("δ(%d): trial %d vs factorization %d", n, got, want)
		}
	}
}

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int64
		want []int64
	}{
		{1, []int64{1}},
		{2, []int64{1, 2}},
		{6, []int64{1, 2, 3, 6}},
		{12, []int64{1, 2, 3, 4, 6, 12}},
		{36, []int64{1, 2, 3, 4, 6, 9, 12, 18, 36}},
		{97, []int64{1, 97}},
	}
	for _, c := range cases {
		got := Divisors(c.n)
		if len(got) != len(c.want) {
			t.Errorf("Divisors(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Divisors(%d) = %v, want %v", c.n, got, c.want)
				break
			}
		}
	}
}

func TestDivisorsProperties(t *testing.T) {
	for n := int64(1); n <= 500; n++ {
		divs := Divisors(n)
		if int64(len(divs)) != DivisorCount(n) {
			t.Fatalf("|Divisors(%d)| = %d ≠ δ = %d", n, len(divs), DivisorCount(n))
		}
		for i, d := range divs {
			if n%d != 0 {
				t.Fatalf("Divisors(%d) contains non-divisor %d", n, d)
			}
			if i > 0 && divs[i-1] >= d {
				t.Fatalf("Divisors(%d) not strictly increasing: %v", n, divs)
			}
		}
	}
}

func TestDivisorsAtLeast(t *testing.T) {
	for n := int64(1); n <= 300; n++ {
		divs := Divisors(n)
		for x := int64(1); x <= n+2; x++ {
			var want int64
			for _, d := range divs {
				if d >= x {
					want++
				}
			}
			if got := DivisorsAtLeast(n, x); got != want {
				t.Fatalf("DivisorsAtLeast(%d, %d) = %d, want %d", n, x, got, want)
			}
		}
	}
}

func TestDivisorSummatoryAgainstNaive(t *testing.T) {
	for n := int64(0); n <= 2000; n++ {
		if got, want := DivisorSummatory(n), DivisorSummatoryNaive(n); got != want {
			t.Fatalf("D(%d): hyperbola %d vs naive %d", n, got, want)
		}
	}
}

func TestDivisorSummatoryKnownValues(t *testing.T) {
	// D(n) = Σ_{k≤n} δ(k); D(10) = 27 (OEIS A006218), D(100) = 482.
	cases := []struct{ n, want int64 }{
		{1, 1}, {2, 3}, {3, 5}, {6, 14}, {10, 27}, {100, 482}, {1000, 7069},
	}
	for _, c := range cases {
		if got := DivisorSummatory(c.n); got != c.want {
			t.Errorf("D(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDivisorSummatoryIsLatticeCount(t *testing.T) {
	// D(n) must equal the number of lattice points under xy = n.
	for _, n := range []int64{1, 2, 16, 137, 1000} {
		var count int64
		for x := int64(1); x <= n; x++ {
			count += n / x
		}
		if got := DivisorSummatory(n); got != count {
			t.Errorf("D(%d) = %d, lattice count %d", n, got, count)
		}
	}
}

func TestDivisorTable(t *testing.T) {
	tab := DivisorTable(500)
	for k := int64(1); k <= 500; k++ {
		if tab[k] != DivisorCount(k) {
			t.Fatalf("DivisorTable[%d] = %d, want %d", k, tab[k], DivisorCount(k))
		}
	}
}

func TestSummatoryInverse(t *testing.T) {
	for z := int64(1); z <= 3000; z++ {
		n := SummatoryInverse(z)
		if DivisorSummatory(n) < z {
			t.Fatalf("SummatoryInverse(%d) = %d: D(n) = %d < z", z, n, DivisorSummatory(n))
		}
		if n > 1 && DivisorSummatory(n-1) >= z {
			t.Fatalf("SummatoryInverse(%d) = %d not minimal", z, n)
		}
	}
}

// TestDivisorSummatoryCheck: the checked variant agrees below the cap and
// refuses above it instead of wrapping.
func TestDivisorSummatoryCheck(t *testing.T) {
	for _, n := range []int64{0, 1, 10, 1000, 1 << 20} {
		got, err := DivisorSummatoryCheck(n)
		if err != nil {
			t.Fatalf("DivisorSummatoryCheck(%d): %v", n, err)
		}
		if want := DivisorSummatory(n); got != want {
			t.Fatalf("DivisorSummatoryCheck(%d) = %d, want %d", n, got, want)
		}
	}
	for _, n := range []int64{MaxSummatoryArg + 1, 1 << 62, math.MaxInt64} {
		if _, err := DivisorSummatoryCheck(n); !errors.Is(err, ErrOverflow) {
			t.Errorf("DivisorSummatoryCheck(%d) = %v, want ErrOverflow", n, err)
		}
	}
}

// TestMaxSummatoryValueExact re-derives the precomputed constant: the
// O(√(2^57)) evaluation walks ~3.8·10^8 quotients, so it is skipped under
// -short.
func TestMaxSummatoryValueExact(t *testing.T) {
	if testing.Short() {
		t.Skip("recomputing D(2^57) takes ~1s")
	}
	if got := DivisorSummatory(MaxSummatoryArg); got != MaxSummatoryValue {
		t.Fatalf("D(MaxSummatoryArg) = %d, constant says %d", got, MaxSummatoryValue)
	}
}

// TestPartialHyperbolaSum checks the quotient-block prefix sum against the
// direct row sum, including the t > n clamp and the full-sum identity
// P(n, n) = D(n).
func TestPartialHyperbolaSum(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 16, 137, 300} {
		var naive int64
		for x := int64(1); x <= n; x++ {
			naive += n / x
			if got := PartialHyperbolaSum(n, x); got != naive {
				t.Fatalf("P(%d, %d) = %d, want %d", n, x, got, naive)
			}
		}
		if got := PartialHyperbolaSum(n, n+7); got != naive {
			t.Fatalf("P(%d, n+7) = %d, want clamp to D(n) = %d", n, got, naive)
		}
	}
	for _, n := range []int64{1, 1000, 1 << 16} {
		if got, want := PartialHyperbolaSum(n, n), DivisorSummatory(n); got != want {
			t.Fatalf("P(%d, %d) = %d ≠ D(n) = %d", n, n, got, want)
		}
	}
}

// TestSummatoryInverseCheckOverflow is the edge-of-int64 regression for the
// exponential-search bug: addresses beyond MaxSummatoryValue must be
// rejected in O(1). Before the fix, SummatoryInverse(MaxInt64) probed
// DivisorSummatory at 2^58…2^62 — whose intermediates wrap negative — and
// returned a garbage shell after minutes of divisions.
func TestSummatoryInverseCheckOverflow(t *testing.T) {
	start := time.Now()
	for _, z := range []int64{MaxSummatoryValue + 1, 6 << 60, math.MaxInt64} {
		if _, err := SummatoryInverseCheck(z); !errors.Is(err, ErrOverflow) {
			t.Errorf("SummatoryInverseCheck(%d) = %v, want ErrOverflow", z, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("out-of-range rejection took %v, want O(1)", elapsed)
	}
	// In-range addresses still resolve, checked and unchecked alike.
	for _, z := range []int64{1, 2, 27, 482, 1_000_000} {
		n, err := SummatoryInverseCheck(z)
		if err != nil {
			t.Fatalf("SummatoryInverseCheck(%d): %v", z, err)
		}
		if want := SummatoryInverse(z); n != want {
			t.Fatalf("SummatoryInverseCheck(%d) = %d, SummatoryInverse = %d", z, n, want)
		}
	}
	// The unchecked variant panics instead of returning garbage.
	defer func() {
		if recover() == nil {
			t.Error("SummatoryInverse beyond MaxSummatoryValue should panic")
		}
	}()
	SummatoryInverse(math.MaxInt64)
}

func TestSummatoryInverseProperty(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		z := v%1_000_000 + 1
		n := SummatoryInverse(z)
		return DivisorSummatory(n) >= z && (n == 1 || DivisorSummatory(n-1) < z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
