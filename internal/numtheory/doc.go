// Package numtheory provides the elementary number-theoretic substrate used
// throughout pairfn: exact integer square roots and logarithms,
// overflow-checked arithmetic on int64, divisor counting and enumeration,
// the divisor summatory function computed by the Dirichlet hyperbola method
// (the D(n) of §3.2.3's spread bound), and prime sieves (simple and
// segmented) with factorization — the arithmetic behind the hyperbolic PF
// ℋ (eq. 3.4) and the WBC prime-counting workload (§4).
//
// # Overflow
//
// Everything operates on exact integers (int64 fast paths, math/big where
// noted) because pairing functions are bijections: a single off-by-one or a
// silent overflow destroys bijectivity, so no floating point is used in any
// load-bearing computation. The checked-arithmetic helpers report overflow
// explicitly instead of wrapping, and the isqrt/ilog functions are exact
// for the full int64 range.
//
// # Concurrency
//
// Every function in the package is pure — no package-level mutable state,
// no caches — and therefore safe for concurrent use without
// synchronization. Slices returned by SievePrimes, Factor and the divisor
// enumerators are fresh allocations owned by the caller.
package numtheory
