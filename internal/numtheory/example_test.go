package numtheory_test

import (
	"fmt"

	"pairfn/internal/numtheory"
)

func ExampleDivisorSummatory() {
	// D(16) = Σ_{k≤16} δ(k): the size of Fig. 5's region and the optimal
	// worst-case spread S_ℋ(16).
	fmt.Println(numtheory.DivisorSummatory(16))
	// Output: 50
}

func ExampleDivisorsAtLeast() {
	// The reverse-lexicographic rank of ⟨2, 2⟩ among the two-part
	// factorizations of 4 (eq. 3.4's second term).
	fmt.Println(numtheory.DivisorsAtLeast(4, 2))
	// Output: 2
}
