package numtheory

import (
	"errors"
	"math/bits"
)

// ErrOverflow reports that an exact int64 computation would exceed the range
// of int64. Callers that need totality should switch to the math/big paths.
var ErrOverflow = errors.New("numtheory: int64 overflow")

// Isqrt returns ⌊√n⌋ for n ≥ 0. It panics if n < 0.
func Isqrt(n int64) int64 {
	if n < 0 {
		panic("numtheory: Isqrt of negative number")
	}
	if n < 2 {
		return n
	}
	// Initial estimate from the bit length, then Newton iterations.
	// For n < 2^63 this converges in a handful of steps.
	x := int64(1) << ((bits.Len64(uint64(n)) + 1) / 2)
	for {
		y := (x + n/x) / 2
		if y >= x {
			break
		}
		x = y
	}
	// Correct the rare one-off from the estimate. Comparisons use division
	// (x ≤ n/x ⟺ x² ≤ n for positive ints) so no intermediate overflows.
	for x > 0 && x > n/x {
		x--
	}
	for x+1 <= n/(x+1) {
		x++
	}
	return x
}

// Log2Floor returns ⌊log₂ n⌋ for n ≥ 1. It panics if n < 1.
func Log2Floor(n int64) int {
	if n < 1 {
		panic("numtheory: Log2Floor of non-positive number")
	}
	return bits.Len64(uint64(n)) - 1
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1. It panics if n < 1.
func Log2Ceil(n int64) int {
	if n < 1 {
		panic("numtheory: Log2Ceil of non-positive number")
	}
	if n&(n-1) == 0 {
		return bits.Len64(uint64(n)) - 1
	}
	return bits.Len64(uint64(n))
}

// Pow2 returns 2^k as an int64, or ErrOverflow if k ≥ 63 or k < 0.
func Pow2(k int) (int64, error) {
	if k < 0 || k >= 63 {
		return 0, ErrOverflow
	}
	return int64(1) << uint(k), nil
}

// MulCheck returns a*b, or ErrOverflow if the product does not fit in int64.
// Both operands must be non-negative.
func MulCheck(a, b int64) (int64, error) {
	if a < 0 || b < 0 {
		panic("numtheory: MulCheck of negative operand")
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > uint64(1<<63-1) {
		return 0, ErrOverflow
	}
	return int64(lo), nil
}

// AddCheck returns a+b, or ErrOverflow if the sum does not fit in int64.
// Both operands must be non-negative.
func AddCheck(a, b int64) (int64, error) {
	if a < 0 || b < 0 {
		panic("numtheory: AddCheck of negative operand")
	}
	s := a + b
	if s < 0 {
		return 0, ErrOverflow
	}
	return s, nil
}

// ShlCheck returns a << k, or ErrOverflow if the result does not fit in
// int64. a must be non-negative.
func ShlCheck(a int64, k int) (int64, error) {
	if a < 0 {
		panic("numtheory: ShlCheck of negative operand")
	}
	if a == 0 {
		return 0, nil
	}
	if k < 0 || k >= 63 || bits.Len64(uint64(a))+k > 63 {
		return 0, ErrOverflow
	}
	return a << uint(k), nil
}

// CeilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func CeilDiv(a, b int64) int64 {
	if a < 0 || b <= 0 {
		panic("numtheory: CeilDiv domain error")
	}
	return (a + b - 1) / b
}

// TrailingZeros64 returns the 2-adic valuation v₂(n) of n > 0, i.e. the
// number of trailing zero bits. It panics if n ≤ 0.
func TrailingZeros64(n int64) int {
	if n <= 0 {
		panic("numtheory: TrailingZeros64 of non-positive number")
	}
	return bits.TrailingZeros64(uint64(n))
}

// Triangular returns the k-th triangular number k(k+1)/2, or ErrOverflow.
func Triangular(k int64) (int64, error) {
	if k < 0 {
		panic("numtheory: Triangular of negative number")
	}
	// Exactly one of k, k+1 is even; divide it first to avoid overflow at
	// the boundary.
	a, b := k, k+1
	if a%2 == 0 {
		a /= 2
	} else {
		b /= 2
	}
	return MulCheck(a, b)
}

// TriangularRoot returns the largest k with k(k+1)/2 ≤ n, for n ≥ 0.
func TriangularRoot(n int64) int64 {
	if n < 0 {
		panic("numtheory: TriangularRoot of negative number")
	}
	// k ≈ (√(8n+1) − 1)/2. Compute with Isqrt and correct locally.
	// 8n+1 can overflow for n near 2^63, so work at n/2 scale:
	// k ≤ √(2n) ≤ Isqrt(n)·2 guard. Use the direct form when safe.
	var k int64
	if n <= (1<<62-1)/8 {
		k = (Isqrt(8*n+1) - 1) / 2
	} else {
		k = 2 * Isqrt(n/2)
	}
	for {
		t, err := Triangular(k + 1)
		if err != nil || t > n {
			break
		}
		k++
	}
	for k > 0 {
		t, err := Triangular(k)
		if err == nil && t <= n {
			break
		}
		k--
	}
	return k
}
