package numtheory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIsqrtSmall(t *testing.T) {
	for n := int64(0); n <= 10000; n++ {
		r := Isqrt(n)
		if r*r > n || (r+1)*(r+1) <= n {
			t.Fatalf("Isqrt(%d) = %d", n, r)
		}
	}
}

func TestIsqrtLarge(t *testing.T) {
	cases := []int64{
		1<<62 - 1, 1 << 62, 1<<63 - 1,
		(1 << 31) * (1 << 31), (1<<31+1)*(1<<31+1) - 1,
		999999999999999999,
	}
	for _, n := range cases {
		r := Isqrt(n)
		if r*r > n {
			t.Errorf("Isqrt(%d) = %d: square exceeds n", n, r)
		}
		// (r+1)² may overflow; check via division.
		if r+1 <= math.MaxInt64/(r+1) && (r+1)*(r+1) <= n {
			t.Errorf("Isqrt(%d) = %d: not maximal", n, r)
		}
	}
}

func TestIsqrtProperty(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		r := Isqrt(v)
		return r >= 0 && r*r <= v && (r >= 3037000499 || (r+1)*(r+1) > v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsqrtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Isqrt(-1) did not panic")
		}
	}()
	Isqrt(-1)
}

func TestLog2(t *testing.T) {
	cases := []struct {
		n           int64
		floor, ceil int
	}{
		{1, 0, 0}, {2, 1, 1}, {3, 1, 2}, {4, 2, 2}, {5, 2, 3},
		{7, 2, 3}, {8, 3, 3}, {9, 3, 4}, {1023, 9, 10}, {1024, 10, 10},
		{1025, 10, 11}, {1 << 62, 62, 62}, {1<<62 + 1, 62, 63},
	}
	for _, c := range cases {
		if got := Log2Floor(c.n); got != c.floor {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.n, got, c.floor)
		}
		if got := Log2Ceil(c.n); got != c.ceil {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.ceil)
		}
	}
}

func TestPow2(t *testing.T) {
	for k := 0; k < 63; k++ {
		v, err := Pow2(k)
		if err != nil || v != int64(1)<<uint(k) {
			t.Errorf("Pow2(%d) = %d, %v", k, v, err)
		}
	}
	if _, err := Pow2(63); err == nil {
		t.Error("Pow2(63) should overflow")
	}
	if _, err := Pow2(-1); err == nil {
		t.Error("Pow2(-1) should fail")
	}
}

func TestMulCheck(t *testing.T) {
	if v, err := MulCheck(3037000499, 3037000499); err != nil || v != 3037000499*3037000499 {
		t.Errorf("MulCheck near boundary: %d, %v", v, err)
	}
	if _, err := MulCheck(3037000500, 3037000500); err == nil {
		t.Error("MulCheck(3037000500²) should overflow")
	}
	if _, err := MulCheck(1<<32, 1<<31); err == nil {
		t.Error("MulCheck(2^32·2^31) should overflow")
	}
	if v, err := MulCheck(0, 1<<62); err != nil || v != 0 {
		t.Errorf("MulCheck(0, big) = %d, %v", v, err)
	}
}

func TestAddCheck(t *testing.T) {
	if v, err := AddCheck(1<<62, 1<<62-1); err != nil || v != 1<<63-1 {
		t.Errorf("AddCheck boundary: %d, %v", v, err)
	}
	if _, err := AddCheck(1<<62, 1<<62); err == nil {
		t.Error("AddCheck(2^62+2^62) should overflow")
	}
}

func TestShlCheck(t *testing.T) {
	if v, err := ShlCheck(1, 62); err != nil || v != 1<<62 {
		t.Errorf("ShlCheck(1, 62) = %d, %v", v, err)
	}
	if _, err := ShlCheck(1, 63); err == nil {
		t.Error("ShlCheck(1, 63) should overflow")
	}
	if v, err := ShlCheck(0, 1000); err != nil || v != 0 {
		t.Errorf("ShlCheck(0, 1000) = %d, %v", v, err)
	}
	if _, err := ShlCheck(3, 62); err == nil {
		t.Error("ShlCheck(3, 62) should overflow")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 1, 0}, {1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2},
		{10, 3, 4}, {9, 3, 3}, {100, 7, 15},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTrailingZeros64(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{{1, 0}, {2, 1}, {3, 0}, {8, 3}, {12, 2}, {1 << 62, 62}, {3 << 20, 20}}
	for _, c := range cases {
		if got := TrailingZeros64(c.n); got != c.want {
			t.Errorf("TrailingZeros64(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTriangular(t *testing.T) {
	want := int64(0)
	for k := int64(0); k <= 1000; k++ {
		got, err := Triangular(k)
		if err != nil || got != want {
			t.Fatalf("Triangular(%d) = %d, %v; want %d", k, got, err, want)
		}
		want += k + 1
	}
	if _, err := Triangular(1 << 33); err == nil {
		t.Error("Triangular(2^33) should overflow")
	}
	// Largest k whose triangular number fits int64: T(k) ≤ 2^63−1 ⇒
	// k = 2^32−1 (T(2^32) = 2^63 + 2^31 overflows).
	if v, err := Triangular(1<<32 - 1); err != nil || v != (1<<31)*(1<<32-1) {
		t.Errorf("Triangular(2^32−1) = %d, %v", v, err)
	}
	if _, err := Triangular(1 << 32); err == nil {
		t.Error("Triangular(2^32) should overflow")
	}
}

func TestTriangularRoot(t *testing.T) {
	for n := int64(0); n <= 5000; n++ {
		k := TriangularRoot(n)
		tk, _ := Triangular(k)
		tk1, err := Triangular(k + 1)
		if tk > n || (err == nil && tk1 <= n) {
			t.Fatalf("TriangularRoot(%d) = %d (T(k)=%d, T(k+1)=%d)", n, k, tk, tk1)
		}
	}
}

func TestTriangularRootRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		k := v % 3_000_000_000
		tk, err := Triangular(k)
		if err != nil {
			return true
		}
		return TriangularRoot(tk) == k && (k == 0 || TriangularRoot(tk-1) == k-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
