package numtheory

// SievePrimes returns all primes ≤ n in increasing order using the sieve of
// Eratosthenes. For n < 2 it returns an empty slice.
func SievePrimes(n int64) []int64 {
	if n < 2 {
		return nil
	}
	composite := make([]bool, n+1)
	var primes []int64
	for p := int64(2); p <= n; p++ {
		if composite[p] {
			continue
		}
		primes = append(primes, p)
		for m := p * p; m <= n && m > 0; m += p {
			composite[m] = true
		}
	}
	return primes
}

// CountPrimes returns π(hi) − π(lo−1): the number of primes p with
// lo ≤ p ≤ hi. It is the verifiable unit of work handed to WBC volunteers —
// cheap for the server to audit, expensive enough to be a plausible task.
// It runs a segmented trial division in O((hi−lo)·√hi / log hi) time.
func CountPrimes(lo, hi int64) int64 {
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		return 0
	}
	var count int64
	for n := lo; n <= hi; n++ {
		if IsPrime(n) {
			count++
		}
	}
	return count
}

// IsPrime reports whether n is prime, by trial division up to √n.
func IsPrime(n int64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	if n%3 == 0 {
		return n == 3
	}
	for d := int64(5); d*d <= n; d += 6 {
		if n%d == 0 || n%(d+2) == 0 {
			return false
		}
	}
	return true
}

// Factor returns the prime factorization of n ≥ 1 as parallel slices of
// primes and exponents, in increasing prime order. Factor(1) returns empty
// slices. It runs in O(√n) time.
func Factor(n int64) (primes []int64, exps []int) {
	if n < 1 {
		panic("numtheory: Factor of non-positive number")
	}
	for p := int64(2); p*p <= n; p++ {
		if n%p != 0 {
			continue
		}
		e := 0
		for n%p == 0 {
			n /= p
			e++
		}
		primes = append(primes, p)
		exps = append(exps, e)
	}
	if n > 1 {
		primes = append(primes, n)
		exps = append(exps, 1)
	}
	return primes, exps
}

// DivisorCountFromFactorization returns δ(n) = Π(eᵢ+1) given n's prime
// factorization exponents.
func DivisorCountFromFactorization(exps []int) int64 {
	d := int64(1)
	for _, e := range exps {
		d *= int64(e + 1)
	}
	return d
}
