package numtheory

import "testing"

func TestSievePrimes(t *testing.T) {
	got := SievePrimes(50)
	want := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	if len(got) != len(want) {
		t.Fatalf("SievePrimes(50) = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SievePrimes(50)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if SievePrimes(1) != nil {
		t.Error("SievePrimes(1) should be empty")
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const n = 5000
	primes := SievePrimes(n)
	inSieve := make(map[int64]bool, len(primes))
	for _, p := range primes {
		inSieve[p] = true
	}
	for k := int64(0); k <= n; k++ {
		if IsPrime(k) != inSieve[k] {
			t.Fatalf("IsPrime(%d) = %v, sieve says %v", k, IsPrime(k), inSieve[k])
		}
	}
}

func TestCountPrimes(t *testing.T) {
	cases := []struct{ lo, hi, want int64 }{
		{1, 10, 4},   // 2 3 5 7
		{2, 2, 1},    // 2
		{4, 4, 0},    //
		{10, 1, 0},   // empty interval
		{1, 100, 25}, // π(100)
		{90, 100, 1}, // 97
		{1, 1000, 168} /* π(1000) */}
	for _, c := range cases {
		if got := CountPrimes(c.lo, c.hi); got != c.want {
			t.Errorf("CountPrimes(%d, %d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestFactor(t *testing.T) {
	for n := int64(1); n <= 2000; n++ {
		ps, es := Factor(n)
		if len(ps) != len(es) {
			t.Fatalf("Factor(%d): mismatched slices", n)
		}
		prod := int64(1)
		for i, p := range ps {
			if !IsPrime(p) {
				t.Fatalf("Factor(%d): %d is not prime", n, p)
			}
			if i > 0 && ps[i-1] >= p {
				t.Fatalf("Factor(%d): primes not increasing", n)
			}
			if es[i] < 1 {
				t.Fatalf("Factor(%d): exponent %d", n, es[i])
			}
			for e := 0; e < es[i]; e++ {
				prod *= p
			}
		}
		if prod != n {
			t.Fatalf("Factor(%d): product = %d", n, prod)
		}
	}
}
