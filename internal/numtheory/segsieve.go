package numtheory

// CountPrimesSegmented returns the number of primes in [lo, hi] using a
// segmented sieve of Eratosthenes: base primes up to √hi, then one bitmap
// over the interval. For wide intervals it is asymptotically faster than
// per-number trial division (O((hi−lo)·log log hi + √hi) vs
// O((hi−lo)·√hi/log hi)); BenchmarkCountPrimes* quantifies the gap.
func CountPrimesSegmented(lo, hi int64) int64 {
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		return 0
	}
	base := SievePrimes(Isqrt(hi))
	composite := make([]bool, hi-lo+1)
	for _, p := range base {
		// First multiple of p in [lo, hi], at least p².
		start := p * p
		if start < lo {
			start = ((lo + p - 1) / p) * p
		}
		for m := start; m <= hi; m += p {
			composite[m-lo] = true
		}
	}
	var count int64
	for i := range composite {
		if !composite[i] {
			count++
		}
	}
	return count
}
