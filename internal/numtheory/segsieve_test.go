package numtheory

import (
	"testing"
	"testing/quick"
)

func TestCountPrimesSegmentedMatchesTrialDivision(t *testing.T) {
	cases := [][2]int64{
		{1, 10}, {2, 2}, {4, 4}, {10, 1}, {1, 100}, {90, 100},
		{1, 1000}, {999, 1017}, {100000, 100100}, {1 << 20, 1<<20 + 500},
	}
	for _, c := range cases {
		a := CountPrimes(c[0], c[1])
		b := CountPrimesSegmented(c[0], c[1])
		if a != b {
			t.Errorf("[%d, %d]: trial %d vs segmented %d", c[0], c[1], a, b)
		}
	}
}

func TestCountPrimesSegmentedProperty(t *testing.T) {
	f := func(a, w uint16) bool {
		lo := int64(a)
		hi := lo + int64(w%500)
		return CountPrimesSegmented(lo, hi) == CountPrimes(lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCountPrimesSegmentedKnown(t *testing.T) {
	// π(10^6) = 78498.
	if got := CountPrimesSegmented(1, 1_000_000); got != 78498 {
		t.Errorf("π(10^6) = %d, want 78498", got)
	}
	// Primes in (10^6, 10^6+1000]: 75 − ... known value 39? Compute by
	// cross-check instead of a literal to avoid transcription slips.
	if got, want := CountPrimesSegmented(1_000_001, 1_001_000), CountPrimes(1_000_001, 1_001_000); got != want {
		t.Errorf("segmented %d vs trial %d", got, want)
	}
}
