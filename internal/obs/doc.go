// Package obs is the dependency-free observability substrate of pairfn: a
// metrics registry of atomic counters, gauges and fixed-bucket latency
// histograms, a Prometheus text-format exposition writer, and HTTP server
// middleware that records per-endpoint request counts, status classes, an
// in-flight gauge and latency histograms.
//
// The package exists for the §4 Web-Based Computing deployment
// (internal/wbc, cmd/wbcserver): Rosenberg's accountability argument is an
// auditing/attribution story, and an auditable service must be observable —
// encode/decode hot paths, task issuance and banning are all instrumented
// through this registry so that the stride/crossover trade-offs of §4.2
// remain measurable in production, not only in benchmarks.
//
// Design constraints, in order:
//
//   - stdlib only — the repo has no external dependencies and this package
//     keeps it that way (no Prometheus client library; the text exposition
//     format is implemented directly);
//   - hot-path cost — recording a counter is one atomic add (a few ns), a
//     histogram observation is a binary search over ≤ 16 bounds plus two
//     atomic adds and one CAS loop for the float sum, so instrumentation
//     can sit on apf.Encode/Decode without distorting what it measures;
//   - nil safety — every metric method is a no-op on a nil receiver and
//     every Registry constructor method returns nil from a nil registry, so
//     instrumented code needs no "is observability on?" branches.
//
// Concurrency: all metric mutators (Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe, Flag.Set) are lock-free atomics, safe for concurrent
// use. Registry lookups (Counter/Gauge/Histogram) take a mutex and are
// intended to run once at wiring time, with the returned pointers kept;
// WritePrometheus takes the same mutex and sees a consistent family set but
// reads live values, so a scrape concurrent with traffic may observe a
// histogram whose sum is fractionally ahead of its buckets — standard for
// lock-free instrumentation and harmless to rate() arithmetic.
//
// Overflow: counters and gauges are int64; at one increment per nanosecond
// a counter wraps after ~292 years, which is accepted. Histogram bucket
// counts are int64 with the same property; the sum is a float64 and loses
// integer precision beyond 2^53 observations-worth of magnitude.
package obs
