package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefDurationBuckets are the default latency bucket upper bounds, in
// seconds: 100µs … 5s in a 1-2.5-5 progression. They cover everything from
// an in-memory coordinator call served from the same host to a slow scrape
// over a congested link; observations above 5s land in the implicit +Inf
// bucket.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
}

// A Histogram counts observations into fixed buckets — Prometheus
// classic-histogram semantics: bucket i holds observations v with
// v ≤ bounds[i] (cumulated at exposition time), plus a +Inf bucket, a
// total count and a float64 sum. Observe is lock-free and safe for
// concurrent use; all methods are no-ops (or zero) on a nil receiver.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, updated by CAS
}

// newHistogram builds a histogram over bounds (copied; must be strictly
// increasing — enforced by sorting and deduplicating, so a sloppy caller
// degrades gracefully rather than corrupting exposition).
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	bs = append(bs, bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			continue
		}
		if i > 0 && len(uniq) > 0 && b == uniq[len(uniq)-1] {
			continue
		}
		uniq = append(uniq, b)
	}
	return &Histogram{bounds: uniq, buckets: make([]atomic.Int64, len(uniq)+1)}
}

// Observe records v. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound ≥ v is the owning bucket (le is inclusive); values above
	// every bound land in the trailing +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot returns the bucket upper bounds and the cumulative count at or
// below each bound; the final element of counts is the total (the +Inf
// bucket). Both slices are fresh copies.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append(bounds, h.bounds...)
	counts = make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		counts[i] = cum
	}
	return bounds, counts
}
