package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// MiddlewareConfig parameterizes Middleware.
type MiddlewareConfig struct {
	// Registry receives the metrics; nil disables metric recording (the
	// middleware still logs).
	Registry *Registry
	// Logger, when non-nil, emits one structured line per request
	// (method, path, status, bytes, duration).
	Logger *slog.Logger
	// PathLabel maps a request to the value of the path label, bounding
	// label cardinality (raw URL paths from the open internet would mint
	// one time series per scanned path). Nil uses r.URL.Path verbatim —
	// only safe behind a fixed route set.
	PathLabel func(*http.Request) string
}

// Middleware wraps next, recording per-request metrics into cfg.Registry:
//
//	http_requests_total{path,code}           counter (code is the status
//	                                         class: "2xx" … "5xx")
//	http_in_flight_requests                  gauge, +1 for each request
//	                                         being served right now
//	http_request_duration_seconds{path}      histogram of wall time
//	http_response_bytes_total{path}          counter of body bytes written
//
// and, when cfg.Logger is set, logging one line per completed request.
func Middleware(cfg MiddlewareConfig, next http.Handler) http.Handler {
	reg := cfg.Registry
	reg.Help("http_requests_total", "HTTP requests served, by path and status class.")
	reg.Help("http_in_flight_requests", "HTTP requests currently being served.")
	reg.Help("http_request_duration_seconds", "HTTP request latency, by path.")
	reg.Help("http_response_bytes_total", "HTTP response body bytes written, by path.")
	inFlight := reg.Gauge("http_in_flight_requests")
	pathLabel := cfg.PathLabel
	if pathLabel == nil {
		pathLabel = func(r *http.Request) string { return r.URL.Path }
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		inFlight.Dec()
		elapsed := time.Since(start)
		path := pathLabel(r)
		status := sw.Status()
		reg.Counter("http_requests_total", L("path", path), L("code", statusClass(status))).Inc()
		reg.Counter("http_response_bytes_total", L("path", path)).Add(sw.bytes)
		reg.Histogram("http_request_duration_seconds", DefDurationBuckets, L("path", path)).Observe(elapsed.Seconds())
		if cfg.Logger != nil {
			cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// statusClass maps an HTTP status to its Prometheus-conventional class
// label.
func statusClass(status int) string {
	switch {
	case status >= 100 && status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusWriter records the status code and body size of a response. It
// forwards Flush so streaming handlers keep working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// Status returns the written status, defaulting to 200 when the handler
// never called WriteHeader (net/http's implicit behaviour).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
