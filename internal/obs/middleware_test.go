package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestMiddlewareStatusClasses(t *testing.T) {
	r := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("fine"))
	})
	mux.HandleFunc("/teapot", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "short and stout", http.StatusTeapot)
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(Middleware(MiddlewareConfig{Registry: r}, mux))
	defer srv.Close()

	for path, n := range map[string]int{"/ok": 3, "/teapot": 2, "/boom": 1, "/nope": 1} {
		for i := 0; i < n; i++ {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	checks := map[string]int64{
		`http_requests_total{code="2xx",path="/ok"}`:     3,
		`http_requests_total{code="4xx",path="/teapot"}`: 2,
		`http_requests_total{code="5xx",path="/boom"}`:   1,
		`http_requests_total{code="4xx",path="/nope"}`:   1, // mux 404
	}
	out := expo(t, r)
	for line, want := range checks {
		if !strings.Contains(out, line+" "+strconv.FormatInt(want, 10)) {
			t.Errorf("missing %q = %d in:\n%s", line, want, out)
		}
	}
	if !strings.Contains(out, `http_response_bytes_total{path="/ok"} 12`) { // 3 × "fine"
		t.Errorf("response bytes not recorded:\n%s", out)
	}
}

// TestMiddlewareInFlight: the in-flight gauge must be 1 while a request is
// being served and return to 0 afterwards.
func TestMiddlewareInFlight(t *testing.T) {
	r := NewRegistry()
	entered := make(chan struct{})
	release := make(chan struct{})
	h := Middleware(MiddlewareConfig{Registry: r}, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	if got := r.Gauge("http_in_flight_requests").Value(); got != 1 {
		t.Errorf("in-flight during request = %d, want 1", got)
	}
	close(release)
	<-done
	if got := r.Gauge("http_in_flight_requests").Value(); got != 0 {
		t.Errorf("in-flight after request = %d, want 0", got)
	}
}

// TestMiddlewareHistogram: every request lands in exactly one histogram
// bucket and the +Inf bucket equals the request count.
func TestMiddlewareHistogram(t *testing.T) {
	r := NewRegistry()
	h := Middleware(MiddlewareConfig{Registry: r}, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	const n = 5
	for i := 0; i < n; i++ {
		resp, err := http.Get(srv.URL + "/fast")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	hist := r.Histogram("http_request_duration_seconds", DefDurationBuckets, L("path", "/fast"))
	if hist.Count() != n {
		t.Fatalf("histogram count = %d, want %d", hist.Count(), n)
	}
	_, counts := hist.Snapshot()
	if got := counts[len(counts)-1]; got != n {
		t.Errorf("+Inf cumulative bucket = %d, want %d", got, n)
	}
	// Cumulative counts must be non-decreasing.
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Errorf("cumulative counts decrease: %v", counts)
			break
		}
	}
	if hist.Sum() <= 0 {
		t.Errorf("histogram sum = %v, want > 0", hist.Sum())
	}
}

func TestMiddlewarePathLabelBoundsCardinality(t *testing.T) {
	r := NewRegistry()
	h := Middleware(MiddlewareConfig{
		Registry:  r,
		PathLabel: func(*http.Request) string { return "other" },
	}, http.NotFoundHandler())
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, p := range []string{"/a", "/b", "/c"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	out := expo(t, r)
	if !strings.Contains(out, `http_requests_total{code="4xx",path="other"} 3`) {
		t.Errorf("normalized path label missing:\n%s", out)
	}
	if strings.Contains(out, `path="/a"`) {
		t.Errorf("raw path leaked into labels:\n%s", out)
	}
}

func TestMiddlewareLogsRequests(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	h := Middleware(MiddlewareConfig{Logger: logger}, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
	line := buf.String()
	for _, want := range []string{"msg=request", "method=POST", "path=/submit", "status=403"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %q", want, line)
		}
	}
}
