package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one key="value" dimension of a metric. Within a family,
// labels distinguish instances (e.g. http_requests_total{code="2xx"} vs
// {code="5xx"}).
type Label struct{ Key, Value string }

// L is shorthand for Label{key, value}.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// A Counter is a monotonically non-decreasing int64 metric. All methods
// are safe for concurrent use and are no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n if n > 0 (counters are monotone; negative deltas are
// ignored).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an int64 metric that may go up and down. All methods are safe
// for concurrent use and are no-ops on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Flag is an atomic boolean, used for readiness ("is this server
// accepting work?"). A nil Flag reads as true, so handlers that take an
// optional Flag need no branches.
type Flag struct{ off atomic.Bool }

// NewFlag returns a Flag initialized to v.
func NewFlag(v bool) *Flag {
	f := &Flag{}
	f.Set(v)
	return f
}

// Set stores v.
func (f *Flag) Set(v bool) {
	if f != nil {
		f.off.Store(!v)
	}
}

// Get reports the current value; a nil Flag is true.
func (f *Flag) Get() bool { return f == nil || !f.off.Load() }

// metricKind discriminates exposition families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// instance is one labeled member of a family; exactly one of c/g/h is set,
// according to the family kind.
type instance struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is every instance sharing a metric name, plus its type and HELP.
type family struct {
	name string
	kind metricKind
	help string
	inst map[string]*instance // keyed by canonical label rendering
	keys []string             // sorted for deterministic exposition
}

// A Registry is a named collection of metric families. The zero value is
// not usable; call NewRegistry. All methods are safe for concurrent use,
// and all methods on a nil *Registry return nil metrics (whose methods are
// no-ops), so instrumentation can be wired unconditionally.
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family
	names      []string // sorted family names
	collectors []func()
	// pendingHelp holds Help text set before its family exists.
	pendingHelp map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter name{labels}, creating it if absent. It
// panics if name is already registered with a different type. On a nil
// registry it returns nil (a valid no-op counter).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	inst := r.instance(kindCounter, name, labels)
	return inst.c
}

// Gauge returns the gauge name{labels}, creating it if absent. It panics
// if name is already registered with a different type. On a nil registry
// it returns nil.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	inst := r.instance(kindGauge, name, labels)
	return inst.g
}

// Histogram returns the histogram name{labels} with the given bucket
// upper bounds (strictly increasing; a final +Inf bucket is implicit),
// creating it if absent. Bounds are fixed at first creation; later calls
// for the same instance ignore the bounds argument. It panics if name is
// already registered with a different type. On a nil registry it returns
// nil.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	inst := r.instanceWith(kindHistogram, name, labels, func() *instance {
		return &instance{h: newHistogram(bounds)}
	})
	return inst.h
}

// Help sets the # HELP text of family name (shown on exposition). Calling
// Help before any metric of the family exists is allowed and fixes the
// family's text once created. No-op on a nil registry.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		f.help = text
		return
	}
	// Remember the text for when the family is created.
	if r.pendingHelp == nil {
		r.pendingHelp = make(map[string]string)
	}
	r.pendingHelp[name] = text
}

// OnCollect registers fn to run at the start of every exposition
// (WritePrometheus). Collectors mirror externally-held state — e.g. a
// coordinator's snapshot counters — into registry gauges just in time for
// a scrape. No-op on a nil registry.
func (r *Registry) OnCollect(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

func (r *Registry) instance(kind metricKind, name string, labels []Label) *instance {
	return r.instanceWith(kind, name, labels, func() *instance {
		switch kind {
		case kindCounter:
			return &instance{c: &Counter{}}
		case kindGauge:
			return &instance{g: &Gauge{}}
		}
		panic("obs: unreachable")
	})
}

func (r *Registry) instanceWith(kind metricKind, name string, labels []Label, make_ func() *instance) *instance {
	ls := canonLabels(labels)
	key := renderLabels(ls, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, kind: kind, inst: map[string]*instance{}}
		if h, ok := r.pendingHelp[name]; ok {
			f.help = h
			delete(r.pendingHelp, name)
		}
		r.fams[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	inst, ok := f.inst[key]
	if !ok {
		inst = make_()
		inst.labels = ls
		f.inst[key] = inst
		i := sort.SearchStrings(f.keys, key)
		f.keys = append(f.keys, "")
		copy(f.keys[i+1:], f.keys[i:])
		f.keys[i] = key
	}
	return inst
}

// canonLabels returns a sorted copy of labels (exposition and identity are
// order-independent).
func canonLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// renderLabels renders {k="v",...} with escaped values, merging in extra
// (a pre-rendered k="v" pair appended last, used for histogram le).
// Returns "" when there is nothing to render.
func renderLabels(ls []Label, extra string) string {
	if len(ls) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}
