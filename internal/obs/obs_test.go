package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total"); again != c {
		t.Error("second lookup minted a new counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	g.Dec()
	g.Inc()
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestLabeledInstancesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", L("path", "/a"))
	b := r.Counter("reqs", L("path", "/b"))
	if a == b {
		t.Fatal("distinct labels share a counter")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("increment leaked across labels")
	}
	// Label order must not matter for identity.
	x := r.Counter("multi", L("a", "1"), L("b", "2"))
	y := r.Counter("multi", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("label order changed instance identity")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("thing")
}

// TestNilSafety: every metric operation must be a no-op on nil receivers
// and nil registries, so instrumented code runs unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DefDurationBuckets)
	var f *Flag
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	f.Set(false)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics accumulated state")
	}
	if !f.Get() {
		t.Error("nil Flag should read true")
	}
	r.Help("x", "text")
	r.OnCollect(func() {})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry wrote %q, %v", sb.String(), err)
	}
}

func TestFlag(t *testing.T) {
	f := NewFlag(true)
	if !f.Get() {
		t.Error("NewFlag(true) reads false")
	}
	f.Set(false)
	if f.Get() {
		t.Error("Set(false) did not stick")
	}
	f.Set(true)
	if !f.Get() {
		t.Error("Set(true) did not stick")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10, math.NaN()} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if want := []float64{1, 2, 5}; len(bounds) != len(want) {
		t.Fatalf("bounds = %v", bounds)
	}
	// le is inclusive: ≤1 → {0.5, 1}; ≤2 adds {1.5, 2}; ≤5 adds {3};
	// +Inf adds {10}. NaN dropped.
	want := []int64{2, 4, 5, 6}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("cumulative counts = %v, want %v", counts, want)
			break
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+10; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramSanitizesBounds(t *testing.T) {
	// Unsorted, duplicated, infinite and NaN bounds must degrade to a
	// clean strictly-increasing set.
	h := newHistogram([]float64{5, 1, 1, math.Inf(1), math.NaN(), 2})
	bounds, _ := h.Snapshot()
	want := []float64{1, 2, 5}
	if len(bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}

// TestConcurrentMutation exercises the lock-free paths under the race
// detector.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.75) // alternates buckets
				// Concurrent family creation must also be safe.
				r.Counter("per_worker", L("w", string(rune('a'+w)))).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), float64(workers*per/2)*0.75; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}
