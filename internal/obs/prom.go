package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format
// this package writes (version 0.0.4, the format every Prometheus-
// compatible scraper accepts).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every family in the registry in Prometheus text
// exposition format: families in name order, instances in label order,
// histograms as cumulative _bucket{le=...} series plus _sum and _count.
// Registered OnCollect callbacks run first, so mirrored gauges are fresh.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	// Collectors run without the registry lock: they typically call
	// Gauge(...).Set, which needs it.
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		f := r.fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, key := range f.keys {
			inst := f.inst[key]
			if err := writeInstance(w, f, inst); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeInstance(w io.Writer, f *family, inst *instance) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(inst.labels, ""), inst.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(inst.labels, ""), inst.g.Value())
		return err
	case kindHistogram:
		bounds, counts := inst.h.Snapshot()
		for i, b := range bounds {
			le := `le="` + formatFloat(b) + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(inst.labels, le), counts[i]); err != nil {
				return err
			}
		}
		total := int64(0)
		if len(counts) > 0 {
			total = counts[len(counts)-1]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(inst.labels, `le="+Inf"`), total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(inst.labels, ""), formatFloat(inst.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(inst.labels, ""), inst.h.Count())
		return err
	}
	return nil
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — a standalone scrape endpoint for servers that do not need
// content negotiation.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = r.WritePrometheus(w)
	})
}

// formatFloat renders a float the way Prometheus expects: shortest exact
// decimal, with infinities spelled +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes are legal
// there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
