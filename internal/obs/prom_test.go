package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func expo(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("reqs_total", "Requests served.")
	r.Counter("reqs_total", L("path", "/next")).Add(7)
	r.Gauge("depth").Set(-2)
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(3)

	out := expo(t, r)
	for _, want := range []string{
		"# HELP reqs_total Requests served.\n",
		"# TYPE reqs_total counter\n",
		`reqs_total{path="/next"} 7` + "\n",
		"# TYPE depth gauge\ndepth -2\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.001"} 2` + "\n",
		`lat_seconds_bucket{le="0.01"} 3` + "\n",
		`lat_seconds_bucket{le="+Inf"} 4` + "\n",
		"lat_seconds_sum 3.006\n",
		"lat_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Families must appear in name order: depth < lat_seconds < reqs_total.
	if !(strings.Index(out, "depth") < strings.Index(out, "lat_seconds") &&
		strings.Index(out, "lat_seconds") < strings.Index(out, "reqs_total")) {
		t.Errorf("families out of order:\n%s", out)
	}
}

// TestExpositionEscaping: label values containing backslashes, quotes and
// newlines must be escaped per the text exposition format, and HELP text
// must escape backslash and newline.
func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Help("weird_total", "line one\nline \\two")
	r.Counter("weird_total", L("path", `C:\tmp\"quoted"`+"\nnext")).Inc()
	out := expo(t, r)
	if want := `# HELP weird_total line one\nline \\two` + "\n"; !strings.Contains(out, want) {
		t.Errorf("HELP not escaped; got:\n%s", out)
	}
	if want := `weird_total{path="C:\\tmp\\\"quoted\"\nnext"} 1` + "\n"; !strings.Contains(out, want) {
		t.Errorf("label value not escaped; got:\n%s", out)
	}
	// The escaped output must contain no raw newline inside a label value:
	// every line must be a comment or name{...} value.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "weird_total{") || !strings.HasSuffix(line, " 1") {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestExpositionHistogramMergesLabels(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", []float64{1}, L("path", "/x")).Observe(0.5)
	out := expo(t, r)
	for _, want := range []string{
		`lat_bucket{path="/x",le="1"} 1`,
		`lat_bucket{path="/x",le="+Inf"} 1`,
		`lat_sum{path="/x"} 0.5`,
		`lat_count{path="/x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestOnCollectRunsBeforeExposition(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mirrored")
	n := int64(0)
	r.OnCollect(func() { n += 41; g.Set(n) })
	if out := expo(t, r); !strings.Contains(out, "mirrored 41") {
		t.Errorf("collector did not run before first scrape:\n%s", out)
	}
	if out := expo(t, r); !strings.Contains(out, "mirrored 82") {
		t.Errorf("collector did not run before second scrape:\n%s", out)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks_total").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != PrometheusContentType {
		t.Errorf("Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "ticks_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}
