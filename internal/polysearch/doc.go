// Package polysearch provides machine checks of §2's discussion of
// polynomial pairing functions: exact bivariate polynomials over ℚ,
// verification of the PF property on bounded boxes, an exhaustive search
// over quadratic candidates that empirically reproduces the Fueter–Pólya
// uniqueness of the Cauchy–Cantor diagonal polynomial 𝒟 (and its twin), and
// the density/gap argument showing that super-quadratic polynomials with
// positive coefficients cannot be PFs ("their lead terms grow faster than
// the quadratic growth of the plane, hence must leave large gaps in their
// ranges").
//
// # Overflow
//
// All arithmetic is exact (math/big rationals): a pairing function is a
// bijection, and rounding would make every verdict worthless. There is no
// int64 fast path and hence no overflow to report — evaluation cost, not
// range, bounds the search boxes.
//
// # Concurrency
//
// Poly values are immutable after construction and safe for concurrent
// evaluation; the exhaustive searches are single-goroutine (determinism
// makes their verdicts reproducible) but independent searches may run
// concurrently — every function is free of shared mutable state.
package polysearch
