package polysearch_test

import (
	"fmt"
	"math/big"

	"pairfn/internal/polysearch"
)

func ExampleCheckPF() {
	// The Cauchy–Cantor polynomial passes the PF laws on a box…
	rep := polysearch.CheckPF(polysearch.DiagonalPoly(false), 16)
	fmt.Println(rep.OK)
	// Output: true
}

func ExampleDensityCount() {
	// …while a positive-coefficient cubic leaves range gaps (§2): far
	// fewer than M positions attain values ≤ M.
	p := polysearch.NewPoly(
		polysearch.Term{I: 3, J: 0, C: ratOne()},
		polysearch.Term{I: 0, J: 3, C: ratOne()},
	)
	count, _ := polysearch.DensityCount(p, 1000)
	fmt.Println(count < 500)
	// Output: true
}

func ratOne() *big.Rat { return big.NewRat(1, 1) }
