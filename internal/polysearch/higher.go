package polysearch

import "math/big"

// Monomial identifies x^I·y^J in a search template.
type Monomial struct{ I, J int }

// SearchFamily exhaustively searches the polynomial family spanned by the
// given monomials, with half-integer coefficients whose numerators range
// over [−numerBound, numerBound], returning every candidate that (a) has a
// nonzero coefficient on at least one monomial of the family's top total
// degree and (b) passes CheckPF on [1, B]².
//
// §2 items 3–4 predict zero survivors for any cubic or quartic family —
// "no cubic or quartic polynomial is a PF" — which TestNoCubicPF and
// TestNoQuarticPF verify over symmetric families; SearchQuadratics is the
// degree-2 specialization with its own fast pre-filter.
func SearchFamily(monomials []Monomial, numerBound int64, B int64) []*Poly {
	if len(monomials) == 0 || numerBound < 1 || B < 4 {
		return nil
	}
	top := 0
	for _, m := range monomials {
		if m.I+m.J > top {
			top = m.I + m.J
		}
	}
	// Precompute doubled monomial values on the 4×4 pre-filter box.
	const pre = 4
	monoVals := make([][pre * pre]int64, len(monomials))
	for mi, m := range monomials {
		for x := int64(1); x <= pre; x++ {
			for y := int64(1); y <= pre; y++ {
				v := int64(1)
				for i := 0; i < m.I; i++ {
					v *= x
				}
				for j := 0; j < m.J; j++ {
					v *= y
				}
				monoVals[mi][(x-1)*pre+y-1] = v
			}
		}
	}
	numers := make([]int64, len(monomials)) // coefficient numerators (/2)
	for i := range numers {
		numers[i] = -numerBound
	}
	var out []*Poly
	var vals [pre * pre]int64
	for {
		if topNonzero(monomials, numers, top) {
			if prefilter(monoVals, numers, &vals) {
				terms := make([]Term, 0, len(monomials))
				for i, m := range monomials {
					terms = append(terms, Term{m.I, m.J, big.NewRat(numers[i], 2)})
				}
				q := NewPoly(terms...)
				if rep := CheckPF(q, B); rep.OK {
					out = append(out, q)
				}
			}
		}
		// Odometer increment.
		i := 0
		for ; i < len(numers); i++ {
			numers[i]++
			if numers[i] <= numerBound {
				break
			}
			numers[i] = -numerBound
		}
		if i == len(numers) {
			return out
		}
	}
}

// topNonzero reports whether some top-degree monomial has a nonzero
// coefficient — the candidate genuinely has the family's degree.
func topNonzero(monomials []Monomial, numers []int64, top int) bool {
	for i, m := range monomials {
		if m.I+m.J == top && numers[i] != 0 {
			return true
		}
	}
	return false
}

// prefilter replays SearchQuadratics' cheap exact test: doubled values on
// the 4×4 box must be positive even integers, pairwise distinct, and
// attain the value 1 (doubled: 2).
func prefilter(monoVals [][16]int64, numers []int64, vals *[16]int64) bool {
	sawOne := false
	for p := 0; p < 16; p++ {
		var v2 int64
		for i := range numers {
			v2 += numers[i] * monoVals[i][p]
		}
		if v2 < 2 || v2%2 != 0 {
			return false
		}
		if v2 == 2 {
			sawOne = true
		}
		vals[p] = v2
	}
	if !sawOne {
		return false
	}
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if vals[i] == vals[j] {
				return false
			}
		}
	}
	return true
}

// CubicFamily is the complete cubic template — all ten monomials of total
// degree ≤ 3, each with an independent coefficient. With numerator bound 2
// that is 5^10 ≈ 9.7M candidates, all dispatched by the early-exit
// pre-filter in well under a minute.
func CubicFamily() []Monomial {
	return []Monomial{
		{3, 0}, {2, 1}, {1, 2}, {0, 3},
		{2, 0}, {1, 1}, {0, 2},
		{1, 0}, {0, 1}, {0, 0},
	}
}

// QuarticFamily is a 9-parameter quartic slice (full quartics have 15
// coefficients; dropping the x³y and xy³ cross terms keeps the search
// exhaustive-within-family yet tractable at 5^9 ≈ 2M candidates).
func QuarticFamily() []Monomial {
	return []Monomial{
		{4, 0}, {2, 2}, {0, 4},
		{2, 0}, {1, 1}, {0, 2},
		{1, 0}, {0, 1}, {0, 0},
	}
}
