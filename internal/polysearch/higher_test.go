package polysearch

import (
	"math/big"
	"testing"
)

// TestNoCubicPF reproduces §2 item 3 for cubics: no genuine cubic in the
// complete 10-monomial family with half-integer coefficients (numerators
// in [−2, 2]) passes the PF check.
func TestNoCubicPF(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cubic search skipped in -short mode")
	}
	// Box size matters: impostors like x²y+xy²+y³−x²+y²−y−1 are injective
	// on [1,12]² (their collisions involve positions like (19, 1)) and
	// only die on a 16-box.
	got := SearchFamily(CubicFamily(), 2, 16)
	for _, p := range got {
		t.Errorf("unexpected cubic survivor: %s", p)
	}
}

// TestNoQuarticPF reproduces §2 item 3 for (a 9-parameter slice of)
// quartics.
func TestNoQuarticPF(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive quartic search skipped in -short mode")
	}
	// Quartic impostors (e.g. y⁴+xy+y²−y−1, whose row y = 1 is the
	// identity p(x,1) = x) survive boxes up to 20; 24 kills them all.
	got := SearchFamily(QuarticFamily(), 2, 24)
	for _, p := range got {
		t.Errorf("unexpected quartic survivor: %s", p)
	}
}

// TestSearchFamilyFindsDiagonal sanity-checks SearchFamily against the
// known positive: over the quadratic template it must rediscover 𝒟 and its
// twin (agreeing with SearchQuadratics).
func TestSearchFamilyFindsDiagonal(t *testing.T) {
	quad := []Monomial{{2, 0}, {1, 1}, {0, 2}, {1, 0}, {0, 1}, {0, 0}}
	got := SearchFamily(quad, 3, 12)
	if len(got) != 2 {
		for _, p := range got {
			t.Logf("survivor: %s", p)
		}
		t.Fatalf("quadratic template: %d survivors, want 2", len(got))
	}
	want := map[string]bool{
		DiagonalPoly(false).String(): true,
		DiagonalPoly(true).String():  true,
	}
	for _, p := range got {
		if !want[p.String()] {
			t.Errorf("unexpected survivor %s", p)
		}
	}
}

// TestSearchFamilyDegenerateInputs covers the guard clauses.
func TestSearchFamilyDegenerateInputs(t *testing.T) {
	if SearchFamily(nil, 2, 12) != nil {
		t.Error("empty family should return nil")
	}
	if SearchFamily(CubicFamily(), 0, 12) != nil {
		t.Error("zero bound should return nil")
	}
	if SearchFamily(CubicFamily(), 2, 2) != nil {
		t.Error("tiny box should return nil")
	}
}

// TestTopNonzeroFilter checks that candidates without a genuine top-degree
// term are excluded (they belong to the lower-degree search).
func TestTopNonzeroFilter(t *testing.T) {
	// A pure-quadratic coefficient vector inside the cubic family: even
	// though 𝒟 itself is in the family's span, it must NOT be reported by
	// the cubic search.
	got := SearchFamily([]Monomial{
		{3, 0}, // top-degree monomial, coefficient forced through [−1, 1]
		{2, 0}, {1, 1}, {0, 2}, {1, 0}, {0, 1}, {0, 0},
	}, 1, 12)
	for _, p := range got {
		if p.Degree() < 3 {
			t.Errorf("survivor of degree %d leaked through: %s", p.Degree(), p)
		}
	}
}

// TestPrefilterConsistency: anything CheckPF accepts must pass the
// pre-filter (no false negatives on the 4×4 box for valid PFs).
func TestPrefilterConsistency(t *testing.T) {
	d := DiagonalPoly(false)
	monomials := []Monomial{{2, 0}, {1, 1}, {0, 2}, {1, 0}, {0, 1}, {0, 0}}
	// 𝒟's doubled numerators in family order.
	numers := []int64{1, 2, 1, -3, -1, 2}
	monoVals := make([][16]int64, len(monomials))
	for mi, m := range monomials {
		for x := int64(1); x <= 4; x++ {
			for y := int64(1); y <= 4; y++ {
				v := int64(1)
				for i := 0; i < m.I; i++ {
					v *= x
				}
				for j := 0; j < m.J; j++ {
					v *= y
				}
				monoVals[mi][(x-1)*4+y-1] = v
			}
		}
	}
	var vals [16]int64
	if !prefilter(monoVals, numers, &vals) {
		t.Fatal("pre-filter rejects 𝒟")
	}
	// And the doubled values match 2·𝒟.
	for x := int64(1); x <= 4; x++ {
		for y := int64(1); y <= 4; y++ {
			want := new(big.Rat).SetInt64(2)
			want.Mul(want, d.Eval(x, y))
			if got := vals[(x-1)*4+y-1]; new(big.Rat).SetInt64(got).Cmp(want) != 0 {
				t.Fatalf("doubled value at (%d, %d) = %d, want %s", x, y, got, want)
			}
		}
	}
}
