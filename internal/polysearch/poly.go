package polysearch

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Term is a monomial c·x^i·y^j with exact rational coefficient.
type Term struct {
	I, J int
	C    *big.Rat
}

// Poly is a bivariate polynomial over ℚ, a candidate pairing function.
type Poly struct {
	terms []Term
}

// NewPoly returns the polynomial with the given terms. Zero-coefficient
// terms are dropped; like terms are combined.
func NewPoly(terms ...Term) *Poly {
	type key struct{ i, j int }
	acc := make(map[key]*big.Rat)
	for _, t := range terms {
		if t.I < 0 || t.J < 0 {
			panic(fmt.Sprintf("polysearch: negative exponent in term x^%d y^%d", t.I, t.J))
		}
		k := key{t.I, t.J}
		if acc[k] == nil {
			acc[k] = new(big.Rat)
		}
		acc[k].Add(acc[k], t.C)
	}
	var out []Term
	for k, c := range acc {
		if c.Sign() != 0 {
			out = append(out, Term{I: k.i, J: k.j, C: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I+out[a].J != out[b].I+out[b].J {
			return out[a].I+out[a].J > out[b].I+out[b].J
		}
		if out[a].I != out[b].I {
			return out[a].I > out[b].I
		}
		return out[a].J > out[b].J
	})
	return &Poly{terms: out}
}

// Quadratic returns a·x² + b·xy + c·y² + d·x + e·y + f with the given
// exact rational coefficients.
func Quadratic(a, b, c, d, e, f *big.Rat) *Poly {
	return NewPoly(
		Term{2, 0, a}, Term{1, 1, b}, Term{0, 2, c},
		Term{1, 0, d}, Term{0, 1, e}, Term{0, 0, f},
	)
}

// DiagonalPoly returns the Cauchy–Cantor polynomial of eq. 2.1 expanded,
//
//	𝒟(x, y) = ½x² + xy + ½y² − 3/2·x − 1/2·y + 1,
//
// or its twin (x and y exchanged) if twin is true.
func DiagonalPoly(twin bool) *Poly {
	half := big.NewRat(1, 2)
	one := big.NewRat(1, 1)
	dx, dy := big.NewRat(-3, 2), big.NewRat(-1, 2)
	if twin {
		dx, dy = dy, dx
	}
	return Quadratic(half, one, half, dx, dy, one)
}

// Degree returns the total degree (0 for the zero polynomial).
func (p *Poly) Degree() int {
	d := 0
	for _, t := range p.terms {
		if t.I+t.J > d {
			d = t.I + t.J
		}
	}
	return d
}

// Terms returns the terms in descending degree order.
func (p *Poly) Terms() []Term { return append([]Term(nil), p.terms...) }

// AllCoefficientsPositive reports whether every (nonzero) coefficient is
// positive — the hypothesis of §2's sample exclusion: "a super-quadratic
// polynomial whose coefficients are all positive cannot be a PF".
func (p *Poly) AllCoefficientsPositive() bool {
	for _, t := range p.terms {
		if t.C.Sign() <= 0 {
			return false
		}
	}
	return len(p.terms) > 0
}

// Eval returns p(x, y) as an exact rational.
func (p *Poly) Eval(x, y int64) *big.Rat {
	bx, by := big.NewInt(x), big.NewInt(y)
	sum := new(big.Rat)
	pow := func(b *big.Int, e int) *big.Int {
		return new(big.Int).Exp(b, big.NewInt(int64(e)), nil)
	}
	for _, t := range p.terms {
		m := new(big.Int).Mul(pow(bx, t.I), pow(by, t.J))
		term := new(big.Rat).SetInt(m)
		term.Mul(term, t.C)
		sum.Add(sum, term)
	}
	return sum
}

// EvalInt returns p(x, y) if it is an integer, with ok reporting
// integrality.
func (p *Poly) EvalInt(x, y int64) (*big.Int, bool) {
	v := p.Eval(x, y)
	if !v.IsInt() {
		return nil, false
	}
	return new(big.Int).Set(v.Num()), true
}

// String renders the polynomial in conventional form.
func (p *Poly) String() string {
	if len(p.terms) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, t := range p.terms {
		c := t.C.RatString()
		if i > 0 {
			if strings.HasPrefix(c, "-") {
				b.WriteString(" - ")
				c = c[1:]
			} else {
				b.WriteString(" + ")
			}
		}
		mono := ""
		switch {
		case t.I > 0 && t.J > 0:
			mono = fmt.Sprintf("x^%d y^%d", t.I, t.J)
		case t.I > 0:
			mono = fmt.Sprintf("x^%d", t.I)
		case t.J > 0:
			mono = fmt.Sprintf("y^%d", t.J)
		}
		if mono == "" {
			b.WriteString(c)
		} else if c == "1" {
			b.WriteString(mono)
		} else {
			b.WriteString(c + "·" + mono)
		}
	}
	return b.String()
}
