package polysearch

import (
	"math/big"
	"testing"

	"pairfn/internal/core"
)

// TestDiagonalPolyMatchesPF checks the expanded polynomial form of eq. 2.1
// against the core implementation.
func TestDiagonalPolyMatchesPF(t *testing.T) {
	p := DiagonalPoly(false)
	tw := DiagonalPoly(true)
	var d core.Diagonal
	dt := core.Diagonal{Twin: true}
	for x := int64(1); x <= 30; x++ {
		for y := int64(1); y <= 30; y++ {
			v, ok := p.EvalInt(x, y)
			if !ok {
				t.Fatalf("𝒟 poly non-integral at (%d, %d)", x, y)
			}
			if want := core.MustEncode(d, x, y); v.Int64() != want {
				t.Fatalf("poly(%d, %d) = %s, PF says %d", x, y, v, want)
			}
			w, _ := tw.EvalInt(x, y)
			if want := core.MustEncode(dt, x, y); w.Int64() != want {
				t.Fatalf("twin poly(%d, %d) = %s, PF says %d", x, y, w, want)
			}
		}
	}
}

// TestCheckPFAcceptsDiagonal checks the verifier passes 𝒟 and its twin.
func TestCheckPFAcceptsDiagonal(t *testing.T) {
	for _, twin := range []bool{false, true} {
		rep := CheckPF(DiagonalPoly(twin), 24)
		if !rep.OK {
			t.Errorf("CheckPF rejects 𝒟 (twin=%v): %s", twin, rep.Reason)
		}
		if rep.Covered < 200 {
			t.Errorf("coverage only to %d", rep.Covered)
		}
	}
}

// TestCheckPFRejects exercises each rejection path.
func TestCheckPFRejects(t *testing.T) {
	r := func(p *Poly) string { return CheckPF(p, 12).Reason }
	// Non-integral: x²/3.
	if got := r(NewPoly(Term{2, 0, big.NewRat(1, 3)})); got == "" {
		t.Error("x²/3 should be rejected")
	}
	// Non-positive: x − 10.
	if got := r(NewPoly(Term{1, 0, big.NewRat(1, 1)}, Term{0, 0, big.NewRat(-10, 1)})); got == "" {
		t.Error("x − 10 should be rejected")
	}
	// Collision: x + y.
	if got := r(NewPoly(Term{1, 0, big.NewRat(1, 1)}, Term{0, 1, big.NewRat(1, 1)})); got == "" {
		t.Error("x + y should be rejected (collisions)")
	}
	// Holes: x² + y² is injective-ish on small boxes but leaves gaps.
	if got := r(NewPoly(Term{2, 0, big.NewRat(1, 1)}, Term{0, 2, big.NewRat(2, 1)})); got == "" {
		t.Error("x² + 2y² should be rejected")
	}
	// Cubic with positive coefficients: gaps.
	cube := NewPoly(Term{3, 0, big.NewRat(1, 1)}, Term{0, 3, big.NewRat(1, 1)},
		Term{1, 1, big.NewRat(1, 1)})
	if got := r(cube); got == "" {
		t.Error("x³ + y³ + xy should be rejected")
	}
}

// TestQuadraticUniqueness is experiment E20's headline: the exhaustive
// search over half-integer quadratics with numerators in [−4, 4] finds
// exactly 𝒟 and its twin — the Fueter–Pólya phenomenon, empirically.
func TestQuadraticUniqueness(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search skipped in -short mode")
	}
	got := SearchQuadratics(4, 16)
	if len(got) != 2 {
		for _, p := range got {
			t.Logf("survivor: %s", p)
		}
		t.Fatalf("search found %d survivors, want exactly 2 (𝒟 and twin)", len(got))
	}
	want := map[string]bool{DiagonalPoly(false).String(): true, DiagonalPoly(true).String(): true}
	for _, p := range got {
		if !want[p.String()] {
			t.Errorf("unexpected survivor %s", p)
		}
	}
}

// TestSuperQuadraticGaps verifies §2's density argument (experiment E20):
// positive-coefficient polynomials of degree ≥ 3 attain far fewer than M
// values ≤ M, hence cannot be pairing functions.
func TestSuperQuadraticGaps(t *testing.T) {
	one := big.NewRat(1, 1)
	candidates := []*Poly{
		NewPoly(Term{3, 0, one}, Term{0, 3, one}),                  // x³ + y³
		NewPoly(Term{2, 1, one}, Term{1, 2, one}, Term{0, 0, one}), // x²y + xy² + 1
		NewPoly(Term{4, 0, one}, Term{1, 1, one}, Term{0, 4, one}), // x⁴ + xy + y⁴
		NewPoly(Term{3, 3, big.NewRat(1, 2)}, Term{1, 0, one}, Term{0, 1, one}),
	}
	const M = 100000
	for _, p := range candidates {
		count, err := DensityCount(p, M)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if count >= M/2 {
			t.Errorf("%s: %d positions with value ≤ %d — no certified gap", p, count, M)
		}
	}
	// Contrast: the quadratic PF 𝒟 has exactly M positions with value ≤ M
	// (unit density). DensityCount requires positive coefficients, so count
	// directly via the polynomial.
	p := DiagonalPoly(false)
	limit := new(big.Rat).SetInt64(M)
	var count int64
	for x := int64(1); ; x++ {
		if p.Eval(x, 1).Cmp(limit) > 0 {
			break
		}
		for y := int64(1); p.Eval(x, y).Cmp(limit) <= 0; y++ {
			count++
		}
	}
	if count != M {
		t.Errorf("𝒟: %d positions with value ≤ %d, want exactly %d (unit density)", count, M, M)
	}
}

// TestDensityCountRequiresPositive checks the precondition.
func TestDensityCountRequiresPositive(t *testing.T) {
	p := NewPoly(Term{2, 0, big.NewRat(-1, 1)})
	if _, err := DensityCount(p, 100); err == nil {
		t.Error("negative coefficients should be rejected")
	}
}

// TestPolyAlgebra covers construction, combination and printing.
func TestPolyAlgebra(t *testing.T) {
	p := NewPoly(
		Term{2, 0, big.NewRat(1, 2)},
		Term{2, 0, big.NewRat(1, 2)}, // combines to x²
		Term{0, 0, big.NewRat(0, 1)}, // dropped
		Term{1, 1, big.NewRat(-3, 1)},
	)
	if p.Degree() != 2 {
		t.Errorf("Degree = %d", p.Degree())
	}
	if len(p.Terms()) != 2 {
		t.Errorf("Terms = %v", p.Terms())
	}
	if got := p.Eval(2, 3); got.Cmp(big.NewRat(4-18, 1)) != 0 {
		t.Errorf("Eval(2, 3) = %s", got)
	}
	if p.AllCoefficientsPositive() {
		t.Error("AllCoefficientsPositive should be false")
	}
	if s := p.String(); s == "" || s == "0" {
		t.Errorf("String = %q", s)
	}
	if NewPoly().String() != "0" {
		t.Error("zero polynomial should print 0")
	}
	q := NewPoly(Term{2, 0, big.NewRat(1, 1)}, Term{0, 1, big.NewRat(1, 1)})
	if !q.AllCoefficientsPositive() {
		t.Error("AllCoefficientsPositive should be true")
	}
}

// TestEvalIntDetectsNonIntegral covers the integrality check.
func TestEvalIntDetectsNonIntegral(t *testing.T) {
	p := NewPoly(Term{1, 0, big.NewRat(1, 2)})
	if _, ok := p.EvalInt(3, 1); ok {
		t.Error("x/2 at x = 3 should be non-integral")
	}
	if v, ok := p.EvalInt(4, 1); !ok || v.Int64() != 2 {
		t.Error("x/2 at x = 4 should be 2")
	}
}
