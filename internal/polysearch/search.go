package polysearch

import "math/big"

// SearchQuadratics exhaustively searches quadratic candidates
//
//	q(x, y) = a·x² + b·xy + c·y² + d·x + e·y + f
//
// with half-integer coefficients whose numerators (of the /2
// representation) range over [−numerBound, numerBound], returning every
// candidate that passes CheckPF on the box [1, B]². The Fueter–Pólya
// theorem (§2 item 1) predicts exactly two survivors: the Cauchy–Cantor
// polynomial 𝒟 and its twin.
//
// A fast exact int64 pre-filter (integrality, positivity and injectivity of
// 2·q on the 4×4 box, plus attainment of the value 1) discards almost all
// of the (2·numerBound+1)⁶ candidates before the full rational check runs.
func SearchQuadratics(numerBound int64, B int64) []*Poly {
	if numerBound < 1 || B < 4 {
		return nil
	}
	var out []*Poly
	lo, hi := -numerBound, numerBound
	// Pre-filter workspace: doubled values 2·q(x, y) on the 4×4 box.
	const pre = 4
	var vals [pre * pre]int64
	for a := lo; a <= hi; a++ {
		for b := lo; b <= hi; b++ {
			for c := lo; c <= hi; c++ {
				for d := lo; d <= hi; d++ {
					for e := lo; e <= hi; e++ {
					next:
						for f := lo; f <= hi; f++ {
							sawOne := false
							for x := int64(1); x <= pre; x++ {
								for y := int64(1); y <= pre; y++ {
									v2 := a*x*x + b*x*y + c*y*y + d*x + e*y + f
									if v2 < 2 || v2%2 != 0 {
										continue next // non-positive or non-integral
									}
									if v2 == 2 {
										sawOne = true
									}
									vals[(x-1)*pre+y-1] = v2
								}
							}
							if !sawOne {
								// q never attains 1 on the 4×4 box; for
								// outward-monotone candidates (the only
								// ones CheckPF accepts) 1 must appear
								// there, since values only grow outward.
								continue next
							}
							for i := 0; i < pre*pre; i++ {
								for j := i + 1; j < pre*pre; j++ {
									if vals[i] == vals[j] {
										continue next
									}
								}
							}
							q := Quadratic(
								big.NewRat(a, 2), big.NewRat(b, 2), big.NewRat(c, 2),
								big.NewRat(d, 2), big.NewRat(e, 2), big.NewRat(f, 2),
							)
							if rep := CheckPF(q, B); rep.OK {
								out = append(out, q)
							}
						}
					}
				}
			}
		}
	}
	return out
}
