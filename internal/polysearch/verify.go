package polysearch

import (
	"fmt"
	"math/big"
)

// Report is the outcome of checking the PF property on a bounded region.
type Report struct {
	// OK is true when no violation was found: every value on the box is a
	// positive integer, values are pairwise distinct, and every integer in
	// [1, M] is achieved (M = Covered).
	OK bool
	// Covered is the threshold M used for the surjectivity check: the
	// largest M such that every position with value ≤ M provably lies in
	// the box (see EdgeMin).
	Covered int64
	// Reason describes the first violation found, empty when OK.
	Reason string
}

// CheckPF verifies the PF property of p on the box [1, B]²:
//
//  1. integrality and positivity of every value on the box,
//  2. injectivity on the box,
//  3. surjectivity onto [1, M], where M = (minimum value on the box
//     boundary) − 1 — any position outside the box has, for candidates
//     that are coordinate-monotone beyond the boundary, a value exceeding
//     every boundary value, so a hole below M is a genuine hole.
//
// Monotonicity is verified empirically on the boundary rim (values on rows
// B and B+1 and columns B and B+1 must increase outward); candidates
// violating it are rejected as "not verifiable", which is conservative for
// a search whose survivors are then inspected by eye (there are two).
func CheckPF(p *Poly, B int64) Report {
	if B < 2 {
		return Report{Reason: "box too small"}
	}
	seen := make(map[string][2]int64, B*B)
	var edgeMin *big.Int
	for x := int64(1); x <= B; x++ {
		for y := int64(1); y <= B; y++ {
			v, ok := p.EvalInt(x, y)
			if !ok {
				return Report{Reason: fmt.Sprintf("non-integral value at (%d, %d)", x, y)}
			}
			if v.Sign() < 1 {
				return Report{Reason: fmt.Sprintf("non-positive value %s at (%d, %d)", v, x, y)}
			}
			k := v.String()
			if prev, dup := seen[k]; dup {
				return Report{Reason: fmt.Sprintf("collision: (%d, %d) and (%d, %d) both map to %s",
					prev[0], prev[1], x, y, v)}
			}
			seen[k] = [2]int64{x, y}
			if x == B || y == B {
				if edgeMin == nil || v.Cmp(edgeMin) < 0 {
					edgeMin = v
				}
			}
		}
	}
	// Outward monotonicity on the rim: stepping from the boundary to the
	// next shell must not decrease values, else values below edgeMin could
	// hide outside the box and the hole check would be unsound.
	for i := int64(1); i <= B+1; i++ {
		pairs := [][4]int64{{i, B, i, B + 1}, {B, i, B + 1, i}}
		for _, q := range pairs {
			in := p.Eval(q[0], q[1])
			out := p.Eval(q[2], q[3])
			if out.Cmp(in) <= 0 {
				return Report{Reason: fmt.Sprintf(
					"not outward-monotone at (%d, %d)→(%d, %d)", q[0], q[1], q[2], q[3])}
			}
		}
	}
	if edgeMin == nil || !edgeMin.IsInt64() {
		return Report{Reason: "boundary minimum out of range"}
	}
	m := edgeMin.Int64() - 1
	if m > B*B {
		m = B * B // cannot have more than B² values from the box anyway
	}
	for want := int64(1); want <= m; want++ {
		if _, ok := seen[big.NewInt(want).String()]; !ok {
			return Report{Reason: fmt.Sprintf("hole: %d not attained (all positions with value ≤ %d lie in the box)", want, m)}
		}
	}
	return Report{OK: true, Covered: m}
}

// DensityCount returns |{(x, y) ∈ N×N : p(x, y) ≤ M}| for a polynomial all
// of whose coefficients are positive (hence p is strictly increasing in
// each coordinate). A pairing function must attain every integer in [1, M]
// at distinct positions, so a count < M certifies range gaps — the §2 lead
// term/density argument for excluding super-quadratic polynomials.
func DensityCount(p *Poly, M int64) (int64, error) {
	if !p.AllCoefficientsPositive() {
		return 0, fmt.Errorf("polysearch: DensityCount requires all-positive coefficients (got %s)", p)
	}
	bm := big.NewInt(M)
	var count int64
	for x := int64(1); ; x++ {
		if p.Eval(x, 1).Cmp(new(big.Rat).SetInt(bm)) > 0 {
			break
		}
		for y := int64(1); ; y++ {
			if p.Eval(x, y).Cmp(new(big.Rat).SetInt(bm)) > 0 {
				break
			}
			count++
		}
	}
	return count, nil
}
