package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAfterHint(t *testing.T) {
	base := errors.New("throttled")
	if _, ok := AfterHint(base); ok {
		t.Fatal("plain error carried a hint")
	}
	err := After(base, 3*time.Second)
	if d, ok := AfterHint(err); !ok || d != 3*time.Second {
		t.Fatalf("hint = %v, %v", d, ok)
	}
	if !errors.Is(err, base) {
		t.Fatal("After broke the error chain")
	}
	if err.Error() != base.Error() {
		t.Fatalf("After changed the message: %q", err.Error())
	}
	// The hint survives further wrapping.
	if d, ok := AfterHint(Permanent(err)); !ok || d != 3*time.Second {
		t.Fatalf("wrapped hint = %v, %v", d, ok)
	}
	if d, _ := AfterHint(After(base, time.Hour)); d != MaxAfterHint {
		t.Fatalf("uncapped hint = %v", d)
	}
	if d, _ := AfterHint(After(base, -time.Second)); d != 0 {
		t.Fatalf("negative hint = %v", d)
	}
	if After(nil, time.Second) != nil {
		t.Fatal("After(nil) != nil")
	}
}

// TestDoHonorsAfterHint: when an attempt's error carries a hint, the next
// sleep is exactly the hint; attempts without one fall back to the
// jittered schedule.
func TestDoHonorsAfterHint(t *testing.T) {
	var waits []time.Duration
	p := Policy{
		Base:        time.Millisecond,
		MaxAttempts: 4,
		Sleep: func(_ context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}
	attempt := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempt++
		switch attempt {
		case 1:
			return After(errors.New("429"), 5*time.Second)
		case 2:
			return errors.New("transient") // no hint: jittered wait
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(waits) != 2 || waits[0] != 5*time.Second {
		t.Fatalf("waits = %v, want [5s, <=2ms]", waits)
	}
	if waits[1] > 2*time.Millisecond {
		t.Fatalf("hintless wait %v escaped the jittered schedule", waits[1])
	}
}
