// Package retry implements jittered exponential backoff for the repo's
// HTTP clients (tabled.Client, the wbcvolunteer loop). It exists because a
// fault-tolerant server is only half of an available system: the paper's
// extendible tables promise that growth never invalidates a client's view,
// so a transient transport error or a 503 from a draining/degraded server
// should be retried, not surfaced — while real rejections (4xx, bans) must
// fail immediately.
//
// The policy is full jitter over a doubling cap, the scheme that avoids
// retry synchronization between clients recovering from the same outage:
// attempt k sleeps Uniform[0, min(Base·2^k, Max)]. Every wait honors the
// context, and two independent caps bound the total effort: MaxAttempts
// and MaxElapsed.
//
// # Classifying failures
//
// Do retries every error except one wrapped by Permanent, which callers
// use to mark rejections that retrying cannot fix — 4xx statuses, frame
// encoding errors, bans. The callers pair retries with request-level
// idempotency (tabled's Idempotency-Key header), so a retried request
// whose original acknowledgment was lost is answered from the server's
// replay cache rather than applied twice; retrying is safe on both the
// JSON and binary /v1/batch wires (docs/WIRE.md) for exactly that reason.
package retry
