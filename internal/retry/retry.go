package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy configures Do. The zero value of any field selects its default;
// Policy{} is a usable conservative policy.
type Policy struct {
	// Base is the backoff scale: attempt k (0-based) may wait up to
	// Base·2^k. Default 50ms.
	Base time.Duration
	// Max caps a single wait. Default 2s.
	Max time.Duration
	// MaxAttempts caps how many times fn runs. Default 5; negative means
	// unlimited (bounded by MaxElapsed or the context).
	MaxAttempts int
	// MaxElapsed, when positive, stops retrying once the total time since
	// Do began exceeds it. The in-flight attempt is not interrupted (use
	// the context for that).
	MaxElapsed time.Duration
	// Rand supplies jitter; nil uses a private, locked global source.
	// Tests inject a seeded source for determinism.
	Rand *rand.Rand
	// Sleep replaces the actual waiting (tests measure instead of sleep).
	// Nil uses a context-aware timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// MaxAfterHint caps how long a server-supplied After hint can park the
// retry loop: a buggy or hostile Retry-After of an hour must not turn a
// bounded client call into one.
const MaxAfterHint = 30 * time.Second

// After wraps err with a server-supplied backoff hint — typically a 429's
// Retry-After header. Do's next wait uses the hint (capped at MaxAfterHint)
// instead of the jittered exponential schedule: the server just told the
// client exactly when retrying can succeed, so guessing earlier only burns
// an attempt and guessing later wastes latency. The error remains
// retryable; combine with Permanent only if retrying is also pointless.
func After(err error, d time.Duration) error {
	if err == nil {
		return nil
	}
	if d < 0 {
		d = 0
	}
	if d > MaxAfterHint {
		d = MaxAfterHint
	}
	return &afterError{err: err, d: d}
}

type afterError struct {
	err error
	d   time.Duration
}

func (a *afterError) Error() string { return a.err.Error() }
func (a *afterError) Unwrap() error { return a.err }

// AfterHint extracts the wait hint attached by After, if any.
func AfterHint(err error) (time.Duration, bool) {
	var a *afterError
	if errors.As(err, &a) {
		return a.d, true
	}
	return 0, false
}

// Permanent wraps err to tell Do that retrying cannot help (a 4xx, a ban,
// a validation failure). Do returns the unwrapped error immediately.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// globalRand is the default jitter source, locked because Policy values
// are shared across client goroutines.
var globalRand = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

func (p Policy) jitter(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if p.Rand != nil {
		return p.Rand.Int63n(n)
	}
	globalRand.Lock()
	defer globalRand.Unlock()
	return globalRand.r.Int63n(n)
}

func (p Policy) base() time.Duration {
	if p.Base > 0 {
		return p.Base
	}
	return 50 * time.Millisecond
}

func (p Policy) max() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	return 2 * time.Second
}

func (p Policy) attempts() int {
	switch {
	case p.MaxAttempts > 0:
		return p.MaxAttempts
	case p.MaxAttempts < 0:
		return int(^uint(0) >> 1) // effectively unlimited
	}
	return 5
}

// Wait returns the jittered backoff before retry number attempt (0-based):
// Uniform[0, min(Base·2^attempt, Max)]. Exposed so callers that own their
// loop (e.g. a poller) can reuse the schedule.
func (p Policy) Wait(attempt int) time.Duration {
	d := p.base()
	max := p.max()
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(p.jitter(int64(d)))
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		// Still yield to cancellation between attempts.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn until it returns nil, a Permanent error, the context ends, or
// a cap (MaxAttempts, MaxElapsed) is exhausted. The returned error is the
// last attempt's error, unwrapped from any Permanent marker; a context end
// during backoff returns the context error wrapped around the last
// attempt's error so callers see both.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	start := time.Now()
	var last error
	for attempt := 0; attempt < p.attempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return errors.Join(err, last)
			}
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if attempt+1 >= p.attempts() {
			break
		}
		if p.MaxElapsed > 0 && time.Since(start) >= p.MaxElapsed {
			break
		}
		wait := p.Wait(attempt)
		if hint, ok := AfterHint(err); ok {
			// The server named its own earliest-useful retry time; honor it
			// verbatim (After already capped it), jitter and all.
			wait = hint
		}
		if serr := p.sleep(ctx, wait); serr != nil {
			return errors.Join(serr, last)
		}
	}
	return last
}
