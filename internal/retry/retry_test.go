package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// fakeSleep records requested waits without sleeping.
type fakeSleep struct{ waits []time.Duration }

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.waits = append(f.waits, d)
	return ctx.Err()
}

func TestDoSucceedsAfterTransientErrors(t *testing.T) {
	fs := &fakeSleep{}
	p := Policy{MaxAttempts: 5, Sleep: fs.sleep, Rand: rand.New(rand.NewSource(1))}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
	if len(fs.waits) != 2 {
		t.Fatalf("slept %d times, want 2", len(fs.waits))
	}
}

func TestDoMaxAttempts(t *testing.T) {
	fs := &fakeSleep{}
	p := Policy{MaxAttempts: 4, Sleep: fs.sleep, Rand: rand.New(rand.NewSource(1))}
	boom := errors.New("always fails")
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want last error", err)
	}
	if calls != 4 {
		t.Fatalf("fn ran %d times, want 4", calls)
	}
	if len(fs.waits) != 3 {
		t.Fatalf("slept %d times, want 3 (no sleep after the final attempt)", len(fs.waits))
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	fs := &fakeSleep{}
	p := Policy{MaxAttempts: 5, Sleep: fs.sleep}
	boom := errors.New("bad request")
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("wrapping: %w", boom))
	})
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want unwrapped permanent cause", err)
	}
	if IsPermanent(err) {
		t.Fatal("returned error should be unwrapped from the Permanent marker")
	}
	if len(fs.waits) != 0 {
		t.Fatal("slept after a permanent error")
	}
}

// TestJitterBounds verifies the full-jitter contract: every wait for
// attempt k lies in [0, min(Base·2^k, Max)), over many seeds.
func TestJitterBounds(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Rand: rand.New(rand.NewSource(42))}
	for attempt := 0; attempt < 8; attempt++ {
		cap := 10 * time.Millisecond << attempt
		if cap > 80*time.Millisecond {
			cap = 80 * time.Millisecond
		}
		for i := 0; i < 1000; i++ {
			w := p.Wait(attempt)
			if w < 0 || w >= cap {
				t.Fatalf("attempt %d: wait %v outside [0, %v)", attempt, w, cap)
			}
		}
	}
}

// TestJitterSpread guards against a degenerate jitter source: waits for
// one attempt must not all collapse to a single value.
func TestJitterSpread(t *testing.T) {
	p := Policy{Base: time.Second, Rand: rand.New(rand.NewSource(7))}
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		seen[p.Wait(0)] = true
	}
	if len(seen) < 50 {
		t.Fatalf("only %d distinct waits in 100 draws", len(seen))
	}
}

func TestDoContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("transient")
	p := Policy{
		MaxAttempts: 10,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel() // the deadline fires while we are backing off
			return ctx.Err()
		},
	}
	err := p.Do(ctx, func(context.Context) error { return boom })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled in the chain", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want the last attempt error in the chain", err)
	}
}

func TestDoContextAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	p := Policy{Sleep: (&fakeSleep{}).sleep}
	err := p.Do(ctx, func(context.Context) error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("fn ran %d times on a dead context", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

// TestDoDeadline verifies the wall-clock path end to end: with a real
// context deadline shorter than the retry schedule, Do returns promptly
// with DeadlineExceeded rather than exhausting attempts.
func TestDoDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	boom := errors.New("transient")
	p := Policy{Base: 20 * time.Millisecond, Max: 20 * time.Millisecond, MaxAttempts: -1}
	start := time.Now()
	err := p.Do(ctx, func(context.Context) error { return boom })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Do took %v after a 30ms deadline", elapsed)
	}
}

func TestDoMaxElapsed(t *testing.T) {
	fs := &fakeSleep{}
	p := Policy{MaxAttempts: -1, MaxElapsed: time.Nanosecond, Sleep: fs.sleep}
	boom := errors.New("transient")
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		time.Sleep(time.Millisecond) // push past MaxElapsed
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1 (MaxElapsed exhausted)", calls)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) should be nil")
	}
	if IsPermanent(nil) {
		t.Fatal("IsPermanent(nil) should be false")
	}
}
