// Package spread measures the compactness of storage mappings via the
// spread function of eq. 3.1:
//
//	S_A(n) = max{ A(x, y) : xy ≤ n },
//
// the largest address the mapping A assigns to any position of an
// array/table with n or fewer positions. The domain of the maximum — the
// integer lattice points under the hyperbola xy = n — is the union of the
// positions of all arrays with ≤ n positions (Fig. 5) and has cardinality
// D(n) = Θ(n log n), which is why no PF has worst-case spread below
// Ω(n log n) and why the hyperbolic PF's S_ℋ(n) = D(n) is optimal (§3.2.3).
//
// The package provides the lattice enumeration (HyperbolaPoints,
// RegionSize), the measurement itself (Measure, MeasureConforming,
// WorstShape, Curve), a parallel measurement engine (Engine, with the
// context-free conveniences MeasureParallel, CurveParallel,
// MeasureConformingParallel) and asymptotic-fit helpers (FitNLogN,
// FitQuadratic, FitGrowth).
//
// # The parallel engine
//
// Engine partitions the region into contiguous x-stripes of near-equal
// lattice-point count — stripe boundaries are found by inverting the
// row-prefix function numtheory.PartialHyperbolaSum, so the heavy small-x
// rows do not pile onto one worker — and fans the stripes out over a
// bounded pool (Workers, default GOMAXPROCS) with oversubscription for
// scheduling slack. Stripe maxima merge in ascending-x order under a
// strict maximum, making the result (argmax included) bit-identical to
// the serial Measure. Engine.Measure honors context cancellation and
// deadlines, propagates the first Encode error, and optionally reports a
// points-scanned counter and a stripe-latency histogram through
// internal/obs (EngineMetrics).
//
// # Overflow and concurrency
//
// All lattice arithmetic is exact int64; Measure propagates the measured
// mapping's ErrOverflow rather than clamping, so a reported spread is
// always an exactly attained address, and MeasureConforming computes its
// loop bound a·b·k² with checked arithmetic, returning
// numtheory.ErrOverflow instead of silently wrapping. Every function is
// pure and safe for concurrent use; the Engine additionally shards work
// across goroutines internally and is itself safe to use concurrently.
// The measured mapping must therefore be safe for concurrent Encode —
// every mapping in this repository is.
package spread
