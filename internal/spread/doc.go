// Package spread measures the compactness of storage mappings via the
// spread function of eq. 3.1:
//
//	S_A(n) = max{ A(x, y) : xy ≤ n },
//
// the largest address the mapping A assigns to any position of an
// array/table with n or fewer positions. The domain of the maximum — the
// integer lattice points under the hyperbola xy = n — is the union of the
// positions of all arrays with ≤ n positions (Fig. 5) and has cardinality
// D(n) = Θ(n log n), which is why no PF has worst-case spread below
// Ω(n log n) and why the hyperbolic PF's S_ℋ(n) = D(n) is optimal (§3.2.3).
//
// The package provides the lattice enumeration (HyperbolaPoints,
// RegionSize), the measurement itself (Measure, MeasureParallel,
// MeasureConforming, WorstShape, Curve) and asymptotic-fit helpers
// (FitNLogN, FitQuadratic).
//
// # Overflow and concurrency
//
// All lattice arithmetic is exact int64; Measure propagates the measured
// mapping's ErrOverflow rather than clamping, so a reported spread is
// always an exactly attained address. Every function is pure and safe for
// concurrent use; MeasureParallel additionally shards the lattice across
// worker goroutines internally and is itself safe to call concurrently.
package spread
