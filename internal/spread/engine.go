package spread

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/numtheory"
	"pairfn/internal/obs"
)

// stripesPerWorker oversubscribes the stripe count relative to the worker
// pool so a worker that drew a cheap stripe (large x, short rows) can steal
// more work instead of idling behind the worker holding row 1.
const stripesPerWorker = 4

// ctxPollInterval is how many lattice points a worker scans between
// context polls — small enough that cancellation/timeout latency is
// microseconds even for cheap mappings, large enough that ctx.Err()'s
// mutex never shows up in profiles.
const ctxPollInterval = 1 << 12

// EngineMetrics is the engine's observability hook, wired from an
// obs.Registry. Every field is optional: a nil *EngineMetrics or nil
// fields disable instrumentation with zero overhead beyond a nil check,
// thanks to obs's nil-receiver no-ops.
type EngineMetrics struct {
	// Measurements counts Engine.Measure / MeasureConforming calls
	// (spread_measurements_total).
	Measurements *obs.Counter
	// Points counts lattice points scanned, flushed once per stripe
	// (spread_points_scanned_total). A complete Measure(n) adds exactly
	// D(n): the stripes tile the region.
	Points *obs.Counter
	// Stripes counts stripes handed to workers (spread_stripes_total).
	Stripes *obs.Counter
	// StripeSeconds is the per-stripe wall-clock latency histogram
	// (spread_stripe_duration_seconds) — the balance check: with
	// count-balanced stripes the spread of this distribution stays narrow.
	StripeSeconds *obs.Histogram
}

// NewEngineMetrics registers the engine's metric families on r and returns
// the wired set. On a nil registry every metric is nil, i.e. a no-op.
func NewEngineMetrics(r *obs.Registry) *EngineMetrics {
	r.Help("spread_measurements_total", "Spread measurements started (Measure and MeasureConforming).")
	r.Help("spread_points_scanned_total", "Lattice points scanned by spread-measurement workers.")
	r.Help("spread_stripes_total", "Region stripes dispatched to spread-measurement workers.")
	r.Help("spread_stripe_duration_seconds", "Wall-clock latency of one region stripe scan.")
	return &EngineMetrics{
		Measurements:  r.Counter("spread_measurements_total"),
		Points:        r.Counter("spread_points_scanned_total"),
		Stripes:       r.Counter("spread_stripes_total"),
		StripeSeconds: r.Histogram("spread_stripe_duration_seconds", obs.DefDurationBuckets),
	}
}

// Nil-receiver accessors so Engine code can instrument unconditionally.
func (m *EngineMetrics) measurements() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Measurements
}

func (m *EngineMetrics) points() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Points
}

func (m *EngineMetrics) stripes() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Stripes
}

func (m *EngineMetrics) stripeSeconds() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.StripeSeconds
}

// An Engine measures spread functions in parallel: it partitions the
// lattice region into contiguous x-stripes balanced by lattice-point count
// (sized with the divisor summatory function, eq. 3.1's own combinatorics)
// and fans the stripes out over a bounded worker pool.
//
// Results are bit-identical to the serial functions, argmax included:
// stripes are merged in ascending-x order under a strict maximum, which
// reproduces Measure's row-major "first position attaining the maximum"
// tie-breaking exactly. The measured mapping must be safe for concurrent
// Encode (every mapping in this repository is; CachedHyperbolic
// synchronizes its table build internally).
//
// The zero value is ready to use: GOMAXPROCS workers, no instrumentation.
// An Engine is immutable after construction and safe for concurrent use.
type Engine struct {
	// Workers bounds the worker pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives points-scanned counts and
	// stripe-latency observations (see NewEngineMetrics).
	Metrics *EngineMetrics
}

// stripe is an inclusive contiguous row range [lo, hi] of the region.
type stripe struct{ lo, hi int64 }

// partial is one stripe's result: its local maximum and the row-major
// first position attaining it, or the error that stopped the scan.
type partial struct {
	s   int64
	at  Point
	err error
}

// Measure returns S_A(n) and its argmax like Measure, sharded over the
// worker pool. It honors ctx: cancellation or deadline expiry stops all
// workers within ctxPollInterval points and returns the context's error.
// The first Encode error (lowest stripe) cancels the remaining work and is
// propagated.
func (e *Engine) Measure(ctx context.Context, f core.StorageMapping, n int64) (int64, Point, error) {
	if n < 1 {
		return 0, Point{}, fmt.Errorf("spread: n = %d < 1", n)
	}
	e.Metrics.measurements().Inc()
	workers := e.workerCount(n)
	stripes := hyperbolaStripes(n, workers*stripesPerWorker)
	partials := e.scan(ctx, workers, stripes, f, func(x int64) int64 { return n / x })
	return e.finish(ctx, f, partials)
}

// Curve returns S_A(n) for each n in ns, each measured in parallel.
func (e *Engine) Curve(ctx context.Context, f core.StorageMapping, ns []int64) ([]int64, error) {
	out := make([]int64, len(ns))
	for i, n := range ns {
		s, _, err := e.Measure(ctx, f, n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// MeasureConforming returns the eq. 3.2 restricted spread like
// MeasureConforming, sharded over the worker pool. The conforming
// rectangles are nested (the ak×bk rectangle contains every smaller one),
// so scanning the largest — partitioned into row stripes of equal point
// count — visits every position the serial loop visits at least once and
// yields the identical maximum.
func (e *Engine) MeasureConforming(ctx context.Context, f core.StorageMapping, a, b, n int64) (int64, error) {
	if a < 1 || b < 1 || n < 1 {
		return 0, fmt.Errorf("spread: MeasureConforming domain error (a=%d b=%d n=%d)", a, b, n)
	}
	e.Metrics.measurements().Inc()
	kmax, err := conformingScale(a, b, n)
	if err != nil {
		return 0, err
	}
	if kmax == 0 {
		return 0, nil
	}
	rows, cols := a*kmax, b*kmax // ≤ a·b·kmax² ≤ n: no overflow possible
	workers := e.workerCount(rows)
	stripes := rectStripes(rows, workers*stripesPerWorker)
	partials := e.scan(ctx, workers, stripes, f, func(int64) int64 { return cols })
	s, _, err := e.finish(ctx, f, partials)
	return s, err
}

// workerCount resolves the pool size for a region with the given number of
// rows.
func (e *Engine) workerCount(rows int64) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if int64(w) > rows {
		w = int(rows)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scan fans the stripes out over the pool and returns one partial per
// stripe, index-aligned. Encode errors cancel the remaining stripes.
func (e *Engine) scan(ctx context.Context, workers int, stripes []stripe, f core.StorageMapping, width func(int64) int64) []partial {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > len(stripes) {
		workers = len(stripes)
	}
	partials := make([]partial, len(stripes))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				partials[idx] = e.scanStripe(ctx, cancel, stripes[idx], f, width)
			}
		}()
	}
	for idx := range stripes {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return partials
}

// scanStripe scans one stripe row-major, polling ctx every ctxPollInterval
// points. On an Encode error it cancels the whole scan and records the
// failing position.
func (e *Engine) scanStripe(ctx context.Context, cancel context.CancelFunc, st stripe, f core.StorageMapping, width func(int64) int64) (p partial) {
	start := time.Now()
	var scanned, sincePoll int64
	defer func() {
		e.Metrics.points().Add(scanned)
		e.Metrics.stripes().Inc()
		e.Metrics.stripeSeconds().Observe(time.Since(start).Seconds())
	}()
	if err := ctx.Err(); err != nil {
		return partial{err: err}
	}
	var best int64
	var at Point
	for x := st.lo; x <= st.hi; x++ {
		w := width(x)
		for y := int64(1); y <= w; y++ {
			if sincePoll++; sincePoll >= ctxPollInterval {
				sincePoll = 0
				if err := ctx.Err(); err != nil {
					return partial{err: err}
				}
			}
			z, err := f.Encode(x, y)
			if err != nil {
				cancel()
				return partial{err: fmt.Errorf("spread: %s(%d, %d): %w", f.Name(), x, y, err)}
			}
			if z > best {
				best, at = z, Point{X: x, Y: y}
			}
			scanned++
		}
	}
	return partial{s: best, at: at}
}

// finish merges per-stripe partials deterministically: the first Encode
// error in ascending stripe order wins; otherwise cancellation surfaces
// the context error; otherwise maxima merge under strict >, matching the
// serial row-major argmax bit for bit.
func (e *Engine) finish(ctx context.Context, f core.StorageMapping, partials []partial) (int64, Point, error) {
	canceled := false
	for _, p := range partials {
		if p.err == nil {
			continue
		}
		if errors.Is(p.err, context.Canceled) || errors.Is(p.err, context.DeadlineExceeded) {
			canceled = true
			continue
		}
		return 0, Point{}, p.err
	}
	if canceled || ctx.Err() != nil {
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		return 0, Point{}, fmt.Errorf("spread: %s: %w", f.Name(), err)
	}
	var s int64
	var at Point
	for _, p := range partials {
		if p.s > s {
			s, at = p.s, p.at
		}
	}
	return s, at, nil
}

// hyperbolaStripes partitions rows 1..n of the hyperbola region into at
// most k contiguous stripes of near-equal lattice-point count: stripe s
// ends at the smallest row t whose row-prefix count PartialHyperbolaSum(n,
// t) reaches s/k of D(n). Row 1 alone holds n of the D(n) ≈ n ln n points,
// so the first stripe is inherently heavier once k exceeds ln n — the
// stripe oversubscription (stripesPerWorker) absorbs that imbalance at the
// scheduling level.
//
// The stripes always tile [1, n] exactly, in ascending order, regardless
// of how lopsided the counts are.
func hyperbolaStripes(n int64, k int) []stripe {
	if k < 1 {
		k = 1
	}
	if int64(k) > n {
		k = int(n)
	}
	total := numtheory.DivisorSummatory(n)
	out := make([]stripe, 0, k)
	lo := int64(1)
	for s := 1; s <= k && lo <= n; s++ {
		hi := n
		if s < k {
			// Cumulative target ⌊total·s/k⌋ without overflowing total·s.
			kk, ss := int64(k), int64(s)
			tgt := total/kk*ss + total%kk*ss/kk
			off := sort.Search(int(n-lo+1), func(i int) bool {
				return numtheory.PartialHyperbolaSum(n, lo+int64(i)) >= tgt
			})
			hi = lo + int64(off)
			if hi > n {
				hi = n
			}
		}
		out = append(out, stripe{lo: lo, hi: hi})
		lo = hi + 1
	}
	return out
}

// rectStripes partitions rows 1..rows of a rectangle (uniform row width)
// into at most k contiguous stripes of near-equal row count.
func rectStripes(rows int64, k int) []stripe {
	if k < 1 {
		k = 1
	}
	if int64(k) > rows {
		k = int(rows)
	}
	out := make([]stripe, 0, k)
	lo := int64(1)
	for s := 1; s <= k && lo <= rows; s++ {
		// ⌊rows·s/k⌋ without overflowing rows·s (rows may be near 2^57).
		kk, ss := int64(k), int64(s)
		hi := rows/kk*ss + rows%kk*ss/kk
		if hi < lo {
			hi = lo
		}
		out = append(out, stripe{lo: lo, hi: hi})
		lo = hi + 1
	}
	return out
}

// conformingScale returns the largest k ≥ 0 with a·b·k² ≤ n, computing the
// bound with checked arithmetic: when a·b itself exceeds int64 the bound
// is not representable and ErrOverflow is returned (before this check the
// product wrapped negative and the eq. 3.2 loop scanned garbage
// rectangles). For representable a·b the exact answer is ⌊√⌊n/ab⌋⌋ —
// ab·k² ≤ ab·⌊n/ab⌋ ≤ n, while (k+1)² > ⌊n/ab⌋ forces ab·(k+1)² > n — so
// every later multiplication is bounded by n and cannot overflow.
func conformingScale(a, b, n int64) (int64, error) {
	ab, err := numtheory.MulCheck(a, b)
	if err != nil {
		return 0, fmt.Errorf("spread: conforming bound a·b (a=%d b=%d): %w", a, b, err)
	}
	if ab > n {
		return 0, nil
	}
	return numtheory.Isqrt(n / ab), nil
}
