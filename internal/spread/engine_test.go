package spread

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/obs"
)

// engineTestMappings is the PF panel the equivalence tests sweep:
// quadratic, optimal, locality-oriented and injective-only mappings.
func engineTestMappings() []core.StorageMapping {
	return []core.StorageMapping{
		core.Diagonal{},
		core.SquareShell{},
		core.Morton{},
		core.NewCachedHyperbolic(2048),
		core.MustAspect(2, 3),
		core.MustDovetail(core.MustAspect(1, 1), core.MustAspect(1, 2)),
	}
}

// TestEngineMatchesSerialQuick is the parallel-vs-serial equivalence
// property test: for random n and worker counts, Engine.Measure must be
// bit-identical to Measure — spread and argmax both.
func TestEngineMatchesSerialQuick(t *testing.T) {
	mappings := engineTestMappings()
	prop := func(rawN uint16, rawW uint8, rawF uint8) bool {
		n := int64(rawN)%2048 + 1
		workers := int(rawW)%9 + 1
		f := mappings[int(rawF)%len(mappings)]
		wantS, wantAt, wantErr := Measure(f, n)
		if wantErr != nil {
			t.Fatalf("serial Measure(%s, %d): %v", f.Name(), n, wantErr)
		}
		e := &Engine{Workers: workers}
		s, at, err := e.Measure(context.Background(), f, n)
		if err != nil {
			t.Logf("engine Measure(%s, %d, %d workers): %v", f.Name(), n, workers, err)
			return false
		}
		if s != wantS || at != wantAt {
			t.Logf("%s n=%d workers=%d: engine (%d, %+v) vs serial (%d, %+v)",
				f.Name(), n, workers, s, at, wantS, wantAt)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEngineConformingMatchesSerial checks Engine.MeasureConforming and
// MeasureConformingParallel against the serial eq. 3.2 loop.
func TestEngineConformingMatchesSerial(t *testing.T) {
	for _, r := range [][2]int64{{1, 1}, {1, 2}, {3, 2}} {
		a, b := r[0], r[1]
		f := core.MustAspect(a, b)
		for _, n := range []int64{1, 10, 100, 1000, 4096} {
			want, err := MeasureConforming(f, a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 3, 7} {
				got, err := MeasureConformingParallel(f, a, b, n, workers)
				if err != nil {
					t.Fatalf("⟨%d,%d⟩ n=%d workers=%d: %v", a, b, n, workers, err)
				}
				if got != want {
					t.Fatalf("⟨%d,%d⟩ n=%d workers=%d: parallel %d, serial %d",
						a, b, n, workers, got, want)
				}
			}
		}
	}
}

// TestCurveParallelMatchesSerial checks the sweep helper.
func TestCurveParallelMatchesSerial(t *testing.T) {
	ns := []int64{4, 16, 64, 256, 1024}
	want, err := Curve(core.Diagonal{}, ns)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CurveParallel(core.Diagonal{}, ns, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if got[i] != want[i] {
			t.Fatalf("CurveParallel[%d] = %d, serial %d", i, got[i], want[i])
		}
	}
}

// slowPF is a stub mapping whose Encode sleeps, making timeouts
// deterministic to provoke.
type slowPF struct{ d time.Duration }

func (slowPF) Name() string { return "slow-stub" }

func (p slowPF) Encode(x, y int64) (int64, error) {
	time.Sleep(p.d)
	return (x+y-2)*(x+y-1)/2 + x, nil // Cantor-style: injective enough
}

func (slowPF) Decode(z int64) (int64, int64, error) { return 1, z, nil }

// TestEngineCancellation: a pre-canceled context fails immediately; a
// deadline on a slow mapping stops the scan early with DeadlineExceeded.
func TestEngineCancellation(t *testing.T) {
	e := &Engine{Workers: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.Measure(ctx, core.Diagonal{}, 4096); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}

	// n = 4096 at 200µs per encode would take ~minutes serially; the
	// deadline must cut it off within the poll interval.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, _, err := e.Measure(ctx2, slowPF{d: 200 * time.Microsecond}, 4096)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline honored after %v, want prompt stop", elapsed)
	}
}

// TestEngineErrorPropagation: the first Encode error cancels the scan and
// surfaces, exactly as in the serial path.
func TestEngineErrorPropagation(t *testing.T) {
	e := &Engine{Workers: 4}
	_, _, err := e.Measure(context.Background(), core.RowMajor{Width: 2}, 4096)
	if err == nil {
		t.Fatal("partial mapping should surface the worker error")
	}
	if !errors.Is(err, core.ErrDomain) {
		t.Errorf("err = %v, want wrapped core.ErrDomain", err)
	}
	if _, _, err := e.Measure(context.Background(), core.Diagonal{}, 0); err == nil {
		t.Error("n = 0 should fail")
	}
	if _, err := e.MeasureConforming(context.Background(), core.Diagonal{}, 0, 1, 10); err == nil {
		t.Error("MeasureConforming domain error expected")
	}
}

// TestEngineMetrics: a wired engine reports exactly D(n) scanned points
// (the stripes tile the region), one measurement, and one latency
// observation per dispatched stripe.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewEngineMetrics(reg)
	e := &Engine{Workers: 4, Metrics: m}
	const n = 512
	if _, _, err := e.Measure(context.Background(), core.SquareShell{}, n); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Points.Value(), RegionSize(n); got != want {
		t.Errorf("points scanned = %d, want D(%d) = %d", got, n, want)
	}
	if got := m.Measurements.Value(); got != 1 {
		t.Errorf("measurements = %d, want 1", got)
	}
	stripes := m.Stripes.Value()
	if stripes < 1 || stripes > 4*stripesPerWorker {
		t.Errorf("stripes = %d, want within [1, %d]", stripes, 4*stripesPerWorker)
	}
	if got := m.StripeSeconds.Count(); got != stripes {
		t.Errorf("stripe latency observations = %d, want %d", got, stripes)
	}
	// A nil-metrics engine and a nil-registry wiring are both no-ops.
	if nm := NewEngineMetrics(nil); nm.Points != nil || nm.StripeSeconds != nil {
		t.Error("NewEngineMetrics(nil) should return nil metrics")
	}
	if _, _, err := (&Engine{}).Measure(context.Background(), core.SquareShell{}, 64); err != nil {
		t.Errorf("uninstrumented engine: %v", err)
	}
}

// TestHyperbolaStripes: the stripes tile [1, n] exactly, ascending, for
// all shapes of n vs stripe count, and their point counts sum to D(n).
func TestHyperbolaStripes(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 7, 16, 100, 1000, 4096} {
		for _, k := range []int{1, 2, 3, 8, 64, 5000} {
			st := hyperbolaStripes(n, k)
			if len(st) == 0 {
				t.Fatalf("n=%d k=%d: no stripes", n, k)
			}
			if int64(len(st)) > n || len(st) > k {
				t.Fatalf("n=%d k=%d: %d stripes", n, k, len(st))
			}
			next := int64(1)
			var points int64
			for _, s := range st {
				if s.lo != next || s.hi < s.lo || s.hi > n {
					t.Fatalf("n=%d k=%d: bad stripe %+v (expected lo=%d)", n, k, s, next)
				}
				for x := s.lo; x <= s.hi; x++ {
					points += n / x
				}
				next = s.hi + 1
			}
			if next != n+1 {
				t.Fatalf("n=%d k=%d: stripes end at %d, want %d", n, k, next-1, n)
			}
			if want := RegionSize(n); points != want {
				t.Fatalf("n=%d k=%d: stripes hold %d points, want D(n) = %d", n, k, points, want)
			}
		}
	}
}

// TestHyperbolaStripesBalance: away from the inherently heavy first rows,
// the count-balanced partition keeps every stripe within a small factor of
// the ideal D(n)/k share.
func TestHyperbolaStripesBalance(t *testing.T) {
	const n, k = 1 << 14, 8
	st := hyperbolaStripes(n, k)
	ideal := RegionSize(n) / k
	for i, s := range st {
		var points int64
		for x := s.lo; x <= s.hi; x++ {
			points += n / x
		}
		// The stripe containing row 1 cannot go below row 1's n points;
		// all others must sit near the ideal share.
		limit := 2*ideal + n
		if points > limit {
			t.Errorf("stripe %d (%+v) holds %d points, ideal %d", i, s, points, ideal)
		}
	}
}

// TestRectStripes: same tiling contract for the uniform-width partition.
func TestRectStripes(t *testing.T) {
	for _, rows := range []int64{1, 2, 5, 64, 1000} {
		for _, k := range []int{1, 3, 64, 2000} {
			st := rectStripes(rows, k)
			next := int64(1)
			for _, s := range st {
				if s.lo != next || s.hi < s.lo || s.hi > rows {
					t.Fatalf("rows=%d k=%d: bad stripe %+v", rows, k, s)
				}
				next = s.hi + 1
			}
			if next != rows+1 {
				t.Fatalf("rows=%d k=%d: stripes end at %d", rows, k, next-1)
			}
		}
	}
}
