package spread_test

import (
	"fmt"

	"pairfn/internal/core"
	"pairfn/internal/spread"
)

func ExampleMeasure() {
	// S_𝒟(16): the worst ≤16-position array under the diagonal PF is the
	// 1×16 row, spread over (16²+16)/2 addresses (§3.2).
	s, at, _ := spread.Measure(core.Diagonal{}, 16)
	fmt.Println(s, at.X, at.Y)
	// Output: 136 1 16
}

func ExampleRegionSize() {
	// Fig. 5's region: lattice points under xy ≤ 16.
	fmt.Println(spread.RegionSize(16))
	// Output: 50
}
