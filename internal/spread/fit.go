package spread

import (
	"fmt"
	"math"
)

// GrowthFit is the least-squares fit of S(n) ≈ C·n^Alpha on a log-log
// scale: Alpha is the estimated growth exponent, C the scale, and R2 the
// coefficient of determination of the fit in log space.
//
// It turns the paper's asymptotic statements into measurable numbers:
// quadratic mappings fit Alpha ≈ 2, the hyperbolic PF fits Alpha ≈ 1 plus
// the log factor (which shows up as Alpha slightly above 1 over finite
// ranges; see FitNLogN for the direct Θ(n log n) normalization).
type GrowthFit struct {
	Alpha float64
	C     float64
	R2    float64
}

// FitGrowth fits S(n) = C·n^Alpha by linear regression of log S on log n.
// It needs at least two samples with n ≥ 2 and S ≥ 1.
func FitGrowth(ns, ss []int64) (GrowthFit, error) {
	if len(ns) != len(ss) {
		return GrowthFit{}, fmt.Errorf("spread: FitGrowth: %d ns vs %d ss", len(ns), len(ss))
	}
	var xs, ys []float64
	for i := range ns {
		if ns[i] < 2 || ss[i] < 1 {
			continue
		}
		xs = append(xs, math.Log(float64(ns[i])))
		ys = append(ys, math.Log(float64(ss[i])))
	}
	if len(xs) < 2 {
		return GrowthFit{}, fmt.Errorf("spread: FitGrowth: need ≥ 2 usable samples, have %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return GrowthFit{}, fmt.Errorf("spread: FitGrowth: degenerate sample (all n equal)")
	}
	alpha := (n*sxy - sx*sy) / den
	b := (sy - alpha*sx) / n
	// R² in log space.
	mean := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := alpha*xs[i] + b
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - mean) * (ys[i] - mean)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return GrowthFit{Alpha: alpha, C: math.Exp(b), R2: r2}, nil
}

// String renders the fit.
func (g GrowthFit) String() string {
	return fmt.Sprintf("S(n) ≈ %.3g·n^%.3f (R²=%.4f)", g.C, g.Alpha, g.R2)
}
