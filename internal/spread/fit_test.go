package spread

import (
	"math"
	"testing"

	"pairfn/internal/core"
)

func TestFitGrowthExact(t *testing.T) {
	// S = 3n²: exact power law must be recovered.
	ns := []int64{4, 8, 16, 32, 64}
	ss := make([]int64, len(ns))
	for i, n := range ns {
		ss[i] = 3 * n * n
	}
	fit, err := FitGrowth(ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2) > 1e-9 || math.Abs(fit.C-3) > 1e-6 || fit.R2 < 0.999999 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestFitGrowthErrors(t *testing.T) {
	if _, err := FitGrowth([]int64{1, 2}, []int64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitGrowth([]int64{1, 1}, []int64{1, 1}); err == nil {
		t.Error("unusable samples should fail")
	}
	if _, err := FitGrowth([]int64{5, 5, 5}, []int64{2, 2, 2}); err == nil {
		t.Error("degenerate n should fail")
	}
}

// TestMeasuredGrowthExponents is the quantitative §3.2 summary: fitted
// exponents of the measured spread curves. 𝒟 and 𝒜₁,₁ fit α ≈ 2; ℋ fits
// α ≈ 1.1–1.3 over this range (n^1·log n masquerades as a small
// super-linear power on finite data).
func TestMeasuredGrowthExponents(t *testing.T) {
	ns := []int64{1 << 6, 1 << 8, 1 << 10, 1 << 12}
	cases := []struct {
		f        core.StorageMapping
		lo, hi   float64
		minwellR float64
	}{
		{core.Diagonal{}, 1.95, 2.05, 0.999},
		{core.SquareShell{}, 1.95, 2.05, 0.999},
		{core.NewCachedHyperbolic(1 << 12), 1.0, 1.35, 0.99},
	}
	for _, c := range cases {
		ss, err := Curve(c.f, ns)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := FitGrowth(ns, ss)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Alpha < c.lo || fit.Alpha > c.hi {
			t.Errorf("%s: α = %.3f outside [%.2f, %.2f] (%s)",
				c.f.Name(), fit.Alpha, c.lo, c.hi, fit)
		}
		if fit.R2 < c.minwellR {
			t.Errorf("%s: poor fit %s", c.f.Name(), fit)
		}
	}
}
