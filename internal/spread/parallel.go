package spread

import (
	"fmt"
	"runtime"
	"sync"

	"pairfn/internal/core"
)

// MeasureParallel computes S_A(n) like Measure, but shards the Θ(n log n)
// lattice region across a worker pool — the measurement itself is
// embarrassingly parallel because every position's address is independent.
// Workers ≤ 0 selects GOMAXPROCS. The mapping must be safe for concurrent
// Encode (every mapping in this repository is; the cached hyperbolic PF
// synchronizes its table internally).
//
// Rows are handed out in strided batches so the heavy small-x rows (row x
// has ⌊n/x⌋ positions) spread evenly across workers.
func MeasureParallel(f core.StorageMapping, n int64, workers int) (int64, Point, error) {
	if n < 1 {
		return 0, Point{}, fmt.Errorf("spread: n = %d < 1", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > int(n) {
		workers = int(n)
	}
	type partial struct {
		s   int64
		at  Point
		err error
	}
	results := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var best int64
			var at Point
			for x := int64(w) + 1; x <= n; x += int64(workers) {
				for y := int64(1); y <= n/x; y++ {
					z, err := f.Encode(x, y)
					if err != nil {
						results[w] = partial{err: fmt.Errorf("spread: %s(%d, %d): %w",
							f.Name(), x, y, err)}
						return
					}
					if z > best {
						best, at = z, Point{X: x, Y: y}
					}
				}
			}
			results[w] = partial{s: best, at: at}
		}(w)
	}
	wg.Wait()
	var s int64
	var at Point
	for _, p := range results {
		if p.err != nil {
			return 0, Point{}, p.err
		}
		if p.s > s {
			s, at = p.s, p.at
		}
	}
	return s, at, nil
}
