package spread

import (
	"context"

	"pairfn/internal/core"
)

// MeasureParallel computes S_A(n) like Measure, sharded across a worker
// pool — the measurement is embarrassingly parallel because every
// position's address is independent. Workers ≤ 0 selects GOMAXPROCS. The
// mapping must be safe for concurrent Encode (every mapping in this
// repository is; the cached hyperbolic PF synchronizes its table
// internally).
//
// This is the context-free convenience form of Engine.Measure; results are
// bit-identical to the serial Measure, argmax included.
func MeasureParallel(f core.StorageMapping, n int64, workers int) (int64, Point, error) {
	return (&Engine{Workers: workers}).Measure(context.Background(), f, n)
}

// CurveParallel returns S_A(n) for each n in ns, each measured through the
// parallel engine. It is the context-free convenience form of Engine.Curve.
func CurveParallel(f core.StorageMapping, ns []int64, workers int) ([]int64, error) {
	return (&Engine{Workers: workers}).Curve(context.Background(), f, ns)
}

// MeasureConformingParallel computes the eq. 3.2 restricted spread like
// MeasureConforming, sharded across a worker pool. It is the context-free
// convenience form of Engine.MeasureConforming and returns the identical
// value (and the identical ErrOverflow on unrepresentable a·b bounds).
func MeasureConformingParallel(f core.StorageMapping, a, b, n int64, workers int) (int64, error) {
	return (&Engine{Workers: workers}).MeasureConforming(context.Background(), f, a, b, n)
}
