package spread

import (
	"testing"

	"pairfn/internal/core"
)

// TestMeasureParallelMatchesSerial: identical results for every worker
// count, including the degenerate ones.
func TestMeasureParallelMatchesSerial(t *testing.T) {
	mappings := []core.StorageMapping{
		core.Diagonal{},
		core.SquareShell{},
		core.NewCachedHyperbolic(2048),
		core.MustDovetail(core.MustAspect(1, 1), core.MustAspect(2, 1)),
	}
	for _, f := range mappings {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			for _, n := range []int64{1, 7, 256, 2048} {
				wantS, wantAt, err := Measure(f, n)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 1, 3, 8, 64} {
					s, at, err := MeasureParallel(f, n, workers)
					if err != nil {
						t.Fatalf("workers %d: %v", workers, err)
					}
					if s != wantS {
						t.Fatalf("workers %d: S = %d, serial %d", workers, s, wantS)
					}
					if at != wantAt {
						// Multiple positions may share the max address only
						// for injective-but-equal values — impossible; the
						// argmax must agree.
						t.Fatalf("workers %d: at %+v, serial %+v", workers, at, wantAt)
					}
				}
			}
		})
	}
}

func TestMeasureParallelErrors(t *testing.T) {
	if _, _, err := MeasureParallel(core.Diagonal{}, 0, 4); err == nil {
		t.Error("n = 0 should fail")
	}
	// Partial mapping error propagates from a worker.
	if _, _, err := MeasureParallel(core.RowMajor{Width: 2}, 16, 4); err == nil {
		t.Error("partial mapping should surface the worker error")
	}
}
