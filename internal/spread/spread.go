package spread

import (
	"fmt"
	"math"

	"pairfn/internal/core"
	"pairfn/internal/numtheory"
)

// Point is an integer lattice point (1-based).
type Point struct {
	X, Y int64
}

// HyperbolaPoints returns the lattice points (x, y) ∈ N×N with xy ≤ n, in
// row-major order — the aggregate set of positions of all arrays with ≤ n
// positions (Fig. 5). The slice has exactly RegionSize(n) entries.
func HyperbolaPoints(n int64) []Point {
	if n < 1 {
		return nil
	}
	pts := make([]Point, 0, RegionSize(n))
	for x := int64(1); x <= n; x++ {
		for y := int64(1); y <= n/x; y++ {
			pts = append(pts, Point{X: x, Y: y})
		}
	}
	return pts
}

// RegionSize returns |{(x, y) : xy ≤ n}| = D(n), the divisor summatory
// function, in O(√n) time.
func RegionSize(n int64) int64 {
	if n < 1 {
		return 0
	}
	return numtheory.DivisorSummatory(n)
}

// Measure returns S_A(n) by enumerating the Θ(n log n) lattice points under
// the hyperbola and taking the maximum address. The position achieving the
// maximum is returned as well.
func Measure(f core.StorageMapping, n int64) (s int64, at Point, err error) {
	if n < 1 {
		return 0, Point{}, fmt.Errorf("spread: n = %d < 1", n)
	}
	for x := int64(1); x <= n; x++ {
		for y := int64(1); y <= n/x; y++ {
			z, err := f.Encode(x, y)
			if err != nil {
				return 0, Point{}, fmt.Errorf("spread: %s(%d, %d): %w", f.Name(), x, y, err)
			}
			if z > s {
				s, at = z, Point{X: x, Y: y}
			}
		}
	}
	return s, at, nil
}

// MeasureConforming returns the eq. 3.2 restricted spread of f over arrays
// of the fixed aspect ratio ⟨a, b⟩:
//
//	max{ f(x, y) : x ≤ ak, y ≤ bk, abk² ≤ n }
//
// i.e. the largest address assigned to any position of a conforming
// (ak × bk) array with ≤ n positions. For the paper's 𝒜_{a,b} this equals
// the size abk² of the largest conforming array that fits — perfect storage
// utilization. Returns 0 if no conforming array has ≤ n positions, and
// numtheory.ErrOverflow (wrapped) when the loop bound a·b·k² is not
// representable in int64 — previously that bound was computed with raw
// multiplications that silently wrapped negative, so huge aspect ratios
// sent the loop scanning garbage rectangles instead of failing.
func MeasureConforming(f core.StorageMapping, a, b, n int64) (int64, error) {
	if a < 1 || b < 1 || n < 1 {
		return 0, fmt.Errorf("spread: MeasureConforming domain error (a=%d b=%d n=%d)", a, b, n)
	}
	kmax, err := conformingScale(a, b, n)
	if err != nil {
		return 0, err
	}
	var s int64
	for k := int64(1); k <= kmax; k++ {
		// Only the new shell relative to k−1 can raise the maximum, but the
		// full rectangle is scanned to keep this an independent check of
		// the mapping, not of its shell structure.
		for x := int64(1); x <= a*k; x++ {
			for y := int64(1); y <= b*k; y++ {
				z, err := f.Encode(x, y)
				if err != nil {
					return 0, err
				}
				if z > s {
					s = z
				}
			}
		}
	}
	return s, nil
}

// WorstShape returns the dimensions of the ≤ n-position array on which
// the mapping realizes its spread: rows×cols are the coordinates of the
// argmax position itself — the smallest array containing it, with
// rows·cols ≤ n by construction and f(rows, cols) = spread exactly —
// concretely, the shape a user should avoid giving this mapping. For 𝒟,
// 𝒜₁,₁ and Morton it is the thin 1×n array; for 𝒜_{a,b} it is the most
// off-ratio shape. For ℋ the returned shape is also 1×n (the argmax D(n)
// sits at position (1, n) on the hyperbola's rim), but unlike the
// quadratic mappings avoiding it buys nothing: every shape on the rim
// costs Θ(n log n), which is ℋ's optimality, not its weakness.
func WorstShape(f core.StorageMapping, n int64) (rows, cols, spread int64, err error) {
	s, at, err := Measure(f, n)
	if err != nil {
		return 0, 0, 0, err
	}
	// The smallest array containing the argmax position is at.X × at.Y;
	// it has at.X·at.Y ≤ n positions by construction.
	return at.X, at.Y, s, nil
}

// Curve returns S_A(n) for each n in ns.
func Curve(f core.StorageMapping, ns []int64) ([]int64, error) {
	out := make([]int64, len(ns))
	for i, n := range ns {
		s, _, err := Measure(f, n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// FitNLogN returns S/(n·ln n) for the given sample — approximately constant
// when S = Θ(n log n), as it is for the hyperbolic PF.
func FitNLogN(n, s int64) float64 {
	if n < 2 {
		return float64(s)
	}
	return float64(s) / (float64(n) * math.Log(float64(n)))
}

// FitQuadratic returns S/n² — approximately constant when S = Θ(n²), as it
// is for the diagonal (≈ 1/2) and square-shell (≈ 1) PFs.
func FitQuadratic(n, s int64) float64 {
	return float64(s) / (float64(n) * float64(n))
}
