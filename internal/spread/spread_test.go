package spread

import (
	"errors"
	"math"
	"testing"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/numtheory"
)

// TestFig5Count reproduces Fig. 5 (experiment E4): the aggregate set of
// positions of arrays having 16 or fewer positions — the lattice points
// under xy = 16 — and its cardinality.
func TestFig5Count(t *testing.T) {
	pts := HyperbolaPoints(16)
	// D(16) = Σ_{k≤16} δ(k) = 1+2+2+3+2+4+2+4+3+4+2+6+2+4+4+5 = 50.
	if len(pts) != 50 {
		t.Fatalf("|region(16)| = %d, want 50", len(pts))
	}
	if RegionSize(16) != 50 {
		t.Fatalf("RegionSize(16) = %d, want 50", RegionSize(16))
	}
	// Every point satisfies xy ≤ 16; every row x has exactly ⌊16/x⌋ points.
	perRow := make(map[int64]int64)
	for _, p := range pts {
		if p.X*p.Y > 16 || p.X < 1 || p.Y < 1 {
			t.Fatalf("point (%d, %d) outside region", p.X, p.Y)
		}
		perRow[p.X]++
	}
	for x := int64(1); x <= 16; x++ {
		if perRow[x] != 16/x {
			t.Errorf("row %d has %d points, want %d", x, perRow[x], 16/x)
		}
	}
}

// TestRegionGrowthNLogN checks the Θ(n log n) growth of the region.
func TestRegionGrowthNLogN(t *testing.T) {
	for _, n := range []int64{1 << 8, 1 << 12, 1 << 16} {
		size := RegionSize(n)
		ratio := float64(size) / (float64(n) * math.Log(float64(n)))
		// D(n) ≈ n·ln n + (2γ−1)n, so the ratio approaches 1 from above.
		if ratio < 0.9 || ratio > 1.6 {
			t.Errorf("D(%d)/(n ln n) = %v, expected near 1", n, ratio)
		}
	}
}

// TestDiagonalSpreadClaims verifies the §3.2 claims about 𝒟 (experiment
// E6): S_𝒟(n) is attained on the 1×n (or n×1) array and equals
// max(𝒟(1,n), 𝒟(n,1)) = (n²+n)/2.
func TestDiagonalSpreadClaims(t *testing.T) {
	var d core.Diagonal
	for _, n := range []int64{1, 2, 4, 16, 64, 256} {
		s, at, err := Measure(d, n)
		if err != nil {
			t.Fatal(err)
		}
		if want := (n*n + n) / 2; s != want {
			t.Errorf("S_𝒟(%d) = %d, want (n²+n)/2 = %d", n, s, want)
		}
		if n > 1 && !(at.X == 1 && at.Y == n) {
			t.Errorf("S_𝒟(%d) attained at (%d, %d), want (1, %d)", n, at.X, at.Y, n)
		}
	}
}

// TestSquareShellSpread verifies S_𝒜₁,₁(n) = n², attained on the thinnest
// array: 𝒜₁,₁(1, n) = n² — perfect on squares, quadratic on arbitrary
// shapes.
func TestSquareShellSpread(t *testing.T) {
	var f core.SquareShell
	for _, n := range []int64{1, 2, 5, 32, 128} {
		s, _, err := Measure(f, n)
		if err != nil {
			t.Fatal(err)
		}
		if s != n*n {
			t.Errorf("S_𝒜₁,₁(%d) = %d, want n² = %d", n, s, n*n)
		}
	}
}

// TestHyperbolicSpreadNLogN verifies experiment E9: S_ℋ(n) = D(n) exactly
// and the asymptotic ordering S_ℋ ≪ S_𝒟 < S_𝒜₁,₁ for large n.
func TestHyperbolicSpreadNLogN(t *testing.T) {
	h := core.NewCachedHyperbolic(1 << 12)
	for _, n := range []int64{16, 256, 1 << 12} {
		s, _, err := Measure(h, n)
		if err != nil {
			t.Fatal(err)
		}
		if want := numtheory.DivisorSummatory(n); s != want {
			t.Errorf("S_ℋ(%d) = %d, want D(n) = %d", n, s, want)
		}
	}
	n := int64(1 << 12)
	sh, _, _ := Measure(h, n)
	sd, _, _ := Measure(core.Diagonal{}, n)
	ss, _, _ := Measure(core.SquareShell{}, n)
	if !(sh < sd && sd < ss) {
		t.Errorf("expected S_ℋ < S_𝒟 < S_𝒜₁,₁, got %d, %d, %d", sh, sd, ss)
	}
	// ℋ's advantage is asymptotic: quadratic vs n log n.
	if float64(sd)/float64(sh) < 10 {
		t.Errorf("𝒟 should spread ≫ ℋ at n = 2^12: %d vs %d", sd, sh)
	}
}

// TestNoMappingBeatsNLogN verifies the §3.2.3 lower-bound argument: any
// injective mapping must spread some ≤n-position array over ≥ D(n)
// addresses, because the region's D(n) positions need distinct addresses
// and every array contains (1, 1). We check the bound for every PF we have.
func TestNoMappingBeatsNLogN(t *testing.T) {
	mappings := []core.StorageMapping{
		core.Diagonal{}, core.SquareShell{}, core.MustAspect(2, 3),
		core.Hyperbolic{},
		core.MustDovetail(core.MustAspect(1, 1), core.MustAspect(1, 2)),
	}
	for _, n := range []int64{16, 128, 1024} {
		lower := numtheory.DivisorSummatory(n)
		for _, f := range mappings {
			s, _, err := Measure(f, n)
			if err != nil {
				t.Fatal(err)
			}
			if s < lower {
				t.Errorf("%s: S(%d) = %d beats the D(n) = %d lower bound — impossible",
					f.Name(), n, s, lower)
			}
		}
	}
}

// TestMeasureConforming verifies eq. 3.2 through the spread lens
// (experiment E7): restricted to conforming arrays, 𝒜_{a,b}'s spread equals
// the size of the largest conforming array that fits.
func TestMeasureConforming(t *testing.T) {
	for _, r := range [][2]int64{{1, 1}, {1, 2}, {3, 2}} {
		a, b := r[0], r[1]
		f := core.MustAspect(a, b)
		for _, n := range []int64{1, 10, 100, 1000} {
			got, err := MeasureConforming(f, a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			var want int64
			for k := int64(1); a*b*k*k <= n; k++ {
				want = a * b * k * k
			}
			if got != want {
				t.Errorf("%s: conforming spread at n = %d is %d, want %d",
					f.Name(), n, got, want)
			}
		}
	}
	// A non-favoring PF wastes storage even on conforming arrays.
	d := core.Diagonal{}
	got, err := MeasureConforming(d, 1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 100 {
		t.Errorf("𝒟 on 10×10 should spread beyond 100 addresses, got %d", got)
	}
}

// TestDovetailBound verifies §3.2.2's bound S_A(n) ≤ m·min_i S_{A_i}(n) at
// the spread level (experiment E8).
func TestDovetailBound(t *testing.T) {
	fs := []core.PF{core.MustAspect(1, 1), core.MustAspect(1, 2), core.MustAspect(2, 1)}
	dv := core.MustDovetail(fs...)
	m := int64(len(fs))
	for _, n := range []int64{4, 16, 64, 256} {
		sd, _, err := Measure(dv, n)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(-1)
		for _, f := range fs {
			s, _, err := Measure(f, n)
			if err != nil {
				t.Fatal(err)
			}
			if best < 0 || s < best {
				best = s
			}
		}
		if sd > m*best {
			t.Errorf("S_dovetail(%d) = %d > %d·min = %d", n, sd, m, m*best)
		}
	}
}

// TestCurveAndFits exercises the sweep helpers.
func TestCurveAndFits(t *testing.T) {
	ns := []int64{4, 8, 16, 32}
	curve, err := Curve(core.Diagonal{}, ns)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		if want := (n*n + n) / 2; curve[i] != want {
			t.Errorf("curve[%d] = %d, want %d", i, curve[i], want)
		}
		if q := FitQuadratic(n, curve[i]); q < 0.4 || q > 0.7 {
			t.Errorf("quadratic fit of 𝒟 at n = %d is %v, want ≈ 1/2", n, q)
		}
	}
	if FitNLogN(1, 7) != 7 {
		t.Error("FitNLogN(1, s) should degrade to s")
	}
}

// TestMeasureErrors checks error propagation.
func TestMeasureErrors(t *testing.T) {
	if _, _, err := Measure(core.Diagonal{}, 0); err == nil {
		t.Error("Measure(n = 0) should fail")
	}
	// RowMajor with width 2 cannot encode the region's (1, n) points.
	if _, _, err := Measure(core.RowMajor{Width: 2}, 9); err == nil {
		t.Error("Measure over a partial mapping should surface the error")
	}
	if _, err := MeasureConforming(core.Diagonal{}, 0, 1, 10); err == nil {
		t.Error("MeasureConforming domain error expected")
	}
}

// TestWorstShapeContract pins the documented return contract after the
// doc/return mismatch fix: rows×cols are the argmax position's own
// coordinates (the smallest array containing it), rows·cols ≤ n, and the
// mapping attains exactly the returned spread there. For ℋ the worst
// shape is 1×n with spread D(n) — the rim of the hyperbola — which is the
// optimal Θ(n log n), not an avoidable weakness.
func TestWorstShapeContract(t *testing.T) {
	const n = 512
	mappings := []core.StorageMapping{
		core.Diagonal{}, core.SquareShell{}, core.MustAspect(2, 1),
		core.Morton{}, core.NewCachedHyperbolic(n),
	}
	for _, f := range mappings {
		r, c, s, err := WorstShape(f, n)
		if err != nil {
			t.Fatal(err)
		}
		_, at, err := Measure(f, n)
		if err != nil {
			t.Fatal(err)
		}
		if r != at.X || c != at.Y {
			t.Errorf("%s: WorstShape (%d, %d) ≠ Measure argmax %+v", f.Name(), r, c, at)
		}
		if r*c > n {
			t.Errorf("%s: worst shape %d×%d has more than n = %d positions", f.Name(), r, c, n)
		}
		if z, err := f.Encode(r, c); err != nil || z != s {
			t.Errorf("%s: f(%d, %d) = (%d, %v), want the returned spread %d", f.Name(), r, c, z, err, s)
		}
	}
	// The ℋ claim, concretely: worst shape 1×n, spread exactly D(n).
	r, c, s, err := WorstShape(core.NewCachedHyperbolic(n), n)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 || c != n || s != numtheory.DivisorSummatory(n) {
		t.Errorf("ℋ: worst shape %d×%d spread %d, want 1×%d spread D(n) = %d",
			r, c, s, n, numtheory.DivisorSummatory(n))
	}
}

// TestHyperbolaPointsEmpty covers the degenerate inputs.
func TestHyperbolaPointsEmpty(t *testing.T) {
	if HyperbolaPoints(0) != nil {
		t.Error("HyperbolaPoints(0) should be empty")
	}
	if RegionSize(0) != 0 {
		t.Error("RegionSize(0) should be 0")
	}
}

// TestMeasureConformingOverflow is the edge-of-int64 regression for the
// eq. 3.2 loop bound: when a·b·k² is not representable, MeasureConforming
// must return ErrOverflow promptly. Before the fix the raw product a·b·k·k
// wrapped negative, the bound check passed forever, and the loop started
// scanning a 3-billion-row "rectangle".
func TestMeasureConformingOverflow(t *testing.T) {
	start := time.Now()
	// 3037000500² ≈ 9.22·10^18 > MaxInt64: a·b overflows at k = 1.
	const big = int64(3037000500)
	for name, run := range map[string]func() (int64, error){
		"serial":   func() (int64, error) { return MeasureConforming(core.Diagonal{}, big, big, 1000) },
		"parallel": func() (int64, error) { return MeasureConformingParallel(core.Diagonal{}, big, big, 1000, 2) },
	} {
		s, err := run()
		if !errors.Is(err, numtheory.ErrOverflow) {
			t.Errorf("%s: MeasureConforming(a=b=%d) = (%d, %v), want ErrOverflow", name, big, s, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("overflow rejection took %v, want immediate", elapsed)
	}
	// A representable-but-larger-than-n product is a clean zero, not an
	// error: no conforming array fits.
	s, err := MeasureConforming(core.Diagonal{}, 1<<31, 1<<30, 1000)
	if err != nil || s != 0 {
		t.Errorf("a·b > n: got (%d, %v), want (0, nil)", s, err)
	}
}

// TestConformingScale pins the checked bound: largest k with a·b·k² ≤ n.
func TestConformingScale(t *testing.T) {
	cases := []struct{ a, b, n, want int64 }{
		{1, 1, 1, 1}, {1, 1, 3, 1}, {1, 1, 4, 2}, {1, 2, 1000, 22},
		{3, 2, 6, 1}, {3, 2, 5, 0}, {2, 3, 24, 2}, {1, 1, math.MaxInt64, 3037000499},
	}
	for _, c := range cases {
		got, err := conformingScale(c.a, c.b, c.n)
		if err != nil {
			t.Fatalf("conformingScale(%d, %d, %d): %v", c.a, c.b, c.n, err)
		}
		if got != c.want {
			t.Errorf("conformingScale(%d, %d, %d) = %d, want %d", c.a, c.b, c.n, got, c.want)
		}
		if got > 0 {
			if c.a*c.b*got*got > c.n {
				t.Errorf("conformingScale(%d, %d, %d) = %d: bound exceeds n", c.a, c.b, c.n, got)
			}
		}
	}
}

// TestWorstShape identifies the shapes that realize each mapping's spread.
func TestWorstShape(t *testing.T) {
	// 𝒟's and 𝒜₁,₁'s spread is realized on the 1×n thin array.
	for _, f := range []core.StorageMapping{core.Diagonal{}, core.SquareShell{}} {
		r, c, s, err := WorstShape(f, 256)
		if err != nil {
			t.Fatal(err)
		}
		if r != 1 || c != 256 {
			t.Errorf("%s: worst shape %d×%d, want 1×256", f.Name(), r, c)
		}
		if s < 256*256/2 {
			t.Errorf("%s: spread %d suspiciously small", f.Name(), s)
		}
	}
	// 𝒜₂,₁ favors tall arrays, so its worst shape is the widest one.
	r, c, _, err := WorstShape(core.MustAspect(2, 1), 256)
	if err != nil {
		t.Fatal(err)
	}
	if !(c > 8*r) {
		t.Errorf("𝒜₂,₁ worst shape %d×%d should be much wider than tall", r, c)
	}
	if _, _, _, err := WorstShape(core.Diagonal{}, 0); err == nil {
		t.Error("n = 0 should fail")
	}
}
