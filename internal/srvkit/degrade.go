package srvkit

import (
	"log/slog"
	"sync"

	"pairfn/internal/obs"
)

// DegradedConfig parameterizes NewDegraded.
type DegradedConfig struct {
	// Detail is the /readyz explanation shown after "degraded: ", e.g.
	// "read-only (WAL volume failed)".
	Detail string
	// LogMessage, when non-empty and Logger is set, is logged at Error
	// level exactly once, on the flip.
	LogMessage string
	// Writable, when non-nil, is set false on the flip — the flag write
	// paths consult before mutating.
	Writable *obs.Flag
	// Gauge, when non-nil, is set to 1 on the flip (e.g. tabled_degraded).
	Gauge *obs.Gauge
	// Logger receives LogMessage.
	Logger *slog.Logger
	// OnDegrade, when non-nil, fires exactly once with the tripping
	// error, outside any lock.
	OnDegrade func(error)
}

// Degraded is the sticky read-only state machine shared by the WAL- and
// journal-failure paths: the first Degrade call flips the writable flag,
// sets the gauge, logs, and fires the hooks; every later call is a
// no-op. It never un-trips in-process — once the log cannot attest
// durability, only a restart (which replays and re-opens it) may clear
// the state. All methods are safe for concurrent use and no-ops on a
// nil receiver (a nil machine is simply never degraded).
type Degraded struct {
	detail   string
	logMsg   string
	writable *obs.Flag
	gauge    *obs.Gauge
	logger   *slog.Logger

	mu      sync.Mutex
	tripped bool
	reason  error
	hooks   []func(error)
}

// NewDegraded builds the state machine in the healthy (writable) state.
func NewDegraded(cfg DegradedConfig) *Degraded {
	d := &Degraded{
		detail:   cfg.Detail,
		logMsg:   cfg.LogMessage,
		writable: cfg.Writable,
		gauge:    cfg.Gauge,
		logger:   cfg.Logger,
	}
	if d.detail == "" {
		d.detail = "read-only"
	}
	if cfg.OnDegrade != nil {
		d.hooks = append(d.hooks, cfg.OnDegrade)
	}
	return d
}

// Degrade trips the machine. The first call wins: it records err, flips
// the writable flag, sets the gauge, logs once, and fires the hooks
// (outside the lock). Subsequent calls return immediately.
func (d *Degraded) Degrade(err error) {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.tripped {
		d.mu.Unlock()
		return
	}
	d.tripped = true
	d.reason = err
	hooks := d.hooks
	d.hooks = nil
	d.mu.Unlock()

	d.writable.Set(false)
	d.gauge.Set(1)
	if d.logger != nil && d.logMsg != "" {
		d.logger.Error(d.logMsg, "err", err)
	}
	for _, h := range hooks {
		h(err)
	}
}

// Is reports whether the machine has tripped.
func (d *Degraded) Is() bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tripped
}

// Reason returns the error that tripped the machine (nil while healthy).
func (d *Degraded) Reason() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reason
}

// Probe adapts the machine to Probes.Degraded.
func (d *Degraded) Probe() (bool, string) {
	if d == nil {
		return false, ""
	}
	return d.Is(), d.detail
}

// OnDegrade registers an additional hook. If the machine already
// tripped, fn fires immediately (with the recorded reason) so late
// registration cannot lose the notification; otherwise it fires exactly
// once on the flip.
func (d *Degraded) OnDegrade(fn func(error)) {
	if d == nil || fn == nil {
		return
	}
	d.mu.Lock()
	if d.tripped {
		reason := d.reason
		d.mu.Unlock()
		fn(reason)
		return
	}
	d.hooks = append(d.hooks, fn)
	d.mu.Unlock()
}
