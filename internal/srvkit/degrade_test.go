package srvkit

import (
	"errors"
	"sync"
	"testing"

	"pairfn/internal/obs"
)

// TestDegradedSticky is the state-machine contract: the first Degrade
// wins (flag, gauge, hook, reason), later calls are no-ops, and the
// machine never un-trips.
func TestDegradedSticky(t *testing.T) {
	reg := obs.NewRegistry()
	writable := obs.NewFlag(true)
	gauge := reg.Gauge("test_degraded")
	var fired []error
	d := NewDegraded(DegradedConfig{
		Detail:    "read-only (test)",
		Writable:  writable,
		Gauge:     gauge,
		OnDegrade: func(err error) { fired = append(fired, err) },
	})

	if d.Is() || !writable.Get() || d.Reason() != nil {
		t.Fatal("fresh machine is not healthy")
	}
	if bad, _ := d.Probe(); bad {
		t.Fatal("fresh machine probes degraded")
	}

	first := errors.New("sync failed")
	d.Degrade(first)
	d.Degrade(errors.New("second failure, ignored"))

	if !d.Is() || writable.Get() {
		t.Fatal("machine did not trip")
	}
	if gauge.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", gauge.Value())
	}
	if !errors.Is(d.Reason(), first) {
		t.Fatalf("Reason() = %v, want the first error", d.Reason())
	}
	if len(fired) != 1 || !errors.Is(fired[0], first) {
		t.Fatalf("hook fired %d times with %v, want once with the first error", len(fired), fired)
	}
	if bad, detail := d.Probe(); !bad || detail != "read-only (test)" {
		t.Fatalf("Probe() = %v %q", bad, detail)
	}

	// A hook registered after the trip fires immediately with the
	// recorded reason — late registration cannot lose the notification.
	var late error
	d.OnDegrade(func(err error) { late = err })
	if !errors.Is(late, first) {
		t.Fatalf("late hook got %v, want the first error", late)
	}
}

// TestDegradedConcurrent: racing Degrade calls trip exactly once.
func TestDegradedConcurrent(t *testing.T) {
	var mu sync.Mutex
	count := 0
	d := NewDegraded(DegradedConfig{OnDegrade: func(error) {
		mu.Lock()
		count++
		mu.Unlock()
	}})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Degrade(errors.New("boom"))
		}()
	}
	wg.Wait()
	if count != 1 {
		t.Fatalf("hook fired %d times, want 1", count)
	}
}

// TestDegradedNil: a nil machine is never degraded and every method is a
// safe no-op, so optional wiring needs no branches.
func TestDegradedNil(t *testing.T) {
	var d *Degraded
	d.Degrade(errors.New("ignored"))
	if d.Is() || d.Reason() != nil {
		t.Fatal("nil machine reports degraded")
	}
	if bad, _ := d.Probe(); bad {
		t.Fatal("nil machine probes degraded")
	}
	d.OnDegrade(func(error) { t.Fatal("hook on nil machine fired") })
}
