// Package srvkit is the shared production-server kit behind
// cmd/tabledserver and cmd/wbcserver (and every future pairfn service:
// the tabledcluster router, follower nodes, a tuple or spread-query
// API). Both daemons used to hand-roll the same stack — body caps,
// http.TimeoutHandler wiring, probes, degraded read-only mode, graceful
// drain, periodic snapshot/checkpoint timers — and the copies drifted
// into real bugs (tabledserver pinned WriteTimeout at 2m regardless of
// the request timeout, so a long batch timeout ended in a dropped
// connection instead of the promised 503). srvkit is that stack,
// written once:
//
//   - DeriveTimeouts / NewHTTPServer: the http.Server deadlines are a
//     function of the per-request handler timeout, computed in exactly
//     one place, with WriteTimeout always comfortably beyond the
//     timeout handler's 503.
//   - APIStack: the hardening middleware for API routes — request flow
//     is TimeoutHandler → MaxBytesReader → handler — applied only to
//     the routes that opt in, so /healthz, /readyz, /metrics and pprof
//     are never starved by a slow API timeout.
//   - Degraded: the sticky read-only state machine (flip a writable
//     flag, set a gauge, log once, fire hooks once) shared by the WAL-
//     and journal-failure paths.
//   - Probes: uniform /healthz and /readyz handlers — draining 503,
//     "degraded: <detail>" 503, and a ready body whose detail text can
//     surface operational warnings (e.g. a failing persist loop).
//   - Lifecycle: signal → readiness down → drain with deadline →
//     background-task stop → final persist steps → exit code. Final
//     steps always run, even when the drain deadline expired — a slow
//     drain must not cost the final snapshot.
//   - Persist: the periodic snapshot/checkpoint scheduler with failure
//     accounting (consecutive-failure gauge,
//     srvkit_persist_last_success_timestamp_seconds) instead of
//     log-and-forget loops.
//
// Everything is stdlib + internal/obs; nothing here knows about tables
// or volunteers. scripts/srvkit_guard.sh keeps the mains honest: a
// cmd/*server constructing http.Server or signal plumbing directly
// fails CI.
package srvkit
