package srvkit

import (
	"net/http"
	"time"
)

// DefaultReadHeaderTimeout bounds how long a client may take to send the
// request headers. It is independent of the handler timeout: headers are
// a handful of lines, and slowloris clients must be cut early.
const DefaultReadHeaderTimeout = 5 * time.Second

// WriteSlack is the margin added to the request timeout when deriving the
// connection write deadline. It covers the timeout handler writing its
// 503 plus response flushing to a slow client: the connection deadline
// must never fire before the 503-producing http.TimeoutHandler does, or
// the client sees a reset instead of a status.
const WriteSlack = 20 * time.Second

// MinReadTimeout floors the derived read deadline so short handler
// timeouts do not cut off legitimately slow request-body uploads.
const MinReadTimeout = time.Minute

// Timeouts are derived http.Server connection deadlines.
type Timeouts struct {
	ReadHeader time.Duration
	Read       time.Duration
	Write      time.Duration
}

// DeriveTimeouts computes the http.Server deadlines for a server whose
// slowest intentional request is bounded by requestTimeout (the
// per-request http.TimeoutHandler deadline, e.g. tabled's batch timeout
// or wbc's volunteer-protocol timeout):
//
//	Write = requestTimeout + WriteSlack   (always > requestTimeout)
//	Read  = max(Write, MinReadTimeout)
//
// so a handler that overruns is cut by the 503-producing timeout
// handler, never by the kernel dropping the connection. This derivation
// is the fix for the old tabledserver bug: it hardcoded WriteTimeout at
// 2m, so any request timeout ≥ 2m turned the promised 503 into a reset.
//
// requestTimeout ≤ 0 means the handlers are unbounded; only the header
// deadline is set then, because any connection deadline would
// reintroduce the silent-drop behavior.
func DeriveTimeouts(requestTimeout time.Duration) Timeouts {
	t := Timeouts{ReadHeader: DefaultReadHeaderTimeout}
	if requestTimeout <= 0 {
		return t
	}
	t.Write = requestTimeout + WriteSlack
	t.Read = t.Write
	if t.Read < MinReadTimeout {
		t.Read = MinReadTimeout
	}
	return t
}

// NewHTTPServer builds the production http.Server for handler h with all
// connection deadlines derived from requestTimeout via DeriveTimeouts.
// Servers must be constructed here — not with an http.Server literal —
// so the timeout derivation cannot drift per daemon again
// (scripts/srvkit_guard.sh enforces this for cmd/*server).
func NewHTTPServer(addr string, h http.Handler, requestTimeout time.Duration) *http.Server {
	t := DeriveTimeouts(requestTimeout)
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
	}
}
