package srvkit

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDeriveTimeouts pins the one-place derivation contract: the write
// deadline always comfortably exceeds the request timeout, so the
// 503-producing TimeoutHandler — not the kernel — is what cuts a slow
// handler.
func TestDeriveTimeouts(t *testing.T) {
	cases := []struct {
		req         time.Duration
		read, write time.Duration
	}{
		{0, 0, 0},                 // unbounded handlers: no conn deadlines
		{-time.Second, 0, 0},      // negative means disabled too
		{10 * time.Second, MinReadTimeout, 30 * time.Second}, // read floored
		{time.Minute, 80 * time.Second, 80 * time.Second},
		// The regression case: the old tabledserver hardcoded
		// WriteTimeout at 2m, so a request timeout of 150s ended in a
		// dropped connection. Derived, the write deadline tracks the
		// request timeout past any hardcode.
		{150 * time.Second, 170 * time.Second, 170 * time.Second},
		{10 * time.Minute, 10*time.Minute + WriteSlack, 10*time.Minute + WriteSlack},
	}
	for _, c := range cases {
		got := DeriveTimeouts(c.req)
		if got.ReadHeader != DefaultReadHeaderTimeout {
			t.Errorf("DeriveTimeouts(%v).ReadHeader = %v", c.req, got.ReadHeader)
		}
		if got.Read != c.read || got.Write != c.write {
			t.Errorf("DeriveTimeouts(%v) = read %v write %v, want read %v write %v",
				c.req, got.Read, got.Write, c.read, c.write)
		}
		if c.req > 0 && got.Write <= c.req {
			t.Errorf("DeriveTimeouts(%v): write %v does not exceed the request timeout", c.req, got.Write)
		}
	}
}

// serveOnce starts srv on a fresh loopback listener and returns its base
// URL and a closer.
func serveOnce(t *testing.T, srv *http.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestTimeoutHandlerWinsOverConnDeadline is the scaled regression test
// for the tabledserver bug: with the server built by NewHTTPServer, a
// handler overrunning the request timeout yields a clean 503 with the
// timeout body — never a connection reset — because the derived write
// deadline sits WriteSlack beyond the TimeoutHandler's deadline.
func TestTimeoutHandlerWinsOverConnDeadline(t *testing.T) {
	const reqTimeout = 100 * time.Millisecond
	slow := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(8 * reqTimeout)
		io.WriteString(w, "too late")
	})
	mux := http.NewServeMux()
	mux.Handle("/api", APIStack{RequestTimeout: reqTimeout, TimeoutBody: "batch timed out"}.Wrap(slow))
	base := serveOnce(t, NewHTTPServer("", mux, reqTimeout))

	resp, err := http.Get(base + "/api")
	if err != nil {
		t.Fatalf("client saw a transport error (dropped connection), want a 503: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "batch timed out") {
		t.Fatalf("slow handler: %d %q, want 503 with the timeout body", resp.StatusCode, body)
	}
}

// TestHardcodedWriteTimeoutDropsConnection demonstrates the bug shape the
// derivation fixes: an http.Server whose WriteTimeout is shorter than the
// handler's runtime (the old tabledserver with -timeout past 2m, scaled
// down) hands the client a reset instead of a status.
func TestHardcodedWriteTimeoutDropsConnection(t *testing.T) {
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			time.Sleep(500 * time.Millisecond) // "request timeout" beyond the hardcode
			io.WriteString(w, "unreachable")
		}),
		WriteTimeout: 50 * time.Millisecond, // the hardcode, scaled
	}
	base := serveOnce(t, srv)
	resp, err := http.Get(base + "/")
	if err == nil {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("got %d %q, want a dropped connection (this pins the failure mode the srvkit derivation prevents)",
			resp.StatusCode, b)
	}
}
