package srvkit

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"pairfn/internal/obs"
)

// A Step is one named shutdown action (final snapshot, WAL close, ...).
type Step struct {
	Name string
	Run  func() error
}

// Lifecycle runs a server from listen to exit code with the shutdown
// sequence both daemons used to hand-roll:
//
//	signal (or ctx cancel) → readiness down → drain with deadline →
//	background tasks stopped → final persist steps → exit code
//
// The ordering contract the old mains got subtly wrong: the Final steps
// run unconditionally once serving has ended — after a missed drain
// deadline (exit code 1, but the snapshot is still saved) and even when
// the listener failed at boot (so an opened WAL is still closed
// cleanly). A slow drain costs the exit code, never the data.
type Lifecycle struct {
	// Server is the srvkit-built http.Server (NewHTTPServer).
	Server *http.Server
	// Listener, when non-nil, is served instead of Server.Addr — the
	// seam tests and socket-activated deployments use.
	Listener net.Listener
	// Ready is flipped false before draining so load balancers watching
	// /readyz stop routing first. May be nil.
	Ready *obs.Flag
	// Logger receives the lifecycle log lines (may be nil).
	Logger *slog.Logger
	// DrainTimeout bounds the graceful drain; ≤ 0 waits indefinitely.
	DrainTimeout time.Duration
	// Background tasks (persist loops, lease sweepers) run for the life
	// of the server; their context is canceled after the drain and Run
	// waits for them to return before the Final steps, so a periodic
	// save can never race the final one.
	Background []func(context.Context)
	// Final steps run in order after serving ends, every one attempted
	// even if an earlier one failed; any failure makes the exit code 1.
	Final []Step
}

// Run serves until ctx is canceled or SIGINT/SIGTERM arrives, executes
// the shutdown sequence, and returns the process exit code: 0 for a
// clean drain with every Final step succeeding, 1 otherwise.
func (lc Lifecycle) Run(ctx context.Context) int {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	bgCtx, bgStop := context.WithCancel(context.Background())
	defer bgStop()
	var bg sync.WaitGroup
	for _, fn := range lc.Background {
		bg.Add(1)
		go func() {
			defer bg.Done()
			fn(bgCtx)
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if lc.Listener != nil {
			errc <- lc.Server.Serve(lc.Listener)
		} else {
			errc <- lc.Server.ListenAndServe()
		}
	}()

	code := 0
	select {
	case err := <-errc:
		// Serve only returns pre-shutdown on a real failure (port in
		// use, listener error) — never ErrServerClosed here. Fall
		// through to the Final steps so an already-opened WAL/journal
		// still closes cleanly.
		lc.logError("listen", err)
		code = 1
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		// Drain: stop admitting (load balancers see /readyz go 503
		// first), then let in-flight requests finish within the
		// deadline.
		lc.Ready.Set(false)
		if lc.Logger != nil {
			lc.Logger.Info("shutdown: draining", "timeout", lc.DrainTimeout)
		}
		sctx := context.Background()
		if lc.DrainTimeout > 0 {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(sctx, lc.DrainTimeout)
			defer cancel()
		}
		if err := lc.Server.Shutdown(sctx); err != nil {
			lc.logError("shutdown: drain incomplete", err)
			code = 1
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			lc.logError("serve", err)
			code = 1
		}
	}

	// Stop the periodic work (sweepers, persist tickers) and wait it
	// out before the final cut.
	bgStop()
	bg.Wait()

	for _, st := range lc.Final {
		if err := st.Run(); err != nil {
			lc.logError("shutdown: "+st.Name, err)
			code = 1
		} else if lc.Logger != nil {
			lc.Logger.Info("shutdown: " + st.Name + " ok")
		}
	}
	if code == 0 && lc.Logger != nil {
		lc.Logger.Info("shutdown: clean")
	}
	return code
}

func (lc Lifecycle) logError(msg string, err error) {
	if lc.Logger != nil {
		lc.Logger.Error(msg, "err", err)
	}
}
