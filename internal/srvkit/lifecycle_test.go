package srvkit

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"pairfn/internal/obs"
)

// lcHarness builds a lifecycle on a live loopback listener and runs it,
// returning the base URL, the cancel func standing in for SIGTERM, and
// the exit-code channel.
func lcHarness(t *testing.T, h http.Handler, mutate func(*Lifecycle)) (base string, cancel context.CancelFunc, codec chan int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lc := Lifecycle{
		Server:       NewHTTPServer("", h, time.Second),
		Listener:     ln,
		Ready:        obs.NewFlag(true),
		DrainTimeout: 5 * time.Second,
	}
	if mutate != nil {
		mutate(&lc)
	}
	ctx, cancelFn := context.WithCancel(context.Background())
	codec = make(chan int, 1)
	go func() { codec <- lc.Run(ctx) }()
	return "http://" + ln.Addr().String(), cancelFn, codec
}

func waitExit(t *testing.T, codec chan int) int {
	t.Helper()
	select {
	case code := <-codec:
		return code
	case <-time.After(10 * time.Second):
		t.Fatal("lifecycle did not exit")
		return -1
	}
}

// TestLifecycleCleanShutdown: cancel (the signal seam) → readiness down
// → drain → background canceled → final steps in order → exit 0.
func TestLifecycleCleanShutdown(t *testing.T) {
	ready := obs.NewFlag(true)
	bgStopped := make(chan struct{})
	var mu sync.Mutex
	var steps []string
	base, cancel, codec := lcHarness(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "hi")
	}), func(lc *Lifecycle) {
		lc.Ready = ready
		lc.Background = append(lc.Background, func(ctx context.Context) {
			<-ctx.Done()
			close(bgStopped)
		})
		step := func(name string) Step {
			return Step{Name: name, Run: func() error {
				mu.Lock()
				defer mu.Unlock()
				// The background loop must already be stopped when the
				// final cut runs, so a periodic save can't race it.
				select {
				case <-bgStopped:
				default:
					t.Error("final step ran before background tasks stopped")
				}
				steps = append(steps, name)
				return nil
			}}
		}
		lc.Final = []Step{step("final snapshot"), step("wal close")}
	})

	resp, err := http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	if code := waitExit(t, codec); code != 0 {
		t.Fatalf("clean shutdown exit code = %d", code)
	}
	if ready.Get() {
		t.Fatal("readiness still up after shutdown")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(steps) != 2 || steps[0] != "final snapshot" || steps[1] != "wal close" {
		t.Fatalf("final steps = %v", steps)
	}
}

// TestLifecycleDrainDeadlineStillPersists is the shutdown-ordering
// regression test: a request stalled past the drain deadline makes the
// exit code 1, but the final persist steps run anyway — a slow drain
// costs the exit code, never the data.
func TestLifecycleDrainDeadlineStillPersists(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	persisted := make(chan struct{})
	base, cancel, codec := lcHarness(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release // stalls far beyond the drain deadline
	}), func(lc *Lifecycle) {
		lc.DrainTimeout = 50 * time.Millisecond
		lc.Final = []Step{{Name: "final snapshot", Run: func() error {
			close(persisted)
			return nil
		}}}
	})

	// One in-flight request that will never finish draining.
	go func() {
		resp, err := http.Get(base + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	cancel()
	if code := waitExit(t, codec); code != 1 {
		t.Fatalf("missed drain deadline exit code = %d, want 1", code)
	}
	select {
	case <-persisted:
	default:
		t.Fatal("final persist skipped after a missed drain deadline")
	}
}

// TestLifecycleFinalStepFailure: every final step is attempted even when
// an earlier one fails, and any failure makes the exit code 1.
func TestLifecycleFinalStepFailure(t *testing.T) {
	second := false
	_, cancel, codec := lcHarness(t, http.NotFoundHandler(), func(lc *Lifecycle) {
		lc.Final = []Step{
			{Name: "final snapshot", Run: func() error { return errors.New("disk full") }},
			{Name: "wal close", Run: func() error { second = true; return nil }},
		}
	})
	cancel()
	if code := waitExit(t, codec); code != 1 {
		t.Fatalf("failing final step exit code = %d, want 1", code)
	}
	if !second {
		t.Fatal("later final step skipped after an earlier failure")
	}
}

// TestLifecycleListenFailure: a dead listener exits 1 — and the final
// steps still run, so an already-opened WAL closes cleanly.
func TestLifecycleListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately
	closed := false
	lc := Lifecycle{
		Server:   NewHTTPServer("", http.NotFoundHandler(), time.Second),
		Listener: ln,
		Final:    []Step{{Name: "wal close", Run: func() error { closed = true; return nil }}},
	}
	if code := lc.Run(context.Background()); code != 1 {
		t.Fatalf("listen failure exit code = %d, want 1", code)
	}
	if !closed {
		t.Fatal("final step skipped on listen failure")
	}
}
