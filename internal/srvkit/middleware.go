package srvkit

import (
	"net/http"
	"time"
)

// APIStack is the hardening stack for API routes: body cap and handler
// timeout, composed in the one correct order. Wrap is applied per route
// (or per sub-mux), and the probe/metrics endpoints are mounted beside
// it, so a stalled API handler can exhaust its timeout without ever
// delaying /healthz, /readyz, /metrics, or pprof.
type APIStack struct {
	// MaxBodyBytes caps each request body via http.MaxBytesReader;
	// handlers see *http.MaxBytesError past it. ≤ 0 disables the cap.
	MaxBodyBytes int64
	// RequestTimeout bounds the whole request (body read included) via
	// http.TimeoutHandler; overruns answer 503 with TimeoutBody. ≤ 0
	// disables the timeout.
	RequestTimeout time.Duration
	// TimeoutBody is the 503 body written on overrun (plain text or
	// pre-encoded JSON, matching what the route's clients parse).
	TimeoutBody string
}

// Wrap layers the stack around api. Request flow is
//
//	TimeoutHandler → MaxBytesReader → api
//
// so the timeout clock covers reading the (capped) body too — a client
// trickling a large body cannot hold a handler goroutine past the
// deadline.
func (s APIStack) Wrap(api http.Handler) http.Handler {
	h := api
	if s.MaxBodyBytes > 0 {
		inner, limit := h, s.MaxBodyBytes
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
			inner.ServeHTTP(w, r)
		})
	}
	if s.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, s.RequestTimeout, s.TimeoutBody)
	}
	return h
}
