package srvkit

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pairfn/internal/obs"
)

// echoHandler reads the whole body and reports a MaxBytesReader overrun
// as 413, the way the real API handlers do.
var echoHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	b, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "too big", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Write(b)
})

// TestAPIStackOrder is the middleware-order contract: the body cap fires
// inside the timeout (oversized body → 413), the timeout cuts a slow
// handler with the configured 503 body, and a small fast request passes
// through untouched.
func TestAPIStackOrder(t *testing.T) {
	stack := APIStack{MaxBodyBytes: 16, RequestTimeout: 50 * time.Millisecond, TimeoutBody: "cut off"}

	ts := httptest.NewServer(stack.Wrap(echoHandler))
	defer ts.Close()

	resp, err := http.Post(ts.URL, "text/plain", strings.NewReader(strings.Repeat("x", 64)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL, "text/plain", strings.NewReader("ok"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b) != "ok" {
		t.Fatalf("small body: %d %q", resp.StatusCode, b)
	}

	slow := stack.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(500 * time.Millisecond)
	}))
	ts2 := httptest.NewServer(slow)
	defer ts2.Close()
	resp, err = http.Get(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || string(b) != "cut off" {
		t.Fatalf("slow handler: %d %q, want 503 %q", resp.StatusCode, b, "cut off")
	}
}

// TestAPIStackDisabled: zero values wrap nothing.
func TestAPIStackDisabled(t *testing.T) {
	h := APIStack{}.Wrap(echoHandler)
	ts := httptest.NewServer(h)
	defer ts.Close()
	big := strings.Repeat("y", 1<<16)
	resp, err := http.Post(ts.URL, "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(b) != len(big) {
		t.Fatalf("uncapped echo: %d, %d bytes", resp.StatusCode, len(b))
	}
}

// TestProbesExemptFromAPIStack: while API handlers are stalled well past
// their timeout and bodies are capped at a few bytes, the probes (and
// anything else mounted beside the stack) still answer instantly and
// uncapped — the starvation contract.
func TestProbesExemptFromAPIStack(t *testing.T) {
	apiEntered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(apiEntered) })
		<-release // stalls far beyond RequestTimeout
	})
	defer close(release)

	mux := http.NewServeMux()
	mux.Handle("/api", APIStack{MaxBodyBytes: 4, RequestTimeout: 30 * time.Millisecond, TimeoutBody: "cut"}.Wrap(api))
	Probes{Ready: obs.NewFlag(true)}.Register(mux)

	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Stall an API request; it must come back as the TimeoutHandler's
	// 503 even though the handler goroutine is still blocked.
	apiDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/api")
		if err != nil {
			apiDone <- -1
			return
		}
		resp.Body.Close()
		apiDone <- resp.StatusCode
	}()
	<-apiEntered

	// Probes respond while the API handler is wedged, and a probe body
	// larger than the API cap is irrelevant to them.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s while API stalled: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s while API stalled: %d", path, resp.StatusCode)
		}
	}
	if code := <-apiDone; code != http.StatusServiceUnavailable {
		t.Fatalf("stalled API request: %d, want 503", code)
	}
}

// TestProbeBodies pins the probe protocol: draining beats degraded,
// degraded carries its detail, and the ready detail text surfaces
// warnings without flipping the status code.
func TestProbeBodies(t *testing.T) {
	ready := obs.NewFlag(true)
	deg := NewDegraded(DegradedConfig{Detail: "read-only (WAL volume failed)"})
	detail := ""
	p := Probes{Ready: ready, Degraded: deg.Probe, Detail: func() string { return detail }}

	get := func() (int, string) {
		rec := httptest.NewRecorder()
		p.Readyz().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get(); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("healthy: %d %q", code, body)
	}
	detail = "snapshot failing: 3 consecutive failures"
	if code, body := get(); code != http.StatusOK || body != "ready (snapshot failing: 3 consecutive failures)\n" {
		t.Fatalf("warning detail: %d %q", code, body)
	}
	detail = ""
	deg.Degrade(errors.New("disk gone"))
	if code, body := get(); code != http.StatusServiceUnavailable || body != "degraded: read-only (WAL volume failed)\n" {
		t.Fatalf("degraded: %d %q", code, body)
	}
	ready.Set(false)
	if code, body := get(); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("draining takes precedence: %d %q", code, body)
	}

	rec := httptest.NewRecorder()
	p.Healthz().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}
