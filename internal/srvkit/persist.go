package srvkit

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"pairfn/internal/obs"
)

// DefaultPersistFailThreshold is how many consecutive failures it takes
// before the scheduler reports Failing (and /readyz detail flips).
const DefaultPersistFailThreshold = 3

// PersistConfig parameterizes NewPersist.
type PersistConfig struct {
	// Name tags the loop in logs and as the metric label: "snapshot"
	// for tabledserver, "checkpoint" for wbcserver.
	Name string
	// Save persists the state once. Required.
	Save func() error
	// Every is the periodic interval for Run; ≤ 0 means Run is a no-op
	// and only explicit SaveNow calls happen (on-demand + shutdown).
	Every time.Duration
	// FailThreshold is the consecutive-failure count at which Failing()
	// flips (0 → DefaultPersistFailThreshold).
	FailThreshold int
	// Registry receives the srvkit_persist_* series; nil disables them.
	Registry *obs.Registry
	// Logger, when non-nil, logs each save (Info on success, Error on
	// failure with the running consecutive count).
	Logger *slog.Logger
}

// Persist runs a state-saving function periodically with failure
// accounting. The old mains' snapshot/checkpoint tickers logged an error
// and moved on — a persist loop could fail for hours with nothing a
// monitor could see. Persist exports, per loop name:
//
//	srvkit_persist_runs_total{name,result="ok"|"error"}      counter
//	srvkit_persist_consecutive_failures{name}                gauge
//	srvkit_persist_last_success_timestamp_seconds{name}      gauge
//
// and reports Failing once FailThreshold consecutive saves have failed,
// which Probes surfaces in the /readyz detail text. A success resets the
// streak. All methods are nil-receiver safe.
type Persist struct {
	name      string
	save      func() error
	every     time.Duration
	threshold int
	logger    *slog.Logger

	okC     *obs.Counter
	errC    *obs.Counter
	consecG *obs.Gauge
	lastOkG *obs.Gauge

	now func() time.Time // test seam

	mu      sync.Mutex
	consec  int
	lastErr error
}

// NewPersist builds the scheduler (healthy, nothing saved yet).
func NewPersist(cfg PersistConfig) *Persist {
	p := &Persist{
		name:      cfg.Name,
		save:      cfg.Save,
		every:     cfg.Every,
		threshold: cfg.FailThreshold,
		logger:    cfg.Logger,
		now:       time.Now,
	}
	if p.name == "" {
		p.name = "persist"
	}
	if p.threshold <= 0 {
		p.threshold = DefaultPersistFailThreshold
	}
	if reg := cfg.Registry; reg != nil {
		reg.Help("srvkit_persist_runs_total", "Periodic persist (snapshot/checkpoint) attempts, by loop and result.")
		reg.Help("srvkit_persist_consecutive_failures", "Consecutive persist failures; resets to 0 on success.")
		reg.Help("srvkit_persist_last_success_timestamp_seconds", "Unix time of the last successful persist (0 = never).")
		p.okC = reg.Counter("srvkit_persist_runs_total", obs.L("name", p.name), obs.L("result", "ok"))
		p.errC = reg.Counter("srvkit_persist_runs_total", obs.L("name", p.name), obs.L("result", "error"))
		p.consecG = reg.Gauge("srvkit_persist_consecutive_failures", obs.L("name", p.name))
		p.lastOkG = reg.Gauge("srvkit_persist_last_success_timestamp_seconds", obs.L("name", p.name))
	}
	return p
}

// SaveNow persists once, with accounting: counters, the consecutive-
// failure gauge, the last-success timestamp, and one log line. It is the
// function to wire everywhere a save happens — the periodic loop, the
// on-demand endpoint, and the shutdown path — so every save attempt is
// visible to monitoring the same way.
func (p *Persist) SaveNow() error {
	if p == nil {
		return nil
	}
	start := p.now()
	err := p.save()
	p.mu.Lock()
	if err != nil {
		p.consec++
		p.lastErr = err
	} else {
		p.consec = 0
		p.lastErr = nil
	}
	consec := p.consec
	p.mu.Unlock()

	p.consecG.Set(int64(consec))
	if err != nil {
		p.errC.Inc()
		if p.logger != nil {
			p.logger.Error(p.name+" failed", "err", err, "consecutive_failures", consec)
		}
		return err
	}
	p.okC.Inc()
	p.lastOkG.Set(p.now().Unix())
	if p.logger != nil {
		p.logger.Info(p.name+" saved", "took", p.now().Sub(start))
	}
	return nil
}

// Run is the periodic loop: one SaveNow per tick until ctx is canceled.
// It returns promptly on cancellation and is a no-op when Every ≤ 0,
// so it can be handed to Lifecycle.Background unconditionally.
func (p *Persist) Run(ctx context.Context) {
	if p == nil || p.every <= 0 {
		return
	}
	t := time.NewTicker(p.every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = p.SaveNow() // accounted and logged inside
		}
	}
}

// ConsecutiveFailures returns the current failure streak.
func (p *Persist) ConsecutiveFailures() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consec
}

// Failing reports whether the streak has reached the threshold.
func (p *Persist) Failing() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consec >= p.threshold
}

// Detail returns the /readyz warning text while Failing, e.g.
// "snapshot failing: 3 consecutive failures", and "" otherwise. Wire it
// to Probes.Detail.
func (p *Persist) Detail() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.consec < p.threshold {
		return ""
	}
	return fmt.Sprintf("%s failing: %d consecutive failures", p.name, p.consec)
}
