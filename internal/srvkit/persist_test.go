package srvkit

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pairfn/internal/obs"
)

// TestPersistFailureAccounting walks the scheduler through fail → fail →
// fail → recover and checks every observable at each step: the streak,
// the Failing/Detail flip at the threshold, the counters, and the
// last-success timestamp.
func TestPersistFailureAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	fail := errors.New("disk full")
	var saveErr error
	p := NewPersist(PersistConfig{
		Name:     "snapshot",
		Save:     func() error { return saveErr },
		Registry: reg,
	})
	// Deterministic clock.
	clock := time.Unix(1_000_000, 0)
	p.now = func() time.Time { return clock }

	if p.Failing() || p.Detail() != "" || p.ConsecutiveFailures() != 0 {
		t.Fatal("fresh scheduler not healthy")
	}

	saveErr = fail
	for i := 1; i <= 3; i++ {
		if err := p.SaveNow(); !errors.Is(err, fail) {
			t.Fatalf("SaveNow #%d = %v", i, err)
		}
		if got := p.ConsecutiveFailures(); got != i {
			t.Fatalf("after %d failures: streak %d", i, got)
		}
		// Below the default threshold of 3, monitoring sees the gauge
		// but /readyz stays quiet.
		if wantFailing := i >= DefaultPersistFailThreshold; p.Failing() != wantFailing {
			t.Fatalf("after %d failures: Failing() = %v", i, p.Failing())
		}
	}
	if got := p.Detail(); got != "snapshot failing: 3 consecutive failures" {
		t.Fatalf("Detail() = %q", got)
	}

	prom := promText(t, reg)
	for _, want := range []string{
		`srvkit_persist_runs_total{name="snapshot",result="error"} 3`,
		`srvkit_persist_consecutive_failures{name="snapshot"} 3`,
		`srvkit_persist_last_success_timestamp_seconds{name="snapshot"} 0`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q:\n%s", want, prom)
		}
	}

	// Recovery resets the streak and stamps the success time.
	saveErr = nil
	if err := p.SaveNow(); err != nil {
		t.Fatal(err)
	}
	if p.Failing() || p.Detail() != "" || p.ConsecutiveFailures() != 0 {
		t.Fatal("success did not reset the streak")
	}
	prom = promText(t, reg)
	for _, want := range []string{
		`srvkit_persist_runs_total{name="snapshot",result="ok"} 1`,
		`srvkit_persist_consecutive_failures{name="snapshot"} 0`,
		`srvkit_persist_last_success_timestamp_seconds{name="snapshot"} 1000000`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q:\n%s", want, prom)
		}
	}
}

// TestPersistThreshold: a custom threshold moves the Detail flip.
func TestPersistThreshold(t *testing.T) {
	p := NewPersist(PersistConfig{
		Name:          "checkpoint",
		Save:          func() error { return errors.New("nope") },
		FailThreshold: 2,
	})
	p.SaveNow()
	if p.Failing() {
		t.Fatal("failing after one failure with threshold 2")
	}
	p.SaveNow()
	if !p.Failing() || !strings.Contains(p.Detail(), "checkpoint failing: 2") {
		t.Fatalf("threshold 2 not honored: %q", p.Detail())
	}
}

// TestPersistRun: the loop ticks until canceled, then stops promptly.
func TestPersistRun(t *testing.T) {
	saves := make(chan struct{}, 64)
	p := NewPersist(PersistConfig{
		Name:  "tick",
		Save:  func() error { saves <- struct{}{}; return nil },
		Every: 2 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()
	for i := 0; i < 3; i++ {
		select {
		case <-saves:
		case <-time.After(2 * time.Second):
			t.Fatal("periodic save never fired")
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// TestPersistNilAndDisabled: a nil scheduler and a zero interval are
// both inert, so mains can wire them unconditionally.
func TestPersistNilAndDisabled(t *testing.T) {
	var p *Persist
	if err := p.SaveNow(); err != nil || p.Failing() || p.Detail() != "" {
		t.Fatal("nil scheduler not inert")
	}
	p.Run(context.Background()) // returns immediately

	ran := false
	q := NewPersist(PersistConfig{Save: func() error { ran = true; return nil }})
	q.Run(context.Background()) // Every ≤ 0: no loop
	if ran {
		t.Fatal("Run with Every=0 invoked Save")
	}
}

func promText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
