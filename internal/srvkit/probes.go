package srvkit

import (
	"io"
	"net/http"
	"net/http/pprof"

	"pairfn/internal/obs"
)

// Probes are the liveness/readiness endpoints every pairfn server
// exposes. They are mounted on the mux directly — never behind APIStack —
// so a slow API timeout or a body cap can never starve an operator or a
// load balancer:
//
//	GET /healthz   200 "ok" while the process serves at all
//	GET /readyz    200 "ready" | 503 "draining" | 503 "degraded: <detail>"
//
// The readyz ready body can carry a warning detail, e.g.
// "ready (snapshot failing: 3 consecutive failures)", so monitoring that
// only watches the probe still sees a persist loop going bad.
type Probes struct {
	// Ready gates /readyz; nil reads as always ready. Lifecycle.Run
	// flips it false before draining.
	Ready *obs.Flag
	// Degraded, when non-nil, reports the sticky read-only state and its
	// detail text (see Degraded.Probe). Draining takes precedence.
	Degraded func() (degraded bool, detail string)
	// Detail, when non-nil and returning non-empty, is appended to the
	// ready body as "ready (<detail>)".
	Detail func() string
}

// Healthz is the liveness handler: 200 while the process can serve.
func (p Probes) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
}

// Readyz is the readiness handler.
func (p Probes) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !p.Ready.Get() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		if p.Degraded != nil {
			if bad, detail := p.Degraded(); bad {
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, "degraded: "+detail+"\n")
				return
			}
		}
		if p.Detail != nil {
			if d := p.Detail(); d != "" {
				io.WriteString(w, "ready ("+d+")\n")
				return
			}
		}
		io.WriteString(w, "ready\n")
	})
}

// Register mounts both probes on mux.
func (p Probes) Register(mux *http.ServeMux) {
	mux.Handle("GET /healthz", p.Healthz())
	mux.Handle("GET /readyz", p.Readyz())
}

// MountPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// mux. Mounted explicitly: importing net/http/pprof only registers on
// http.DefaultServeMux, which pairfn servers do not use. Like the
// probes, pprof sits beside APIStack, not behind it — profiling a server
// whose API is stalled is exactly when pprof matters.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
