package srvkit

import (
	"context"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DefaultReloadPoll is how often a ConfigWatcher stats its file.
const DefaultReloadPoll = 2 * time.Second

// A ConfigWatcher triggers a Reload hook when a config file changes —
// the live-reconfiguration seam for daemons that read a file at boot.
// Two triggers, both standard operator moves: SIGHUP (explicit "reload
// now", classic daemon convention) and an mtime/size poll (catches
// config-management pushes nobody signals about). Wire Run as a
// srvkit.Lifecycle background task.
//
// Reload errors are logged and otherwise ignored: the daemon keeps
// serving its last good config, and the next trigger retries. The
// watcher itself never crashes the process.
type ConfigWatcher struct {
	// Path is the watched file.
	Path string
	// Poll is the stat interval (0 → DefaultReloadPoll; < 0 disables
	// polling, leaving SIGHUP the only trigger).
	Poll time.Duration
	// Reload applies the new config; called from the watcher goroutine,
	// never concurrently with itself.
	Reload func(ctx context.Context) error
	// Logger receives one line per trigger (may be nil).
	Logger *slog.Logger
}

// Run watches until ctx ends.
func (cw ConfigWatcher) Run(ctx context.Context) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	poll := cw.Poll
	if poll == 0 {
		poll = DefaultReloadPoll
	}
	var tick <-chan time.Time
	if poll > 0 {
		t := time.NewTicker(poll)
		defer t.Stop()
		tick = t.C
	}

	lastMod, lastSize := cw.stat()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			cw.fire(ctx, "SIGHUP")
			lastMod, lastSize = cw.stat()
		case <-tick:
			mod, size := cw.stat()
			if mod.Equal(lastMod) && size == lastSize {
				continue
			}
			lastMod, lastSize = mod, size
			cw.fire(ctx, "file changed")
		}
	}
}

// stat reads the file's change signature; a missing file reads as the
// zero signature, so the first write after creation still triggers.
func (cw ConfigWatcher) stat() (time.Time, int64) {
	fi, err := os.Stat(cw.Path)
	if err != nil {
		return time.Time{}, -1
	}
	return fi.ModTime(), fi.Size()
}

func (cw ConfigWatcher) fire(ctx context.Context, why string) {
	err := cw.Reload(ctx)
	if cw.Logger == nil {
		return
	}
	if err != nil {
		cw.Logger.Error("config reload failed; keeping previous config",
			"path", cw.Path, "trigger", why, "err", err)
		return
	}
	cw.Logger.Info("config reloaded", "path", cw.Path, "trigger", why)
}
