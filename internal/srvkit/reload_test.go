package srvkit

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestConfigWatcherPollTrigger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	var reloads atomic.Int64
	cw := ConfigWatcher{
		Path: path,
		Poll: 5 * time.Millisecond,
		Reload: func(context.Context) error {
			reloads.Add(1)
			return nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); cw.Run(ctx) }()
	defer func() { cancel(); <-done }()

	// An unchanged file never fires.
	time.Sleep(30 * time.Millisecond)
	if n := reloads.Load(); n != 0 {
		t.Fatalf("unchanged file fired %d reloads", n)
	}

	// A content change (different size) fires exactly once, then settles.
	if err := os.WriteFile(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reload after edit", func() bool { return reloads.Load() >= 1 })
	time.Sleep(30 * time.Millisecond)
	if n := reloads.Load(); n != 1 {
		t.Fatalf("one edit fired %d reloads", n)
	}
}

func TestConfigWatcherReloadErrorKeepsWatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	var reloads atomic.Int64
	cw := ConfigWatcher{
		Path: path,
		Poll: 5 * time.Millisecond,
		Reload: func(context.Context) error {
			if reloads.Add(1) == 1 {
				return errors.New("parse error")
			}
			return nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); cw.Run(ctx) }()
	defer func() { cancel(); <-done }()

	// Let the watcher take its baseline stat before editing, else the edit
	// lands inside the initial signature and never reads as a change.
	time.Sleep(20 * time.Millisecond)

	// First edit fails to apply; the watcher must survive and fire again
	// on the next edit rather than wedging on the bad config.
	if err := os.WriteFile(path, []byte("bad-edit"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failed reload", func() bool { return reloads.Load() >= 1 })
	if err := os.WriteFile(path, []byte("fixed-edit-x"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "retry after fixed edit", func() bool { return reloads.Load() >= 2 })
}

func TestConfigWatcherSIGHUP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	var reloads atomic.Int64
	cw := ConfigWatcher{
		Path:   path,
		Poll:   -1, // polling off: SIGHUP is the only trigger
		Reload: func(context.Context) error { reloads.Add(1); return nil },
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); cw.Run(ctx) }()
	defer func() { cancel(); <-done }()

	// Give signal.Notify a beat to install, then signal ourselves. SIGHUP
	// reloads even with an untouched file — the operator said "now".
	time.Sleep(20 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "SIGHUP reload", func() bool { return reloads.Load() >= 1 })
}
