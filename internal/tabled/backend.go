package tabled

import (
	"pairfn/internal/extarray"
)

// Info describes a backend for /v1/stats and load-generator reports.
type Info struct {
	Backend string `json:"backend"` // "sharded", "sync", "hash", ...
	Mapping string `json:"mapping"` // storage-mapping name ("" for hash)
	Shards  int    `json:"shards"`  // 1 for unsharded backends
}

// A Backend is what the tabled server (and the load generator) drives: an
// extendible table with batched operations. Sharded implements it natively;
// WrapTable adapts any extarray.Table — e.g. a Sync-wrapped Array, the E23
// baseline — by looping the batch through per-op calls (each paying the
// wrapped table's per-op lock, which is exactly the contrast under test).
type Backend[T any] interface {
	extarray.Table[T]
	SetBatch(cells []Cell[T]) []error
	GetBatch(keys []Pos) []GetResult[T]
	Describe() Info
}

// Describe implements Backend.
func (s *Sharded[T]) Describe() Info {
	return Info{Backend: "sharded", Mapping: s.f.Name(), Shards: len(s.shards)}
}

// tableBackend adapts an extarray.Table to Backend by per-op looping.
type tableBackend[T any] struct {
	extarray.Table[T]
	info Info
}

// WrapTable adapts t (typically extarray.NewSync over an Array or
// HashBacked) to the Backend interface. Batches execute as one locked call
// per cell — the global-mutex baseline the sharded store replaces.
func WrapTable[T any](t extarray.Table[T], info Info) Backend[T] {
	if info.Shards == 0 {
		info.Shards = 1
	}
	return &tableBackend[T]{Table: t, info: info}
}

func (b *tableBackend[T]) Describe() Info { return b.info }

func (b *tableBackend[T]) SetBatch(cells []Cell[T]) []error {
	errs := make([]error, len(cells))
	for i, c := range cells {
		errs[i] = b.Set(c.X, c.Y, c.V)
	}
	return errs
}

func (b *tableBackend[T]) GetBatch(keys []Pos) []GetResult[T] {
	res := make([]GetResult[T], len(keys))
	for i, k := range keys {
		res[i].V, res[i].OK, res[i].Err = b.Get(k.X, k.Y)
	}
	return res
}
