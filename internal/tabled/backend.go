package tabled

import (
	"pairfn/internal/extarray"
)

// Info describes a backend for /v1/stats and load-generator reports.
type Info struct {
	Backend string `json:"backend"` // "sharded", "sync", "hash", ...
	Mapping string `json:"mapping"` // storage-mapping name ("" for hash)
	Shards  int    `json:"shards"`  // 1 for unsharded backends
}

// A Backend is what the tabled server (and the load generator) drives: an
// extendible table with batched operations. Sharded implements it natively;
// WrapTable adapts any extarray.Table — e.g. a Sync-wrapped Array, the E23
// baseline — by looping the batch through per-op calls (each paying the
// wrapped table's per-op lock, which is exactly the contrast under test).
type Backend[T any] interface {
	extarray.Table[T]
	SetBatch(cells []Cell[T]) []error
	GetBatch(keys []Pos) []GetResult[T]
	Describe() Info
}

// BatchInto is the allocation-free face of a Backend: batch operations
// that write outcomes into caller-owned slices (whose lengths must equal
// the input's) instead of allocating result slices. The binary wire path
// asserts for it and reuses pooled buffers across requests; backends
// without it fall back to the allocating Backend methods.
type BatchInto[T any] interface {
	SetBatchInto(cells []Cell[T], errs []error)
	GetBatchInto(keys []Pos, res []GetResult[T])
}

// Describe implements Backend.
func (s *Sharded[T]) Describe() Info {
	return Info{Backend: "sharded", Mapping: s.f.Name(), Shards: len(s.shards)}
}

// tableBackend adapts an extarray.Table to Backend by per-op looping.
type tableBackend[T any] struct {
	extarray.Table[T]
	info Info
}

// WrapTable adapts t (typically extarray.NewSync over an Array or
// HashBacked) to the Backend interface. Batches execute as one locked call
// per cell — the global-mutex baseline the sharded store replaces.
func WrapTable[T any](t extarray.Table[T], info Info) Backend[T] {
	if info.Shards == 0 {
		info.Shards = 1
	}
	return &tableBackend[T]{Table: t, info: info}
}

func (b *tableBackend[T]) Describe() Info { return b.info }

func (b *tableBackend[T]) SetBatch(cells []Cell[T]) []error {
	errs := make([]error, len(cells))
	b.SetBatchInto(cells, errs)
	return errs
}

func (b *tableBackend[T]) GetBatch(keys []Pos) []GetResult[T] {
	res := make([]GetResult[T], len(keys))
	b.GetBatchInto(keys, res)
	return res
}

// SetBatchInto implements BatchInto (still one locked call per cell — the
// contrast under test; only the result slice is caller-owned).
func (b *tableBackend[T]) SetBatchInto(cells []Cell[T], errs []error) {
	for i, c := range cells {
		errs[i] = b.Set(c.X, c.Y, c.V)
	}
}

// GetBatchInto implements BatchInto.
func (b *tableBackend[T]) GetBatchInto(keys []Pos, res []GetResult[T]) {
	for i, k := range keys {
		res[i].V, res[i].OK, res[i].Err = b.Get(k.X, k.Y)
	}
}
