package tabled

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pairfn/internal/retry"
)

// WireBinary selects the length-prefixed binary batch codec (docs/WIRE.md)
// on a Client; WireJSON (or empty) selects JSON. Binary batches are
// encoded into pooled buffers and pipelined over the same persistent
// connections — the transport-side half of the zero-allocation batch path.
const (
	WireJSON   = "json"
	WireBinary = "binary"
)

// Client is the typed Go client for a tabled server. The zero HTTP field
// uses a shared pooled transport (see DefaultTransport); Base is e.g.
// "http://127.0.0.1:8080". Wire selects the /v1/batch encoding: WireJSON
// (the default) or WireBinary.
//
// With Retry set, Batch (and everything built on it) retries transport
// failures and retryable statuses (5xx, 408, 429) under jittered
// exponential backoff. Every Batch carries a fresh Idempotency-Key that is
// REUSED across its retries, so a replayed batch whose original ack was
// lost is answered from the server's idempotency cache instead of being
// applied (and WAL-logged) a second time. 4xx responses are permanent and
// fail immediately.
type Client struct {
	Base  string
	HTTP  *http.Client
	Retry *retry.Policy
	Wire  string // WireJSON ("" = JSON) or WireBinary
	// Timeout, when positive, bounds each individual batch attempt with its
	// own deadline (derived from the call's context). Retries get a fresh
	// deadline per attempt, so one slow attempt doesn't consume the whole
	// retry budget — the per-call deadline hook the cluster router uses to
	// keep a stuck member from stalling a fan-out.
	Timeout time.Duration
}

// DefaultTransport is the pooled transport zero-HTTP Clients share.
// http.DefaultTransport keeps only 2 idle connections per host
// (DefaultMaxIdleConnsPerHost), so a loadgen driving N ≫ 2 concurrent
// batches at one server closes and re-dials N−2 connections per round —
// measurable dial/TLS churn on exactly the hot path the binary codec
// speeds up. Pinning MaxIdleConnsPerHost at MaxConcurrentBatchConns keeps
// every worker's connection alive between batches (the regression test
// counts dials).
var DefaultTransport = newPooledTransport()

// MaxConcurrentBatchConns is the per-host idle-connection pool size of
// DefaultTransport: the number of concurrent Batch streams one process can
// sustain without re-dialing between batches.
const MaxConcurrentBatchConns = 256

func newPooledTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = MaxConcurrentBatchConns
	t.MaxIdleConns = MaxConcurrentBatchConns
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// defaultHTTPClient wraps DefaultTransport for zero-HTTP Clients.
var defaultHTTPClient = &http.Client{Transport: DefaultTransport}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// frameBufPool recycles binary request frames across Batch calls: encoding
// reuses the pooled capacity, so a steady-state binary Batch allocates
// nothing for its request body.
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

// NewIdemKey returns a fresh 128-bit idempotency key, for callers that
// coordinate replay protection across several servers — the cluster router
// derives per-node keys from one of these when the client didn't send its
// own.
func NewIdemKey() string { return newIdemKey() }

// newIdemKey returns a fresh 128-bit idempotency key.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; keys only need
		// uniqueness, so fail open with an empty key (no replay cache).
		return ""
	}
	return hex.EncodeToString(b[:])
}

// retryableStatus reports whether an HTTP status is worth retrying: server
// errors and explicit backpressure, but never client errors.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusRequestTimeout || code == http.StatusTooManyRequests
}

// retryAfter parses a Retry-After header value in either RFC 9110 form —
// delta-seconds ("2") or HTTP-date — into a wait duration. now is a seam
// for tests.
func retryAfter(v string, now func() time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now())
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Batch executes ops in order on the server and returns one result per op.
// A non-nil error means the request itself failed (transport or non-200,
// after any configured retries); per-op failures are reported in each
// OpResult.Err.
func (c *Client) Batch(ctx context.Context, ops []Op) ([]OpResult, error) {
	return c.BatchWithKey(ctx, ops, newIdemKey())
}

// BatchWithKey is Batch with a caller-supplied Idempotency-Key: the key is
// sent on every attempt, so the server's replay cache absorbs retries from
// any layer that knows the key — a proxy re-fanning a client's retried
// batch reuses the client's key and the member replays instead of
// re-applying. An empty key sends no header (retries then unprotected).
func (c *Client) BatchWithKey(ctx context.Context, ops []Op, key string) ([]OpResult, error) {
	var (
		body        []byte
		contentType string
		err         error
	)
	if c.Wire == WireBinary {
		buf := frameBufPool.Get().(*[]byte)
		defer frameBufPool.Put(buf)
		*buf, err = AppendBatchRequest((*buf)[:0], ops)
		if err != nil {
			return nil, err
		}
		body, contentType = *buf, ContentTypeBinary
	} else {
		body, err = json.Marshal(BatchRequest{Ops: ops})
		if err != nil {
			return nil, err
		}
		contentType = "application/json"
	}
	if c.Retry == nil {
		return c.batchOnce(ctx, body, contentType, key, len(ops))
	}
	var res []OpResult
	err = c.Retry.Do(ctx, func(ctx context.Context) error {
		r, err := c.batchOnce(ctx, body, contentType, key, len(ops))
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	return res, err
}

// batchOnce performs one POST /v1/batch attempt. Non-retryable statuses
// come back marked retry.Permanent.
func (c *Client) batchOnce(ctx context.Context, body []byte, contentType, key string, nops int) ([]OpResult, error) {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", contentType)
	if key != "" {
		req.Header.Set(IdempotencyKeyHeader, key)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err // transport: retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("%w: %s: %s", ErrRemote, resp.Status, bytes.TrimSpace(msg))
		if !retryableStatus(resp.StatusCode) {
			return nil, retry.Permanent(err)
		}
		if d, ok := retryAfter(resp.Header.Get("Retry-After"), time.Now); ok {
			// The server named when retrying can succeed (a 429's admission
			// window, a 503's drain estimate); backing off blind earlier
			// just burns attempts against a closed door.
			return nil, retry.After(err, d)
		}
		return nil, err
	}
	if contentType == ContentTypeBinary {
		// Read the whole frame, then decode aliasing it: the buffer is
		// freshly owned by this response, so the results stay valid for as
		// long as the caller keeps them — no pooling on the decode side.
		frame, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("%w: reading response: %v", ErrRemote, err)
		}
		results, err := DecodeBatchResponse(frame, nil, 0)
		if err != nil {
			// A truncated or garbled frame fails the CRC; retrying is safe
			// because the idempotency key replays the recorded response.
			return nil, fmt.Errorf("%w: decoding response: %v", ErrRemote, err)
		}
		if len(results) != nops {
			return nil, fmt.Errorf("%w: %d results for %d ops", ErrRemote, len(results), nops)
		}
		return results, nil
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		// A truncated or garbled response body: retrying is safe because
		// the idempotency key replays the recorded response.
		return nil, fmt.Errorf("%w: decoding response: %v", ErrRemote, err)
	}
	if len(br.Results) != nops {
		return nil, fmt.Errorf("%w: %d results for %d ops", ErrRemote, len(br.Results), nops)
	}
	return br.Results, nil
}

// Set stores every cell, returning the first per-cell failure.
func (c *Client) Set(ctx context.Context, cells ...Cell[string]) error {
	ops := make([]Op, len(cells))
	for i, cell := range cells {
		ops[i] = Op{Op: "set", X: cell.X, Y: cell.Y, V: cell.V}
	}
	res, err := c.Batch(ctx, ops)
	if err != nil {
		return err
	}
	for i, r := range res {
		if r.Err != "" {
			return fmt.Errorf("%w: set (%d, %d): %s", ErrRemote, cells[i].X, cells[i].Y, r.Err)
		}
	}
	return nil
}

// Get reads one cell.
func (c *Client) Get(ctx context.Context, x, y int64) (v string, found bool, err error) {
	res, err := c.Batch(ctx, []Op{{Op: "get", X: x, Y: y}})
	if err != nil {
		return "", false, err
	}
	if res[0].Err != "" {
		return "", false, fmt.Errorf("%w: get (%d, %d): %s", ErrRemote, x, y, res[0].Err)
	}
	return res[0].V, res[0].Found, nil
}

// GetBatch reads many cells in one request; results are in key order.
func (c *Client) GetBatch(ctx context.Context, keys []Pos) ([]OpResult, error) {
	ops := make([]Op, len(keys))
	for i, k := range keys {
		ops[i] = Op{Op: "get", X: k.X, Y: k.Y}
	}
	return c.Batch(ctx, ops)
}

// Resize sets the logical dimensions.
func (c *Client) Resize(ctx context.Context, rows, cols int64) error {
	res, err := c.Batch(ctx, []Op{{Op: "resize", Rows: rows, Cols: cols}})
	if err != nil {
		return err
	}
	if res[0].Err != "" {
		return fmt.Errorf("%w: resize to %d×%d: %s", ErrRemote, rows, cols, res[0].Err)
	}
	return nil
}

// Dims returns the current logical dimensions.
func (c *Client) Dims(ctx context.Context) (rows, cols int64, err error) {
	res, err := c.Batch(ctx, []Op{{Op: "dims"}})
	if err != nil {
		return 0, 0, err
	}
	return res[0].Rows, res[0].Cols, nil
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*StatsReply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
	var reply StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Snapshot asks the server to persist now (POST /v1/snapshot).
func (c *Client) Snapshot(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w: %s: %s", ErrRemote, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
