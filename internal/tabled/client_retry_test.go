package tabled

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pairfn/internal/retry"
)

func TestRetryAfterParsing(t *testing.T) {
	now := func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"3", 3 * time.Second, true},
		{"0", 0, true},
		{"-5", 0, false}, // negative delta is malformed, not "now"
		{"garbage", 0, false},
		{"3.5", 0, false}, // RFC 9110 delta-seconds is an integer
		{"Thu, 07 Aug 2026 12:00:10 GMT", 10 * time.Second, true},
		{"Thu, 07 Aug 2026 11:00:00 GMT", 0, true}, // past date → retry now
	}
	for _, c := range cases {
		got, ok := retryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("retryAfter(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestClientHonorsRetryAfter: a 429 carrying Retry-After must schedule the
// client's next attempt at the server's hint, not the jittered default —
// the limiter computed exactly when admission reopens.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[{"ok":true}]}`))
	}))
	defer srv.Close()

	var waits []time.Duration
	c := &Client{Base: srv.URL, Retry: &retry.Policy{
		Base:        time.Millisecond,
		MaxAttempts: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}}
	if _, err := c.Batch(context.Background(), []Op{{Op: "dims"}}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if len(waits) != 1 || waits[0] != 7*time.Second {
		t.Fatalf("waits = %v, want exactly [7s]", waits)
	}

	// Without the header the jittered schedule rules: the wait must stay
	// within the policy's own bounds, never a stale hint.
	calls.Store(0)
	waits = nil
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[{"ok":true}]}`))
	}))
	defer srv2.Close()
	c.Base = srv2.URL
	if _, err := c.Batch(context.Background(), []Op{{Op: "dims"}}); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] > time.Millisecond {
		t.Fatalf("hintless waits = %v, want one wait within Base", waits)
	}
}
