package tabled

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"pairfn/internal/extarray"
)

// This file is the binary wire codec for /v1/batch — the transport-side
// answer to the paper's thesis that cheap encode/decode belongs on the hot
// path. E23/E24 showed tabled throughput is JSON+HTTP bound, not store
// bound, so the batch body gets the same output-size discipline the PFs
// themselves have: a length-prefixed, CRC32C-guarded frame (the
// extarray/framelog idiom) carrying varint-packed ops, encoded and decoded
// with zero allocations in steady state. docs/WIRE.md is the normative
// spec; TestWireSpecExamples pins the byte-level examples there to this
// implementation.
//
// Aliasing contract: decoded strings (Op.V, OpResult.V, OpResult.Err)
// alias the frame buffer — that is what makes decode allocation-free. They
// are valid only until the caller reuses the buffer; anything retained
// beyond that (e.g. a value stored into the table) must be cloned first.

// ContentTypeBinary is the media type that selects the binary batch codec
// on /v1/batch; requests carrying it get a binary response with the same
// Content-Type. Anything else is treated as JSON.
const ContentTypeBinary = "application/x-tabled-batch"

// WireVersion is the frame payload version byte. Decoders reject other
// versions; see docs/WIRE.md for the compatibility rules.
const WireVersion = 1

// MaxWirePayload caps one batch frame payload, mirroring
// extarray.MaxFramePayload so a corrupt length prefix can never make a
// reader allocate unbounded memory.
const MaxWirePayload = extarray.MaxFramePayload

// wireHeaderSize is the fixed frame overhead: 4-byte little-endian payload
// length + 4-byte CRC32-Castagnoli of the payload.
const wireHeaderSize = 8

// wireCastagnoli is the CRC32C table for batch frames (the polynomial with
// hardware support on amd64/arm64, as in extarray/framelog).
var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports a binary batch frame that failed validation:
// truncation, a CRC mismatch, an unknown version, kind, or flag bit, or a
// field that runs past the payload. Decoders fail closed — no partially
// decoded batch is ever returned alongside a nil error.
var ErrBadFrame = errors.New("tabled: bad binary batch frame")

// Binary op kinds (docs/WIRE.md §3).
const (
	wireOpSet    = byte(1)
	wireOpGet    = byte(2)
	wireOpResize = byte(3)
	wireOpDims   = byte(4)
	wireOpStats  = byte(5)
)

// Binary result flag bits (docs/WIRE.md §4). Bits 6–7 are reserved and
// must be zero.
const (
	wireResOK       = byte(1 << 0)
	wireResFound    = byte(1 << 1)
	wireResHasValue = byte(1 << 2)
	wireResHasDims  = byte(1 << 3)
	wireResHasStats = byte(1 << 4)
	wireResHasErr   = byte(1 << 5)
	wireResKnown    = wireResOK | wireResFound | wireResHasValue | wireResHasDims | wireResHasStats | wireResHasErr
)

// aliasString returns a string sharing b's bytes without copying — the
// decode-side zero-allocation primitive. The result is only as immutable
// as the caller's discipline over b (see the aliasing contract above).
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// beginFrame reserves the 8-byte header in dst and returns the buffer with
// the payload start recorded by the caller as len(dst).
func beginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

// finishFrame back-fills the header for the payload dst[start:] and
// returns the completed frame.
func finishFrame(dst []byte, start int) ([]byte, error) {
	payload := dst[start:]
	if len(payload) > MaxWirePayload {
		return nil, fmt.Errorf("%w: payload of %d bytes exceeds %d", ErrBadFrame, len(payload), int64(MaxWirePayload))
	}
	hdr := dst[start-wireHeaderSize : start]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, wireCastagnoli))
	return dst, nil
}

// checkFrame validates the header of a complete frame and returns its
// payload (aliasing frame).
func checkFrame(frame []byte) ([]byte, error) {
	if len(frame) < wireHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the frame header", ErrBadFrame, len(frame))
	}
	n := binary.LittleEndian.Uint32(frame[0:4])
	if n > MaxWirePayload {
		return nil, fmt.Errorf("%w: length prefix %d exceeds %d", ErrBadFrame, n, int64(MaxWirePayload))
	}
	payload := frame[wireHeaderSize:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("%w: %d payload bytes, length prefix says %d", ErrBadFrame, len(payload), n)
	}
	if got, want := crc32.Checksum(payload, wireCastagnoli), binary.LittleEndian.Uint32(frame[4:8]); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (computed %08x, frame says %08x)", ErrBadFrame, got, want)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if payload[0] != WireVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (this codec speaks %d)", ErrBadFrame, payload[0], WireVersion)
	}
	return payload[1:], nil
}

// AppendBatchRequest appends the complete binary frame for ops to dst and
// returns the extended buffer. Encoding allocates only when dst lacks
// capacity, so a pooled buffer reaches zero allocations in steady state.
// Unknown op kinds are an error (the server-side JSON path reports them
// per-op instead; the binary encoder refuses to put them on the wire).
func AppendBatchRequest(dst []byte, ops []Op) ([]byte, error) {
	dst = beginFrame(dst)
	start := len(dst)
	dst = append(dst, WireVersion)
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		switch op.Op {
		case "set":
			dst = append(dst, wireOpSet)
			dst = binary.AppendVarint(dst, op.X)
			dst = binary.AppendVarint(dst, op.Y)
			dst = binary.AppendUvarint(dst, uint64(len(op.V)))
			dst = append(dst, op.V...)
		case "get":
			dst = append(dst, wireOpGet)
			dst = binary.AppendVarint(dst, op.X)
			dst = binary.AppendVarint(dst, op.Y)
		case "resize":
			dst = append(dst, wireOpResize)
			dst = binary.AppendVarint(dst, op.Rows)
			dst = binary.AppendVarint(dst, op.Cols)
		case "dims":
			dst = append(dst, wireOpDims)
		case "stats":
			dst = append(dst, wireOpStats)
		default:
			return nil, fmt.Errorf("%w: op %d has unknown kind %q", ErrBadFrame, i, op.Op)
		}
	}
	return finishFrame(dst, start)
}

// wireVarint reads one signed varint, failing closed.
func wireVarint(rest []byte, what string) (int64, []byte, error) {
	v, n := binary.Varint(rest)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad %s varint", ErrBadFrame, what)
	}
	return v, rest[n:], nil
}

// wireUvarint reads one unsigned varint, failing closed.
func wireUvarint(rest []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad %s uvarint", ErrBadFrame, what)
	}
	return v, rest[n:], nil
}

// wireBytes reads a uvarint-prefixed byte string, aliasing rest. (The
// length-prefix error message is built inline rather than via wireUvarint
// so the happy path performs no string concatenation.)
func wireBytes(rest []byte, what string) ([]byte, []byte, error) {
	n, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, nil, fmt.Errorf("%w: bad %s length uvarint", ErrBadFrame, what)
	}
	rest = rest[k:]
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: %s of %d bytes overruns the payload", ErrBadFrame, what, n)
	}
	return rest[:n], rest[n:], nil
}

// DecodeBatchRequest decodes a complete binary request frame, appending
// the ops to ops[:0] (pass nil to allocate; pass a scratch slice to reuse
// its capacity and decode allocation-free). Decoded values alias frame —
// see the aliasing contract. maxOps bounds the declared op count before
// any slice growth, so a hostile count cannot force an allocation spike.
func DecodeBatchRequest(frame []byte, ops []Op, maxOps int) ([]Op, error) {
	rest, err := checkFrame(frame)
	if err != nil {
		return nil, err
	}
	count, rest, err := wireUvarint(rest, "op count")
	if err != nil {
		return nil, err
	}
	// Every op is at least one byte, so a count beyond the remaining bytes
	// is corrupt regardless of maxOps.
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: op count %d exceeds payload", ErrBadFrame, count)
	}
	if maxOps > 0 && count > uint64(maxOps) {
		return nil, fmt.Errorf("%w: op count %d exceeds limit %d", ErrBadFrame, count, maxOps)
	}
	ops = ops[:0]
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: payload ends at op %d of %d", ErrBadFrame, i, count)
		}
		kind := rest[0]
		rest = rest[1:]
		var op Op
		switch kind {
		case wireOpSet:
			op.Op = "set"
			if op.X, rest, err = wireVarint(rest, "set x"); err != nil {
				return nil, err
			}
			if op.Y, rest, err = wireVarint(rest, "set y"); err != nil {
				return nil, err
			}
			var v []byte
			if v, rest, err = wireBytes(rest, "set value"); err != nil {
				return nil, err
			}
			op.V = aliasString(v)
		case wireOpGet:
			op.Op = "get"
			if op.X, rest, err = wireVarint(rest, "get x"); err != nil {
				return nil, err
			}
			if op.Y, rest, err = wireVarint(rest, "get y"); err != nil {
				return nil, err
			}
		case wireOpResize:
			op.Op = "resize"
			if op.Rows, rest, err = wireVarint(rest, "resize rows"); err != nil {
				return nil, err
			}
			if op.Cols, rest, err = wireVarint(rest, "resize cols"); err != nil {
				return nil, err
			}
		case wireOpDims:
			op.Op = "dims"
		case wireOpStats:
			op.Op = "stats"
		default:
			return nil, fmt.Errorf("%w: unknown op kind %d at op %d", ErrBadFrame, kind, i)
		}
		ops = append(ops, op)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d ops", ErrBadFrame, len(rest), count)
	}
	return ops, nil
}

// AppendBatchResponse appends the complete binary frame for results to dst
// and returns the extended buffer; allocation behavior matches
// AppendBatchRequest.
func AppendBatchResponse(dst []byte, results []OpResult) ([]byte, error) {
	dst = beginFrame(dst)
	start := len(dst)
	dst = append(dst, WireVersion)
	dst = binary.AppendUvarint(dst, uint64(len(results)))
	for i := range results {
		r := &results[i]
		flags := byte(0)
		if r.OK {
			flags |= wireResOK
		}
		if r.Found {
			flags |= wireResFound
		}
		if r.V != "" || r.Found {
			flags |= wireResHasValue
		}
		if r.Rows != 0 || r.Cols != 0 {
			flags |= wireResHasDims
		}
		if r.Stats != nil {
			flags |= wireResHasStats
		}
		if r.Err != "" {
			flags |= wireResHasErr
		}
		dst = append(dst, flags)
		if flags&wireResHasValue != 0 {
			dst = binary.AppendUvarint(dst, uint64(len(r.V)))
			dst = append(dst, r.V...)
		}
		if flags&wireResHasDims != 0 {
			dst = binary.AppendVarint(dst, r.Rows)
			dst = binary.AppendVarint(dst, r.Cols)
		}
		if flags&wireResHasStats != 0 {
			dst = binary.AppendVarint(dst, r.Stats.Moves)
			dst = binary.AppendVarint(dst, r.Stats.Reshapes)
			dst = binary.AppendVarint(dst, r.Stats.Footprint)
		}
		if flags&wireResHasErr != 0 {
			dst = binary.AppendUvarint(dst, uint64(len(r.Err)))
			dst = append(dst, r.Err...)
		}
	}
	return finishFrame(dst, start)
}

// DecodeBatchResponse decodes a complete binary response frame, appending
// the results to results[:0] (same reuse and aliasing semantics as
// DecodeBatchRequest). Stats results allocate their *extarray.Stats — the
// one pointer the JSON response shape carries; batches on the hot path do
// not include stats ops.
func DecodeBatchResponse(frame []byte, results []OpResult, maxResults int) ([]OpResult, error) {
	rest, err := checkFrame(frame)
	if err != nil {
		return nil, err
	}
	count, rest, err := wireUvarint(rest, "result count")
	if err != nil {
		return nil, err
	}
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: result count %d exceeds payload", ErrBadFrame, count)
	}
	if maxResults > 0 && count > uint64(maxResults) {
		return nil, fmt.Errorf("%w: result count %d exceeds limit %d", ErrBadFrame, count, maxResults)
	}
	results = results[:0]
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: payload ends at result %d of %d", ErrBadFrame, i, count)
		}
		flags := rest[0]
		rest = rest[1:]
		if flags&^wireResKnown != 0 {
			return nil, fmt.Errorf("%w: unknown flag bits %02x at result %d", ErrBadFrame, flags&^wireResKnown, i)
		}
		var r OpResult
		r.OK = flags&wireResOK != 0
		r.Found = flags&wireResFound != 0
		if flags&wireResHasValue != 0 {
			var v []byte
			if v, rest, err = wireBytes(rest, "result value"); err != nil {
				return nil, err
			}
			r.V = aliasString(v)
		}
		if flags&wireResHasDims != 0 {
			if r.Rows, rest, err = wireVarint(rest, "result rows"); err != nil {
				return nil, err
			}
			if r.Cols, rest, err = wireVarint(rest, "result cols"); err != nil {
				return nil, err
			}
		}
		if flags&wireResHasStats != 0 {
			st := new(extarray.Stats)
			if st.Moves, rest, err = wireVarint(rest, "stats moves"); err != nil {
				return nil, err
			}
			if st.Reshapes, rest, err = wireVarint(rest, "stats reshapes"); err != nil {
				return nil, err
			}
			if st.Footprint, rest, err = wireVarint(rest, "stats footprint"); err != nil {
				return nil, err
			}
			r.Stats = st
		}
		if flags&wireResHasErr != 0 {
			var e []byte
			if e, rest, err = wireBytes(rest, "result error"); err != nil {
				return nil, err
			}
			r.Err = aliasString(e)
		}
		results = append(results, r)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d results", ErrBadFrame, len(rest), count)
	}
	return results, nil
}
