package tabled

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pairfn/internal/extarray"
)

// codecOps is a batch exercising every op kind and the field edge cases
// (empty value, negative coordinates, zero dims).
func codecOps() []Op {
	return []Op{
		{Op: "set", X: 1, Y: 2, V: "hello"},
		{Op: "set", X: 1 << 40, Y: 3, V: ""},
		{Op: "set", X: -7, Y: -1, V: "negative positions still travel"},
		{Op: "get", X: 1, Y: 2},
		{Op: "get", X: 1 << 62, Y: 1},
		{Op: "resize", Rows: 4096, Cols: 512},
		{Op: "resize", Rows: 0, Cols: 0},
		{Op: "dims"},
		{Op: "stats"},
	}
}

func codecResults() []OpResult {
	return []OpResult{
		{OK: true},
		{OK: true, Found: true, V: "payload"},
		{OK: true, Found: true, V: ""},
		{OK: true, Found: false},
		{OK: true, Rows: 2048, Cols: 1024},
		{OK: true, Stats: &extarray.Stats{Moves: 3, Reshapes: 7, Footprint: 1 << 50}},
		{Err: "core: int64 overflow"},
		{OK: false, Err: strings.Repeat("e", 300)},
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	ops := codecOps()
	frame, err := AppendBatchRequest(nil, ops)
	if err != nil {
		t.Fatalf("AppendBatchRequest: %v", err)
	}
	got, err := DecodeBatchRequest(frame, nil, 0)
	if err != nil {
		t.Fatalf("DecodeBatchRequest: %v", err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("request round trip:\n got %+v\nwant %+v", got, ops)
	}

	results := codecResults()
	rframe, err := AppendBatchResponse(nil, results)
	if err != nil {
		t.Fatalf("AppendBatchResponse: %v", err)
	}
	rgot, err := DecodeBatchResponse(rframe, nil, 0)
	if err != nil {
		t.Fatalf("DecodeBatchResponse: %v", err)
	}
	if !reflect.DeepEqual(rgot, results) {
		t.Fatalf("response round trip:\n got %+v\nwant %+v", rgot, results)
	}
}

// TestBatchCodecFailsClosed flips every byte of a valid frame and cuts it
// at every length: each mutation must yield ErrBadFrame, never a silently
// wrong batch — the CRC plus the exact length prefix leave no blind spot.
func TestBatchCodecFailsClosed(t *testing.T) {
	frame, err := AppendBatchRequest(nil, codecOps())
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= bit
			if _, err := DecodeBatchRequest(mut, nil, 0); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("flip byte %d bit %02x: err = %v, want ErrBadFrame", i, bit, err)
			}
		}
	}
	for k := 0; k < len(frame); k++ {
		if _, err := DecodeBatchRequest(frame[:k], nil, 0); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncate to %d bytes: err = %v, want ErrBadFrame", k, err)
		}
	}
	rframe, err := AppendBatchResponse(nil, codecResults())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rframe {
		mut := append([]byte(nil), rframe...)
		mut[i] ^= 0x01
		if _, err := DecodeBatchResponse(mut, nil, 0); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("response flip byte %d: err = %v, want ErrBadFrame", i, err)
		}
	}
	for k := 0; k < len(rframe); k++ {
		if _, err := DecodeBatchResponse(rframe[:k], nil, 0); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("response truncate to %d: err = %v, want ErrBadFrame", k, err)
		}
	}
}

func TestBatchCodecLimits(t *testing.T) {
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Op: "get", X: int64(i + 1), Y: 1}
	}
	frame, err := AppendBatchRequest(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatchRequest(frame, nil, 9); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("op count over maxOps: err = %v, want ErrBadFrame", err)
	}
	if _, err := DecodeBatchRequest(frame, nil, 10); err != nil {
		t.Fatalf("op count at maxOps: %v", err)
	}
	if _, err := AppendBatchRequest(nil, []Op{{Op: "sett", X: 1, Y: 1}}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown kind encode: err = %v, want ErrBadFrame", err)
	}
}

// TestBatchCodecAllocFree pins the steady-state encode and decode paths at
// zero allocations per frame — the guardrail the binary hot path depends
// on. (Stats results are excluded: their *extarray.Stats is the one
// documented allocation, and stats ops are not hot-path traffic.)
func TestBatchCodecAllocFree(t *testing.T) {
	ops := codecOps()
	results := codecResults()[:5] // no stats result
	frame, err := AppendBatchRequest(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	rframe, err := AppendBatchResponse(nil, results)
	if err != nil {
		t.Fatal(err)
	}
	encBuf := make([]byte, 0, len(frame)+64)
	if a := testing.AllocsPerRun(200, func() {
		if _, err := AppendBatchRequest(encBuf[:0], ops); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("AppendBatchRequest allocates %.1f per frame, want 0", a)
	}
	rencBuf := make([]byte, 0, len(rframe)+64)
	if a := testing.AllocsPerRun(200, func() {
		if _, err := AppendBatchResponse(rencBuf[:0], results); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("AppendBatchResponse allocates %.1f per frame, want 0", a)
	}
	opScratch := make([]Op, 0, len(ops))
	if a := testing.AllocsPerRun(200, func() {
		var err error
		opScratch, err = DecodeBatchRequest(frame, opScratch, 0)
		if err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("DecodeBatchRequest allocates %.1f per frame, want 0", a)
	}
	resScratch := make([]OpResult, 0, len(results))
	if a := testing.AllocsPerRun(200, func() {
		var err error
		resScratch, err = DecodeBatchResponse(rframe, resScratch, 0)
		if err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("DecodeBatchResponse allocates %.1f per frame, want 0", a)
	}
}

// fuzzOps derives a deterministic op batch from fuzz input bytes.
func fuzzOps(data []byte) []Op {
	rng := rand.New(rand.NewSource(int64(len(data))))
	var ops []Op
	for _, b := range data {
		var op Op
		switch b % 5 {
		case 0:
			n := int(b) % (len(data) + 1)
			op = Op{Op: "set", X: rng.Int63() - rng.Int63(), Y: rng.Int63(), V: string(data[:n])}
		case 1:
			op = Op{Op: "get", X: rng.Int63() - rng.Int63(), Y: rng.Int63() - rng.Int63()}
		case 2:
			op = Op{Op: "resize", Rows: rng.Int63(), Cols: rng.Int63()}
		case 3:
			op = Op{Op: "dims"}
		case 4:
			op = Op{Op: "stats"}
		}
		ops = append(ops, op)
	}
	return ops
}

// FuzzBatchCodec checks two properties on arbitrary input: (1) any byte
// string fed to the decoders either round-trips or fails closed with
// ErrBadFrame — no panics, no partially decoded batches; (2) batches
// derived from the input always satisfy decode(encode(x)) == x.
func FuzzBatchCodec(f *testing.F) {
	seed, _ := AppendBatchRequest(nil, codecOps())
	f.Add(seed)
	rseed, _ := AppendBatchResponse(nil, codecResults())
	f.Add(rseed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		if ops, err := DecodeBatchRequest(data, nil, 0); err == nil {
			re, err := AppendBatchRequest(nil, ops)
			if err != nil {
				t.Fatalf("re-encode of decoded ops failed: %v", err)
			}
			ops2, err := DecodeBatchRequest(re, nil, 0)
			if err != nil || !reflect.DeepEqual(ops, ops2) {
				t.Fatalf("request not canonical under re-encode: %v", err)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("request decode error %v is not ErrBadFrame", err)
		}
		if results, err := DecodeBatchResponse(data, nil, 0); err == nil {
			re, err := AppendBatchResponse(nil, results)
			if err != nil {
				t.Fatalf("re-encode of decoded results failed: %v", err)
			}
			res2, err := DecodeBatchResponse(re, nil, 0)
			if err != nil || !reflect.DeepEqual(results, res2) {
				t.Fatalf("response not canonical under re-encode: %v", err)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("response decode error %v is not ErrBadFrame", err)
		}

		ops := fuzzOps(data)
		frame, err := AppendBatchRequest(nil, ops)
		if err != nil {
			t.Fatalf("encode of generated ops: %v", err)
		}
		got, err := DecodeBatchRequest(frame, nil, 0)
		if err != nil {
			t.Fatalf("decode of generated ops: %v", err)
		}
		if len(got) != len(ops) || (len(ops) > 0 && !reflect.DeepEqual(got, ops)) {
			t.Fatalf("decode(encode(x)) != x:\n got %+v\nwant %+v", got, ops)
		}
	})
}

// TestBatchCodecAliasing documents the aliasing contract: decoded strings
// share the frame's bytes, so mutating the frame mutates them.
func TestBatchCodecAliasing(t *testing.T) {
	frame, err := AppendBatchRequest(nil, []Op{{Op: "set", X: 1, Y: 1, V: "aaaa"}})
	if err != nil {
		t.Fatal(err)
	}
	ops, err := DecodeBatchRequest(frame, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(frame, []byte("aaaa"))
	if idx < 0 {
		t.Fatal("value bytes not found in frame")
	}
	frame[idx] = 'b'
	if ops[0].V != "baaa" {
		t.Fatalf("decoded value %q does not alias the frame", ops[0].V)
	}
	// strings.Clone is the documented escape hatch for retained values.
	if c := strings.Clone(ops[0].V); c != "baaa" {
		t.Fatalf("clone = %q", c)
	}
}

func BenchmarkBatchCodec(b *testing.B) {
	ops := make([]Op, 128)
	for i := range ops {
		if i%2 == 0 {
			ops[i] = Op{Op: "set", X: int64(i + 1), Y: int64(2*i + 1), V: fmt.Sprintf("value-%d", i)}
		} else {
			ops[i] = Op{Op: "get", X: int64(i + 1), Y: int64(i + 2)}
		}
	}
	frame, err := AppendBatchRequest(nil, ops)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, len(frame))
		for i := 0; i < b.N; i++ {
			if _, err := AppendBatchRequest(buf[:0], ops); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		scratch := make([]Op, 0, len(ops))
		for i := 0; i < b.N; i++ {
			var err error
			scratch, err = DecodeBatchRequest(frame, scratch, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
