// Package tabled turns the extendible-array layer (§3) into a network
// service: a sharded, PF-addressed table store behind a batched JSON/HTTP
// API, with snapshot persistence and full observability. It exists to make
// the paper's §3 claim — that PF storage mappings let *live* tables grow
// and shrink without remapping — observable in the setting that motivates
// it: a long-running server mutated by many concurrent clients, where the
// alternative (extarray.Sync's single RWMutex) serializes every operation.
//
// # Sharding and locking model
//
// A Sharded table splits the address space of its storage mapping into
// stripes of 2^10 consecutive addresses (one PagedStore page) and assigns
// stripe s to shard s mod N, N a power of two. Each shard owns its own
// lock and its own backing store, so operations on cells whose addresses
// fall in different stripes proceed in parallel, and a batch touching k
// shards costs k lock acquisitions no matter how many cells it carries.
// Because PF addressing is pure arithmetic, the shard of a cell is computed
// *outside* any lock.
//
// The lock hierarchy has one global rule: the logical dimensions (and the
// reshape counter) are written only while holding ALL shard write locks in
// index order, and may be read under ANY single shard lock. Point and batch
// operations therefore see consistent bounds while holding just their own
// shard's lock; Resize acts as a barrier, exactly the grow-then-fill
// semantics extarray.Sync provides — but only reshapes pay for it. A shrink
// deletes discarded cells from the shards that own their addresses; shards
// owning no discarded address have their stores untouched (their lock is
// still taken for the dimension write). Growth touches no store at all —
// that is the paper's point.
//
// # Overflow contract
//
// Addresses inherit the storage mapping's exact-int64 contract: an access
// or reshape whose Encode would overflow surfaces core.ErrOverflow (mapped
// to a per-op error in batches and to an "error" field over HTTP) instead
// of wrapping. No position that encodes successfully is ever silently
// misplaced: the shard index is derived from the exact address.
//
// # Wire format and persistence
//
// Snapshots reuse the extarray gob snapshot format (extarray.SnapshotData)
// and are written with extarray.AtomicWriteFile, so a crash mid-write never
// corrupts the previous snapshot and an extarray.Array can load a tabled
// snapshot (and vice versa) under the same mapping. The HTTP API is a
// single batched endpoint (POST /v1/batch) carrying get/set/resize/dims/
// stats ops, plus /v1/stats, /v1/snapshot, and the standard /metrics,
// /healthz, /readyz from internal/obs.
//
// See cmd/tabledserver (the daemon) and cmd/tabledload (the concurrent
// load generator and E23 experiment driver comparing this store against
// the Sync-wrapped baseline).
package tabled
