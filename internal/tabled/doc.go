// Package tabled turns the extendible-array layer (§3) into a network
// service: a sharded, PF-addressed table store behind a batched JSON/HTTP
// API, with snapshot persistence and full observability. It exists to make
// the paper's §3 claim — that PF storage mappings let *live* tables grow
// and shrink without remapping — observable in the setting that motivates
// it: a long-running server mutated by many concurrent clients, where the
// alternative (extarray.Sync's single RWMutex) serializes every operation.
//
// # Sharding and locking model
//
// A Sharded table splits the address space of its storage mapping into
// stripes of 2^10 consecutive addresses (one PagedStore page) and assigns
// stripe s to shard s mod N, N a power of two. Each shard owns its own
// lock and its own backing store, so operations on cells whose addresses
// fall in different stripes proceed in parallel, and a batch touching k
// shards costs k lock acquisitions no matter how many cells it carries.
// Because PF addressing is pure arithmetic, the shard of a cell is computed
// *outside* any lock.
//
// The lock hierarchy has one global rule: the logical dimensions (and the
// reshape counter) are written only while holding ALL shard write locks in
// index order, and may be read under ANY single shard lock. Point and batch
// operations therefore see consistent bounds while holding just their own
// shard's lock; Resize acts as a barrier, exactly the grow-then-fill
// semantics extarray.Sync provides — but only reshapes pay for it. A shrink
// deletes discarded cells from the shards that own their addresses; shards
// owning no discarded address have their stores untouched (their lock is
// still taken for the dimension write). Growth touches no store at all —
// that is the paper's point.
//
// # Overflow contract
//
// Addresses inherit the storage mapping's exact-int64 contract: an access
// or reshape whose Encode would overflow surfaces core.ErrOverflow (mapped
// to a per-op error in batches and to an "error" field over HTTP) instead
// of wrapping. No position that encodes successfully is ever silently
// misplaced: the shard index is derived from the exact address.
//
// # Wire format and persistence
//
// Snapshots reuse the extarray gob snapshot format (extarray.SnapshotData)
// and are written with extarray.AtomicWriteFile, so a crash mid-write never
// corrupts the previous snapshot and an extarray.Array can load a tabled
// snapshot (and vice versa) under the same mapping. The HTTP API is a
// single batched endpoint (POST /v1/batch) carrying get/set/resize/dims/
// stats ops, plus /v1/stats, /v1/snapshot, and the standard /metrics,
// /healthz, /readyz from internal/obs.
//
// /v1/batch speaks two wires, selected per request by Content-Type: JSON
// (the default) and the compact binary frame format specified normatively
// in docs/WIRE.md (codec.go; Content-Type application/x-tabled-batch). The
// binary path is the zero-allocation one: the server decodes ops and
// encodes results in pooled scratch (server.go), plans shard routing with
// the batched core.EncodeBatch surface (sharded.go), and executes through
// the BatchInto interfaces into caller-owned slices — in steady state a
// get batch is served end to end with zero heap allocations, and a set
// batch with exactly one per op (the clone of the stored value out of the
// pooled request buffer). tabled.Client selects the wire with its Wire
// field and reuses pooled request frames over a pooled transport
// (DefaultTransport pins per-host idle connections at
// MaxConcurrentBatchConns, where net/http's default of 2 would re-dial
// under concurrent load). EXPERIMENTS.md E26 measures the two wires
// head to head.
//
// # Durability model
//
// With a WAL configured (wal.go), the contract strengthens from "the last
// snapshot survives" to "every acknowledged write survives": each set
// batch and resize is applied in memory, appended to a CRC32-framed
// write-ahead log, and fsynced (directly, or as part of a group-commit
// window) before the HTTP 200 is written. Recovery is newest snapshot +
// WAL tail, replayed idempotently in log order; a torn final record — the
// signature of a crash mid-append — is truncated, losing only writes that
// were never acknowledged. Snapshots checkpoint the log: WAL.Checkpoint
// holds the append lock across the snapshot save and then truncates, so
// the snapshot cut and the log reset are one atomic event and nothing is
// ever replayed against a snapshot that already contains it.
//
// If the log volume fails at runtime the WAL turns sticky-failed and the
// server degrades to read-only instead of dying: writes get 503, reads
// keep serving from memory, /readyz reports degraded for load balancers,
// and tabled_degraded flips to 1. Only a restart — which replays and
// reopens the log — recovers writability.
//
// The client side completes the story: tabled.Client retries transport
// failures and 5xx under jittered exponential backoff (internal/retry),
// reusing one Idempotency-Key per logical batch, and the server replays
// recorded responses for keys it has already answered — so a retried
// batch whose original ack was lost is never applied (or logged) twice.
// Fault injection for all of these paths lives in faultwrap.go, behind
// tabledserver's -faults flag, and is zero-cost when disabled.
//
// See cmd/tabledserver (the daemon), cmd/tabledload (the concurrent load
// generator, E23/E26 experiment driver, and chaos-verification harness;
// see scripts/chaos_smoke.sh and scripts/wire_smoke.sh), and
// EXPERIMENTS.md E24 for the measured cost of the fsync-per-ack contract.
package tabled
