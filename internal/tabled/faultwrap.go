package tabled

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"pairfn/internal/extarray"
)

// This file is the harness that proves the recovery paths: a deterministic,
// seed-driven fault injector for both layers where the real world fails —
// the backend (errors, latency) and the WAL volume (torn writes, sync
// failures). It is wired behind tabledserver's -faults flag and is
// strictly zero-cost when disabled: WrapBackend and WrapWALFile return
// their argument untouched for a nil *Faults, so the production hot path
// carries no extra indirection (BenchmarkFaultWrapDisabled pins this).

// ErrInjected is the error every injected backend fault wraps, so tests
// and clients can tell injected faults from real ones.
var ErrInjected = errors.New("tabled: injected fault")

// Faults configures deterministic fault injection. The zero value injects
// nothing; a nil *Faults disables the wrappers entirely.
type Faults struct {
	// Seed drives the private PRNG: the same seed and operation sequence
	// injects the same faults.
	Seed int64
	// ErrRate is the probability each backend batch/op fails with
	// ErrInjected before touching the real backend.
	ErrRate float64
	// Latency is added to every backend operation (before any injected
	// error), modeling a slow disk or a saturated node.
	Latency time.Duration
	// TornWriteAt, when > 0, makes the WAL file wrapper tear the write
	// that crosses that cumulative byte offset: the first bytes are
	// written, the rest vanish, and the write returns an error — the
	// on-disk image a power cut leaves.
	TornWriteAt int64
	// SyncErrRate is the probability each WAL fsync fails with ErrInjected
	// (the degraded-mode trigger).
	SyncErrRate float64
	// SnapCorruptRate is the probability one /v1/repl/snapshot response
	// stream has a byte flipped mid-flight (transfer corruption; the
	// reseeding follower must fail closed on the CRC frames and retry).
	SnapCorruptRate float64
}

// ParseFaults parses the -faults flag syntax: comma-separated key=value
// pairs, e.g. "seed=7,errrate=0.05,latency=2ms,tornat=8192,syncerr=0.01".
// An empty spec returns nil (faults disabled).
func ParseFaults(spec string) (*Faults, error) {
	if spec == "" {
		return nil, nil
	}
	fc := &Faults{Seed: 1}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("tabled: faults: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			fc.Seed, err = strconv.ParseInt(v, 10, 64)
		case "errrate":
			fc.ErrRate, err = strconv.ParseFloat(v, 64)
		case "latency":
			fc.Latency, err = time.ParseDuration(v)
		case "tornat":
			fc.TornWriteAt, err = strconv.ParseInt(v, 10, 64)
		case "syncerr":
			fc.SyncErrRate, err = strconv.ParseFloat(v, 64)
		case "snapcorrupt":
			fc.SnapCorruptRate, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("tabled: faults: unknown key %q (seed|errrate|latency|tornat|syncerr|snapcorrupt)", k)
		}
		if err != nil {
			return nil, fmt.Errorf("tabled: faults: %s: %w", k, err)
		}
	}
	return fc, nil
}

// injector is the shared, mutex-guarded PRNG state. Backend and file
// wrappers built from one *Faults share it, so a single seed fixes the
// whole fault schedule.
type injector struct {
	mu  sync.Mutex
	rng *rand.Rand
	fc  Faults

	written int64 // cumulative WAL bytes, for TornWriteAt
	torn    bool
}

func newInjector(fc *Faults) *injector {
	return &injector{rng: rand.New(rand.NewSource(fc.Seed)), fc: *fc}
}

// opFault rolls one backend-op fault: the injected latency and whether the
// op should fail.
func (in *injector) opFault() (time.Duration, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	fail := in.fc.ErrRate > 0 && in.rng.Float64() < in.fc.ErrRate
	return in.fc.Latency, fail
}

// syncFault rolls one WAL fsync fault.
func (in *injector) syncFault() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fc.SyncErrRate > 0 && in.rng.Float64() < in.fc.SyncErrRate
}

// snapCorruptAt rolls one snapshot-stream corruption: (offset, true) to
// flip the byte at offset of a size-byte response, (0, false) to serve it
// intact.
func (in *injector) snapCorruptAt(size int64) (int64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fc.SnapCorruptRate <= 0 || size <= 0 || in.rng.Float64() >= in.fc.SnapCorruptRate {
		return 0, false
	}
	return in.rng.Int63n(size), true
}

// tornWrite accounts n incoming bytes and reports how many to actually
// write: (n, false) normally, (k < n, true) exactly once when the write
// crosses TornWriteAt.
func (in *injector) tornWrite(n int) (int, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fc.TornWriteAt <= 0 || in.torn {
		in.written += int64(n)
		return n, false
	}
	if in.written+int64(n) <= in.fc.TornWriteAt {
		in.written += int64(n)
		return n, false
	}
	k := in.fc.TornWriteAt - in.written
	if k < 0 {
		k = 0
	}
	in.torn = true
	in.written += k
	return int(k), true
}

// A FaultInjector owns one fault schedule and hands out the wrappers that
// share it.
type FaultInjector struct{ in *injector }

// NewFaultInjector builds the injector for fc; nil fc returns nil, and a
// nil *FaultInjector's wrappers are identity functions.
func NewFaultInjector(fc *Faults) *FaultInjector {
	if fc == nil {
		return nil
	}
	return &FaultInjector{in: newInjector(fc)}
}

// WrapBackend decorates b with injected latency and errors. On a nil
// injector it returns b itself: disabled faults cost nothing.
func (fi *FaultInjector) WrapBackend(b Backend[string]) Backend[string] {
	if fi == nil {
		return b
	}
	return &faultBackend{b: b, in: fi.in}
}

// SnapshotCorruptAt rolls one /v1/repl/snapshot stream fault: (offset,
// true) tells the serving side to flip the byte at offset of a size-byte
// response. Nil-safe; (0, false) means serve intact.
func (fi *FaultInjector) SnapshotCorruptAt(size int64) (int64, bool) {
	if fi == nil {
		return 0, false
	}
	return fi.in.snapCorruptAt(size)
}

// WrapWALFile decorates the WAL's file handle with torn writes and sync
// failures. On a nil injector it returns f itself.
func (fi *FaultInjector) WrapWALFile(f WALFile) WALFile {
	if fi == nil {
		return f
	}
	return &faultFile{f: f, in: fi.in}
}

// faultBackend injects per-op faults in front of a real backend. Reads and
// writes both roll the error dice: the retrying client must survive both.
type faultBackend struct {
	b  Backend[string]
	in *injector
}

func (f *faultBackend) roll() error {
	d, fail := f.in.opFault()
	if d > 0 {
		time.Sleep(d)
	}
	if fail {
		return ErrInjected
	}
	return nil
}

func (f *faultBackend) Describe() Info { return f.b.Describe() }

func (f *faultBackend) Dims() (int64, int64) { return f.b.Dims() }

func (f *faultBackend) Stats() extarray.Stats { return f.b.Stats() }

func (f *faultBackend) Get(x, y int64) (string, bool, error) {
	if err := f.roll(); err != nil {
		return "", false, err
	}
	return f.b.Get(x, y)
}

func (f *faultBackend) Set(x, y int64, v string) error {
	if err := f.roll(); err != nil {
		return err
	}
	return f.b.Set(x, y, v)
}

func (f *faultBackend) Resize(rows, cols int64) error {
	if err := f.roll(); err != nil {
		return err
	}
	return f.b.Resize(rows, cols)
}

func (f *faultBackend) SetBatch(cells []Cell[string]) []error {
	if err := f.roll(); err != nil {
		errs := make([]error, len(cells))
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	return f.b.SetBatch(cells)
}

func (f *faultBackend) GetBatch(keys []Pos) []GetResult[string] {
	if err := f.roll(); err != nil {
		res := make([]GetResult[string], len(keys))
		for i := range res {
			res[i].Err = err
		}
		return res
	}
	return f.b.GetBatch(keys)
}

// SetBatchInto implements BatchInto so a fault-wrapped backend keeps the
// zero-allocation server path (modulo the injected fault roll).
func (f *faultBackend) SetBatchInto(cells []Cell[string], errs []error) {
	if err := f.roll(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return
	}
	if bi, ok := f.b.(BatchInto[string]); ok {
		bi.SetBatchInto(cells, errs)
		return
	}
	copy(errs, f.b.SetBatch(cells))
}

// GetBatchInto implements BatchInto.
func (f *faultBackend) GetBatchInto(keys []Pos, res []GetResult[string]) {
	if err := f.roll(); err != nil {
		clear(res)
		for i := range res {
			res[i].Err = err
		}
		return
	}
	if bi, ok := f.b.(BatchInto[string]); ok {
		bi.GetBatchInto(keys, res)
		return
	}
	copy(res, f.b.GetBatch(keys))
}

// faultFile injects torn writes and sync failures in front of a WALFile.
type faultFile struct {
	f  WALFile
	in *injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	k, torn := f.in.tornWrite(len(p))
	if !torn {
		return f.f.Write(p)
	}
	n, err := f.f.Write(p[:k])
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("%w: torn write after %d of %d bytes", ErrInjected, k, len(p))
}

func (f *faultFile) Sync() error {
	if f.in.syncFault() {
		return fmt.Errorf("%w: sync failure", ErrInjected)
	}
	return f.f.Sync()
}

func (f *faultFile) Truncate(size int64) error { return f.f.Truncate(size) }

func (f *faultFile) Seek(offset int64, whence int) (int64, error) { return f.f.Seek(offset, whence) }

func (f *faultFile) Close() error { return f.f.Close() }
