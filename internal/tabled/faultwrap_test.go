package tabled

import (
	"errors"
	"testing"
	"time"

	"pairfn/internal/core"
)

func TestParseFaults(t *testing.T) {
	if fc, err := ParseFaults(""); fc != nil || err != nil {
		t.Fatalf("empty spec: %+v, %v; want nil, nil", fc, err)
	}
	fc, err := ParseFaults("seed=7,errrate=0.05,latency=2ms,tornat=8192,syncerr=0.01")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{Seed: 7, ErrRate: 0.05, Latency: 2 * time.Millisecond, TornWriteAt: 8192, SyncErrRate: 0.01}
	if *fc != want {
		t.Fatalf("parsed %+v, want %+v", *fc, want)
	}
	// Seed defaults to 1 when the spec doesn't set it.
	fc, err = ParseFaults("errrate=1")
	if err != nil || fc.Seed != 1 {
		t.Fatalf("default seed: %+v, %v", fc, err)
	}
	for _, bad := range []string{"errrate", "bogus=1", "errrate=x", "latency=5", "seed=1.5"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFaultBackendDeterministic: the same seed must produce the same fault
// schedule over the same operation sequence — that is what makes a chaos
// failure reproducible.
func TestFaultBackendDeterministic(t *testing.T) {
	schedule := func() []bool {
		b, err := NewSharded[string](core.SquareShell{}, 2, pagedStore, 8, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		fb := NewFaultInjector(&Faults{Seed: 42, ErrRate: 0.5}).WrapBackend(b)
		outcomes := make([]bool, 0, 64)
		for i := int64(1); i <= 64; i++ {
			err := fb.Set((i-1)%8+1, (i-1)/8+1, "v")
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: unexpected real error %v", i, err)
			}
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := schedule(), schedule()
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
		if a[i] {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("errrate=0.5 injected %d/%d faults; schedule is degenerate", injected, len(a))
	}
}

// TestFaultBackendBatchOps: injected batch failures must fill every slot of
// the result, matching the Backend batch contracts.
func TestFaultBackendBatchOps(t *testing.T) {
	b, err := NewSharded[string](core.SquareShell{}, 2, pagedStore, 8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb := NewFaultInjector(&Faults{Seed: 3, ErrRate: 1}).WrapBackend(b)

	cells := []Cell[string]{{X: 1, Y: 1, V: "a"}, {X: 2, Y: 2, V: "b"}}
	errs := fb.SetBatch(cells)
	if len(errs) != len(cells) {
		t.Fatalf("SetBatch returned %d errors for %d cells", len(errs), len(cells))
	}
	for i, e := range errs {
		if !errors.Is(e, ErrInjected) {
			t.Fatalf("cell %d: %v, want injected", i, e)
		}
	}
	res := fb.GetBatch([]Pos{{X: 1, Y: 1}, {X: 2, Y: 2}})
	if len(res) != 2 {
		t.Fatalf("GetBatch returned %d results", len(res))
	}
	for i, r := range res {
		if !errors.Is(r.Err, ErrInjected) {
			t.Fatalf("key %d: %v, want injected", i, r.Err)
		}
	}
	if _, _, err := fb.Get(1, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get: %v, want injected", err)
	}
	if err := fb.Resize(16, 16); !errors.Is(err, ErrInjected) {
		t.Fatalf("Resize: %v, want injected", err)
	}
	// Pass-throughs never fault.
	if r, c := fb.Dims(); r != 8 || c != 8 {
		t.Fatalf("Dims = %d×%d", r, c)
	}
	// Nothing reached the real backend.
	if _, ok, _ := b.Get(1, 1); ok {
		t.Fatal("injected SetBatch leaked through to the backend")
	}
}

// TestFaultWrapDisabledIsIdentity: nil faults must return the wrapped value
// itself — no decorator, no indirection, no allocation.
func TestFaultWrapDisabledIsIdentity(t *testing.T) {
	b, err := NewSharded[string](core.SquareShell{}, 2, pagedStore, 8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fi *FaultInjector // = NewFaultInjector(nil)
	if got := fi.WrapBackend(b); got != Backend[string](b) {
		t.Fatal("WrapBackend on nil injector is not identity")
	}
	if NewFaultInjector(nil) != nil {
		t.Fatal("NewFaultInjector(nil) != nil")
	}
}

// BenchmarkFaultWrapDisabled pins the zero-cost claim: Set through the
// identity-wrapped backend must match the bare backend (the wrapper IS the
// bare backend when faults are off).
func BenchmarkFaultWrapDisabled(bch *testing.B) {
	b, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 256, 256, nil)
	if err != nil {
		bch.Fatal(err)
	}
	wrapped := (*FaultInjector)(nil).WrapBackend(b)
	bch.ReportAllocs()
	bch.ResetTimer()
	for i := 0; i < bch.N; i++ {
		x := int64(i%256) + 1
		if err := wrapped.Set(x, x, "v"); err != nil {
			bch.Fatal(err)
		}
	}
}
