package tabled

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pairfn/internal/extarray"
	"pairfn/internal/obs"
	"pairfn/internal/retry"
	"pairfn/internal/walog"
)

// A Follower is the pull side of per-range replication: it tails the
// primary's /v1/repl/frames, and for every record (in primary log order)
// applies it to the local backend and re-appends the identical payload to
// the local WAL, fsynced, before advancing its position. The position is
// therefore never ahead of what a crash would recover — boot replay of
// the follower's own WAL is the position — and the `from` it presents on
// the next pull is an honest durability acknowledgement, which is what
// the primary's ReplGate builds semi-synchronous acks out of.
//
// A follower never snapshots or checkpoints: its WAL must remain a
// byte-identical prefix of the primary's so record counts stay aligned.
// (Follower log compaction is a known follow-on; see DESIGN §5d.)
//
// Divergence — the primary answering 410 (our records were checkpointed
// away before we pulled them) or 409 (we hold records the primary never
// wrote) — is a sticky failure: the loop stops, Err reports it, and
// /v1/repl/status carries it. Rebuilding the follower is an operator
// action; guessing is how split brains happen.

// FollowerOptions configures NewFollower.
type FollowerOptions struct {
	// Source is the primary's base URL, e.g. "http://10.0.0.7:8081".
	Source string
	// HTTPClient issues the pulls (nil → the shared pooled default).
	HTTPClient *http.Client
	// PollWait is the server-side long-poll window requested per pull
	// (0 → DefaultReplWait).
	PollWait time.Duration
	// MaxBytes caps one pull's frame payload (0 → DefaultReplMaxBytes).
	MaxBytes int
	// Retry paces re-pulls after transient failures (nil → a default
	// unbounded-attempt policy; divergence is permanent regardless).
	Retry *retry.Policy
	// Writable is flipped true by Promote (may be nil).
	Writable *obs.Flag
	// Metrics receives repl_* instrumentation (may be nil).
	Metrics *Metrics
	// Logger receives pull-loop log lines (may be nil).
	Logger *slog.Logger
}

// NewFollower builds a follower resuming from applied — the record count
// the local WAL replayed at boot.
func NewFollower(b Backend[string], wal *WAL, applied uint64, opt FollowerOptions) *Follower {
	if opt.HTTPClient == nil {
		opt.HTTPClient = defaultHTTPClient
	}
	if opt.PollWait <= 0 {
		opt.PollWait = DefaultReplWait
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = DefaultReplMaxBytes
	}
	if opt.Retry == nil {
		opt.Retry = &retry.Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, MaxAttempts: -1}
	}
	f := &Follower{b: b, wal: wal, opt: opt, stopped: make(chan struct{})}
	f.applied.Store(applied)
	return f
}

// A Follower replicates one primary's WAL into a local backend + WAL.
// Safe for concurrent use; Run is the pull loop, everything else observes
// or stops it.
type Follower struct {
	b   Backend[string]
	wal *WAL
	opt FollowerOptions

	applied  atomic.Uint64 // records durably applied locally
	primNext atomic.Uint64 // primary's committed horizon at last pull
	promoted atomic.Bool

	mu      sync.Mutex
	err     error              // sticky divergence/apply failure
	cancel  context.CancelFunc // cancels the running pull loop
	stopped chan struct{}      // closed when the pull loop exits
}

// Source returns the primary's base URL.
func (f *Follower) Source() string { return f.opt.Source }

// Applied returns the follower's durable replication position.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Lag returns the record lag behind the primary's committed horizon as
// of the last successful pull (0 while caught up or never connected).
func (f *Follower) Lag() uint64 {
	if n, a := f.primNext.Load(), f.applied.Load(); n > a {
		return n - a
	}
	return 0
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Err returns the sticky replication failure, if any.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// fail records the sticky failure and stops the loop.
func (f *Follower) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	if f.opt.Logger != nil {
		f.opt.Logger.Error("repl: follower stopped", "source", f.opt.Source, "err", err)
	}
}

// Run pulls until ctx ends, Promote is called, or a permanent failure
// (divergence, local apply/append failure) sticks. Wire it as a
// srvkit.Lifecycle background task.
func (f *Follower) Run(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	f.mu.Lock()
	if f.promoted.Load() {
		f.mu.Unlock()
		cancel()
		return
	}
	f.cancel = cancel
	f.mu.Unlock()
	defer close(f.stopped)
	defer cancel()
	err := f.opt.Retry.Do(ctx, func(ctx context.Context) error {
		for {
			if err := f.pullOnce(ctx); err != nil {
				return err // transient → backoff + retry; permanent → stop
			}
			// A successful pull resets the backoff by returning into a
			// fresh Do call — cheaper to just loop here and let only
			// errors escape to the retry schedule.
		}
	})
	if err != nil && ctx.Err() == nil {
		f.fail(err)
	}
}

// pullOnce performs one frames request and applies whatever it returns.
// A nil error means progress (possibly zero new records after a quiet
// long-poll); transient transport trouble comes back plain (retryable);
// divergence and local failures come back retry.Permanent.
func (f *Follower) pullOnce(ctx context.Context) error {
	from := f.applied.Load()
	url := fmt.Sprintf("%s%s?from=%d&wait_ms=%d&max=%d", f.opt.Source, ReplFramesPath,
		from, f.opt.PollWait/time.Millisecond, f.opt.MaxBytes)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return retry.Permanent(err)
	}
	resp, err := f.opt.HTTPClient.Do(req)
	if err != nil {
		return err // transport: primary restarting/unreachable — retry
	}
	defer resp.Body.Close()
	f.opt.Metrics.replPull(resp.StatusCode)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone, http.StatusConflict:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return retry.Permanent(fmt.Errorf("tabled: follower diverged from %s (%s): %s",
			f.opt.Source, resp.Status, msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("tabled: repl pull: %s: %s", resp.Status, msg)
	}
	if committed, err := strconv.ParseUint(resp.Header.Get(ReplCommittedHeader), 10, 64); err == nil {
		f.primNext.Store(committed)
	}
	// Bound the read: the primary caps bodies at MaxBytes except when a
	// single record is larger, so allow one max-size frame of slack.
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(f.opt.MaxBytes)+extarray.MaxFramePayload+16))
	if err != nil {
		return fmt.Errorf("tabled: repl pull: reading body: %w", err)
	}
	n, err := walog.ReadStream(body, func(payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return retry.Permanent(fmt.Errorf("tabled: repl apply: %w", err))
		}
		// Primary order: apply to memory, then make durable. A crash
		// between the two replays this record from the next pull (the
		// position only advances with the local append), and re-applying
		// is idempotent.
		if err := ApplyWALRecord(f.b, rec); err != nil {
			return retry.Permanent(err)
		}
		if err := f.wal.AppendRaw(payload); err != nil {
			return retry.Permanent(fmt.Errorf("tabled: repl append: %w", err))
		}
		f.applied.Add(1)
		return nil
	})
	f.opt.Metrics.replApplied(n, f.Lag())
	if err != nil {
		// A truncated stream (ReadStream error without Permanent) is a
		// torn HTTP body: records before the tear are applied and
		// position-advanced, so a plain retry resumes exactly after them.
		return err
	}
	return nil
}

// Promote executes the follower → primary transition: stop the pull
// loop, wait for it to exit (no frame is mid-apply past this point),
// flip the writable flag, and return the final applied position. After
// Promote the node serves writes and its own /v1/repl/frames — a new
// follower can chain from it. Idempotent.
func (f *Follower) Promote() (applied uint64) {
	f.mu.Lock()
	already := f.promoted.Swap(true)
	cancel := f.cancel
	f.mu.Unlock()
	if already {
		return f.applied.Load()
	}
	if cancel != nil {
		cancel()
		<-f.stopped
	}
	if f.opt.Writable != nil {
		f.opt.Writable.Set(true)
	}
	return f.applied.Load()
}
