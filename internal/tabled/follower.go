package tabled

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pairfn/internal/extarray"
	"pairfn/internal/obs"
	"pairfn/internal/retry"
	"pairfn/internal/walog"
)

// A Follower is the pull side of per-range replication: it tails the
// primary's /v1/repl/frames, and for every record (in primary log order)
// applies it to the local backend and re-appends the identical payload to
// the local WAL, fsynced, before advancing its position. The position is
// therefore never ahead of what a crash would recover — boot replay of
// the follower's own WAL is the position — and the `from` it presents on
// the next pull is an honest durability acknowledgement, which is what
// the primary's ReplGate builds semi-synchronous acks out of.
//
// A follower MAY checkpoint its own WAL: record numbering is absolute
// (the log's durable .state sidecar keeps the base sequence across
// truncations), so compaction never changes the position the follower
// presents. What it must never do is write records of its own — its log
// stays a byte-identical SUFFIX of the primary's stream.
//
// Divergence comes in two flavors. With no reseed capability (zero
// SnapshotPath/Restore), a primary answering 410 (our records were
// checkpointed away before we pulled them) or 409 (we hold records the
// primary never wrote) is a sticky failure: the loop stops, Err reports
// it, and /v1/repl/status carries it. With reseed configured, a 410 — or
// a 409 from a primary at a HIGHER epoch (our history forked at a
// failover we lost) — triggers an automatic rebuild from the primary's
// /v1/repl/snapshot (see reseed.go and DESIGN §5e). A 409 from a primary
// at our own epoch still sticks: same-epoch divergence means corruption
// or misconfiguration, and guessing is how split brains happen. An epoch
// REGRESSION (the source is behind us) always sticks — that source is a
// stale primary and must never be re-followed.

// FollowerOptions configures NewFollower.
type FollowerOptions struct {
	// Source is the primary's base URL, e.g. "http://10.0.0.7:8081".
	Source string
	// HTTPClient issues the pulls (nil → the shared pooled default).
	HTTPClient *http.Client
	// PollWait is the server-side long-poll window requested per pull
	// (0 → DefaultReplWait).
	PollWait time.Duration
	// MaxBytes caps one pull's frame payload (0 → DefaultReplMaxBytes).
	MaxBytes int
	// Retry paces re-pulls after transient failures (nil → a default
	// unbounded-attempt policy; divergence is permanent regardless).
	Retry *retry.Policy
	// Writable is flipped true by Promote (may be nil).
	Writable *obs.Flag
	// Metrics receives repl_* instrumentation (may be nil).
	Metrics *Metrics
	// Logger receives pull-loop log lines (may be nil).
	Logger *slog.Logger
	// SnapshotPath and Restore together enable snapshot-transfer reseed
	// (reseed.go): when the source answers 410 (our next record was
	// checkpointed away) or 409 under a newer epoch (our log forked), the
	// follower fetches the source's snapshot, installs it at SnapshotPath,
	// resets its WAL to the snapshot's cut, and calls Restore to swap the
	// in-memory table. With either unset, those conditions stay sticky
	// failures, as before.
	SnapshotPath string
	Restore      func(*extarray.SnapshotData[string]) error
}

// NewFollower builds a follower resuming from applied — the record count
// the local WAL replayed at boot.
func NewFollower(b Backend[string], wal *WAL, applied uint64, opt FollowerOptions) *Follower {
	if opt.HTTPClient == nil {
		opt.HTTPClient = defaultHTTPClient
	}
	if opt.PollWait <= 0 {
		opt.PollWait = DefaultReplWait
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = DefaultReplMaxBytes
	}
	if opt.Retry == nil {
		opt.Retry = &retry.Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, MaxAttempts: -1}
	}
	f := &Follower{b: b, wal: wal, opt: opt, stopped: make(chan struct{})}
	f.applied.Store(applied)
	return f
}

// A Follower replicates one primary's WAL into a local backend + WAL.
// Safe for concurrent use; Run is the pull loop, everything else observes
// or stops it.
type Follower struct {
	b   Backend[string]
	wal *WAL
	opt FollowerOptions

	applied  atomic.Uint64 // records durably applied locally
	primNext atomic.Uint64 // primary's committed horizon at last pull
	promoted atomic.Bool

	reseeds    atomic.Uint64 // completed snapshot-transfer reseeds
	lastReseed atomic.Int64  // UnixNano of the latest reseed (0 = never)

	// installMu serializes a reseed install against any local persistence
	// the embedder runs (the follower's periodic checkpoint): a checkpoint
	// taken between ResetTo and Restore would snapshot a table that does
	// not match the WAL cut. Exposed via GuardInstall.
	installMu sync.Mutex

	mu      sync.Mutex
	err     error              // sticky divergence/apply failure
	cancel  context.CancelFunc // cancels the running pull loop
	stopped chan struct{}      // closed when the pull loop exits
}

// Source returns the primary's base URL.
func (f *Follower) Source() string { return f.opt.Source }

// Applied returns the follower's durable replication position.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Lag returns the record lag behind the primary's committed horizon as
// of the last successful pull (0 while caught up or never connected).
func (f *Follower) Lag() uint64 {
	if n, a := f.primNext.Load(), f.applied.Load(); n > a {
		return n - a
	}
	return 0
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Reseeds returns how many snapshot-transfer reseeds have completed.
func (f *Follower) Reseeds() uint64 { return f.reseeds.Load() }

// LastReseed returns when the latest reseed completed (zero if never).
func (f *Follower) LastReseed() time.Time {
	ns := f.lastReseed.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// GuardInstall runs fn while holding the reseed install lock, so local
// persistence (the follower's periodic checkpoint) never interleaves with
// a snapshot install's WAL-reset/restore window.
func (f *Follower) GuardInstall(fn func() error) error {
	f.installMu.Lock()
	defer f.installMu.Unlock()
	return fn()
}

// reseedCapable reports whether the options allow snapshot reseed.
func (f *Follower) reseedCapable() bool {
	return f.opt.SnapshotPath != "" && f.opt.Restore != nil
}

// Err returns the sticky replication failure, if any.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// fail records the sticky failure and stops the loop.
func (f *Follower) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	if f.opt.Logger != nil {
		f.opt.Logger.Error("repl: follower stopped", "source", f.opt.Source, "err", err)
	}
}

// Run pulls until ctx ends, Promote is called, or a permanent failure
// (divergence, local apply/append failure) sticks. Wire it as a
// srvkit.Lifecycle background task.
func (f *Follower) Run(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	f.mu.Lock()
	if f.promoted.Load() {
		f.mu.Unlock()
		cancel()
		return
	}
	f.cancel = cancel
	f.mu.Unlock()
	defer close(f.stopped)
	defer cancel()
	err := f.opt.Retry.Do(ctx, func(ctx context.Context) error {
		for {
			if err := f.pullOnce(ctx); err != nil {
				var rn *reseedNeeded
				if errors.As(err, &rn) {
					// The source told us tailing cannot resume from our
					// position (checkpointed past or epoch fork). Rebuild
					// from its snapshot instead of sticking.
					if rerr := f.reseed(ctx, rn); rerr != nil {
						return rerr
					}
					continue
				}
				return err // transient → backoff + retry; permanent → stop
			}
			// A successful pull resets the backoff by returning into a
			// fresh Do call — cheaper to just loop here and let only
			// errors escape to the retry schedule.
		}
	})
	if err != nil && ctx.Err() == nil {
		f.fail(err)
	}
}

// pullOnce performs one frames request and applies whatever it returns.
// A nil error means progress (possibly zero new records after a quiet
// long-poll); transient transport trouble comes back plain (retryable);
// divergence and local failures come back retry.Permanent.
func (f *Follower) pullOnce(ctx context.Context) error {
	from := f.applied.Load()
	localEpoch := f.wal.Epoch()
	url := fmt.Sprintf("%s%s?from=%d&epoch=%d&wait_ms=%d&max=%d", f.opt.Source, ReplFramesPath,
		from, localEpoch, f.opt.PollWait/time.Millisecond, f.opt.MaxBytes)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return retry.Permanent(err)
	}
	resp, err := f.opt.HTTPClient.Do(req)
	if err != nil {
		return err // transport: primary restarting/unreachable — retry
	}
	defer resp.Body.Close()
	f.opt.Metrics.replPull(resp.StatusCode)
	srcEpoch, hasSrcEpoch := uint64(0), false
	if es := resp.Header.Get(ReplEpochHeader); es != "" {
		if srcEpoch, err = strconv.ParseUint(es, 10, 64); err == nil {
			hasSrcEpoch = true
		}
	}
	// An epoch behind ours means the source was never promoted past our
	// history — we are talking to a stale ex-primary (or a misrouted
	// node). Applying its frames would adopt a fenced fork; fail closed.
	// (On a 200 the header carries the served chunk's epoch, but a chunk
	// at our position can never be older than our own epoch's start.)
	if hasSrcEpoch && srcEpoch < localEpoch {
		return retry.Permanent(fmt.Errorf(
			"tabled: epoch regression: source %s at epoch %d is behind local epoch %d",
			f.opt.Source, srcEpoch, localEpoch))
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// Our next record was checkpointed away on the source. The log
		// suffix is gone, but a snapshot reseed rebuilds us from the
		// source's checkpoint — same bytes, new base.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if f.reseedCapable() {
			return &reseedNeeded{reason: fmt.Sprintf("source checkpointed past %d (%s): %s",
				from, resp.Status, msg)}
		}
		return retry.Permanent(fmt.Errorf("tabled: follower diverged from %s (%s): %s",
			f.opt.Source, resp.Status, msg))
	case http.StatusConflict:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if hasSrcEpoch && srcEpoch > localEpoch && f.reseedCapable() {
			// The source is on a newer epoch and our log forked from its
			// history (the classic ex-primary rejoin). The source is
			// authoritative; our unshared suffix was never ack'd under the
			// new epoch, so discarding it via reseed is the correct move.
			return &reseedNeeded{reason: fmt.Sprintf("history forked at epoch %d (%s): %s",
				srcEpoch, resp.Status, msg)}
		}
		// Same-epoch conflict: we hold records the source never wrote,
		// with no promotion to explain it. That is true divergence —
		// reseeding would silently discard locally-durable records.
		return retry.Permanent(fmt.Errorf("tabled: follower diverged from %s (%s): %s",
			f.opt.Source, resp.Status, msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("tabled: repl pull: %s: %s", resp.Status, msg)
	}
	if committed, err := strconv.ParseUint(resp.Header.Get(ReplCommittedHeader), 10, 64); err == nil {
		f.primNext.Store(committed)
	}
	if hasSrcEpoch && srcEpoch > localEpoch {
		// The chunk we are about to apply was written under a newer
		// primary epoch; record the transition durably before applying so
		// a restart presents the right epoch on its first pull.
		if err := f.wal.ObserveEpoch(srcEpoch, from); err != nil {
			return retry.Permanent(fmt.Errorf("tabled: repl epoch adopt: %w", err))
		}
		f.opt.Metrics.replEpoch(srcEpoch)
	}
	// Bound the read: the primary caps bodies at MaxBytes except when a
	// single record is larger, so allow one max-size frame of slack.
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(f.opt.MaxBytes)+extarray.MaxFramePayload+16))
	if err != nil {
		return fmt.Errorf("tabled: repl pull: reading body: %w", err)
	}
	n, err := walog.ReadStream(body, func(payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return retry.Permanent(fmt.Errorf("tabled: repl apply: %w", err))
		}
		// Primary order: apply to memory, then make durable. A crash
		// between the two replays this record from the next pull (the
		// position only advances with the local append), and re-applying
		// is idempotent.
		if err := ApplyWALRecord(f.b, rec); err != nil {
			return retry.Permanent(err)
		}
		if err := f.wal.AppendRaw(payload); err != nil {
			return retry.Permanent(fmt.Errorf("tabled: repl append: %w", err))
		}
		f.applied.Add(1)
		return nil
	})
	f.opt.Metrics.replApplied(n, f.Lag())
	if err != nil {
		// A truncated stream (ReadStream error without Permanent) is a
		// torn HTTP body: records before the tear are applied and
		// position-advanced, so a plain retry resumes exactly after them.
		return err
	}
	return nil
}

// Promote executes the follower → primary transition: stop the pull
// loop, wait for it to exit (no frame is mid-apply past this point),
// flip the writable flag, and return the final applied position. After
// Promote the node serves writes and its own /v1/repl/frames — a new
// follower can chain from it. Idempotent.
func (f *Follower) Promote() (applied uint64) {
	f.mu.Lock()
	already := f.promoted.Swap(true)
	cancel := f.cancel
	f.mu.Unlock()
	if already {
		return f.applied.Load()
	}
	if cancel != nil {
		cancel()
		<-f.stopped
	}
	if f.opt.Writable != nil {
		f.opt.Writable.Set(true)
	}
	return f.applied.Load()
}
