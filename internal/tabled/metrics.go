package tabled

import (
	"strconv"
	"time"

	"pairfn/internal/obs"
)

// defBatchBuckets bucket batch sizes in powers of four from 1 to 4096.
var defBatchBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096}

// Metrics is the tabled instrumentation bundle: per-shard op counters plus
// batch-size and latency histograms, all registered under tabled_*. A nil
// *Metrics is valid and records nothing, so stores and servers can be wired
// unconditionally.
type Metrics struct {
	shardOpsC []*obs.Counter
	batchSize *obs.Histogram
	opsTotal  map[string]*obs.Counter
	opErrors  map[string]*obs.Counter
	batchDur  map[string]*obs.Histogram
	snapOK    *obs.Counter
	snapErr   *obs.Counter
	snapDur   *obs.Histogram
}

// opNames are the batch op kinds instrumented per-op.
var opNames = []string{"get", "set", "resize", "dims", "stats"}

// NewMetrics registers the tabled metric families on reg (nil reg → nil
// Metrics) for a table of nshards shards.
func NewMetrics(reg *obs.Registry, nshards int) *Metrics {
	if reg == nil {
		return nil
	}
	reg.Help("tabled_shard_ops_total", "Cell operations routed to each shard (by PF address stripe).")
	reg.Help("tabled_ops_total", "Batch-API operations executed, by op.")
	reg.Help("tabled_op_errors_total", "Batch-API operations that returned an error, by op.")
	reg.Help("tabled_batch_cells", "Cells per batched get/set call.")
	reg.Help("tabled_batch_duration_seconds", "Latency of batch-API op groups, by op.")
	reg.Help("tabled_snapshots_total", "Snapshot attempts, by result.")
	reg.Help("tabled_snapshot_duration_seconds", "Snapshot save latency.")
	m := &Metrics{
		batchSize: reg.Histogram("tabled_batch_cells", defBatchBuckets),
		opsTotal:  make(map[string]*obs.Counter, len(opNames)),
		opErrors:  make(map[string]*obs.Counter, len(opNames)),
		batchDur:  make(map[string]*obs.Histogram, len(opNames)),
		snapOK:    reg.Counter("tabled_snapshots_total", obs.L("result", "ok")),
		snapErr:   reg.Counter("tabled_snapshots_total", obs.L("result", "error")),
		snapDur:   reg.Histogram("tabled_snapshot_duration_seconds", obs.DefDurationBuckets),
	}
	for _, op := range opNames {
		m.opsTotal[op] = reg.Counter("tabled_ops_total", obs.L("op", op))
		m.opErrors[op] = reg.Counter("tabled_op_errors_total", obs.L("op", op))
		m.batchDur[op] = reg.Histogram("tabled_batch_duration_seconds", obs.DefDurationBuckets, obs.L("op", op))
	}
	m.shardOpsC = make([]*obs.Counter, nshards)
	for i := range m.shardOpsC {
		m.shardOpsC[i] = reg.Counter("tabled_shard_ops_total", obs.L("shard", strconv.Itoa(i)))
	}
	return m
}

// shardOp records one cell op routed to shard i.
func (m *Metrics) shardOp(i int) { m.shardOps(i, 1) }

// shardOps records n cell ops routed to shard i.
func (m *Metrics) shardOps(i, n int) {
	if m == nil || i >= len(m.shardOpsC) {
		return
	}
	m.shardOpsC[i].Add(int64(n))
}

// op records one executed batch-API op group of the given kind and cell
// count, with its latency and error outcome.
func (m *Metrics) op(kind string, cells int, d time.Duration, failed bool) {
	if m == nil {
		return
	}
	m.opsTotal[kind].Inc()
	if failed {
		m.opErrors[kind].Inc()
	}
	if kind == "get" || kind == "set" {
		m.batchSize.Observe(float64(cells))
	}
	m.batchDur[kind].Observe(d.Seconds())
}

// snapshot records a snapshot attempt.
func (m *Metrics) snapshot(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.snapErr.Inc()
	} else {
		m.snapOK.Inc()
	}
	m.snapDur.Observe(d.Seconds())
}
