package tabled

import (
	"strconv"
	"time"

	"pairfn/internal/obs"
)

// defBatchBuckets bucket batch sizes in powers of four from 1 to 4096.
var defBatchBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096}

// Metrics is the tabled instrumentation bundle: per-shard op counters plus
// batch-size and latency histograms, all registered under tabled_*. A nil
// *Metrics is valid and records nothing, so stores and servers can be wired
// unconditionally.
type Metrics struct {
	shardOpsC []*obs.Counter
	batchSize *obs.Histogram
	opsTotal  map[string]*obs.Counter
	opErrors  map[string]*obs.Counter
	batchDur  map[string]*obs.Histogram
	snapOK    *obs.Counter
	snapErr   *obs.Counter
	snapDur   *obs.Histogram

	walAppends     *obs.Counter
	walBytes       *obs.Counter
	walSyncOK      *obs.Counter
	walSyncErr     *obs.Counter
	walSyncDurH    *obs.Histogram
	walSizeG       *obs.Gauge
	walReplayed    *obs.Counter
	walTornTails   *obs.Counter
	walCheckpoints *obs.Counter
	degradedG      *obs.Gauge
	idemHits       *obs.Counter

	replServedRecs  *obs.Counter
	replServedBytes *obs.Counter
	replPulls       map[string]*obs.Counter
	replAppliedRecs *obs.Counter
	replLagG        *obs.Gauge
	replPromotions  *obs.Counter
	replPromoteDur  *obs.Histogram
	replAckWaits    *obs.Counter
	replAckTimeouts *obs.Counter

	replEpochG        *obs.Gauge
	replFencedG       *obs.Gauge
	replReseedsOK     *obs.Counter
	replReseedsErr    *obs.Counter
	replReseedBytes   *obs.Counter
	replReseedDur     *obs.Histogram
	replLastReseedG   *obs.Gauge
	replSnapServes    *obs.Counter
	replSnapServeErrs *obs.Counter
	replSnapBytes     *obs.Counter
}

// opNames are the batch op kinds instrumented per-op.
var opNames = []string{"get", "set", "resize", "dims", "stats"}

// NewMetrics registers the tabled metric families on reg (nil reg → nil
// Metrics) for a table of nshards shards.
func NewMetrics(reg *obs.Registry, nshards int) *Metrics {
	if reg == nil {
		return nil
	}
	reg.Help("tabled_shard_ops_total", "Cell operations routed to each shard (by PF address stripe).")
	reg.Help("tabled_ops_total", "Batch-API operations executed, by op.")
	reg.Help("tabled_op_errors_total", "Batch-API operations that returned an error, by op.")
	reg.Help("tabled_batch_cells", "Cells per batched get/set call.")
	reg.Help("tabled_batch_duration_seconds", "Latency of batch-API op groups, by op.")
	reg.Help("tabled_snapshots_total", "Snapshot attempts, by result.")
	reg.Help("tabled_snapshot_duration_seconds", "Snapshot save latency.")
	reg.Help("tabled_wal_appends_total", "WAL records appended (one set batch or resize each).")
	reg.Help("tabled_wal_appended_bytes_total", "Bytes appended to the WAL, framing included.")
	reg.Help("tabled_wal_syncs_total", "WAL fsyncs, by result (group commit shares one sync across a window).")
	reg.Help("tabled_wal_sync_duration_seconds", "WAL fsync latency.")
	reg.Help("tabled_wal_size_bytes", "Current WAL length; drops to zero at each checkpoint.")
	reg.Help("tabled_wal_replayed_records_total", "Records replayed from the WAL at boot.")
	reg.Help("tabled_wal_torn_tails_total", "Torn or corrupt WAL tails truncated at boot.")
	reg.Help("tabled_wal_checkpoints_total", "Snapshot checkpoints that reset the WAL.")
	reg.Help("tabled_degraded", "1 while the server is in read-only degraded mode (WAL volume failed).")
	reg.Help("tabled_idempotent_replays_total", "Batch requests answered from the idempotency cache without re-executing.")
	reg.Help("tabled_repl_served_records_total", "WAL records served to followers over /v1/repl/frames.")
	reg.Help("tabled_repl_served_bytes_total", "Framed bytes served to followers.")
	reg.Help("tabled_repl_pulls_total", "Follower pull requests issued, by result class.")
	reg.Help("tabled_repl_applied_records_total", "Primary WAL records applied by this follower.")
	reg.Help("tabled_repl_lag_records", "Follower record lag behind the primary's committed horizon at the last pull.")
	reg.Help("tabled_repl_promotions_total", "Follower-to-primary promotions performed.")
	reg.Help("tabled_repl_promote_duration_seconds", "Latency of the promote transition (pull-loop stop through writable flip).")
	reg.Help("tabled_repl_ack_waits_total", "Write batches that waited on the replication ack gate.")
	reg.Help("tabled_repl_ack_timeouts_total", "Write batches whose ack was refused because the follower did not confirm in time.")
	reg.Help("tabled_repl_epoch", "This node's current primary epoch (bumped durably at every promotion).")
	reg.Help("tabled_repl_fenced", "1 once this node has observed a newer primary epoch than its own and fenced itself read-only.")
	reg.Help("tabled_repl_reseeds_total", "Snapshot-transfer reseeds, by result (an 'error' attempt is retried).")
	reg.Help("tabled_repl_reseed_bytes_total", "Snapshot bytes fetched by reseeds, failed attempts included.")
	reg.Help("tabled_repl_reseed_duration_seconds", "Latency of one successful reseed, fetch through install.")
	reg.Help("tabled_repl_last_reseed_timestamp_seconds", "Unix time of the last successful reseed (0 = never).")
	reg.Help("tabled_repl_snapshot_serves_total", "/v1/repl/snapshot responses streamed, by result.")
	reg.Help("tabled_repl_snapshot_served_bytes_total", "Snapshot bytes streamed to reseeding followers.")
	m := &Metrics{
		batchSize: reg.Histogram("tabled_batch_cells", defBatchBuckets),
		opsTotal:  make(map[string]*obs.Counter, len(opNames)),
		opErrors:  make(map[string]*obs.Counter, len(opNames)),
		batchDur:  make(map[string]*obs.Histogram, len(opNames)),
		snapOK:    reg.Counter("tabled_snapshots_total", obs.L("result", "ok")),
		snapErr:   reg.Counter("tabled_snapshots_total", obs.L("result", "error")),
		snapDur:   reg.Histogram("tabled_snapshot_duration_seconds", obs.DefDurationBuckets),

		walAppends:     reg.Counter("tabled_wal_appends_total"),
		walBytes:       reg.Counter("tabled_wal_appended_bytes_total"),
		walSyncOK:      reg.Counter("tabled_wal_syncs_total", obs.L("result", "ok")),
		walSyncErr:     reg.Counter("tabled_wal_syncs_total", obs.L("result", "error")),
		walSyncDurH:    reg.Histogram("tabled_wal_sync_duration_seconds", obs.DefDurationBuckets),
		walSizeG:       reg.Gauge("tabled_wal_size_bytes"),
		walReplayed:    reg.Counter("tabled_wal_replayed_records_total"),
		walTornTails:   reg.Counter("tabled_wal_torn_tails_total"),
		walCheckpoints: reg.Counter("tabled_wal_checkpoints_total"),
		degradedG:      reg.Gauge("tabled_degraded"),
		idemHits:       reg.Counter("tabled_idempotent_replays_total"),

		replServedRecs:  reg.Counter("tabled_repl_served_records_total"),
		replServedBytes: reg.Counter("tabled_repl_served_bytes_total"),
		replPulls:       make(map[string]*obs.Counter, 3),
		replAppliedRecs: reg.Counter("tabled_repl_applied_records_total"),
		replLagG:        reg.Gauge("tabled_repl_lag_records"),
		replPromotions:  reg.Counter("tabled_repl_promotions_total"),
		replPromoteDur:  reg.Histogram("tabled_repl_promote_duration_seconds", obs.DefDurationBuckets),
		replAckWaits:    reg.Counter("tabled_repl_ack_waits_total"),
		replAckTimeouts: reg.Counter("tabled_repl_ack_timeouts_total"),

		replEpochG:        reg.Gauge("tabled_repl_epoch"),
		replFencedG:       reg.Gauge("tabled_repl_fenced"),
		replReseedsOK:     reg.Counter("tabled_repl_reseeds_total", obs.L("result", "ok")),
		replReseedsErr:    reg.Counter("tabled_repl_reseeds_total", obs.L("result", "error")),
		replReseedBytes:   reg.Counter("tabled_repl_reseed_bytes_total"),
		replReseedDur:     reg.Histogram("tabled_repl_reseed_duration_seconds", obs.DefDurationBuckets),
		replLastReseedG:   reg.Gauge("tabled_repl_last_reseed_timestamp_seconds"),
		replSnapServes:    reg.Counter("tabled_repl_snapshot_serves_total", obs.L("result", "ok")),
		replSnapServeErrs: reg.Counter("tabled_repl_snapshot_serves_total", obs.L("result", "error")),
		replSnapBytes:     reg.Counter("tabled_repl_snapshot_served_bytes_total"),
	}
	for _, result := range []string{"ok", "diverged", "error"} {
		m.replPulls[result] = reg.Counter("tabled_repl_pulls_total", obs.L("result", result))
	}
	for _, op := range opNames {
		m.opsTotal[op] = reg.Counter("tabled_ops_total", obs.L("op", op))
		m.opErrors[op] = reg.Counter("tabled_op_errors_total", obs.L("op", op))
		m.batchDur[op] = reg.Histogram("tabled_batch_duration_seconds", obs.DefDurationBuckets, obs.L("op", op))
	}
	m.shardOpsC = make([]*obs.Counter, nshards)
	for i := range m.shardOpsC {
		m.shardOpsC[i] = reg.Counter("tabled_shard_ops_total", obs.L("shard", strconv.Itoa(i)))
	}
	return m
}

// shardOp records one cell op routed to shard i.
func (m *Metrics) shardOp(i int) { m.shardOps(i, 1) }

// shardOps records n cell ops routed to shard i.
func (m *Metrics) shardOps(i, n int) {
	if m == nil || i >= len(m.shardOpsC) {
		return
	}
	m.shardOpsC[i].Add(int64(n))
}

// op records one executed batch-API op group of the given kind and cell
// count, with its latency and error outcome.
func (m *Metrics) op(kind string, cells int, d time.Duration, failed bool) {
	if m == nil {
		return
	}
	m.opsTotal[kind].Inc()
	if failed {
		m.opErrors[kind].Inc()
	}
	if kind == "get" || kind == "set" {
		m.batchSize.Observe(float64(cells))
	}
	m.batchDur[kind].Observe(d.Seconds())
}

// walAppend records one appended record of n framed bytes.
func (m *Metrics) walAppend(n int64) {
	if m == nil {
		return
	}
	m.walAppends.Inc()
	m.walBytes.Add(n)
}

// walSync records one fsync attempt.
func (m *Metrics) walSync(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.walSyncErr.Inc()
	} else {
		m.walSyncOK.Inc()
	}
	m.walSyncDurH.Observe(d.Seconds())
}

// walSize mirrors the current log length.
func (m *Metrics) walSize(n int64) {
	if m == nil {
		return
	}
	m.walSizeG.Set(n)
}

// walReplay records a boot-time replay outcome.
func (m *Metrics) walReplay(records int, torn bool) {
	if m == nil {
		return
	}
	m.walReplayed.Add(int64(records))
	if torn {
		m.walTornTails.Inc()
	}
}

// walCheckpoint records one log reset.
func (m *Metrics) walCheckpoint() {
	if m == nil {
		return
	}
	m.walCheckpoints.Inc()
}

// degradedGauge exposes the tabled_degraded gauge for the srvkit trip
// machine to flip (nil on a nil bundle — obs gauges are nil-safe).
func (m *Metrics) degradedGauge() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.degradedG
}

// idempotentReplay records one batch served from the idempotency cache.
func (m *Metrics) idempotentReplay() {
	if m == nil {
		return
	}
	m.idemHits.Inc()
}

// replServe records one frames response sent to a follower.
func (m *Metrics) replServe(bytes, records int) {
	if m == nil {
		return
	}
	m.replServedBytes.Add(int64(bytes))
	m.replServedRecs.Add(int64(records))
}

// replPull records one pull attempt's outcome by HTTP status class.
func (m *Metrics) replPull(status int) {
	if m == nil {
		return
	}
	switch {
	case status == 200:
		m.replPulls["ok"].Inc()
	case status == 409 || status == 410:
		m.replPulls["diverged"].Inc()
	default:
		m.replPulls["error"].Inc()
	}
}

// replApplied records n newly applied records and the current lag.
func (m *Metrics) replApplied(n int, lag uint64) {
	if m == nil {
		return
	}
	m.replAppliedRecs.Add(int64(n))
	m.replLagG.Set(int64(lag))
}

// replPromotion records one follower→primary transition.
func (m *Metrics) replPromotion(d time.Duration) {
	if m == nil {
		return
	}
	m.replPromotions.Inc()
	m.replPromoteDur.Observe(d.Seconds())
}

// replAckWait records one gated write batch and whether its ack timed out.
func (m *Metrics) replAckWait(timedOut bool) {
	if m == nil {
		return
	}
	m.replAckWaits.Inc()
	if timedOut {
		m.replAckTimeouts.Inc()
	}
}

// replEpoch mirrors the node's current primary epoch.
func (m *Metrics) replEpoch(e uint64) {
	if m == nil {
		return
	}
	m.replEpochG.Set(int64(e))
}

// replFenced flips the fenced gauge once a newer epoch is observed.
func (m *Metrics) replFenced() {
	if m == nil {
		return
	}
	m.replFencedG.Set(1)
}

// replReseed records one successful snapshot-transfer reseed.
func (m *Metrics) replReseed(bytes int64, d time.Duration) {
	if m == nil {
		return
	}
	m.replReseedsOK.Inc()
	m.replReseedBytes.Add(bytes)
	m.replReseedDur.Observe(d.Seconds())
	m.replLastReseedG.Set(time.Now().Unix())
}

// replReseedFailure records one failed (and to-be-retried) reseed attempt
// along with any bytes it fetched before failing.
func (m *Metrics) replReseedFailure(bytes int64) {
	if m == nil {
		return
	}
	m.replReseedsErr.Inc()
	m.replReseedBytes.Add(bytes)
}

// replSnapServe records one snapshot stream sent to a reseeding follower.
func (m *Metrics) replSnapServe(bytes int64, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.replSnapServeErrs.Inc()
	} else {
		m.replSnapServes.Inc()
	}
	m.replSnapBytes.Add(bytes)
}

// snapshot records a snapshot attempt.
func (m *Metrics) snapshot(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.snapErr.Inc()
	} else {
		m.snapOK.Inc()
	}
	m.snapDur.Observe(d.Seconds())
}
