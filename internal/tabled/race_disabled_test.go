//go:build !race

package tabled

const raceEnabled = false
