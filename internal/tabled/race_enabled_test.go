//go:build race

package tabled

// raceEnabled gates allocation-count assertions: under the race detector
// sync.Pool randomly drops puts (to widen interleavings), so pooled paths
// legitimately allocate and AllocsPerRun guardrails are meaningless.
const raceEnabled = true
