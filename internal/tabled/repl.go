package tabled

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pairfn/internal/walog"
)

// This file is the server half of per-range WAL replication (DESIGN §5d):
// a primary serves its committed log suffix over HTTP as raw CRC-framed
// bytes, a follower (follower.go) pulls and re-applies them, and an
// explicit promotion flips the follower writable when the primary dies.
//
// The pull's `from` parameter does double duty: it names the next record
// the follower wants AND acknowledges that records [0, from) are durable
// on the follower (it only advances `from` after its own fsync). That one
// number is what makes semi-synchronous acks possible with a pull
// protocol: the primary's ReplGate watches the acknowledged horizon and
// holds each write's HTTP response until the horizon covers it.

// Replication endpoints, mounted by NewHandler when ServerOptions.Repl is
// set:
//
//	GET  /v1/repl/frames?from=N[&wait_ms=M][&max=B]  committed frames from seq N
//	GET  /v1/repl/status                             role / sequence line / lag (JSON)
//	POST /v1/promote                                 follower → primary transition

// ReplFramesPath is the frame-streaming endpoint.
const ReplFramesPath = "/v1/repl/frames"

// ReplStatusPath is the replication status endpoint.
const ReplStatusPath = "/v1/repl/status"

// PromotePath is the follower-promotion endpoint.
const PromotePath = "/v1/promote"

// Frame-stream response headers: the next sequence to request, the
// primary's committed horizon at serve time (the follower's lag is
// committed − applied), and the epoch of the records in the response (on
// errors, the server's current epoch — what a follower needs to decide
// between reseeding and failing closed).
const (
	ReplNextHeader      = "X-Tabled-Repl-Next"
	ReplCommittedHeader = "X-Tabled-Repl-Committed"
	ReplEpochHeader     = "X-Tabled-Repl-Epoch"
)

// DefaultReplWait is the server-side long-poll window on /v1/repl/frames
// when the request doesn't name one.
const DefaultReplWait = 2 * time.Second

// maxReplWait caps the client-requested long-poll window so a follower
// cannot pin a handler goroutine indefinitely.
const maxReplWait = 30 * time.Second

// DefaultReplMaxBytes caps one frames response body.
const DefaultReplMaxBytes = 1 << 20

// ErrReplAckTimeout is the gate's refusal: the write is durable locally
// but the follower did not confirm it in time, so the ack is withheld
// (503) rather than risk acknowledging a write only the primary holds.
var ErrReplAckTimeout = errors.New("tabled: replication ack timeout")

// ReplStatus is the /v1/repl/status reply.
type ReplStatus struct {
	// Role is "primary" or "follower". A promoted follower reports
	// "primary".
	Role string `json:"role"`
	// Base and Next delimit the durable records still in the log:
	// [Base, Next). Records below Base were checkpointed into a snapshot.
	Base uint64 `json:"base"`
	Next uint64 `json:"next"`
	// Source is the primary this node replicates from (followers only).
	Source string `json:"source,omitempty"`
	// Applied is the follower's replication position (followers only).
	Applied uint64 `json:"applied,omitempty"`
	// Lag is the follower's record lag behind the primary's committed
	// horizon as of the last pull (followers only).
	Lag uint64 `json:"lag"`
	// Err is the follower's sticky replication failure, if any (e.g.
	// detected divergence).
	Err string `json:"error,omitempty"`
	// Epoch is the node's current primary epoch: 0 before any promotion,
	// bumped durably at each one. The router's checker compares epochs
	// across a range's members to fence a stale restarted primary.
	Epoch uint64 `json:"epoch"`
	// Fenced is true once this node has observed (from a requester) that
	// a newer primary epoch exists; FencedBy is that epoch. A fenced node
	// refuses writes until it is reseeded under the new primary.
	Fenced   bool   `json:"fenced,omitempty"`
	FencedBy uint64 `json:"fenced_by,omitempty"`
	// Reseeds counts completed snapshot-transfer reseeds;
	// LastReseedUnix is the Unix time of the latest one (absent if
	// never). Together with Lag they let an operator tell "lagging" from
	// "stranded" from "freshly reseeded" without reading logs.
	Reseeds        uint64  `json:"reseeds,omitempty"`
	LastReseedUnix float64 `json:"last_reseed_unix,omitempty"`
}

// Repl is the replication face of one tabled server, carried into
// NewHandler via ServerOptions.Repl. WAL is required; Follower is set in
// follower mode; Gate is set on primaries that withhold write acks until
// the follower confirms (semi-synchronous replication).
type Repl struct {
	WAL      *WAL
	Follower *Follower
	Gate     *ReplGate
	Metrics  *Metrics
	Logger   *slog.Logger
	// Snap, when set, serves /v1/repl/snapshot — the reseed source for
	// followers stranded below the log base (see replsnap.go).
	Snap *ReplSnapshots
	// Fence, when set, is invoked (possibly more than once) when a
	// requester proves a newer primary epoch exists than this node's: the
	// server wires it to its degraded-mode trip so a stale restarted
	// primary stops acknowledging writes on its own, not just at the
	// router.
	Fence func(err error)

	fencedBy  atomic.Uint64
	promoteMu sync.Mutex
}

// selfFence records that a requester at epoch remote has proven a newer
// primary exists, tripping Fence on the first (or a higher) observation.
func (rp *Repl) selfFence(remote uint64) {
	for {
		cur := rp.fencedBy.Load()
		if remote <= cur {
			return
		}
		if rp.fencedBy.CompareAndSwap(cur, remote) {
			break
		}
	}
	err := fmt.Errorf("tabled: fenced: a primary at epoch %d exists beyond this node's epoch %d; reseed required",
		remote, rp.WAL.Epoch())
	rp.Metrics.replFenced()
	if rp.Logger != nil {
		rp.Logger.Error("repl: fenced by newer epoch", "remote_epoch", remote, "local_epoch", rp.WAL.Epoch())
	}
	if rp.Fence != nil {
		rp.Fence(err)
	}
}

// FencedBy reports the newest foreign epoch this node has been fenced by
// (ok false when never fenced).
func (rp *Repl) FencedBy() (epoch uint64, ok bool) {
	e := rp.fencedBy.Load()
	return e, e > 0
}

// Role reports the node's current replication role.
func (rp *Repl) Role() string {
	if rp.Follower != nil && !rp.Follower.Promoted() {
		return "follower"
	}
	return "primary"
}

// register mounts the replication endpoints on mux.
func (rp *Repl) register(mux *http.ServeMux) {
	mux.HandleFunc("GET "+ReplFramesPath, rp.handleFrames)
	mux.HandleFunc("GET "+ReplStatusPath, rp.handleStatus)
	mux.HandleFunc("POST "+PromotePath, rp.handlePromote)
	if rp.Snap != nil {
		mux.HandleFunc("GET "+ReplSnapshotPath, rp.Snap.handle)
	}
	// Baseline the epoch gauge at mount so a node that never promotes
	// still exports its (recovered) epoch.
	rp.Metrics.replEpoch(rp.WAL.Epoch())
}

// handleFrames serves committed WAL frames from the requested sequence,
// long-polling briefly when the follower is caught up. The from parameter
// is also the follower's durability acknowledgement — it feeds the gate
// before anything else, so acks release even on requests that then just
// long-poll.
func (rp *Repl) handleFrames(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad request: from must be a sequence number", http.StatusBadRequest)
		return
	}
	// Every response carries the server's current epoch so the requester
	// can tell a reseedable condition (source ahead) from a fatal one
	// (source behind); successful frame responses overwrite it below with
	// the epoch of the records actually served.
	srcEpoch := rp.WAL.Epoch()
	w.Header().Set(ReplEpochHeader, strconv.FormatUint(srcEpoch, 10))
	reqEpoch, hasReqEpoch := uint64(0), false
	if es := q.Get("epoch"); es != "" {
		if reqEpoch, err = strconv.ParseUint(es, 10, 64); err != nil {
			http.Error(w, "bad request: epoch must be an integer", http.StatusBadRequest)
			return
		}
		hasReqEpoch = true
	}
	switch {
	case hasReqEpoch && reqEpoch > srcEpoch:
		// The requester has seen a primary newer than us: WE are the
		// stale node. Fence ourselves (stop acking writes) and refuse —
		// serving frames from a fenced fork would propagate it.
		rp.selfFence(reqEpoch)
		http.Error(w, fmt.Sprintf("tabled: source epoch %d behind requester epoch %d (fenced)",
			srcEpoch, reqEpoch), http.StatusConflict)
		return
	case hasReqEpoch && reqEpoch < srcEpoch:
		// An old-epoch requester may still read shared history — records
		// up to where the first newer epoch began. Past that barrier its
		// log is a fork of ours and only a reseed reconciles it.
		if barrier, ok := rp.WAL.EpochBarrier(reqEpoch); ok && from > barrier {
			http.Error(w, fmt.Sprintf("tabled: epoch %d history forked at %d, asked %d (reseed required)",
				reqEpoch, barrier, from), http.StatusConflict)
			return
		}
	}
	if !hasReqEpoch || reqEpoch == srcEpoch {
		// Only a same-epoch follower's position is a semi-sync ack; an
		// old-epoch straggler catching up must not release write acks.
		rp.Gate.Advance(from)
	}
	wait := DefaultReplWait
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			http.Error(w, "bad request: wait_ms must be a non-negative integer", http.StatusBadRequest)
			return
		}
		wait = time.Duration(n) * time.Millisecond
		if wait > maxReplWait {
			wait = maxReplWait
		}
	}
	maxBytes := DefaultReplMaxBytes
	if mb := q.Get("max"); mb != "" {
		n, err := strconv.Atoi(mb)
		if err != nil || n <= 0 {
			http.Error(w, "bad request: max must be a positive byte count", http.StatusBadRequest)
			return
		}
		maxBytes = n
	}
	// Long-poll until something past `from` is committed; "nothing new
	// before the window closed" is a success with an empty body.
	if wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		err := rp.WAL.WaitCommitted(ctx, from+1)
		cancel()
		if err != nil && r.Context().Err() != nil {
			return // client went away
		}
	}
	frames, next, err := rp.WAL.Tail(from, maxBytes)
	switch {
	case errors.Is(err, walog.ErrSeqGap):
		// The records were checkpointed away; the follower must resync.
		http.Error(w, err.Error(), http.StatusGone)
		return
	case errors.Is(err, walog.ErrSeqAhead):
		// The follower knows records this log never wrote: divergence.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, committed := rp.WAL.SeqState()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ReplNextHeader, strconv.FormatUint(next, 10))
	w.Header().Set(ReplCommittedHeader, strconv.FormatUint(committed, 10))
	// Tail never crosses an epoch mark, so one epoch describes the whole
	// chunk (for an empty chunk, the epoch the next record will carry).
	w.Header().Set(ReplEpochHeader, strconv.FormatUint(rp.WAL.EpochAt(from), 10))
	rp.Metrics.replServe(len(frames), int(next-from))
	if _, err := w.Write(frames); err != nil && rp.Logger != nil {
		rp.Logger.Warn("repl: frames write", "err", err)
	}
}

// handleStatus reports the node's replication view — the checker reads it
// to distinguish a promoted follower from a plain read-only member.
func (rp *Repl) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st := ReplStatus{Role: rp.Role(), Epoch: rp.WAL.Epoch()}
	st.Base, st.Next = rp.WAL.SeqState()
	if e, ok := rp.FencedBy(); ok {
		st.Fenced, st.FencedBy = true, e
	}
	if f := rp.Follower; f != nil {
		st.Source = f.Source()
		st.Applied = f.Applied()
		st.Lag = f.Lag()
		if err := f.Err(); err != nil {
			st.Err = err.Error()
		}
		st.Reseeds = f.Reseeds()
		if ts := f.LastReseed(); !ts.IsZero() {
			st.LastReseedUnix = float64(ts.UnixNano()) / 1e9
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&st)
}

// handlePromote performs the explicit follower → primary transition: stop
// pulling, flip writable, start owning the range. Idempotent — promoting
// a primary (or an already-promoted follower) answers 200 with role
// "primary" and does nothing.
func (rp *Repl) handlePromote(w http.ResponseWriter, r *http.Request) {
	rp.promoteMu.Lock()
	defer rp.promoteMu.Unlock()
	if rp.Follower == nil || rp.Follower.Promoted() {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"role":"primary","promoted":false,"epoch":%d}`+"\n", rp.WAL.Epoch())
		return
	}
	// Bump the epoch durably BEFORE flipping writable: the fencing
	// guarantee is that any write this node ever acknowledges as primary
	// is stamped with an epoch the old primary has never held. A failed
	// bump aborts the promotion — better an operator retry than an
	// unfenced primary.
	newEpoch := rp.WAL.Epoch() + 1
	if err := rp.WAL.SetEpoch(newEpoch); err != nil {
		http.Error(w, fmt.Sprintf("tabled: promote: epoch bump: %v", err), http.StatusInternalServerError)
		return
	}
	start := time.Now()
	applied := rp.Follower.Promote()
	d := time.Since(start)
	rp.Metrics.replPromotion(d)
	rp.Metrics.replEpoch(newEpoch)
	if rp.Logger != nil {
		rp.Logger.Info("repl: promoted to primary", "applied", applied, "epoch", newEpoch, "took", d)
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"role":"primary","promoted":true,"applied":%d,"epoch":%d,"promote_ms":%.3f}`+"\n",
		applied, newEpoch, float64(d)/float64(time.Millisecond))
}

// A ReplGate makes replication semi-synchronous: executeInto's caller
// parks each write batch here until the follower's acknowledged horizon
// (the `from` of its pulls) covers the batch's records, or the timeout
// passes and the ack is refused with a 503. The write stays durable
// locally either way — the gate narrows the failure window "acked on
// primary only" to requests that already got a 503, which clients treat
// as retryable. This is the CP choice: a dead follower stalls writes
// (bounded by Timeout) instead of silently widening the loss window.
type ReplGate struct {
	// Timeout bounds one ack wait (0 → DefaultReplAckTimeout).
	Timeout time.Duration

	mu    sync.Mutex
	acked uint64
	gen   chan struct{}
}

// DefaultReplAckTimeout bounds how long a write waits for follower
// confirmation before the ack is refused.
const DefaultReplAckTimeout = 2 * time.Second

// Advance records that the follower has durably applied records
// [0, seq), waking writes parked at or below that horizon. Regressions
// are ignored (a retried pull may re-present an older from).
func (g *ReplGate) Advance(seq uint64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if seq > g.acked {
		g.acked = seq
		if g.gen != nil {
			close(g.gen)
			g.gen = nil
		}
	}
	g.mu.Unlock()
}

// Acked returns the follower's confirmed horizon.
func (g *ReplGate) Acked() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.acked
}

// Wait blocks until the follower confirms records [0, seq), the gate
// timeout passes (ErrReplAckTimeout), or ctx ends.
func (g *ReplGate) Wait(ctx context.Context, seq uint64) error {
	timeout := g.Timeout
	if timeout <= 0 {
		timeout = DefaultReplAckTimeout
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		g.mu.Lock()
		if g.acked >= seq {
			g.mu.Unlock()
			return nil
		}
		if g.gen == nil {
			g.gen = make(chan struct{})
		}
		gen := g.gen
		g.mu.Unlock()
		select {
		case <-gen:
		case <-deadline.C:
			return fmt.Errorf("%w: follower at %d, need %d after %v",
				ErrReplAckTimeout, g.Acked(), seq, timeout)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
