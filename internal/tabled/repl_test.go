package tabled

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pairfn/internal/obs"
	"pairfn/internal/retry"
)

// replNode is one end of a replication pair: a sharded backend, its WAL,
// and the HTTP server fronting both.
type replNode struct {
	b    *Sharded[string]
	wal  *WAL
	repl *Repl
	srv  *httptest.Server
}

func startReplNode(t *testing.T, path string, build func(n *replNode) ServerOptions) *replNode {
	t.Helper()
	n := &replNode{b: newWALBackend(t, 16, 16)}
	var replayed int
	n.wal, replayed = openWALInto(t, path, n.b, WALOptions{})
	t.Cleanup(func() { n.wal.Close() })
	opt := build(n)
	_ = replayed
	n.srv = httptest.NewServer(NewHandler(n.b, opt))
	t.Cleanup(n.srv.Close)
	return n
}

// startPrimary builds a primary serving /v1/repl/frames (gate optional).
func startPrimary(t *testing.T, dir string, gate *ReplGate) *replNode {
	t.Helper()
	return startReplNode(t, dir+"/primary.wal", func(n *replNode) ServerOptions {
		n.repl = &Repl{WAL: n.wal, Gate: gate}
		return ServerOptions{WAL: n.wal, Repl: n.repl}
	})
}

// startFollower builds a follower of source and runs its pull loop until
// the test ends.
func startFollower(t *testing.T, dir string, source string) (*replNode, *Follower) {
	t.Helper()
	var f *Follower
	writable := obs.NewFlag(false)
	n := startReplNode(t, dir+"/follower.wal", func(n *replNode) ServerOptions {
		_, next := n.wal.SeqState()
		f = NewFollower(n.b, n.wal, next, FollowerOptions{
			Source:   source,
			PollWait: 50 * time.Millisecond,
			Writable: writable,
			Retry:    &retry.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, MaxAttempts: -1},
		})
		n.repl = &Repl{WAL: n.wal, Follower: f}
		return ServerOptions{WAL: n.wal, Writable: writable, Repl: n.repl}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return n, f
}

// waitCaughtUp polls until the follower's applied position reaches the
// primary's committed horizon.
func waitCaughtUp(t *testing.T, p *replNode, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, next := p.wal.SeqState()
		if f.Applied() >= next {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, primary at %d (err=%v)", f.Applied(), next, f.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationEndToEnd quick-checks the tentpole property over HTTP: a
// follower tailing a live primary converges to the identical table state
// across random batches of sets and resizes, and survives its own restart
// (resume from local WAL replay, no handshake).
func TestReplicationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	primary := startPrimary(t, dir, nil)
	follower, f := startFollower(t, dir, primary.srv.URL)

	client := &Client{Base: primary.srv.URL}
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for round := 0; round < 6; round++ {
		ops := make([]Op, 0, 20)
		for i := 0; i < 20; i++ {
			if rng.Float64() < 0.9 {
				ops = append(ops, Op{Op: "set",
					X: rng.Int63n(16) + 1, Y: rng.Int63n(16) + 1,
					V: fmt.Sprintf("r%d-%d", round, i)})
			} else {
				ops = append(ops, Op{Op: "resize",
					Rows: 8 + rng.Int63n(16), Cols: 8 + rng.Int63n(16)})
			}
		}
		if _, err := client.Batch(ctx, ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		waitCaughtUp(t, primary, f)
		if want, got := tableState(t, primary.b), tableState(t, follower.b); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: follower state diverged: %d cells vs %d", round, len(got), len(want))
		}
		pr, pc := primary.b.Dims()
		fr, fc := follower.b.Dims()
		if pr != fr || pc != fc {
			t.Fatalf("round %d: dims %dx%d vs %dx%d", round, fr, fc, pr, pc)
		}
	}
	if f.Lag() != 0 {
		t.Fatalf("caught-up lag = %d", f.Lag())
	}

	// The follower's /v1/repl/status advertises its role and position.
	var st ReplStatus
	getJSON(t, follower.srv.URL+ReplStatusPath, &st)
	if st.Role != "follower" || st.Source != primary.srv.URL || st.Applied != f.Applied() {
		t.Fatalf("follower status = %+v", st)
	}
	var pst ReplStatus
	getJSON(t, primary.srv.URL+ReplStatusPath, &pst)
	if pst.Role != "primary" || pst.Next != st.Applied {
		t.Fatalf("primary status = %+v (follower applied %d)", pst, st.Applied)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerPromote: a follower is read-only (writes 503, /readyz
// degraded) until POST /v1/promote flips it into a writable primary that
// serves its own frames.
func TestFollowerPromote(t *testing.T) {
	dir := t.TempDir()
	primary := startPrimary(t, dir, nil)
	follower, f := startFollower(t, dir, primary.srv.URL)

	client := &Client{Base: primary.srv.URL}
	ctx := context.Background()
	if err := client.Set(ctx, Cell[string]{X: 1, Y: 1, V: "before"}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, f)

	fc := &Client{Base: follower.srv.URL}
	if err := fc.Set(ctx, Cell[string]{X: 2, Y: 2, V: "refused"}); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("pre-promote write err = %v, want read-only refusal", err)
	}
	resp, err := http.Get(follower.srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower readyz = %d, want 503 degraded", resp.StatusCode)
	}

	// Promote twice: the transition and its idempotent replay.
	for i := 0; i < 2; i++ {
		presp, err := http.Post(follower.srv.URL+PromotePath, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var pr struct {
			Role     string `json:"role"`
			Promoted bool   `json:"promoted"`
		}
		if err := json.NewDecoder(presp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		if pr.Role != "primary" || pr.Promoted != (i == 0) {
			t.Fatalf("promote #%d = %+v", i, pr)
		}
	}

	// Promoted: replicated state intact, writes open, role flipped.
	if v, found, err := fc.Get(ctx, 1, 1); err != nil || !found || v != "before" {
		t.Fatalf("promoted read = %q %v %v", v, found, err)
	}
	if err := fc.Set(ctx, Cell[string]{X: 2, Y: 2, V: "accepted"}); err != nil {
		t.Fatalf("post-promote write: %v", err)
	}
	var st ReplStatus
	getJSON(t, follower.srv.URL+ReplStatusPath, &st)
	if st.Role != "primary" {
		t.Fatalf("post-promote role = %q", st.Role)
	}
	// The new primary's own frames endpoint serves the full history — a
	// fresh follower can chain from it. The promotion's epoch bump caps
	// the first chunk at the boundary; the next pull serves the rest.
	frames, next, err := follower.wal.Tail(0, 1<<20)
	if err != nil || next != 1 || len(frames) == 0 {
		t.Fatalf("promoted Tail = %d bytes, next %d, %v", len(frames), next, err)
	}
	frames, next, err = follower.wal.Tail(next, 1<<20)
	if err != nil || next < 2 || len(frames) == 0 {
		t.Fatalf("promoted Tail(1) = %d bytes, next %d, %v", len(frames), next, err)
	}
	if e := follower.wal.Epoch(); e != 1 {
		t.Fatalf("post-promote epoch = %d, want 1", e)
	}
}

// TestFollowerDivergence: a follower whose position falls outside the
// primary's servable sequence window stops permanently — 410 when the
// primary checkpointed past it, 409 when it is ahead of the primary.
func TestFollowerDivergence(t *testing.T) {
	t.Run("checkpointed-away", func(t *testing.T) {
		dir := t.TempDir()
		primary := startPrimary(t, dir, nil)
		client := &Client{Base: primary.srv.URL}
		if err := client.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: "v"}); err != nil {
			t.Fatal(err)
		}
		// Checkpoint moves base past 0: a fresh follower asking from 0 is
		// beyond recovery from the log alone.
		if err := primary.wal.Checkpoint(func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		_, f := startFollower(t, dir, primary.srv.URL)
		waitSticky(t, f)
		if err := f.Err(); !strings.Contains(err.Error(), "diverged") {
			t.Fatalf("sticky err = %v", err)
		}
	})
	t.Run("ahead-of-primary", func(t *testing.T) {
		dir := t.TempDir()
		primary := startPrimary(t, dir, nil)
		// The follower's local WAL already holds records the primary never
		// wrote (simulates a primary that lost its log).
		fdir := t.TempDir()
		b := newWALBackend(t, 16, 16)
		w, _ := openWALInto(t, fdir+"/follower.wal", b, WALOptions{})
		defer w.Close()
		if err := w.AppendSet([]Cell[string]{{X: 1, Y: 1, V: "phantom"}}); err != nil {
			t.Fatal(err)
		}
		_, next := w.SeqState()
		f := NewFollower(b, w, next, FollowerOptions{
			Source:   primary.srv.URL,
			PollWait: 20 * time.Millisecond,
			Retry:    &retry.Policy{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, MaxAttempts: -1},
		})
		done := make(chan struct{})
		go func() { defer close(done); f.Run(context.Background()) }()
		t.Cleanup(func() { f.Promote(); <-done })
		waitSticky(t, f)
		if err := f.Err(); !strings.Contains(err.Error(), "diverged") {
			t.Fatalf("sticky err = %v", err)
		}
	})
}

func waitSticky(t *testing.T, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("follower never recorded the sticky divergence")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplGateUnit covers the gate's horizon algebra directly.
func TestReplGateUnit(t *testing.T) {
	g := &ReplGate{Timeout: 30 * time.Millisecond}
	if err := g.Wait(context.Background(), 0); err != nil {
		t.Fatalf("Wait(0) on zero gate: %v", err)
	}
	if err := g.Wait(context.Background(), 3); !errors.Is(err, ErrReplAckTimeout) {
		t.Fatalf("unacked Wait err = %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Wait(context.Background(), 3) }()
	g.Advance(2) // not enough
	g.Advance(5) // covers it
	if err := <-done; err != nil {
		t.Fatalf("Wait after Advance: %v", err)
	}
	g.Advance(1) // regression ignored
	if got := g.Acked(); got != 5 {
		t.Fatalf("Acked = %d after regressed Advance", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Wait(ctx, 9); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Wait err = %v", err)
	}
}

// TestSemiSyncAckGate drives the gate through the server: with no
// follower confirming, writes are refused with 503 (durable locally,
// never silently acked); once pulls advance the horizon, acks flow.
func TestSemiSyncAckGate(t *testing.T) {
	dir := t.TempDir()
	primary := startPrimary(t, dir, &ReplGate{Timeout: 50 * time.Millisecond})
	client := &Client{Base: primary.srv.URL}
	ctx := context.Background()

	err := client.Set(ctx, Cell[string]{X: 1, Y: 1, V: "unconfirmed"})
	if err == nil || !strings.Contains(err.Error(), "replication unconfirmed") {
		t.Fatalf("ungated-follower write err = %v, want replication refusal", err)
	}
	// The refused write IS durable on the primary (refuse-ack, not undo).
	if _, next := primary.wal.SeqState(); next != 1 {
		t.Fatalf("refused write not in WAL: next = %d", next)
	}

	// Reads are never gated.
	if _, _, err := client.Get(ctx, 1, 1); err != nil {
		t.Fatalf("read under stalled gate: %v", err)
	}

	// A live follower turns the same write into a success.
	_, f := startFollower(t, dir, primary.srv.URL)
	if err := client.Set(ctx, Cell[string]{X: 2, Y: 2, V: "confirmed"}); err != nil {
		t.Fatalf("gated write with live follower: %v", err)
	}
	waitCaughtUp(t, primary, f)
}
