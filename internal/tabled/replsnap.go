package tabled

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"pairfn/internal/extarray"
)

// This file is the snapshot-transfer side of replication (DESIGN §5e): a
// primary serves its latest checkpointable state over HTTP so a follower
// stranded below the log base — or an ex-primary fenced onto a dead fork —
// can rebuild itself without operator surgery. The response body is the
// table's gob snapshot wrapped in the same CRC frames the WAL uses, so the
// receiving side fails closed on any transfer corruption, and the stream
// is resumable by byte offset (pinned to a snapshot sequence, since a
// newer spool may replace the old one between attempts).

// ReplSnapshotPath is the snapshot-transfer endpoint:
//
//	GET /v1/repl/snapshot[?seq=S&offset=N]
//
// seq+offset resume an interrupted transfer; they are honored only when
// seq still names the currently-served spool, otherwise the full current
// spool is served from byte 0.
const ReplSnapshotPath = "/v1/repl/snapshot"

// Snapshot-transfer response headers: the WAL cut the snapshot captures
// (the state is exactly records [0, seq)), and the total spool size in
// bytes (the resume target). The snapshot's epoch rides the shared
// ReplEpochHeader.
const (
	ReplSnapshotSeqHeader  = "X-Tabled-Repl-Snapshot-Seq"
	ReplSnapshotSizeHeader = "X-Tabled-Repl-Snapshot-Size"
)

// replSnapChunk caps one CRC frame of the snapshot spool. Small enough
// that a flipped byte poisons one frame, large enough that framing
// overhead is negligible.
const replSnapChunk = 64 << 10

// replSnapSpoolName is the on-disk name of the cached spool in Dir. It is
// replaced atomically (temp + rename), so a crash mid-build leaves the
// previous spool intact.
const replSnapSpoolName = "repl-snapshot.spool"

// ReplSnapshots serves /v1/repl/snapshot from a spool file it (re)builds
// on demand: a spool is reusable while its cut is at or above the WAL
// base (a reseeded follower can tail records [cut, …) from the log), and
// is rebuilt under walog.Cut — which syncs and blocks appends — the first
// time a request finds it stale.
type ReplSnapshots struct {
	// WAL provides the cut (Cut) and the staleness check (SeqState).
	WAL *WAL
	// Save writes the table snapshot stamped with cut/epoch — typically
	// Sharded.SaveAt. It runs under the WAL append lock; the pause is the
	// price of an exact cut, same as a checkpoint.
	Save func(w io.Writer, cut, epoch uint64) error
	// Dir is where the spool lives (typically the WAL's directory).
	Dir string
	// Injector, when non-nil, can flip one byte per served response
	// (Faults.SnapCorruptRate) — the harness for proving the receiving
	// side fails closed and retries.
	Injector *FaultInjector
	Metrics  *Metrics
	Logger   *slog.Logger

	mu    sync.Mutex
	path  string
	seq   uint64
	epoch uint64
	size  int64
}

// ensure returns an open handle on a spool whose cut covers the current
// WAL base, rebuilding it first if needed. The file is opened under the
// lock so a concurrent rebuild's rename cannot swap the bytes out from
// under the returned metadata (the open handle keeps serving the old
// inode regardless). The caller closes f.
func (rs *ReplSnapshots) ensure() (f *os.File, seq, epoch uint64, size int64, err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	base, _ := rs.WAL.SeqState()
	if rs.path == "" || rs.seq < base {
		if err := rs.rebuildLocked(); err != nil {
			return nil, 0, 0, 0, err
		}
	}
	fh, err := os.Open(rs.path)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return fh, rs.seq, rs.epoch, rs.size, nil
}

// rebuildLocked builds a fresh spool under the WAL cut and installs it
// atomically. Called with rs.mu held.
func (rs *ReplSnapshots) rebuildLocked() error {
	if err := os.MkdirAll(rs.Dir, 0o755); err != nil {
		return fmt.Errorf("tabled: repl snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(rs.Dir, replSnapSpoolName+".tmp-*")
	if err != nil {
		return fmt.Errorf("tabled: repl snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var cut, cutEpoch uint64
	err = rs.WAL.Cut(func(c, e uint64) error {
		cut, cutEpoch = c, e
		fw := &frameChunkWriter{w: tmp}
		if err := rs.Save(fw, c, e); err != nil {
			return err
		}
		return fw.Flush()
	})
	if err != nil {
		return fmt.Errorf("tabled: repl snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("tabled: repl snapshot: %w", err)
	}
	st, err := tmp.Stat()
	if err != nil {
		return fmt.Errorf("tabled: repl snapshot: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("tabled: repl snapshot: %w", err)
	}
	tmp = nil
	final := filepath.Join(rs.Dir, replSnapSpoolName)
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		return fmt.Errorf("tabled: repl snapshot: %w", err)
	}
	rs.path, rs.seq, rs.epoch, rs.size = final, cut, cutEpoch, st.Size()
	if rs.Logger != nil {
		rs.Logger.Info("repl: snapshot spool rebuilt", "seq", cut, "epoch", cutEpoch, "bytes", st.Size())
	}
	return nil
}

// handle serves one snapshot-transfer request.
func (rs *ReplSnapshots) handle(w http.ResponseWriter, r *http.Request) {
	f, seq, epoch, size, err := rs.ensure()
	if err != nil {
		rs.Metrics.replSnapServe(0, err)
		if rs.Logger != nil {
			rs.Logger.Error("repl: snapshot build", "err", err)
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	q := r.URL.Query()
	start := int64(0)
	if os_, ok := parseResume(q.Get("seq"), q.Get("offset"), seq, size); ok {
		start = os_
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ReplSnapshotSeqHeader, strconv.FormatUint(seq, 10))
	w.Header().Set(ReplEpochHeader, strconv.FormatUint(epoch, 10))
	w.Header().Set(ReplSnapshotSizeHeader, strconv.FormatInt(size, 10))
	var dst io.Writer = w
	if at, ok := rs.Injector.SnapshotCorruptAt(size - start); ok {
		dst = &corruptWriter{w: w, at: at}
		if rs.Logger != nil {
			rs.Logger.Warn("repl: injecting snapshot corruption", "at", start+at)
		}
	}
	n, err := io.Copy(dst, io.NewSectionReader(f, start, size-start))
	rs.Metrics.replSnapServe(n, err)
	if err != nil && rs.Logger != nil {
		rs.Logger.Warn("repl: snapshot stream", "err", err)
	}
}

// parseResume validates a seq+offset resume request against the spool
// being served: both must parse, the pinned seq must still be current,
// and the offset must be within the spool. Anything else restarts the
// transfer from byte 0 — the client detects the seq change from the
// response header and resets its side too.
func parseResume(seqStr, offStr string, seq uint64, size int64) (int64, bool) {
	if seqStr == "" || offStr == "" {
		return 0, false
	}
	pin, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil || pin != seq {
		return 0, false
	}
	off, err := strconv.ParseInt(offStr, 10, 64)
	if err != nil || off < 0 || off > size {
		return 0, false
	}
	return off, true
}

// frameChunkWriter wraps the gob snapshot stream into CRC frames of at
// most replSnapChunk payload bytes each, using the WAL's frame format so
// the receiving side reuses walog.ReadStream for fail-closed parsing.
type frameChunkWriter struct {
	w   io.Writer
	buf []byte
}

func (fw *frameChunkWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		room := replSnapChunk - len(fw.buf)
		if room == 0 {
			if err := fw.Flush(); err != nil {
				return 0, err
			}
			room = replSnapChunk
		}
		if room > len(p) {
			room = len(p)
		}
		fw.buf = append(fw.buf, p[:room]...)
		p = p[room:]
	}
	return n, nil
}

// Flush emits the buffered bytes as one frame (a no-op when empty).
func (fw *frameChunkWriter) Flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := extarray.AppendFrame(fw.w, fw.buf)
	fw.buf = fw.buf[:0]
	return err
}

// corruptWriter flips exactly one byte, at cumulative offset at, of the
// stream passing through it — the injected transfer fault. It copies the
// affected chunk so the caller's buffer is never mutated.
type corruptWriter struct {
	w    io.Writer
	at   int64
	off  int64
	done bool
}

func (cw *corruptWriter) Write(p []byte) (int, error) {
	if !cw.done && cw.at >= cw.off && cw.at < cw.off+int64(len(p)) {
		q := make([]byte, len(p))
		copy(q, p)
		q[cw.at-cw.off] ^= 0xff
		cw.done = true
		cw.off += int64(len(p))
		return cw.w.Write(q)
	}
	cw.off += int64(len(p))
	return cw.w.Write(p)
}
