package tabled

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pairfn/internal/extarray"
	"pairfn/internal/retry"
	"pairfn/internal/walog"
)

// This file is the follower half of snapshot-transfer reseed: when
// tailing cannot resume (the source checkpointed past us, or our log is a
// fork of a newer epoch's history), the follower downloads the source's
// snapshot spool, verifies it frame by frame, and installs it — snapshot
// file first, then WAL reset, then in-memory restore — so that a crash at
// any point between those steps boots into a consistent (old or new)
// state, never a mix. See DESIGN §5e for the state machine.

// reseedNeeded is the pull loop's internal signal that the source refused
// to serve frames from our position for a reason a reseed repairs.
type reseedNeeded struct{ reason string }

func (e *reseedNeeded) Error() string { return "tabled: reseed needed: " + e.reason }

// reseedFetchAttempts bounds one reseed's transfer retries. The reseed as
// a whole is retried by the pull loop's backoff schedule; this bound only
// keeps a single attempt from spinning on a flaky link.
const reseedFetchAttempts = 5

// reseedRetryPause paces transfer retries within one reseed.
const reseedRetryPause = 200 * time.Millisecond

// reseed rebuilds this follower from the source's snapshot. A nil return
// means the follower's state — snapshot file, WAL, memory, position — is
// the source's checkpoint and tailing can resume from its cut. Transfer
// and verification failures return transient errors (the pull loop backs
// off and the next 410/409 triggers a fresh reseed); local install
// failures are permanent (a half-writable disk is operator territory).
func (f *Follower) reseed(ctx context.Context, rn *reseedNeeded) error {
	start := time.Now()
	if f.opt.Logger != nil {
		f.opt.Logger.Warn("repl: reseeding from snapshot", "source", f.opt.Source, "reason", rn.reason)
	}
	body, seq, epoch, err := f.fetchSnapshot(ctx)
	if err != nil {
		f.opt.Metrics.replReseedFailure(int64(len(body)))
		return err
	}
	// Unwrap the CRC frames; a flipped byte anywhere fails here, closed.
	var raw []byte
	if _, err := walog.ReadStream(body, func(p []byte) error {
		raw = append(raw, p...)
		return nil
	}); err != nil {
		f.opt.Metrics.replReseedFailure(int64(len(body)))
		return fmt.Errorf("tabled: reseed: snapshot stream: %w", err)
	}
	snap, err := extarray.DecodeSnapshot[string](bytes.NewReader(raw))
	if err != nil {
		f.opt.Metrics.replReseedFailure(int64(len(body)))
		return fmt.Errorf("tabled: reseed: decode: %w", err)
	}
	if snap.ReplSeq != seq || snap.ReplEpoch != epoch {
		f.opt.Metrics.replReseedFailure(int64(len(body)))
		return fmt.Errorf("tabled: reseed: snapshot stamped (seq %d, epoch %d), served as (seq %d, epoch %d)",
			snap.ReplSeq, snap.ReplEpoch, seq, epoch)
	}
	// Install order is the crash-safety argument:
	//  1. snapshot file (atomic rename) — a crash after this boots from
	//     the new snapshot; walog's boot rule (SnapshotSeq > state base)
	//     discards the stale log it supersedes;
	//  2. WAL reset to the cut — a crash after this replays an empty log
	//     on top of the new snapshot: same state;
	//  3. in-memory restore + position — pure memory, no crash window.
	err = f.GuardInstall(func() error {
		if err := extarray.AtomicWriteFile(f.opt.SnapshotPath, func(w io.Writer) error {
			_, werr := w.Write(raw)
			return werr
		}); err != nil {
			return retry.Permanent(fmt.Errorf("tabled: reseed: install snapshot: %w", err))
		}
		if err := f.wal.ResetTo(snap.ReplSeq, snap.ReplEpoch); err != nil {
			return retry.Permanent(fmt.Errorf("tabled: reseed: wal reset: %w", err))
		}
		if err := f.opt.Restore(snap); err != nil {
			return retry.Permanent(fmt.Errorf("tabled: reseed: restore: %w", err))
		}
		return nil
	})
	if err != nil {
		f.opt.Metrics.replReseedFailure(int64(len(body)))
		return err
	}
	f.applied.Store(snap.ReplSeq)
	f.reseeds.Add(1)
	f.lastReseed.Store(time.Now().UnixNano())
	d := time.Since(start)
	f.opt.Metrics.replReseed(int64(len(body)), d)
	f.opt.Metrics.replEpoch(snap.ReplEpoch)
	if f.opt.Logger != nil {
		f.opt.Logger.Info("repl: reseed complete", "seq", snap.ReplSeq, "epoch", snap.ReplEpoch,
			"bytes", len(body), "took", d)
	}
	return nil
}

// fetchSnapshot downloads the source's snapshot spool, resuming an
// interrupted transfer by byte offset as long as the source still serves
// the same snapshot sequence; a sequence change (the source re-cut while
// we were fetching) restarts the spool from byte 0. Returns the framed
// spool plus the cut and epoch the source stamped on it.
func (f *Follower) fetchSnapshot(ctx context.Context) (body []byte, seq, epoch uint64, err error) {
	var (
		pinned   bool
		lastErr  error
		wantSize = int64(-1)
	)
	for attempt := 0; attempt < reseedFetchAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return body, 0, 0, ctx.Err()
			case <-time.After(reseedRetryPause):
			}
		}
		url := f.opt.Source + ReplSnapshotPath
		if pinned && len(body) > 0 {
			url = fmt.Sprintf("%s?seq=%d&offset=%d", url, seq, len(body))
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return body, 0, 0, retry.Permanent(err)
		}
		resp, err := f.opt.HTTPClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		srvSeq, srvEpoch, srvSize, herr := parseSnapshotHeaders(resp)
		if herr != nil || resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			if herr != nil {
				lastErr = fmt.Errorf("tabled: reseed fetch: %w", herr)
			} else {
				lastErr = fmt.Errorf("tabled: reseed fetch: %s: %s", resp.Status, msg)
			}
			continue
		}
		if !pinned || srvSeq != seq {
			// First contact, or the source re-cut: (re)start the spool.
			body = body[:0]
			seq, epoch, wantSize, pinned = srvSeq, srvEpoch, srvSize, true
		}
		_, err = io.Copy(byteAppender{&body}, resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err // partial bytes kept; next attempt resumes
			continue
		}
		if int64(len(body)) != wantSize {
			lastErr = fmt.Errorf("tabled: reseed fetch: got %d of %d bytes", len(body), wantSize)
			continue
		}
		return body, seq, epoch, nil
	}
	return body, 0, 0, fmt.Errorf("tabled: reseed fetch from %s failed after %d attempts: %w",
		f.opt.Source, reseedFetchAttempts, lastErr)
}

// parseSnapshotHeaders extracts the seq/epoch/size headers from a
// snapshot-transfer response.
func parseSnapshotHeaders(resp *http.Response) (seq, epoch uint64, size int64, err error) {
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, nil
	}
	if seq, err = strconv.ParseUint(resp.Header.Get(ReplSnapshotSeqHeader), 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad %s: %w", ReplSnapshotSeqHeader, err)
	}
	if epoch, err = strconv.ParseUint(resp.Header.Get(ReplEpochHeader), 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad %s: %w", ReplEpochHeader, err)
	}
	if size, err = strconv.ParseInt(resp.Header.Get(ReplSnapshotSizeHeader), 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad %s: %w", ReplSnapshotSizeHeader, err)
	}
	return seq, epoch, size, nil
}

// byteAppender adapts a growing byte slice to io.Writer for io.Copy.
type byteAppender struct{ b *[]byte }

func (a byteAppender) Write(p []byte) (int, error) {
	*a.b = append(*a.b, p...)
	return len(p), nil
}
