package tabled

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"pairfn/internal/obs"
	"pairfn/internal/retry"
)

// startSnapPrimary builds a primary that also serves /v1/repl/snapshot —
// the reseed source. The spool lives in dir next to the WAL.
func startSnapPrimary(t *testing.T, dir string, fi *FaultInjector) *replNode {
	t.Helper()
	return startReplNode(t, dir+"/primary.wal", func(n *replNode) ServerOptions {
		n.repl = &Repl{WAL: n.wal, Snap: &ReplSnapshots{
			WAL:      n.wal,
			Save:     n.b.SaveAt,
			Dir:      dir,
			Injector: fi,
		}}
		return ServerOptions{WAL: n.wal, Repl: n.repl}
	})
}

// startReseedFollower builds a reseed-capable follower of source (its own
// snapshot path and restore hook) that can itself serve reseeds once
// promoted, and runs its pull loop until the test ends.
func startReseedFollower(t *testing.T, dir, source string, m *Metrics) (*replNode, *Follower) {
	t.Helper()
	var f *Follower
	writable := obs.NewFlag(false)
	n := startReplNode(t, dir+"/follower.wal", func(n *replNode) ServerOptions {
		_, next := n.wal.SeqState()
		f = NewFollower(n.b, n.wal, next, FollowerOptions{
			Source:       source,
			PollWait:     50 * time.Millisecond,
			Writable:     writable,
			Retry:        &retry.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, MaxAttempts: -1},
			SnapshotPath: dir + "/follower.gob",
			Restore:      n.b.RestoreSnapshot,
			Metrics:      m,
		})
		n.repl = &Repl{WAL: n.wal, Follower: f, Snap: &ReplSnapshots{
			WAL:  n.wal,
			Save: n.b.SaveAt,
			Dir:  dir,
		}}
		return ServerOptions{WAL: n.wal, Writable: writable, Repl: n.repl}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return n, f
}

func fillPrimary(t *testing.T, p *replNode, round, n int) {
	t.Helper()
	client := &Client{Base: p.srv.URL}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Op: "set",
			X: int64(i%16 + 1), Y: int64(i/16%16 + 1),
			V: fmt.Sprintf("r%d-%d", round, i)})
	}
	if _, err := client.Batch(context.Background(), ops); err != nil {
		t.Fatal(err)
	}
}

// TestReseedStrandedFollower is the tentpole's happy path: a fresh
// follower whose position the primary has checkpointed away (410) rebuilds
// itself from /v1/repl/snapshot without operator help, then resumes
// tailing — and its WAL suffix is byte-identical to the primary's.
func TestReseedStrandedFollower(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := startSnapPrimary(t, pdir, nil)
	fillPrimary(t, primary, 0, 40)

	// Checkpoint past 0: a follower asking from 0 is unservable from the
	// log alone, which without reseed was a sticky divergence.
	if err := primary.wal.CheckpointAt(func(cut uint64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	base, _ := primary.wal.SeqState()
	if base == 0 {
		t.Fatal("checkpoint did not advance the base")
	}

	follower, f := startReseedFollower(t, fdir, primary.srv.URL, nil)
	waitCaughtUp(t, primary, f)
	if got, want := tableState(t, follower.b), tableState(t, primary.b); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reseed state: %d cells vs %d", len(got), len(want))
	}
	if f.Reseeds() != 1 {
		t.Fatalf("reseeds = %d, want 1", f.Reseeds())
	}

	// Tailing must keep working after the install: new primary writes
	// arrive through the ordinary frame pull.
	fillPrimary(t, primary, 1, 25)
	waitCaughtUp(t, primary, f)
	if got, want := tableState(t, follower.b), tableState(t, primary.b); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reseed tail: %d cells vs %d", len(got), len(want))
	}

	// The follower's log is a byte-identical suffix of the primary's.
	pFrames, pNext, err := primary.wal.Tail(base, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fFrames, fNext, err := follower.wal.Tail(base, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if pNext != fNext || !reflect.DeepEqual(pFrames, fFrames) {
		t.Fatalf("suffix mismatch: primary [%d,%d) %d bytes, follower [%d,%d) %d bytes",
			base, pNext, len(pFrames), base, fNext, len(fFrames))
	}

	// /v1/repl/status reports the reseed.
	var st ReplStatus
	getJSON(t, follower.srv.URL+ReplStatusPath, &st)
	if st.Reseeds != 1 || st.LastReseedUnix == 0 {
		t.Fatalf("status reseeds = %d, last = %v", st.Reseeds, st.LastReseedUnix)
	}
}

// TestReseedCorruptTransferFailsClosed: with every snapshot response
// corrupted in flight, the follower must refuse to install anything (CRC
// frames fail closed) and keep retrying; once the fault clears, the next
// attempt heals it.
func TestReseedCorruptTransferFailsClosed(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	fi := NewFaultInjector(&Faults{Seed: 7, SnapCorruptRate: 1})
	primary := startSnapPrimary(t, pdir, fi)
	fillPrimary(t, primary, 0, 40)
	if err := primary.wal.CheckpointAt(func(cut uint64) error { return nil }); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	m := NewMetrics(reg, 4)
	_, f := startReseedFollower(t, fdir, primary.srv.URL, m)

	// Wait until at least two reseed attempts have failed on the corrupt
	// stream; the loop must stay alive (no sticky error) and must not
	// have installed anything.
	deadline := time.Now().Add(10 * time.Second)
	for m.replReseedsErr.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("reseed failures = %d, follower err = %v", m.replReseedsErr.Value(), f.Err())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("corrupt transfer turned sticky: %v", err)
	}
	if f.Reseeds() != 0 || f.Applied() != 0 {
		t.Fatalf("corrupt bytes installed: reseeds=%d applied=%d", f.Reseeds(), f.Applied())
	}

	// Clear the fault: the very next attempt must succeed.
	fi.in.mu.Lock()
	fi.in.fc.SnapCorruptRate = 0
	fi.in.mu.Unlock()
	waitCaughtUp(t, primary, f)
	if f.Reseeds() != 1 {
		t.Fatalf("reseeds after heal = %d, want 1", f.Reseeds())
	}
}

// TestReseedFencedForkedPrimary is the split-brain repair: a primary that
// kept accepting writes after its follower was promoted holds a forked
// history under a stale epoch. Re-pointed at the new primary, it must
// discard its fork via reseed (409 + higher source epoch), converge to
// the new primary's state, and adopt its epoch.
func TestReseedFencedForkedPrimary(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := startSnapPrimary(t, pdir, nil)
	follower, f := startReseedFollower(t, fdir, primary.srv.URL, nil)

	fillPrimary(t, primary, 0, 30)
	waitCaughtUp(t, primary, f)

	// Failover: the follower is promoted (epoch 0 → 1)...
	presp, err := http.Post(follower.srv.URL+PromotePath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if follower.wal.Epoch() != 1 {
		t.Fatalf("promoted epoch = %d", follower.wal.Epoch())
	}
	// ...but the old primary missed the memo and keeps taking writes:
	// its history forks from the promoted node's.
	fillPrimary(t, primary, 1, 10)
	fillPrimary(t, follower, 2, 20)

	// The old primary comes back as a follower of the new one. Its
	// position is past the new primary's epoch-0 barrier, so the source
	// answers 409 at a higher epoch — reseed, not stickiness.
	_, next := primary.wal.SeqState()
	m2 := NewMetrics(obs.NewRegistry(), 4)
	f2 := NewFollower(primary.b, primary.wal, next, FollowerOptions{
		Source:       follower.srv.URL,
		PollWait:     50 * time.Millisecond,
		Retry:        &retry.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, MaxAttempts: -1},
		SnapshotPath: pdir + "/primary.gob",
		Restore:      primary.b.RestoreSnapshot,
		Metrics:      m2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f2.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })

	// waitCaughtUp is useless here: the forked position is numerically
	// ahead of the new primary's horizon until the reseed rewinds it.
	deadline := time.Now().Add(5 * time.Second)
	for f2.Reseeds() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("fork never reseeded (err=%v)", f2.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCaughtUp(t, follower, f2)
	if got, want := tableState(t, primary.b), tableState(t, follower.b); !reflect.DeepEqual(got, want) {
		t.Fatalf("fork not repaired: %d cells vs %d", len(got), len(want))
	}
	if e := primary.wal.Epoch(); e != 1 {
		t.Fatalf("reseeded epoch = %d, want 1", e)
	}
	// The epoch gauge must track the adoption, not just the status JSON.
	if g := m2.replEpochG.Value(); g != 1 {
		t.Fatalf("tabled_repl_epoch gauge = %d after reseed, want 1", g)
	}

	// And the repaired node keeps tailing the new primary.
	fillPrimary(t, follower, 3, 10)
	waitCaughtUp(t, follower, f2)
	if got, want := tableState(t, primary.b), tableState(t, follower.b); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-repair tail: %d cells vs %d", len(got), len(want))
	}
}

// TestEpochRegressionSticky: a follower that has seen epoch 2 must never
// re-follow an epoch-0 source, reseed capability or not — that source is
// a stale primary. The refusal is sticky, and the contacted source fences
// itself (it just learned a newer epoch exists).
func TestEpochRegressionSticky(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := startSnapPrimary(t, pdir, nil)
	fillPrimary(t, primary, 0, 5)

	b := newWALBackend(t, 16, 16)
	w, _ := openWALInto(t, fdir+"/follower.wal", b, WALOptions{})
	defer w.Close()
	if err := w.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	f := NewFollower(b, w, 0, FollowerOptions{
		Source:       primary.srv.URL,
		PollWait:     20 * time.Millisecond,
		Retry:        &retry.Policy{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, MaxAttempts: -1},
		SnapshotPath: fdir + "/follower.gob",
		Restore:      b.RestoreSnapshot,
	})
	done := make(chan struct{})
	go func() { defer close(done); f.Run(context.Background()) }()
	t.Cleanup(func() { f.Promote(); <-done })
	waitSticky(t, f)
	if err := f.Err(); !strings.Contains(err.Error(), "epoch regression") {
		t.Fatalf("sticky err = %v", err)
	}
	// The stale source self-fenced on contact: it now refuses writes.
	if e, ok := primary.repl.FencedBy(); !ok || e != 2 {
		t.Fatalf("source FencedBy = %d, %v", e, ok)
	}
}

// TestReseedInstallCrash simulates a crash in the worst window — the new
// snapshot file is installed but the WAL was never reset — and proves the
// boot rule repairs it: the stale log is discarded, the node boots into
// exactly the snapshot state at its stamped cut and epoch.
func TestReseedInstallCrash(t *testing.T) {
	dir := t.TempDir()

	// The "new" snapshot: 12 records applied, checkpointed at cut 12
	// under epoch 3.
	donor := newWALBackend(t, 16, 16)
	for i := 0; i < 12; i++ {
		if err := donor.Set(int64(i+1), 1, fmt.Sprintf("new-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := dir + "/table.gob"
	if err := donor.SaveFileAt(snapPath, 12, 3); err != nil {
		t.Fatal(err)
	}

	// The stale local log: 4 old epoch-0 records the snapshot supersedes.
	walPath, statePath := dir+"/table.wal", dir+"/table.wal.state"
	{
		b := newWALBackend(t, 16, 16)
		w, _ := openWALInto(t, walPath, b, WALOptions{StatePath: statePath})
		for i := 0; i < 4; i++ {
			if err := w.AppendSet([]Cell[string]{{X: 1, Y: 1, V: fmt.Sprintf("old-%d", i)}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Boot exactly as tabledserver does: snapshot meta first, then the
	// WAL with the snapshot's stamp. The snapshot is newer than the log's
	// base, so the log must be discarded, not replayed.
	sh, seq, epoch, err := LoadShardedFileMeta[string](snapPath, donor.Mapping(), 4, pagedStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 12 || epoch != 3 {
		t.Fatalf("snapshot meta = (seq %d, epoch %d)", seq, epoch)
	}
	w, replayed := openWALInto(t, walPath, sh, WALOptions{
		StatePath: statePath, SnapshotSeq: seq, SnapshotEpoch: epoch,
	})
	defer w.Close()
	if replayed != 0 {
		t.Fatalf("stale log replayed %d records over the newer snapshot", replayed)
	}
	base, next := w.SeqState()
	if base != 12 || next != 12 || w.Epoch() != 3 {
		t.Fatalf("booted at [%d,%d) epoch %d, want [12,12) epoch 3", base, next, w.Epoch())
	}
	if got, want := tableState(t, sh), tableState(t, donor); !reflect.DeepEqual(got, want) {
		t.Fatalf("booted state: %d cells vs %d", len(got), len(want))
	}
}

// TestReseedSourceRecutMidTransfer: if the source re-checkpoints between
// resume attempts, the stale partial spool must be thrown away and the
// transfer restarted against the new sequence — never stitched.
func TestReseedSourceRecutMidTransfer(t *testing.T) {
	oldBody := []byte("old-spool-contents-0123456789")
	newBody := []byte("NEW-SPOOL")
	requests := 0
	src := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		if requests == 1 {
			// First attempt: seq 5, but the connection dies mid-body.
			w.Header().Set(ReplSnapshotSeqHeader, "5")
			w.Header().Set(ReplEpochHeader, "1")
			w.Header().Set(ReplSnapshotSizeHeader, strconv.Itoa(len(oldBody)))
			w.Header().Set("Content-Length", strconv.Itoa(len(oldBody)))
			w.Write(oldBody[:10])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		// The resume request arrives pinned to seq 5 — but we re-cut.
		if q := r.URL.Query(); q.Get("seq") != "5" || q.Get("offset") != "10" {
			t.Errorf("resume query = %q, want seq=5&offset=10", r.URL.RawQuery)
		}
		w.Header().Set(ReplSnapshotSeqHeader, "9")
		w.Header().Set(ReplEpochHeader, "2")
		w.Header().Set(ReplSnapshotSizeHeader, strconv.Itoa(len(newBody)))
		w.Write(newBody)
	}))
	defer src.Close()

	f := NewFollower(newWALBackend(t, 4, 4), nil, 0, FollowerOptions{Source: src.URL})
	body, seq, epoch, err := f.fetchSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 || epoch != 2 || string(body) != string(newBody) {
		t.Fatalf("fetched (seq %d, epoch %d, %q), want (9, 2, %q)", seq, epoch, body, newBody)
	}
}

// TestReseedDuringPrimaryCheckpoint: a primary that checkpoints (and so
// rebuilds its spool) while a follower is reseeding still produces a
// consistent follower — whichever spool generation the transfer lands on,
// tailing from its cut converges.
func TestReseedDuringPrimaryCheckpoint(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := startSnapPrimary(t, pdir, nil)
	fillPrimary(t, primary, 0, 40)
	if err := primary.wal.CheckpointAt(func(cut uint64) error { return nil }); err != nil {
		t.Fatal(err)
	}

	follower, f := startReseedFollower(t, fdir, primary.srv.URL, nil)

	// Race more writes and a second checkpoint against the reseed.
	fillPrimary(t, primary, 1, 30)
	if err := primary.wal.CheckpointAt(func(cut uint64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	fillPrimary(t, primary, 2, 10)

	waitCaughtUp(t, primary, f)
	if got, want := tableState(t, follower.b), tableState(t, primary.b); !reflect.DeepEqual(got, want) {
		t.Fatalf("state after racing checkpoint: %d cells vs %d", len(got), len(want))
	}
	if f.Err() != nil {
		t.Fatalf("follower err = %v", f.Err())
	}
}
